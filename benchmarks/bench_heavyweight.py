"""S5.4b — heavyweight shadow-value tools: speed vs robustness.

Paper: TaintTrace (5.5x) and LIFT (3.5x) are much *faster* than Memcheck
(22x) — "partly because they are doing a simpler analysis...  More
importantly, they are faster because they are less robust and have more
limited instrumentation capabilities": neither handles FP or SIMD code,
neither handles threads, and the C&A frameworks they sit on give no
shadow registers or events system.

We reproduce both halves:

* speed: the C&A taint tool is faster than the D&R taint tool, which is
  faster than Memcheck (simpler analysis < byte taint < bit definedness);
* robustness: on a workload that launders tainted data through FP code,
  the D&R tool still flags the tainted jump; the C&A tool silently loses
  it (a false negative) while its unhandled-FP counter shows why.
"""

import time

from repro import Options, assemble, build_source, run_native, run_tool
from repro.baseline.ca_tools import CATaint
from repro.baseline.framework import CARunner
from repro.workloads.suite import build

from conftest import SCALE, geomean, save_and_show

PROGRAMS = ("gzip", "mcf", "parser")

FP_LAUNDER = """
        .text
main:   movi r0, 2           ; read(0, buf, 4): tainted input
        movi r1, 0
        movi r2, buf
        movi r3, 4
        syscall
        ld   r1, [buf]
        andi r1, 3
        ficvt f0, r1         ; taint flows through the FP unit...
        fcvti r1, f0
        addi r1, t0
        jmp  r1              ; ...into a control transfer
t0:     movi r0, 0
        ret
        .data
buf:    .word 0
"""


def _time(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _run_ca_taint(image, stdin=b""):
    tool = CATaint()
    runner = CARunner(image, tool, stdin=stdin)
    orig = runner.kernel.syscall

    def tainting(engine, tid, num, a1, a2, a3):
        r = orig(engine, tid, num, a1, a2, a3)
        if num == 2 and isinstance(r, int) and r > 0:
            tool.taint_range(a2, r)
        return r

    runner.kernel.syscall = tainting
    runner.run()
    return tool


def test_heavyweight_comparison(benchmark, capsys):
    def sweep():
        rows = []
        for name in PROGRAMS:
            wl = build(name, scale=SCALE)
            t_nat = _time(lambda: run_native(wl.image))
            rows.append({
                "name": name,
                "ca-taint": _time(lambda: _run_ca_taint(wl.image)) / t_nat,
                "dr-taint": _time(
                    lambda: run_tool("taintcheck", wl.image,
                                     options=Options(log_target="capture"))
                ) / t_nat,
                "memcheck": _time(
                    lambda: run_tool(
                        "memcheck", wl.image,
                        options=Options(log_target="capture",
                                        tool_options=["--leak-check=no"]),
                    )
                ) / t_nat,
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    cols = ("ca-taint", "dr-taint", "memcheck")
    gm = {c: geomean([r[c] for r in rows]) for c in cols}

    lines = [
        "Section 5.4: heavyweight shadow-value tools (slow-down vs native)",
        "",
        f"{'program':8s}" + "".join(f"{c:>10}" for c in cols),
    ]
    for r in rows:
        lines.append(f"{r['name']:8s}" + "".join(f"{r[c]:>10.1f}" for c in cols))
    lines.append(f"{'geomean':8s}" + "".join(f"{gm[c]:>10.1f}" for c in cols))
    lines += [
        "",
        "(paper: TaintTrace 5.5x / LIFT 3.5x  <  Memcheck 22x — the fast",
        " tools are fast because they do less and handle less)",
        "",
        "robustness half — taint laundered through FP code:",
    ]

    image = assemble(build_source(FP_LAUNDER), filename="launder")
    dr = run_tool("taintcheck", image,
                  options=Options(log_target="capture"), stdin=b"\0\0\0\0")
    ca = _run_ca_taint(image, stdin=b"\0\0\0\0")
    lines += [
        f"  D&R taintcheck: {len(dr.errors)} tainted-jump alert(s)  "
        "(shadow FP registers just work)",
        f"  C&A taint tool: {ca.tainted_jumps} alert(s), "
        f"{ca.unhandled_fp_simd} unhandled FP/SIMD instruction(s)  "
        "(false negative, like TaintTrace/LIFT)",
    ]

    # -- shape checks --------------------------------------------------------------
    assert gm["ca-taint"] < gm["dr-taint"] < gm["memcheck"]
    assert len(dr.errors) == 1
    assert ca.tainted_jumps == 0 and ca.unhandled_fp_simd > 0

    save_and_show(capsys, "heavyweight", lines)
