"""S5.4a — lightweight tools: D&R (our Valgrind) vs C&A (the Pin stand-in).

Paper: "Valgrind is 4.0x slower than Pin... in the no-instrumentation
case, and 3.3x [slower] for a lightweight basic block counting tool...
these lightweight tools are exactly the kinds of tools that Valgrind is
not targeted at."

We run the same programs natively, under the C&A framework (null and
counting tools) and under the D&R framework (Nulgrind / ICntI), and check
the crossover's first half: for lightweight work, C&A wins clearly.
"""

import time

from repro import Options, run_native, run_tool
from repro.baseline.ca_tools import CABBCount, CAICount, CANull
from repro.baseline.framework import run_ca
from repro.workloads.suite import build

from conftest import SCALE, geomean, save_and_show

PROGRAMS = ("crafty", "gzip", "vpr", "mgrid")


def _time(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def test_lightweight_comparison(benchmark, capsys):
    def sweep():
        rows = []
        for name in PROGRAMS:
            wl = build(name, scale=SCALE)
            t_nat = _time(lambda: run_native(wl.image))
            r = {
                "name": name,
                "ca-null": _time(lambda: run_ca(wl.image, CANull())) / t_nat,
                "ca-bbcount": _time(lambda: run_ca(wl.image, CABBCount())) / t_nat,
                "ca-icount": _time(lambda: run_ca(wl.image, CAICount())) / t_nat,
                "dr-null": _time(
                    lambda: run_tool("none", wl.image,
                                     options=Options(log_target="capture"))
                ) / t_nat,
                "dr-icount": _time(
                    lambda: run_tool("icnt-inline", wl.image,
                                     options=Options(log_target="capture"))
                ) / t_nat,
            }
            rows.append(r)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    cols = ("ca-null", "ca-bbcount", "ca-icount", "dr-null", "dr-icount")
    lines = [
        "Section 5.4: lightweight tools on C&A (Pin-like) vs D&R (Valgrind)",
        "(slow-down factors vs native)",
        "",
        f"{'program':8s}" + "".join(f"{c:>12}" for c in cols),
    ]
    for r in rows:
        lines.append(f"{r['name']:8s}" + "".join(f"{r[c]:>12.2f}" for c in cols))
    gm = {c: geomean([r[c] for r in rows]) for c in cols}
    lines.append(f"{'geomean':8s}" + "".join(f"{gm[c]:>12.2f}" for c in cols))

    ratio_null = gm["dr-null"] / gm["ca-null"]
    ratio_count = gm["dr-icount"] / gm["ca-icount"]
    lines += [
        "",
        f"D&R / C&A, no instrumentation:    {ratio_null:.1f}x  (paper: 4.0x)",
        f"D&R / C&A, counting tool:         {ratio_count:.1f}x  (paper: 3.3x)",
        "",
        '"For lightweight DBA, Valgrind is less suitable than more',
        'performance-oriented frameworks such as Pin and DynamoRIO."',
    ]

    # -- shape: C&A wins clearly on lightweight work ------------------------------
    assert ratio_null > 1.5
    assert ratio_count > 1.5
    assert gm["ca-null"] < gm["dr-null"]
    assert gm["ca-icount"] < gm["dr-icount"]

    save_and_show(capsys, "lightweight", lines)
