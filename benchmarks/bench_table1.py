"""T1 — regenerate Table 1: Valgrind events, their trigger locations, and
Memcheck's callbacks for handling them.

The table is generated from the *live* registries: the event specs (with
their requirement numbers and trigger locations) and the callbacks the
real Memcheck tool registered at pre_clo_init.  The checks assert the
paper's coverage claims: every R4-R7 event exists, and Memcheck handles
each of them.
"""

from repro import Options, Valgrind, assemble, build_source
from repro.core.events import EVENT_SPECS

from conftest import save_and_show

#: The paper's Table 1, normalised: requirement -> its events.
PAPER_TABLE1 = {
    "R4": {"pre_reg_read", "post_reg_write", "pre_mem_read",
           "pre_mem_read_asciiz", "pre_mem_write", "post_mem_write"},
    "R5": {"new_mem_startup"},
    "R6": {"new_mem_mmap", "die_mem_munmap", "new_mem_brk", "die_mem_brk",
           "copy_mem_mremap"},
    "R7": {"new_mem_stack", "die_mem_stack"},
}


def test_table1_events(benchmark, capsys):
    # Boot a Memcheck core (and run a trivial client) so the registry
    # reflects a real configuration.
    image = assemble(build_source("main: movi r0, 0\n ret\n"), filename="t")
    vg = Valgrind("memcheck", Options(log_target="capture"))
    benchmark.pedantic(vg.run, args=(image,), rounds=1, iterations=1)

    rows = vg.events.table1()
    lines = [
        "Table 1: Valgrind events, trigger locations, and Memcheck callbacks",
        "",
        f"{'Req.':5s} {'Event':22s} {'Called from':34s} Memcheck callback",
        "-" * 100,
    ]
    for req, event, trigger, callback in rows:
        lines.append(f"{req:5s} {event:22s} {trigger:34s} {callback}")

    # -- coverage checks ----------------------------------------------------------
    by_req = {}
    handled = {}
    for req, event, trigger, callback in rows:
        by_req.setdefault(req, set()).add(event)
        handled[event] = callback != "-"
    for req, events in PAPER_TABLE1.items():
        assert events <= by_req.get(req, set()), f"missing events for {req}"
        for e in events:
            assert handled[e], f"Memcheck does not handle {e}"

    # The trigger locations match the paper's table.
    assert EVENT_SPECS["pre_reg_read"][1] == "every system call wrapper"
    assert EVENT_SPECS["new_mem_startup"][1] == "the core's code loader"
    assert "brk wrapper" in EVENT_SPECS["new_mem_brk"][1]
    assert "SP changes" in EVENT_SPECS["new_mem_stack"][1]

    n_handled = sum(handled.values())
    lines += ["", f"events handled by Memcheck: {n_handled}/{len(rows)}"]
    save_and_show(capsys, "table1", lines)
