"""S5.1 — regenerate the tool-writing-ease comparison (code sizes).

Paper (Valgrind 3.2.1): core 170,280 lines of C + 3,207 asm; Memcheck
10,509; Cachegrind 2,431; Massif 1,764; Nulgrind 39.  Also: a memory
tracer is ~30 lines in Pin vs ~100 in Valgrind; the system-call wrappers
alone are ~15,000 lines ("almost 15,000 lines of tedious C code... in
comparison, Memcheck is 10,509 lines").

We count our own analogues and check the *ordering* claims:

    core >> Memcheck >> Cachegrind > Massif >> Nulgrind
    C&A tracer << D&R tracer
"""

import pathlib

from conftest import save_and_show

SRC = pathlib.Path(__file__).parent.parent / "src" / "repro"


def _loc(*parts) -> int:
    """Physical lines (comments and blanks included, like the paper)."""
    path = SRC.joinpath(*parts)
    if path.is_file():
        return len(path.read_text().splitlines())
    return sum(
        len(p.read_text().splitlines()) for p in sorted(path.rglob("*.py"))
    )


def test_code_sizes(benchmark, capsys):
    core = benchmark.pedantic(
        lambda: sum(
            _loc(p)
            for p in ("core", "ir", "frontend", "opt", "backend", "guest",
                      "kernel", "libc")
        ),
        rounds=1,
        iterations=1,
    )
    sizes = {
        "core (framework)": core,
        "  of which syscall wrappers": _loc("core", "syscalls.py"),
        "memcheck": _loc("tools", "memcheck"),
        "cachegrind (+cachesim)": _loc("tools", "cachegrind.py")
        + _loc("tools", "cachesim.py"),
        "massif": _loc("tools", "massif.py"),
        "taintcheck": _loc("tools", "taintcheck.py"),
        "tracegrind (D&R tracer)": _loc("tools", "tracegrind.py"),
        "nulgrind": _loc("tools", "nulgrind.py"),
        "C&A framework (Pin stand-in)": _loc("baseline", "framework.py"),
    }
    import inspect

    from repro.baseline.ca_tools import CATracer
    from repro.tools.nulgrind import Nulgrind

    ca_tracer = len(inspect.getsource(CATracer).splitlines())
    nul_body = len(inspect.getsource(Nulgrind).splitlines())

    lines = [
        "Section 5.1: code sizes (physical lines, comments included)",
        "",
        f"{'component':32s} {'ours':>7}   paper (C)",
    ]
    paper = {
        "core (framework)": "170,280 + 3,207 asm",
        "  of which syscall wrappers": "~15,000",
        "memcheck": "10,509",
        "cachegrind (+cachesim)": "2,431",
        "massif": "1,764",
        "nulgrind": "39",
        "tracegrind (D&R tracer)": "~100",
    }
    for name, n in sizes.items():
        lines.append(f"{name:32s} {n:>7}   {paper.get(name, '-')}")
    lines += [
        f"{'C&A tracer (class body)':32s} {ca_tracer:>7}   ~30 (Pin)",
        f"{'nulgrind (class body)':32s} {nul_body:>7}   39",
        "",
        "ordering checks: core >> memcheck >> cachegrind > massif >> nulgrind;",
        "C&A tracer << D&R tracer; wrappers are a sizeable slice of the core.",
    ]

    # -- the paper's ordering claims ----------------------------------------------
    assert sizes["core (framework)"] > 3 * sizes["memcheck"]
    assert sizes["memcheck"] > sizes["cachegrind (+cachesim)"]
    assert sizes["cachegrind (+cachesim)"] > sizes["massif"]
    assert sizes["massif"] > sizes["nulgrind"]
    assert nul_body < 10  # "the whole of it is the default instrument method"
    assert ca_tracer * 2 < sizes["tracegrind (D&R tracer)"]

    save_and_show(capsys, "code_sizes", lines)
