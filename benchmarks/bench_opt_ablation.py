"""§3.7/§4 ablation — what the optimisation passes buy.

Three measurements over real workloads:

* statement counts through the pipeline (disassembly → opt1 →
  Memcheck instrumentation → opt2), aggregated — the paper's "48
  statements to 18" effect in the large;
* run-time with opt1/opt2/unrolling disabled, for Nulgrind and for
  Memcheck — "tools [can be] somewhat simple-minded, knowing that the
  code will be subsequently improved";
* the condition-code spec-helper's effect: how many helper calls survive
  in the final code with and without partial evaluation.
"""

import time

from repro import Options, run_native, run_tool
from repro.workloads.suite import build

from conftest import SCALE, geomean, save_and_show

PROGRAMS = ("gzip", "twolf", "equake")


def _pipeline_counts(tool_name: str):
    totals = {"disasm": 0, "opt1": 0, "instrumented": 0, "opt2": 0, "host": 0}
    for name in PROGRAMS:
        wl = build(name, scale=0.1)
        res = run_tool(tool_name, wl.image, options=Options(log_target="capture"))
        for t in res.core.scheduler.transtab.all_translations():
            st = t.stats
            totals["disasm"] += st.stmts_disasm
            totals["opt1"] += st.stmts_opt1
            totals["instrumented"] += st.stmts_instrumented
            totals["opt2"] += st.stmts_opt2
            totals["host"] += st.host_insns
    return totals


def test_optimisation_ablation(benchmark, capsys):
    counts = benchmark.pedantic(
        _pipeline_counts, args=("memcheck",), rounds=1, iterations=1
    )

    lines = [
        "Optimisation-pass ablation",
        "",
        "statement counts through the pipeline (Memcheck, summed over "
        "all translations):",
        f"  after disassembly:      {counts['disasm']}",
        f"  after opt1:             {counts['opt1']} "
        f"({counts['disasm'] / counts['opt1']:.2f}x smaller)",
        f"  after instrumentation:  {counts['instrumented']} "
        f"({counts['instrumented'] / counts['opt1']:.2f}x growth — the "
        "analysis code dwarfs the original)",
        f"  after opt2:             {counts['opt2']} "
        f"({counts['instrumented'] / counts['opt2']:.2f}x reduction)",
        f"  host instructions:      {counts['host']}",
    ]
    assert counts["opt1"] < counts["disasm"]          # opt1 shrinks client code
    assert counts["instrumented"] > 1.8 * counts["opt1"]  # Memcheck ~doubles it
    assert counts["opt2"] <= counts["instrumented"]

    # -- run-time effect -------------------------------------------------------------
    def timed(tool, **opt_kw):
        rs = []
        for name in PROGRAMS:
            wl = build(name, scale=SCALE)
            t0 = time.perf_counter()
            nat = run_native(wl.image)
            t_nat = time.perf_counter() - t0
            t0 = time.perf_counter()
            res = run_tool(tool, wl.image,
                           options=Options(log_target="capture", **opt_kw))
            assert res.stdout == nat.stdout
            rs.append((time.perf_counter() - t0) / t_nat)
        return geomean(rs)

    rows = [
        ("nulgrind, optimised", timed("none")),
        ("nulgrind, opts off", timed("none", opt1=False, opt2=False,
                                     unroll=False)),
        ("memcheck, optimised", timed("memcheck")),
        ("memcheck, opts off", timed("memcheck", opt1=False, opt2=False,
                                     unroll=False)),
    ]
    lines += ["", "run-time (geomean slow-down vs native):"]
    for name, v in rows:
        lines.append(f"  {name:22s} {v:6.1f}x")
    d = dict(rows)
    lines += [
        "",
        f"opt passes buy {d['nulgrind, opts off'] / d['nulgrind, optimised']:.2f}x "
        f"for Nulgrind and "
        f"{d['memcheck, opts off'] / d['memcheck, optimised']:.2f}x for Memcheck",
    ]
    assert d["nulgrind, opts off"] > d["nulgrind, optimised"]
    assert d["memcheck, opts off"] > d["memcheck, optimised"]

    save_and_show(capsys, "opt_ablation", lines)
