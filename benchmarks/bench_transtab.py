"""S3.8 — translation storage: FIFO chunk eviction vs LRU.

Paper: the table is large and rarely fills; when it passes 80% full,
1/8th is evicted FIFO — "chosen over the more obvious LRU... because it
is simpler and it still does a fairly good job".

We force eviction by running a code-churn workload (many distinct blocks,
with a hot loop that keeps returning to old code) under a deliberately
tiny table, and compare retranslation counts under FIFO and LRU.  The
claim to verify is *not* that FIFO wins — it is that FIFO is not much
worse ("still does a fairly good job").
"""

from repro import Options, run_tool
from repro.guest.asm import assemble
from repro.libc.stubs import build_source

from conftest import save_and_show


def _churn_program(n_funcs: int = 120) -> str:
    """A hot loop that calls one small *hot* function and a rotating set of
    cold functions, so the working set exceeds a small translation table
    but part of it (the hot function) is always worth keeping."""
    parts = ["        .text", "main:   movi r7, 3"]
    parts.append("outer:  movi r6, 0")
    parts.append("inner:  call hot")
    parts.append("        mov  r1, r6")
    parts.append("        shl  r1, 2")
    parts.append("        ld   r1, [table+r1]")
    parts.append("        call r1")
    parts.append("        inc  r6")
    parts.append(f"        cmpi r6, {n_funcs}")
    parts.append("        jl   inner")
    parts.append("        dec  r7")
    parts.append("        jnz  outer")
    parts.append("        movi r0, 0")
    parts.append("        ret")
    parts.append("hot:    movi r0, 1")
    parts.append("        addi r0, 2")
    parts.append("        ret")
    for i in range(n_funcs):
        parts.append(f"f{i}:    movi r0, {i}")
        parts.append("        inc  r0")
        parts.append("        ret")
    parts.append("        .data")
    parts.append("table:  .word " + ", ".join(f"f{i}" for i in range(n_funcs)))
    return "\n".join(parts)


def test_transtab_fifo_vs_lru(benchmark, capsys):
    image = assemble(build_source(_churn_program()), filename="churn")

    def run(policy: str):
        res = run_tool(
            "none",
            image,
            options=Options(
                log_target="capture",
                transtab_entries=64,  # tiny: forces constant eviction
                transtab_policy=policy,
            ),
        )
        return res

    fifo = benchmark.pedantic(run, args=("fifo",), rounds=1, iterations=1)
    lru = run("lru")
    big = run_tool(
        "none", image,
        options=Options(log_target="capture", transtab_entries=32768),
    )
    assert fifo.stdout == lru.stdout == big.stdout

    rows = []
    for name, res in (("fifo/64", fifo), ("lru/64", lru), ("fifo/32768", big)):
        st = res.core.scheduler.transtab.stats
        rows.append(
            (name, res.outcome.translations, st.evict_rounds, st.evicted)
        )

    lines = [
        "Section 3.8: translation-table eviction — FIFO vs LRU",
        "(64-entry table on a code-churn workload; ~150 distinct blocks)",
        "",
        f"{'config':12s} {'translations':>13} {'evict rounds':>13} {'evicted':>9}",
    ]
    for name, trans, rounds, evicted in rows:
        lines.append(f"{name:12s} {trans:>13} {rounds:>13} {evicted:>9}")
    f_trans, l_trans, big_trans = rows[0][1], rows[1][1], rows[2][1]
    lines += [
        "",
        f"retranslation overhead: FIFO {f_trans / big_trans:.1f}x, "
        f"LRU {l_trans / big_trans:.1f}x the no-eviction translation count",
        f"FIFO/LRU ratio: {f_trans / l_trans:.2f} "
        "(paper: FIFO 'still does a fairly good job')",
        "",
        "note: hot blocks are mostly served from the dispatcher's",
        "direct-mapped cache, which bypasses table look-ups — so accurate",
        "recency data is not even cheaply available, which is itself an",
        "argument for the paper's simpler FIFO choice.",
    ]

    # Both policies evict heavily; FIFO must be within 2x of LRU.
    assert rows[0][2] > 0 and rows[1][2] > 0
    assert rows[2][2] == 0  # the big table never evicts (it "rarely fills")
    assert f_trans <= 2.0 * l_trans

    save_and_show(capsys, "transtab", lines)
