"""F3 — regenerate Figure 3: register allocation before and after.

The paper shows the tree-built statement ``t21 = Or32(t19,Neg32(t19))``
selected into five virtual-register instructions, which the linear-scan
allocator shrinks to three — "the register allocator can remove many
register-to-register moves".

We build the same shadow-add pattern (it is exactly what Memcheck's Left
operation produces), show the virtual-register instruction list and the
allocated list side by side, and assert that moves were removed.
"""

from repro.backend.hostisa import MOVR, fmt_insns
from repro.backend.isel import select
from repro.backend.regalloc import allocate
from repro.ir import IRSB, Binop, Get, Put, RdTmp, Ty, Unop, WrTmp, c32
from repro.opt.treebuild import build_trees

from conftest import save_and_show


def _block():
    """The paper's pattern around ``t21 = Or32(t19,Neg32(t19))``: the
    two-address-style copy ``t41 = t19`` feeds the Neg and the Or, and
    t19 dies at the copy — exactly the move the allocator can coalesce."""
    sb = IRSB(guest_addr=0x100)
    t19 = sb.new_tmp(Ty.I32)
    t41 = sb.new_tmp(Ty.I32)
    t40 = sb.new_tmp(Ty.I32)
    t21 = sb.new_tmp(Ty.I32)
    sb.add(WrTmp(t19, Get(0, Ty.I32)))
    sb.add(WrTmp(t41, RdTmp(t19)))              # movl %%vr19, %%vr41
    sb.add(WrTmp(t40, Unop("Neg32", RdTmp(t41))))   # negl
    sb.add(WrTmp(t21, Binop("Or32", RdTmp(t41), RdTmp(t40))))  # orl
    sb.add(Put(4, RdTmp(t21)))
    sb.next = c32(0x104)
    return sb


def test_figure3_regalloc(benchmark, capsys):
    vcode = select(_block())
    hcode, stats = benchmark(allocate, vcode)

    before = fmt_insns(vcode).splitlines()
    after = fmt_insns(hcode).splitlines()
    width = max(len(l) for l in before) + 4
    lines = [
        "Figure 3: register allocation, before and after",
        "(virtual registers %%vrNN on the left, host registers on the right)",
        "",
        f"{'-- before --':{width}s}-- after --",
    ]
    for i in range(max(len(before), len(after))):
        l = before[i] if i < len(before) else ""
        r = after[i] if i < len(after) else ""
        lines.append(f"{l:{width}s}{r}")

    moves_in = sum(1 for i in vcode if isinstance(i, MOVR))
    moves_out = sum(1 for i in hcode if isinstance(i, MOVR))
    lines += [
        "",
        f"instructions: {len(vcode)} -> {len(hcode)}",
        f"register-to-register moves: {moves_in} -> {moves_out} "
        f"({stats.moves_removed} removed by coalescing)",
        "(paper: 5 virtual-reg instructions became 3, both moves removed)",
    ]

    assert stats.moves_removed >= 1
    assert moves_out < moves_in
    assert len(hcode) < len(vcode)
    assert stats.spilled_vregs == 0  # no spills needed here

    save_and_show(capsys, "figure3", lines)
