"""F2 — regenerate Figure 2: Memcheck-instrumented flat IR.

The paper instruments the Figure-1 ``movl`` and observes:

* 11 of the 18 final statements were added by Memcheck;
* shadow registers are ThreadState slots at +320 (sh(%eax) at 320,
  sh(%ebx) at 332) GET/PUT like guest registers;
* every guest operation is preceded by its shadow operation;
* the shadow add is the three-statement Or/Neg/Or ("Left") sequence;
* the shadow load is a CmpNEZ + *conditional* error-helper call
  (``DIRTY t27 RdFX-gst(16,4) RdFX-gst(60,4) ::: helperc_value_check4_fail``)
  plus a ``helperc_LOADV32le`` call;
* the post-instrumentation optimisation pass shrank the block from 48
  statements to 18 (a ~2.7x reduction).
"""

from repro.frontend.disasm import Disassembler
from repro.frontend.spec import vx32_spec_helper
from repro.guest.asm import assemble
from repro.ir import Dirty, fmt_irsb
from repro.opt.opt1 import optimise1
from repro.opt.opt2 import optimise2
from repro.tools.memcheck.instrument import MemcheckInstrumenter

from conftest import save_and_show

SOURCE = "_start: ld   r0, [r3+r0*4-16180]\n        add  r0, r3\n"


def _pipeline_upto_instrumentation():
    img = assemble(SOURCE, text_base=0x24F000)
    seg = img.text_segment
    dis = Disassembler(lambda a, n: seg.data[a - seg.addr : a - seg.addr + n])
    sb = dis.disasm_block(img.entry)
    return optimise1(sb, spec_helper=vx32_spec_helper)


def test_figure2_memcheck_instrumentation(benchmark, capsys):
    flat = _pipeline_upto_instrumentation()
    n_before = flat.num_real_stmts()
    instrumenter = MemcheckInstrumenter()

    instrumented = benchmark(instrumenter.instrument, flat.copy())
    n_raw = instrumented.num_real_stmts()
    cleaned = optimise2(instrumented, spec_helper=vx32_spec_helper)
    n_after = cleaned.num_real_stmts()

    text = fmt_irsb(cleaned)
    lines = [
        "Figure 2: Memcheck-instrumented flat IR for the Figure-1 load+add",
        "(statements present before instrumentation are the *originals*)",
        "",
        text,
        "",
        f"original statements:               {n_before}",
        f"after Memcheck instrumentation:    {n_raw}",
        f"after the second optimisation pass: {n_after}",
        f"reduction by opt2:                 {n_raw / n_after:.2f}x "
        "(paper: 48 -> 18, 2.7x, from a deliberately simple-minded",
        "                                   instrumenter; ours pre-folds"
        " constant shadows — see bench_opt_ablation)",
        f"added by Memcheck (net):           {n_after - n_before} of {n_after}"
        " (paper: 11 of 18)",
    ]

    # -- the paper's structural claims ------------------------------------------
    # Shadow registers are first-class state at +320/+332.
    assert "GET:I32(320)" in text or "PUT(320)" in text   # sh(r0)
    assert "GET:I32(332)" in text                         # sh(r3)
    # The shadow add is the Left sequence: Or, Neg, Or.
    assert "Neg32(" in text and "Or32(" in text
    # The shadow load: a guarded error call annotated as reading SP and PC,
    # and the LOADV helper call.
    assert "helperc_value_check4_fail" in text
    assert "RdFX-gst(16,4)" in text and "RdFX-gst(60,4)" in text
    assert "helperc_LOADV32le" in text
    guarded = [
        s for s in cleaned.stmts
        if isinstance(s, Dirty) and s.guard is not None
    ]
    assert guarded, "the error call must be conditional on the shadow bits"
    # Instrumentation roughly doubles the statement count, and opt2 still
    # finds something to remove even though our instrumenter pre-folds the
    # constant-shadow cases the paper's 48->18 reduction came from.
    assert n_after - n_before >= n_before // 2
    assert n_raw > n_after

    save_and_show(capsys, "figure2", lines)
