"""Fleet supervisor throughput, self-healing overhead, and warm starts.

Not a paper figure: this measures the PR's service layer — the
crash-isolated worker pool behind :func:`repro.api.run_fleet` — on four
axes:

* ``sequential``  — N jobs run back-to-back in-process via ``api.run``
  (the no-pool baseline);
* ``fleet``       — the same N jobs across a 4-worker pool, no faults;
* ``fleet+chaos`` — the same fleet under a seeded worker-fault plan
  (kill/hang mid-run) with retry + backoff, measuring what the
  self-healing machinery costs when things actually go wrong;
* ``warm start``  — a translation-heavy fleet (hundreds of distinct
  blocks under Memcheck at the pygen tier) with a shared persistent
  ``--cache-dir``, run cache-less, cache-cold and cache-warm.  The warm
  run skips the whole 8-phase pipeline on every block.

Gates: every clean job succeeds, every chaos job ends in a classified
terminal state, the warm fleet reports cache hits in the aggregated
stats, and warm wall time beats the no-cache fleet by ``WARM_GATE``
(1.3x at full scale; relaxed on ``--quick`` smoke runs where fork
overhead dominates the tiny jobs).

The timing table is also written machine-readable to
``BENCH_fleet.json`` at the repo root.
"""

import json
import pathlib
import tempfile
import time

from repro.api import JobSpec, RetryPolicy, WatchdogConfig, run, run_fleet
from repro.core.faultinject import FleetInjector
from repro.core.supervisor import TERMINAL_STATES

from conftest import QUICK_SCALE, SCALE, save_and_show

ITERS = max(2000, int(40_000 * SCALE))
N_JOBS = max(8, int(60 * SCALE))
WORKERS = 4

#: Warm-start phase sizing: distinct functions (= distinct translations)
#: per program, and identical jobs sharing one cache directory.
N_FUNCS = max(60, int(400 * SCALE))
N_CACHE_JOBS = max(6, int(24 * SCALE))

#: Warm-vs-nocache wall-time gate.  At --quick scale the pool's fork +
#: pipe overhead dominates these small jobs, so only sanity-gate there.
WARM_GATE = 1.3 if SCALE > QUICK_SCALE else 1.05

JSON_PATH = pathlib.Path(__file__).parent.parent / "BENCH_fleet.json"

LOOP_SRC = """\
main:
        movi r0, %d
loop:
        sub  r0, 1
        jnz  loop
        movi r0, 7
        ret
""" % ITERS

FLAGS = ["--dispatch-quantum=200"]
CACHE_FLAGS = ["--codegen=pygen", "--stats=json"]
WATCHDOG = WatchdogConfig(wall_budget=120.0, heartbeat_timeout=5.0,
                          poll_interval=0.01)


def _many_blocks_src(n_funcs: int) -> str:
    """A program that is almost all translation: *n_funcs* distinct
    functions, each called once and looping only a handful of times."""
    parts = ["main:"]
    for i in range(n_funcs):
        parts.append(f"        call fn{i}")
    parts += ["        movi r0, 7", "        ret"]
    for i in range(n_funcs):
        parts += [
            f"fn{i}:",
            f"        movi r1, {i}",
            "        add  r6, r1",
            "        movi r2, 3",
            f"lp{i}:",
            "        sub  r2, 1",
            f"        jnz  lp{i}",
            "        ret",
        ]
    return "\n".join(parts) + "\n"


def _jobs(program, n, tool="none", flags=FLAGS):
    return [JobSpec(job_id=i, program=program, tool=tool,
                    flags=list(flags)) for i in range(n)]


def _timed_fleet(jobs, **kw):
    t0 = time.perf_counter()
    report = run_fleet(jobs, workers=WORKERS, watchdog=WATCHDOG, **kw)
    return time.perf_counter() - t0, report


def test_fleet_bench(capsys, tmp_path):
    program = str(tmp_path / "loop.s")
    with open(program, "w") as f:
        f.write(LOOP_SRC)

    t0 = time.perf_counter()
    for spec in _jobs(program, N_JOBS):
        res = run(spec.program, spec.tool, argv=[spec.program])
        assert res.exit_code == 7
    t_seq = time.perf_counter() - t0

    with tempfile.TemporaryDirectory() as bundles:
        t_fleet, clean = _timed_fleet(
            _jobs(program, N_JOBS), bundle_dir=bundles,
        )

    with tempfile.TemporaryDirectory() as bundles:
        t_chaos, chaos = _timed_fleet(
            _jobs(program, N_JOBS),
            policy=RetryPolicy(max_retries=2, backoff_base=0.01, seed=7),
            inject=FleetInjector("kill:0.2,hang:0.05,seed=7"),
            bundle_dir=bundles,
        )

    assert clean.summary["succeeded"] == N_JOBS
    mix = {s: chaos.summary[s] for s in TERMINAL_STATES}
    assert sum(mix.values()) == N_JOBS  # every job classified

    # -- warm start: shared persistent translation cache ----------------
    heavy = str(tmp_path / "many_blocks.s")
    with open(heavy, "w") as f:
        f.write(_many_blocks_src(N_FUNCS))
    cache_dir = str(tmp_path / "codecache")

    def cache_jobs():
        return _jobs(heavy, N_CACHE_JOBS, tool="memcheck",
                     flags=CACHE_FLAGS)

    t_nocache, nocache = _timed_fleet(cache_jobs(), record_bundles=False)
    t_cold, cold = _timed_fleet(cache_jobs(), record_bundles=False,
                                cache_dir=cache_dir)
    t_warm, warm = _timed_fleet(cache_jobs(), record_bundles=False,
                                cache_dir=cache_dir)

    for rep in (nocache, cold, warm):
        assert rep.summary["succeeded"] == N_CACHE_JOBS
    assert warm.cache is not None and warm.cache["hits"] > 0
    warm_speedup = t_nocache / t_warm
    assert warm_speedup >= WARM_GATE, (
        f"warm fleet speedup {warm_speedup:.2f}x < gate {WARM_GATE}x "
        f"(nocache {t_nocache:.2f}s, warm {t_warm:.2f}s)"
    )

    rows = [
        ("sequential", t_seq, N_JOBS),
        (f"fleet x{WORKERS}", t_fleet, N_JOBS),
        (f"fleet x{WORKERS} +chaos", t_chaos, N_JOBS),
        ("cache: none", t_nocache, N_CACHE_JOBS),
        ("cache: cold shared", t_cold, N_CACHE_JOBS),
        ("cache: warm shared", t_warm, N_CACHE_JOBS),
    ]
    lines = [
        f"fleet supervisor: {N_JOBS} jobs of {ITERS} loop iterations "
        f"(tool=none, {WORKERS} workers); warm-start phase: "
        f"{N_CACHE_JOBS} jobs x {N_FUNCS} functions "
        f"(memcheck, pygen tier)",
        "",
        f"{'mode':<22} {'wall (s)':>9} {'jobs/s':>8}",
    ]
    for name, wall, n in rows:
        lines.append(f"{name:<22} {wall:>9.2f} {n / wall:>8.1f}")
    lines += [
        "",
        "chaos terminal states: "
        + " ".join(f"{k}={v}" for k, v in mix.items()),
        "chaos attempts: %d  worker deaths: %d  hang reaps: %d"
        % (chaos.summary["attempts"],
           chaos.summary["worker_deaths"],
           chaos.summary["watchdog_hang"]),
        "warm cache: hits=%d misses=%d stores=%d  speedup %.2fx "
        "(gate %.2fx)"
        % (warm.cache["hits"], warm.cache["misses"],
           warm.cache["stores"], warm_speedup, WARM_GATE),
    ]
    save_and_show(capsys, "fleet", lines)

    JSON_PATH.write_text(json.dumps({
        "scale": SCALE,
        "workers": WORKERS,
        "jobs": N_JOBS,
        "cache_jobs": N_CACHE_JOBS,
        "cache_funcs": N_FUNCS,
        "wall_seconds": {
            "sequential": round(t_seq, 3),
            "fleet": round(t_fleet, 3),
            "fleet_chaos": round(t_chaos, 3),
            "cache_none": round(t_nocache, 3),
            "cache_cold": round(t_cold, 3),
            "cache_warm": round(t_warm, 3),
        },
        "warm_speedup": round(warm_speedup, 3),
        "warm_gate": WARM_GATE,
        "warm_cache_stats": warm.cache,
        "chaos_terminal_states": mix,
    }, indent=2) + "\n")
