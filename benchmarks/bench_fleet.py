"""Fleet supervisor throughput and self-healing overhead.

Not a paper figure: this measures the PR's service layer — the
crash-isolated worker pool in :mod:`repro.core.supervisor` — on three
axes:

* ``sequential``  — N jobs run back-to-back in-process via ``run_job``
  (the no-pool baseline);
* ``fleet``       — the same N jobs across a 4-worker pool, no faults;
* ``fleet+chaos`` — the same fleet under a seeded worker-fault plan
  (kill/hang mid-run) with retry + backoff, measuring what the
  self-healing machinery costs when things actually go wrong.

The table reports wall time, jobs/sec, and the chaos run's terminal
state mix.  Gate: every clean job succeeds and every chaos job ends in
a classified terminal state (the supervisor's core contract).  The
throughput rows are informative — at smoke scales the pool's fork
overhead dominates these tiny jobs.
"""

import tempfile
import time

from repro.core.faultinject import FleetInjector
from repro.core.supervisor import (
    TERMINAL_STATES,
    FleetSupervisor,
    JobSpec,
    RetryPolicy,
    WatchdogConfig,
    run_job,
)

from conftest import SCALE, save_and_show

ITERS = max(2000, int(40_000 * SCALE))
N_JOBS = max(8, int(60 * SCALE))
WORKERS = 4

LOOP_SRC = """\
main:
        movi r0, %d
loop:
        sub  r0, 1
        jnz  loop
        movi r0, 7
        ret
""" % ITERS

FLAGS = ["--dispatch-quantum=200"]
WATCHDOG = WatchdogConfig(wall_budget=120.0, heartbeat_timeout=5.0,
                          poll_interval=0.01)


def _jobs(program):
    return [JobSpec(job_id=i, program=program, tool="none",
                    flags=list(FLAGS)) for i in range(N_JOBS)]


def test_fleet_bench(capsys, tmp_path):
    program = str(tmp_path / "loop.s")
    with open(program, "w") as f:
        f.write(LOOP_SRC)

    t0 = time.perf_counter()
    for spec in _jobs(program):
        res = run_job(spec.program, spec.tool,
                      argv=[spec.program])
        assert res.exit_code == 7
    t_seq = time.perf_counter() - t0

    with tempfile.TemporaryDirectory() as bundles:
        t0 = time.perf_counter()
        clean = FleetSupervisor(
            _jobs(program), workers=WORKERS, watchdog=WATCHDOG,
            bundle_dir=bundles,
        ).run()
        t_fleet = time.perf_counter() - t0

    with tempfile.TemporaryDirectory() as bundles:
        t0 = time.perf_counter()
        chaos = FleetSupervisor(
            _jobs(program), workers=WORKERS, watchdog=WATCHDOG,
            policy=RetryPolicy(max_retries=2, backoff_base=0.01, seed=7),
            inject=FleetInjector("kill:0.2,hang:0.05,seed=7"),
            bundle_dir=bundles,
        ).run()
        t_chaos = time.perf_counter() - t0

    assert clean["summary"]["succeeded"] == N_JOBS
    mix = {s: chaos["summary"][s] for s in TERMINAL_STATES}
    assert sum(mix.values()) == N_JOBS  # every job classified

    rows = [
        ("sequential", t_seq, None),
        (f"fleet x{WORKERS}", t_fleet, None),
        (f"fleet x{WORKERS} +chaos", t_chaos, mix),
    ]
    lines = [
        f"fleet supervisor: {N_JOBS} jobs of {ITERS} loop iterations "
        f"(tool=none, {WORKERS} workers)",
        "",
        f"{'mode':<22} {'wall (s)':>9} {'jobs/s':>8}",
    ]
    for name, wall, _ in rows:
        lines.append(f"{name:<22} {wall:>9.2f} {N_JOBS / wall:>8.1f}")
    lines += [
        "",
        "chaos terminal states: "
        + " ".join(f"{k}={v}" for k, v in mix.items()),
        "chaos attempts: %d  worker deaths: %d  hang reaps: %d"
        % (chaos["summary"]["attempts"],
           chaos["summary"]["worker_deaths"],
           chaos["summary"]["watchdog_hang"]),
    ]
    save_and_show(capsys, "fleet", lines)
