"""Codegen-tier ablation: refcpu / default / ``--perf`` / pygen / auto.

The pygen tier (see :mod:`repro.backend.pygen`) compiles each
register-allocated block to one specialized CPython function — the
closest Python analogue of the paper's emit-real-host-code back-end.
This bench measures what each execution tier buys on the dispatcher
workloads (the Table 2 subset used by ``bench_dispatcher``):

* ``native``  — the reference CPU, no Valgrind (baseline wall clock);
* ``default`` — the paper-faithful closure engine;
* ``perf``    — the PR-1 hot path (content-addressed runners, chaining,
  megacache);
* ``pygen``   — perf dispatch + every block in the pygen tier;
* ``auto``    — perf dispatch + closure runners promoted to pygen at
  ``--jit-threshold`` executions.

Gate: pygen must clear a 2x blocks/sec geomean over perf for Nulgrind
(1.6x for Memcheck, which leans on the inlined LOADV/STOREV fast paths
— see ``--memcheck-fastpath``), with byte-identical output everywhere.
Results are also written machine-readable to ``BENCH_codegen.json`` at
the repo root for trend tracking across PRs.
"""

import json
import pathlib
import time

from repro import Options, run_native, run_tool
from repro.workloads.suite import build

from conftest import SCALE, geomean, save_and_show

#: Tier ratios compare steady-state *execution* throughput, but each
#: timed run pays its translation cost up front — an additive constant
#: that dilutes blocks/sec at small scales.  Measure at a scale where
#: execution dominates; --quick smoke runs (scale < 0.2) keep their tiny
#: scale and get proportionally relaxed gates below.
CG_SCALE = SCALE if SCALE < 0.2 else max(SCALE, 0.4)

PROGRAMS = ("gzip", "mcf", "twolf", "swim")
#: Memcheck columns run on the integer pair only (FP Memcheck runs are
#: several times slower and add no new tiering behaviour).
MEMCHECK_PROGRAMS = ("gzip", "mcf")

ENGINES = ("default", "perf", "pygen", "auto")
_ENGINE_OPTS = {
    "default": {},
    "perf": {"perf": True},
    "pygen": {"perf": True, "codegen": "pygen"},
    "auto": {"perf": True, "codegen": "auto"},
}

JSON_PATH = pathlib.Path(__file__).parent.parent / "BENCH_codegen.json"


def _timed_run(tool, name, engine):
    """Best-of-two timed runs of one (tool, program, engine) cell."""
    best = None
    for _ in range(2):
        wl = build(name, scale=CG_SCALE)
        opts = Options(log_target="capture", **_ENGINE_OPTS[engine])
        t0 = time.perf_counter()
        res = run_tool(tool, wl.image, options=opts)
        dt = time.perf_counter() - t0
        if best is None or dt < best[0]:
            best = (dt, res)
    return best


def _run_suite():
    rows = []
    for name in PROGRAMS:
        tools = ("none", "memcheck") if name in MEMCHECK_PROGRAMS else ("none",)
        wl = build(name, scale=CG_SCALE)
        t0 = time.perf_counter()
        nat = run_native(wl.image)
        t_native = time.perf_counter() - t0
        for tool in tools:
            row = {"program": name, "tool": tool, "native_s": t_native}
            for engine in ENGINES:
                dt, res = _timed_run(tool, name, engine)
                assert res.stdout == nat.stdout, (name, tool, engine)
                assert res.exit_code == nat.exit_code, (name, tool, engine)
                row[engine] = {
                    "seconds": dt,
                    "blocks": res.outcome.blocks_executed,
                    "blocks_per_s": res.outcome.blocks_executed / dt,
                    "guest_insns": res.outcome.guest_insns,
                }
            rows.append(row)
    return rows


def test_codegen_tiers(benchmark, capsys):
    # One warm-up round fills the process-wide runner/pygen source caches,
    # as in any long-running use; timings come from the second round.
    rows = benchmark.pedantic(_run_suite, rounds=1, iterations=1,
                              warmup_rounds=1)

    lines = [
        f"Codegen tiers: blocks/sec by engine (workload scale {CG_SCALE})",
        "",
        f"{'program':8s} {'tool':9s} "
        + "".join(f"{e:>10}" for e in ENGINES)
        + f" {'pygen/perf':>11}",
    ]
    ratios = {"none": [], "memcheck": []}
    for row in rows:
        ratio = row["pygen"]["blocks_per_s"] / row["perf"]["blocks_per_s"]
        ratios[row["tool"]].append(ratio)
        row["pygen_vs_perf"] = ratio
        lines.append(
            f"{row['program']:8s} {row['tool']:9s} "
            + "".join(f"{row[e]['blocks_per_s']:>10.0f}" for e in ENGINES)
            + f" {ratio:>10.2f}x"
        )
    gm_nulgrind = geomean(ratios["none"])
    gm_memcheck = geomean(ratios["memcheck"])
    lines += [
        "-" * 72,
        f"geomean pygen/perf blocks/sec: Nulgrind {gm_nulgrind:.2f}x, "
        f"Memcheck {gm_memcheck:.2f}x",
        "",
        "every engine produced byte-identical output to the native run.",
    ]

    payload = {
        "bench": "codegen",
        "scale": CG_SCALE,
        "engines": list(ENGINES),
        "rows": rows,
        "geomean": {
            "nulgrind_pygen_vs_perf": gm_nulgrind,
            "memcheck_pygen_vs_perf": gm_memcheck,
        },
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # The tiering gate.  Tiny --quick/smoke scales dilute blocks/sec with
    # per-run translation time that a long-running process amortises; the
    # full bands apply at the default scale and above.
    if CG_SCALE >= 0.2:
        assert gm_nulgrind >= 2.0, gm_nulgrind
        assert gm_memcheck >= 1.6, gm_memcheck
    else:
        assert gm_nulgrind >= 1.2, gm_nulgrind
        assert gm_memcheck >= 1.2, gm_memcheck
    # auto must eventually reach pygen-tier throughput territory: better
    # than plain perf on the Nulgrind rows.
    auto = geomean([
        r["auto"]["blocks_per_s"] / r["perf"]["blocks_per_s"]
        for r in rows if r["tool"] == "none"
    ])
    assert auto > 1.0, auto

    save_and_show(capsys, "codegen", lines)
