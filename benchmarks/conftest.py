"""Shared machinery for the benchmark harness.

Each ``bench_*.py`` regenerates one table or figure from the paper (see
DESIGN.md's experiment index).  Every bench

* prints its table/figure to the terminal (through ``capsys.disabled()``,
  so it shows even without ``-s``), and
* writes the same text to ``benchmarks/results/<id>.txt``, which
  EXPERIMENTS.md indexes.

The workload scale can be adjusted with REPRO_BENCH_SCALE (default 0.2);
larger scales sharpen the timing ratios at the cost of wall-clock time.
"""

from __future__ import annotations

import os
import pathlib
import time

import pytest

#: Workload scale for timing benches.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.2"))

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_and_show(capsys, experiment_id: str, lines) -> None:
    """Print a report (bypassing capture) and save it under results/."""
    text = "\n".join(lines) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(text)
    with capsys.disabled():
        print(f"\n──── {experiment_id} " + "─" * max(0, 60 - len(experiment_id)))
        print(text, end="")


def time_run(fn) -> float:
    """Wall-clock one call."""
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def geomean(values) -> float:
    import math

    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))
