"""Shared machinery for the benchmark harness.

Each ``bench_*.py`` regenerates one table or figure from the paper (see
DESIGN.md's experiment index).  Every bench

* prints its table/figure to the terminal (through ``capsys.disabled()``,
  so it shows even without ``-s``), and
* writes the same text to ``benchmarks/results/<id>.txt``, which
  EXPERIMENTS.md indexes.

The workload scale can be adjusted with REPRO_BENCH_SCALE (default 0.2);
larger scales sharpen the timing ratios at the cost of wall-clock time.
"""

from __future__ import annotations

import os
import pathlib
import time

import pytest

#: Workload scale for timing benches.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.2"))

#: Scale used when the ``--quick`` flag is given (CI smoke runs).
QUICK_SCALE = 0.1

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help=f"smoke-run the benches at scale {QUICK_SCALE} "
        "(overrides REPRO_BENCH_SCALE)",
    )


def pytest_configure(config):
    # Benches read SCALE at import, which happens after configure — so a
    # plain module-global update is enough.
    if config.getoption("--quick", default=False):
        global SCALE
        SCALE = QUICK_SCALE


def save_and_show(capsys, experiment_id: str, lines) -> None:
    """Print a report (bypassing capture) and save it under results/."""
    text = "\n".join(lines) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(text)
    with capsys.disabled():
        print(f"\n──── {experiment_id} " + "─" * max(0, 60 - len(experiment_id)))
        print(text, end="")


def time_run(fn) -> float:
    """Wall-clock one call."""
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def geomean(values) -> float:
    import math

    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))
