"""T2 — regenerate Table 2: performance of four Valgrind tools on the
(SPEC CPU2000-shaped) workload suite.

For each of the 25 programs we run: native (the reference CPU), Nulgrind,
ICntI (inline instruction counter), ICntC (helper-call counter) and
Memcheck (leak check off, as in the paper), and report per-program
slow-down factors and the geometric means.

The paper's absolute factors (4.3 / 8.8 / 13.5 / 22.1 on real hardware)
cannot transfer to a Python host; the *shape* must and does:

    Nulgrind < ICntI < ICntC,  and  Memcheck well above both counters

with Memcheck a multiple of Nulgrind.  Since the inlined LOADV/STOREV
shadow fast paths (`--memcheck-fastpath`, paper Section 4) Memcheck's
geomean sits only a little above ICntC — its per-access helpers no
longer pay a Python call on the hot path, while ICntC still calls one
helper per instruction by design — so the gate no longer insists on
ICntC < Memcheck, only that Memcheck stays the most expensive tool by a
clear margin over ICntI and over Nulgrind.  Correctness is woven in:
every instrumented run must produce byte-identical output to the
native run.
"""

import time

from repro import Options, run_native, run_tool
from repro.workloads.suite import ALL_WORKLOADS, INT_WORKLOADS, build

from conftest import SCALE, geomean, save_and_show

TOOLS = ("none", "icnt-inline", "icnt-call", "memcheck")
#: Extra column: Nulgrind again, under the --perf execution mode (not in
#: the paper's table; it must land *below* the default Nulgrind column).
PERF_COL = "none+perf"
COLUMN = {"none": "Nulg.", "icnt-inline": "ICntI", "icnt-call": "ICntC",
          "memcheck": "Memc.", PERF_COL: "Perf"}
PAPER_GEOMEANS = {"none": 4.3, "icnt-inline": 8.8, "icnt-call": 13.5,
                  "memcheck": 22.1}


def _run_suite():
    rows = []
    for name in ALL_WORKLOADS:
        wl = build(name, scale=SCALE)
        t0 = time.perf_counter()
        nat = run_native(wl.image)
        t_native = time.perf_counter() - t0
        row = {"name": name, "native_s": t_native, "insns": nat.guest_insns}
        for col in TOOLS + (PERF_COL,):
            tool = "none" if col == PERF_COL else col
            opts = Options(log_target="capture", perf=(col == PERF_COL))
            if tool == "memcheck":
                opts.tool_options = ["--leak-check=no"]
            t0 = time.perf_counter()
            res = run_tool(tool, wl.image, options=opts)
            dt = time.perf_counter() - t0
            assert res.stdout == nat.stdout, (name, col)
            assert res.exit_code == nat.exit_code, (name, col)
            row[col] = dt / t_native
        rows.append(row)
    return rows


def test_table2_tool_performance(benchmark, capsys):
    rows = benchmark.pedantic(_run_suite, rounds=1, iterations=1)

    lines = [
        f"Table 2: performance of four Valgrind tools "
        f"(workload scale {SCALE}; slow-down factors vs native)",
        "",
        f"{'Program':10s} {'Nat.(s)':>8} {'insns':>9} "
        + "".join(f"{COLUMN[t]:>8}" for t in TOOLS + (PERF_COL,)),
    ]
    for row in rows:
        if row["name"] == ALL_WORKLOADS[len(INT_WORKLOADS)]:
            lines.append("  --- floating point ---")
        lines.append(
            f"{row['name']:10s} {row['native_s']:>8.3f} {row['insns']:>9} "
            + "".join(f"{row[t]:>8.1f}" for t in TOOLS + (PERF_COL,))
        )
    gms = {t: geomean([r[t] for r in rows]) for t in TOOLS + (PERF_COL,)}
    lines.append("-" * 72)
    lines.append(
        f"{'geo. mean':10s} {'':>8} {'':>9} "
        + "".join(f"{gms[t]:>8.1f}" for t in TOOLS + (PERF_COL,))
    )
    lines.append(
        f"{'(paper)':10s} {'':>8} {'':>9} "
        + "".join(f"{PAPER_GEOMEANS[t]:>8.1f}" for t in TOOLS)
    )
    lines += [
        "",
        "shape checks: Nulgrind < ICntI < ICntC < Memcheck; Perf (the",
        "--perf Nulgrind) below default Nulgrind; every tool run produced",
        "byte-identical output to the native run.",
    ]

    # -- the paper's shape ---------------------------------------------------------
    assert gms["none"] < gms["icnt-inline"] < gms["icnt-call"]
    # Memcheck stays the most expensive tool, but the inlined shadow
    # fast paths put it just above ICntC rather than far beyond it, so
    # the ordering gate stops at ICntI (see module docstring).
    assert gms["memcheck"] > gms["icnt-inline"]
    # Broad bands: the framework's base cost is a few x; Memcheck is the
    # heavyweight, a multiple of Nulgrind (paper: 22.1/4.3 ~= 5.1x;
    # ours was ~2.7x before the --memcheck-fastpath inlining, ~2.45x
    # after).
    assert 1.5 < gms["none"] < 10
    # Tiny --quick/smoke scales dilute the ratio with translation time;
    # the full band applies at the default scale and above.
    assert gms["memcheck"] > (2.2 if SCALE >= 0.2 else 2.0) * gms["none"]
    # The perf execution mode must beat the paper-faithful default.
    assert gms[PERF_COL] < gms["none"]

    save_and_show(capsys, "table2", lines)
