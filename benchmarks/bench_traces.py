"""Superblock/trace tier: blocks/sec vs the per-block pygen tier.

The trace tier (see :mod:`repro.core.traces`) records hot chained
successor sequences in the dispatcher, stitches the member blocks' IR
into one superblock, re-runs the optimisation passes across the merged
IR and compiles the result to a single pygen function.  A trace run
retires several blocks per dispatcher iteration and lets the optimiser
delete puts/gets and fold branches *across* the original block seams —
the Python analogue of Valgrind's chained-and-inlined hot paths.

This bench reuses the ``bench_codegen`` program set and measures

* ``pygen``  — perf dispatch, every block its own pygen function;
* ``traces`` — the same, plus superblocks over hot chains.

Gate: traces must clear a 1.15x blocks/sec geomean over pygen for
Nulgrind at the default scale, with byte-identical output.  Results are
written machine-readable to ``BENCH_traces.json`` at the repo root.
"""

import json
import pathlib
import time

from repro import Options, run_native, run_tool
from repro.workloads.suite import build

from conftest import SCALE, geomean, save_and_show

#: Same reasoning as bench_codegen, with a higher floor: a trace pays
#: translation *plus* recording, stitching and superblock compilation
#: before its first run, so the steady state it buys only shows at a
#: scale where execution dominates that warm-up.  --quick smoke runs
#: keep their tiny scale and get a proportionally relaxed gate.
TR_SCALE = SCALE if SCALE < 0.2 else max(SCALE, 1.0)

PROGRAMS = ("gzip", "mcf", "twolf", "swim")

ENGINES = ("pygen", "traces")
_ENGINE_OPTS = {
    "pygen": {"perf": True, "codegen": "pygen"},
    "traces": {"perf": True, "codegen": "traces"},
}

JSON_PATH = pathlib.Path(__file__).parent.parent / "BENCH_traces.json"


def _timed_run(name, engine):
    """Best-of-two timed runs of one (program, engine) cell."""
    best = None
    for _ in range(2):
        wl = build(name, scale=TR_SCALE)
        opts = Options(log_target="capture", **_ENGINE_OPTS[engine])
        t0 = time.perf_counter()
        res = run_tool("none", wl.image, options=opts)
        dt = time.perf_counter() - t0
        if best is None or dt < best[0]:
            best = (dt, res)
    return best


def _run_suite():
    rows = []
    for name in PROGRAMS:
        wl = build(name, scale=TR_SCALE)
        t0 = time.perf_counter()
        nat = run_native(wl.image)
        t_native = time.perf_counter() - t0
        row = {"program": name, "native_s": t_native}
        for engine in ENGINES:
            dt, res = _timed_run(name, engine)
            assert res.stdout == nat.stdout, (name, engine)
            assert res.exit_code == nat.exit_code, (name, engine)
            cell = {
                "seconds": dt,
                "blocks": res.outcome.blocks_executed,
                "blocks_per_s": res.outcome.blocks_executed / dt,
                "guest_insns": res.outcome.guest_insns,
            }
            if engine == "traces":
                tm = res.core.scheduler.traces
                cell["traces_built"] = tm.traces_built
                cell["trace_runs"] = tm.runs
                cell["side_exits"] = tm.side_exits
                # Fraction of all retired blocks that came from traces.
                cell["trace_block_coverage"] = (
                    tm.blocks_retired / res.outcome.blocks_executed
                    if res.outcome.blocks_executed else 0.0
                )
            row[engine] = cell
        # Per-tier accounting must agree exactly: a trace retires the
        # same blocks and guest insns the block tier would have.
        assert row["traces"]["blocks"] == row["pygen"]["blocks"], name
        assert row["traces"]["guest_insns"] == row["pygen"]["guest_insns"], name
        rows.append(row)
    return rows


def test_trace_tier(benchmark, capsys):
    # One warm-up round fills the process-wide runner/pygen source caches;
    # timings come from the second round.
    rows = benchmark.pedantic(_run_suite, rounds=1, iterations=1,
                              warmup_rounds=1)

    lines = [
        f"Trace tier: blocks/sec vs pygen (workload scale {TR_SCALE})",
        "",
        f"{'program':8s} "
        + "".join(f"{e:>10}" for e in ENGINES)
        + f" {'traces/pygen':>13} {'built':>6} {'coverage':>9}",
    ]
    ratios = []
    for row in rows:
        ratio = row["traces"]["blocks_per_s"] / row["pygen"]["blocks_per_s"]
        ratios.append(ratio)
        row["traces_vs_pygen"] = ratio
        lines.append(
            f"{row['program']:8s} "
            + "".join(f"{row[e]['blocks_per_s']:>10.0f}" for e in ENGINES)
            + f" {ratio:>12.2f}x {row['traces']['traces_built']:>6d}"
            + f" {row['traces']['trace_block_coverage']:>8.0%}"
        )
    gm = geomean(ratios)
    lines += [
        "-" * 64,
        f"geomean traces/pygen blocks/sec: {gm:.2f}x",
        "",
        "block and guest-insn counts are identical across tiers; every",
        "engine produced byte-identical output to the native run.",
    ]

    payload = {
        "bench": "traces",
        "scale": TR_SCALE,
        "engines": list(ENGINES),
        "rows": rows,
        "geomean": {"nulgrind_traces_vs_pygen": gm},
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # The tier gate.  Tiny --quick/smoke scales spend most of the run
    # translating and recording rather than executing traces; the full
    # band applies at the default scale and above.
    if TR_SCALE >= 0.2:
        assert gm >= 1.15, gm
    else:
        assert gm >= 0.9, gm
    # Traces must actually form and carry real execution on every
    # workload — the ratio must come from superblocks, not noise.
    for row in rows:
        assert row["traces"]["traces_built"] >= 1, row["program"]
        assert row["traces"]["trace_block_coverage"] > 0.2, row["program"]

    save_and_show(capsys, "traces", lines)
