"""S3.7 — superblock formation policy.

Paper: "Valgrind follows instructions until (a) an instruction limit is
reached (about 50...), (b) a conditional branch is hit, (c) a branch to
an unknown target is hit, or (d) more than three unconditional branches
to known targets have been hit" — and "Valgrind... chases across many
unconditional branches", which is part of why the lack of chaining hurts
less.

We verify each termination rule directly on crafted code, then measure
block-size and chase statistics over the workload suite.
"""

from repro import Options, run_tool
from repro.frontend.disasm import Disassembler, MAX_BLOCK_INSNS, MAX_CHASES
from repro.guest.asm import assemble
from repro.ir import Const, IMark
from repro.workloads.suite import build

from conftest import SCALE, save_and_show


def _disasm(src: str):
    img = assemble(src)
    seg = img.text_segment
    dis = Disassembler(lambda a, n: seg.data[a - seg.addr : a - seg.addr + n])
    return dis.disasm_block(img.entry), img


def _n_insns(sb) -> int:
    return sum(1 for s in sb.stmts if isinstance(s, IMark))


def test_block_formation_policy(benchmark, capsys):
    lines = ["Section 3.7: superblock formation policy", ""]

    # (a) the instruction limit (about 50).
    sb, _ = _disasm("_start:\n" + "nop\n" * 200 + "halt\n")
    lines.append(f"(a) straight-line code stops at the limit: "
                 f"{_n_insns(sb)} insns (limit {MAX_BLOCK_INSNS})")
    assert _n_insns(sb) == MAX_BLOCK_INSNS

    # (b) a conditional branch ends the block.
    sb, _ = _disasm("_start: nop\n cmpi r0, 1\n je x\n nop\nx: halt\n")
    lines.append(f"(b) conditional branch ends the block: {_n_insns(sb)} insns")
    assert _n_insns(sb) == 3

    # (c) a branch to an unknown target ends the block.
    sb, _ = _disasm("_start: nop\n jmp r1\n")
    lines.append(f"(c) indirect branch ends the block: {_n_insns(sb)} insns")
    assert _n_insns(sb) == 2
    assert not isinstance(sb.next, Const)

    # (d) more than three unconditional branches to known targets.
    sb, _ = _disasm(
        "_start: nop\n jmp a\na: nop\n jmp b\nb: nop\n jmp c\n"
        "c: nop\n jmp d\nd: nop\n jmp e\ne: nop\n halt\n"
    )
    chased_insns = _n_insns(sb)
    lines.append(
        f"(d) chases {MAX_CHASES} unconditional branches then stops: "
        f"{chased_insns} insns in one superblock"
    )
    # nop + 3 chased (jmp target nop) pairs: 1 + 3 nops (the jmps emit no
    # IMark-ending code... they do emit IMarks) — just assert multi-range.
    assert len(set(s.addr for s in sb.stmts if isinstance(s, IMark))) >= 4

    # -- suite statistics -----------------------------------------------------------
    def stats():
        rows = []
        for name in ("gzip", "vortex", "perlbmk", "equake"):
            wl = build(name, scale=SCALE)
            res = run_tool("none", wl.image, options=Options(log_target="capture"))
            ts = res.core.scheduler.transtab.all_translations()
            n = len(ts)
            insns = [t.stats.guest_insns for t in ts]
            multi = sum(1 for t in ts if len(t.ranges) > 1)
            rows.append((name, n, sum(insns) / n, max(insns), multi))
        return rows

    rows = benchmark.pedantic(stats, rounds=1, iterations=1)
    lines += ["", f"{'program':8s} {'blocks':>7} {'avg insns':>10} "
                  f"{'max':>5} {'chased(multi-range)':>20}"]
    for name, n, avg, mx, multi in rows:
        lines.append(f"{name:8s} {n:>7} {avg:>10.1f} {mx:>5} {multi:>20}")
    assert all(mx <= 2 * MAX_BLOCK_INSNS for _, _, _, mx, _ in rows)
    assert any(multi > 0 for *_, multi in rows)  # chasing happens in practice

    save_and_show(capsys, "blockpolicy", lines)
