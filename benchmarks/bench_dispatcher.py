"""S3.9 — the dispatcher: fast-cache hit rate and the chaining ablation.

Paper: the direct-mapped fast look-up hits ~98% of the time; the fast
case takes fourteen instructions; Valgrind does no chaining, yet its
no-instrumentation slow-down is only 4.3x (vs Strata, where chaining took
22.1x to 4.1x, because dispatching cost ~250 cycles).

We measure the hit rate on the workload suite, and run the chaining
ablation the paper's old JIT used to have: with chaining on, executions
bypass the dispatcher cache entirely, and the speedup is *modest* —
because the dispatcher is fast, the paper's argument.
"""

import time

from repro import Options, run_tool
from repro.workloads.suite import build

from conftest import SCALE, geomean, save_and_show

PROGRAMS = ("gzip", "mcf", "twolf", "swim")


def test_dispatcher_and_chaining(benchmark, capsys):
    def sweep():
        rows = []
        for name in PROGRAMS:
            wl = build(name, scale=SCALE)
            t0 = time.perf_counter()
            plain = run_tool("none", wl.image, options=Options(log_target="capture"))
            t_plain = time.perf_counter() - t0
            t0 = time.perf_counter()
            chained = run_tool(
                "none", wl.image,
                options=Options(log_target="capture", chaining=True),
            )
            t_chain = time.perf_counter() - t0
            assert chained.stdout == plain.stdout
            rows.append((name, plain, t_plain, chained, t_chain))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "Section 3.9: dispatcher fast-cache behaviour and chaining ablation",
        "",
        f"{'program':8s} {'blocks':>9} {'hit rate':>9} {'chained':>9} "
        f"{'t(no-chain)':>12} {'t(chain)':>10} {'speedup':>8}",
    ]
    hit_rates = []
    speedups = []
    for name, plain, t_plain, chained, t_chain in rows:
        s1 = plain.core.scheduler.dispatcher.stats
        s2 = chained.core.scheduler.dispatcher.stats
        hit_rates.append(s1.hit_rate)
        speedups.append(t_plain / t_chain)
        lines.append(
            f"{name:8s} {s1.blocks_executed:>9} {s1.hit_rate:>9.1%} "
            f"{s2.chained:>9} {t_plain:>11.3f}s {t_chain:>9.3f}s "
            f"{t_plain / t_chain:>7.2f}x"
        )
    mean_hit = sum(hit_rates) / len(hit_rates)
    mean_speedup = geomean(speedups)
    lines += [
        "",
        f"mean fast-lookup hit rate: {mean_hit:.1%}  (paper: ~98%)",
        f"chaining speedup (geomean): {mean_speedup:.2f}x  "
        "(paper's argument: small, because the dispatcher is fast —",
        " unlike Strata's 250-cycle dispatch, where chaining gave 5.4x)",
    ]

    # -- shape checks -----------------------------------------------------------
    assert mean_hit > 0.95
    for _, _, _, chained, _ in rows:
        assert chained.core.scheduler.dispatcher.stats.chained > 0
    # Chaining helps at most modestly; it must never approach Strata's 5x.
    assert mean_speedup < 2.0

    save_and_show(capsys, "dispatcher", lines)
