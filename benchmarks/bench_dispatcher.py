"""S3.9 — the dispatcher: fast-cache hit rate, the chaining ablation, and
the ``--perf`` hot-path mode.

Paper: the direct-mapped fast look-up hits ~98% of the time; the fast
case takes fourteen instructions; Valgrind does no chaining, yet its
no-instrumentation slow-down is only 4.3x (vs Strata, where chaining took
22.1x to 4.1x, because dispatching cost ~250 cycles).

We measure the hit rate on the workload suite, and run the chaining
ablation the paper's old JIT used to have: with chaining on, executions
bypass the dispatcher cache entirely, and the speedup is *modest* —
because the dispatcher is fast, the paper's argument.

The third column is this repo's ``--perf`` mode (content-addressed
compiled runners + full Boring/Call/Ret chaining + the 2-way megacache):
it must clear a 1.3x blocks/sec geomean over the default mode while
producing byte-identical output.
"""

import gc
import time

from repro import Options, run_tool
from repro.workloads.suite import build

from conftest import SCALE, geomean, save_and_show

PROGRAMS = ("gzip", "mcf", "twolf", "swim")


def test_dispatcher_and_chaining(benchmark, capsys):
    def sweep():
        rows = []
        for name in PROGRAMS:
            wl = build(name, scale=SCALE)
            # A full gen-2 collection costs tens of ms against ~50ms
            # phases; whose timer absorbs it depends on the process's
            # allocation history, not on the mode under test.  Collect
            # before each timer so every phase starts from the same GC
            # state.
            gc.collect()
            t0 = time.perf_counter()
            plain = run_tool("none", wl.image, options=Options(log_target="capture"))
            t_plain = time.perf_counter() - t0
            gc.collect()
            t0 = time.perf_counter()
            chained = run_tool(
                "none", wl.image,
                options=Options(log_target="capture", chaining=True),
            )
            t_chain = time.perf_counter() - t0
            gc.collect()
            t0 = time.perf_counter()
            perf = run_tool(
                "none", wl.image,
                options=Options(log_target="capture", perf=True),
            )
            t_perf = time.perf_counter() - t0
            assert chained.stdout == plain.stdout
            assert perf.stdout == plain.stdout
            assert perf.exit_code == plain.exit_code
            rows.append((name, plain, t_plain, chained, t_chain, perf, t_perf))
        return rows

    # One warm-up round lets the process-wide runner-source cache fill, as
    # it would in any long-running use; timings come from the second round.
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=1)

    lines = [
        "Section 3.9: dispatcher fast-cache, chaining ablation, --perf mode",
        "",
        f"{'program':8s} {'blocks':>9} {'hit rate':>9} {'chained':>9} "
        f"{'t(plain)':>9} {'t(chain)':>9} {'t(perf)':>9} "
        f"{'chain':>7} {'perf':>7}",
    ]
    hit_rates = []
    chain_speedups = []
    perf_speedups = []
    for name, plain, t_plain, chained, t_chain, perf, t_perf in rows:
        s1 = plain.core.scheduler.dispatcher.stats
        s2 = chained.core.scheduler.dispatcher.stats
        s3 = perf.core.scheduler.dispatcher.stats
        hit_rates.append(s1.hit_rate)
        chain_speedups.append(t_plain / t_chain)
        # blocks/sec improvement (block counts agree between modes, but be
        # explicit: this is a throughput ratio, not a wall-clock ratio).
        bps_plain = s1.blocks_executed / t_plain
        bps_perf = s3.blocks_executed / t_perf
        perf_speedups.append(bps_perf / bps_plain)
        lines.append(
            f"{name:8s} {s1.blocks_executed:>9} {s1.hit_rate:>9.1%} "
            f"{s2.chained:>9} {t_plain:>8.3f}s {t_chain:>8.3f}s "
            f"{t_perf:>8.3f}s {t_plain / t_chain:>6.2f}x "
            f"{bps_perf / bps_plain:>6.2f}x"
        )
    mean_hit = sum(hit_rates) / len(hit_rates)
    mean_chain = geomean(chain_speedups)
    mean_perf = geomean(perf_speedups)
    lines += [
        "",
        f"mean fast-lookup hit rate: {mean_hit:.1%}  (paper: ~98%)",
        f"chaining speedup (geomean): {mean_chain:.2f}x  "
        "(paper's argument: small, because the dispatcher is fast —",
        " unlike Strata's 250-cycle dispatch, where chaining gave 5.4x)",
        f"--perf blocks/sec improvement (geomean): {mean_perf:.2f}x  "
        "(target: >= 1.3x)",
    ]

    # -- shape checks -----------------------------------------------------------
    assert mean_hit > 0.95
    for _, _, _, chained, _, perf, _ in rows:
        assert chained.core.scheduler.dispatcher.stats.chained > 0
        assert perf.core.scheduler.dispatcher.stats.chained > 0
    # Chaining alone helps at most modestly; it must never approach
    # Strata's 5x.  The full perf mode must clear its throughput bar.
    assert mean_chain < 2.0
    assert mean_perf >= 1.3, f"--perf too slow: {mean_perf:.2f}x"

    save_and_show(capsys, "dispatcher", lines)
