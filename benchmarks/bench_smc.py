"""S3.16 — self-modifying code: correctness and cost of the hash checks.

Paper: a translation records a hash of its origin bytes; checked
translations recompute it on every execution — "this has a high run-time
cost.  Therefore, by default Valgrind only uses this mechanism for code
that is on the stack" (enough for GCC's nested-function trampolines),
minimising the cost; it can also be turned off or applied to every block.

The workload runs a *modified-between-calls* trampoline on the stack
(the correctness half) inside a larger static loop (the cost half), under
--smc-check=none / stack / all.
"""

import time

from repro import Options, assemble, build_source, run_native, run_tool

from conftest import save_and_show

# The trampoline's immediate is patched each iteration: its sum differs
# under stale translations, making staleness *observable* in the output.
PROGRAM = """
        .text
main:   subi sp, 32
        ; build `movi r0, 0; ret` on the stack
        movi r1, 0x11
        stb  [sp], r1
        movi r1, 0
        stb  [sp+1], r1
        sti  [sp+2], 0
        movi r1, 0x03
        stb  [sp+6], r1
        mov  r7, sp           ; trampoline address
        movi r6, 0            ; sum of trampoline results
        movi fp, 200          ; iterations
loop:   sti  [r7+2], 0        ; patch the immediate to fp's value
        st   [r7+2], fp       ; (the actual self-modification)
        call r7
        add  r6, r0
        ; some static work so 'all' mode has blocks to slow down
        movi r1, 60
work:   dec  r1
        jnz  work
        dec  fp
        jnz  loop
        push r6
        call putint
        addi sp, 4
        addi sp, 32
        movi r0, 0
        ret
"""


def test_smc_modes(benchmark, capsys):
    image = assemble(build_source(PROGRAM), filename="smc")
    t0 = time.perf_counter()
    nat = run_native(image)
    t_nat = time.perf_counter() - t0
    expected = str(sum(range(1, 201)))
    assert nat.stdout.strip() == expected

    def run(mode: str):
        t0 = time.perf_counter()
        res = run_tool(
            "none", image, options=Options(log_target="capture", smc_check=mode)
        )
        return res, time.perf_counter() - t0

    (res_stack, t_stack) = benchmark.pedantic(
        run, args=("stack",), rounds=1, iterations=1
    )
    res_none, t_none = run("none")
    res_all, t_all = run("all")

    smc = res_stack.core.scheduler.smc

    lines = [
        "Section 3.16: self-modifying code handling",
        f"(stack trampoline patched 200 times; native sum = {expected})",
        "",
        f"{'mode':8s} {'output ok':>10} {'slowdown':>9} "
        f"{'smc checks':>11} {'flushes':>8}",
    ]
    for name, res, t in (("none", res_none, t_none),
                         ("stack", res_stack, t_stack),
                         ("all", res_all, t_all)):
        ok = res.stdout.strip() == expected
        s = res.core.scheduler.smc
        d = res.core.scheduler.dispatcher.stats
        lines.append(
            f"{name:8s} {str(ok):>10} {t / t_nat:>8.1f}x "
            f"{s.checks:>11} {d.smc_flushes:>8}"
        )
    lines += [
        "",
        "correctness: 'stack' and 'all' detect every modification; 'none'",
        "runs stale translations (wrong sum) — exactly the paper's trade-off.",
        "cost: 'all' re-hashes every block every execution; 'stack' only",
        "pays for on-stack code.",
    ]

    # -- the paper's claims ---------------------------------------------------------
    assert res_stack.stdout.strip() == expected       # default mode is correct
    assert res_all.stdout.strip() == expected
    assert res_none.stdout.strip() != expected        # stale translations
    s_stack = res_stack.core.scheduler.smc
    s_all = res_all.core.scheduler.smc
    assert s_stack.checks > 0 and s_stack.misses > 0
    assert s_all.checks > s_stack.checks              # 'all' checks far more
    assert t_all > t_stack * 0.9                      # and is never cheaper

    save_and_show(capsys, "smc", lines)
