"""F1 — regenerate Figure 1: disassembly of three CISC instructions into
tree IR (machine code → IMarks, GET/PUT, the flags thunk, an indirect
jump).

Paper: the x86 sequence  movl -16180(%ebx,%eax,4),%eax ; addl %ebx,%eax ;
jmp*l %eax  disassembles into 17 tree-IR statements.  We transliterate the
same three instructions to vx32 and check the same structural facts:

* one IMark per instruction, with correct addresses and lengths;
* the CISC addressing mode becomes a nested Add32/Shl32/GET tree;
* the flag-setting add writes the four condition-code thunk values
  (offsets 32/36/40/44 — "eflags val1..val4");
* the PC (offset 60) is kept up to date at instruction boundaries;
* the block ends with ``goto {Boring} tN`` for the indirect jump.
"""

from repro.frontend.disasm import Disassembler
from repro.guest.asm import assemble
from repro.guest.regs import (
    OFFSET_CC_DEP1,
    OFFSET_CC_DEP2,
    OFFSET_CC_NDEP,
    OFFSET_CC_OP,
    OFFSET_PC,
)
from repro.ir import Binop, Get, IMark, Put, RdTmp, fmt_irsb
from repro.ir.stmt import JumpKind

from conftest import save_and_show

# The Figure 1 instruction sequence, transliterated to vx32.
SOURCE = """
_start: ld   r0, [r3+r0*4-16180]   ; movl -16180(%ebx,%eax,4),%eax
        add  r0, r3                ; addl %ebx,%eax
        jmp  r0                    ; jmp*l %eax
"""


def test_figure1_disassembly(benchmark, capsys):
    img = assemble(SOURCE, text_base=0x24F275 & ~0xFFF)
    seg = img.text_segment
    dis = Disassembler(lambda a, n: seg.data[a - seg.addr : a - seg.addr + n])

    sb = benchmark(dis.disasm_block, img.entry)

    lines = [
        "Figure 1: machine code -> tree IR (disassembly of 3 CISC insns)",
        "",
    ]
    addr = img.entry
    for text in SOURCE.strip().splitlines():
        lines.append(f"0x{addr:X}: {text.split(';')[1].strip()}")
        from repro.guest.encoding import decode

        insn = decode(seg.data, addr - seg.addr, addr)
        addr += insn.length
    lines.append("")
    lines += fmt_irsb(sb).splitlines()

    # -- structural checks against the paper's figure --------------------------
    imarks = [s for s in sb.stmts if isinstance(s, IMark)]
    assert len(imarks) == 3
    assert imarks[0].addr == img.entry
    assert imarks[1].addr == imarks[0].addr + imarks[0].length

    # The load's address computation is a nested tree with a shifted index
    # (the paper's Add32(Add32(GET,Shl32(GET,2)),disp)).
    text = fmt_irsb(sb)
    assert "Shl32(GET:I32(0),0x2:I8)" in text
    # The add writes all four flags-thunk slots...
    for off in (OFFSET_CC_OP, OFFSET_CC_DEP1, OFFSET_CC_DEP2, OFFSET_CC_NDEP):
        assert any(isinstance(s, Put) and s.offset == off for s in sb.stmts)
    # ...the PC is updated at instruction boundaries...
    assert any(isinstance(s, Put) and s.offset == OFFSET_PC for s in sb.stmts)
    # ...and the indirect jump ends the block with a Boring goto-temporary.
    assert isinstance(sb.next, RdTmp) and sb.jumpkind is JumpKind.Boring

    n = sb.num_real_stmts()
    lines += [
        "",
        f"statements: {n} (paper's x86 figure: 17)",
        f"IMarks: 3, flags-thunk PUTs present, goto {{Boring}} on a temporary",
    ]
    assert 12 <= n <= 24  # same ballpark as the paper's 17

    save_and_show(capsys, "figure1", lines)
