"""Phase 4: the second, simpler optimisation pass (flat IR → flat IR).

Runs after tool instrumentation: constant folding and dead code removal.
"This optimisation makes life easier for tools by allowing them to be
somewhat simple-minded, knowing that the code will be subsequently
improved" (Section 3.7) — in the paper's Figure 2, this pass shrank the
instrumented block from 48 statements to 18.
"""

from __future__ import annotations

from typing import Optional

from ..ir.block import IRSB
from .opt1 import SpecHelper, dead_code, forward_pass


def optimise2(sb: IRSB, *, spec_helper: Optional[SpecHelper] = None) -> IRSB:
    """Run the post-instrumentation cleanup pass."""
    sb = forward_pass(sb, spec_helper)
    sb = dead_code(sb)
    return sb
