"""Phase 5: tree building — flat IR → tree IR for instruction selection.

Expressions assigned to temporaries that are used exactly once are
substituted into the use point and the assignment deleted, giving the
instruction selector bigger trees to match.  The resulting code may
perform loads in a different order to the original code, but loads are
never moved past stores (Section 3.7, Phase 5) — nor past dirty helper
calls, which may write memory.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.block import IRSB
from ..ir.expr import Binop, CCall, Const, Expr, Get, ITE, Load, RdTmp, Unop
from ..ir.stmt import (
    Dirty, Exit, IMark, MemFx, NoOp, Put, Stmt, Store, TraceMark, WrTmp,
)


def _count_uses(sb: IRSB) -> Dict[int, int]:
    uses: Dict[int, int] = {}

    def walk(e: Expr) -> None:
        if isinstance(e, RdTmp):
            uses[e.tmp] = uses.get(e.tmp, 0) + 1
        for c in e.children():
            walk(c)

    for e in sb.iter_exprs():
        walk(e)
    return uses


def _contains_load(e: Expr) -> bool:
    if isinstance(e, Load):
        return True
    return any(_contains_load(c) for c in e.children())


def _contains_get(e: Expr) -> bool:
    if isinstance(e, Get):
        return True
    return any(_contains_get(c) for c in e.children())


def _contains_get_overlapping(e: Expr, offset: int, size: int) -> bool:
    if isinstance(e, Get) and e.offset < offset + size and offset < e.offset + e.ty.size:
        return True
    return any(_contains_get_overlapping(c, offset, size) for c in e.children())


class _Builder:
    def __init__(self, sb: IRSB):
        self.sb = sb
        self.uses = _count_uses(sb)
        #: tmp -> candidate expression for inline substitution.
        self.pending: Dict[int, Expr] = {}

    def subst(self, e: Expr) -> Expr:
        if isinstance(e, RdTmp):
            repl = self.pending.pop(e.tmp, None)
            if repl is not None:
                return repl
            return e
        if isinstance(e, (Const, Get)):
            return e
        if isinstance(e, Load):
            return Load(e.ty, self.subst(e.addr))
        if isinstance(e, Unop):
            return Unop(e.op, self.subst(e.arg))
        if isinstance(e, Binop):
            # Substitute right-to-left so that the textually-later operand's
            # pending expression is consumed first, preserving evaluation
            # independence (operands are pure).
            a2 = self.subst(e.arg2)
            a1 = self.subst(e.arg1)
            return Binop(e.op, a1, a2)
        if isinstance(e, ITE):
            ff = self.subst(e.iffalse)
            tt = self.subst(e.iftrue)
            cc = self.subst(e.cond)
            return ITE(cc, tt, ff)
        if isinstance(e, CCall):
            return CCall(
                e.ty, e.callee, tuple(self.subst(a) for a in reversed(e.args))[::-1],
                e.regparms_read,
            )
        raise TypeError(f"cannot substitute {e!r}")

    def flush_loads(self) -> List[Stmt]:
        """Materialise pending expressions that contain loads (called before
        stores/dirty calls so loads never migrate past them)."""
        out: List[Stmt] = []
        for tmp in list(self.pending):
            if _contains_load(self.pending[tmp]):
                out.append(WrTmp(tmp, self.pending.pop(tmp)))
        return out

    def flush_all(self) -> List[Stmt]:
        out = [WrTmp(t, e) for t, e in self.pending.items()]
        self.pending.clear()
        return out


def build_trees(sb: IRSB) -> IRSB:
    """Convert flat IR back into tree IR."""
    out = IRSB(tyenv=dict(sb.tyenv), jumpkind=sb.jumpkind, guest_addr=sb.guest_addr)
    b = _Builder(sb)
    for s in sb.stmts:
        if isinstance(s, NoOp):
            continue
        if isinstance(s, IMark):
            out.add(s)
            continue
        if isinstance(s, TraceMark):
            # Block-accounting boundary: loads may not migrate across it,
            # or a deferred faulting load would be charged to the wrong
            # member block.
            for stmt in b.flush_loads():
                out.add(stmt)
            out.add(s)
            continue
        if isinstance(s, WrTmp):
            data = b.subst(s.data)
            if b.uses.get(s.tmp, 0) == 1:
                b.pending[s.tmp] = data
            else:
                out.add(WrTmp(s.tmp, data))
            continue
        if isinstance(s, Put):
            # Pending expressions containing GETs of the state this PUT
            # overwrites would read the *new* value if substituted later;
            # materialise exactly those.
            size = sb.type_of(s.data).size
            for tmp in list(b.pending):
                if _contains_get_overlapping(b.pending[tmp], s.offset, size):
                    out.add(WrTmp(tmp, b.pending.pop(tmp)))
            out.add(Put(s.offset, b.subst(s.data)))
            continue
        if isinstance(s, Store):
            data = b.subst(s.data)
            addr = b.subst(s.addr)
            for stmt in b.flush_loads():
                out.add(stmt)
            out.add(Store(addr, data))
            continue
        if isinstance(s, Exit):
            guard = b.subst(s.guard)
            dst_expr = b.subst(s.dst_expr) if s.dst_expr is not None else None
            for stmt in b.flush_all():
                out.add(stmt)
            out.add(Exit(guard, s.dst, s.jumpkind, dst_expr=dst_expr))
            continue
        if isinstance(s, Dirty):
            args = tuple(b.subst(a) for a in s.args)
            guard = b.subst(s.guard) if s.guard is not None else None
            mem_fx = tuple(MemFx(m.write, b.subst(m.addr), m.size) for m in s.mem_fx)
            for stmt in b.flush_all():
                out.add(stmt)
            out.add(Dirty(s.callee, args, guard=guard, tmp=s.tmp, retty=s.retty,
                          state_fx=s.state_fx, mem_fx=mem_fx))
            continue
        raise TypeError(f"cannot tree-build {s!r}")
    out.next = b.subst(sb.next) if sb.next is not None else None
    for stmt in b.flush_all():
        out.add(stmt)
    return out
