#: Optimisation pipeline version, part of the persistent code cache's
#: context key (core.codecache): bump on any change to opt1/opt2/
#: flatten/treebuild that alters translation output.
OPT_PIPELINE_VERSION = 1
