"""Tree IR → flat IR.

Flat IR is the form tools instrument: every operand of every operation is
an *atom* (a constant or a temporary), so each intermediate value — such
as an address computed by a complex addressing mode — has a name a tool
can attach analysis to.  "It is important that the IR is flattened at this
point as it makes instrumentation easier, particularly for shadow value
tools" (Section 3.7, Phase 3).
"""

from __future__ import annotations

from typing import List

from ..ir.block import IRSB
from ..ir.expr import Binop, CCall, Const, Expr, Get, ITE, Load, RdTmp, Unop
from ..ir.stmt import Dirty, Exit, IMark, MemFx, NoOp, Put, Stmt, Store, WrTmp


def flatten(sb: IRSB) -> IRSB:
    """Return a new, flat superblock equivalent to *sb*."""
    out = IRSB(
        tyenv=dict(sb.tyenv),
        next=None,
        jumpkind=sb.jumpkind,
        guest_addr=sb.guest_addr,
    )

    def atom(e: Expr) -> Expr:
        """Flatten *e*, emitting helper WrTmps, and return an atom."""
        if isinstance(e, (Const, RdTmp)):
            return e
        flat = shallow(e)
        t = out.new_tmp(out.type_of(flat))
        out.add(WrTmp(t, flat))
        return RdTmp(t)

    def shallow(e: Expr) -> Expr:
        """Rebuild *e* with atom operands (one operation deep)."""
        if isinstance(e, (Const, RdTmp, Get)):
            return e
        if isinstance(e, Load):
            return Load(e.ty, atom(e.addr))
        if isinstance(e, Unop):
            return Unop(e.op, atom(e.arg))
        if isinstance(e, Binop):
            return Binop(e.op, atom(e.arg1), atom(e.arg2))
        if isinstance(e, ITE):
            return ITE(atom(e.cond), atom(e.iftrue), atom(e.iffalse))
        if isinstance(e, CCall):
            return CCall(e.ty, e.callee, tuple(atom(a) for a in e.args), e.regparms_read)
        raise TypeError(f"cannot flatten {e!r}")

    for s in sb.stmts:
        if isinstance(s, (NoOp, IMark)):
            out.add(s)
        elif isinstance(s, WrTmp):
            out.add(WrTmp(s.tmp, shallow(s.data)))
        elif isinstance(s, Put):
            out.add(Put(s.offset, atom(s.data)))
        elif isinstance(s, Store):
            a = atom(s.addr)
            d = atom(s.data)
            out.add(Store(a, d))
        elif isinstance(s, Exit):
            out.add(Exit(atom(s.guard), s.dst, s.jumpkind))
        elif isinstance(s, Dirty):
            guard = atom(s.guard) if s.guard is not None else None
            args = tuple(atom(a) for a in s.args)
            mem_fx = tuple(MemFx(m.write, atom(m.addr), m.size) for m in s.mem_fx)
            out.add(
                Dirty(
                    s.callee,
                    args,
                    guard=guard,
                    tmp=s.tmp,
                    retty=s.retty,
                    state_fx=s.state_fx,
                    mem_fx=mem_fx,
                )
            )
        else:
            raise TypeError(f"cannot flatten statement {s!r}")
    out.next = atom(sb.next) if sb.next is not None else None
    return out
