"""Phase 2: the main IR optimisation pass (tree IR → optimised flat IR).

Performs, in order (Section 3.7):

* flattening,
* redundant GET elimination (forwarding known guest-state values),
* copy and constant propagation and constant folding,
* partial evaluation of platform-specific helper calls via a *spec*
  callback (used to optimise the condition-code handling),
* common sub-expression elimination,
* redundant PUT elimination (respecting precise exceptions: a PUT may only
  be removed if the offset is overwritten again before any statement that
  could raise a memory exception — see the Figure 1 discussion of the
  ``%eip`` PUT),
* dead code removal, and
* simple unrolling of intra-block self-loops.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..ir.block import IRSB
from ..ir.expr import Binop, CCall, Const, Expr, Get, ITE, Load, RdTmp, Unop, c32
from ..ir.ops import get_op
from ..ir.stmt import (
    Dirty, Exit, IMark, JumpKind, MemFx, NoOp, Put, Stmt, Store, TraceMark,
    WrTmp,
)
from ..ir.types import Ty
from .flatten import flatten

#: Ops excluded from folding/CSE because their semantics can trap.
_TRAPPING_OPS = frozenset(
    name for name in ("DivU32", "DivS32", "ModU32", "ModS32", "DivU64", "DivS64",
                      "ModU64", "ModS64")
)

SpecHelper = Callable[[str, Sequence[Expr]], Optional[Expr]]


# ---------------------------------------------------------------------------
# Forward pass: copy/const propagation, constant folding, GET forwarding,
# spec-helper partial evaluation.
# ---------------------------------------------------------------------------


def _fold_identities(e: Expr) -> Expr:
    """Algebraic identities on integer ops (after operand substitution)."""
    if not isinstance(e, Binop):
        return e
    op = e.op
    a, b = e.arg1, e.arg2
    bz = isinstance(b, Const) and not b.ty.is_float and b.value == 0
    az = isinstance(a, Const) and not a.ty.is_float and a.value == 0
    if op.startswith(("Add", "Or", "Xor")) and op[-1].isdigit():
        if bz:
            return a
        if az:
            return b
    if op.startswith("Sub") and op[-1].isdigit() and bz:
        return a
    if op.startswith(("Shl", "Shr", "Sar")) and isinstance(b, Const) and b.value == 0:
        return a
    if op.startswith("Mul") and op[-1].isdigit():
        if isinstance(b, Const) and b.value == 1:
            return a
        if isinstance(a, Const) and a.value == 1:
            return b
    if op.startswith("And") and op[-1].isdigit():
        ty = get_op(op).ret
        if isinstance(b, Const) and b.value == ty.mask:
            return a
        if isinstance(a, Const) and a.value == ty.mask:
            return b
    if (
        op in ("Xor32", "Xor64", "Xor16", "Xor8", "Sub32", "Sub64", "Sub16", "Sub8")
        and isinstance(a, RdTmp)
        and isinstance(b, RdTmp)
        and a.tmp == b.tmp
    ):
        return Const(get_op(op).ret, 0)
    return e


def _try_fold(e: Expr) -> Expr:
    """Constant-fold an expression whose operands are already substituted."""
    if isinstance(e, Unop) and isinstance(e.arg, Const):
        try:
            return Const(get_op(e.op).ret, get_op(e.op).apply(e.arg.value))
        except (ZeroDivisionError, ValueError, OverflowError):
            return e
    if isinstance(e, Binop):
        if (
            isinstance(e.arg1, Const)
            and isinstance(e.arg2, Const)
            and e.op not in _TRAPPING_OPS
        ):
            try:
                return Const(
                    get_op(e.op).ret, get_op(e.op).apply(e.arg1.value, e.arg2.value)
                )
            except (ZeroDivisionError, ValueError, OverflowError):
                return e
        return _fold_identities(e)
    if isinstance(e, ITE) and isinstance(e.cond, Const):
        return e.iftrue if e.cond.value else e.iffalse
    return e


class _StateEnv:
    """Tracks known guest-state contents (offset/type -> atom) forwards."""

    def __init__(self) -> None:
        self._known: Dict[Tuple[int, Ty], Expr] = {}

    def invalidate(self, offset: int, size: int) -> None:
        dead = [
            key
            for key in self._known
            if key[0] < offset + size and offset < key[0] + key[1].size
        ]
        for key in dead:
            del self._known[key]

    def record_put(self, offset: int, ty: Ty, atom: Expr) -> None:
        self.invalidate(offset, ty.size)
        self._known[(offset, ty)] = atom

    def record_get(self, offset: int, ty: Ty, atom: Expr) -> None:
        self._known.setdefault((offset, ty), atom)

    def lookup(self, offset: int, ty: Ty) -> Optional[Expr]:
        return self._known.get((offset, ty))


def forward_pass(sb: IRSB, spec_helper: Optional[SpecHelper] = None) -> IRSB:
    """One forward rewriting pass over a flat block."""
    out = IRSB(
        tyenv=dict(sb.tyenv),
        jumpkind=sb.jumpkind,
        guest_addr=sb.guest_addr,
    )
    env: Dict[int, Expr] = {}  # tmp -> atom substitution
    state = _StateEnv()

    def subst(e: Expr) -> Expr:
        if isinstance(e, RdTmp):
            return env.get(e.tmp, e)
        if isinstance(e, Const):
            return e
        if isinstance(e, Get):
            return e
        if isinstance(e, Load):
            return Load(e.ty, subst(e.addr))
        if isinstance(e, Unop):
            return _try_fold(Unop(e.op, subst(e.arg)))
        if isinstance(e, Binop):
            return _try_fold(Binop(e.op, subst(e.arg1), subst(e.arg2)))
        if isinstance(e, ITE):
            return _try_fold(ITE(subst(e.cond), subst(e.iftrue), subst(e.iffalse)))
        if isinstance(e, CCall):
            return CCall(e.ty, e.callee, tuple(subst(a) for a in e.args),
                         e.regparms_read)
        raise TypeError(f"cannot substitute in {e!r}")

    def emit_tree(e: Expr) -> Expr:
        """Emit a (possibly tree-shaped) spec result as flat statements."""
        if isinstance(e, (Const, RdTmp)):
            return e
        if isinstance(e, Unop):
            e = _try_fold(Unop(e.op, emit_tree(e.arg)))
        elif isinstance(e, Binop):
            e = _try_fold(Binop(e.op, emit_tree(e.arg1), emit_tree(e.arg2)))
        elif isinstance(e, ITE):
            e = _try_fold(ITE(emit_tree(e.cond), emit_tree(e.iftrue),
                              emit_tree(e.iffalse)))
        if isinstance(e, (Const, RdTmp)):
            return e
        t = out.new_tmp(out.type_of(e))
        out.add(WrTmp(t, e))
        return RdTmp(t)

    for s in sb.stmts:
        if isinstance(s, (NoOp, IMark, TraceMark)):
            out.add(s)
            continue
        if isinstance(s, WrTmp):
            data = subst(s.data)
            if isinstance(s.data, Get):
                known = state.lookup(s.data.offset, s.data.ty)
                if known is not None:
                    data = known
                else:
                    state.record_get(s.data.offset, s.data.ty, RdTmp(s.tmp))
            if isinstance(data, CCall) and spec_helper is not None:
                replacement = spec_helper(data.callee, data.args)
                if replacement is not None:
                    data = emit_tree(replacement)
            if isinstance(data, (Const, RdTmp)):
                env[s.tmp] = data
                # The assignment itself becomes dead; DCE will confirm, but
                # we can skip emitting it when nothing else types-depends.
                out.add(WrTmp(s.tmp, data))
            else:
                out.add(WrTmp(s.tmp, data))
            continue
        if isinstance(s, Put):
            data = subst(s.data)
            ty = out.type_of(data)
            state.record_put(s.offset, ty, data if isinstance(data, (Const, RdTmp)) else data)
            out.add(Put(s.offset, data))
            continue
        if isinstance(s, Store):
            out.add(Store(subst(s.addr), subst(s.data)))
            continue
        if isinstance(s, Exit):
            guard = subst(s.guard)
            dst_expr = subst(s.dst_expr) if s.dst_expr is not None else None
            if isinstance(guard, Const):
                if guard.value == 0:
                    continue  # never taken
                # Always taken: the rest of the block is unreachable.
                out.next = dst_expr if dst_expr is not None else c32(s.dst)
                out.jumpkind = s.jumpkind
                return out
            out.add(Exit(guard, s.dst, s.jumpkind, dst_expr=dst_expr))
            continue
        if isinstance(s, Dirty):
            guard = subst(s.guard) if s.guard is not None else None
            if isinstance(guard, Const) and guard.value == 0 and s.tmp is None:
                continue  # guarded off and returns nothing: drop entirely
            args = tuple(subst(a) for a in s.args)
            mem_fx = tuple(MemFx(m.write, subst(m.addr), m.size) for m in s.mem_fx)
            for fx in s.state_fx:
                if fx.write:
                    state.invalidate(fx.offset, fx.size)
            out.add(Dirty(s.callee, args, guard=guard, tmp=s.tmp, retty=s.retty,
                          state_fx=s.state_fx, mem_fx=mem_fx))
            continue
        raise TypeError(f"unknown statement {s!r}")
    out.next = subst(sb.next) if sb.next is not None else None
    return out


# ---------------------------------------------------------------------------
# Common sub-expression elimination.
# ---------------------------------------------------------------------------


def _atom_key(e: Expr):
    if isinstance(e, RdTmp):
        return ("t", e.tmp)
    if isinstance(e, Const):
        return ("c", e.ty, e.value if not e.ty.is_float else repr(e.value))
    return None


def cse(sb: IRSB) -> IRSB:
    """Forward CSE over pure, non-trapping operations on atoms."""
    seen: Dict[tuple, int] = {}
    out = sb.copy()
    stmts: List[Stmt] = []
    for s in out.stmts:
        if isinstance(s, WrTmp):
            key = None
            e = s.data
            if isinstance(e, Unop) and e.op not in _TRAPPING_OPS:
                a = _atom_key(e.arg)
                if a is not None:
                    key = ("u", e.op, a)
            elif isinstance(e, Binop) and e.op not in _TRAPPING_OPS:
                a1, a2 = _atom_key(e.arg1), _atom_key(e.arg2)
                if a1 is not None and a2 is not None:
                    key = ("b", e.op, a1, a2)
            elif isinstance(e, ITE):
                ks = tuple(_atom_key(x) for x in (e.cond, e.iftrue, e.iffalse))
                if all(k is not None for k in ks):
                    key = ("i",) + ks
            if key is not None:
                prev = seen.get(key)
                if prev is not None:
                    stmts.append(WrTmp(s.tmp, RdTmp(prev)))
                    continue
                seen[key] = s.tmp
        stmts.append(s)
    out.stmts = stmts
    return out


# ---------------------------------------------------------------------------
# Redundant PUT elimination (backwards, precise-exception aware).
# ---------------------------------------------------------------------------


def _expr_observes(e: Expr) -> Tuple[Set[int], bool]:
    """Return (state bytes read, may-fault) for an expression."""
    reads: Set[int] = set()
    faults = False

    def walk(x: Expr) -> None:
        nonlocal faults
        if isinstance(x, Get):
            reads.update(range(x.offset, x.offset + x.ty.size))
        elif isinstance(x, Load):
            faults = True
        elif isinstance(x, CCall):
            for off, size in x.regparms_read:
                reads.update(range(off, off + size))
        for c in x.children():
            walk(c)

    walk(e)
    return reads, faults


def redundant_put_elim(sb: IRSB) -> IRSB:
    """Remove PUTs that are certainly overwritten before being observable."""
    out = sb.copy()
    overwritten: Set[int] = set()
    new_stmts: List[Stmt] = list(out.stmts)

    def observe_expr(e: Expr) -> None:
        reads, faults = _expr_observes(e)
        if faults:
            overwritten.clear()
        else:
            overwritten.difference_update(reads)

    # The block end makes everything observable, so start empty.
    if out.next is not None:
        pass
    for i in range(len(new_stmts) - 1, -1, -1):
        s = new_stmts[i]
        if isinstance(s, (NoOp, IMark, TraceMark)):
            continue
        if isinstance(s, Put):
            data = s.data
            span = range(s.offset, s.offset + out.type_of(data).size)
            if all(b in overwritten for b in span):
                new_stmts[i] = NoOp()
                continue
            observe_expr(data)
            overwritten.update(span)
            continue
        if isinstance(s, WrTmp):
            observe_expr(s.data)
            continue
        if isinstance(s, Store):
            # A store can fault, making all state observable at this point.
            overwritten.clear()
            continue
        if isinstance(s, (Exit, Dirty)):
            # Side exits leave the block; dirty helpers may read anything.
            overwritten.clear()
            continue
        raise TypeError(f"unknown statement {s!r}")
    out.stmts = new_stmts
    return out


# ---------------------------------------------------------------------------
# Dead code elimination (backwards).
# ---------------------------------------------------------------------------


def _expr_tmps(e: Expr, into: Set[int]) -> None:
    if isinstance(e, RdTmp):
        into.add(e.tmp)
    for c in e.children():
        _expr_tmps(c, into)


def dead_code(sb: IRSB) -> IRSB:
    """Remove assignments to temporaries that are never used."""
    out = sb.copy()
    needed: Set[int] = set()
    if out.next is not None:
        _expr_tmps(out.next, needed)
    new_stmts: List[Stmt] = list(out.stmts)
    for i in range(len(new_stmts) - 1, -1, -1):
        s = new_stmts[i]
        if isinstance(s, WrTmp):
            if s.tmp not in needed:
                new_stmts[i] = NoOp()
            else:
                _expr_tmps(s.data, needed)
        elif isinstance(s, Put):
            _expr_tmps(s.data, needed)
        elif isinstance(s, Store):
            _expr_tmps(s.addr, needed)
            _expr_tmps(s.data, needed)
        elif isinstance(s, Exit):
            _expr_tmps(s.guard, needed)
            if s.dst_expr is not None:
                _expr_tmps(s.dst_expr, needed)
        elif isinstance(s, Dirty):
            if s.guard is not None:
                _expr_tmps(s.guard, needed)
            for a in s.args:
                _expr_tmps(a, needed)
            for m in s.mem_fx:
                _expr_tmps(m.addr, needed)
    out.stmts = [s for s in new_stmts if not isinstance(s, NoOp)]
    return out


# ---------------------------------------------------------------------------
# Intra-block self-loop unrolling.
# ---------------------------------------------------------------------------


def _rename_expr(e: Expr, delta: int) -> Expr:
    if isinstance(e, RdTmp):
        return RdTmp(e.tmp + delta)
    if isinstance(e, (Const, Get)):
        return e
    if isinstance(e, Load):
        return Load(e.ty, _rename_expr(e.addr, delta))
    if isinstance(e, Unop):
        return Unop(e.op, _rename_expr(e.arg, delta))
    if isinstance(e, Binop):
        return Binop(e.op, _rename_expr(e.arg1, delta), _rename_expr(e.arg2, delta))
    if isinstance(e, ITE):
        return ITE(
            _rename_expr(e.cond, delta),
            _rename_expr(e.iftrue, delta),
            _rename_expr(e.iffalse, delta),
        )
    if isinstance(e, CCall):
        return CCall(e.ty, e.callee, tuple(_rename_expr(a, delta) for a in e.args),
                     e.regparms_read)
    raise TypeError(f"cannot rename {e!r}")


def unroll_self_loop(sb: IRSB, *, max_stmts: int = 40) -> IRSB:
    """Unroll a block that jumps straight back to its own start, once.

    This is the "simple loop unrolling for intra-block loops" of Phase 2.
    """
    from ..guest.regs import OFFSET_PC

    if not (
        isinstance(sb.next, Const)
        and sb.next.value == sb.guest_addr
        and sb.jumpkind is JumpKind.Boring
        and sb.num_real_stmts() <= max_stmts
        and sb.tyenv
    ):
        return sb
    out = sb.copy()
    delta = (max(out.tyenv) + 1) if out.tyenv else 0
    for tmp, ty in list(sb.tyenv.items()):
        out.tyenv[tmp + delta] = ty
    out.add(Put(OFFSET_PC, c32(sb.guest_addr)))
    for s in sb.stmts:
        if isinstance(s, (NoOp, IMark)):
            out.add(s)
        elif isinstance(s, WrTmp):
            out.add(WrTmp(s.tmp + delta, _rename_expr(s.data, delta)))
        elif isinstance(s, Put):
            out.add(Put(s.offset, _rename_expr(s.data, delta)))
        elif isinstance(s, Store):
            out.add(Store(_rename_expr(s.addr, delta), _rename_expr(s.data, delta)))
        elif isinstance(s, Exit):
            out.add(Exit(
                _rename_expr(s.guard, delta), s.dst, s.jumpkind,
                dst_expr=(_rename_expr(s.dst_expr, delta)
                          if s.dst_expr is not None else None),
            ))
        elif isinstance(s, Dirty):
            out.add(
                Dirty(
                    s.callee,
                    tuple(_rename_expr(a, delta) for a in s.args),
                    guard=_rename_expr(s.guard, delta) if s.guard is not None else None,
                    tmp=(s.tmp + delta) if s.tmp is not None else None,
                    retty=s.retty,
                    state_fx=s.state_fx,
                    mem_fx=tuple(
                        MemFx(m.write, _rename_expr(m.addr, delta), m.size)
                        for m in s.mem_fx
                    ),
                )
            )
        else:
            raise TypeError(f"cannot unroll {s!r}")
    return out


# ---------------------------------------------------------------------------
# The whole Phase-2 pipeline.
# ---------------------------------------------------------------------------


def optimise1(
    sb: IRSB,
    *,
    spec_helper: Optional[SpecHelper] = None,
    unroll: bool = True,
) -> IRSB:
    """Run the full first optimisation phase (tree IR in, flat IR out)."""
    sb = flatten(sb)
    sb = forward_pass(sb, spec_helper)
    sb = cse(sb)
    sb = forward_pass(sb, spec_helper)
    sb = redundant_put_elim(sb)
    sb = dead_code(sb)
    if unroll:
        unrolled = unroll_self_loop(sb)
        if unrolled is not sb:
            unrolled = forward_pass(unrolled, spec_helper)
            unrolled = redundant_put_elim(unrolled)
            sb = dead_code(unrolled)
    return sb
