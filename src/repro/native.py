"""Native execution: run a vx32 program directly on the reference CPU.

This is the *uninstrumented baseline* — the stand-in for "running the
program on the bare machine" that every slow-down factor in the
evaluation is measured against.  It couples :class:`RefCPU` threads to
the simulated kernel and the host libc, with round-robin scheduling,
signal delivery, and the same loader the DBI core uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .guest.loader import (
    DEFAULT_STACK_TOP,
    SIGPAGE_ADDR,
    THREAD_STACK_REGION,
    LoadedProgram,
    load_program,
)
from .guest.program import VxImage
from .guest.refcpu import CPUError, RefCPU, TrapKind
from .guest.regs import SP
from .kernel.fs import FileSystem
from .kernel.kernel import (
    FATAL_BY_DEFAULT,
    Kernel,
    NO_RESULT,
    BLOCKED,
    ProcessExit,
    SIG_DFL,
    SIGFPE,
    SIGILL,
    SIGKILL,
    SIGSEGV,
    SYSCALL_NAMES,
    SigInfo,
)
from .kernel.memory import GuestFault, GuestMemory, PROT_RWX
from .kernel.sigframe import pop_signal_frame, push_signal_frame
from .libc.hostlib import LibC

M32 = 0xFFFFFFFF


class _CpuCtx:
    """RegContext adapter over a RefCPU, for the shared signal-frame code."""

    def __init__(self, cpu: RefCPU):
        self.cpu = cpu

    def get_reg(self, i: int) -> int:
        return self.cpu.regs[i]

    def set_reg_(self, i: int, v: int) -> None:
        self.cpu.regs[i] = v & M32

    def get_pc(self) -> int:
        return self.cpu.pc

    def set_pc(self, v: int) -> None:
        self.cpu.pc = v & M32

    def get_thunk(self):
        c = self.cpu
        return (c.cc_op, c.cc_dep1, c.cc_dep2, c.cc_ndep)

    def set_thunk(self, op, dep1, dep2, ndep) -> None:
        c = self.cpu
        c.cc_op, c.cc_dep1, c.cc_dep2, c.cc_ndep = op, dep1, dep2, ndep


class _Machine:
    """libc Machine interface bound to one native thread."""

    def __init__(self, runner: "NativeRunner", tid: int):
        self._runner = runner
        self._tid = tid

    @property
    def mem(self) -> GuestMemory:
        return self._runner.memory

    def reg(self, i: int) -> int:
        return self._runner.cpus[self._tid].regs[i]

    def set_reg(self, i: int, value: int) -> None:
        self._runner.cpus[self._tid].regs[i] = value & M32

    def syscall(self, num: int, a1: int = 0, a2: int = 0, a3: int = 0) -> int:
        r = self._runner.kernel.syscall(self._runner, self._tid, num, a1, a2, a3)
        if r in (BLOCKED, NO_RESULT):
            raise RuntimeError(f"libc made a blocking syscall ({num})")
        return r

    @property
    def tid(self) -> int:
        return self._tid


@dataclass
class NativeResult:
    exit_code: int
    guest_insns: int
    stdout: str
    stderr: str
    #: Signal that killed the process, if any.
    fatal_signal: Optional[int] = None
    #: Precise description of the fault behind *fatal_signal*, if any.
    fault_info: Optional[SigInfo] = None


class NativeRunner:
    """Runs a program to completion on the reference CPU."""

    TIMESLICE = 20000  # instructions between thread switches

    def __init__(self, image: VxImage, argv: Optional[List[str]] = None,
                 *, stack_size: int = 1024 * 1024, stdin: bytes = b""):
        self.memory = GuestMemory()
        self.fs = FileSystem()
        self.fs.set_stdin(stdin)
        self.kernel = Kernel(self.memory, self.fs)
        self.libc = LibC()
        self.program: LoadedProgram = load_program(
            image, self.kernel, argv, stack_size=stack_size
        )
        self.cpus: Dict[int, RefCPU] = {}
        self._zombies: Dict[int, int] = {}
        self._next_tid = 1
        self._run_queue: List[int] = []
        self._insns_retired = 0
        self._exit: Optional[ProcessExit] = None
        self.fatal_signal: Optional[int] = None
        self.fault_info: Optional[SigInfo] = None
        self._next_thread_stack = THREAD_STACK_REGION

        tid = self._new_thread(self.program.entry, self.program.initial_sp)
        assert tid == 1

    # -- engine interface (used by the kernel) ------------------------------------

    def guest_insns(self) -> int:
        return self._insns_retired + sum(c.insn_count for c in self.cpus.values())

    def create_thread(self, entry: int, sp: int, arg: int) -> int:
        if sp == 0:
            # Kernel-allocated stack for the new thread.
            size = 256 * 1024
            base = self._next_thread_stack
            self._next_thread_stack += size + 0x10000
            self.memory.map(base, size, PROT_RWX)
            sp = base + size - 16
        tid = self._new_thread(entry, sp)
        cpu = self.cpus[tid]
        # The thread argument is pushed like a call argument; entry returning
        # is an error (threads must call thread_exit), so push a 0 retaddr.
        sp = (sp - 8) & M32
        self.memory.write(sp + 4, (arg & M32).to_bytes(4, "little"))
        self.memory.write(sp, b"\0\0\0\0")
        cpu.regs[SP] = sp
        return tid

    def exit_thread(self, tid: int, status: int) -> None:
        cpu = self.cpus.pop(tid, None)
        if cpu is not None:
            self._insns_retired += cpu.insn_count
        if tid in self._run_queue:
            self._run_queue.remove(tid)
        self._zombies[tid] = status & M32

    def join_status(self, tid: int) -> Optional[int]:
        return self._zombies.get(tid)

    def sigreturn(self, tid: int) -> None:
        pop_signal_frame(_CpuCtx(self.cpus[tid]), self.memory)

    # -- internals -------------------------------------------------------------------

    def _new_thread(self, entry: int, sp: int) -> int:
        tid = self._next_tid
        self._next_tid += 1
        cpu = RefCPU(self.memory)
        cpu.pc = entry
        cpu.regs[SP] = sp & M32
        self.cpus[tid] = cpu
        self._run_queue.append(tid)
        return tid

    def _handler_runnable(self, handler: int) -> bool:
        """A registered handler must point into mapped executable memory."""
        try:
            self.memory.fetch(handler, 1)
        except GuestFault:
            return False
        return True

    def _fatal(self, sig: int, siginfo: Optional[SigInfo]) -> None:
        self.fatal_signal = sig
        self.fault_info = siginfo
        self._exit = ProcessExit(128 + sig)

    def _deliver_signal(self, tid: int, sig: int,
                        siginfo: Optional[SigInfo] = None) -> None:
        cpu = self.cpus.get(tid)
        if cpu is None:
            return
        if sig == SIGKILL:
            # SIGKILL cannot be caught, even with a stale handler entry.
            self._fatal(sig, siginfo)
            return
        handler = self.kernel.handler_for(sig)
        if handler != SIG_DFL and not self._handler_runnable(handler):
            handler = SIG_DFL  # unmapped handler: default disposition
        if handler == SIG_DFL:
            if sig in FATAL_BY_DEFAULT:
                self._fatal(sig, siginfo)
            return  # ignored by default
        try:
            push_signal_frame(_CpuCtx(cpu), self.memory, sig, handler,
                              SIGPAGE_ADDR, siginfo=siginfo)
        except GuestFault:
            # No stack to build the frame on: the fault is fatal.
            self._fatal(SIGSEGV, siginfo)

    def _check_signals(self, tid: int) -> None:
        self.kernel.check_timers(self.guest_insns())
        pair = self.kernel.next_pending_info(tid)
        if pair is not None:
            self._deliver_signal(tid, pair[0], pair[1])

    def run(self, max_insns: Optional[int] = None) -> NativeResult:
        """Round-robin the runnable threads until exit (or budget)."""
        budget = max_insns
        blocked_joins: Dict[int, int] = {}  # tid -> target it waits for
        while self._exit is None:
            if not self._run_queue:
                if blocked_joins:
                    # Wake any joiner whose target died.
                    for tid, target in list(blocked_joins.items()):
                        if target in self._zombies:
                            cpu = self.cpus[tid]
                            cpu.regs[0] = self._zombies[target]
                            del blocked_joins[tid]
                            self._run_queue.append(tid)
                    if not self._run_queue:
                        raise RuntimeError("deadlock: all threads blocked")
                    continue
                # No threads left: process ends when the last thread exits.
                self._exit = ProcessExit(0)
                break
            tid = self._run_queue.pop(0)
            if tid not in self.cpus:
                continue
            cpu = self.cpus[tid]
            self._check_signals(tid)
            if self._exit is not None:
                break
            if tid not in self.cpus:
                continue
            slice_insns = self.TIMESLICE
            if budget is not None:
                remaining = budget - self.guest_insns()
                if remaining <= 0:
                    raise RuntimeError("instruction budget exhausted")
                slice_insns = min(slice_insns, remaining)
            try:
                trap = cpu.run(slice_insns)
            except GuestFault as f:
                # RefCPU commits nothing before raising: cpu.pc is the
                # exact faulting instruction boundary.
                si = SigInfo(SIGSEGV, addr=f.addr, access=f.access, pc=cpu.pc)
                self.kernel.post_signal(tid, SIGSEGV, si)
                self._check_signals(tid)
                if self._exit is not None:
                    break
                self._run_queue.append(tid)
                continue
            except ZeroDivisionError:
                si = SigInfo(SIGFPE, addr=cpu.pc, access="fpe", pc=cpu.pc)
                self.kernel.post_signal(tid, SIGFPE, si)
                self._check_signals(tid)
                if self._exit is not None:
                    break
                self._run_queue.append(tid)
                continue
            except CPUError as e:
                pc = getattr(e, "pc", None)
                pc = cpu.pc if pc is None else pc
                si = SigInfo(SIGILL, addr=pc, access="ill", pc=pc)
                self.kernel.post_signal(tid, SIGILL, si)
                self._check_signals(tid)
                if self._exit is not None:
                    break
                self._run_queue.append(tid)
                continue

            if trap is TrapKind.HALT:
                self._exit = ProcessExit(cpu.regs[0])
                break
            if trap is TrapKind.SYSCALL:
                try:
                    r = self.kernel.syscall(
                        self, tid, cpu.regs[0], cpu.regs[1], cpu.regs[2], cpu.regs[3]
                    )
                except ProcessExit as exc:
                    self._exit = exc
                    break
                if r is BLOCKED:
                    blocked_joins[tid] = cpu.regs[1]
                    continue  # not re-queued until the join target dies
                if r is not NO_RESULT:
                    cpu.regs[0] = r & M32
                if tid in self.cpus:
                    self._run_queue.append(tid)
                continue
            if trap is TrapKind.LCALL:
                try:
                    self.libc.call(cpu.trap_arg, _Machine(self, tid))
                except ProcessExit as exc:
                    self._exit = exc
                    break
                except GuestFault:
                    self.kernel.post_signal(tid, SIGSEGV)
                if tid in self.cpus:
                    self._run_queue.append(tid)
                continue
            if trap is TrapKind.CLREQ:
                # Outside Valgrind, client requests do nothing; the
                # RUNNING_ON_VALGRIND convention is r0 := 0.
                cpu.regs[0] = 0
                self._run_queue.append(tid)
                continue
            # BUDGET (timeslice expiry): rotate.
            self._run_queue.append(tid)

        # Wake-any-joiners loop ended: finalise.
        self._insns_retired = self.guest_insns()
        return NativeResult(
            exit_code=self._exit.status if self._exit else 0,
            guest_insns=self._insns_retired,
            stdout=self.fs.stdout_text(),
            stderr=self.fs.stderr_text(),
            fatal_signal=self.fatal_signal,
            fault_info=self.fault_info,
        )


def run_native(
    image: VxImage,
    argv: Optional[List[str]] = None,
    *,
    stdin: bytes = b"",
    max_insns: Optional[int] = None,
) -> NativeResult:
    """Convenience: load and natively run *image* to completion."""
    return NativeRunner(image, argv, stdin=stdin).run(max_insns=max_insns)
