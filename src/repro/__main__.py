"""``python -m repro`` — the valgrind-style launcher."""

import sys

from .cli import main

sys.exit(main())
