"""Phase 7: linear-scan register allocation.

Replaces virtual registers with host registers, inserting spills as
necessary (Traub/Holloway/Smith-style linear scan [26]).  The allocator is
platform-independent: it discovers which registers each instruction reads
and writes through the ``regs_read``/``regs_written`` callbacks on the
instructions, exactly as the paper describes.

Move coalescing: when an interval dies at a register-to-register move that
defines another interval, the new interval is given the dying interval's
register when possible; identity moves are then deleted.  Figure 3 of the
paper shows the effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..guest.regs import NUM_SPILL_SLOTS
from ..ir.types import Ty
from .hostisa import (
    ALLOCATABLE,
    CALL,
    CSEL,
    BIN,
    HInsn,
    ImmArg,
    LDG,
    LDM,
    LI,
    LIF,
    MOVR,
    RC,
    RELOAD,
    RET,
    Reg,
    SCRATCH,
    SETPCI,
    SETPCR,
    SIDEEXIT,
    SIDEEXITR,
    SPILL,
    STG,
    STM,
    Slot,
    TRACEMARK,
    UN,
)


class RegAllocError(Exception):
    pass


@dataclass
class Interval:
    vreg: Reg
    start: int
    end: int
    reg: Optional[int] = None  # assigned real register number
    slot: Optional[int] = None  # assigned spill slot
    ty: Ty = Ty.I64  # storage type for spill code
    #: Constant value to rematerialise instead of reloading, when the
    #: interval's definition is an immediate load (cheaper than memory).
    remat: Optional[object] = None


@dataclass
class AllocStats:
    """Figures the benches report: moves removed, spills inserted."""

    moves_before: int = 0
    moves_removed: int = 0
    spilled_vregs: int = 0
    spill_code: int = 0


def _vreg_ty(r: Reg) -> Ty:
    return {RC.INT: Ty.I64, RC.FLT: Ty.F64, RC.VEC: Ty.V128}[r.rc]


def _build_intervals(insns: Sequence[HInsn]) -> Dict[Tuple[RC, int], Interval]:
    intervals: Dict[Tuple[RC, int], Interval] = {}
    for i, insn in enumerate(insns):
        for r in insn.regs_written():
            if not r.virtual:
                continue
            key = (r.rc, r.n)
            iv = intervals.get(key)
            if iv is None:
                intervals[key] = Interval(r, i, i, ty=_vreg_ty(r))
            else:
                iv.end = max(iv.end, i)
        for r in insn.regs_read():
            if not r.virtual:
                continue
            key = (r.rc, r.n)
            iv = intervals.get(key)
            if iv is None:
                # Read of a never-written vreg: treat as live from 0 (it
                # holds an undefined value; give it storage anyway).
                intervals[key] = Interval(r, 0, i, ty=_vreg_ty(r))
            else:
                iv.end = max(iv.end, i)
    return intervals


def allocate(
    insns: Sequence[HInsn],
    regfile: Optional[Dict[RC, Sequence[int]]] = None,
) -> Tuple[List[HInsn], AllocStats]:
    """Run linear-scan allocation and return (rewritten insns, stats).

    *regfile* overrides the allocatable register numbers per class
    (default ``range(ALLOCATABLE[rc])``); the trace tier passes the wider
    ``hostisa.TRACE_REGFILE`` so superblocks don't spill artificially.
    """
    stats = AllocStats()
    intervals = _build_intervals(insns)
    if not intervals:
        return list(insns), stats

    # All host registers are caller-saved: any value live *across* a helper
    # call must live in memory instead — the classic reason helper calls
    # are expensive for JITed analysis code.
    import bisect

    call_positions = [i for i, insn in enumerate(insns) if isinstance(insn, CALL)]

    def crosses_call(iv: Interval) -> bool:
        j = bisect.bisect_right(call_positions, iv.start)
        return j < len(call_positions) and call_positions[j] < iv.end

    # Mark constant-defined intervals as rematerialisable: spilling them
    # needs no slot, and "reloads" become immediate loads.
    for i, insn in enumerate(insns):
        if isinstance(insn, (LI, LIF)) and insn.dst.virtual:
            iv = intervals[(insn.dst.rc, insn.dst.n)]
            if iv.start == i:
                iv.remat = insn.imm

    # Coalescing hints: vreg defined by "MOVR dst, src" gets src as a hint.
    hints: Dict[Tuple[RC, int], Tuple[RC, int]] = {}
    for insn in insns:
        if isinstance(insn, MOVR) and insn.dst.virtual and insn.src.virtual:
            stats.moves_before += 1
            hints[(insn.dst.rc, insn.dst.n)] = (insn.src.rc, insn.src.n)

    by_start = sorted(intervals.values(), key=lambda iv: (iv.start, iv.end))
    active: Dict[RC, List[Interval]] = {rc: [] for rc in RC}
    free: Dict[RC, List[int]] = {
        rc: (list(regfile[rc]) if regfile is not None
             else list(range(ALLOCATABLE[rc])))
        for rc in RC
    }
    next_slot = 0

    def expire(rc: RC, now: int) -> None:
        still = []
        for iv in active[rc]:
            if iv.end < now:
                free[rc].append(iv.reg)
            else:
                still.append(iv)
        active[rc] = still

    def spill_interval(iv: Interval) -> None:
        nonlocal next_slot
        if iv.remat is None:
            iv.slot = next_slot
            next_slot += 1
        else:
            iv.slot = -1  # spilled, but rematerialised rather than stored
        stats.spilled_vregs += 1

    for iv in by_start:
        rc = iv.vreg.rc
        expire(rc, iv.start)
        if crosses_call(iv):
            spill_interval(iv)
            continue
        # Coalescing: if this interval is defined by a move whose source
        # dies at the move, inherit the source's register (this is what
        # deletes the moves in Figure 3).
        hint = hints.get((rc, iv.vreg.n))
        reg = None
        if hint is not None:
            src_iv = intervals.get(hint)
            if src_iv is not None and src_iv.reg is not None:
                if src_iv in active[rc] and src_iv.end <= iv.start:
                    # Transfer ownership directly: the source's last use is
                    # the move itself.
                    active[rc].remove(src_iv)
                    reg = src_iv.reg
                elif src_iv.reg in free[rc]:
                    free[rc].remove(src_iv.reg)
                    reg = src_iv.reg
        if reg is not None:
            iv.reg = reg
            active[rc].append(iv)
        elif free[rc]:
            reg = min(free[rc])
            free[rc].remove(reg)
            iv.reg = reg
            active[rc].append(iv)
        else:
            # Spill whichever conflicting interval ends last.
            victim = max(active[rc], key=lambda a: a.end)
            if victim.end > iv.end:
                iv.reg = victim.reg
                victim.reg = None
                active[rc].remove(victim)
                active[rc].append(iv)
                spill_interval(victim)
            else:
                spill_interval(iv)
    if next_slot > NUM_SPILL_SLOTS:
        raise RegAllocError(f"out of spill slots ({next_slot} needed)")

    # -- rewrite pass ---------------------------------------------------------

    out: List[HInsn] = []

    def rewrite(insn: HInsn) -> None:
        """Replace vregs with real regs, adding spill code around *insn*."""
        scratch_idx = {rc: 0 for rc in RC}
        pre: List[HInsn] = []
        post: List[HInsn] = []
        mapping: Dict[Tuple[RC, int], Reg] = {}

        def map_use(r: Reg) -> Reg:
            if not r.virtual:
                return r
            key = (r.rc, r.n)
            if key in mapping:
                return mapping[key]
            iv = intervals[key]
            if iv.slot is None:
                m = Reg(r.rc, iv.reg)
            else:
                s = SCRATCH[r.rc][scratch_idx[r.rc]]
                scratch_idx[r.rc] += 1
                m = Reg(r.rc, s)
                if iv.remat is not None:
                    remat = LIF(m, iv.remat) if r.rc == RC.FLT else LI(m, iv.remat)
                    pre.append(remat)
                else:
                    pre.append(RELOAD(m, iv.slot, iv.ty))
                stats.spill_code += 1
            mapping[key] = m
            return m

        def map_def(r: Reg) -> Reg:
            if not r.virtual:
                return r
            key = (r.rc, r.n)
            iv = intervals[key]
            if iv.slot is None:
                return Reg(r.rc, iv.reg)
            # Reuse a scratch for the def, then spill it.
            if key in mapping:
                m = mapping[key]
            else:
                idx = scratch_idx[r.rc]
                if idx >= len(SCRATCH[r.rc]):
                    # All scratches hold sources; the destination may alias
                    # one, since each host instruction reads all its sources
                    # before writing its destination.
                    idx = 0
                else:
                    scratch_idx[r.rc] += 1
                s = SCRATCH[r.rc][idx]
                m = Reg(r.rc, s)
            if iv.remat is None:
                post.append(SPILL(iv.slot, m, iv.ty))
                stats.spill_code += 1
            return m

        def map_arg(a):
            if isinstance(a, Reg) and a.virtual:
                iv = intervals[(a.rc, a.n)]
                if iv.slot is not None:
                    if iv.remat is not None:
                        # Constants are passed as immediates.
                        return ImmArg(iv.remat, iv.ty)
                    # Spilled call arguments are passed as slots directly.
                    return Slot(iv.slot, iv.ty)
                return Reg(a.rc, iv.reg)
            return a

        if isinstance(insn, LI):
            new: HInsn = LI(map_def(insn.dst), insn.imm)
        elif isinstance(insn, LIF):
            new = LIF(map_def(insn.dst), insn.imm)
        elif isinstance(insn, MOVR):
            src = map_use(insn.src)
            dst = map_def(insn.dst)  # uses first: defs may fall back to
            # a scratch that aliases a consumed source
            if src == dst and not pre and not post:
                stats.moves_removed += 1
                return
            new = MOVR(dst, src)
        elif isinstance(insn, BIN):
            s1 = map_use(insn.src1)
            s2 = map_use(insn.src2)
            new = BIN(insn.op, map_def(insn.dst), s1, s2)
        elif isinstance(insn, UN):
            src = map_use(insn.src)
            new = UN(insn.op, map_def(insn.dst), src)
        elif isinstance(insn, LDG):
            new = LDG(insn.ty, map_def(insn.dst), insn.off)
        elif isinstance(insn, STG):
            new = STG(insn.ty, insn.off, map_use(insn.src))
        elif isinstance(insn, LDM):
            addr = map_use(insn.addr)
            new = LDM(insn.ty, map_def(insn.dst), addr)
        elif isinstance(insn, STM):
            new = STM(insn.ty, map_use(insn.addr), map_use(insn.src))
        elif isinstance(insn, CSEL):
            cond = map_use(insn.cond)
            a = map_use(insn.a)
            b = map_use(insn.b)
            new = CSEL(map_def(insn.dst), cond, a, b)
        elif isinstance(insn, CALL):
            args = tuple(map_arg(a) for a in insn.args)
            guard = map_use(insn.guard) if insn.guard is not None else None
            dst = map_def(insn.dst) if insn.dst is not None else None
            new = CALL(insn.helper, args, dst=dst, retty=insn.retty,
                       dirty=insn.dirty, guard=guard)
        elif isinstance(insn, SIDEEXIT):
            new = SIDEEXIT(map_use(insn.cond), insn.dst, insn.jk, insn.icnt)
        elif isinstance(insn, SIDEEXITR):
            new = SIDEEXITR(map_use(insn.cond), map_use(insn.src), insn.jk,
                            insn.icnt)
        elif isinstance(insn, SETPCR):
            new = SETPCR(map_use(insn.src))
        elif isinstance(insn, (SETPCI, RET, TRACEMARK)):
            new = insn
        else:
            raise RegAllocError(f"cannot rewrite {insn!r}")
        out.extend(pre)
        out.append(new)
        out.extend(post)

    for insn in insns:
        rewrite(insn)
    return out, stats
