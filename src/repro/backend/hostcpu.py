"""The hx host CPU emulator.

Executes *assembled* translations (the byte strings Phase 8 produces and
the translation table stores).  Each translation's bytes are decoded and
compiled into a list of Python closures once, then cached on the
translation, so repeated executions — the overwhelmingly common case —
pay only the closure-dispatch cost.

Guest faults (unmapped/forbidden memory, division by zero) propagate as
exceptions; the scheduler turns them into guest signals.  The ThreadState
PC is kept precise by the PUT(pc)s the front-end emits, so fault reporting
can trust ``ts.pc``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..guest.regs import CALL_SAVE_BASE, SPILL_AREA_BASE, SPILL_SLOT_SIZE
from ..ir.helpers import HelperRegistry
from ..ir.ops import get_op
from ..ir.types import Ty
from ..ir.values import from_bytes, to_bytes
from ..kernel.memory import GuestMemory
from .hostisa import (
    BIN,
    CALL,
    CSEL,
    HInsn,
    LDG,
    LDM,
    LI,
    LIF,
    MOVR,
    RC,
    RELOAD,
    RET,
    Reg,
    SETPCI,
    SETPCR,
    SIDEEXIT,
    SPILL,
    STG,
    STM,
    Slot,
    UN,
    decode_insns,
)


class HostCPU:
    """Executes assembled host code against a ThreadState + guest memory."""

    def __init__(self, memory: GuestMemory, helpers: HelperRegistry, env: object):
        self.mem = memory
        self.helpers = helpers
        #: Execution environment handed to dirty helpers.
        self.env = env
        # Register files are instance state: translations never nest.
        self.ir: List[int] = [0] * 8
        self.fr: List[float] = [0.0] * 8
        self.vr: List[int] = [0] * 8
        #: Current thread's state, set by run().
        self.ts = None
        #: Total host instructions executed (a deterministic cost metric).
        self.host_insns = 0

    # -- compilation -------------------------------------------------------------

    def _file(self, rc: RC) -> list:
        return {RC.INT: self.ir, RC.FLT: self.fr, RC.VEC: self.vr}[rc]

    def compile(self, code: bytes) -> List[Callable[[], Optional[str]]]:
        """Decode + compile assembled bytes into executable closures."""
        return [self._compile_insn(i) for i in decode_insns(code)]

    def _compile_insn(self, insn: HInsn) -> Callable[[], Optional[str]]:
        cpu = self
        mem = self.mem
        if isinstance(insn, LI):
            f = self._file(insn.dst.rc)
            d, imm = insn.dst.n, insn.imm

            def run():
                f[d] = imm
                return None

            return run
        if isinstance(insn, LIF):
            f = self._file(insn.dst.rc)
            d, imm = insn.dst.n, insn.imm

            def run():
                f[d] = imm
                return None

            return run
        if isinstance(insn, MOVR):
            fd, fs = self._file(insn.dst.rc), self._file(insn.src.rc)
            d, s = insn.dst.n, insn.src.n

            def run():
                fd[d] = fs[s]
                return None

            return run
        if isinstance(insn, BIN):
            op = get_op(insn.op).fn
            fd = self._file(insn.dst.rc)
            f1 = self._file(insn.src1.rc)
            f2 = self._file(insn.src2.rc)
            d, s1, s2 = insn.dst.n, insn.src1.n, insn.src2.n

            def run():
                fd[d] = op(f1[s1], f2[s2])
                return None

            return run
        if isinstance(insn, UN):
            op = get_op(insn.op).fn
            fd = self._file(insn.dst.rc)
            fs = self._file(insn.src.rc)
            d, s = insn.dst.n, insn.src.n

            def run():
                fd[d] = op(fs[s])
                return None

            return run
        if isinstance(insn, LDG):
            fd = self._file(insn.dst.rc)
            d, off, ty = insn.dst.n, insn.off, insn.ty
            if ty.is_int:
                size = ty.size
                end = off + size

                def run():
                    fd[d] = int.from_bytes(cpu.ts.data[off:end], "little")
                    return None

            else:

                def run():
                    fd[d] = cpu.ts.get(off, ty)
                    return None

            return run
        if isinstance(insn, STG):
            fs = self._file(insn.src.rc)
            s, off, ty = insn.src.n, insn.off, insn.ty
            if ty.is_int:
                size = ty.size
                end = off + size

                def run():
                    cpu.ts.data[off:end] = fs[s].to_bytes(size, "little")
                    return None

            else:

                def run():
                    cpu.ts.put(off, ty, fs[s])
                    return None

            return run
        if isinstance(insn, LDM):
            fd = self._file(insn.dst.rc)
            fa = self._file(insn.addr.rc)
            d, a, ty = insn.dst.n, insn.addr.n, insn.ty
            if ty.is_int and ty.size <= 8:
                size = ty.size
                pages = mem._pages
                slow = mem.load
                from ..kernel.memory import PROT_READ as _PR

                def run():
                    addr = fa[a] & 0xFFFFFFFF
                    off = addr & 0xFFF
                    if off <= 4096 - size:
                        page = pages.get(addr >> 12)
                        if page is not None and page[1] & _PR:
                            fd[d] = int.from_bytes(
                                page[0][off : off + size], "little"
                            )
                            return None
                    fd[d] = slow(addr, ty)
                    return None

            else:

                def run():
                    fd[d] = mem.load(fa[a] & 0xFFFFFFFF, ty)
                    return None

            return run
        if isinstance(insn, STM):
            fa = self._file(insn.addr.rc)
            fs = self._file(insn.src.rc)
            a, s, ty = insn.addr.n, insn.src.n, insn.ty
            if ty.is_int and ty.size <= 8:
                size = ty.size
                pages = mem._pages
                slow = mem.store
                from ..kernel.memory import PROT_WRITE as _PW

                def run():
                    addr = fa[a] & 0xFFFFFFFF
                    off = addr & 0xFFF
                    if off <= 4096 - size:
                        page = pages.get(addr >> 12)
                        if page is not None and page[1] & _PW:
                            page[0][off : off + size] = fs[s].to_bytes(
                                size, "little"
                            )
                            return None
                    slow(addr, ty, fs[s])
                    return None

            else:

                def run():
                    mem.store(fa[a] & 0xFFFFFFFF, ty, fs[s])
                    return None

            return run
        if isinstance(insn, CSEL):
            fd = self._file(insn.dst.rc)
            fc = self._file(insn.cond.rc)
            fa = self._file(insn.a.rc)
            fb = self._file(insn.b.rc)
            d, c, a, b = insn.dst.n, insn.cond.n, insn.a.n, insn.b.n

            def run():
                fd[d] = fa[a] if fc[c] else fb[b]
                return None

            return run
        if isinstance(insn, CALL):
            helper = self.helpers.lookup(insn.helper)
            fn = helper.fn
            dirty = insn.dirty
            getters = []
            for arg in insn.args:
                if isinstance(arg, Reg):
                    fr = self._file(arg.rc)
                    getters.append(lambda fr=fr, n=arg.n: fr[n])
                elif isinstance(arg, Slot):
                    off = SPILL_AREA_BASE + arg.n * SPILL_SLOT_SIZE
                    getters.append(
                        lambda off=off, ty=arg.ty: cpu.ts.get(off, ty)
                    )
                else:  # ImmArg
                    getters.append(lambda v=arg.value: v)
            guard = insn.guard
            gfile = self._file(guard.rc) if guard is not None else None
            gn = guard.n if guard is not None else 0
            dst = insn.dst
            dfile = self._file(dst.rc) if dst is not None else None
            dn = dst.n if dst is not None else 0

            ir, fr = self.ir, self.fr
            save_lo = CALL_SAVE_BASE
            save_hi = CALL_SAVE_BASE + 64

            def run():
                if gfile is not None and not gfile[gn]:
                    return None
                # All host registers are caller-saved: the generated call
                # sequence stores the integer register file to the frame
                # area and restores it afterwards (this, plus the spills
                # the allocator inserts for values live across calls, is
                # what makes helper calls cost more than inline analysis
                # code on every platform).
                saved_i = ir[:]
                saved_f = fr[:]
                cpu.ts.data[save_lo:save_hi] = b"".join(
                    v.to_bytes(8, "little") for v in saved_i
                )
                args = [g() for g in getters]
                ret = fn(cpu.env, *args) if dirty else fn(*args)
                ir[:] = saved_i
                fr[:] = saved_f
                if dfile is not None:
                    dfile[dn] = ret
                return None

            return run
        if isinstance(insn, SIDEEXIT):
            fc = self._file(insn.cond.rc)
            c, dst, jk = insn.cond.n, insn.dst, insn.jk

            def run():
                if fc[c]:
                    cpu.ts.pc = dst
                    return jk
                return None

            return run
        if isinstance(insn, SETPCI):
            dst = insn.dst

            def run():
                cpu.ts.pc = dst
                return None

            return run
        if isinstance(insn, SETPCR):
            fs = self._file(insn.src.rc)
            s = insn.src.n

            def run():
                cpu.ts.pc = fs[s] & 0xFFFFFFFF
                return None

            return run
        if isinstance(insn, RET):
            jk = insn.jk

            def run():
                return jk

            return run
        if isinstance(insn, SPILL):
            fs = self._file(insn.src.rc)
            s, ty = insn.src.n, insn.ty
            off = SPILL_AREA_BASE + insn.slot * SPILL_SLOT_SIZE
            if ty.is_int:
                size = ty.size
                end = off + size

                def run():
                    cpu.ts.data[off:end] = fs[s].to_bytes(size, "little")
                    return None

            else:

                def run():
                    cpu.ts.put(off, ty, fs[s])
                    return None

            return run
        if isinstance(insn, RELOAD):
            fd = self._file(insn.dst.rc)
            d, ty = insn.dst.n, insn.ty
            off = SPILL_AREA_BASE + insn.slot * SPILL_SLOT_SIZE
            if ty.is_int:
                end = off + ty.size

                def run():
                    fd[d] = int.from_bytes(cpu.ts.data[off:end], "little")
                    return None

            else:

                def run():
                    fd[d] = cpu.ts.get(off, ty)
                    return None

            return run
        raise TypeError(f"cannot compile {insn!r}")  # pragma: no cover

    # -- execution ---------------------------------------------------------------

    def run(self, compiled: Sequence[Callable[[], Optional[str]]], ts) -> str:
        """Execute one compiled translation; return its jump-kind string."""
        self.ts = ts
        i = 0
        n = len(compiled)
        while i < n:
            r = compiled[i]()
            i += 1
            if r is not None:
                self.host_insns += i
                return r
        self.host_insns += n
        raise RuntimeError("translation fell off the end (missing RET)")
