"""The hx host CPU emulator.

Executes *assembled* translations (the byte strings Phase 8 produces and
the translation table stores).  Each translation's bytes are decoded and
compiled into a list of Python closures once, then cached on the
translation, so repeated executions — the overwhelmingly common case —
pay only the closure-dispatch cost.

Guest faults (unmapped/forbidden memory, division by zero) propagate as
exceptions; the scheduler turns them into guest signals.  The ThreadState
PC is kept precise by the PUT(pc)s the front-end emits, so fault reporting
can trust ``ts.pc``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..guest.regs import CALL_SAVE_BASE, SPILL_AREA_BASE, SPILL_SLOT_SIZE
from ..ir.helpers import HelperRegistry
from ..ir.ops import get_op
from ..ir.types import Ty
from ..ir.values import from_bytes, to_bytes
from ..kernel.memory import GuestMemory
from .isel import MC_LOADV_SIZES, MC_STOREV_SIZES
from .hostisa import (
    BIN,
    CALL,
    CSEL,
    HInsn,
    LDG,
    LDM,
    LI,
    LIF,
    MOVR,
    RC,
    RELOAD,
    RET,
    Reg,
    SETPCI,
    SETPCR,
    SIDEEXIT,
    SIDEEXITR,
    SPILL,
    STG,
    STM,
    Slot,
    TRACEMARK,
    UN,
    decode_insns,
)


#: Process-wide runner source -> code object cache (see _build_runner).
_RUNNER_SRC_CACHE: Dict[str, object] = {}


def _build_op_inline() -> Dict[str, str]:
    """Expression templates for the hot integer ops ({a}/{b} placeholders).

    Register values are kept masked-unsigned by every op, so templates can
    rely on inputs already fitting their width.  Ops without an entry
    (Sar, div/mod, FP, SIMD, ...) fall back to calling the registered
    semantic function.  ``tests/test_perf_mode.py`` cross-checks every
    template against its :mod:`repro.ir.ops` function.
    """
    e: Dict[str, str] = {}
    for w in (8, 16, 32, 64):
        m = (1 << w) - 1
        sb = 1 << (w - 1)
        sext_a = f"({{a}} - (({{a}} & {sb}) << 1))"
        sext_b = f"({{b}} - (({{b}} & {sb}) << 1))"
        e[f"Add{w}"] = f"(({{a}} + {{b}}) & {m})"
        e[f"Sub{w}"] = f"(({{a}} - {{b}}) & {m})"
        e[f"Mul{w}"] = f"(({{a}} * {{b}}) & {m})"
        e[f"And{w}"] = "({a} & {b})"
        e[f"Or{w}"] = "({a} | {b})"
        e[f"Xor{w}"] = "({a} ^ {b})"
        e[f"Shl{w}"] = f"((({{a}} << {{b}}) & {m}) if {{b}} < {w} else 0)"
        e[f"Shr{w}"] = "({a} >> {b})"
        e[f"Not{w}"] = f"({{a}} ^ {m})"
        e[f"Neg{w}"] = f"(-{{a}} & {m})"
        e[f"CmpEQ{w}"] = "(1 if {a} == {b} else 0)"
        e[f"CmpNE{w}"] = "(1 if {a} != {b} else 0)"
        e[f"CmpLT{w}U"] = "(1 if {a} < {b} else 0)"
        e[f"CmpLE{w}U"] = "(1 if {a} <= {b} else 0)"
        e[f"CmpLT{w}S"] = f"(1 if {sext_a} < {sext_b} else 0)"
        e[f"CmpLE{w}S"] = f"(1 if {sext_a} <= {sext_b} else 0)"
        e[f"CmpNEZ{w}"] = "(1 if {a} else 0)"
        e[f"CmpEQZ{w}"] = "(0 if {a} else 1)"
    e["And1"] = "({a} & {b})"
    e["Or1"] = "({a} | {b})"
    e["Xor1"] = "({a} ^ {b})"
    e["Not1"] = "({a} ^ 1)"
    for s in (8, 16, 32):
        for d in (16, 32, 64):
            if d > s:
                sb = 1 << (s - 1)
                e[f"{s}Uto{d}"] = "{a}"
                e[f"{s}Sto{d}"] = (
                    f"(({{a}} - (({{a}} & {sb}) << 1)) & {(1 << d) - 1})"
                )
    for s in (16, 32, 64):
        for d in (1, 8, 16, 32):
            if d < s:
                e[f"{s}to{d}"] = f"({{a}} & {(1 << d) - 1})"
    e["1Uto8"] = e["1Uto32"] = e["1Uto64"] = "{a}"
    for d in (8, 16, 32, 64):
        e[f"1Sto{d}"] = f"({(1 << d) - 1} if {{a}} else 0)"
    e["64HIto32"] = "({a} >> 32)"
    e["32HIto16"] = "({a} >> 16)"
    e["16HIto8"] = "({a} >> 8)"
    e["32HLto64"] = "(({a} << 32) | {b})"
    e["16HLto32"] = "(({a} << 16) | {b})"
    e["8HLto16"] = "(({a} << 8) | {b})"
    return e


#: Op name -> inline expression template used by the runner generator.
OP_INLINE: Dict[str, str] = _build_op_inline()


class HostCPU:
    """Executes assembled host code against a ThreadState + guest memory."""

    def __init__(self, memory: GuestMemory, helpers: HelperRegistry, env: object):
        self.mem = memory
        self.helpers = helpers
        #: Execution environment handed to dirty helpers.
        self.env = env
        # Register files are instance state: translations never nest.
        # Sized for the wide trace register file (hostisa.TRACE_REGFILE),
        # whose names pygen runners may read through def-before-use
        # pre-initialisation; block-tier code only ever touches 0-7.
        self.ir: List[int] = [0] * 16
        self.fr: List[float] = [0.0] * 16
        self.vr: List[int] = [0] * 16
        #: Current thread's state, set by run().
        self.ts = None
        #: Total host instructions executed (a deterministic cost metric).
        self.host_insns = 0
        #: Guest instructions (IMarks) completed by the most recent exit;
        #: set by the SIDEEXIT/RET closures, read back by run().
        self._exit_icnt = 0
        #: Index of the member block the current trace-tier execution has
        #: reached (set by TRACEMARK); the dispatcher reads it back to
        #: account completed blocks exactly on trace faults/side exits.
        self.trace_blocks = 0
        #: Content-addressed compiled-code cache (perf mode): host code
        #: bytes -> one shared block runner.  Identical blocks — common in
        #: loop-heavy workloads — compile exactly once.
        self._code_cache: Dict[bytes, Callable] = {}
        self.code_cache_hits = 0
        self.code_cache_misses = 0
        #: Content-addressed pygen-tier cache (see repro.backend.pygen):
        #: host code bytes -> one shared specialized-function runner.
        self._pygen_cache: Dict[bytes, Callable] = {}
        self.pygen_cache_hits = 0
        self.pygen_cache_misses = 0
        #: Persistent code cache (core.codecache), set by the scheduler
        #: under --cache-dir: compile_pygen_code and the trace builder
        #: round-trip their content-addressed payloads through it.
        self.codecache = None
        #: Memcheck shadow fast paths (backend.isel tables): the
        #: scheduler binds the tool's shadow page-map accessors here
        #: before any block compiles; pygen-emitted code closes over
        #: them as ``_vsg``/``_vsw``, and the closure tier's CALL
        #: builder wraps matching helpers in the same inline probe.
        #: ``shadow_counters`` is [fast_loads, fast_stores, slow_loads,
        #: slow_stores], bumped by the inlined fast paths only.
        self.shadow_fastpath = False
        self.shadow_rd_get = None
        self.shadow_wr_get = None
        self.shadow_counters = [0, 0, 0, 0]

    # -- compilation -------------------------------------------------------------

    def _file(self, rc: RC) -> list:
        return {RC.INT: self.ir, RC.FLT: self.fr, RC.VEC: self.vr}[rc]

    def compile(self, code: bytes) -> List[Callable[[], Optional[str]]]:
        """Decode + compile assembled bytes into executable closures."""
        return [self._compile_insn(i) for i in decode_insns(code)]

    def _compile_insn(self, insn: HInsn) -> Callable[[], Optional[str]]:
        cpu = self
        mem = self.mem
        if isinstance(insn, LI):
            f = self._file(insn.dst.rc)
            d, imm = insn.dst.n, insn.imm

            def run():
                f[d] = imm
                return None

            return run
        if isinstance(insn, LIF):
            f = self._file(insn.dst.rc)
            d, imm = insn.dst.n, insn.imm

            def run():
                f[d] = imm
                return None

            return run
        if isinstance(insn, MOVR):
            fd, fs = self._file(insn.dst.rc), self._file(insn.src.rc)
            d, s = insn.dst.n, insn.src.n

            def run():
                fd[d] = fs[s]
                return None

            return run
        if isinstance(insn, BIN):
            op = get_op(insn.op).fn
            fd = self._file(insn.dst.rc)
            f1 = self._file(insn.src1.rc)
            f2 = self._file(insn.src2.rc)
            d, s1, s2 = insn.dst.n, insn.src1.n, insn.src2.n

            def run():
                fd[d] = op(f1[s1], f2[s2])
                return None

            return run
        if isinstance(insn, UN):
            op = get_op(insn.op).fn
            fd = self._file(insn.dst.rc)
            fs = self._file(insn.src.rc)
            d, s = insn.dst.n, insn.src.n

            def run():
                fd[d] = op(fs[s])
                return None

            return run
        if isinstance(insn, LDG):
            fd = self._file(insn.dst.rc)
            d, off, ty = insn.dst.n, insn.off, insn.ty
            if ty.is_int:
                size = ty.size
                end = off + size

                def run():
                    fd[d] = int.from_bytes(cpu.ts.data[off:end], "little")
                    return None

            else:

                def run():
                    fd[d] = cpu.ts.get(off, ty)
                    return None

            return run
        if isinstance(insn, STG):
            fs = self._file(insn.src.rc)
            s, off, ty = insn.src.n, insn.off, insn.ty
            if ty.is_int:
                size = ty.size
                end = off + size

                def run():
                    cpu.ts.data[off:end] = fs[s].to_bytes(size, "little")
                    return None

            else:

                def run():
                    cpu.ts.put(off, ty, fs[s])
                    return None

            return run
        if isinstance(insn, LDM):
            fd = self._file(insn.dst.rc)
            fa = self._file(insn.addr.rc)
            d, a, ty = insn.dst.n, insn.addr.n, insn.ty
            if ty.is_int and ty.size <= 8:
                size = ty.size
                pages = mem._pages
                slow = mem.load
                from ..kernel.memory import PROT_READ as _PR

                def run():
                    addr = fa[a] & 0xFFFFFFFF
                    off = addr & 0xFFF
                    if off <= 4096 - size:
                        page = pages.get(addr >> 12)
                        if page is not None and page[1] & _PR:
                            fd[d] = int.from_bytes(
                                page[0][off : off + size], "little"
                            )
                            return None
                    fd[d] = slow(addr, ty)
                    return None

            else:

                def run():
                    fd[d] = mem.load(fa[a] & 0xFFFFFFFF, ty)
                    return None

            return run
        if isinstance(insn, STM):
            fa = self._file(insn.addr.rc)
            fs = self._file(insn.src.rc)
            a, s, ty = insn.addr.n, insn.src.n, insn.ty
            if ty.is_int and ty.size <= 8:
                size = ty.size
                pages = mem._pages
                slow = mem.store
                from ..kernel.memory import PROT_WRITE as _PW

                def run():
                    addr = fa[a] & 0xFFFFFFFF
                    off = addr & 0xFFF
                    if off <= 4096 - size:
                        page = pages.get(addr >> 12)
                        if page is not None and page[1] & _PW:
                            page[0][off : off + size] = fs[s].to_bytes(
                                size, "little"
                            )
                            return None
                    slow(addr, ty, fs[s])
                    return None

            else:

                def run():
                    mem.store(fa[a] & 0xFFFFFFFF, ty, fs[s])
                    return None

            return run
        if isinstance(insn, CSEL):
            fd = self._file(insn.dst.rc)
            fc = self._file(insn.cond.rc)
            fa = self._file(insn.a.rc)
            fb = self._file(insn.b.rc)
            d, c, a, b = insn.dst.n, insn.cond.n, insn.a.n, insn.b.n

            def run():
                fd[d] = fa[a] if fc[c] else fb[b]
                return None

            return run
        if isinstance(insn, CALL):
            helper = self.helpers.lookup(insn.helper)
            fn = helper.fn
            dirty = insn.dirty
            getters = []
            for arg in insn.args:
                if isinstance(arg, Reg):
                    fr = self._file(arg.rc)
                    getters.append(lambda fr=fr, n=arg.n: fr[n])
                elif isinstance(arg, Slot):
                    off = SPILL_AREA_BASE + arg.n * SPILL_SLOT_SIZE
                    getters.append(
                        lambda off=off, ty=arg.ty: cpu.ts.get(off, ty)
                    )
                else:  # ImmArg
                    getters.append(lambda v=arg.value: v)
            guard = insn.guard
            gfile = self._file(guard.rc) if guard is not None else None
            gn = guard.n if guard is not None else 0
            dst = insn.dst
            dfile = self._file(dst.rc) if dst is not None else None
            dn = dst.n if dst is not None else 0

            ir, fr = self.ir, self.fr
            save_lo = CALL_SAVE_BASE
            save_hi = CALL_SAVE_BASE + 64

            def run():
                if gfile is not None and not gfile[gn]:
                    return None
                # All host registers are caller-saved: the generated call
                # sequence stores the integer register file to the frame
                # area and restores it afterwards (this, plus the spills
                # the allocator inserts for values live across calls, is
                # what makes helper calls cost more than inline analysis
                # code on every platform).
                saved_i = ir[:]
                saved_f = fr[:]
                # The frame area holds the 8 architected slots; the wider
                # trace-tier registers are restored from the snapshot only.
                cpu.ts.data[save_lo:save_hi] = b"".join(
                    v.to_bytes(8, "little") for v in saved_i[:8]
                )
                args = [g() for g in getters]
                ret = fn(cpu.env, *args) if dirty else fn(*args)
                ir[:] = saved_i
                fr[:] = saved_f
                if dfile is not None:
                    dfile[dn] = ret
                return None

            # Memcheck LOADV/STOREV fast path (tables in backend.isel,
            # same shape as the pygen-emitted one): probe the shadow
            # read/write map, check the range's A bits, slice the V
            # bytes — skipping the caller-save sequence and the helper
            # body entirely.  Page miss, page cross, or any
            # unaddressable byte (the error-reporting path) falls into
            # the generic call above.  Argument getters are pure
            # register/slot/imm reads, so the slow path may re-read
            # them.
            if dirty and guard is None and cpu.shadow_fastpath:
                mc_load = MC_LOADV_SIZES.get(insn.helper)
                mc_store = MC_STOREV_SIZES.get(insn.helper)
                counters = cpu.shadow_counters
                if (mc_load is not None and dfile is not None
                        and len(getters) == 1):
                    size, last = mc_load, 4096 - mc_load
                    g0, rd_get, slow = getters[0], cpu.shadow_rd_get, run

                    def run():
                        a = g0() & 0xFFFFFFFF
                        o = a & 4095
                        if o <= last:
                            sp = rd_get(a >> 12)
                            if sp is not None and 0 not in sp[0][o : o + size]:
                                dfile[dn] = int.from_bytes(
                                    sp[1][o : o + size], "little"
                                )
                                counters[0] += 1
                                return None
                        counters[2] += 1
                        return slow()

                elif (mc_store is not None and dfile is None
                        and len(getters) == 2):
                    size, last = mc_store, 4096 - mc_store
                    g0, g1 = getters
                    wr_get, slow = cpu.shadow_wr_get, run

                    def run():
                        a = g0() & 0xFFFFFFFF
                        o = a & 4095
                        if o <= last:
                            sp = wr_get(a >> 12)
                            if sp is not None and 0 not in sp[0][o : o + size]:
                                sp[1][o : o + size] = g1().to_bytes(
                                    size, "little"
                                )
                                counters[1] += 1
                                return None
                        counters[3] += 1
                        return slow()

            return run
        if isinstance(insn, SIDEEXIT):
            fc = self._file(insn.cond.rc)
            c, dst, jk, icnt = insn.cond.n, insn.dst, insn.jk, insn.icnt

            def run():
                if fc[c]:
                    cpu.ts.pc = dst
                    cpu._exit_icnt = icnt
                    return jk
                return None

            return run
        if isinstance(insn, SIDEEXITR):
            fc = self._file(insn.cond.rc)
            fs = self._file(insn.src.rc)
            c, s, jk, icnt = insn.cond.n, insn.src.n, insn.jk, insn.icnt

            def run():
                if fc[c]:
                    cpu.ts.pc = fs[s] & 0xFFFFFFFF
                    cpu._exit_icnt = icnt
                    return jk
                return None

            return run
        if isinstance(insn, TRACEMARK):
            idx = insn.index

            def run():
                cpu.trace_blocks = idx
                return None

            return run
        if isinstance(insn, SETPCI):
            dst = insn.dst

            def run():
                cpu.ts.pc = dst
                return None

            return run
        if isinstance(insn, SETPCR):
            fs = self._file(insn.src.rc)
            s = insn.src.n

            def run():
                cpu.ts.pc = fs[s] & 0xFFFFFFFF
                return None

            return run
        if isinstance(insn, RET):
            jk, icnt = insn.jk, insn.icnt

            def run():
                cpu._exit_icnt = icnt
                return jk

            return run
        if isinstance(insn, SPILL):
            fs = self._file(insn.src.rc)
            s, ty = insn.src.n, insn.ty
            off = SPILL_AREA_BASE + insn.slot * SPILL_SLOT_SIZE
            if ty.is_int:
                size = ty.size
                end = off + size

                def run():
                    cpu.ts.data[off:end] = fs[s].to_bytes(size, "little")
                    return None

            else:

                def run():
                    cpu.ts.put(off, ty, fs[s])
                    return None

            return run
        if isinstance(insn, RELOAD):
            fd = self._file(insn.dst.rc)
            d, ty = insn.dst.n, insn.ty
            off = SPILL_AREA_BASE + insn.slot * SPILL_SLOT_SIZE
            if ty.is_int:
                end = off + ty.size

                def run():
                    fd[d] = int.from_bytes(cpu.ts.data[off:end], "little")
                    return None

            else:

                def run():
                    fd[d] = cpu.ts.get(off, ty)
                    return None

            return run
        raise TypeError(f"cannot compile {insn!r}")  # pragma: no cover

    # -- execution ---------------------------------------------------------------

    def run(
        self, compiled: Sequence[Callable[[], Optional[str]]], ts
    ) -> Tuple[str, int]:
        """Execute one compiled translation.

        Returns ``(jump-kind, guest_insns)`` where *guest_insns* is the
        exact number of guest instructions (IMarks) the execution
        completed — exact even on side exits.
        """
        self.ts = ts
        self._exit_icnt = 0
        i = 0
        n = len(compiled)
        while i < n:
            r = compiled[i]()
            i += 1
            if r is not None:
                self.host_insns += i
                return r, self._exit_icnt
        self.host_insns += n
        raise RuntimeError("translation fell off the end (missing RET)")

    # -- perf mode: content-addressed block compilation ---------------------------

    def compile_fn(self, code: bytes) -> Callable:
        """Compile assembled bytes into a single block-runner function.

        The result is memoized content-addressed (keyed by the code bytes
        themselves), so byte-identical translations share one runner and
        pay the compilation cost once.  The runner has the signature
        ``runner(ts) -> (jump-kind, guest_insns)`` — semantically identical
        to ``run(compile(code), ts)`` but without the closure-dispatch
        loop's per-instruction overhead.
        """
        fn = self._code_cache.get(code)
        if fn is not None:
            self.code_cache_hits += 1
            return fn
        self.code_cache_misses += 1
        fn = self._build_runner(decode_insns(code))
        self._code_cache[code] = fn
        return fn

    def compile_pygen(self, code: bytes) -> Callable:
        """Compile assembled bytes into a pygen-tier specialized function.

        Content-addressed exactly like :meth:`compile_fn`; the runner has
        the same ``runner(ts) -> (jump-kind, guest_insns)`` signature, so
        the tiers are interchangeable mid-run (see repro.backend.pygen).
        """
        fn = self._pygen_cache.get(code)
        if fn is not None:
            self.pygen_cache_hits += 1
            return fn
        self.pygen_cache_misses += 1
        from .pygen import compile_pygen_code

        fn = compile_pygen_code(self, code)
        self._pygen_cache[code] = fn
        return fn

    def flush_code_cache(self) -> None:
        """Drop all memoized runners (content-addressed entries never go
        *stale* — identical bytes mean identical semantics — so this only
        exists to bound memory and for tests)."""
        self._code_cache.clear()
        self._pygen_cache.clear()

    def _build_runner(self, insns: Sequence[HInsn]) -> Callable:
        """Generate a straight-line Python function for one translation.

        Each instruction's body is emitted *inline* in the generated
        source — register-file indexing, guest-state slicing, the fast
        memory path — rather than dispatched through per-instruction
        closures, so a block execution is one Python call, not one per
        instruction.  Everything the code touches is bound as a default
        parameter (a LOAD_FAST, not a global look-up), and the exit
        ``(jump-kind, guest_insns)`` tuples are preallocated.  Helper
        CALLs keep their closure (the save/restore dance does not inline
        usefully).
        """
        from ..guest.regs import OFFSET_PC
        from ..kernel.memory import PROT_READ, PROT_WRITE

        mem = self.mem
        env: Dict[str, object] = {
            "_cpu": self,
            "_ir": self.ir,
            "_fr": self.fr,
            "_vr": self.vr,
            "_ifb": int.from_bytes,
            "_pg": mem._pages.get,
            "_ld": mem.load,
            "_st": mem.store,
        }
        _cache: Dict[object, str] = {}

        def bind(val: object, key: object = None) -> str:
            if key is not None and key in _cache:
                return _cache[key]
            name = f"_k{len(env)}"
            env[name] = val
            if key is not None:
                _cache[key] = name
            return name

        def lit(val: object) -> str:
            # Ints always repr round-trip; floats may be inf/nan — bind.
            return repr(val) if type(val) is int else bind(val)

        files = {RC.INT: "_ir", RC.FLT: "_fr", RC.VEC: "_vr"}

        def r(reg: Reg) -> str:
            return f"{files[reg.rc]}[{reg.n}]"

        PO, PO4 = OFFSET_PC, OFFSET_PC + 4

        def set_pc_const(dst: int) -> str:
            pcb = (dst & 0xFFFFFFFF).to_bytes(4, "little")
            return f"_d[{PO}:{PO4}] = {pcb!r}"

        body: List[str] = ["_cpu.ts = ts", "_d = ts.data"]

        def emit(line: str, depth: int = 0) -> None:
            body.append("    " * depth + line)

        done = False
        for i, insn in enumerate(insns):
            if isinstance(insn, (LI, LIF)):
                emit(f"{r(insn.dst)} = {lit(insn.imm)}")
            elif isinstance(insn, MOVR):
                emit(f"{r(insn.dst)} = {r(insn.src)}")
            elif isinstance(insn, BIN):
                tmpl = OP_INLINE.get(insn.op)
                if tmpl is not None:
                    expr = tmpl.format(a=r(insn.src1), b=r(insn.src2))
                else:
                    op = bind(get_op(insn.op).fn, key=("op", insn.op))
                    expr = f"{op}({r(insn.src1)}, {r(insn.src2)})"
                emit(f"{r(insn.dst)} = {expr}")
            elif isinstance(insn, UN):
                tmpl = OP_INLINE.get(insn.op)
                if tmpl is not None:
                    expr = tmpl.format(a=r(insn.src))
                else:
                    op = bind(get_op(insn.op).fn, key=("op", insn.op))
                    expr = f"{op}({r(insn.src)})"
                emit(f"{r(insn.dst)} = {expr}")
            elif isinstance(insn, LDG):
                off, ty = insn.off, insn.ty
                if ty.is_int:
                    emit(f"{r(insn.dst)} = _ifb(_d[{off}:{off + ty.size}], 'little')")
                else:
                    emit(f"{r(insn.dst)} = ts.get({off}, {bind(ty, key=ty)})")
            elif isinstance(insn, STG):
                off, ty = insn.off, insn.ty
                if ty.is_int:
                    emit(
                        f"_d[{off}:{off + ty.size}] = "
                        f"{r(insn.src)}.to_bytes({ty.size}, 'little')"
                    )
                else:
                    emit(f"ts.put({off}, {bind(ty, key=ty)}, {r(insn.src)})")
            elif isinstance(insn, LDM):
                ty, dst, addr = insn.ty, r(insn.dst), r(insn.addr)
                tyn = bind(ty, key=ty)
                if ty.is_int and ty.size <= 8:
                    size = ty.size
                    emit(f"_a = {addr} & 4294967295")
                    emit(f"_o = _a & 4095")
                    emit(f"_p = _pg(_a >> 12) if _o <= {4096 - size} else None")
                    emit(f"if _p is not None and _p[1] & {PROT_READ}:")
                    emit(f"{dst} = _ifb(_p[0][_o:_o + {size}], 'little')", 1)
                    emit("else:")
                    emit(f"{dst} = _ld(_a, {tyn})", 1)
                else:
                    emit(f"{dst} = _ld({addr} & 4294967295, {tyn})")
            elif isinstance(insn, STM):
                ty, src, addr = insn.ty, r(insn.src), r(insn.addr)
                tyn = bind(ty, key=ty)
                if ty.is_int and ty.size <= 8:
                    size = ty.size
                    emit(f"_a = {addr} & 4294967295")
                    emit(f"_o = _a & 4095")
                    emit(f"_p = _pg(_a >> 12) if _o <= {4096 - size} else None")
                    emit(f"if _p is not None and _p[1] & {PROT_WRITE}:")
                    emit(
                        f"_p[0][_o:_o + {size}] = {src}.to_bytes({size}, 'little')",
                        1,
                    )
                    emit("else:")
                    emit(f"_st(_a, {tyn}, {src})", 1)
                else:
                    emit(f"_st({addr} & 4294967295, {tyn}, {src})")
            elif isinstance(insn, CSEL):
                emit(
                    f"{r(insn.dst)} = {r(insn.a)} if {r(insn.cond)}"
                    f" else {r(insn.b)}"
                )
            elif isinstance(insn, CALL):
                emit(f"{bind(self._compile_insn(insn))}()")
            elif isinstance(insn, SETPCI):
                emit(set_pc_const(insn.dst))
            elif isinstance(insn, SETPCR):
                emit(
                    f"_d[{PO}:{PO4}] = "
                    f"({r(insn.src)} & 4294967295).to_bytes(4, 'little')"
                )
            elif isinstance(insn, SIDEEXIT):
                exit_tuple = bind((insn.jk, insn.icnt), key=(insn.jk, insn.icnt))
                emit(f"if {r(insn.cond)}:")
                emit(set_pc_const(insn.dst), 1)
                emit(f"_cpu.host_insns += {i + 1}", 1)
                emit(f"return {exit_tuple}", 1)
            elif isinstance(insn, SIDEEXITR):
                exit_tuple = bind((insn.jk, insn.icnt), key=(insn.jk, insn.icnt))
                emit(f"if {r(insn.cond)}:")
                emit(
                    f"_d[{PO}:{PO4}] = "
                    f"({r(insn.src)} & 4294967295).to_bytes(4, 'little')",
                    1,
                )
                emit(f"_cpu.host_insns += {i + 1}", 1)
                emit(f"return {exit_tuple}", 1)
            elif isinstance(insn, TRACEMARK):
                emit(f"_cpu.trace_blocks = {insn.index}")
            elif isinstance(insn, RET):
                exit_tuple = bind((insn.jk, insn.icnt), key=(insn.jk, insn.icnt))
                emit(f"_cpu.host_insns += {i + 1}")
                emit(f"return {exit_tuple}")
                done = True
                break
            elif isinstance(insn, SPILL):
                ty = insn.ty
                off = SPILL_AREA_BASE + insn.slot * SPILL_SLOT_SIZE
                if ty.is_int:
                    emit(
                        f"_d[{off}:{off + ty.size}] = "
                        f"{r(insn.src)}.to_bytes({ty.size}, 'little')"
                    )
                else:
                    emit(f"ts.put({off}, {bind(ty, key=ty)}, {r(insn.src)})")
            elif isinstance(insn, RELOAD):
                ty = insn.ty
                off = SPILL_AREA_BASE + insn.slot * SPILL_SLOT_SIZE
                if ty.is_int:
                    emit(f"{r(insn.dst)} = _ifb(_d[{off}:{off + ty.size}], 'little')")
                else:
                    emit(f"{r(insn.dst)} = ts.get({off}, {bind(ty, key=ty)})")
            else:  # pragma: no cover
                raise TypeError(f"cannot compile {insn!r}")
        if not done:
            raise RuntimeError("translation fell off the end (missing RET)")
        params = ["ts"] + [f"{n}={n}" for n in env]
        src = f"def _runner({', '.join(params)}):\n" + "".join(
            f"    {line}\n" for line in body
        )
        # Parsing the source is the expensive part (~1ms) — share code
        # objects process-wide.  Blocks that differ only in *bound* values
        # (e.g. a float immediate) generate identical source and reuse the
        # same bytecode with different defaults.
        code = _RUNNER_SRC_CACHE.get(src)
        if code is None:
            code = compile(src, "<block-runner>", "exec")
            _RUNNER_SRC_CACHE[src] = code
        exec(code, env)
        return env["_runner"]
