"""Phase 6: instruction selection — tree IR → host instructions.

A simple, greedy, top-down tree-matching selector (Section 3.7).  Output
uses virtual registers; the linear-scan allocator assigns real ones.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.block import IRSB
from ..ir.expr import Binop, CCall, Const, Expr, Get, ITE, Load, RdTmp, Unop
from ..ir.stmt import Dirty, Exit, IMark, NoOp, Put, Store, TraceMark, WrTmp
from ..ir.types import Ty
from .hostisa import (
    BIN,
    CALL,
    CSEL,
    HInsn,
    LDG,
    LDM,
    LI,
    LIF,
    MOVR,
    RC,
    RET,
    Reg,
    SETPCI,
    SETPCR,
    SIDEEXIT,
    SIDEEXITR,
    STG,
    STM,
    TRACEMARK,
    UN,
    rc_of_ty,
)


#: Wellknown Memcheck dirty helpers (a contract with
#: tools/memcheck/instrument.py, cross-checked by
#: tests/test_shadow_properties.py).  A ``Dirty`` statement naming one
#: of these lowers to an ordinary CALL, but both execution back-ends —
#: the per-insn closure engine (backend.hostcpu) and the pygen emitter
#: (backend.pygen) — recognise the names and inline the paper's
#: Section-4 V-bit fast path for within-page 1/2/4-byte accesses,
#: calling the helper only on page miss, page cross, or an
#: unaddressable byte (the error-reporting path).
MC_LOADV_SIZES = {
    "helperc_LOADV8le": 1,
    "helperc_LOADV16le": 2,
    "helperc_LOADV32le": 4,
}
MC_STOREV_SIZES = {
    "helperc_STOREV8le": 1,
    "helperc_STOREV16le": 2,
    "helperc_STOREV32le": 4,
}

#: Memcheck dirty helpers that only read guest state (SP/PC for error
#: reports) and never write it; back-ends may keep guest-state
#: forwarding live across a call to one of these.
MC_NO_STATE_WRITE = frozenset(MC_LOADV_SIZES) | frozenset(MC_STOREV_SIZES) | {
    "helperc_LOADV64le", "helperc_LOADV128le",
    "helperc_STOREV64le", "helperc_STOREV128le",
    "helperc_value_check0_fail", "helperc_value_check1_fail",
    "helperc_value_check2_fail", "helperc_value_check4_fail",
    "helperc_value_check8_fail",
}


class ISelError(Exception):
    pass


class ISel:
    """One-shot instruction selector for a single superblock."""

    def __init__(self, sb: IRSB):
        self.sb = sb
        self.insns: List[HInsn] = []
        self._next_vr = 0
        self._tmp_vreg: Dict[int, Reg] = {}
        #: Constant re-use: one LI per distinct constant per block.
        self._const_vreg: Dict[tuple, Reg] = {}
        #: IMarks seen so far: exits carry this so the dispatcher can keep
        #: exact guest instruction counts on side exits.
        self._imarks_seen = 0

    # -- register management ---------------------------------------------------

    def new_vreg(self, rc: RC) -> Reg:
        r = Reg(rc, self._next_vr, virtual=True)
        self._next_vr += 1
        return r

    def vreg_for_tmp(self, tmp: int) -> Reg:
        r = self._tmp_vreg.get(tmp)
        if r is None:
            r = self.new_vreg(rc_of_ty(self.sb.type_of_tmp(tmp)))
            self._tmp_vreg[tmp] = r
        return r

    # -- expression selection -----------------------------------------------------

    def expr(self, e: Expr) -> Reg:
        """Select *e* into a (possibly new) register."""
        if isinstance(e, RdTmp):
            return self.vreg_for_tmp(e.tmp)
        ty = self.sb.type_of(e)
        if isinstance(e, Const):
            key = (ty, e.value if not ty.is_float else repr(e.value))
            cached = self._const_vreg.get(key)
            if cached is not None:
                return cached
            dst = self.new_vreg(rc_of_ty(ty))
            self.expr_into(e, dst, ty)
            self._const_vreg[key] = dst
            return dst
        dst = self.new_vreg(rc_of_ty(ty))
        self.expr_into(e, dst, ty)
        return dst

    def expr_into(self, e: Expr, dst: Reg, ty: Ty) -> None:
        """Select *e*, leaving the value in *dst*."""
        if isinstance(e, Const):
            if ty.is_float:
                self.insns.append(LIF(dst, float(e.value)))
            else:
                self.insns.append(LI(dst, int(e.value)))
        elif isinstance(e, RdTmp):
            self.insns.append(MOVR(dst, self.vreg_for_tmp(e.tmp)))
        elif isinstance(e, Get):
            self.insns.append(LDG(e.ty, dst, e.offset))
        elif isinstance(e, Load):
            addr = self.expr(e.addr)
            self.insns.append(LDM(e.ty, dst, addr))
        elif isinstance(e, Unop):
            src = self.expr(e.arg)
            self.insns.append(UN(e.op, dst, src))
        elif isinstance(e, Binop):
            s1 = self.expr(e.arg1)
            s2 = self.expr(e.arg2)
            self.insns.append(BIN(e.op, dst, s1, s2))
        elif isinstance(e, ITE):
            cond = self.expr(e.cond)
            a = self.expr(e.iftrue)
            b = self.expr(e.iffalse)
            self.insns.append(CSEL(dst, cond, a, b))
        elif isinstance(e, CCall):
            args = tuple(self.expr(a) for a in e.args)
            self.insns.append(CALL(e.callee, args, dst=dst, retty=e.ty, dirty=False))
        else:
            raise ISelError(f"cannot select {e!r}")

    # -- statement selection ----------------------------------------------------------

    def stmt(self, s) -> None:
        if isinstance(s, IMark):
            self._imarks_seen += 1
            return
        if isinstance(s, NoOp):
            return
        if isinstance(s, WrTmp):
            dst = self.vreg_for_tmp(s.tmp)
            ty = self.sb.type_of_tmp(s.tmp)
            self.expr_into(s.data, dst, ty)
            return
        if isinstance(s, Put):
            ty = self.sb.type_of(s.data)
            src = self.expr(s.data)
            self.insns.append(STG(ty, s.offset, src))
            return
        if isinstance(s, Store):
            ty = self.sb.type_of(s.data)
            addr = self.expr(s.addr)
            src = self.expr(s.data)
            self.insns.append(STM(ty, addr, src))
            return
        if isinstance(s, TraceMark):
            self.insns.append(TRACEMARK(s.index))
            return
        if isinstance(s, Exit):
            cond = self.expr(s.guard)
            if s.dst_expr is not None:
                src = self.expr(s.dst_expr)
                self.insns.append(
                    SIDEEXITR(cond, src, s.jumpkind.value, self._imarks_seen)
                )
            else:
                self.insns.append(
                    SIDEEXIT(cond, s.dst, s.jumpkind.value, self._imarks_seen)
                )
            return
        if isinstance(s, Dirty):
            guard = self.expr(s.guard) if s.guard is not None else None
            args = tuple(self.expr(a) for a in s.args)
            dst = self.vreg_for_tmp(s.tmp) if s.tmp is not None else None
            self.insns.append(
                CALL(s.callee, args, dst=dst, retty=s.retty, dirty=True, guard=guard)
            )
            return
        raise ISelError(f"cannot select statement {s!r}")

    def run(self) -> List[HInsn]:
        for s in self.sb.stmts:
            self.stmt(s)
        nxt = self.sb.next
        if isinstance(nxt, Const):
            self.insns.append(SETPCI(int(nxt.value)))
        else:
            self.insns.append(SETPCR(self.expr(nxt)))
        self.insns.append(RET(self.sb.jumpkind.value, self._imarks_seen))
        return self.insns


def select(sb: IRSB) -> List[HInsn]:
    """Select host instructions (with virtual registers) for *sb*."""
    return ISel(sb).run()
