"""The pygen codegen tier: one specialized CPython function per block.

The paper's back-end wins (Section 3) come from emitting *real host
code* into the code cache; our host is the CPython VM, so the closest
faithful analogue is to emit Python *source* for each register-allocated
block, ``compile()`` it once to CPython bytecode, and execute that.
This is the top tier of the codegen pipeline (see
:mod:`repro.core.codegen`), above the PR-1 ``compile_fn`` runners and
the per-insn closure lists.

What the emitted function does differently from the PR-1 runner
(:meth:`repro.backend.hostcpu.HostCPU._build_runner`):

* **Registers are locals** (``i0..i7``, ``f0..``, ``v0..``), not
  ``_ir[n]`` list cells: every operand access is a LOAD_FAST/STORE_FAST.
* **Spill slots are locals** (``s0..``): SPILL/RELOAD never touch the
  ThreadState spill area (nothing else reads it — helpers and the
  fault-replay engine only see architected offsets).
* **Guest-state writeback is batched**: STG/SETPC pend into per-offset
  temps (``g{off}_{size}``) and are flushed at block exits, before
  dirty helper calls (which may read/write the state out-of-band), and
  — for shadow offsets ≥ GUEST_STATE_SIZE only — before potential
  fault points (loads/stores, div/mod), because precise-fault recovery
  replays *architected* state from the block-entry snapshot but keeps
  the shadow state the partial run committed.  Flushing early is always
  legal: a pending value is exactly what the closure tier would already
  have stored at that point.
* **LDG reads are forwarded** from pending/loaded values of the same
  offset, size and decode class, so e.g. repeated CC-thunk reads hit a
  local.  F32 slots are excluded (the 4-byte round-trip narrows
  doubles); F32 STG/LDG write/read through, and F32 SPILLs apply the
  same rounding the closure tier's round-trip would.
* **Helper CALLs are emitted inline** without the closure tier's
  register-file save/restore: host "registers" live in function locals
  a helper cannot observe, and the CALL_SAVE frame area has no readers.

``host_insns`` accounting and the returned ``(jump-kind, guest_insns)``
exit tuples are identical to the PR-1 runner, so the two tiers are
interchangeable mid-run.
"""

from __future__ import annotations

import struct
import sys
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..guest.regs import GUEST_STATE_SIZE, OFFSET_PC
from ..ir.ops import get_op
from ..ir.types import Ty
from ..kernel.memory import PROT_READ, PROT_WRITE
from .isel import MC_LOADV_SIZES, MC_NO_STATE_WRITE, MC_STOREV_SIZES
from .hostisa import (
    BIN,
    CALL,
    CSEL,
    HInsn,
    LDG,
    LDM,
    LI,
    LIF,
    MOVR,
    RC,
    RELOAD,
    RET,
    Reg,
    SETPCI,
    SETPCR,
    SIDEEXIT,
    SIDEEXITR,
    SPILL,
    STG,
    STM,
    Slot,
    TRACEMARK,
    UN,
)
from .hostcpu import OP_INLINE

#: Emission format version, part of the persistent code cache's pygen
#: payload key (core.codecache): bump on any change to emit_pygen output
#: or the spec entry shapes.
PYGEN_EMIT_VERSION = 2

#: Process-wide pygen source -> code object cache (cf. _RUNNER_SRC_CACHE).
_PYGEN_SRC_CACHE: Dict[str, object] = {}

#: Process-wide encoded host code -> (source, env spec) cache.  Decode +
#: emission dominate compile_pygen; both are pure functions of the code
#: bytes, so fresh runs (benchmarks, fleets, replay) reuse the text and
#: only re-bind per-run objects.  An LRU with both an entry cap and a
#: byte budget (the same budget plumbing as the on-disk cache, set from
#: --cache-max-mb via set_emit_cache_budget); content addressing means
#: entries never go stale, so eviction is purely a memory bound.
_PYGEN_EMIT_CACHE: "OrderedDict[bytes, Tuple[str, tuple]]" = OrderedDict()
_PYGEN_EMIT_CACHE_MAX = 8192
_EMIT_CACHE_BUDGET = 64 * 1024 * 1024
_EMIT_CACHE_BYTES = 0
_EMIT_CACHE_STATS = {"hits": 0, "misses": 0, "evictions": 0,
                     "evicted_bytes": 0}


def _emit_entry_bytes(code: bytes, hit: Tuple[str, tuple]) -> int:
    return len(code) + len(hit[0]) + 64 * len(hit[1]) + 128


def set_emit_cache_budget(n_bytes: int) -> None:
    """Bound the in-process emit cache (LRU eviction past the budget)."""
    global _EMIT_CACHE_BUDGET
    _EMIT_CACHE_BUDGET = max(1, int(n_bytes))
    _emit_cache_trim()


def _emit_cache_trim() -> None:
    global _EMIT_CACHE_BYTES
    while _PYGEN_EMIT_CACHE and (
            _EMIT_CACHE_BYTES > _EMIT_CACHE_BUDGET
            or len(_PYGEN_EMIT_CACHE) > _PYGEN_EMIT_CACHE_MAX):
        old_code, old_hit = _PYGEN_EMIT_CACHE.popitem(last=False)
        n = _emit_entry_bytes(old_code, old_hit)
        _EMIT_CACHE_BYTES -= n
        _EMIT_CACHE_STATS["evictions"] += 1
        _EMIT_CACHE_STATS["evicted_bytes"] += n


def _emit_cache_put(code: bytes, hit: Tuple[str, tuple]) -> None:
    global _EMIT_CACHE_BYTES
    if code in _PYGEN_EMIT_CACHE:
        return
    _PYGEN_EMIT_CACHE[code] = hit
    _EMIT_CACHE_BYTES += _emit_entry_bytes(code, hit)
    _emit_cache_trim()


def clear_emit_cache() -> None:
    """Drop every emit-cache entry (keeps the cumulative counters).
    Clearing through here keeps the byte accounting in sync — never
    ``_PYGEN_EMIT_CACHE.clear()`` directly."""
    global _EMIT_CACHE_BYTES
    _PYGEN_EMIT_CACHE.clear()
    _EMIT_CACHE_BYTES = 0


def emit_cache_stats() -> dict:
    """Emit-cache counters for the --stats=json codegen section."""
    return {
        **_EMIT_CACHE_STATS,
        "entries": len(_PYGEN_EMIT_CACHE),
        "bytes": _EMIT_CACHE_BYTES,
    }

#: Per-run env names always bound by bind_pygen, in emission order —
#: emit_pygen seeds them as placeholders so generated names (``_k5``…)
#: stay stable.
_ENV_HEAD = ("_cpu", "_ifb", "_pg", "_ld", "_st")

_M32 = 0xFFFFFFFF
_RC_PREFIX = {RC.INT: "i", RC.FLT: "f", RC.VEC: "v"}

#: On a little-endian host, a ThreadState's ``u32`` memoryview reads and
#: writes aligned 4-byte guest-state slots with one index operation.
_LE = sys.byteorder == "little"

#: Bound struct codecs for F64/F32 guest-state slots — byte-for-byte the
#: same encoding as :func:`repro.ir.values.to_bytes` / ``from_bytes``,
#: minus the per-access type dispatch.
_F64_PACK_INTO = struct.Struct("<d").pack_into
_F64_UNPACK_FROM = struct.Struct("<d").unpack_from
_F32_PACK_INTO = struct.Struct("<f").pack_into
_F32_UNPACK_FROM = struct.Struct("<f").unpack_from

#: FP expression templates beyond the shared integer OP_INLINE table.
#: Each must be semantically identical to its repro.ir.ops function:
#: AddF64/SubF64/MulF64 are raw IEEE double ops, CmpF64/CmpF32 encode
#: Valgrind's IRCmpF64Result (UN=0x45, LT=0x01, GT=0x00, EQ=0x40) with
#: ``x != x`` as the NaN test, F32toF64 is the identity, and I32StoF64
#: sign-extends then converts.  DivF64 stays a call (IEEE inf/nan edge
#: cases live in _fp_div).
_FP_INLINE: Dict[str, str] = {
    "AddF64": "({a} + {b})",
    "SubF64": "({a} - {b})",
    "MulF64": "({a} * {b})",
    "NegF64": "(-{a})",
    "CmpF64": "(69 if ({a} != {a} or {b} != {b}) else"
              " (1 if {a} < {b} else (0 if {a} > {b} else 64)))",
    "CmpF32": "(69 if ({a} != {a} or {b} != {b}) else"
              " (1 if {a} < {b} else (0 if {a} > {b} else 64)))",
    "F32toF64": "{a}",
    "I32StoF64": "float({a} - (({a} & 2147483648) << 1))",
}

_OP_INLINE_ALL: Dict[str, str] = {**OP_INLINE, **_FP_INLINE}


def _f32_round(v: float) -> float:
    """The closure tier's F32 store/reload round-trip, as a function."""
    return struct.unpack("<f", struct.pack("<f", v))[0]


def _reg(r: Reg) -> str:
    return f"{_RC_PREFIX[r.rc]}{r.n}"


def _slot(n: int) -> str:
    return f"s{n}"


def _insn_io(insn: HInsn) -> Tuple[List[str], List[str]]:
    """(local names read, local names defined) by one instruction."""
    if isinstance(insn, (LI, LIF)):
        return [], [_reg(insn.dst)]
    if isinstance(insn, MOVR):
        return [_reg(insn.src)], [_reg(insn.dst)]
    if isinstance(insn, BIN):
        return [_reg(insn.src1), _reg(insn.src2)], [_reg(insn.dst)]
    if isinstance(insn, UN):
        return [_reg(insn.src)], [_reg(insn.dst)]
    if isinstance(insn, LDG):
        return [], [_reg(insn.dst)]
    if isinstance(insn, STG):
        return [_reg(insn.src)], []
    if isinstance(insn, LDM):
        return [_reg(insn.addr)], [_reg(insn.dst)]
    if isinstance(insn, STM):
        return [_reg(insn.addr), _reg(insn.src)], []
    if isinstance(insn, CSEL):
        return (
            [_reg(insn.cond), _reg(insn.a), _reg(insn.b)],
            [_reg(insn.dst)],
        )
    if isinstance(insn, CALL):
        reads: List[str] = []
        for a in insn.args:
            if isinstance(a, Reg):
                reads.append(_reg(a))
            elif isinstance(a, Slot):
                reads.append(_slot(a.n))
        if insn.guard is not None:
            reads.append(_reg(insn.guard))
            if insn.dst is not None:
                # A guarded call's destination must already be bound if
                # the guard is false: count it as a read so the def-scan
                # pre-initializes it.
                reads.append(_reg(insn.dst))
        defs = [_reg(insn.dst)] if insn.dst is not None else []
        return reads, defs
    if isinstance(insn, SIDEEXIT):
        return [_reg(insn.cond)], []
    if isinstance(insn, SIDEEXITR):
        return [_reg(insn.cond), _reg(insn.src)], []
    if isinstance(insn, SETPCR):
        return [_reg(insn.src)], []
    if isinstance(insn, SPILL):
        return [_reg(insn.src)], [_slot(insn.slot)]
    if isinstance(insn, RELOAD):
        return [_slot(insn.slot)], [_reg(insn.dst)]
    # SETPCI, RET, TRACEMARK
    return [], []


def _is_fault_point(insn: HInsn) -> bool:
    """Can executing *insn* raise a recoverable guest fault?"""
    if isinstance(insn, (LDM, STM)):
        return True
    if isinstance(insn, (BIN, UN)):
        op = insn.op
        if op.endswith(("F64", "F32")):
            # FP div follows IEEE semantics (inf/nan), never raises.
            return False
        return "Div" in op or "Mod" in op
    return False


def build_pygen_runner(cpu, insns: Sequence[HInsn]) -> Callable:
    """Emit + compile one specialized function for a decoded block.

    Returns ``runner(ts) -> (jump-kind, guest_insns)``, semantically
    identical to ``cpu.run(cpu.compile(code), ts)``.
    """
    src, spec = emit_pygen(
        insns, fastpath=bool(getattr(cpu, "shadow_fastpath", False))
    )
    return bind_pygen(cpu, src, spec)


def emit_pygen(insns: Sequence[HInsn], fastpath: bool = False) -> Tuple[str, tuple]:
    """Emit the specialized source for a decoded block — no cpu needed.

    Returns ``(src, spec)`` where *spec* lists how to rebuild the env a
    fresh run must close the function over: ``("const", name, value)``
    entries are run-independent objects bound during emission (operator
    functions, exit tuples, Ty values, float literals); ``("helper",
    name, helper_name)`` and ``("attr", name, cpu_attr)`` entries name
    per-run objects :func:`bind_pygen` resolves against its cpu.
    Emission is deterministic in *(insns, fastpath)*, which makes
    (src, spec) cacheable process-wide by the encoded code bytes (plus
    the fastpath variant bit).

    With *fastpath* set, dirty CALLs to Memcheck's 1/2/4-byte
    LOADV/STOREV helpers are emitted as inline shadow accesses: one
    probe of the bound shadow-page dict (``_vsg``/``_vsw``, resolved to
    the tool's all-addressable page maps via ``cpu.shadow_rd_get`` /
    ``cpu.shadow_wr_get``), a V-byte slice read/write, and a guarded
    slow-path helper call only on page-miss/page-cross.  The fast hit
    cannot report an error (its pages are fully addressable by map
    invariant) and never mutates A bits or page states, so tool output
    is byte-identical to the helper-only emission; ``_shc``
    (``cpu.shadow_counters``) counts fast/slow hits for --stats=json.
    """
    env: Dict[str, object] = dict.fromkeys(_ENV_HEAD)
    spec: List[tuple] = []
    _cache: Dict[object, str] = {}

    def bind(val: object, key: object = None) -> str:
        if key is not None and key in _cache:
            return _cache[key]
        name = f"_k{len(env)}"
        env[name] = val
        spec.append(("const", name, val))
        if key is not None:
            _cache[key] = name
        return name

    def bind_helper(hname: str) -> str:
        key = ("helper", hname)
        if key in _cache:
            return _cache[key]
        name = f"_k{len(env)}"
        env[name] = None
        spec.append(("helper", name, hname))
        _cache[key] = name
        return name

    def need(name: str, attr: str) -> None:
        if name not in env:
            env[name] = None
            spec.append(("attr", name, attr))

    def lit(val: object) -> str:
        # Ints always repr round-trip; floats may be inf/nan — bind.
        return repr(val) if type(val) is int else bind(val)

    # -- def-before-use pre-scan ------------------------------------------------
    io = [_insn_io(insn) for insn in insns]
    defined: set = set()
    preinit: List[str] = []
    last_def: Dict[str, int] = {}
    for idx, (reads, defs) in enumerate(io):
        for name in reads:
            if name not in defined and name not in preinit:
                preinit.append(name)
        defined.update(defs)
        for name in defs:
            last_def[name] = idx

    body: List[str] = ["_cpu.ts = ts", "_d = ts.data"]
    flags = {"m": False}

    def emit(line: str, depth: int = 0) -> None:
        body.append("    " * depth + line)

    def m_slot(off: int) -> str:
        flags["m"] = True
        return f"_m[{off >> 2}]"

    for name in preinit:
        if name[0] == "i":
            need("_ir", "ir")
            emit(f"{name} = _ir[{name[1:]}]")
        elif name[0] == "f":
            need("_fr", "fr")
            emit(f"{name} = _fr[{name[1:]}]")
        elif name[0] == "v":
            need("_vr", "vr")
            emit(f"{name} = _vr[{name[1:]}]")
        else:  # spill slot read before any SPILL (regalloc never does this)
            emit(f"{name} = 0")

    # -- pending guest-state writes --------------------------------------------
    # off -> (size, value, ty, dirty); value is a local/expression string,
    # or a compile-time int constant (SETPCI).  dirty entries need a
    # writeback; clean entries only forward LDG reads.
    known: Dict[int, Tuple[int, object, Ty, bool]] = {}

    def writeback(off: int, entry, depth: int = 0) -> None:
        size, val, ty, _ = entry
        if ty.is_int and size == 4 and _LE and not off % 4:
            emit(f"{m_slot(off)} = {val}", depth)
        elif isinstance(val, int):
            emit(f"_d[{off}:{off + size}] = {val.to_bytes(size, 'little')!r}",
                 depth)
        elif ty.is_int:
            emit(f"_d[{off}:{off + size}] = {val}.to_bytes({size}, 'little')",
                 depth)
        elif ty is Ty.F64:
            emit(f"{bind(_F64_PACK_INTO, key='pf64')}(_d, {off}, {val})", depth)
        else:
            emit(f"ts.put({off}, {bind(ty, key=ty)}, {val})", depth)

    def invalidate_overlap(off: int, size: int) -> None:
        """Flush+drop every entry overlapping [off, off+size) except an
        exact (off, size) match (the caller replaces or reuses that)."""
        for o in list(known):
            e = known[o]
            if o == off and e[0] == size:
                continue
            if o < off + size and off < o + e[0]:
                del known[o]
                if e[3]:
                    writeback(o, e)

    def on_def(name: str) -> None:
        """A local is about to be redefined: entries valued by it can no
        longer forward (dirty ones cannot exist — STG only skips the
        snapshot temp when the source has no later definition)."""
        for o in list(known):
            e = known[o]
            if e[1] == name:
                del known[o]
                if e[3]:  # defensive: value is still live on this line
                    writeback(o, e)

    def flush_dirty(shadow_only: bool = False, depth: int = 0,
                    keep_pending: bool = False, skip_pc: bool = False) -> None:
        """Write back pending entries (sorted for determinism).

        *keep_pending* emits the writebacks without marking entries clean
        — used inside a conditional side exit, where the fall-through
        path has not actually stored anything yet.
        """
        for o in sorted(known):
            e = known[o]
            if not e[3]:
                continue
            if shadow_only and o < GUEST_STATE_SIZE:
                continue
            if skip_pc and o == OFFSET_PC and e[0] == 4:
                continue
            writeback(o, e, depth)
            if not keep_pending:
                known[o] = (e[0], e[1], e[2], False)

    def forwardable(entry, ty: Ty) -> bool:
        size, _, ety, _ = entry
        return size == ty.size and (ety is ty or (ety.is_int and ty.is_int))

    files = {RC.INT: "i", RC.FLT: "f", RC.VEC: "v"}

    PO, PO4 = OFFSET_PC, OFFSET_PC + 4
    done = False
    for i, insn in enumerate(insns):
        reads, defs = io[i]
        if _is_fault_point(insn):
            # Recovery replays architected state from the entry snapshot,
            # but shadow state keeps what the partial run committed: make
            # the committed shadow state match the closure tier's.
            flush_dirty(shadow_only=True)
        for name in defs:
            on_def(name)
        if isinstance(insn, (LI, LIF)):
            emit(f"{_reg(insn.dst)} = {lit(insn.imm)}")
        elif isinstance(insn, MOVR):
            emit(f"{_reg(insn.dst)} = {_reg(insn.src)}")
        elif isinstance(insn, BIN):
            tmpl = _OP_INLINE_ALL.get(insn.op)
            if tmpl is not None:
                expr = tmpl.format(a=_reg(insn.src1), b=_reg(insn.src2))
            else:
                op = bind(get_op(insn.op).fn, key=("op", insn.op))
                expr = f"{op}({_reg(insn.src1)}, {_reg(insn.src2)})"
            emit(f"{_reg(insn.dst)} = {expr}")
        elif isinstance(insn, UN):
            tmpl = _OP_INLINE_ALL.get(insn.op)
            if tmpl is not None:
                expr = tmpl.format(a=_reg(insn.src))
            else:
                op = bind(get_op(insn.op).fn, key=("op", insn.op))
                expr = f"{op}({_reg(insn.src)})"
            emit(f"{_reg(insn.dst)} = {expr}")
        elif isinstance(insn, LDG):
            off, ty = insn.off, insn.ty
            dst = _reg(insn.dst)
            entry = known.get(off)
            if entry is not None and forwardable(entry, ty):
                emit(f"{dst} = {entry[1]}")
            else:
                invalidate_overlap(off, ty.size)
                entry = known.get(off)  # exact-size, incompatible decode
                if entry is not None:
                    if entry[3]:
                        writeback(off, entry)
                    del known[off]
                if ty is Ty.F32:
                    emit(f"{dst} = "
                         f"{bind(_F32_UNPACK_FROM, key='uf32')}(_d, {off})[0]")
                else:
                    g = f"g{off}_{ty.size}"
                    if ty.is_int and ty.size == 4 and _LE and not off % 4:
                        emit(f"{dst} = {g} = {m_slot(off)}")
                    elif ty.is_int:
                        emit(f"{dst} = {g} = "
                             f"_ifb(_d[{off}:{off + ty.size}], 'little')")
                    elif ty is Ty.F64:
                        emit(f"{dst} = {g} = "
                             f"{bind(_F64_UNPACK_FROM, key='uf64')}(_d, {off})[0]")
                    else:
                        emit(f"{dst} = {g} = ts.get({off}, {bind(ty, key=ty)})")
                    known[off] = (ty.size, g, ty, False)
        elif isinstance(insn, STG):
            off, ty = insn.off, insn.ty
            src = _reg(insn.src)
            if ty is Ty.F32:
                invalidate_overlap(off, ty.size)
                known.pop(off, None)
                emit(f"{bind(_F32_PACK_INTO, key='pf32')}(_d, {off}, {src})")
            else:
                invalidate_overlap(off, ty.size)
                if last_def.get(src, -1) > i:
                    # The source register is redefined later: snapshot the
                    # pending value so the flush sees today's value.
                    g = f"g{off}_{ty.size}"
                    emit(f"{g} = {src}")
                    known[off] = (ty.size, g, ty, True)
                else:
                    known[off] = (ty.size, src, ty, True)
        elif isinstance(insn, LDM):
            ty, dst, addr = insn.ty, _reg(insn.dst), _reg(insn.addr)
            tyn = bind(ty, key=ty)
            if ty.is_int and ty.size <= 8:
                size = ty.size
                emit(f"_a = {addr} & 4294967295")
                emit(f"_o = _a & 4095")
                emit(f"_p = _pg(_a >> 12) if _o <= {4096 - size} else None")
                emit(f"if _p is not None and _p[1] & {PROT_READ}:")
                emit(f"{dst} = _ifb(_p[0][_o:_o + {size}], 'little')", 1)
                emit("else:")
                emit(f"{dst} = _ld(_a, {tyn})", 1)
            elif ty is Ty.F64 or ty is Ty.F32:
                unpack = bind(
                    _F64_UNPACK_FROM if ty is Ty.F64 else _F32_UNPACK_FROM,
                    key="uf64" if ty is Ty.F64 else "uf32",
                )
                size = ty.size
                emit(f"_a = {addr} & 4294967295")
                emit(f"_o = _a & 4095")
                emit(f"_p = _pg(_a >> 12) if _o <= {4096 - size} else None")
                emit(f"if _p is not None and _p[1] & {PROT_READ}:")
                emit(f"{dst} = {unpack}(_p[0], _o)[0]", 1)
                emit("else:")
                emit(f"{dst} = _ld(_a, {tyn})", 1)
            else:
                emit(f"{dst} = _ld({addr} & 4294967295, {tyn})")
        elif isinstance(insn, STM):
            ty, src, addr = insn.ty, _reg(insn.src), _reg(insn.addr)
            tyn = bind(ty, key=ty)
            if ty.is_int and ty.size <= 8:
                size = ty.size
                emit(f"_a = {addr} & 4294967295")
                emit(f"_o = _a & 4095")
                emit(f"_p = _pg(_a >> 12) if _o <= {4096 - size} else None")
                emit(f"if _p is not None and _p[1] & {PROT_WRITE}:")
                emit(f"_p[0][_o:_o + {size}] = {src}.to_bytes({size}, 'little')",
                     1)
                emit("else:")
                emit(f"_st(_a, {tyn}, {src})", 1)
            elif ty is Ty.F64 or ty is Ty.F32:
                pack = bind(
                    _F64_PACK_INTO if ty is Ty.F64 else _F32_PACK_INTO,
                    key="pf64" if ty is Ty.F64 else "pf32",
                )
                size = ty.size
                emit(f"_a = {addr} & 4294967295")
                emit(f"_o = _a & 4095")
                emit(f"_p = _pg(_a >> 12) if _o <= {4096 - size} else None")
                emit(f"if _p is not None and _p[1] & {PROT_WRITE}:")
                emit(f"{pack}(_p[0], _o, {src})", 1)
                emit("else:")
                emit(f"_st(_a, {tyn}, {src})", 1)
            else:
                emit(f"_st({addr} & 4294967295, {tyn}, {src})")
        elif isinstance(insn, CSEL):
            emit(f"{_reg(insn.dst)} = {_reg(insn.a)} if {_reg(insn.cond)}"
                 f" else {_reg(insn.b)}")
        elif isinstance(insn, CALL):
            args = []
            for a in insn.args:
                if isinstance(a, Reg):
                    args.append(_reg(a))
                elif isinstance(a, Slot):
                    args.append(_slot(a.n))
                else:  # ImmArg
                    args.append(lit(a.value))
            mc_load = MC_LOADV_SIZES.get(insn.helper) if fastpath else None
            mc_store = MC_STOREV_SIZES.get(insn.helper) if fastpath else None
            fname = bind_helper(insn.helper)
            if (mc_load is not None and insn.dirty and insn.guard is None
                    and insn.dst is not None and len(args) == 1):
                # Inline LOADV: probe the read map for the (abits,
                # vbits) secondary, check the accessed range's A bits
                # inline, slice the V bytes.  Any unaddressable byte
                # (that is the error-reporting path) or page miss/cross
                # falls back to the helper; pending guest-state
                # writebacks flush only on the slow branch (the helper
                # may symbolise SP/PC for a report).
                need("_env", "env")
                need("_vsg", "shadow_rd_get")
                need("_shc", "shadow_counters")
                size, dst = mc_load, _reg(insn.dst)
                emit(f"_a = {args[0]} & 4294967295")
                emit("_o = _a & 4095")
                if size == 1:
                    emit("_sp = _vsg(_a >> 12)")
                    emit("if _sp is not None and _sp[0][_o]:")
                    emit(f"{dst} = _sp[1][_o]", 1)
                else:
                    emit(f"_sp = _vsg(_a >> 12) if _o <= {4096 - size}"
                         " else None")
                    emit(f"if _sp is not None and"
                         f" 0 not in _sp[0][_o:_o + {size}]:")
                    emit(f"{dst} = _ifb(_sp[1][_o:_o + {size}], 'little')",
                         1)
                emit("_shc[0] += 1", 1)
                emit("else:")
                emit("_shc[2] += 1", 1)
                flush_dirty(depth=1, keep_pending=True)
                emit(f"{dst} = {fname}(_env, _a)", 1)
            elif (mc_store is not None and insn.dirty and insn.guard is None
                    and insn.dst is None and len(args) == 2):
                # Inline STOREV: the write map only holds *private*
                # secondaries, so the slice write can never touch a
                # shared distinguished page — copy-on-write promotion
                # stays in the helper, keeping page-state stats
                # identical with the fast path on or off.  The inline
                # A-bit check routes partially-addressable ranges (the
                # error path) to the helper.
                need("_env", "env")
                need("_vsw", "shadow_wr_get")
                need("_shc", "shadow_counters")
                size, val = mc_store, args[1]
                emit(f"_a = {args[0]} & 4294967295")
                emit("_o = _a & 4095")
                if size == 1:
                    emit("_sp = _vsw(_a >> 12)")
                    emit("if _sp is not None and _sp[0][_o]:")
                    emit(f"_sp[1][_o:_o + 1] = ({val}).to_bytes(1,"
                         " 'little')", 1)
                else:
                    emit(f"_sp = _vsw(_a >> 12) if _o <= {4096 - size}"
                         " else None")
                    emit(f"if _sp is not None and"
                         f" 0 not in _sp[0][_o:_o + {size}]:")
                    emit(f"_sp[1][_o:_o + {size}] = ({val}).to_bytes({size},"
                         " 'little')", 1)
                emit("_shc[1] += 1", 1)
                emit("else:")
                emit("_shc[3] += 1", 1)
                flush_dirty(depth=1, keep_pending=True)
                emit(f"{fname}(_env, _a, {val})", 1)
            else:
                if insn.dirty:
                    # The helper may read or write guest state out-of-band:
                    # commit every pending store first.
                    flush_dirty()
                if insn.dirty:
                    need("_env", "env")
                    call = f"{fname}(_env{''.join(', ' + a for a in args)})"
                else:
                    call = f"{fname}({', '.join(args)})"
                line = (f"{_reg(insn.dst)} = {call}"
                        if insn.dst is not None else call)
                if insn.guard is not None:
                    emit(f"if {_reg(insn.guard)}:")
                    emit(line, 1)
                else:
                    emit(line)
                if insn.dirty and insn.helper not in MC_NO_STATE_WRITE:
                    # Error-reporting helpers never write guest state:
                    # the forwarding map (entries just marked clean by
                    # the flush) stays valid across the call.
                    known.clear()
        elif isinstance(insn, SETPCI):
            invalidate_overlap(PO, 4)
            known[PO] = (4, insn.dst & _M32, Ty.I32, True)
        elif isinstance(insn, SETPCR):
            invalidate_overlap(PO, 4)
            emit(f"g{PO}_4 = {_reg(insn.src)} & 4294967295")
            known[PO] = (4, f"g{PO}_4", Ty.I32, True)
        elif isinstance(insn, SIDEEXIT):
            exit_tuple = bind((insn.jk, insn.icnt), key=(insn.jk, insn.icnt))
            emit(f"if {_reg(insn.cond)}:")
            flush_dirty(depth=1, keep_pending=True, skip_pc=True)
            if _LE:
                emit(f"{m_slot(PO)} = {insn.dst & _M32}", 1)
            else:
                pcb = (insn.dst & _M32).to_bytes(4, "little")
                emit(f"_d[{PO}:{PO4}] = {pcb!r}", 1)
            emit(f"_cpu.host_insns += {i + 1}", 1)
            emit(f"return {exit_tuple}", 1)
        elif isinstance(insn, SIDEEXITR):
            exit_tuple = bind((insn.jk, insn.icnt), key=(insn.jk, insn.icnt))
            emit(f"if {_reg(insn.cond)}:")
            flush_dirty(depth=1, keep_pending=True, skip_pc=True)
            if _LE:
                emit(f"{m_slot(PO)} = {_reg(insn.src)} & 4294967295", 1)
            else:
                emit(
                    f"_d[{PO}:{PO4}] = "
                    f"({_reg(insn.src)} & 4294967295).to_bytes(4, 'little')",
                    1,
                )
            emit(f"_cpu.host_insns += {i + 1}", 1)
            emit(f"return {exit_tuple}", 1)
        elif isinstance(insn, TRACEMARK):
            emit(f"_cpu.trace_blocks = {insn.index}")
        elif isinstance(insn, RET):
            exit_tuple = bind((insn.jk, insn.icnt), key=(insn.jk, insn.icnt))
            flush_dirty()
            emit(f"_cpu.host_insns += {i + 1}")
            emit(f"return {exit_tuple}")
            done = True
            break
        elif isinstance(insn, SPILL):
            src = _reg(insn.src)
            if insn.ty is Ty.F32:
                # Match the closure tier's 4-byte round-trip exactly.
                f32 = bind(_f32_round, key="f32rt")
                emit(f"{_slot(insn.slot)} = {f32}({src})")
            else:
                emit(f"{_slot(insn.slot)} = {src}")
        elif isinstance(insn, RELOAD):
            emit(f"{_reg(insn.dst)} = {_slot(insn.slot)}")
        else:  # pragma: no cover
            raise TypeError(f"cannot compile {insn!r}")
    if not done:
        raise RuntimeError("translation fell off the end (missing RET)")
    if flags["m"]:
        body.insert(2, "_m = ts.u32")
    params = ["ts"] + [f"{n}={n}" for n in env]
    src = f"def _pygen({', '.join(params)}):\n" + "".join(
        f"    {line}\n" for line in body
    )
    return src, tuple(spec)


def bind_pygen(cpu, src: str, spec: tuple) -> Callable:
    """Close emitted source over one run's cpu/mem/helpers and compile."""
    mem = cpu.mem
    env: Dict[str, object] = {
        "_cpu": cpu,
        "_ifb": int.from_bytes,
        "_pg": mem._pages.get,
        "_ld": mem.load,
        "_st": mem.store,
    }
    for kind, name, payload in spec:
        if kind == "const":
            env[name] = payload
        elif kind == "helper":
            env[name] = cpu.helpers.lookup(payload).fn
        else:  # attr
            env[name] = getattr(cpu, payload)
    # Share code objects process-wide: blocks differing only in bound
    # values reuse the same bytecode with different defaults.
    code = _PYGEN_SRC_CACHE.get(src)
    if code is None:
        code = compile(src, "<pygen-block>", "exec")
        _PYGEN_SRC_CACHE[src] = code
    exec(code, env)
    fn = env["_pygen"]
    fn.pygen_source = src
    return fn


def _code_wants_fastpath(cpu, code: bytes) -> bool:
    """Should *code* compile with the Memcheck fast paths?

    True only when the cpu has shadow maps bound (scheduler wiring, off
    under ``--memcheck-fastpath=no``) *and* the encoded bytes actually
    name a LOADV/STOREV helper (the helper-name string table is part of
    the encoding), so Nulgrind-style blocks keep their variant-0 cache
    identity and fast/slow emissions never alias one cache key.
    """
    if not getattr(cpu, "shadow_fastpath", False):
        return False
    return b"helperc_LOADV" in code or b"helperc_STOREV" in code


def compile_pygen_code(cpu, code: bytes) -> Callable:
    """Decode + emit + bind, with decode/emit cached by code bytes.

    Emission is deterministic in the encoded bytes (plus the fastpath
    variant bit, folded into the cache keys), so repeated runs of the
    same program (benchmarks, fleets, replay) skip straight to
    :func:`bind_pygen` — the only per-run work left is building the env
    dict and executing the cached code object.  When the cpu carries a
    persistent :class:`repro.core.codecache.CodeCache`, emit payloads
    round-trip through it, so the skip extends across processes.
    """
    fastpath = _code_wants_fastpath(cpu, code)
    key = b"\x01" + code if fastpath else code
    hit = _PYGEN_EMIT_CACHE.get(key)
    if hit is not None:
        _PYGEN_EMIT_CACHE.move_to_end(key)
        _EMIT_CACHE_STATS["hits"] += 1
    else:
        _EMIT_CACHE_STATS["misses"] += 1
        disk = getattr(cpu, "codecache", None)
        if disk is not None:
            hit = disk.load_pygen(code, fastpath=fastpath)
        if hit is None:
            from .hostisa import decode_insns

            hit = emit_pygen(decode_insns(code), fastpath=fastpath)
            if disk is not None:
                disk.store_pygen(code, *hit, fastpath=fastpath)
        _emit_cache_put(key, hit)
    return bind_pygen(cpu, *hit)


# -- spec (de)serialization for the persistent cache ---------------------------


class SpecCodecError(Exception):
    """An env spec entry has no stable serialized form."""


#: Struct codecs and rounding helpers emit_pygen binds by well-known
#: cache key — serialized by that key, resolved back by table lookup.
_WELLKNOWN = {
    "pf64": _F64_PACK_INTO,
    "uf64": _F64_UNPACK_FROM,
    "pf32": _F32_PACK_INTO,
    "uf32": _F32_UNPACK_FROM,
    "f32rt": _f32_round,
}
_WELLKNOWN_BY_ID = {id(v): k for k, v in _WELLKNOWN.items()}
_OP_NAME_BY_ID: Optional[Dict[int, str]] = None


def _op_name_by_id() -> Dict[int, str]:
    global _OP_NAME_BY_ID
    if _OP_NAME_BY_ID is None:
        from ..ir.ops import OPS

        _OP_NAME_BY_ID = {id(op.fn): name for name, op in OPS.items()}
    return _OP_NAME_BY_ID


def _is_plain(v: object) -> bool:
    return v is None or isinstance(v, (int, float, str, bytes, bool))


def _encode_const(v: object):
    wk = _WELLKNOWN_BY_ID.get(id(v))
    if wk is not None:
        return ("wk", wk)
    if isinstance(v, Ty):
        return ("ty", v.name)
    if callable(v):
        name = _op_name_by_id().get(id(v))
        if name is not None:
            return ("op", name)
        raise SpecCodecError(f"unserializable callable {v!r}")
    if _is_plain(v):
        return ("v", v)
    if isinstance(v, tuple) and all(_is_plain(x) for x in v):
        return ("v", v)
    raise SpecCodecError(f"unserializable const {type(v).__name__}")


def encode_spec(spec: tuple) -> tuple:
    """Turn an emit_pygen env spec into a picklable tuple.

    Op functions (lambdas in the IR op registry), bound struct codecs
    and the F32 rounding helper are encoded by name; Ty values by enum
    name; plain values verbatim.  Raises :class:`SpecCodecError` for
    anything else — the caller skips persistence rather than storing an
    entry it cannot decode.
    """
    out = []
    for kind, name, payload in spec:
        if kind == "const":
            out.append(("const", name, _encode_const(payload)))
        elif kind in ("helper", "attr"):
            out.append((kind, name, payload))
        else:
            raise SpecCodecError(f"unknown spec kind {kind!r}")
    return tuple(out)


def decode_spec(enc: tuple) -> tuple:
    """Inverse of :func:`encode_spec`; raises SpecCodecError on any
    unknown shape (the cache layer quarantines the entry)."""
    from ..ir.ops import get_op

    out = []
    try:
        for kind, name, payload in enc:
            if kind == "const":
                tag, val = payload
                if tag == "wk":
                    out.append(("const", name, _WELLKNOWN[val]))
                elif tag == "ty":
                    out.append(("const", name, Ty[val]))
                elif tag == "op":
                    out.append(("const", name, get_op(val).fn))
                elif tag == "v":
                    out.append(("const", name, val))
                else:
                    raise SpecCodecError(f"unknown const tag {tag!r}")
            elif kind in ("helper", "attr"):
                out.append((kind, name, payload))
            else:
                raise SpecCodecError(f"unknown spec kind {kind!r}")
    except SpecCodecError:
        raise
    except Exception as exc:
        raise SpecCodecError(str(exc))
    return tuple(out)
