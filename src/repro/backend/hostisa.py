"""The hx synthetic host instruction set.

The JIT back-end's target: a small register machine with

* 8 integer registers (``h0``–``h7``; ``h6``/``h7`` are reserved as spill
  scratch, and a ninth, unallocatable register always points at the
  ThreadState — "one general-purpose host register is always reserved to
  point to the ThreadState", Section 3.7 Phase 7),
* 4 FP registers (``hf0``–``hf3``, ``hf3`` scratch),
* 4 vector registers (``hv0``–``hv3``, ``hv3`` scratch),
* three-address ALU instructions whose operation field indexes the IR's
  primitive-op table,
* guest-state (ThreadState-relative) and guest-memory load/store,
* clean/dirty helper calls, and
* side-exit / set-PC / return-to-dispatcher control instructions.

Instructions carry *virtual* registers out of instruction selection; the
linear-scan allocator replaces them with real ones.  The assembler
(Phase 8) encodes the final list to bytes, which is what the translation
table stores and the host CPU emulator executes.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..ir.ops import OPS

#: Encoding format version, part of the persistent code cache's context
#: key (core.codecache): bump on any change to the byte encoding, the
#: opcode table, or the pre-registered jump-kind order.
HOSTISA_FORMAT_VERSION = 1
from ..ir.types import Ty

# Stable numbering of IR primitive ops for the ALU-op field.
OP_INDEX: Dict[str, int] = {name: i for i, name in enumerate(sorted(OPS))}
OP_BY_INDEX: Dict[int, str] = {i: name for name, i in OP_INDEX.items()}

_TY_INDEX = {t: i for i, t in enumerate(Ty)}
_TY_BY_INDEX = {i: t for t, i in _TY_INDEX.items()}


class RC(enum.IntEnum):
    """Host register classes."""

    INT = 0
    FLT = 1
    VEC = 2


#: Registers available to the allocator, per class.
ALLOCATABLE = {RC.INT: 5, RC.FLT: 2, RC.VEC: 2}
#: Total real registers per class (the rest are spill scratch).
NUM_REGS = {RC.INT: 8, RC.FLT: 4, RC.VEC: 4}
#: Scratch registers reserved for spill-code rewriting (CSEL can need
#: three reloaded integer sources at once).
SCRATCH = {RC.INT: (5, 6, 7), RC.FLT: (2, 3), RC.VEC: (2, 3)}
#: Wider register file used when allocating superblock traces
#: (core.traces): a stitched multi-block unit carries far more
#: simultaneously-live values than one block, and the pygen back-end's
#: "registers" are CPython locals, so the x86-sized file would force
#: artificial spills.  The extra names sit above the scratch trio and
#: still fit the 4-bit register field of the instruction encoding.
TRACE_REGFILE = {
    RC.INT: tuple(range(ALLOCATABLE[RC.INT])) + tuple(range(8, 16)),
    RC.FLT: tuple(range(ALLOCATABLE[RC.FLT])) + tuple(range(4, 16)),
    RC.VEC: tuple(range(ALLOCATABLE[RC.VEC])) + tuple(range(4, 16)),
}

_RC_PREFIX = {RC.INT: "h", RC.FLT: "hf", RC.VEC: "hv"}


@dataclass(frozen=True)
class Reg:
    """A host register: virtual (from isel) or real (after regalloc)."""

    rc: RC
    n: int
    virtual: bool = False

    def __str__(self) -> str:
        if self.virtual:
            return f"%%vr{self.n}"
        return f"%{_RC_PREFIX[self.rc]}{self.n}"


@dataclass(frozen=True)
class Slot:
    """A spill slot, usable directly as a call argument (CISC-style)."""

    n: int
    ty: Ty

    def __str__(self) -> str:
        return f"slot{self.n}"


@dataclass(frozen=True)
class ImmArg:
    """An immediate call argument (real call sequences push immediates)."""

    value: object
    ty: Ty

    def __str__(self) -> str:
        return f"#{self.value}"


Arg = Union[Reg, Slot, ImmArg]


def rc_of_ty(ty: Ty) -> RC:
    if ty.is_float:
        return RC.FLT
    if ty is Ty.V128:
        return RC.VEC
    return RC.INT


# -- instruction classes ------------------------------------------------------


class HInsn:
    """Base class of host instructions."""

    __slots__ = ()

    def regs_read(self) -> Tuple[Reg, ...]:
        return ()

    def regs_written(self) -> Tuple[Reg, ...]:
        return ()


@dataclass(frozen=True)
class LI(HInsn):
    """Load an integer immediate (up to 128 bits, for V128 constants)."""

    dst: Reg
    imm: int

    def regs_written(self):
        return (self.dst,)

    def __str__(self) -> str:
        return f"li {self.dst}, {self.imm:#x}"


@dataclass(frozen=True)
class LIF(HInsn):
    """Load an FP immediate."""

    dst: Reg
    imm: float

    def regs_written(self):
        return (self.dst,)

    def __str__(self) -> str:
        return f"lif {self.dst}, {self.imm!r}"


@dataclass(frozen=True)
class MOVR(HInsn):
    """Register-to-register move (same class)."""

    dst: Reg
    src: Reg

    def regs_read(self):
        return (self.src,)

    def regs_written(self):
        return (self.dst,)

    def __str__(self) -> str:
        return f"mov {self.dst}, {self.src}"


@dataclass(frozen=True)
class BIN(HInsn):
    """Three-address ALU: dst = op(src1, src2), op from the IR op table."""

    op: str
    dst: Reg
    src1: Reg
    src2: Reg

    def regs_read(self):
        return (self.src1, self.src2)

    def regs_written(self):
        return (self.dst,)

    def __str__(self) -> str:
        return f"{self.op.lower()} {self.dst}, {self.src1}, {self.src2}"


@dataclass(frozen=True)
class UN(HInsn):
    """Two-address ALU: dst = op(src)."""

    op: str
    dst: Reg
    src: Reg

    def regs_read(self):
        return (self.src,)

    def regs_written(self):
        return (self.dst,)

    def __str__(self) -> str:
        return f"{self.op.lower()} {self.dst}, {self.src}"


@dataclass(frozen=True)
class LDG(HInsn):
    """Load from the ThreadState: dst = TS[off .. off+size(ty))."""

    ty: Ty
    dst: Reg
    off: int

    def regs_written(self):
        return (self.dst,)

    def __str__(self) -> str:
        return f"ldg.{self.ty.value.lower()} {self.dst}, ts[{self.off}]"


@dataclass(frozen=True)
class STG(HInsn):
    """Store to the ThreadState."""

    ty: Ty
    off: int
    src: Reg

    def regs_read(self):
        return (self.src,)

    def __str__(self) -> str:
        return f"stg.{self.ty.value.lower()} ts[{self.off}], {self.src}"


@dataclass(frozen=True)
class LDM(HInsn):
    """Guest-memory load: dst = mem[addr]; may fault."""

    ty: Ty
    dst: Reg
    addr: Reg

    def regs_read(self):
        return (self.addr,)

    def regs_written(self):
        return (self.dst,)

    def __str__(self) -> str:
        return f"ldm.{self.ty.value.lower()} {self.dst}, [{self.addr}]"


@dataclass(frozen=True)
class STM(HInsn):
    """Guest-memory store: mem[addr] = src; may fault."""

    ty: Ty
    addr: Reg
    src: Reg

    def regs_read(self):
        return (self.addr, self.src)

    def __str__(self) -> str:
        return f"stm.{self.ty.value.lower()} [{self.addr}], {self.src}"


@dataclass(frozen=True)
class CSEL(HInsn):
    """Conditional select: dst = cond ? a : b (cond is an INT reg)."""

    dst: Reg
    cond: Reg
    a: Reg
    b: Reg

    def regs_read(self):
        return (self.cond, self.a, self.b)

    def regs_written(self):
        return (self.dst,)

    def __str__(self) -> str:
        return f"csel {self.dst}, {self.cond} ? {self.a} : {self.b}"


@dataclass(frozen=True)
class CALL(HInsn):
    """Helper call.  ``dirty`` distinguishes clean (pure) from dirty calls;
    dirty calls receive the execution environment.  ``guard`` (INT reg, may
    be None) makes the call conditional — Memcheck's conditional
    error-reporting calls compile to this."""

    helper: str
    args: Tuple[Arg, ...]
    dst: Optional[Reg] = None
    retty: Optional[Ty] = None
    dirty: bool = False
    guard: Optional[Reg] = None

    def regs_read(self):
        rs = tuple(a for a in self.args if isinstance(a, Reg))
        if self.guard is not None:
            rs += (self.guard,)
        return rs

    def regs_written(self):
        return (self.dst,) if self.dst is not None else ()

    def __str__(self) -> str:
        kind = "calld" if self.dirty else "callc"
        args = ", ".join(str(a) for a in self.args)
        pre = f"{self.dst} = " if self.dst is not None else ""
        g = f" if {self.guard}" if self.guard is not None else ""
        return f"{pre}{kind}{g} {self.helper}({args})"


@dataclass(frozen=True)
class SIDEEXIT(HInsn):
    """If cond != 0: TS.pc = dst; return to the dispatcher with *jk*.

    ``icnt`` is the number of guest instructions (IMarks) completed when
    this exit is taken — it lets the dispatcher keep an *exact* guest
    instruction count even on side exits.
    """

    cond: Reg
    dst: int
    jk: str  # JumpKind value
    icnt: int = 0

    def regs_read(self):
        return (self.cond,)

    def __str__(self) -> str:
        return f"exit-if {self.cond} -> {self.dst:#x} {{{self.jk}}} [{self.icnt}]"


@dataclass(frozen=True)
class SIDEEXITR(HInsn):
    """If cond != 0: TS.pc = src (register); return to the dispatcher.

    The register-target twin of SIDEEXIT, used by trace seams whose
    recorded successor is a computed target (Ret / indirect Call /
    computed Boring): when the run-time target differs from the recorded
    one, the trace bails out to wherever the guest actually went.
    """

    cond: Reg
    src: Reg
    jk: str  # JumpKind value
    icnt: int = 0

    def regs_read(self):
        return (self.cond, self.src)

    def __str__(self) -> str:
        return f"exit-if {self.cond} -> {self.src} {{{self.jk}}} [{self.icnt}]"


@dataclass(frozen=True)
class TRACEMARK(HInsn):
    """Record that member block *index* of the containing trace started.

    A trace-progress no-op: the executor stores *index* into the host
    CPU's ``trace_blocks`` so the dispatcher can account completed blocks
    exactly when a trace faults or side-exits early.
    """

    index: int

    def __str__(self) -> str:
        return f"tracemark {self.index}"


@dataclass(frozen=True)
class SETPCI(HInsn):
    """TS.pc = immediate."""

    dst: int

    def __str__(self) -> str:
        return f"setpc {self.dst:#x}"


@dataclass(frozen=True)
class SETPCR(HInsn):
    """TS.pc = register."""

    src: Reg

    def regs_read(self):
        return (self.src,)

    def __str__(self) -> str:
        return f"setpc {self.src}"


@dataclass(frozen=True)
class RET(HInsn):
    """Return to the dispatcher with a jump-kind code.

    ``icnt`` is the block's total guest instruction (IMark) count.
    """

    jk: str
    icnt: int = 0

    def __str__(self) -> str:
        return f"ret {{{self.jk}}} [{self.icnt}]"


# -- spill pseudo-instructions (inserted by the allocator) ---------------------


@dataclass(frozen=True)
class SPILL(HInsn):
    """Store a real register to a spill slot."""

    slot: int
    src: Reg
    ty: Ty

    def regs_read(self):
        return (self.src,)

    def __str__(self) -> str:
        return f"spill slot{self.slot}, {self.src}"


@dataclass(frozen=True)
class RELOAD(HInsn):
    """Load a real register from a spill slot."""

    dst: Reg
    slot: int
    ty: Ty

    def regs_written(self):
        return (self.dst,)

    def __str__(self) -> str:
        return f"reload {self.dst}, slot{self.slot}"


# ---------------------------------------------------------------------------
# Encoding (Phase 8 writes these bytes; the host CPU decodes them).
# ---------------------------------------------------------------------------

_OPC = {
    LI: 0x01,
    LIF: 0x02,
    MOVR: 0x03,
    BIN: 0x04,
    UN: 0x05,
    LDG: 0x06,
    STG: 0x07,
    LDM: 0x08,
    STM: 0x09,
    CSEL: 0x0A,
    CALL: 0x0B,
    SIDEEXIT: 0x0C,
    SETPCI: 0x0D,
    SETPCR: 0x0E,
    RET: 0x0F,
    SPILL: 0x10,
    RELOAD: 0x11,
    SIDEEXITR: 0x12,
    TRACEMARK: 0x13,
}
_CLS_BY_OPC = {v: k for k, v in _OPC.items()}

_JK_CODES: Dict[str, int] = {}
_JK_BY_CODE: Dict[int, str] = {}


def _jk_code(jk: str) -> int:
    if jk not in _JK_CODES:
        code = len(_JK_CODES)
        _JK_CODES[jk] = code
        _JK_BY_CODE[code] = jk
    return _JK_CODES[jk]


# Pre-register the jump kinds in a stable order.
from ..ir.stmt import JumpKind as _JK

for _k in _JK:
    _jk_code(_k.value)


class HostEncodeError(Exception):
    pass


def _enc_reg(r: Reg, out: bytearray) -> None:
    if r.virtual:
        raise HostEncodeError(f"cannot encode virtual register {r}")
    out.append((int(r.rc) << 4) | r.n)


def _dec_reg(b: int) -> Reg:
    return Reg(RC(b >> 4), b & 0x0F)


def _enc_arg(a: Arg, out: bytearray) -> None:
    if isinstance(a, Reg):
        out.append(0)
        _enc_reg(a, out)
    elif isinstance(a, Slot):
        out.append(1)
        out += a.n.to_bytes(2, "little")
        out.append(_TY_INDEX[a.ty])
    else:
        out.append(2)
        out.append(_TY_INDEX[a.ty])
        if a.ty is Ty.F64 or a.ty is Ty.F32:
            out += struct.pack("<d", a.value)
        else:
            out += (int(a.value) & ((1 << 128) - 1)).to_bytes(16, "little")


class _HelperNames:
    """Per-translation string table for helper names."""

    def __init__(self) -> None:
        self.names: List[str] = []
        self._index: Dict[str, int] = {}

    def index(self, name: str) -> int:
        if name not in self._index:
            self._index[name] = len(self.names)
            self.names.append(name)
        return self._index[name]


def encode_insns(insns: Sequence[HInsn]) -> bytes:
    """Phase 8: encode a host instruction list to bytes.

    Layout: a little header with the helper-name string table, then the
    instruction stream.
    """
    helpers = _HelperNames()
    body = bytearray()
    for insn in insns:
        body.append(_OPC[type(insn)])
        if isinstance(insn, LI):
            _enc_reg(insn.dst, body)
            body += (insn.imm & ((1 << 128) - 1)).to_bytes(16, "little")
        elif isinstance(insn, LIF):
            _enc_reg(insn.dst, body)
            body += struct.pack("<d", insn.imm)
        elif isinstance(insn, MOVR):
            _enc_reg(insn.dst, body)
            _enc_reg(insn.src, body)
        elif isinstance(insn, BIN):
            body += OP_INDEX[insn.op].to_bytes(2, "little")
            _enc_reg(insn.dst, body)
            _enc_reg(insn.src1, body)
            _enc_reg(insn.src2, body)
        elif isinstance(insn, UN):
            body += OP_INDEX[insn.op].to_bytes(2, "little")
            _enc_reg(insn.dst, body)
            _enc_reg(insn.src, body)
        elif isinstance(insn, LDG):
            body.append(_TY_INDEX[insn.ty])
            _enc_reg(insn.dst, body)
            body += insn.off.to_bytes(2, "little")
        elif isinstance(insn, STG):
            body.append(_TY_INDEX[insn.ty])
            body += insn.off.to_bytes(2, "little")
            _enc_reg(insn.src, body)
        elif isinstance(insn, LDM):
            body.append(_TY_INDEX[insn.ty])
            _enc_reg(insn.dst, body)
            _enc_reg(insn.addr, body)
        elif isinstance(insn, STM):
            body.append(_TY_INDEX[insn.ty])
            _enc_reg(insn.addr, body)
            _enc_reg(insn.src, body)
        elif isinstance(insn, CSEL):
            _enc_reg(insn.dst, body)
            _enc_reg(insn.cond, body)
            _enc_reg(insn.a, body)
            _enc_reg(insn.b, body)
        elif isinstance(insn, CALL):
            body += helpers.index(insn.helper).to_bytes(2, "little")
            flags = (1 if insn.dirty else 0) | (2 if insn.guard is not None else 0) | (
                4 if insn.dst is not None else 0
            )
            body.append(flags)
            if insn.guard is not None:
                _enc_reg(insn.guard, body)
            if insn.dst is not None:
                _enc_reg(insn.dst, body)
                body.append(_TY_INDEX[insn.retty])
            body.append(len(insn.args))
            for a in insn.args:
                _enc_arg(a, body)
        elif isinstance(insn, SIDEEXIT):
            _enc_reg(insn.cond, body)
            body += insn.dst.to_bytes(4, "little")
            body.append(_jk_code(insn.jk))
            body += insn.icnt.to_bytes(2, "little")
        elif isinstance(insn, SIDEEXITR):
            _enc_reg(insn.cond, body)
            _enc_reg(insn.src, body)
            body.append(_jk_code(insn.jk))
            body += insn.icnt.to_bytes(2, "little")
        elif isinstance(insn, TRACEMARK):
            body += insn.index.to_bytes(2, "little")
        elif isinstance(insn, SETPCI):
            body += insn.dst.to_bytes(4, "little")
        elif isinstance(insn, SETPCR):
            _enc_reg(insn.src, body)
        elif isinstance(insn, RET):
            body.append(_jk_code(insn.jk))
            body += insn.icnt.to_bytes(2, "little")
        elif isinstance(insn, SPILL):
            body += insn.slot.to_bytes(2, "little")
            _enc_reg(insn.src, body)
            body.append(_TY_INDEX[insn.ty])
        elif isinstance(insn, RELOAD):
            _enc_reg(insn.dst, body)
            body += insn.slot.to_bytes(2, "little")
            body.append(_TY_INDEX[insn.ty])
        else:  # pragma: no cover - exhaustive
            raise HostEncodeError(f"cannot encode {insn!r}")
    header = bytearray()
    header.append(len(helpers.names))
    for name in helpers.names:
        raw = name.encode()
        header.append(len(raw))
        header += raw
    return bytes(header) + bytes(body)


def decode_insns(data: bytes) -> List[HInsn]:
    """Decode an assembled translation back into an instruction list."""
    pos = 0
    nhelpers = data[pos]
    pos += 1
    names: List[str] = []
    for _ in range(nhelpers):
        ln = data[pos]
        pos += 1
        names.append(data[pos : pos + ln].decode())
        pos += ln

    def u8() -> int:
        nonlocal pos
        v = data[pos]
        pos += 1
        return v

    def u16() -> int:
        nonlocal pos
        v = int.from_bytes(data[pos : pos + 2], "little")
        pos += 2
        return v

    def u32() -> int:
        nonlocal pos
        v = int.from_bytes(data[pos : pos + 4], "little")
        pos += 4
        return v

    def reg() -> Reg:
        return _dec_reg(u8())

    def ty() -> Ty:
        return _TY_BY_INDEX[u8()]

    out: List[HInsn] = []
    while pos < len(data):
        opc = u8()
        cls = _CLS_BY_OPC.get(opc)
        if cls is LI:
            d = reg()
            imm = int.from_bytes(data[pos : pos + 16], "little")
            pos += 16
            out.append(LI(d, imm))
        elif cls is LIF:
            d = reg()
            v = struct.unpack("<d", data[pos : pos + 8])[0]
            pos += 8
            out.append(LIF(d, v))
        elif cls is MOVR:
            out.append(MOVR(reg(), reg()))
        elif cls is BIN:
            op = OP_BY_INDEX[u16()]
            out.append(BIN(op, reg(), reg(), reg()))
        elif cls is UN:
            op = OP_BY_INDEX[u16()]
            out.append(UN(op, reg(), reg()))
        elif cls is LDG:
            t = ty()
            out.append(LDG(t, reg(), u16()))
        elif cls is STG:
            t = ty()
            off = u16()
            out.append(STG(t, off, reg()))
        elif cls is LDM:
            t = ty()
            out.append(LDM(t, reg(), reg()))
        elif cls is STM:
            t = ty()
            out.append(STM(t, reg(), reg()))
        elif cls is CSEL:
            out.append(CSEL(reg(), reg(), reg(), reg()))
        elif cls is CALL:
            helper = names[u16()]
            flags = u8()
            guard = reg() if flags & 2 else None
            dst = retty = None
            if flags & 4:
                dst = reg()
                retty = ty()
            nargs = u8()
            args: List[Arg] = []
            for _ in range(nargs):
                kind = u8()
                if kind == 0:
                    args.append(reg())
                elif kind == 1:
                    n = u16()
                    args.append(Slot(n, ty()))
                else:
                    t = ty()
                    if t is Ty.F64 or t is Ty.F32:
                        v = struct.unpack("<d", data[pos : pos + 8])[0]
                        pos += 8
                    else:
                        v = int.from_bytes(data[pos : pos + 16], "little")
                        pos += 16
                    args.append(ImmArg(v, t))
            out.append(
                CALL(helper, tuple(args), dst=dst, retty=retty,
                     dirty=bool(flags & 1), guard=guard)
            )
        elif cls is SIDEEXIT:
            c = reg()
            dst = u32()
            jk = _JK_BY_CODE[u8()]
            out.append(SIDEEXIT(c, dst, jk, u16()))
        elif cls is SIDEEXITR:
            c = reg()
            src = reg()
            jk = _JK_BY_CODE[u8()]
            out.append(SIDEEXITR(c, src, jk, u16()))
        elif cls is TRACEMARK:
            out.append(TRACEMARK(u16()))
        elif cls is SETPCI:
            out.append(SETPCI(u32()))
        elif cls is SETPCR:
            out.append(SETPCR(reg()))
        elif cls is RET:
            jk = _JK_BY_CODE[u8()]
            out.append(RET(jk, u16()))
        elif cls is SPILL:
            slot = u16()
            src = reg()
            out.append(SPILL(slot, src, ty()))
        elif cls is RELOAD:
            d = reg()
            slot = u16()
            out.append(RELOAD(d, slot, ty()))
        else:
            raise HostEncodeError(f"bad host opcode {opc:#x} at {pos - 1}")
    return out


def fmt_insns(insns: Sequence[HInsn]) -> str:
    """Pretty-print a host instruction list (Figure 3 style)."""
    return "\n".join(f"  {i}" for i in insns)
