"""Partial evaluation of the vx32 condition-code helper calls.

Section 3.7 (Phase 2): "It is also possible to pass in callback functions
that can partially evaluate certain platform-specific C helper calls.  On
x86 and AMD64 this is used to optimise the %eflags handling."

This module is that callback for vx32.  After constant propagation, a
conditional branch compiled from ``cmp; jcc`` looks like::

    t = vx32g_calculate_condition(<cond>, <CC_OP_SUB>, dep1, dep2, ndep)

with the first two arguments constant — so the call can be rewritten into
one or two inline comparison operations, removing both the call overhead
and the opaque-to-tools helper.
"""

from __future__ import annotations

from typing import Optional, Sequence

#: Frontend/specialisation version, part of the persistent code cache's
#: context key (core.codecache): bump on any change to disassembly or
#: the partial-evaluation rules that alters translation output.
SPEC_VERSION = 1

from ..guest import regs as R
from ..ir.expr import Binop, Const, Expr, Unop, c32
from ..ir.types import Ty
from . import helpers as H


def _bool32(e: Expr) -> Expr:
    """Widen an I1 expression to the helper's I32 0/1 result type."""
    return Unop("1Uto32", e)


def _flag_test(dep1: Expr, mask: int, invert: bool) -> Expr:
    cmp = "CmpEQ32" if invert else "CmpNE32"
    return _bool32(Binop(cmp, Binop("And32", dep1, c32(mask)), c32(0)))


def _spec_condition(args: Sequence[Expr]) -> Optional[Expr]:
    cond_e, op_e, dep1, dep2, _ndep = args
    if not isinstance(cond_e, Const) or not isinstance(op_e, Const):
        return None
    cond = cond_e.value
    cc_op = op_e.value
    inv = bool(cond & 1)
    base = cond & ~1

    def pick(pos: Expr, neg: Expr) -> Expr:
        return neg if inv else pos

    if cc_op == R.CC_OP_SUB:
        table = {
            R.COND_Z: ("CmpEQ32", "CmpNE32", dep1, dep2),
            R.COND_B: ("CmpLT32U", None, dep1, dep2),
            R.COND_BE: ("CmpLE32U", None, dep1, dep2),
            R.COND_L: ("CmpLT32S", None, dep1, dep2),
            R.COND_LE: ("CmpLE32S", None, dep1, dep2),
        }
        if base in table:
            pos_op, neg_op, a, b = table[base]
            if not inv:
                return _bool32(Binop(pos_op, a, b))
            if neg_op is not None:
                return _bool32(Binop(neg_op, a, b))
            # !(a < b)  ==  b <= a ; !(a <= b)  ==  b < a
            flipped = {"CmpLT32U": "CmpLE32U", "CmpLE32U": "CmpLT32U",
                       "CmpLT32S": "CmpLE32S", "CmpLE32S": "CmpLT32S"}[pos_op]
            return _bool32(Binop(flipped, b, a))
        if base == R.COND_S:
            res = Binop("Sub32", dep1, dep2)
            cmp = "CmpLE32S" if inv else "CmpLT32S"
            # S set  <=>  res < 0 signed;  !S  <=>  res >= 0  <=>  0 <= res.
            if inv:
                return _bool32(Binop("CmpLE32S", Const(Ty.I32, 0), res))
            return _bool32(Binop("CmpLT32S", res, Const(Ty.I32, 0)))
        return None  # O/NO: leave to the helper

    if cc_op == R.CC_OP_LOGIC:
        zero = Const(Ty.I32, 0)
        if base == R.COND_Z:
            return _bool32(Binop("CmpNE32" if inv else "CmpEQ32", dep1, zero))
        if base == R.COND_S:
            if inv:
                return _bool32(Binop("CmpLE32S", zero, dep1))
            return _bool32(Binop("CmpLT32S", dep1, zero))
        if base == R.COND_B or base == R.COND_O:  # C and O are always clear
            return c32(1 if inv else 0)
        if base == R.COND_BE:  # C|Z == Z
            return _bool32(Binop("CmpNE32" if inv else "CmpEQ32", dep1, zero))
        if base == R.COND_L:  # S != O == S
            if inv:
                return _bool32(Binop("CmpLE32S", zero, dep1))
            return _bool32(Binop("CmpLT32S", dep1, zero))
        if base == R.COND_LE:  # Z | S  ==  dep1 <= 0 signed
            if inv:
                return _bool32(Binop("CmpLT32S", zero, dep1))
            return _bool32(Binop("CmpLE32S", dep1, zero))
        return None

    if cc_op == R.CC_OP_ADD:
        res = Binop("Add32", dep1, dep2)
        if base == R.COND_Z:
            return _bool32(Binop("CmpNE32" if inv else "CmpEQ32", res, c32(0)))
        if base == R.COND_B:  # carry out  <=>  res < dep1 (unsigned)
            if inv:
                return _bool32(Binop("CmpLE32U", dep1, res))
            return _bool32(Binop("CmpLT32U", res, dep1))
        if base == R.COND_S:
            if inv:
                return _bool32(Binop("CmpLE32S", Const(Ty.I32, 0), res))
            return _bool32(Binop("CmpLT32S", res, Const(Ty.I32, 0)))
        return None

    if cc_op == R.CC_OP_COPY:
        masks = {
            R.COND_Z: R.FLAG_Z,
            R.COND_B: R.FLAG_C,
            R.COND_S: R.FLAG_S,
            R.COND_O: R.FLAG_O,
        }
        if base in masks:
            return _flag_test(dep1, masks[base], inv)
        if base == R.COND_BE:  # C | Z
            return _flag_test(dep1, R.FLAG_C | R.FLAG_Z, inv)
        return None

    return None


def vx32_spec_helper(callee: str, args: Sequence[Expr]) -> Optional[Expr]:
    """The opt1 spec callback: rewrite a CCall into inline IR, or None."""
    if callee == H.CALC_COND:
        return _spec_condition(args)
    if callee == H.CALC_FLAGS:
        # With a constant CC_OP == COPY the flags are just dep1's low bits.
        op_e = args[0]
        if isinstance(op_e, Const) and op_e.value == R.CC_OP_COPY:
            return Binop("And32", args[1], c32(R.FLAG_C | R.FLAG_Z | R.FLAG_S | R.FLAG_O))
        return None
    return None
