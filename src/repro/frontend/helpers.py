"""Architecture-specific helper functions referenced by generated IR.

These are the vx32 equivalents of Valgrind's ``x86g_*`` guest helpers:

* ``vx32g_calculate_flags`` / ``vx32g_calculate_condition`` — *clean*
  (pure) helpers that materialise condition codes from the lazy thunk.
  Section 3.6's point that "knowing precisely the operation and operands
  most recently used to set the condition codes is helpful for some tools"
  falls out of this design: the thunk is ordinary guest state.
* ``vx32g_dirtyhelper_machid`` / ``vx32g_dirtyhelper_cycles`` — *dirty*
  helpers that emulate the unusual instructions (our ``cpuid``/``rdtsc``)
  rather than representing them in IR; their register footprints are
  carried as Dirty-statement annotations so tools still see their effects.
"""

from __future__ import annotations

from ..guest.regs import (
    OFFSET_CC_DEP1,
    OFFSET_CC_DEP2,
    OFFSET_CC_NDEP,
    OFFSET_CC_OP,
    calculate_flags,
    evaluate_cond,
    gpr_offset,
)
from ..guest.refcpu import MACHID_VALUES
from ..ir.helpers import HelperRegistry
from ..ir.types import Ty

CALC_FLAGS = "vx32g_calculate_flags"
CALC_COND = "vx32g_calculate_condition"
MACHID = "vx32g_dirtyhelper_machid"
CYCLES = "vx32g_dirtyhelper_cycles"

#: (offset, size) pairs naming the thunk fields a condition-code CCall
#: reads, attached to the CCall so instrumenters can see through it.
THUNK_READS = (
    (OFFSET_CC_OP, 4),
    (OFFSET_CC_DEP1, 4),
    (OFFSET_CC_DEP2, 4),
    (OFFSET_CC_NDEP, 4),
)


def _calc_flags(cc_op: int, dep1: int, dep2: int, ndep: int) -> int:
    return calculate_flags(cc_op, dep1, dep2, ndep)


def _calc_condition(cond: int, cc_op: int, dep1: int, dep2: int, ndep: int) -> int:
    return evaluate_cond(cond, calculate_flags(cc_op, dep1, dep2, ndep))


def _machid(env) -> int:
    """Emulate the `machid` instruction: write IDs to r0..r3."""
    for i, v in enumerate(MACHID_VALUES):
        env.state.put(gpr_offset(i), Ty.I32, v)
    return 0


def _cycles(env) -> int:
    """Emulate the `cycles` instruction: return the executed-insn count."""
    return env.guest_insns() & 0xFFFFFFFF


def register_frontend_helpers(registry: HelperRegistry) -> None:
    """Install the vx32 guest helpers into *registry* (idempotent)."""
    if CALC_FLAGS in registry:
        return
    registry.register_pure(CALC_FLAGS, _calc_flags)
    registry.register_pure(CALC_COND, _calc_condition)
    registry.register_dirty(MACHID, _machid)
    registry.register_dirty(CYCLES, _cycles)
