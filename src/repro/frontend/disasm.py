"""Phase 1: disassembly — vx32 machine code → (unoptimised) tree IR.

Each guest instruction is disassembled independently into one or more IR
statements that fully update the affected guest registers in the
ThreadState (Figure 1 of the paper).  Guest registers are pulled from the
ThreadState with GET, operated on in temporaries/expression trees, and
written back with PUT; condition codes are written as the four-value lazy
thunk; the program counter is updated at each instruction boundary (the
optimiser removes the redundant ones).

Superblock formation follows Section 3.7's policy: follow instructions
until (a) an instruction limit (~50) is reached, (b) a conditional branch
is hit, (c) a branch to an unknown target is hit, or (d) more than three
unconditional branches to known targets have been followed.

The instruction semantics here MUST mirror :mod:`repro.guest.refcpu`; the
differential test suite enforces this.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..guest.encoding import DecodeError, decode
from ..guest.isa import Imm, Insn, Mem, Reg
from ..guest.regs import (
    CC_OP_ADD,
    CC_OP_COPY,
    CC_OP_LOGIC,
    CC_OP_MUL,
    CC_OP_SHL,
    CC_OP_SHR,
    CC_OP_SUB,
    FLAG_C,
    FLAG_O,
    FLAG_Z,
    OFFSET_CC_DEP1,
    OFFSET_CC_DEP2,
    OFFSET_CC_NDEP,
    OFFSET_CC_OP,
    OFFSET_IP_AT_SYSCALL,
    OFFSET_PC,
    SP,
    freg_offset,
    gpr_offset,
    vreg_offset,
)
from ..ir.block import IRSB
from ..ir.expr import (
    Binop,
    CCall,
    Const,
    Expr,
    Get,
    ITE,
    Load,
    RdTmp,
    Unop,
    c8,
    c32,
    const,
)
from ..ir.stmt import Dirty, Exit, IMark, JumpKind, Put, StateFx, Store
from ..ir.types import Ty
from . import helpers as H

#: Section 3.7: "an instruction limit is reached (about 50)".
MAX_BLOCK_INSNS = 50
#: Section 3.7: "more than three unconditional branches to known targets".
MAX_CHASES = 3
#: Longest encodable vx32 instruction.
MAX_INSN_LEN = 11


class TranslationFault(Exception):
    """Raised when the first instruction of a block cannot even be fetched."""

    def __init__(self, addr: int, reason: str):
        super().__init__(f"cannot translate at {addr:#x}: {reason}")
        self.addr = addr
        self.reason = reason


class Disassembler:
    """Converts guest code into tree-IR superblocks."""

    def __init__(
        self,
        fetch: Callable[[int, int], bytes],
        chase_ok: Optional[Callable[[int], bool]] = None,
    ):
        """*fetch(addr, n)* returns up to *n* executable bytes at *addr*,
        raising on an unexecutable first byte.  *chase_ok(addr)* can veto
        following an unconditional branch into *addr* (used so function
        redirection is never bypassed by branch chasing)."""
        self._fetch = fetch
        self._chase_ok = chase_ok

    # -- block formation -------------------------------------------------------

    def disasm_block(
        self,
        addr: int,
        *,
        max_insns: int = MAX_BLOCK_INSNS,
        max_chases: int = MAX_CHASES,
    ) -> IRSB:
        sb = IRSB(guest_addr=addr)
        ctx = _Ctx(sb)
        cur = addr
        n_insns = 0
        n_chases = 0
        while True:
            try:
                raw = self._fetch(cur, MAX_INSN_LEN)
                insn = decode(raw, 0, cur)
            except (DecodeError, Exception) as exc:
                if n_insns == 0:
                    if isinstance(exc, DecodeError):
                        # An undecodable first instruction: emit a block
                        # that reports SIGILL when run.
                        sb.add(IMark(cur, 1))
                        sb.next = c32(cur)
                        sb.jumpkind = JumpKind.NoDecode
                        return sb
                    raise TranslationFault(cur, str(exc)) from exc
                # Mid-block trouble: stop early; re-dispatch at `cur` will
                # fault precisely.
                sb.next = c32(cur)
                sb.jumpkind = JumpKind.Boring
                return sb

            sb.add(IMark(cur, insn.length))
            if n_insns > 0:
                # The PC is correct on block entry; later instructions must
                # keep the ThreadState's PC up to date (Figure 1, stmt 5).
                sb.add(Put(OFFSET_PC, c32(cur)))
            n_insns += 1
            nxt = cur + insn.length

            emit = _EMITTERS[insn.mnemonic]
            outcome = emit(ctx, insn, cur, nxt)

            if outcome is None:
                cur = nxt
                if n_insns >= max_insns:
                    sb.next = c32(cur)
                    sb.jumpkind = JumpKind.Boring
                    return sb
                continue
            kind, value = outcome
            if kind == "chase":
                if (
                    n_chases < max_chases
                    and n_insns < max_insns
                    and (self._chase_ok is None or self._chase_ok(value))
                ):
                    n_chases += 1
                    cur = value
                    continue
                sb.next = c32(value)
                sb.jumpkind = JumpKind.Boring
                return sb
            if kind == "done":
                return sb
            raise AssertionError(outcome)  # pragma: no cover


class _Ctx:
    """Per-block emission context with small IR-building conveniences."""

    def __init__(self, sb: IRSB):
        self.sb = sb

    def tmp(self, e: Expr) -> RdTmp:
        return self.sb.assign_new(e)

    def put(self, offset: int, e: Expr) -> None:
        self.sb.add(Put(offset, e))

    def store(self, addr: Expr, data: Expr) -> None:
        self.sb.add(Store(addr, data))

    def get_reg(self, i: int) -> Get:
        return Get(gpr_offset(i), Ty.I32)

    def put_reg(self, i: int, e: Expr) -> None:
        self.put(gpr_offset(i), e)

    def set_thunk(self, op: Expr, dep1: Expr, dep2: Expr, ndep: Expr) -> None:
        self.put(OFFSET_CC_OP, op)
        self.put(OFFSET_CC_DEP1, dep1)
        self.put(OFFSET_CC_DEP2, dep2)
        self.put(OFFSET_CC_NDEP, ndep)

    def ea(self, m: Mem) -> Expr:
        """Effective address of a memory operand, as an expression tree."""
        terms: List[Expr] = []
        if m.base is not None:
            terms.append(self.get_reg(m.base))
        if m.index is not None:
            idx: Expr = self.get_reg(m.index)
            if m.scale > 1:
                idx = Binop("Shl32", idx, c8(m.scale.bit_length() - 1))
            terms.append(idx)
        if m.disp != 0 or not terms:
            terms.append(c32(m.disp))
        e = terms[0]
        for t in terms[1:]:
            e = Binop("Add32", e, t)
        return e

    def condition(self, cc: int) -> RdTmp:
        """Materialise condition *cc* from the thunk as an I32 0/1 tmp."""
        call = CCall(
            Ty.I32,
            H.CALC_COND,
            (
                c32(cc),
                Get(OFFSET_CC_OP, Ty.I32),
                Get(OFFSET_CC_DEP1, Ty.I32),
                Get(OFFSET_CC_DEP2, Ty.I32),
                Get(OFFSET_CC_NDEP, Ty.I32),
            ),
            regparms_read=H.THUNK_READS,
        )
        return self.tmp(call)


# ---------------------------------------------------------------------------
# Per-instruction emitters.  Each returns None (fall through), ("chase", t)
# for a followable unconditional branch, or ("done", None) when the block
# has been terminated (ctx.sb.next/jumpkind set).
# ---------------------------------------------------------------------------

_EMITTERS: Dict[str, Callable] = {}


def _emit(*names: str):
    def deco(fn):
        for n in names:
            _EMITTERS[n] = fn
        return fn

    return deco


def _end(ctx: _Ctx, nxt: Expr, jk: JumpKind):
    ctx.sb.next = nxt
    ctx.sb.jumpkind = jk
    return ("done", None)


# -- misc ---------------------------------------------------------------------


@_emit("nop")
def _nop(ctx, insn, cur, nxt):
    return None


@_emit("halt")
def _halt(ctx, insn, cur, nxt):
    return _end(ctx, c32(nxt), JumpKind.Exit)


@_emit("syscall")
def _syscall(ctx, insn, cur, nxt):
    ctx.put(OFFSET_IP_AT_SYSCALL, c32(cur))
    return _end(ctx, c32(nxt), JumpKind.Syscall)


@_emit("lcall")
def _lcall(ctx, insn, cur, nxt):
    ctx.put(OFFSET_IP_AT_SYSCALL, c32(cur))
    return _end(ctx, c32(nxt), JumpKind.LCall)


@_emit("clreq")
def _clreq(ctx, insn, cur, nxt):
    ctx.put(OFFSET_IP_AT_SYSCALL, c32(cur))
    return _end(ctx, c32(nxt), JumpKind.ClientReq)


@_emit("machid")
def _machid(ctx, insn, cur, nxt):
    fx = tuple(StateFx(True, gpr_offset(i), 4) for i in range(4))
    ctx.sb.add(Dirty(H.MACHID, (), state_fx=fx))
    return None


@_emit("cycles")
def _cycles(ctx, insn, cur, nxt):
    t = ctx.sb.new_tmp(Ty.I32)
    ctx.sb.add(
        Dirty(
            H.CYCLES,
            (),
            tmp=t,
            retty=Ty.I32,
            state_fx=(StateFx(True, gpr_offset(0), 4),),
        )
    )
    ctx.put_reg(0, RdTmp(t))
    return None


# -- data movement ---------------------------------------------------------------


@_emit("mov")
def _mov(ctx, insn, cur, nxt):
    rd, rs = insn.operands[0].index, insn.operands[1].index
    ctx.put_reg(rd, ctx.get_reg(rs))
    return None


@_emit("movi")
def _movi(ctx, insn, cur, nxt):
    ctx.put_reg(insn.operands[0].index, c32(insn.operands[1].value))
    return None


@_emit("xchg")
def _xchg(ctx, insn, cur, nxt):
    rd, rs = insn.operands[0].index, insn.operands[1].index
    t1 = ctx.tmp(ctx.get_reg(rd))
    t2 = ctx.tmp(ctx.get_reg(rs))
    ctx.put_reg(rd, t2)
    ctx.put_reg(rs, t1)
    return None


@_emit("ld")
def _ld(ctx, insn, cur, nxt):
    t = ctx.tmp(ctx.ea(insn.operands[1]))
    ctx.put_reg(insn.operands[0].index, Load(Ty.I32, t))
    return None


def _mk_narrow_load(ldty: Ty, widen: str):
    def emit(ctx, insn, cur, nxt):
        t = ctx.tmp(ctx.ea(insn.operands[1]))
        ctx.put_reg(insn.operands[0].index, Unop(widen, Load(ldty, t)))
        return None

    return emit


_EMITTERS["ldb"] = _mk_narrow_load(Ty.I8, "8Uto32")
_EMITTERS["ldbs"] = _mk_narrow_load(Ty.I8, "8Sto32")
_EMITTERS["ldw"] = _mk_narrow_load(Ty.I16, "16Uto32")
_EMITTERS["ldws"] = _mk_narrow_load(Ty.I16, "16Sto32")


@_emit("st")
def _st(ctx, insn, cur, nxt):
    ctx.store(ctx.ea(insn.operands[0]), ctx.get_reg(insn.operands[1].index))
    return None


def _mk_narrow_store(narrow: str):
    def emit(ctx, insn, cur, nxt):
        ctx.store(
            ctx.ea(insn.operands[0]),
            Unop(narrow, ctx.get_reg(insn.operands[1].index)),
        )
        return None

    return emit


_EMITTERS["stb"] = _mk_narrow_store("32to8")
_EMITTERS["stw"] = _mk_narrow_store("32to16")


@_emit("sti")
def _sti(ctx, insn, cur, nxt):
    ctx.store(ctx.ea(insn.operands[0]), c32(insn.operands[1].value))
    return None


@_emit("lea")
def _lea(ctx, insn, cur, nxt):
    ctx.put_reg(insn.operands[0].index, ctx.ea(insn.operands[1]))
    return None


@_emit("sxb")
def _sxb(ctx, insn, cur, nxt):
    rd = insn.operands[0].index
    ctx.put_reg(rd, Unop("8Sto32", Unop("32to8", ctx.get_reg(rd))))
    return None


@_emit("sxw")
def _sxw(ctx, insn, cur, nxt):
    rd = insn.operands[0].index
    ctx.put_reg(rd, Unop("16Sto32", Unop("32to16", ctx.get_reg(rd))))
    return None


# -- flag-setting ALU ----------------------------------------------------------------
# Thunk conventions are shared with refcpu — see the comment there.


def _src_operand(ctx: _Ctx, op) -> Expr:
    if isinstance(op, Reg):
        return ctx.get_reg(op.index)
    if isinstance(op, Imm):
        return c32(op.value)
    assert isinstance(op, Mem)
    return Load(Ty.I32, ctx.tmp(ctx.ea(op)))


def _mk_alu(kind: str):
    def emit(ctx, insn, cur, nxt):
        rd = insn.operands[0].index
        ta = ctx.tmp(ctx.get_reg(rd))
        tb = ctx.tmp(_src_operand(ctx, insn.operands[1]))
        if kind in ("add", "sub", "mul"):
            irop = {"add": "Add32", "sub": "Sub32", "mul": "Mul32"}[kind]
            cc = {"add": CC_OP_ADD, "sub": CC_OP_SUB, "mul": CC_OP_MUL}[kind]
            tres = ctx.tmp(Binop(irop, ta, tb))
            ctx.set_thunk(c32(cc), ta, tb, c32(0))
            ctx.put_reg(rd, tres)
        elif kind == "cmp":
            ctx.set_thunk(c32(CC_OP_SUB), ta, tb, c32(0))
        elif kind == "test":
            tres = ctx.tmp(Binop("And32", ta, tb))
            ctx.set_thunk(c32(CC_OP_LOGIC), tres, c32(0), c32(0))
        else:  # and/or/xor
            irop = {"and": "And32", "or": "Or32", "xor": "Xor32"}[kind]
            tres = ctx.tmp(Binop(irop, ta, tb))
            ctx.set_thunk(c32(CC_OP_LOGIC), tres, c32(0), c32(0))
            ctx.put_reg(rd, tres)
        return None

    return emit


for _k in ("add", "sub", "and", "or", "xor", "cmp", "test", "mul"):
    _EMITTERS[_k] = _mk_alu(_k)
    _EMITTERS[_k + "i"] = _mk_alu(_k)
for _k in ("add", "sub", "and", "or", "xor", "cmp"):
    _EMITTERS[_k + "m_"] = _mk_alu(_k)


@_emit("addm", "subm")
def _alu_mem_dest(ctx, insn, cur, nxt):
    is_add = insn.mnemonic == "addm"
    taddr = ctx.tmp(ctx.ea(insn.operands[0]))
    ta = ctx.tmp(Load(Ty.I32, taddr))
    tb = ctx.tmp(ctx.get_reg(insn.operands[1].index))
    tres = ctx.tmp(Binop("Add32" if is_add else "Sub32", ta, tb))
    ctx.store(taddr, tres)
    ctx.set_thunk(c32(CC_OP_ADD if is_add else CC_OP_SUB), ta, tb, c32(0))
    return None


@_emit("divu", "divs", "modu", "mods")
def _divmod(ctx, insn, cur, nxt):
    rd = insn.operands[0].index
    tb = ctx.tmp(ctx.get_reg(insn.operands[1].index))
    tz = ctx.tmp(Binop("CmpEQ32", tb, c32(0)))
    ctx.sb.add(Exit(tz, cur, JumpKind.SigFPE))
    irop = {"divu": "DivU32", "divs": "DivS32", "modu": "ModU32", "mods": "ModS32"}[
        insn.mnemonic
    ]
    ctx.put_reg(rd, Binop(irop, ctx.get_reg(rd), tb))
    return None


@_emit("mulhu", "mulhs")
def _mulh(ctx, insn, cur, nxt):
    rd, rs = insn.operands[0].index, insn.operands[1].index
    mul = "MullS32" if insn.mnemonic == "mulhs" else "MullU32"
    ctx.put_reg(
        rd, Unop("64HIto32", Binop(mul, ctx.get_reg(rd), ctx.get_reg(rs)))
    )
    return None


# -- shifts and unary -----------------------------------------------------------------


def _shift_parts(ctx: _Ctx, mnem_base: str, ta: Expr, n8: Expr):
    """Result and last-bit-out expressions for a shift by *n8* (> 0)."""
    if mnem_base == "shl":
        res = Binop("Shl32", ta, n8)
        last = Binop(
            "And32", Binop("Shr32", ta, Binop("Sub8", c8(32), n8)), c32(1)
        )
        return res, last, CC_OP_SHL
    if mnem_base == "shr":
        res = Binop("Shr32", ta, n8)
        last = Binop(
            "And32", Binop("Shr32", ta, Binop("Sub8", n8, c8(1))), c32(1)
        )
        return res, last, CC_OP_SHR
    assert mnem_base == "sar"
    res = Binop("Sar32", ta, n8)
    last = Binop("And32", Binop("Sar32", ta, Binop("Sub8", n8, c8(1))), c32(1))
    return res, last, CC_OP_SHR


@_emit("shli", "shri", "sari")
def _shift_imm(ctx, insn, cur, nxt):
    rd = insn.operands[0].index
    n = insn.operands[1].value & 0xFF
    if n == 0:
        return None
    base = insn.mnemonic[:-1]
    ta = ctx.tmp(ctx.get_reg(rd))
    res, last, cc = _shift_parts(ctx, base, ta, c8(n))
    tres = ctx.tmp(res)
    tlast = ctx.tmp(last)
    ctx.set_thunk(c32(cc), tres, tlast, c32(0))
    ctx.put_reg(rd, tres)
    return None


@_emit("shl", "shr", "sar")
def _shift_reg(ctx, insn, cur, nxt):
    rd = insn.operands[0].index
    rs = insn.operands[1].index
    tn8 = ctx.tmp(Unop("32to8", ctx.get_reg(rs)))
    tnz = ctx.tmp(Binop("CmpNE8", tn8, c8(0)))
    ta = ctx.tmp(ctx.get_reg(rd))
    res, last, cc = _shift_parts(ctx, insn.mnemonic, ta, tn8)
    tres = ctx.tmp(res)
    tlast = ctx.tmp(last)
    # A zero count leaves the value and the flags thunk untouched.
    ctx.put_reg(rd, ITE(tnz, tres, ta))
    ctx.put(OFFSET_CC_OP, ITE(tnz, c32(cc), Get(OFFSET_CC_OP, Ty.I32)))
    ctx.put(OFFSET_CC_DEP1, ITE(tnz, tres, Get(OFFSET_CC_DEP1, Ty.I32)))
    ctx.put(OFFSET_CC_DEP2, ITE(tnz, tlast, Get(OFFSET_CC_DEP2, Ty.I32)))
    ctx.put(OFFSET_CC_NDEP, ITE(tnz, c32(0), Get(OFFSET_CC_NDEP, Ty.I32)))
    return None


@_emit("roli", "rori")
def _rotate(ctx, insn, cur, nxt):
    rd = insn.operands[0].index
    n = insn.operands[1].value & 0xFF
    if n == 0:
        return None
    irop = "Rol32" if insn.mnemonic == "roli" else "Ror32"
    ta = ctx.tmp(ctx.get_reg(rd))
    tres = ctx.tmp(Binop(irop, ta, c8(n)))
    ctx.set_thunk(c32(CC_OP_LOGIC), tres, c32(0), c32(0))
    ctx.put_reg(rd, tres)
    return None


@_emit("inc", "dec")
def _incdec(ctx, insn, cur, nxt):
    rd = insn.operands[0].index
    is_inc = insn.mnemonic == "inc"
    ta = ctx.tmp(ctx.get_reg(rd))
    tres = ctx.tmp(Binop("Add32" if is_inc else "Sub32", ta, c32(1)))
    ctx.set_thunk(c32(CC_OP_ADD if is_inc else CC_OP_SUB), ta, c32(1), c32(0))
    ctx.put_reg(rd, tres)
    return None


@_emit("neg")
def _neg(ctx, insn, cur, nxt):
    rd = insn.operands[0].index
    ta = ctx.tmp(ctx.get_reg(rd))
    tres = ctx.tmp(Binop("Sub32", c32(0), ta))
    ctx.set_thunk(c32(CC_OP_SUB), c32(0), ta, c32(0))
    ctx.put_reg(rd, tres)
    return None


@_emit("not")
def _not(ctx, insn, cur, nxt):
    rd = insn.operands[0].index
    ctx.put_reg(rd, Unop("Not32", ctx.get_reg(rd)))
    return None


# -- stack and control flow --------------------------------------------------------------


def _push_value(ctx: _Ctx, value: Expr) -> None:
    tval = ctx.tmp(value)
    tsp = ctx.tmp(Binop("Sub32", Get(gpr_offset(SP), Ty.I32), c32(4)))
    ctx.put(gpr_offset(SP), tsp)
    ctx.store(tsp, tval)


@_emit("push")
def _push(ctx, insn, cur, nxt):
    _push_value(ctx, ctx.get_reg(insn.operands[0].index))
    return None


@_emit("pushi")
def _pushi(ctx, insn, cur, nxt):
    _push_value(ctx, c32(insn.operands[0].value))
    return None


@_emit("pop")
def _pop(ctx, insn, cur, nxt):
    rd = insn.operands[0].index
    tsp = ctx.tmp(Get(gpr_offset(SP), Ty.I32))
    tval = ctx.tmp(Load(Ty.I32, tsp))
    ctx.put_reg(rd, tval)
    ctx.put(gpr_offset(SP), Binop("Add32", tsp, c32(4)))
    return None


@_emit("call")
def _call(ctx, insn, cur, nxt):
    _push_value(ctx, c32(nxt))
    return _end(ctx, c32(insn.operands[0].value), JumpKind.Call)


@_emit("callr")
def _callr(ctx, insn, cur, nxt):
    ttarget = ctx.tmp(ctx.get_reg(insn.operands[0].index))
    _push_value(ctx, c32(nxt))
    return _end(ctx, ttarget, JumpKind.Call)


@_emit("ret")
def _ret(ctx, insn, cur, nxt):
    tsp = ctx.tmp(Get(gpr_offset(SP), Ty.I32))
    tra = ctx.tmp(Load(Ty.I32, tsp))
    ctx.put(gpr_offset(SP), Binop("Add32", tsp, c32(4)))
    return _end(ctx, tra, JumpKind.Ret)


@_emit("jmp")
def _jmp(ctx, insn, cur, nxt):
    return ("chase", insn.operands[0].value)


@_emit("jmpr")
def _jmpr(ctx, insn, cur, nxt):
    t = ctx.tmp(ctx.get_reg(insn.operands[0].index))
    return _end(ctx, t, JumpKind.Boring)


@_emit("jcc")
def _jcc(ctx, insn, cur, nxt):
    cc = insn.operands[0].code
    target = insn.operands[1].value
    tcond = ctx.condition(cc)
    tg = ctx.tmp(Unop("CmpNEZ32", tcond))
    ctx.sb.add(Exit(tg, target, JumpKind.Boring))
    return _end(ctx, c32(nxt), JumpKind.Boring)


@_emit("setcc")
def _setcc(ctx, insn, cur, nxt):
    rd = insn.operands[0].index
    cc = insn.operands[1].code
    ctx.put_reg(rd, ctx.condition(cc))
    return None


# -- floating point --------------------------------------------------------------------


def _fget(i: int) -> Get:
    return Get(freg_offset(i), Ty.F64)


_F_UNOPS = {"fneg": "NegF64", "fabs": "AbsF64", "fsqrt": "SqrtF64"}
_F_BINOPS = {
    "fadd": "AddF64",
    "fsub": "SubF64",
    "fmul": "MulF64",
    "fdiv": "DivF64",
    "fmin": "MinF64",
    "fmax": "MaxF64",
}


@_emit("fmov")
def _fmov(ctx, insn, cur, nxt):
    ctx.put(freg_offset(insn.operands[0].index), _fget(insn.operands[1].index))
    return None


@_emit(*_F_UNOPS)
def _funop(ctx, insn, cur, nxt):
    fd, fs = insn.operands[0].index, insn.operands[1].index
    ctx.put(freg_offset(fd), Unop(_F_UNOPS[insn.mnemonic], _fget(fs)))
    return None


@_emit(*_F_BINOPS)
def _fbinop(ctx, insn, cur, nxt):
    fd, fs = insn.operands[0].index, insn.operands[1].index
    ctx.put(
        freg_offset(fd), Binop(_F_BINOPS[insn.mnemonic], _fget(fd), _fget(fs))
    )
    return None


@_emit("fcmp")
def _fcmp(ctx, insn, cur, nxt):
    fd, fs = insn.operands[0].index, insn.operands[1].index
    tr = ctx.tmp(Binop("CmpF64", _fget(fd), _fget(fs)))
    # Map the CmpF64 result onto our flags: UN->C|Z|O, EQ->Z, LT->C, GT->0.
    from ..ir.ops import F64CMP_EQ, F64CMP_LT, F64CMP_UN

    flags = ITE(
        Binop("CmpEQ32", tr, c32(F64CMP_UN)),
        c32(FLAG_C | FLAG_Z | FLAG_O),
        ITE(
            Binop("CmpEQ32", tr, c32(F64CMP_EQ)),
            c32(FLAG_Z),
            ITE(Binop("CmpEQ32", tr, c32(F64CMP_LT)), c32(FLAG_C), c32(0)),
        ),
    )
    tflags = ctx.tmp(flags)
    ctx.set_thunk(c32(CC_OP_COPY), tflags, c32(0), c32(0))
    return None


@_emit("fld")
def _fld(ctx, insn, cur, nxt):
    t = ctx.tmp(ctx.ea(insn.operands[1]))
    ctx.put(freg_offset(insn.operands[0].index), Load(Ty.F64, t))
    return None


@_emit("fst")
def _fst(ctx, insn, cur, nxt):
    ctx.store(ctx.ea(insn.operands[0]), _fget(insn.operands[1].index))
    return None


@_emit("flds")
def _flds(ctx, insn, cur, nxt):
    t = ctx.tmp(ctx.ea(insn.operands[1]))
    ctx.put(
        freg_offset(insn.operands[0].index), Unop("F32toF64", Load(Ty.F32, t))
    )
    return None


@_emit("fsts")
def _fsts(ctx, insn, cur, nxt):
    ctx.store(
        ctx.ea(insn.operands[0]),
        Unop("F64toF32", _fget(insn.operands[1].index)),
    )
    return None


@_emit("fcvti")
def _fcvti(ctx, insn, cur, nxt):
    ctx.put_reg(
        insn.operands[0].index, Unop("F64toI32S", _fget(insn.operands[1].index))
    )
    return None


@_emit("ficvt")
def _ficvt(ctx, insn, cur, nxt):
    ctx.put(
        freg_offset(insn.operands[0].index),
        Unop("I32StoF64", ctx.get_reg(insn.operands[1].index)),
    )
    return None


@_emit("fldi")
def _fldi(ctx, insn, cur, nxt):
    v = insn.operands[1].value & 0xFFFFFFFF
    value = float(v - (1 << 32)) if v & 0x80000000 else float(v)
    ctx.put(freg_offset(insn.operands[0].index), const(Ty.F64, value))
    return None


# -- SIMD ------------------------------------------------------------------------------

from ..guest.refcpu import _V_BINOPS  # single source of mnemonic -> IR op


def _vget(i: int) -> Get:
    return Get(vreg_offset(i), Ty.V128)


@_emit("vmov")
def _vmov(ctx, insn, cur, nxt):
    ctx.put(vreg_offset(insn.operands[0].index), _vget(insn.operands[1].index))
    return None


@_emit(*_V_BINOPS)
def _vbinop(ctx, insn, cur, nxt):
    vd, vs = insn.operands[0].index, insn.operands[1].index
    ctx.put(
        vreg_offset(vd), Binop(_V_BINOPS[insn.mnemonic], _vget(vd), _vget(vs))
    )
    return None


@_emit("vld")
def _vld(ctx, insn, cur, nxt):
    t = ctx.tmp(ctx.ea(insn.operands[1]))
    ctx.put(vreg_offset(insn.operands[0].index), Load(Ty.V128, t))
    return None


@_emit("vst")
def _vst(ctx, insn, cur, nxt):
    ctx.store(ctx.ea(insn.operands[0]), _vget(insn.operands[1].index))
    return None


@_emit("vshlw", "vshrw")
def _vshift(ctx, insn, cur, nxt):
    vd = insn.operands[0].index
    n = insn.operands[1].value & 0xFF
    irop = "ShlN16x8" if insn.mnemonic == "vshlw" else "ShrN16x8"
    ctx.put(vreg_offset(vd), Binop(irop, _vget(vd), c8(n)))
    return None


@_emit("vsplatb")
def _vsplatb(ctx, insn, cur, nxt):
    vd = insn.operands[0].index
    rs = insn.operands[1].index
    ctx.put(
        vreg_offset(vd), Unop("Dup8x16", Unop("32to8", ctx.get_reg(rs)))
    )
    return None
