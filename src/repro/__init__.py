"""repro-valgrind: a reproduction of "Valgrind: A Framework for
Heavyweight Dynamic Binary Instrumentation" (Nethercote & Seward,
PLDI 2007) as a pure-Python system.

The package implements the paper's entire architecture over a synthetic
guest machine (see DESIGN.md for the substitution rationale):

* :mod:`repro.guest` — the vx32 guest ISA: assembler, encoder, reference CPU
* :mod:`repro.ir` — the D&R intermediate representation
* :mod:`repro.frontend` / :mod:`repro.opt` / :mod:`repro.backend` — the
  eight-phase JIT pipeline
* :mod:`repro.core` — the framework core: dispatcher, scheduler, events,
  syscall wrappers, signals, SMC handling, errors
* :mod:`repro.kernel` / :mod:`repro.libc` — the simulated OS and guest libc
* :mod:`repro.tools` — Nulgrind, ICnt*, Memcheck, Cachegrind, Massif,
  TaintCheck, Tracegrind
* :mod:`repro.baseline` — a copy-and-annotate framework (the Pin stand-in)
* :mod:`repro.workloads` — the 25 SPEC-shaped benchmark programs

Quickstart::

    from repro import assemble, build_source, run_native, run_tool

    image = assemble(build_source(MY_ASM), filename="demo")
    print(run_native(image).stdout)            # bare-machine run
    result = run_tool("memcheck", image)       # run under Memcheck
    for error in result.errors:
        print(error.format())
"""

from .core.options import Options, parse_argv
from .core.supervisor import (
    FleetSupervisor,
    JobResult,
    JobSpec,
    RetryPolicy,
    WatchdogConfig,
    replay_bundle,
    run_job,
)
from .core.tool import Tool
from .core.valgrind import Valgrind, VgResult, run_tool
from .guest.asm import assemble
from .guest.program import VxImage
from .libc.stubs import build_source
from .native import NativeResult, run_native
from .tools import available_tools, create_tool

__version__ = "1.0.0"

__all__ = [
    "Options",
    "parse_argv",
    "FleetSupervisor",
    "JobResult",
    "JobSpec",
    "RetryPolicy",
    "WatchdogConfig",
    "replay_bundle",
    "run_job",
    "Tool",
    "Valgrind",
    "VgResult",
    "run_tool",
    "assemble",
    "VxImage",
    "build_source",
    "NativeResult",
    "run_native",
    "available_tools",
    "create_tool",
    "__version__",
]
