"""repro-valgrind: a reproduction of "Valgrind: A Framework for
Heavyweight Dynamic Binary Instrumentation" (Nethercote & Seward,
PLDI 2007) as a pure-Python system.

The package implements the paper's entire architecture over a synthetic
guest machine (see DESIGN.md for the substitution rationale):

* :mod:`repro.guest` — the vx32 guest ISA: assembler, encoder, reference CPU
* :mod:`repro.ir` — the D&R intermediate representation
* :mod:`repro.frontend` / :mod:`repro.opt` / :mod:`repro.backend` — the
  eight-phase JIT pipeline
* :mod:`repro.core` — the framework core: dispatcher, scheduler, events,
  syscall wrappers, signals, SMC handling, errors
* :mod:`repro.kernel` / :mod:`repro.libc` — the simulated OS and guest libc
* :mod:`repro.tools` — Nulgrind, ICnt*, Memcheck, Cachegrind, Massif,
  TaintCheck, Tracegrind
* :mod:`repro.baseline` — a copy-and-annotate framework (the Pin stand-in)
* :mod:`repro.workloads` — the 25 SPEC-shaped benchmark programs

Quickstart (the stable embedding surface is :mod:`repro.api`)::

    from repro import api

    result = api.run("prog.s", tool="memcheck")      # one classified job
    report = api.run_fleet(["a.s", "b.s"], tool="memcheck",
                           cache_dir="/tmp/codecache")
    api.replay("bundles/job0003-a2.bundle.json")     # crash forensics
    cache = api.open_cache("/tmp/codecache")         # inspect/share it

Lower-level pieces (assembler, cores, tools) remain importable::

    from repro import assemble, build_source, run_native, run_tool

    image = assemble(build_source(MY_ASM), filename="demo")
    print(run_native(image).stdout)            # bare-machine run
    result = run_tool("memcheck", image)       # run under Memcheck
    for error in result.errors:
        print(error.format())
"""

from . import api
from .api import (
    BadOption,
    FleetReport,
    FleetSupervisor,
    JobResult,
    JobSpec,
    Options,
    RetryPolicy,
    WatchdogConfig,
    load_image,
    open_cache,
    parse_argv,
    replay,
    replay_bundle,
    run,
    run_fleet,
    run_job,
)
from .core.tool import Tool
from .core.valgrind import Valgrind, VgResult, run_tool
from .guest.asm import assemble
from .guest.program import VxImage
from .libc.stubs import build_source
from .native import NativeResult, run_native
from .tools import available_tools, create_tool

__version__ = "1.1.0"

__all__ = [
    "api",
    "run",
    "run_fleet",
    "replay",
    "open_cache",
    "FleetReport",
    "Options",
    "BadOption",
    "parse_argv",
    "load_image",
    "FleetSupervisor",
    "JobResult",
    "JobSpec",
    "RetryPolicy",
    "WatchdogConfig",
    "replay_bundle",
    "run_job",
    "Tool",
    "Valgrind",
    "VgResult",
    "run_tool",
    "assemble",
    "VxImage",
    "build_source",
    "NativeResult",
    "run_native",
    "available_tools",
    "create_tool",
    "__version__",
]
