"""The program loader (Section 3.3).

Unlike most DBI frameworks, which inject themselves into a normally-
started process, Valgrind has *its own program loader*: the core loads
the client executable (or the interpreter, for scripts), sets up its
stack and data segment, and only then starts translating from the first
instruction — which is what gives the framework complete control from
instruction one and 100% coverage.

This module is that loader for VxImages.  It reports every mapping it
creates through an ``announce`` callback so the core can fire
``new_mem_startup`` (R5); the native runner passes a no-op.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..kernel.kernel import Kernel
from ..kernel.memory import PAGE_SIZE, PROT_RW, PROT_RWX, prot_from_str
from ..libc.hostlib import SCRATCH_ADDR, SCRATCH_SIZE
from .program import VxImage

#: Default top of the initial client stack.
DEFAULT_STACK_TOP = 0xBFFF_0000

#: The signal-return trampoline page (see repro.kernel.sigframe).
SIGPAGE_ADDR = 0x0000_F000

#: Where additional thread stacks are carved from.
THREAD_STACK_REGION = 0xB100_0000


@dataclass
class LoadedProgram:
    """Everything the execution engine needs to start the client."""

    image: VxImage
    entry: int
    initial_sp: int
    stack_base: int   # lowest mapped stack address
    stack_top: int
    argv: List[str] = field(default_factory=list)
    #: Images loaded (main image, plus interpreter for scripts).
    images: List[VxImage] = field(default_factory=list)

    def symbol(self, name: str) -> int:
        for img in self.images:
            if name in img.symbols:
                return img.symbols[name]
        raise KeyError(f"symbol {name!r} not found")

    def symbol_at(self, addr: int):
        best = None
        for img in self.images:
            hit = img.symbol_at(addr)
            if hit and (best is None or hit[1] < best[1]):
                best = hit
        return best

    def line_at(self, addr: int):
        for img in self.images:
            li = img.line_at(addr)
            if li is not None:
                return li
        return None


Announce = Callable[[int, int, bool, bool, bool], None]


def _no_announce(addr: int, size: int, r: bool, w: bool, x: bool) -> None:
    pass


def load_program(
    image: VxImage,
    kernel: Kernel,
    argv: Optional[List[str]] = None,
    *,
    stack_size: int = 1024 * 1024,
    stack_top: int = DEFAULT_STACK_TOP,
    announce: Announce = None,
    resolve_image: Optional[Callable[[str], VxImage]] = None,
) -> LoadedProgram:
    """Load *image* (and its interpreter, if it is a script) into the
    kernel's memory, build the initial stack, and return the start state.
    """
    announce = announce or _no_announce
    mem = kernel.memory
    argv = list(argv if argv is not None else [image.name])
    images: List[VxImage] = []

    # Scripts: load the interpreter instead, passing the script as argv[0].
    if image.interpreter is not None:
        if resolve_image is None:
            raise ValueError(
                f"{image.name} is a script needing {image.interpreter!r}, "
                "but no resolve_image callback was given"
            )
        interp = resolve_image(image.interpreter)
        argv = [interp.name, image.name] + argv[1:]
        images.append(image)  # keep for symbol lookup (data files etc.)
        image = interp

    images.insert(0, image)

    # Map the text and data segments.
    top_of_data = 0
    for seg in image.segments:
        base = seg.addr & ~(PAGE_SIZE - 1)
        end = (seg.end + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
        prot = prot_from_str(seg.perms)
        mem.map(base, end - base, prot)
        mem.write_raw(seg.addr, seg.data)
        announce(base, end - base, "r" in seg.perms, "w" in seg.perms,
                 "x" in seg.perms)
        top_of_data = max(top_of_data, end)

    # The data segment's end is where the brk heap begins.
    kernel.set_brk_base(top_of_data)

    # The host-libc scratch page (treated as startup-initialised memory).
    mem.map(SCRATCH_ADDR, SCRATCH_SIZE, PROT_RW)
    announce(SCRATCH_ADDR, SCRATCH_SIZE, True, True, False)

    # The signal trampoline page.
    from ..kernel.sigframe import install_sigpage

    install_sigpage(mem, SIGPAGE_ADDR)
    announce(SIGPAGE_ADDR, PAGE_SIZE, True, False, True)

    # The initial stack.  Executable, as on pre-NX systems: GCC-style
    # nested-function trampolines live there (the paper's main source of
    # self-modifying code, Section 3.16).
    stack_base = stack_top - stack_size
    mem.map(stack_base, stack_size, PROT_RWX)
    announce(stack_base, stack_size, True, True, True)

    # Write argv strings and the argv array at the very top of the stack.
    sp = stack_top
    arg_addrs: List[int] = []
    for a in argv:
        raw = a.encode() + b"\0"
        sp -= len(raw)
        mem.write_raw(sp, raw)
        arg_addrs.append(sp)
    sp &= ~7  # align
    # argv array (NULL terminated).
    sp -= 4 * (len(argv) + 1)
    argv_array = sp
    for i, addr in enumerate(arg_addrs):
        mem.store32(argv_array + 4 * i, addr)
    mem.store32(argv_array + 4 * len(argv), 0)
    # [sp] = argc, [sp+4] = argv.
    sp -= 8
    mem.store32(sp, len(argv))
    mem.store32(sp + 4, argv_array)

    return LoadedProgram(
        image=image,
        entry=image.entry,
        initial_sp=sp,
        stack_base=stack_base,
        stack_top=stack_top,
        argv=argv,
        images=images,
    )
