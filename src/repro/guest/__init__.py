"""The vx32 synthetic guest architecture.

This package defines everything about the *guest* machine the framework
instruments: its register model and ThreadState layout (:mod:`regs`), its
instruction set (:mod:`isa`), the byte encoding (:mod:`encoding`), a
two-pass assembler (:mod:`asm`), the executable image format
(:mod:`program`), and a fast reference CPU used both as the "native
execution" baseline and as the testing oracle (:mod:`refcpu`).
"""

from .asm import AsmError, Assembler, assemble
from .encoding import DecodeError, decode, encode, insn_length
from .isa import Cond, FReg, Imm, Insn, InsnDef, Mem, OpKind, Reg, VReg, insn_def
from .program import LineInfo, Segment, VxImage
from . import regs

__all__ = [
    "AsmError",
    "Assembler",
    "assemble",
    "DecodeError",
    "decode",
    "encode",
    "insn_length",
    "Cond",
    "FReg",
    "Imm",
    "Insn",
    "InsnDef",
    "Mem",
    "OpKind",
    "Reg",
    "VReg",
    "insn_def",
    "LineInfo",
    "Segment",
    "VxImage",
    "regs",
]
