"""vx32 guest register model and ThreadState layout.

The ThreadState is a per-thread block of memory holding all guest and
shadow registers between code blocks (Section 3.4 of the paper).  The
layout deliberately mirrors the offsets visible in the paper's figures:

* integer register *i* lives at byte offset ``4*i`` (so ``r3`` is at 12,
  just as ``%ebx`` is at 12 in Figure 1),
* the four condition-code thunk values live at 32, 36, 40 and 44
  (Figure 1's "eflags val1..val4"),
* the program counter lives at 60 (Figure 1's ``%eip``),
* the *shadow* of the register at offset X lives at X + 320 (Figure 2's
  ``sh(%eax)`` at 320 and ``sh(%ebx)`` at 332).
"""

from __future__ import annotations

from ..ir.types import Ty

# -- integer registers -------------------------------------------------------

NUM_GPRS = 8

#: Canonical GPR names.  r4 is the stack pointer and r5 the frame pointer by
#: software convention (the hardware only distinguishes r4, which push/pop,
#: call and ret use implicitly).
GPR_NAMES = ("r0", "r1", "r2", "r3", "sp", "fp", "r6", "r7")

#: Aliases accepted by the assembler.
GPR_ALIASES = {name: i for i, name in enumerate(GPR_NAMES)}
GPR_ALIASES["r4"] = 4
GPR_ALIASES["r5"] = 5

SP = 4
FP = 5

NUM_FREGS = 8
FREG_NAMES = tuple(f"f{i}" for i in range(NUM_FREGS))

NUM_VREGS = 8
VREG_NAMES = tuple(f"v{i}" for i in range(NUM_VREGS))

# -- ThreadState offsets -----------------------------------------------------


def gpr_offset(i: int) -> int:
    """ThreadState offset of integer register *i*."""
    if not 0 <= i < NUM_GPRS:
        raise ValueError(f"bad GPR index {i}")
    return 4 * i


OFFSET_CC_OP = 32
OFFSET_CC_DEP1 = 36
OFFSET_CC_DEP2 = 40
OFFSET_CC_NDEP = 44
#: Emulation-note slot (unused flag bits, emulation warnings).
OFFSET_EMNOTE = 48
#: Address of the instruction that raised the current syscall/trap.
OFFSET_IP_AT_SYSCALL = 52
#: Scratch slot used by client requests.
OFFSET_CLREQ_ARGS = 56
OFFSET_PC = 60


def freg_offset(i: int) -> int:
    """ThreadState offset of F64 register *i*."""
    if not 0 <= i < NUM_FREGS:
        raise ValueError(f"bad FP register index {i}")
    return 64 + 8 * i


def vreg_offset(i: int) -> int:
    """ThreadState offset of V128 register *i*."""
    if not 0 <= i < NUM_VREGS:
        raise ValueError(f"bad SIMD register index {i}")
    return 128 + 16 * i


#: First byte past the architected guest state.
GUEST_STATE_SIZE = 320

#: Shadow state: shadow of guest offset X is at X + SHADOW_OFFSET.
SHADOW_OFFSET = 320

#: Total ThreadState size: guest state plus one full shadow of it.
THREADSTATE_SIZE = GUEST_STATE_SIZE + SHADOW_OFFSET

#: The JIT back-end spills host registers into a per-thread area just past
#: the shadow state (16-byte slots, so V128 values spill too).
SPILL_AREA_BASE = THREADSTATE_SIZE
SPILL_SLOT_SIZE = 16
NUM_SPILL_SLOTS = 512
SPILL_AREA_SIZE = SPILL_SLOT_SIZE * NUM_SPILL_SLOTS

#: Frame area the generated call sequences save caller-saved registers to.
CALL_SAVE_BASE = THREADSTATE_SIZE + SPILL_AREA_SIZE
CALL_SAVE_SIZE = 128

#: Full size of a ThreadState allocation, including spill and call-save areas.
TOTAL_STATE_SIZE = THREADSTATE_SIZE + SPILL_AREA_SIZE + CALL_SAVE_SIZE


def shadow(offset: int) -> int:
    """Shadow-state offset for the guest-state byte offset *offset*."""
    if not 0 <= offset < GUEST_STATE_SIZE:
        raise ValueError(f"offset {offset} outside guest state")
    return offset + SHADOW_OFFSET


def is_shadow(offset: int) -> bool:
    return SHADOW_OFFSET <= offset < THREADSTATE_SIZE


#: ThreadState offsets (offset, size, name) of all architected registers,
#: used by tools and by the differential-testing harness.
def architected_slots():
    slots = [(gpr_offset(i), 4, GPR_NAMES[i]) for i in range(NUM_GPRS)]
    slots.append((OFFSET_PC, 4, "pc"))
    slots += [(freg_offset(i), 8, FREG_NAMES[i]) for i in range(NUM_FREGS)]
    slots += [(vreg_offset(i), 16, VREG_NAMES[i]) for i in range(NUM_VREGS)]
    return slots


# -- condition-code thunk ----------------------------------------------------

# The thunk describes how to (re)compute the flags from the most recent
# flag-setting operation: CC_OP says which operation, CC_DEP1/CC_DEP2 its
# operands (or its result, for LOGIC), CC_NDEP any extra state.  Flags are
# only materialised when a conditional branch or setcc needs them.

CC_OP_COPY = 0   # DEP1 holds the flags themselves
CC_OP_ADD = 1    # DEP1 + DEP2
CC_OP_SUB = 2    # DEP1 - DEP2
CC_OP_LOGIC = 3  # DEP1 is the result; C=O=0
CC_OP_SHL = 4    # DEP1 result, DEP2 last bit shifted out
CC_OP_SHR = 5    # DEP1 result, DEP2 last bit shifted out
CC_OP_INC = 6    # DEP1 result; C preserved in NDEP
CC_OP_DEC = 7    # DEP1 result; C preserved in NDEP
CC_OP_MUL = 8    # DEP1, DEP2 operands; C=O=(full result != widened result)

CC_OP_NAMES = {
    CC_OP_COPY: "COPY",
    CC_OP_ADD: "ADD",
    CC_OP_SUB: "SUB",
    CC_OP_LOGIC: "LOGIC",
    CC_OP_SHL: "SHL",
    CC_OP_SHR: "SHR",
    CC_OP_INC: "INC",
    CC_OP_DEC: "DEC",
    CC_OP_MUL: "MUL",
}

# Flag bits within a materialised flags word.
FLAG_C = 0x1
FLAG_Z = 0x2
FLAG_S = 0x4
FLAG_O = 0x8

# Condition codes for jcc/setcc, in pairs (cond, negation = cond ^ 1).
COND_Z = 0x0    # equal / zero
COND_NZ = 0x1
COND_B = 0x2    # below (unsigned <)
COND_NB = 0x3
COND_BE = 0x4   # below or equal (unsigned <=)
COND_NBE = 0x5
COND_S = 0x6    # negative
COND_NS = 0x7
COND_L = 0x8    # less (signed <)
COND_NL = 0x9
COND_LE = 0xA   # less or equal (signed <=)
COND_NLE = 0xB
COND_O = 0xC    # overflow
COND_NO = 0xD

COND_NAMES = {
    COND_Z: "z",
    COND_NZ: "nz",
    COND_B: "b",
    COND_NB: "nb",
    COND_BE: "be",
    COND_NBE: "nbe",
    COND_S: "s",
    COND_NS: "ns",
    COND_L: "l",
    COND_NL: "nl",
    COND_LE: "le",
    COND_NLE: "nle",
    COND_O: "o",
    COND_NO: "no",
}

#: Suffixes accepted in assembly for conditional instructions, with synonyms.
COND_BY_NAME = {name: code for code, name in COND_NAMES.items()}
COND_BY_NAME.update(
    {
        "e": COND_Z,
        "ne": COND_NZ,
        "lt": COND_L,
        "ge": COND_NL,
        "le": COND_LE,
        "gt": COND_NLE,
        "ltu": COND_B,
        "geu": COND_NB,
        "leu": COND_BE,
        "gtu": COND_NBE,
    }
)


def calculate_flags(cc_op: int, dep1: int, dep2: int, ndep: int) -> int:
    """Materialise the C/Z/S/O flags word from a condition-code thunk.

    This is the reference semantics; the disassembler exposes it to IR as
    the clean helper ``vx32g_calculate_flags`` and the optimiser knows how
    to partially evaluate it (Section 3.7, Phase 2).
    """
    M32 = 0xFFFFFFFF
    TOP = 0x80000000
    if cc_op == CC_OP_COPY:
        return dep1 & (FLAG_C | FLAG_Z | FLAG_S | FLAG_O)
    if cc_op == CC_OP_ADD:
        res = (dep1 + dep2) & M32
        c = int(res < dep1)
        o = int(bool((~(dep1 ^ dep2)) & (dep1 ^ res) & TOP))
    elif cc_op == CC_OP_SUB:
        res = (dep1 - dep2) & M32
        c = int(dep1 < dep2)
        o = int(bool((dep1 ^ dep2) & (dep1 ^ res) & TOP))
    elif cc_op == CC_OP_LOGIC:
        res = dep1 & M32
        c = 0
        o = 0
    elif cc_op in (CC_OP_SHL, CC_OP_SHR):
        res = dep1 & M32
        c = dep2 & 1
        o = 0
    elif cc_op == CC_OP_INC:
        res = dep1 & M32
        c = ndep & FLAG_C
        o = int(res == TOP)
    elif cc_op == CC_OP_DEC:
        res = dep1 & M32
        c = ndep & FLAG_C
        o = int(res == TOP - 1)
    elif cc_op == CC_OP_MUL:
        full = dep1 * dep2
        res = full & M32
        c = o = int(full != res)
    else:
        raise ValueError(f"bad CC_OP {cc_op}")
    flags = 0
    if c:
        flags |= FLAG_C
    if res == 0:
        flags |= FLAG_Z
    if res & TOP:
        flags |= FLAG_S
    if o:
        flags |= FLAG_O
    return flags


def evaluate_cond(cond: int, flags: int) -> int:
    """Evaluate condition code *cond* against a materialised flags word."""
    c = bool(flags & FLAG_C)
    z = bool(flags & FLAG_Z)
    s = bool(flags & FLAG_S)
    o = bool(flags & FLAG_O)
    base = cond & ~1
    if base == COND_Z:
        r = z
    elif base == COND_B:
        r = c
    elif base == COND_BE:
        r = c or z
    elif base == COND_S:
        r = s
    elif base == COND_L:
        r = s != o
    elif base == COND_LE:
        r = z or (s != o)
    elif base == COND_O:
        r = o
    else:
        raise ValueError(f"bad condition {cond}")
    if cond & 1:
        r = not r
    return int(r)
