"""The vx32 executable image format (``VxImage``).

A VxImage is the loader's input: named segments with permissions, a symbol
table, optional per-address source line info (the "debug information" the
core's error-reporting machinery reads), and an entry point.  It plays the
role ELF executables play for real Valgrind.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class Segment:
    """A contiguous run of initialised guest memory."""

    name: str
    addr: int
    data: bytes
    perms: str  # subset of "rwx"

    @property
    def end(self) -> int:
        return self.addr + len(self.data)

    def __repr__(self) -> str:
        return f"<Segment {self.name} {self.addr:#x}..{self.end:#x} {self.perms}>"


@dataclass
class LineInfo:
    """Maps a guest address to a source file and line."""

    addr: int
    filename: str
    line: int


@dataclass
class VxImage:
    """A loadable vx32 executable (or script — see ``interpreter``)."""

    segments: List[Segment] = field(default_factory=list)
    symbols: Dict[str, int] = field(default_factory=dict)
    entry: int = 0
    #: Per-instruction source locations, sorted by address.
    lines: List[LineInfo] = field(default_factory=list)
    #: Name of the image, for error messages.
    name: str = "a.out"
    #: If set, this "executable" is a script: the loader should instead load
    #: the named interpreter image and pass this image's name to it.
    interpreter: Optional[str] = None

    def add_segment(self, seg: Segment) -> None:
        for other in self.segments:
            if seg.addr < other.end and other.addr < seg.end:
                raise ValueError(f"segment overlap: {seg!r} vs {other!r}")
        self.segments.append(seg)
        self.segments.sort(key=lambda s: s.addr)

    def symbol(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise KeyError(f"symbol {name!r} not defined in {self.name}") from None

    def symbol_at(self, addr: int) -> Optional[Tuple[str, int]]:
        """Find the (name, offset) of the symbol containing *addr*, if any."""
        best: Optional[Tuple[str, int]] = None
        for name, saddr in self.symbols.items():
            if saddr <= addr and (best is None or saddr > best[1]):
                best = (name, saddr)
        if best is None:
            return None
        return best[0], addr - best[1]

    def line_at(self, addr: int) -> Optional[LineInfo]:
        """Find the source line info for *addr*, if recorded."""
        if not self.lines:
            return None
        addrs = [li.addr for li in self.lines]
        i = bisect.bisect_right(addrs, addr) - 1
        if i < 0:
            return None
        return self.lines[i]

    @property
    def text_segment(self) -> Segment:
        for seg in self.segments:
            if "x" in seg.perms:
                return seg
        raise ValueError(f"{self.name} has no executable segment")
