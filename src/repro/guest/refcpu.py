"""The vx32 reference CPU.

A direct interpreter for vx32 machine code.  It plays two roles:

* it is the **"native execution"** baseline for all performance
  experiments — slow-down factors in the Table 2 reproduction are measured
  against it, the way the paper measures against real hardware; and
* it is the **semantic oracle** for the translation pipeline — differential
  tests run the same program on this CPU and through the full
  disassemble→instrument→optimise→JIT→host-emulate path and require the
  architected state to match.

For speed, each decoded instruction is compiled once into a Python closure
and cached by address; the dispatch loop then just calls closures.  The
condition-code state is kept in the same lazy-thunk form the translated
code uses (CC_OP/CC_DEP1/CC_DEP2/CC_NDEP), so ThreadState comparisons in
differential tests can compare the thunk words directly.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional

from ..kernel.memory import GuestMemory
from .encoding import DecodeError, decode
from .isa import Cond, FReg, Imm, Insn, Mem, Reg, VReg
from .regs import (
    CC_OP_ADD,
    CC_OP_COPY,
    CC_OP_LOGIC,
    CC_OP_MUL,
    CC_OP_SHL,
    CC_OP_SHR,
    CC_OP_SUB,
    FLAG_C,
    FLAG_O,
    FLAG_Z,
    SP,
    calculate_flags,
    evaluate_cond,
)

M32 = 0xFFFFFFFF
M64 = 0xFFFFFFFFFFFFFFFF
M128 = (1 << 128) - 1

#: The values our `machid` (cpuid analogue) instruction reports.
MACHID_VALUES = (
    0x32335856,  # "VX32"
    0x00010002,  # version
    0x0000BEEF,
    0x00000000,
)


class TrapKind(enum.Enum):
    """Why the CPU stopped running."""

    HALT = "halt"
    SYSCALL = "syscall"
    LCALL = "lcall"
    CLREQ = "clreq"
    BUDGET = "budget"       # max_insns reached
    YIELD = "yield"


class CPUError(Exception):
    """An architectural error (bad instruction, division by zero)."""

    def __init__(self, message: str, pc: int):
        super().__init__(f"{message} at pc={pc:#x}")
        self.pc = pc


class RefCPU:
    """A directly-interpreting vx32 CPU over a :class:`GuestMemory`."""

    def __init__(self, memory: GuestMemory):
        self.mem = memory
        self.regs: List[int] = [0] * 8
        self.fregs: List[float] = [0.0] * 8
        self.vregs: List[int] = [0] * 8
        self.pc = 0
        self.cc_op = CC_OP_COPY
        self.cc_dep1 = 0
        self.cc_dep2 = 0
        self.cc_ndep = 0
        self.insn_count = 0
        #: Operand of the most recent lcall trap.
        self.trap_arg = 0
        # Decoded-and-compiled instruction cache: addr -> (fn, length).
        self._icache: Dict[int, tuple] = {}
        # Icache coherence: writes into pages holding cached instructions
        # flush those entries, as a hardware snooping icache would.
        memory.code_write_hooks.append(self._on_code_write)

    def _on_code_write(self, addr: int, size: int) -> None:
        start = (addr & ~0xFFF) - 16
        end = addr + size
        for a in [a for a in self._icache if start <= a < end]:
            del self._icache[a]

    # -- flags -----------------------------------------------------------------

    def flags(self) -> int:
        """Materialise the current C/Z/S/O flags word."""
        return calculate_flags(self.cc_op, self.cc_dep1, self.cc_dep2, self.cc_ndep)

    def cond(self, cc: int) -> int:
        return evaluate_cond(cc, self.flags())

    def set_flags_thunk(self, op: int, dep1: int, dep2: int, ndep: int = 0) -> None:
        self.cc_op = op
        self.cc_dep1 = dep1 & M32
        self.cc_dep2 = dep2 & M32
        self.cc_ndep = ndep & M32

    # -- cache management --------------------------------------------------------

    def flush_icache(self, addr: Optional[int] = None, size: Optional[int] = None) -> None:
        """Discard compiled instructions (all, or an address range)."""
        if addr is None:
            self._icache.clear()
            return
        end = addr + (size or 1)
        for a in [a for a in self._icache if addr - 16 < a < end]:
            del self._icache[a]

    # -- execution -----------------------------------------------------------------

    def run(self, max_insns: Optional[int] = None) -> TrapKind:
        """Run until a trap occurs or *max_insns* have executed."""
        icache = self._icache
        budget = max_insns if max_insns is not None else float("inf")
        executed = 0
        count = self.insn_count
        while executed < budget:
            entry = icache.get(self.pc)
            if entry is None:
                entry = self._compile(self.pc)
                icache[self.pc] = entry
            fn = entry[0]
            executed += 1
            count += 1
            self.insn_count = count  # kept exact so `cycles` can read it
            trap = fn(self)
            if trap is not None:
                return trap
        return TrapKind.BUDGET

    def step(self) -> Optional[TrapKind]:
        """Execute exactly one instruction."""
        entry = self._icache.get(self.pc)
        if entry is None:
            entry = self._compile(self.pc)
            self._icache[self.pc] = entry
        self.insn_count += 1
        return entry[0](self)

    # -- compilation of one instruction into a closure --------------------------------

    def _compile(self, addr: int) -> tuple:
        raw = self.mem.fetch(addr, 1)
        # Longest instruction is 11 bytes; fetch conservatively.
        chunk = raw + self._fetch_rest(addr + 1, 11)
        try:
            insn = decode(chunk, 0, addr)
        except DecodeError as exc:
            raise CPUError(f"cannot decode instruction ({exc})", addr) from exc
        fn = _FACTORIES[insn.mnemonic](insn, addr + insn.length)
        # Mark the covered pages so stores into them flush the icache.
        self.mem.code_pages.add(addr >> 12)
        self.mem.code_pages.add((addr + insn.length - 1) >> 12)
        return (fn, insn.length)

    def _fetch_rest(self, addr: int, n: int) -> bytes:
        out = bytearray()
        for i in range(n):
            try:
                out += self.mem.fetch(addr + i, 1)
            except Exception:
                break
        return bytes(out)


# ---------------------------------------------------------------------------
# Closure factories, one per mnemonic.  Each takes (insn, next_pc) and
# returns a function(cpu) -> Optional[TrapKind].
# ---------------------------------------------------------------------------

_FACTORIES: Dict[str, Callable[[Insn, int], Callable]] = {}


def _factory(*names: str):
    def deco(fn):
        for name in names:
            _FACTORIES[name] = fn
        return fn

    return deco


def _ea(mem_op: Mem) -> Callable[[List[int]], int]:
    """Compile a memory operand into an effective-address closure."""
    b, x, s, d = mem_op.base, mem_op.index, mem_op.scale, mem_op.disp
    if b is not None and x is not None:
        return lambda r: (r[b] + r[x] * s + d) & M32
    if b is not None:
        return lambda r: (r[b] + d) & M32
    if x is not None:
        return lambda r: (r[x] * s + d) & M32
    return lambda r: d & M32


# -- misc -------------------------------------------------------------------


@_factory("nop")
def _nop(insn: Insn, nxt: int):
    def run(cpu):
        cpu.pc = nxt

    return run


@_factory("halt")
def _halt(insn: Insn, nxt: int):
    def run(cpu):
        cpu.pc = nxt
        return TrapKind.HALT

    return run


@_factory("syscall")
def _syscall(insn: Insn, nxt: int):
    def run(cpu):
        cpu.pc = nxt
        return TrapKind.SYSCALL

    return run


@_factory("lcall")
def _lcall(insn: Insn, nxt: int):
    idx = insn.operands[0].value

    def run(cpu):
        cpu.pc = nxt
        cpu.trap_arg = idx
        return TrapKind.LCALL

    return run


@_factory("clreq")
def _clreq(insn: Insn, nxt: int):
    def run(cpu):
        cpu.pc = nxt
        return TrapKind.CLREQ

    return run


@_factory("machid")
def _machid(insn: Insn, nxt: int):
    def run(cpu):
        cpu.regs[0], cpu.regs[1], cpu.regs[2], cpu.regs[3] = MACHID_VALUES
        cpu.pc = nxt

    return run


@_factory("cycles")
def _cycles(insn: Insn, nxt: int):
    def run(cpu):
        cpu.regs[0] = cpu.insn_count & M32
        cpu.pc = nxt

    return run


# -- data movement -------------------------------------------------------------


@_factory("mov")
def _mov(insn: Insn, nxt: int):
    rd, rs = insn.operands[0].index, insn.operands[1].index

    def run(cpu):
        cpu.regs[rd] = cpu.regs[rs]
        cpu.pc = nxt

    return run


@_factory("movi")
def _movi(insn: Insn, nxt: int):
    rd, imm = insn.operands[0].index, insn.operands[1].value & M32

    def run(cpu):
        cpu.regs[rd] = imm
        cpu.pc = nxt

    return run


@_factory("xchg")
def _xchg(insn: Insn, nxt: int):
    rd, rs = insn.operands[0].index, insn.operands[1].index

    def run(cpu):
        cpu.regs[rd], cpu.regs[rs] = cpu.regs[rs], cpu.regs[rd]
        cpu.pc = nxt

    return run


def _mk_load(size: int, signed: bool):
    def factory(insn: Insn, nxt: int):
        rd = insn.operands[0].index
        ea = _ea(insn.operands[1])

        def run(cpu):
            data = cpu.mem.read(ea(cpu.regs), size)
            v = int.from_bytes(data, "little")
            if signed and v & (1 << (size * 8 - 1)):
                v = (v - (1 << (size * 8))) & M32
            cpu.regs[rd] = v
            cpu.pc = nxt

        return run

    return factory


_FACTORIES["ld"] = _mk_load(4, False)
_FACTORIES["ldb"] = _mk_load(1, False)
_FACTORIES["ldbs"] = _mk_load(1, True)
_FACTORIES["ldw"] = _mk_load(2, False)
_FACTORIES["ldws"] = _mk_load(2, True)


def _mk_store(size: int):
    def factory(insn: Insn, nxt: int):
        ea = _ea(insn.operands[0])
        rs = insn.operands[1].index
        m = (1 << (size * 8)) - 1

        def run(cpu):
            cpu.mem.write(ea(cpu.regs), (cpu.regs[rs] & m).to_bytes(size, "little"))
            cpu.pc = nxt

        return run

    return factory


_FACTORIES["st"] = _mk_store(4)
_FACTORIES["stb"] = _mk_store(1)
_FACTORIES["stw"] = _mk_store(2)


@_factory("sti")
def _sti(insn: Insn, nxt: int):
    ea = _ea(insn.operands[0])
    data = (insn.operands[1].value & M32).to_bytes(4, "little")

    def run(cpu):
        cpu.mem.write(ea(cpu.regs), data)
        cpu.pc = nxt

    return run


@_factory("lea")
def _lea(insn: Insn, nxt: int):
    rd = insn.operands[0].index
    ea = _ea(insn.operands[1])

    def run(cpu):
        cpu.regs[rd] = ea(cpu.regs)
        cpu.pc = nxt

    return run


@_factory("sxb")
def _sxb(insn: Insn, nxt: int):
    rd = insn.operands[0].index

    def run(cpu):
        v = cpu.regs[rd] & 0xFF
        cpu.regs[rd] = (v - 0x100) & M32 if v & 0x80 else v
        cpu.pc = nxt

    return run


@_factory("sxw")
def _sxw(insn: Insn, nxt: int):
    rd = insn.operands[0].index

    def run(cpu):
        v = cpu.regs[rd] & 0xFFFF
        cpu.regs[rd] = (v - 0x10000) & M32 if v & 0x8000 else v
        cpu.pc = nxt

    return run


# -- flag-setting ALU ------------------------------------------------------------

# Each op: (cc_op kind, result fn).  Thunk conventions (shared with the
# disassembler in repro.frontend.disasm — keep in sync!):
#   add:  (ADD, a, b)        sub/cmp: (SUB, a, b)
#   logic/test: (LOGIC, result, 0)
#   mul:  (MUL, a, b)
#   shifts by n>0: (SHL/SHR, result, last bit shifted out); n==0 keeps flags
#   inc:  (ADD, old, 1)      dec: (SUB, old, 1)
#   neg:  (SUB, 0, old)


def _mk_alu_rr(kind: str):
    def factory(insn: Insn, nxt: int):
        rd, rs = insn.operands[0].index, insn.operands[1].index
        return _alu_run(kind, rd, lambda cpu: cpu.regs[rs], nxt)

    return factory


def _mk_alu_ri(kind: str):
    def factory(insn: Insn, nxt: int):
        rd, imm = insn.operands[0].index, insn.operands[1].value & M32
        return _alu_run(kind, rd, lambda cpu: imm, nxt)

    return factory


def _mk_alu_rm(kind: str):
    def factory(insn: Insn, nxt: int):
        rd = insn.operands[0].index
        ea = _ea(insn.operands[1])
        return _alu_run(
            kind, rd, lambda cpu: int.from_bytes(cpu.mem.read(ea(cpu.regs), 4), "little"), nxt
        )

    return factory


def _alu_run(kind: str, rd: int, src: Callable, nxt: int) -> Callable:
    if kind == "add":
        def run(cpu):
            a = cpu.regs[rd]
            b = src(cpu)
            cpu.regs[rd] = (a + b) & M32
            cpu.set_flags_thunk(CC_OP_ADD, a, b)
            cpu.pc = nxt
    elif kind == "sub":
        def run(cpu):
            a = cpu.regs[rd]
            b = src(cpu)
            cpu.regs[rd] = (a - b) & M32
            cpu.set_flags_thunk(CC_OP_SUB, a, b)
            cpu.pc = nxt
    elif kind == "cmp":
        def run(cpu):
            a = cpu.regs[rd]
            b = src(cpu)
            cpu.set_flags_thunk(CC_OP_SUB, a, b)
            cpu.pc = nxt
    elif kind in ("and", "or", "xor"):
        import operator

        opf = {"and": operator.and_, "or": operator.or_, "xor": operator.xor}[kind]

        def run(cpu):
            res = opf(cpu.regs[rd], src(cpu)) & M32
            cpu.regs[rd] = res
            cpu.set_flags_thunk(CC_OP_LOGIC, res, 0)
            cpu.pc = nxt
    elif kind == "test":
        def run(cpu):
            res = (cpu.regs[rd] & src(cpu)) & M32
            cpu.set_flags_thunk(CC_OP_LOGIC, res, 0)
            cpu.pc = nxt
    elif kind == "mul":
        def run(cpu):
            a = cpu.regs[rd]
            b = src(cpu)
            cpu.regs[rd] = (a * b) & M32
            cpu.set_flags_thunk(CC_OP_MUL, a, b)
            cpu.pc = nxt
    else:  # pragma: no cover - exhaustive
        raise AssertionError(kind)
    return run


for _k in ("add", "sub", "and", "or", "xor", "cmp", "test", "mul"):
    _FACTORIES[_k] = _mk_alu_rr(_k)
    _FACTORIES[_k + "i"] = _mk_alu_ri(_k)
for _k in ("add", "sub", "and", "or", "xor", "cmp"):
    _FACTORIES[_k + "m_"] = _mk_alu_rm(_k)


@_factory("addm", "subm")
def _alu_mem_dest(insn: Insn, nxt: int):
    ea = _ea(insn.operands[0])
    rs = insn.operands[1].index
    is_add = insn.mnemonic == "addm"

    def run(cpu):
        addr = ea(cpu.regs)
        a = int.from_bytes(cpu.mem.read(addr, 4), "little")
        b = cpu.regs[rs]
        res = (a + b) & M32 if is_add else (a - b) & M32
        cpu.mem.write(addr, res.to_bytes(4, "little"))
        cpu.set_flags_thunk(CC_OP_ADD if is_add else CC_OP_SUB, a, b)
        cpu.pc = nxt

    return run


def _sdiv_trunc(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


@_factory("divu", "divs", "modu", "mods")
def _divmod(insn: Insn, nxt: int):
    rd, rs = insn.operands[0].index, insn.operands[1].index
    mnem = insn.mnemonic

    def run(cpu):
        a, b = cpu.regs[rd], cpu.regs[rs]
        if b == 0:
            raise ZeroDivisionError(f"guest division by zero at pc={cpu.pc:#x}")
        if mnem == "divu":
            r = a // b
        elif mnem == "modu":
            r = a % b
        else:
            sa = a - (1 << 32) if a & 0x80000000 else a
            sb = b - (1 << 32) if b & 0x80000000 else b
            q = _sdiv_trunc(sa, sb)
            r = q if mnem == "divs" else sa - q * sb
        cpu.regs[rd] = r & M32
        cpu.pc = nxt

    return run


@_factory("mulhu", "mulhs")
def _mulh(insn: Insn, nxt: int):
    rd, rs = insn.operands[0].index, insn.operands[1].index
    signed = insn.mnemonic == "mulhs"

    def run(cpu):
        a, b = cpu.regs[rd], cpu.regs[rs]
        if signed:
            if a & 0x80000000:
                a -= 1 << 32
            if b & 0x80000000:
                b -= 1 << 32
        cpu.regs[rd] = ((a * b) >> 32) & M32
        cpu.pc = nxt

    return run


# -- shifts and unary --------------------------------------------------------------


def _mk_shift(mnem: str, arith: bool, left: bool, rotate: bool = False):
    def factory(insn: Insn, nxt: int):
        rd = insn.operands[0].index
        op2 = insn.operands[1]
        imm = op2.value & 0xFF if isinstance(op2, Imm) else None
        rs = op2.index if isinstance(op2, Reg) else None

        def run(cpu):
            n = imm if imm is not None else (cpu.regs[rs] & 0xFF)
            a = cpu.regs[rd]
            if n == 0:
                cpu.pc = nxt
                return  # flags unchanged, value unchanged
            if rotate:
                k = n % 32
                res = ((a << k) | (a >> (32 - k))) & M32 if left else \
                      ((a >> k) | (a << (32 - k))) & M32
                cpu.regs[rd] = res
                cpu.set_flags_thunk(CC_OP_LOGIC, res, 0)
            elif left:
                res = (a << n) & M32 if n < 32 else 0
                last = (a >> (32 - n)) & 1 if n <= 32 else 0
                cpu.regs[rd] = res
                cpu.set_flags_thunk(CC_OP_SHL, res, last)
            else:
                if arith:
                    sa = a - (1 << 32) if a & 0x80000000 else a
                    res = (sa >> min(n, 31)) & M32
                else:
                    res = a >> n if n < 32 else 0
                last = (a >> (n - 1)) & 1 if n <= 32 else (
                    (a >> 31) & 1 if arith else 0
                )
                cpu.regs[rd] = res
                cpu.set_flags_thunk(CC_OP_SHR, res, last)
            cpu.pc = nxt

        return run

    return factory


_FACTORIES["shli"] = _mk_shift("shli", False, True)
_FACTORIES["shl"] = _mk_shift("shl", False, True)
_FACTORIES["shri"] = _mk_shift("shri", False, False)
_FACTORIES["shr"] = _mk_shift("shr", False, False)
_FACTORIES["sari"] = _mk_shift("sari", True, False)
_FACTORIES["sar"] = _mk_shift("sar", True, False)
_FACTORIES["roli"] = _mk_shift("roli", False, True, rotate=True)
_FACTORIES["rori"] = _mk_shift("rori", False, False, rotate=True)


@_factory("inc")
def _inc(insn: Insn, nxt: int):
    rd = insn.operands[0].index

    def run(cpu):
        a = cpu.regs[rd]
        cpu.regs[rd] = (a + 1) & M32
        cpu.set_flags_thunk(CC_OP_ADD, a, 1)
        cpu.pc = nxt

    return run


@_factory("dec")
def _dec(insn: Insn, nxt: int):
    rd = insn.operands[0].index

    def run(cpu):
        a = cpu.regs[rd]
        cpu.regs[rd] = (a - 1) & M32
        cpu.set_flags_thunk(CC_OP_SUB, a, 1)
        cpu.pc = nxt

    return run


@_factory("neg")
def _neg(insn: Insn, nxt: int):
    rd = insn.operands[0].index

    def run(cpu):
        a = cpu.regs[rd]
        cpu.regs[rd] = (-a) & M32
        cpu.set_flags_thunk(CC_OP_SUB, 0, a)
        cpu.pc = nxt

    return run


@_factory("not")
def _not(insn: Insn, nxt: int):
    rd = insn.operands[0].index

    def run(cpu):
        cpu.regs[rd] = (~cpu.regs[rd]) & M32
        cpu.pc = nxt

    return run


# -- stack and control flow ------------------------------------------------------------


@_factory("push")
def _push(insn: Insn, nxt: int):
    rs = insn.operands[0].index

    def run(cpu):
        sp = (cpu.regs[SP] - 4) & M32
        cpu.mem.write(sp, cpu.regs[rs].to_bytes(4, "little"))
        cpu.regs[SP] = sp
        cpu.pc = nxt

    return run


@_factory("pushi")
def _pushi(insn: Insn, nxt: int):
    data = (insn.operands[0].value & M32).to_bytes(4, "little")

    def run(cpu):
        sp = (cpu.regs[SP] - 4) & M32
        cpu.mem.write(sp, data)
        cpu.regs[SP] = sp
        cpu.pc = nxt

    return run


@_factory("pop")
def _pop(insn: Insn, nxt: int):
    rd = insn.operands[0].index

    def run(cpu):
        sp = cpu.regs[SP]
        cpu.regs[rd] = int.from_bytes(cpu.mem.read(sp, 4), "little")
        cpu.regs[SP] = (sp + 4) & M32
        cpu.pc = nxt

    return run


@_factory("call")
def _call(insn: Insn, nxt: int):
    target = insn.operands[0].value & M32
    ret = (nxt & M32).to_bytes(4, "little")

    def run(cpu):
        sp = (cpu.regs[SP] - 4) & M32
        cpu.mem.write(sp, ret)
        cpu.regs[SP] = sp
        cpu.pc = target

    return run


@_factory("callr")
def _callr(insn: Insn, nxt: int):
    rs = insn.operands[0].index
    ret = (nxt & M32).to_bytes(4, "little")

    def run(cpu):
        sp = (cpu.regs[SP] - 4) & M32
        cpu.mem.write(sp, ret)
        cpu.regs[SP] = sp
        cpu.pc = cpu.regs[rs]

    return run


@_factory("ret")
def _ret(insn: Insn, nxt: int):
    def run(cpu):
        sp = cpu.regs[SP]
        cpu.pc = int.from_bytes(cpu.mem.read(sp, 4), "little")
        cpu.regs[SP] = (sp + 4) & M32

    return run


@_factory("jmp")
def _jmp(insn: Insn, nxt: int):
    target = insn.operands[0].value & M32

    def run(cpu):
        cpu.pc = target

    return run


@_factory("jmpr")
def _jmpr(insn: Insn, nxt: int):
    rs = insn.operands[0].index

    def run(cpu):
        cpu.pc = cpu.regs[rs]

    return run


@_factory("jcc")
def _jcc(insn: Insn, nxt: int):
    cc = insn.operands[0].code
    target = insn.operands[1].value & M32

    def run(cpu):
        cpu.pc = target if cpu.cond(cc) else nxt

    return run


@_factory("setcc")
def _setcc(insn: Insn, nxt: int):
    rd = insn.operands[0].index
    cc = insn.operands[1].code

    def run(cpu):
        cpu.regs[rd] = cpu.cond(cc)
        cpu.pc = nxt

    return run


# -- floating point ------------------------------------------------------------------

import math
import struct


@_factory("fmov", "fneg", "fabs", "fsqrt")
def _funop(insn: Insn, nxt: int):
    fd, fs = insn.operands[0].index, insn.operands[1].index
    mnem = insn.mnemonic

    def run(cpu):
        v = cpu.fregs[fs]
        if mnem == "fneg":
            v = -v
        elif mnem == "fabs":
            v = abs(v)
        elif mnem == "fsqrt":
            v = math.sqrt(v) if v >= 0 else math.nan
        cpu.fregs[fd] = v
        cpu.pc = nxt

    return run


@_factory("fadd", "fsub", "fmul", "fdiv", "fmin", "fmax")
def _fbinop(insn: Insn, nxt: int):
    fd, fs = insn.operands[0].index, insn.operands[1].index
    mnem = insn.mnemonic

    def run(cpu):
        a, b = cpu.fregs[fd], cpu.fregs[fs]
        if mnem == "fadd":
            v = a + b
        elif mnem == "fsub":
            v = a - b
        elif mnem == "fmul":
            v = a * b
        elif mnem == "fmin":
            v = min(a, b)
        elif mnem == "fmax":
            v = max(a, b)
        else:  # fdiv
            if b == 0.0:
                if a == 0.0 or math.isnan(a):
                    v = math.nan
                else:
                    same = (a > 0) == (math.copysign(1.0, b) > 0)
                    v = math.inf if same else -math.inf
            else:
                v = a / b
        cpu.fregs[fd] = v
        cpu.pc = nxt

    return run


@_factory("fcmp")
def _fcmp(insn: Insn, nxt: int):
    fd, fs = insn.operands[0].index, insn.operands[1].index

    def run(cpu):
        a, b = cpu.fregs[fd], cpu.fregs[fs]
        if math.isnan(a) or math.isnan(b):
            fl = FLAG_C | FLAG_Z | FLAG_O
        elif a < b:
            fl = FLAG_C
        elif a == b:
            fl = FLAG_Z
        else:
            fl = 0
        cpu.set_flags_thunk(CC_OP_COPY, fl, 0)
        cpu.pc = nxt

    return run


@_factory("fld")
def _fld(insn: Insn, nxt: int):
    fd = insn.operands[0].index
    ea = _ea(insn.operands[1])

    def run(cpu):
        cpu.fregs[fd] = struct.unpack("<d", cpu.mem.read(ea(cpu.regs), 8))[0]
        cpu.pc = nxt

    return run


@_factory("fst")
def _fst(insn: Insn, nxt: int):
    ea = _ea(insn.operands[0])
    fs = insn.operands[1].index

    def run(cpu):
        cpu.mem.write(ea(cpu.regs), struct.pack("<d", cpu.fregs[fs]))
        cpu.pc = nxt

    return run


@_factory("flds")
def _flds(insn: Insn, nxt: int):
    fd = insn.operands[0].index
    ea = _ea(insn.operands[1])

    def run(cpu):
        cpu.fregs[fd] = struct.unpack("<f", cpu.mem.read(ea(cpu.regs), 4))[0]
        cpu.pc = nxt

    return run


@_factory("fsts")
def _fsts(insn: Insn, nxt: int):
    ea = _ea(insn.operands[0])
    fs = insn.operands[1].index

    def run(cpu):
        v = cpu.fregs[fs]
        try:
            data = struct.pack("<f", v)
        except OverflowError:
            data = struct.pack("<f", math.inf if v > 0 else -math.inf)
        cpu.mem.write(ea(cpu.regs), data)
        cpu.pc = nxt

    return run


@_factory("fcvti")
def _fcvti(insn: Insn, nxt: int):
    rd = insn.operands[0].index
    fs = insn.operands[1].index

    def run(cpu):
        v = cpu.fregs[fs]
        if math.isnan(v):
            r = 0x80000000
        elif math.isinf(v):
            r = 0x7FFFFFFF if v > 0 else 0x80000000
        else:
            r = max(-(1 << 31), min((1 << 31) - 1, math.trunc(v))) & M32
        cpu.regs[rd] = r
        cpu.pc = nxt

    return run


@_factory("ficvt")
def _ficvt(insn: Insn, nxt: int):
    fd = insn.operands[0].index
    rs = insn.operands[1].index

    def run(cpu):
        v = cpu.regs[rs]
        if v & 0x80000000:
            v -= 1 << 32
        cpu.fregs[fd] = float(v)
        cpu.pc = nxt

    return run


@_factory("fldi")
def _fldi(insn: Insn, nxt: int):
    fd = insn.operands[0].index
    v = insn.operands[1].value & M32
    value = float(v - (1 << 32)) if v & 0x80000000 else float(v)

    def run(cpu):
        cpu.fregs[fd] = value
        cpu.pc = nxt

    return run


# -- SIMD ---------------------------------------------------------------------------

from ..ir.ops import get_op as _get_ir_op

_V_BINOPS = {
    "vaddb": "Add8x16",
    "vaddw": "Add16x8",
    "vaddd": "Add32x4",
    "vsubb": "Sub8x16",
    "vsubw": "Sub16x8",
    "vsubd": "Sub32x4",
    "vand": "AndV128",
    "vor": "OrV128",
    "vxor": "XorV128",
    "vcmpeqb": "CmpEQ8x16",
    "vmaxub": "MaxU8x16",
    "vminub": "MinU8x16",
    "vavgub": "Avg8x16",
    "vmulw": "Mul16x8",
}


@_factory(*_V_BINOPS)
def _vbinop(insn: Insn, nxt: int):
    vd, vs = insn.operands[0].index, insn.operands[1].index
    fn = _get_ir_op(_V_BINOPS[insn.mnemonic]).fn

    def run(cpu):
        cpu.vregs[vd] = fn(cpu.vregs[vd], cpu.vregs[vs])
        cpu.pc = nxt

    return run


@_factory("vmov")
def _vmov(insn: Insn, nxt: int):
    vd, vs = insn.operands[0].index, insn.operands[1].index

    def run(cpu):
        cpu.vregs[vd] = cpu.vregs[vs]
        cpu.pc = nxt

    return run


@_factory("vld")
def _vld(insn: Insn, nxt: int):
    vd = insn.operands[0].index
    ea = _ea(insn.operands[1])

    def run(cpu):
        cpu.vregs[vd] = int.from_bytes(cpu.mem.read(ea(cpu.regs), 16), "little")
        cpu.pc = nxt

    return run


@_factory("vst")
def _vst(insn: Insn, nxt: int):
    ea = _ea(insn.operands[0])
    vs = insn.operands[1].index

    def run(cpu):
        cpu.mem.write(ea(cpu.regs), cpu.vregs[vs].to_bytes(16, "little"))
        cpu.pc = nxt

    return run


@_factory("vshlw", "vshrw")
def _vshift(insn: Insn, nxt: int):
    vd = insn.operands[0].index
    n = insn.operands[1].value & 0xFF
    op = _get_ir_op("ShlN16x8" if insn.mnemonic == "vshlw" else "ShrN16x8").fn

    def run(cpu):
        cpu.vregs[vd] = op(cpu.vregs[vd], n)
        cpu.pc = nxt

    return run


@_factory("vsplatb")
def _vsplatb(insn: Insn, nxt: int):
    vd = insn.operands[0].index
    rs = insn.operands[1].index
    dup = _get_ir_op("Dup8x16").fn

    def run(cpu):
        cpu.vregs[vd] = dup(cpu.regs[rs] & 0xFF)
        cpu.pc = nxt

    return run
