"""vx32 machine-code encoding and decoding.

The encoding is variable-length and deliberately CISC-flavoured:

* 1 opcode byte, then operand bytes in definition order;
* register/condition operands take 1 byte each;
* 8-bit immediates take 1 byte, 32-bit immediates and branch displacements
  take 4 little-endian bytes;
* memory operands take a mode byte (base/index presence and numbers), an
  optional scale byte, and a 4-byte displacement.

Instruction lengths therefore range from 1 byte (``nop``, ``ret``) to
11 bytes (ALU reg, [base+index*scale+disp]); a plain 32-bit load
``ld r0, [r3+disp]`` is 7 bytes, like the 7-byte ``movl`` in Figure 1.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .isa import (
    Cond,
    FReg,
    Imm,
    Insn,
    InsnDef,
    Mem,
    OpKind,
    Operand,
    Reg,
    VReg,
    insn_def,
    insn_def_by_opcode,
)


class DecodeError(Exception):
    """Raised when bytes do not form a valid vx32 instruction."""


_SCALE_LOG = {1: 0, 2: 1, 4: 2, 8: 3}
_LOG_SCALE = {v: k for k, v in _SCALE_LOG.items()}


def _mem_length(m: Mem) -> int:
    return (2 if m.index is not None else 1) + 4


def insn_length(mnemonic: str, operands: Tuple[Operand, ...]) -> int:
    """Encoded length of an instruction, without encoding it."""
    d = insn_def(mnemonic)
    n = 1
    for kind, op in zip(d.operands, operands):
        if kind in (OpKind.GPR, OpKind.FREG, OpKind.VREG, OpKind.COND, OpKind.IMM8):
            n += 1
        elif kind in (OpKind.IMM32, OpKind.REL32):
            n += 4
        elif kind is OpKind.MEM:
            n += _mem_length(op)
        else:  # pragma: no cover - exhaustive
            raise AssertionError(kind)
    return n


def encode(insn: Insn) -> bytes:
    """Encode *insn* to bytes.  ``insn.addr`` must be set for REL32 operands
    (the displacement is relative to the end of the instruction)."""
    d = insn.idef
    if len(insn.operands) != len(d.operands):
        raise ValueError(
            f"{insn.mnemonic}: expected {len(d.operands)} operands, "
            f"got {len(insn.operands)}"
        )
    length = insn_length(insn.mnemonic, insn.operands)
    out = bytearray([d.opcode])
    for kind, op in zip(d.operands, insn.operands):
        if kind is OpKind.GPR:
            assert isinstance(op, Reg), op
            out.append(op.index)
        elif kind is OpKind.FREG:
            assert isinstance(op, FReg), op
            out.append(op.index)
        elif kind is OpKind.VREG:
            assert isinstance(op, VReg), op
            out.append(op.index)
        elif kind is OpKind.COND:
            assert isinstance(op, Cond), op
            out.append(op.code)
        elif kind is OpKind.IMM8:
            assert isinstance(op, Imm), op
            out.append(op.value & 0xFF)
        elif kind is OpKind.IMM32:
            assert isinstance(op, Imm), op
            out += (op.value & 0xFFFFFFFF).to_bytes(4, "little")
        elif kind is OpKind.REL32:
            assert isinstance(op, Imm), op
            rel = (op.value - (insn.addr + length)) & 0xFFFFFFFF
            out += rel.to_bytes(4, "little")
        elif kind is OpKind.MEM:
            assert isinstance(op, Mem), op
            mode = 0
            if op.base is not None:
                mode |= 0x08 | op.base
            if op.index is not None:
                mode |= 0x80 | (op.index << 4)
            out.append(mode)
            if op.index is not None:
                out.append(_SCALE_LOG[op.scale])
            out += (op.disp & 0xFFFFFFFF).to_bytes(4, "little")
        else:  # pragma: no cover - exhaustive
            raise AssertionError(kind)
    assert len(out) == length
    insn.length = length
    return bytes(out)


class _Cursor:
    def __init__(self, data: bytes, pos: int) -> None:
        self.data = data
        self.pos = pos

    def u8(self) -> int:
        if self.pos >= len(self.data):
            raise DecodeError("truncated instruction")
        b = self.data[self.pos]
        self.pos += 1
        return b

    def u32(self) -> int:
        if self.pos + 4 > len(self.data):
            raise DecodeError("truncated instruction")
        v = int.from_bytes(self.data[self.pos : self.pos + 4], "little")
        self.pos += 4
        return v


def decode(data: bytes, offset: int = 0, addr: int = 0) -> Insn:
    """Decode one instruction from ``data[offset:]``.

    *addr* is the guest address of the instruction, used to materialise
    absolute targets from REL32 displacements.
    """
    cur = _Cursor(data, offset)
    opcode = cur.u8()
    d = insn_def_by_opcode(opcode)
    if d is None:
        raise DecodeError(f"bad opcode {opcode:#04x} at address {addr:#x}")
    operands: List[Operand] = []
    rel_fixups: List[int] = []
    for kind in d.operands:
        if kind is OpKind.GPR:
            r = cur.u8()
            if r >= 8:
                raise DecodeError(f"bad register {r} at {addr:#x}")
            operands.append(Reg(r))
        elif kind is OpKind.FREG:
            r = cur.u8()
            if r >= 8:
                raise DecodeError(f"bad FP register {r} at {addr:#x}")
            operands.append(FReg(r))
        elif kind is OpKind.VREG:
            r = cur.u8()
            if r >= 8:
                raise DecodeError(f"bad SIMD register {r} at {addr:#x}")
            operands.append(VReg(r))
        elif kind is OpKind.COND:
            c = cur.u8()
            if c >= 14:
                raise DecodeError(f"bad condition {c} at {addr:#x}")
            operands.append(Cond(c))
        elif kind is OpKind.IMM8:
            operands.append(Imm(cur.u8()))
        elif kind is OpKind.IMM32:
            operands.append(Imm(cur.u32()))
        elif kind is OpKind.REL32:
            rel_fixups.append(len(operands))
            operands.append(Imm(cur.u32()))
        elif kind is OpKind.MEM:
            mode = cur.u8()
            base = (mode & 0x07) if mode & 0x08 else None
            index = ((mode >> 4) & 0x07) if mode & 0x80 else None
            scale = 1
            if index is not None:
                s = cur.u8()
                if s not in _LOG_SCALE:
                    raise DecodeError(f"bad scale {s} at {addr:#x}")
                scale = _LOG_SCALE[s]
            disp = cur.u32()
            operands.append(Mem(base, index, scale, disp))
        else:  # pragma: no cover - exhaustive
            raise AssertionError(kind)
    length = cur.pos - offset
    # Resolve REL32 displacements into absolute targets.
    for i in rel_fixups:
        rel = operands[i].value
        operands[i] = Imm((addr + length + rel) & 0xFFFFFFFF)
    return Insn(d.mnemonic, tuple(operands), addr=addr, length=length)
