"""The vx32 guest instruction set.

vx32 is the synthetic 32-bit CISC guest architecture this reproduction
uses in place of x86 (see DESIGN.md).  It has the properties the paper's
arguments rest on:

* condition codes set as a side-effect of most ALU instructions (modelled
  with Valgrind's lazy condition-code thunk),
* memory operands with ``[base + index*scale + disp]`` addressing, so a
  single instruction decomposes into several IR operations (Figure 1),
* read-modify-write memory-destination instructions (``addm``/``subm``),
* a variable-length byte encoding (so self-modifying-code hashing and
  IMark lengths are meaningful),
* FP and 128-bit SIMD register files that tools must be able to shadow,
* an architecture-specific oddball (``machid``, our ``cpuid``) handled via
  an annotated dirty helper rather than explicit IR, and
* ``syscall`` / client-request / host-library-call traps.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from .regs import COND_NAMES, FREG_NAMES, GPR_NAMES, VREG_NAMES


class OpKind(enum.Enum):
    """Operand slot kinds, which fully determine the encoding layout."""

    GPR = "gpr"      # 1 byte: integer register index
    FREG = "freg"    # 1 byte: FP register index
    VREG = "vreg"    # 1 byte: SIMD register index
    COND = "cond"    # 1 byte: condition code
    IMM8 = "imm8"    # 1 byte immediate
    IMM32 = "imm32"  # 4 byte immediate (little-endian)
    REL32 = "rel32"  # 4 byte branch displacement, relative to insn end
    MEM = "mem"      # mode byte [+ scale byte] + disp32


# -- operand values ----------------------------------------------------------


@dataclass(frozen=True)
class Reg:
    index: int

    def __str__(self) -> str:
        return GPR_NAMES[self.index]


@dataclass(frozen=True)
class FReg:
    index: int

    def __str__(self) -> str:
        return FREG_NAMES[self.index]


@dataclass(frozen=True)
class VReg:
    index: int

    def __str__(self) -> str:
        return VREG_NAMES[self.index]


@dataclass(frozen=True)
class Imm:
    value: int

    def __str__(self) -> str:
        return str(self.value) if -4096 < self.value < 4096 else hex(self.value)


@dataclass(frozen=True)
class Cond:
    code: int

    def __str__(self) -> str:
        return COND_NAMES[self.code]


@dataclass(frozen=True)
class Mem:
    """A memory operand ``[base + index*scale + disp]``; any part optional."""

    base: Optional[int] = None
    index: Optional[int] = None
    scale: int = 1
    disp: int = 0

    def __post_init__(self) -> None:
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"bad scale {self.scale}")

    def __str__(self) -> str:
        parts = []
        if self.base is not None:
            parts.append(GPR_NAMES[self.base])
        if self.index is not None:
            part = GPR_NAMES[self.index]
            if self.scale != 1:
                part += f"*{self.scale}"
            parts.append(part)
        if self.disp or not parts:
            parts.append(hex(self.disp))
        return "[" + "+".join(parts) + "]"


Operand = Union[Reg, FReg, VReg, Imm, Cond, Mem]


# -- instruction definitions -------------------------------------------------


@dataclass(frozen=True)
class InsnDef:
    """Static definition of one instruction: mnemonic, opcode, operand kinds."""

    mnemonic: str
    opcode: int
    operands: Tuple[OpKind, ...] = ()
    #: True for instructions that write the condition-code thunk.
    sets_flags: bool = False
    #: True for control-flow instructions that end a basic block.
    is_branch: bool = False


_DEFS: Dict[str, InsnDef] = {}
_BY_OPCODE: Dict[int, InsnDef] = {}


def _d(
    mnemonic: str,
    opcode: int,
    *operands: OpKind,
    sets_flags: bool = False,
    is_branch: bool = False,
) -> None:
    d = InsnDef(mnemonic, opcode, tuple(operands), sets_flags, is_branch)
    if mnemonic in _DEFS:
        raise ValueError(f"duplicate mnemonic {mnemonic}")
    if opcode in _BY_OPCODE:
        raise ValueError(f"duplicate opcode {opcode:#x}")
    _DEFS[mnemonic] = d
    _BY_OPCODE[opcode] = d


G, F, V, C = OpKind.GPR, OpKind.FREG, OpKind.VREG, OpKind.COND
I8, I32, REL, M = OpKind.IMM8, OpKind.IMM32, OpKind.REL32, OpKind.MEM

# System / misc.
_d("nop", 0x00)
_d("halt", 0x01, is_branch=True)
_d("syscall", 0x02, is_branch=True)
_d("ret", 0x03, is_branch=True)
_d("machid", 0x04)              # cpuid analogue: fills r0..r3 (dirty helper)
_d("cycles", 0x05)              # rdtsc analogue: r0 = cycle count
_d("lcall", 0x06, I32, is_branch=True)  # host library call (libc functions)
_d("clreq", 0x07, is_branch=True)       # client request trap-door

# Data movement.
_d("mov", 0x10, G, G)
_d("movi", 0x11, G, I32)
_d("ld", 0x12, G, M)
_d("st", 0x13, M, G)
_d("ldb", 0x14, G, M)
_d("ldbs", 0x15, G, M)
_d("ldw", 0x16, G, M)
_d("ldws", 0x17, G, M)
_d("stb", 0x18, M, G)
_d("stw", 0x19, M, G)
_d("lea", 0x1A, G, M)
_d("xchg", 0x1B, G, G)
_d("sxb", 0x1C, G)
_d("sxw", 0x1D, G)
_d("sti", 0x1F, M, I32)

# Integer ALU (flag-setting).
_d("add", 0x20, G, G, sets_flags=True)
_d("addi", 0x21, G, I32, sets_flags=True)
_d("addm_", 0x22, G, M, sets_flags=True)   # rd += [mem]
_d("sub", 0x23, G, G, sets_flags=True)
_d("subi", 0x24, G, I32, sets_flags=True)
_d("subm_", 0x25, G, M, sets_flags=True)
_d("and", 0x26, G, G, sets_flags=True)
_d("andi", 0x27, G, I32, sets_flags=True)
_d("andm_", 0x28, G, M, sets_flags=True)
_d("or", 0x29, G, G, sets_flags=True)
_d("ori", 0x2A, G, I32, sets_flags=True)
_d("orm_", 0x2B, G, M, sets_flags=True)
_d("xor", 0x2C, G, G, sets_flags=True)
_d("xori", 0x2D, G, I32, sets_flags=True)
_d("xorm_", 0x2E, G, M, sets_flags=True)
_d("cmp", 0x2F, G, G, sets_flags=True)
_d("cmpi", 0x30, G, I32, sets_flags=True)
_d("cmpm_", 0x31, G, M, sets_flags=True)
_d("test", 0x32, G, G, sets_flags=True)
_d("testi", 0x33, G, I32, sets_flags=True)
_d("mul", 0x34, G, G, sets_flags=True)
_d("muli", 0x35, G, I32, sets_flags=True)
_d("divu", 0x36, G, G)
_d("divs", 0x37, G, G)
_d("modu", 0x38, G, G)
_d("mods", 0x39, G, G)
_d("mulhu", 0x3A, G, G)
_d("addm", 0x3B, M, G, sets_flags=True)   # [mem] += rs (read-modify-write)
_d("subm", 0x3C, M, G, sets_flags=True)
_d("mulhs", 0x3E, G, G)

# Shifts and unary ALU.
_d("shli", 0x40, G, I8, sets_flags=True)
_d("shl", 0x41, G, G, sets_flags=True)
_d("shri", 0x42, G, I8, sets_flags=True)
_d("shr", 0x43, G, G, sets_flags=True)
_d("sari", 0x44, G, I8, sets_flags=True)
_d("sar", 0x45, G, G, sets_flags=True)
_d("roli", 0x46, G, I8, sets_flags=True)
_d("rori", 0x47, G, I8, sets_flags=True)
_d("inc", 0x48, G, sets_flags=True)
_d("dec", 0x49, G, sets_flags=True)
_d("neg", 0x4A, G, sets_flags=True)
_d("not", 0x4B, G)

# Stack and control flow.
_d("push", 0x50, G)
_d("pushi", 0x51, I32)
_d("pop", 0x52, G)
_d("call", 0x53, REL, is_branch=True)
_d("callr", 0x54, G, is_branch=True)
_d("jmp", 0x55, REL, is_branch=True)
_d("jmpr", 0x56, G, is_branch=True)
_d("jcc", 0x57, C, REL, is_branch=True)
_d("setcc", 0x58, G, C)

# Floating point (F64 register file).
_d("fmov", 0x60, F, F)
_d("fld", 0x61, F, M)
_d("fst", 0x62, M, F)
_d("flds", 0x63, F, M)
_d("fsts", 0x64, M, F)
_d("fadd", 0x65, F, F)
_d("fsub", 0x66, F, F)
_d("fmul", 0x67, F, F)
_d("fdiv", 0x68, F, F)
_d("fsqrt", 0x69, F, F)
_d("fneg", 0x6A, F, F)
_d("fabs", 0x6B, F, F)
_d("fcmp", 0x6C, F, F, sets_flags=True)
_d("fcvti", 0x6D, G, F)
_d("ficvt", 0x6E, F, G)
_d("fldi", 0x6F, F, I32)
_d("fmin", 0x70, F, F)
_d("fmax", 0x71, F, F)

# SIMD (128-bit register file).
_d("vmov", 0x80, V, V)
_d("vld", 0x81, V, M)
_d("vst", 0x82, M, V)
_d("vaddb", 0x83, V, V)
_d("vaddw", 0x84, V, V)
_d("vaddd", 0x85, V, V)
_d("vsubb", 0x86, V, V)
_d("vsubw", 0x87, V, V)
_d("vsubd", 0x88, V, V)
_d("vand", 0x89, V, V)
_d("vor", 0x8A, V, V)
_d("vxor", 0x8B, V, V)
_d("vcmpeqb", 0x8C, V, V)
_d("vshlw", 0x8D, V, I8)
_d("vshrw", 0x8E, V, I8)
_d("vsplatb", 0x8F, V, G)
_d("vmaxub", 0x90, V, V)
_d("vminub", 0x91, V, V)
_d("vavgub", 0x92, V, V)
_d("vmulw", 0x93, V, V)


def insn_def(mnemonic: str) -> InsnDef:
    try:
        return _DEFS[mnemonic]
    except KeyError:
        raise KeyError(f"unknown vx32 instruction {mnemonic!r}") from None


def insn_def_by_opcode(opcode: int) -> Optional[InsnDef]:
    return _BY_OPCODE.get(opcode)


def all_mnemonics():
    return tuple(_DEFS.keys())


# -- concrete instructions ---------------------------------------------------


@dataclass
class Insn:
    """A decoded (or about-to-be-encoded) vx32 instruction."""

    mnemonic: str
    operands: Tuple[Operand, ...] = ()
    #: Address the instruction was decoded from / will be placed at.
    addr: int = 0
    #: Encoded length in bytes (filled in by encode/decode).
    length: int = 0

    @property
    def idef(self) -> InsnDef:
        return insn_def(self.mnemonic)

    def __str__(self) -> str:
        name = self.mnemonic
        ops = list(self.operands)
        # jcc/setcc print their condition as part of the mnemonic, x86-style.
        if name == "jcc":
            name = "j" + COND_NAMES[ops[0].code]
            ops = ops[1:]
        elif name == "setcc":
            name = "set" + COND_NAMES[ops[1].code]
            ops = ops[:1]
        if not ops:
            return name
        return f"{name} " + ", ".join(str(o) for o in ops)
