"""A two-pass assembler for vx32.

The assembler turns assembly text into a :class:`~repro.guest.program.VxImage`.
Syntax, by example::

            .text
            .global _start
    _start: movi  r0, 10          ; comments with ';' or '//'
            push  r0
            call  fib
            addi  sp, 4
            halt
    fib:    cmp   r0, r1
            jle   done            ; j<cond> — synonyms like jne/jlt/jz work
            ld    r2, [r3+r1*4+8] ; base + index*scale + disp
            add   r2, [sp+4]      ; generic mnemonics pick encodings by shape
            jmp   fib
    done:   ret
            .data
    msg:    .ascii "hello\\n"
    table:  .word 1, 2, 3, msg    ; words may reference symbols
    buf:    .space 64
            .align 8

Generic ALU mnemonics (``add``, ``sub``, ``and``, ``or``, ``xor``, ``cmp``,
``test``, ``mul``, ``mov``, ``shl``, ``shr``, ``sar``, ``rol``, ``ror``)
select the reg/imm/mem encoding from their operand shapes, so assembly reads
like x86 even though each form has its own opcode.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from .encoding import encode, insn_length
from .isa import Cond, FReg, Imm, Insn, Mem, OpKind, Reg, VReg, insn_def
from .program import LineInfo, Segment, VxImage
from .regs import COND_BY_NAME, GPR_ALIASES


class AsmError(Exception):
    """An assembly-time error, carrying file/line context."""

    def __init__(self, message: str, filename: str = "<asm>", line: int = 0):
        super().__init__(f"{filename}:{line}: {message}")
        self.filename = filename
        self.line = line


DEFAULT_TEXT_BASE = 0x0001_0000
_PAGE = 0x1000

# Generic mnemonic -> (rr-form, ri-form, rm-form, mr-form) encodings.
_GENERIC_ALU = {
    "add": ("add", "addi", "addm_", "addm"),
    "sub": ("sub", "subi", "subm_", "subm"),
    "and": ("and", "andi", "andm_", None),
    "or": ("or", "ori", "orm_", None),
    "xor": ("xor", "xori", "xorm_", None),
    "cmp": ("cmp", "cmpi", "cmpm_", None),
    "test": ("test", "testi", None, None),
    "mul": ("mul", "muli", None, None),
}
_GENERIC_SHIFT = {"shl": ("shl", "shli"), "shr": ("shr", "shri"),
                  "sar": ("sar", "sari"), "rol": (None, "roli"),
                  "ror": (None, "rori")}

_FREG_RE = re.compile(r"^f([0-7])$")
_VREG_RE = re.compile(r"^v([0-7])$")
_IDENT_RE = re.compile(r"^[A-Za-z_.$][A-Za-z0-9_.$]*$")


@dataclass
class _Item:
    """One assembled item: an instruction or raw data, at a section offset."""

    section: str
    offset: int
    length: int
    line: int
    insn: Optional[Insn] = None
    data: Optional[bytes] = None
    #: Unresolved symbol fixups: (operand index, kind) for insns, or a list
    #: of (byte offset, symbol, addend) word fixups for data.
    fixups: List = field(default_factory=list)


class Assembler:
    """Two-pass assembler producing a VxImage."""

    def __init__(self, text_base: int = DEFAULT_TEXT_BASE, filename: str = "<asm>"):
        self.text_base = text_base
        self.filename = filename
        self._sections: Dict[str, int] = {"text": 0, "data": 0}  # sizes
        self._items: List[_Item] = []
        self._labels: Dict[str, Tuple[str, int]] = {}  # name -> (section, offset)
        self._equs: Dict[str, int] = {}
        self._globals: List[str] = []
        self._cur = "text"
        self._line = 0

    # -- public API ----------------------------------------------------------

    def assemble(self, source: str) -> VxImage:
        """Assemble *source* and return the finished image."""
        for lineno, raw in enumerate(source.splitlines(), start=1):
            self._line = lineno
            self._do_line(raw)
        return self._finish()

    # -- pass 1: parse and size ----------------------------------------------

    def _err(self, msg: str) -> AsmError:
        return AsmError(msg, self.filename, self._line)

    def _do_line(self, raw: str) -> None:
        line = raw.split(";")[0].split("//")[0].strip()
        while line:
            m = re.match(r"^([A-Za-z_.$][A-Za-z0-9_.$]*):\s*", line)
            if not m:
                break
            self._define_label(m.group(1))
            line = line[m.end():]
        if not line:
            return
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        if mnemonic.startswith("."):
            self._directive(mnemonic, rest)
        else:
            self._instruction(mnemonic, rest)

    def _define_label(self, name: str) -> None:
        if name in self._labels or name in self._equs:
            raise self._err(f"label {name!r} redefined")
        self._labels[name] = (self._cur, self._sections[self._cur])

    def _emit_data(self, data: bytes, fixups: Optional[List] = None) -> None:
        item = _Item(
            self._cur,
            self._sections[self._cur],
            len(data),
            self._line,
            data=data,
            fixups=fixups or [],
        )
        self._items.append(item)
        self._sections[self._cur] += len(data)

    def _directive(self, name: str, rest: str) -> None:
        if name in (".text", ".data"):
            self._cur = name[1:]
        elif name == ".global" or name == ".globl":
            self._globals.append(rest.strip())
        elif name == ".equ":
            sym, _, val = rest.partition(",")
            sym = sym.strip()
            if not _IDENT_RE.match(sym):
                raise self._err(f"bad .equ name {sym!r}")
            self._equs[sym] = self._parse_int(val.strip())
        elif name == ".byte":
            vals = [self._parse_int(v.strip()) for v in rest.split(",")]
            self._emit_data(bytes(v & 0xFF for v in vals))
        elif name == ".word":
            data = bytearray()
            fixups: List = []
            for i, tok in enumerate(v.strip() for v in rest.split(",")):
                sym, addend = self._sym_plus_offset(tok)
                if sym is not None:
                    fixups.append((i * 4, sym, addend))
                    data += b"\0\0\0\0"
                else:
                    data += (addend & 0xFFFFFFFF).to_bytes(4, "little")
            self._emit_data(bytes(data), fixups)
        elif name == ".ascii" or name == ".asciz":
            s = self._parse_string(rest.strip())
            if name == ".asciz":
                s += b"\0"
            self._emit_data(s)
        elif name == ".space" or name == ".zero":
            n = self._parse_int(rest.strip())
            self._emit_data(b"\0" * n)
        elif name == ".align":
            n = self._parse_int(rest.strip())
            if n & (n - 1):
                raise self._err(f".align {n}: not a power of two")
            off = self._sections[self._cur]
            pad = (-off) % n
            if pad:
                self._emit_data(b"\0" * pad)
        elif name == ".double":
            import struct

            vals = [float(v.strip()) for v in rest.split(",")]
            self._emit_data(b"".join(struct.pack("<d", v) for v in vals))
        else:
            raise self._err(f"unknown directive {name}")

    # -- instruction parsing ---------------------------------------------------

    def _instruction(self, mnemonic: str, rest: str) -> None:
        ops = self._split_operands(rest)
        mnemonic, parsed = self._resolve_forms(mnemonic, ops)
        try:
            d = insn_def(mnemonic)
        except KeyError:
            raise self._err(f"unknown instruction {mnemonic!r}") from None
        if len(parsed) != len(d.operands):
            raise self._err(
                f"{mnemonic}: expected {len(d.operands)} operands, got {len(parsed)}"
            )
        operands: List = []
        fixups: List = []
        for i, (kind, op) in enumerate(zip(d.operands, parsed)):
            val, fix = self._coerce(kind, op, mnemonic)
            operands.append(val)
            if fix is not None:
                fixups.append((i, fix))
        insn = Insn(mnemonic, tuple(operands))
        length = insn_length(mnemonic, insn.operands)
        item = _Item(
            self._cur,
            self._sections[self._cur],
            length,
            self._line,
            insn=insn,
            fixups=fixups,
        )
        if self._cur != "text":
            raise self._err("instructions outside .text")
        self._items.append(item)
        self._sections[self._cur] += length

    def _split_operands(self, rest: str) -> List[str]:
        rest = rest.strip()
        if not rest:
            return []
        out: List[str] = []
        depth = 0
        cur = ""
        for ch in rest:
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            if ch == "," and depth == 0:
                out.append(cur.strip())
                cur = ""
            else:
                cur += ch
        out.append(cur.strip())
        return out

    def _resolve_forms(self, mnemonic: str, ops: List[str]):
        """Map generic mnemonics to concrete encodings based on shapes."""
        parsed = [self._parse_operand(o) for o in ops]

        def shape(p) -> str:
            if isinstance(p, Reg):
                return "r"
            if isinstance(p, Mem):
                return "m"
            return "i"

        if mnemonic in _GENERIC_ALU and len(parsed) == 2:
            rr, ri, rm, mr = _GENERIC_ALU[mnemonic]
            shapes = shape(parsed[0]) + shape(parsed[1])
            pick = {"rr": rr, "ri": ri, "rm": rm, "mr": mr}.get(shapes)
            if pick is None:
                raise self._err(f"{mnemonic}: unsupported operand shapes {shapes}")
            return pick, parsed
        if mnemonic in _GENERIC_SHIFT and len(parsed) == 2:
            rform, iform = _GENERIC_SHIFT[mnemonic]
            pick = rform if isinstance(parsed[1], Reg) else iform
            if pick is None:
                raise self._err(f"{mnemonic}: unsupported operand shape")
            return pick, parsed
        if mnemonic == "mov" and len(parsed) == 2:
            if isinstance(parsed[0], Reg) and isinstance(parsed[1], Reg):
                return "mov", parsed
            if isinstance(parsed[0], Reg):
                return "movi", parsed
            raise self._err("mov: use ld/st for memory")
        if mnemonic == "push" and len(parsed) == 1 and not isinstance(parsed[0], Reg):
            return "pushi", parsed
        if mnemonic == "call" and len(parsed) == 1 and isinstance(parsed[0], Reg):
            return "callr", parsed
        if mnemonic == "jmp" and len(parsed) == 1 and isinstance(parsed[0], Reg):
            return "jmpr", parsed
        # j<cond> and set<cond> synonyms.
        if mnemonic.startswith("j") and mnemonic[1:] in COND_BY_NAME:
            return "jcc", [Cond(COND_BY_NAME[mnemonic[1:]])] + parsed
        if mnemonic.startswith("set") and mnemonic[3:] in COND_BY_NAME:
            return "setcc", parsed + [Cond(COND_BY_NAME[mnemonic[3:]])]
        return mnemonic, parsed

    def _parse_operand(self, text: str):
        text = text.strip()
        low = text.lower()
        if low in GPR_ALIASES:
            return Reg(GPR_ALIASES[low])
        m = _FREG_RE.match(low)
        if m:
            return FReg(int(m.group(1)))
        m = _VREG_RE.match(low)
        if m:
            return VReg(int(m.group(1)))
        if text.startswith("["):
            if not text.endswith("]"):
                raise self._err(f"unterminated memory operand {text!r}")
            return self._parse_mem(text[1:-1])
        return text  # symbol or immediate, resolved during coercion

    def _parse_mem(self, inner: str) -> Union[Mem, Tuple[Mem, str, int]]:
        base = index = None
        scale = 1
        disp = 0
        sym: Optional[str] = None
        for raw_term in self._split_terms(inner):
            neg = raw_term.startswith("-")
            term = raw_term[1:] if neg else raw_term
            term = term.strip()
            low = term.lower()
            if "*" in term:
                rpart, _, spart = term.partition("*")
                rlow = rpart.strip().lower()
                if rlow not in GPR_ALIASES or neg:
                    raise self._err(f"bad index term {raw_term!r}")
                if index is not None:
                    raise self._err("two index registers")
                index = GPR_ALIASES[rlow]
                scale = self._parse_int(spart.strip())
            elif low in GPR_ALIASES and not neg:
                if base is None:
                    base = GPR_ALIASES[low]
                elif index is None:
                    index = GPR_ALIASES[low]
                else:
                    raise self._err("too many registers in memory operand")
            else:
                s, a = self._sym_plus_offset(term)
                if s is not None:
                    if sym is not None:
                        raise self._err("two symbols in memory operand")
                    if neg:
                        raise self._err("cannot negate a symbol")
                    sym = s
                    disp += a
                else:
                    disp += -a if neg else a
        mem = Mem(base, index, scale, disp & 0xFFFFFFFF)
        if sym is not None:
            return (mem, sym, disp)
        return mem

    @staticmethod
    def _split_terms(inner: str) -> List[str]:
        out = []
        cur = ""
        for ch in inner:
            if ch == "+" and cur.strip():
                out.append(cur.strip())
                cur = ""
            elif ch == "-" and cur.strip():
                out.append(cur.strip())
                cur = "-"
            else:
                cur += ch
        if cur.strip():
            out.append(cur.strip())
        return out

    def _coerce(self, kind: OpKind, op, mnemonic: str):
        """Convert a parsed operand to its final type; return (value, fixup)."""
        if kind is OpKind.GPR:
            if not isinstance(op, Reg):
                raise self._err(f"{mnemonic}: expected integer register, got {op!r}")
            return op, None
        if kind is OpKind.FREG:
            if not isinstance(op, FReg):
                raise self._err(f"{mnemonic}: expected FP register, got {op!r}")
            return op, None
        if kind is OpKind.VREG:
            if not isinstance(op, VReg):
                raise self._err(f"{mnemonic}: expected SIMD register, got {op!r}")
            return op, None
        if kind is OpKind.COND:
            if not isinstance(op, Cond):
                raise self._err(f"{mnemonic}: expected condition, got {op!r}")
            return op, None
        if kind in (OpKind.IMM8, OpKind.IMM32, OpKind.REL32):
            if not isinstance(op, str):
                raise self._err(f"{mnemonic}: expected immediate, got {op!r}")
            sym, addend = self._sym_plus_offset(op)
            if sym is not None:
                return Imm(0), ("sym", sym, addend)
            return Imm(addend), None
        if kind is OpKind.MEM:
            if isinstance(op, tuple):  # (Mem, sym, disp-with-addend)
                mem, sym, _ = op
                return mem, ("memsym", sym, mem.disp)
            if not isinstance(op, Mem):
                raise self._err(f"{mnemonic}: expected memory operand, got {op!r}")
            return op, None
        raise AssertionError(kind)  # pragma: no cover

    # -- literals --------------------------------------------------------------

    def _parse_int(self, text: str) -> int:
        try:
            return int(text, 0)
        except ValueError:
            if text in self._equs:
                return self._equs[text]
            if len(text) == 3 and text[0] == "'" and text[2] == "'":
                return ord(text[1])
            raise self._err(f"bad integer literal {text!r}") from None

    def _sym_plus_offset(self, text: str) -> Tuple[Optional[str], int]:
        """Parse ``sym``, ``sym+4``, ``42``; return (symbol-or-None, value)."""
        text = text.strip()
        m = re.match(r"^([A-Za-z_.$][A-Za-z0-9_.$]*)\s*([+-]\s*\d+)?$", text)
        if m and m.group(1) not in GPR_ALIASES:
            name = m.group(1)
            addend = int(m.group(2).replace(" ", "")) if m.group(2) else 0
            if name in self._equs:
                return None, self._equs[name] + addend
            return name, addend
        return None, self._parse_int(text)

    def _parse_string(self, text: str) -> bytes:
        if len(text) < 2 or text[0] != '"' or text[-1] != '"':
            raise self._err(f"bad string literal {text}")
        body = text[1:-1]
        out = bytearray()
        i = 0
        while i < len(body):
            ch = body[i]
            if ch == "\\" and i + 1 < len(body):
                esc = body[i + 1]
                out += {
                    "n": b"\n", "t": b"\t", "0": b"\0", "\\": b"\\", '"': b'"',
                    "r": b"\r",
                }.get(esc, esc.encode())
                i += 2
            else:
                out += ch.encode()
                i += 1
        return bytes(out)

    # -- pass 2: fix up and emit -------------------------------------------------

    def _finish(self) -> VxImage:
        text_size = self._sections["text"]
        data_base = self.text_base + text_size
        data_base = (data_base + _PAGE - 1) & ~(_PAGE - 1)
        bases = {"text": self.text_base, "data": data_base}

        def sym_value(name: str, line: int) -> int:
            if name in self._labels:
                sec, off = self._labels[name]
                return bases[sec] + off
            if name in self._equs:
                return self._equs[name]
            raise AsmError(f"undefined symbol {name!r}", self.filename, line)

        text = bytearray()
        data = bytearray()
        lines: List[LineInfo] = []
        for item in self._items:
            addr = bases[item.section] + item.offset
            if item.insn is not None:
                insn = item.insn
                insn.addr = addr
                ops = list(insn.operands)
                for i, fix in item.fixups:
                    tag, sym, addend = fix
                    val = sym_value(sym, item.line) + addend
                    if tag == "sym":
                        ops[i] = Imm(val & 0xFFFFFFFF)
                    else:  # memsym: symbol folds into the displacement
                        mem = ops[i]
                        ops[i] = Mem(mem.base, mem.index, mem.scale,
                                     (mem.disp + sym_value(sym, item.line)) & 0xFFFFFFFF)
                insn.operands = tuple(ops)
                raw = encode(insn)
                assert len(raw) == item.length, (insn, len(raw), item.length)
                text += raw
                lines.append(LineInfo(addr, self.filename, item.line))
            else:
                blob = bytearray(item.data or b"")
                for off, sym, addend in item.fixups:
                    val = (sym_value(sym, item.line) + addend) & 0xFFFFFFFF
                    blob[off : off + 4] = val.to_bytes(4, "little")
                if item.section == "text":
                    text += blob
                else:
                    data += blob

        image = VxImage(name=self.filename)
        if text:
            image.add_segment(Segment("text", bases["text"], bytes(text), "rx"))
        if data:
            image.add_segment(Segment("data", bases["data"], bytes(data), "rw"))
        for name, (sec, off) in self._labels.items():
            image.symbols[name] = bases[sec] + off
        image.lines = lines
        entry = image.symbols.get("_start", bases["text"])
        image.entry = entry
        return image


def assemble(source: str, *, text_base: int = DEFAULT_TEXT_BASE,
             filename: str = "<asm>") -> VxImage:
    """Assemble vx32 assembly text into an executable image."""
    return Assembler(text_base=text_base, filename=filename).assemble(source)
