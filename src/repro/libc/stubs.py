"""Guest-side libc: assembly source for the routines that run as guest
code, plus `lcall` stubs for the host-implemented functions.

The split mirrors real Valgrind's world: string/memory routines are
ordinary guest code (so tools instrument every load and store in them),
while the heap allocator is reached through a call gate that tools can
*replace or wrap* (requirement R8 — "tools that need to track heap
(de)allocations can use function wrappers or function replacements").

Calling convention: arguments pushed right to left, return value in r0,
caller pops arguments.  r0-r3 and r6-r7 are caller-saved; fp is
callee-saved; sp is the hardware stack pointer.
"""

from __future__ import annotations

from typing import Dict, List

#: Host-implemented libc functions, in lcall-index order.  The matching
#: implementations live in :mod:`repro.libc.hostlib`.
LIBC_HOST_FUNCS: List[str] = [
    "malloc",
    "free",
    "calloc",
    "realloc",
    "puts",
    "putint",
    "printf",
    "exit",
    "rand",
    "srand",
    "atoi",
    "abort",
    "putuint",
    "putfloat",
]

LIBC_INDEX: Dict[str, int] = {name: i for i, name in enumerate(LIBC_HOST_FUNCS)}


def host_stubs_asm() -> str:
    """Stub bodies: each host function is `lcall <index>; ret` at its symbol."""
    lines = ["; ---- host libc stubs ----"]
    for i, name in enumerate(LIBC_HOST_FUNCS):
        lines.append(f"{name}:")
        lines.append(f"        lcall {i}")
        lines.append("        ret")
    return "\n".join(lines)


CRT0_ASM = """
; ---- crt0: process entry point ----
; The loader leaves [sp] = argc and [sp+4] = argv.  Call main(argc, argv)
; with the C convention, then exit(main's return value).
_start:
        ld    r0, [sp]          ; argc
        ld    r1, [sp+4]        ; argv
        push  r1
        push  r0
        call  main
        addi  sp, 8
        push  r0
        call  exit              ; never returns
        halt                    ; belt and braces
"""

STRING_ASM = """
; ---- string/memory routines (guest code, fully instrumented) ----

; void *memcpy(void *dst, const void *src, uint n)  -- forward byte copy
memcpy:
        ld    r0, [sp+4]
        ld    r1, [sp+8]
        ld    r2, [sp+12]
        mov   r3, r0
.mcpy_w:
        cmp   r2, 4
        jltu  .mcpy_b
        ld    r6, [r1]
        st    [r3], r6
        addi  r3, 4
        addi  r1, 4
        subi  r2, 4
        jmp   .mcpy_w
.mcpy_b:
        test  r2, r2
        jz    .mcpy_done
        ldb   r6, [r1]
        stb   [r3], r6
        inc   r3
        inc   r1
        dec   r2
        jmp   .mcpy_b
.mcpy_done:
        ret

; void *memmove(void *dst, const void *src, uint n)
memmove:
        ld    r0, [sp+4]
        ld    r1, [sp+8]
        ld    r2, [sp+12]
        cmp   r0, r1
        jleu  .mmv_fwd          ; dst <= src: forward copy is safe
        mov   r3, r0
        add   r3, r2            ; dst end
        add   r1, r2            ; src end
.mmv_back:
        test  r2, r2
        jz    .mmv_done
        dec   r1
        dec   r3
        ldb   r6, [r1]
        stb   [r3], r6
        dec   r2
        jmp   .mmv_back
.mmv_fwd:
        mov   r3, r0
.mmv_floop:
        test  r2, r2
        jz    .mmv_done
        ldb   r6, [r1]
        stb   [r3], r6
        inc   r3
        inc   r1
        dec   r2
        jmp   .mmv_floop
.mmv_done:
        ret

; void *memset(void *dst, int c, uint n)
memset:
        ld    r0, [sp+4]
        ld    r1, [sp+8]
        ld    r2, [sp+12]
        mov   r3, r0
.mset_loop:
        test  r2, r2
        jz    .mset_done
        stb   [r3], r1
        inc   r3
        dec   r2
        jmp   .mset_loop
.mset_done:
        ret

; uint strlen(const char *s)
strlen:
        ld    r1, [sp+4]
        movi  r0, 0
.slen_loop:
        ldb   r2, [r1+r0]
        test  r2, r2
        jz    .slen_done
        inc   r0
        jmp   .slen_loop
.slen_done:
        ret

; char *strcpy(char *dst, const char *src)
strcpy:
        ld    r0, [sp+4]
        ld    r1, [sp+8]
        mov   r3, r0
.scpy_loop:
        ldb   r2, [r1]
        stb   [r3], r2
        inc   r1
        inc   r3
        test  r2, r2
        jnz   .scpy_loop
        ret

; int strcmp(const char *a, const char *b)  -- returns -1/0/1
strcmp:
        ld    r1, [sp+4]
        ld    r2, [sp+8]
.scmp_loop:
        ldb   r3, [r1]
        ldb   r6, [r2]
        cmp   r3, r6
        jne   .scmp_diff
        test  r3, r3
        jz    .scmp_eq
        inc   r1
        inc   r2
        jmp   .scmp_loop
.scmp_eq:
        movi  r0, 0
        ret
.scmp_diff:
        jltu  .scmp_lt
        movi  r0, 1
        ret
.scmp_lt:
        movi  r0, -1
        ret

; int strncmp(const char *a, const char *b, uint n)
strncmp:
        ld    r1, [sp+4]
        ld    r2, [sp+8]
        ld    r6, [sp+12]
.sncmp_loop:
        test  r6, r6
        jz    .sncmp_eq
        ldb   r3, [r1]
        ldb   r7, [r2]
        cmp   r3, r7
        jne   .sncmp_diff
        test  r3, r3
        jz    .sncmp_eq
        inc   r1
        inc   r2
        dec   r6
        jmp   .sncmp_loop
.sncmp_eq:
        movi  r0, 0
        ret
.sncmp_diff:
        jltu  .sncmp_lt
        movi  r0, 1
        ret
.sncmp_lt:
        movi  r0, -1
        ret
"""


def libc_asm() -> str:
    """All guest-side libc source: crt0, string routines, host stubs."""
    return "        .text\n" + CRT0_ASM + STRING_ASM + "\n" + host_stubs_asm() + "\n"


def build_source(program: str, *, with_libc: bool = True) -> str:
    """Combine a user program with the libc prelude into one assembly unit."""
    if not with_libc:
        return program
    return program + "\n" + libc_asm()
