"""Host-implemented libc functions (the `lcall` targets).

These run outside guest code — like the allocator Valgrind's own
``replacemalloc`` machinery provides — but operate entirely on *guest*
memory and registers through a small machine interface, and obtain memory
with real ``brk`` syscalls routed through the engine (so, under the DBI
core, the R6 allocation events fire exactly as the paper describes).

Tools intercept these functions with the core's function-replacement
mechanism (R8): Memcheck, for example, wraps ``malloc``/``free`` to add
red zones and shadow-state updates.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol

from ..kernel.kernel import SYS_BRK
from .stubs import LIBC_HOST_FUNCS

M32 = 0xFFFFFFFF

#: Heap block header: payload size (4 bytes) then a magic word.
HDR_SIZE = 8
MAGIC_INUSE = 0xA110C8ED
MAGIC_FREE = 0xF4EEB10C
#: Payload alignment and size granularity.
ALIGN = 16
#: How much the allocator grows the arena by at a time.
ARENA_CHUNK = 64 * 1024

#: A guest page the loader maps for host-libc bounce buffers (I/O
#: formatting); announced as startup memory so shadow-value tools treat it
#: as initialised.
SCRATCH_ADDR = 0x0000_E000
SCRATCH_SIZE = 0x1000


class Machine(Protocol):
    """What a host libc function may touch."""

    @property
    def mem(self): ...

    def reg(self, i: int) -> int: ...

    def set_reg(self, i: int, value: int) -> None: ...

    def syscall(self, num: int, a1: int = 0, a2: int = 0, a3: int = 0) -> int: ...

    @property
    def tid(self) -> int: ...


def _arg(m: Machine, i: int) -> int:
    """Read the i-th (0-based) stack argument; sp points at the return
    address when an lcall stub body runs."""
    sp = m.reg(4)
    return int.from_bytes(m.mem.read(sp + 4 + 4 * i, 4), "little")


class HeapAllocator:
    """A first-fit, size-class free-list allocator over the guest brk heap.

    Headers live in guest memory ("book-keeping data attached... which the
    client program should not access" — requirement R8); the free lists
    are host-side for simplicity.  Blocks are not coalesced.
    """

    def __init__(self) -> None:
        self.arena_cur = 0
        self.arena_end = 0
        self.free_lists: Dict[int, List[int]] = {}
        # statistics (Massif and the tests use these)
        self.n_mallocs = 0
        self.n_frees = 0
        self.bytes_live = 0

    @staticmethod
    def _round(n: int) -> int:
        return max(ALIGN, (n + ALIGN - 1) & ~(ALIGN - 1))

    def _grow(self, m: Machine, need: int) -> bool:
        want = max(ARENA_CHUNK, need + HDR_SIZE)
        if self.arena_end == 0:
            self.arena_cur = self.arena_end = m.syscall(SYS_BRK, 0)
        new_end = m.syscall(SYS_BRK, self.arena_end + want)
        if new_end < self.arena_end + need + HDR_SIZE:
            return False
        self.arena_end = new_end
        return True

    def malloc(self, m: Machine, size: int) -> int:
        if size == 0 or size > 0x10000000:
            return 0
        rs = self._round(size)
        bucket = self.free_lists.get(rs)
        if bucket:
            block = bucket.pop()
        else:
            if self.arena_end - self.arena_cur < rs + HDR_SIZE:
                if not self._grow(m, rs):
                    return 0
            block = self.arena_cur
            self.arena_cur += HDR_SIZE + rs
        m.mem.write_raw(block, struct.pack("<II", rs, MAGIC_INUSE))
        self.n_mallocs += 1
        self.bytes_live += rs
        return block + HDR_SIZE

    def free(self, m: Machine, payload: int) -> bool:
        """Returns False on an invalid free (tools report these)."""
        if payload == 0:
            return True
        block = (payload - HDR_SIZE) & M32
        try:
            rs, magic = struct.unpack("<II", m.mem.read_raw(block, HDR_SIZE))
        except Exception:
            return False
        if magic != MAGIC_INUSE:
            return False
        m.mem.write_raw(block + 4, struct.pack("<I", MAGIC_FREE))
        self.free_lists.setdefault(rs, []).append(block)
        self.n_frees += 1
        self.bytes_live -= rs
        return True

    def usable_size(self, m: Machine, payload: int) -> Optional[int]:
        if payload == 0:
            return None
        try:
            rs, magic = struct.unpack(
                "<II", m.mem.read_raw((payload - HDR_SIZE) & M32, HDR_SIZE)
            )
        except Exception:
            return None
        return rs if magic == MAGIC_INUSE else None


class LibC:
    """The host half of the guest's C library."""

    def __init__(self) -> None:
        self.heap = HeapAllocator()
        self._rand_state = 0x1234_5678
        self._table: List[Callable[[Machine], Optional[int]]] = [
            getattr(self, f"_do_{name}") for name in LIBC_HOST_FUNCS
        ]

    # -- dispatch -----------------------------------------------------------------

    def call(self, index: int, m: Machine) -> None:
        """Invoke host function *index*; stores the result in r0."""
        try:
            fn = self._table[index]
        except IndexError:
            raise ValueError(f"bad lcall index {index}") from None
        ret = fn(m)
        if ret is not None:
            m.set_reg(0, ret & M32)

    def name_of(self, index: int) -> str:
        return LIBC_HOST_FUNCS[index]

    def index_of(self, name: str) -> int:
        return LIBC_HOST_FUNCS.index(name)

    # -- allocator entry points (the functions tools wrap) ---------------------------

    def _do_malloc(self, m: Machine) -> int:
        return self.heap.malloc(m, _arg(m, 0))

    def _do_free(self, m: Machine) -> int:
        self.heap.free(m, _arg(m, 0))
        return 0

    def _do_calloc(self, m: Machine) -> int:
        n, sz = _arg(m, 0), _arg(m, 1)
        total = n * sz
        p = self.heap.malloc(m, total)
        if p:
            m.mem.write_raw(p, b"\0" * total)
        return p

    def _do_realloc(self, m: Machine) -> int:
        p, size = _arg(m, 0), _arg(m, 1)
        if p == 0:
            return self.heap.malloc(m, size)
        if size == 0:
            self.heap.free(m, p)
            return 0
        old = self.heap.usable_size(m, p)
        if old is None:
            return 0
        if size <= old:
            return p
        newp = self.heap.malloc(m, size)
        if newp:
            m.mem.write_raw(newp, m.mem.read_raw(p, old))
            self.heap.free(m, p)
        return newp

    # -- I/O ---------------------------------------------------------------------------

    def _write_bytes(self, m: Machine, data: bytes) -> None:
        """Write to stdout via the guest scratch page + write syscall, so
        the bytes flow through the normal syscall (and event) path."""
        from ..kernel.kernel import SYS_WRITE

        pos = 0
        while pos < len(data):
            chunk = data[pos : pos + SCRATCH_SIZE]
            m.mem.write_raw(SCRATCH_ADDR, chunk)
            m.syscall(SYS_WRITE, 1, SCRATCH_ADDR, len(chunk))
            pos += len(chunk)

    def _do_puts(self, m: Machine) -> int:
        s = m.mem.read_cstring(_arg(m, 0))
        self._write_bytes(m, s + b"\n")
        return len(s) + 1

    def _do_putint(self, m: Machine) -> int:
        v = _arg(m, 0)
        if v & 0x8000_0000:
            v -= 1 << 32
        self._write_bytes(m, str(v).encode() + b"\n")
        return 0

    def _do_putuint(self, m: Machine) -> int:
        self._write_bytes(m, str(_arg(m, 0)).encode() + b"\n")
        return 0

    def _do_putfloat(self, m: Machine) -> int:
        raw = m.mem.read(_arg(m, 0), 8)
        (v,) = struct.unpack("<d", raw)
        self._write_bytes(m, f"{v:.6g}\n".encode())
        return 0

    def _do_printf(self, m: Machine) -> int:
        """A printf subset: %d %u %x %s %c %% with up to five varargs."""
        fmt = m.mem.read_cstring(_arg(m, 0)).decode(errors="replace")
        out = []
        argi = 1
        i = 0
        while i < len(fmt):
            ch = fmt[i]
            if ch != "%":
                out.append(ch)
                i += 1
                continue
            i += 1
            spec = fmt[i] if i < len(fmt) else "%"
            i += 1
            if spec == "%":
                out.append("%")
                continue
            v = _arg(m, argi)
            argi += 1
            if spec == "d":
                out.append(str(v - (1 << 32) if v & 0x8000_0000 else v))
            elif spec == "u":
                out.append(str(v))
            elif spec == "x":
                out.append(f"{v:x}")
            elif spec == "c":
                out.append(chr(v & 0xFF))
            elif spec == "s":
                out.append(m.mem.read_cstring(v).decode(errors="replace"))
            else:
                out.append("%" + spec)
        data = "".join(out).encode()
        self._write_bytes(m, data)
        return len(data)

    # -- process ------------------------------------------------------------------------

    def _do_exit(self, m: Machine) -> Optional[int]:
        from ..kernel.kernel import SYS_EXIT

        m.syscall(SYS_EXIT, _arg(m, 0))
        return None  # unreachable

    def _do_abort(self, m: Machine) -> Optional[int]:
        from ..kernel.kernel import SIGILL, SYS_KILL

        m.syscall(SYS_KILL, m.tid, SIGILL)
        return 0

    # -- misc ---------------------------------------------------------------------------

    def _do_rand(self, m: Machine) -> int:
        # Numerical Recipes LCG; deterministic across runs and engines.
        self._rand_state = (self._rand_state * 1664525 + 1013904223) & M32
        return self._rand_state >> 1

    def _do_srand(self, m: Machine) -> int:
        self._rand_state = _arg(m, 0) or 1
        return 0

    def _do_atoi(self, m: Machine) -> int:
        s = m.mem.read_cstring(_arg(m, 0)).decode(errors="replace").strip()
        neg = s.startswith("-")
        if neg or s.startswith("+"):
            s = s[1:]
        v = 0
        for ch in s:
            if not ch.isdigit():
                break
            v = v * 10 + ord(ch) - 48
        return (-v if neg else v) & M32
