"""The ``valgrind``-style command-line launcher.

Usage::

    python -m repro --tool=memcheck [core/tool options] program.s [args...]

The "executable" is a vx32 assembly file (assembled with the standard
libc prelude) — our stand-in for an ELF binary.  A file whose first line
is ``#!name`` is treated as a *script*: the named interpreter program is
loaded instead, with the script's path as its first argument (mirroring
the loader behaviour described in Section 3.3).

Without ``--tool``, the program runs natively (the baseline).
"""

from __future__ import annotations

import sys
from typing import List, Optional

from .core.options import BadOption, Options, parse_argv
from .core.valgrind import Valgrind
from .guest.asm import AsmError, assemble
from .guest.program import VxImage
from .libc.stubs import build_source
from .native import run_native
from .tools import available_tools, create_tool

USAGE = """\
usage: python -m repro [--tool=<name>] [options] <program.s> [client args...]

tools: {tools}

core options:
  --smc-check=none|stack|all   self-modifying-code checking (default: stack)
  --max-stackframe=<bytes>     stack-switch heuristic threshold (default 2MB)
  --chaining=yes|no            translation chaining (default: no)
  --perf=yes|no                perf execution mode: compiled-code
                               memoization, full chaining, megacache
  --codegen=closures|pygen|auto
                               execution tier: per-insn closures (default),
                               specialized Python per block (pygen), or
                               closures promoted to pygen when hot (auto)
  --jit-threshold=<n>          auto tier: executions before a block is
                               promoted to pygen (default: 10)
  --stats=none|json            print run statistics to stderr (default: none)
  --precise-faults=yes|no      roll guest state to the exact faulting
                               instruction before delivering a signal
                               (default: yes)
  --signal-poll=<blocks>       async-signal latency bound for chained
                               execution (default: 100 blocks)
  --inject=<spec>              seeded fault injection, e.g.
                               mmap-enomem@3,eintr:0.05,seed=7
  --record=<file>              record every nondeterministic decision into
                               a replayable log
  --replay=<file>              re-execute a recorded run, verifying every
                               decision (divergence exits with code 97)
  --checkpoint-every=<insns>   while recording, snapshot full guest state
                               every N guest instructions
  --restore=<file>             resume from the last checkpoint in a log
  --log-file=<path>            send tool output to a file (default: stderr)
  --suppressions=<file>        load error suppressions
  --stack-size=<bytes>         client stack size
(unrecognised --options are offered to the tool)
"""


def load_image(path: str, *, filename: Optional[str] = None) -> VxImage:
    """Assemble a .s file (with the libc prelude) into an image.

    Recognises the ``#!interpreter`` script convention.
    """
    with open(path) as f:
        source = f.read()
    name = filename or path
    if source.startswith("#!"):
        interp = source.split("\n", 1)[0][2:].strip()
        img = VxImage(name=name, interpreter=interp)
        return img
    return assemble(build_source(source), filename=name)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(USAGE.format(tools=", ".join(available_tools())))
        return 0
    try:
        tool_name, options, rest = parse_argv(argv)
    except BadOption as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    if not rest:
        print("repro: no client program given", file=sys.stderr)
        return 2
    program_path, client_args = rest[0], rest[1:]
    try:
        image = load_image(program_path)
    except (OSError, AsmError) as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    client_argv = [program_path] + client_args

    if tool_name is None:
        if options.tool_options:
            print(
                f"repro: unrecognised options {options.tool_options} "
                "(no tool selected)",
                file=sys.stderr,
            )
            return 2
        result = run_native(image, client_argv)
        sys.stdout.write(result.stdout)
        sys.stderr.write(result.stderr)
        if result.fatal_signal is not None:
            print(f"repro: killed by signal {result.fatal_signal}", file=sys.stderr)
        return result.exit_code

    try:
        tool = create_tool(tool_name)
    except KeyError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    try:
        vg = Valgrind(tool, options)
    except ValueError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    from .core.replay import ReplayDivergence, ReplayError

    try:
        result = vg.run(image, client_argv, resolve_image=load_image)
    except ReplayDivergence as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 97
    except (ReplayError, BadOption) as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    sys.stdout.write(result.stdout)
    sys.stderr.write(result.stderr)
    if options.stats_format == "json":
        import json

        print(json.dumps(result.stats(), indent=2, sort_keys=True),
              file=sys.stderr)
    if result.outcome.fatal_signal is not None:
        print(
            f"repro: client killed by signal {result.outcome.fatal_signal}",
            file=sys.stderr,
        )
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
