"""The ``valgrind``-style command-line launcher.

Usage::

    python -m repro --tool=memcheck [core/tool options] program.s [args...]
    python -m repro fleet [fleet options] program.s [more programs...]

The "executable" is a vx32 assembly file (assembled with the standard
libc prelude) — our stand-in for an ELF binary.  A file whose first line
is ``#!name`` is treated as a *script*: the named interpreter program is
loaded instead, with the script's path as its first argument (mirroring
the loader behaviour described in Section 3.3).

Without ``--tool``, the program runs natively (the baseline).  Both
verbs are thin shells over the stable embedding facade in
:mod:`repro.api`: single runs over :func:`repro.api.run`, the ``fleet``
verb over :func:`repro.api.run_fleet`.
"""

from __future__ import annotations

import json
import sys
from typing import List, Optional

from .api import (
    BadOption,
    JobSpec,
    RetryPolicy,
    WatchdogConfig,
    parse_argv,
    run,
    run_fleet,
)
from .core.faultinject import BadInjectSpec, FleetInjector
from .tools import available_tools

USAGE = """\
usage: python -m repro [--tool=<name>] [options] <program.s> [client args...]
       python -m repro fleet [fleet options] <program.s> [more programs...]

tools: {tools}

core options:
  --smc-check=none|stack|all   self-modifying-code checking (default: stack)
  --max-stackframe=<bytes>     stack-switch heuristic threshold (default 2MB)
  --chaining=yes|no            translation chaining (default: no)
  --perf=yes|no                perf execution mode: compiled-code
                               memoization, full chaining, megacache
  --codegen=closures|pygen|auto|traces
                               execution tier: per-insn closures (default),
                               specialized Python per block (pygen),
                               closures promoted to pygen when hot (auto),
                               or pygen plus superblock traces compiled
                               over hot block chains (traces)
  --jit-threshold=<n>          auto tier: executions before a block is
                               promoted to pygen (default: 10)
  --trace-threshold=<n>        traces tier: executions before a block's
                               successor chain is recorded (default: 50)
  --max-trace-blocks=<n>       traces tier: member blocks per recorded
                               trace (default: 8)
  --stats=none|json            print run statistics to stderr (default: none)
  --stats-out=<file>           write the stats JSON to a file instead
                               ({{job}}/{{attempt}} expand under fleet)
  --precise-faults=yes|no      roll guest state to the exact faulting
                               instruction before delivering a signal
                               (default: yes)
  --signal-poll=<blocks>       async-signal latency bound for chained
                               execution (default: 100 blocks)
  --inject=<spec>              seeded fault injection, e.g.
                               mmap-enomem@3,eintr:0.05,seed=7
  --record=<file>              record every nondeterministic decision into
                               a replayable log
  --record-flush=<n>           while recording, atomically rewrite the log
                               every N events (crash-bundle prefixes)
  --replay=<file>              re-execute a recorded run, verifying every
                               decision (divergence exits with code 97)
  --checkpoint-every=<insns>   while recording, snapshot full guest state
                               every N guest instructions
  --restore=<file>             resume from the last checkpoint in a log
  --cache-dir=<dir>            persistent cross-process translation cache:
                               warm starts skip the whole decode/opt/
                               instrument/codegen pipeline
  --cache-max-mb=<mb>          on-disk cache size budget, LRU-evicted
                               (default: 256)
  --log-file=<path>            send tool output to a file (default: stderr)
  --suppressions=<file>        load error suppressions
  --stack-size=<bytes>         client stack size
(unrecognised --options are offered to the tool)

run "python -m repro fleet --help" for the fleet options
"""

FLEET_USAGE = """\
usage: python -m repro fleet [fleet options] <program.s> [more programs...]

Runs every given program as a job (replicated --repeat times) across a
crash-isolated worker pool with watchdog, seeded retry/backoff, codegen
tier degradation, and crash-bundle forensics.  Unrecognised --options
are applied to every job (core/tool options, e.g. --tool, --codegen).

fleet options:
  --workers=<n>              worker processes (default: 4)
  --repeat=<n>               replicate each program into N jobs (default: 1)
  --fleet-seed=<n>           seed for backoff jitter and fault plans
  --fleet-inject=<spec>      worker-level chaos, e.g.
                             kill:0.1,hang@4,pygen-poison:0.05,corrupt:0.2
  --max-retries=<n>          infrastructure retries per job (default: 2)
  --backoff-base=<secs>      first-retry backoff (default: 0.05)
  --jit-degrade-after=<n>    JIT failures before degrading the job to the
                             closures tier (default: 2)
  --wall-budget=<secs>       per-attempt wall-clock budget (default: 120)
  --heartbeat-timeout=<secs> reap a worker whose heartbeat is older than
                             this (default: 30)
  --block-budget=<n>         per-job guest block budget (exit 124)
  --fleet-dir=<dir>          crash-bundle directory (default: a tempdir)
  --bundles=yes|no           record crash bundles (default: yes)
  --verify-bundles=yes|no    replay each terminal-failure bundle in the
                             supervisor and report its endpoint
                             (default: no)
  --cache-dir=<dir>          shared persistent translation cache: opened
                             once before forking, so N workers translate
                             each block once fleet-wide
  --cache-max-mb=<mb>        shared cache size budget (default: 256)
  --stats=json               print the aggregated fleet report as JSON
                             on stdout
"""


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(USAGE.format(tools=", ".join(available_tools())))
        return 0
    if argv[0] == "fleet":
        return fleet_main(argv[1:])
    try:
        tool_name, options, rest = parse_argv(argv)
    except BadOption as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    if not rest:
        print("repro: no client program given", file=sys.stderr)
        return 2
    program_path, client_args = rest[0], rest[1:]
    client_argv = [program_path] + client_args

    if tool_name is None:
        if options.tool_options:
            print(
                f"repro: unrecognised options {options.tool_options} "
                "(no tool selected)",
                file=sys.stderr,
            )
            return 2
        result = run(program_path, None, options, argv=client_argv)
        if result.error is not None:
            print(f"repro: {result.error}", file=sys.stderr)
            return result.exit_code
        sys.stdout.write(result.stdout)
        sys.stderr.write(result.stderr)
        if result.fatal_signal is not None:
            print(f"repro: killed by signal {result.fatal_signal}",
                  file=sys.stderr)
        return result.exit_code

    result = run(program_path, tool_name, options, argv=client_argv)
    if result.error is not None:
        print(f"repro: {result.error}", file=sys.stderr)
        return result.exit_code
    sys.stdout.write(result.stdout)
    sys.stderr.write(result.stderr)
    if options.stats_format == "json":
        print(json.dumps(result.stats, indent=2, sort_keys=True),
              file=sys.stderr)
    if result.fatal_signal is not None:
        print(
            f"repro: client killed by signal {result.fatal_signal}",
            file=sys.stderr,
        )
    return result.exit_code


def _fleet_value(arg: str) -> str:
    return arg.split("=", 1)[1] if "=" in arg else ""


def fleet_main(argv: List[str]) -> int:
    if not argv or argv[0] in ("-h", "--help"):
        print(FLEET_USAGE)
        return 0
    workers, repeat, seed = 4, 1, 0
    inject: Optional[str] = None
    max_retries, backoff_base, jit_degrade_after = 2, 0.05, 2
    wall_budget, heartbeat_timeout = 120.0, 30.0
    block_budget: Optional[int] = None
    fleet_dir: Optional[str] = None
    cache_dir: Optional[str] = None
    cache_max_mb = 256
    bundles, verify_bundles, stats_json = True, False, False
    tool: Optional[str] = None
    job_flags: List[str] = []
    programs: List[str] = []

    try:
        for arg in argv:
            if not arg.startswith("--"):
                programs.append(arg)
                continue
            name = arg[2:].split("=", 1)[0]
            value = _fleet_value(arg)
            if name == "workers":
                workers = int(value, 0)
            elif name == "repeat":
                repeat = int(value, 0)
            elif name == "fleet-seed":
                seed = int(value, 0)
            elif name == "fleet-inject":
                FleetInjector(value)  # validate eagerly
                inject = value
            elif name == "max-retries":
                max_retries = int(value, 0)
            elif name == "backoff-base":
                backoff_base = float(value)
            elif name == "jit-degrade-after":
                jit_degrade_after = int(value, 0)
            elif name == "wall-budget":
                wall_budget = float(value)
            elif name == "heartbeat-timeout":
                heartbeat_timeout = float(value)
            elif name == "block-budget":
                block_budget = int(value, 0)
            elif name == "fleet-dir":
                fleet_dir = value
            elif name == "cache-dir":
                # Fleet-level: the supervisor pre-opens the cache and
                # appends the per-job flags itself.
                cache_dir = value
            elif name == "cache-max-mb":
                cache_max_mb = int(value, 0)
            elif name == "bundles":
                bundles = value != "no"
            elif name == "verify-bundles":
                verify_bundles = value == "yes"
            elif name == "tool":
                tool = value
            elif name == "stats" and value == "json":
                stats_json = True
                job_flags.append("--stats=json")
            else:
                job_flags.append(arg)
    except (ValueError, BadInjectSpec) as exc:
        print(f"repro fleet: {exc}", file=sys.stderr)
        return 2
    if not programs:
        print("repro fleet: no client program given", file=sys.stderr)
        return 2
    if repeat < 1 or workers < 1:
        print("repro fleet: --repeat and --workers must be >= 1",
              file=sys.stderr)
        return 2
    if cache_max_mb < 1:
        print("repro fleet: --cache-max-mb must be >= 1", file=sys.stderr)
        return 2

    jobs = []
    for program in programs:
        for _ in range(repeat):
            jobs.append(JobSpec(
                job_id=len(jobs),
                program=program,
                tool=tool,
                flags=list(job_flags),
                max_blocks=block_budget,
            ))
    if fleet_dir is None and bundles:
        import tempfile

        fleet_dir = tempfile.mkdtemp(prefix="repro-fleet-")
    report = run_fleet(
        jobs,
        workers=workers,
        policy=RetryPolicy(
            max_retries=max_retries,
            backoff_base=backoff_base,
            jit_degrade_after=jit_degrade_after,
            seed=seed,
        ),
        watchdog=WatchdogConfig(
            wall_budget=wall_budget,
            heartbeat_timeout=heartbeat_timeout,
        ),
        inject=inject,
        bundle_dir=fleet_dir if bundles else None,
        record_bundles=bundles,
        verify_bundles=verify_bundles,
        cache_dir=cache_dir,
        cache_max_mb=cache_max_mb,
    )
    summary = report["summary"]
    print(
        f"fleet: {report['fleet']['jobs']} jobs on "
        f"{report['fleet']['workers']} workers (seed {seed})",
        file=sys.stderr,
    )
    print(
        "fleet: " + " ".join(
            f"{state}={summary[state]}"
            for state in ("succeeded", "retried-then-succeeded",
                          "degraded-tier-succeeded", "terminal-failure")
        ),
        file=sys.stderr,
    )
    shipped = summary["bundles"]["shipped"]
    if shipped:
        b = summary["bundles"]
        print(
            f"fleet: bundles shipped={shipped} ok={b['ok']} "
            f"corrupt={b['corrupt']} missing={b['missing']} "
            f"dir={fleet_dir}",
            file=sys.stderr,
        )
    if stats_json:
        print(json.dumps(report.raw, indent=2, sort_keys=True))
    return 0 if summary["terminal-failure"] == 0 else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
