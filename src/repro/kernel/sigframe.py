"""Guest signal frames and the sigreturn trampoline.

Delivering a signal pushes a frame holding the interrupted context (all
integer registers, the condition-code thunk and the PC) onto the guest
stack, arranges for the handler to return into a tiny trampoline that
performs the ``sigreturn`` syscall, and redirects execution to the
handler.  ``sigreturn`` restores the saved context.

Both execution engines — the native RefCPU runner and the Valgrind
scheduler — share this code through a tiny register-access interface, so
signal semantics cannot drift between them.
"""

from __future__ import annotations

import struct
from typing import Optional, Protocol

from ..guest.regs import SP
from .kernel import ACCESS_CODES, SigInfo, SYS_SIGRETURN
from .memory import GuestMemory, PAGE_SIZE, PROT_RX

M32 = 0xFFFFFFFF

#: Saved context: r0..r7 (32) + cc thunk (16) + pc (4) + signal (4)
#: + siginfo fault address (4) + siginfo access-kind code (4).
FRAME_SIZE = 64
#: Offsets of the siginfo words within the frame (handlers can read them
#: at [sp + 8 + SIGINFO_*_OFF] on entry, since sp = frame - 8).
SIGINFO_ADDR_OFF = 56
SIGINFO_CODE_OFF = 60
#: Room for the handler argument and its return address.
FRAME_PUSH = FRAME_SIZE + 8


class RegContext(Protocol):
    """Register access both engines provide."""

    def get_reg(self, i: int) -> int: ...

    def set_reg_(self, i: int, v: int) -> None: ...

    def get_pc(self) -> int: ...

    def set_pc(self, v: int) -> None: ...

    def get_thunk(self) -> tuple: ...

    def set_thunk(self, op: int, dep1: int, dep2: int, ndep: int) -> None: ...


def install_sigpage(mem: GuestMemory, addr: int) -> None:
    """Map the trampoline page: ``movi r0, SYS_SIGRETURN; syscall``."""
    from ..guest.asm import Assembler

    src = f"__sigreturn_tramp:\n        movi r0, {SYS_SIGRETURN}\n        syscall\n"
    img = Assembler(text_base=addr).assemble(src)
    mem.map(addr, PAGE_SIZE, PROT_RX)
    seg = img.text_segment
    mem.write_raw(seg.addr, seg.data)


def push_signal_frame(
    ctx: RegContext, mem: GuestMemory, sig: int, handler: int, sigpage: int,
    siginfo: Optional[SigInfo] = None,
) -> None:
    """Save the interrupted context and redirect to *handler*."""
    sp = ctx.get_reg(SP)
    frame = (sp - FRAME_SIZE) & M32
    op, dep1, dep2, ndep = ctx.get_thunk()
    blob = struct.pack(
        "<8I4I2I2I",
        *[ctx.get_reg(i) for i in range(8)],
        op,
        dep1,
        dep2,
        ndep,
        ctx.get_pc(),
        sig,
        (siginfo.addr & M32) if siginfo is not None else 0,
        ACCESS_CODES.get(siginfo.access, 0) if siginfo is not None else 0,
    )
    mem.write(frame, blob)
    # Handler argument and return address (the trampoline).
    mem.store32(frame - 4, sig)
    mem.store32(frame - 8, sigpage)
    ctx.set_reg_(SP, (frame - 8) & M32)
    ctx.set_pc(handler)


def pop_signal_frame(ctx: RegContext, mem: GuestMemory) -> int:
    """Restore the context saved by :func:`push_signal_frame`.

    Called with SP as the sigreturn trampoline left it (the handler's
    ``ret`` consumed the return address, so SP = frame - 4).  Returns the
    signal number that was delivered.
    """
    frame = (ctx.get_reg(SP) + 4) & M32
    blob = mem.read(frame, FRAME_SIZE)
    vals = struct.unpack("<8I4I2I2I", blob)
    for i in range(8):
        ctx.set_reg_(i, vals[i])
    ctx.set_thunk(vals[8], vals[9], vals[10], vals[11])
    ctx.set_pc(vals[12])
    return vals[13]
