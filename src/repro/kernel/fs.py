"""An in-memory filesystem for the simulated kernel.

Provides regular files plus the three standard streams.  Guest programs'
stdout/stderr are captured into buffers the embedding code can read; this
is also what keeps tool output on a *side channel* (requirement R9): the
core and tools write through their own host-side logging, never through
the guest's descriptors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

# open() flags (matching the usual Unix values).
O_RDONLY = 0x0
O_WRONLY = 0x1
O_RDWR = 0x2
O_CREAT = 0x40
O_TRUNC = 0x200
O_APPEND = 0x400

# lseek whence.
SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2

# errno values we report.
EBADF = 9
ENOENT = 2
EACCES = 13
EINVAL = 22
EMFILE = 24


class FsError(Exception):
    def __init__(self, errno: int, msg: str = ""):
        super().__init__(msg or f"errno {errno}")
        self.errno = errno


@dataclass
class _OpenFile:
    name: str
    data: bytearray
    pos: int = 0
    flags: int = O_RDONLY
    stream: Optional[str] = None  # "stdin" | "stdout" | "stderr"


class FileSystem:
    """Flat in-memory filesystem with Unix-flavoured fd semantics."""

    MAX_FDS = 256

    def __init__(self) -> None:
        self.files: Dict[str, bytearray] = {}
        self.stdin = bytearray()
        self.stdout = bytearray()
        self.stderr = bytearray()
        self._fds: Dict[int, _OpenFile] = {
            0: _OpenFile("<stdin>", self.stdin, stream="stdin"),
            1: _OpenFile("<stdout>", self.stdout, flags=O_WRONLY, stream="stdout"),
            2: _OpenFile("<stderr>", self.stderr, flags=O_WRONLY, stream="stderr"),
        }

    # -- host-side conveniences ---------------------------------------------------

    def add_file(self, path: str, data: bytes) -> None:
        self.files[path] = bytearray(data)

    def set_stdin(self, data: bytes) -> None:
        self.stdin[:] = data
        self._fds[0].pos = 0

    def stdout_text(self) -> str:
        return self.stdout.decode(errors="replace")

    def stderr_text(self) -> str:
        return self.stderr.decode(errors="replace")

    # -- syscall backends -----------------------------------------------------------

    def _file(self, fd: int) -> _OpenFile:
        f = self._fds.get(fd)
        if f is None:
            raise FsError(EBADF, f"bad fd {fd}")
        return f

    def open(self, path: str, flags: int) -> int:
        if path not in self.files:
            if not flags & O_CREAT:
                raise FsError(ENOENT, f"no such file: {path}")
            self.files[path] = bytearray()
        data = self.files[path]
        if flags & O_TRUNC:
            del data[:]
        for fd in range(3, self.MAX_FDS):
            if fd not in self._fds:
                of = _OpenFile(path, data, flags=flags)
                if flags & O_APPEND:
                    of.pos = len(data)
                self._fds[fd] = of
                return fd
        raise FsError(EMFILE, "too many open files")

    def close(self, fd: int) -> None:
        if fd not in self._fds:
            raise FsError(EBADF, f"bad fd {fd}")
        if fd > 2:
            del self._fds[fd]

    def read(self, fd: int, n: int) -> bytes:
        f = self._file(fd)
        if f.stream in ("stdout", "stderr"):
            raise FsError(EBADF, "fd not open for reading")
        data = bytes(f.data[f.pos : f.pos + n])
        f.pos += len(data)
        return data

    def write(self, fd: int, data: bytes) -> int:
        f = self._file(fd)
        if f.stream == "stdin":
            raise FsError(EBADF, "fd not open for writing")
        if f.stream in ("stdout", "stderr"):
            f.data += data
            return len(data)
        end = f.pos + len(data)
        if f.pos > len(f.data):
            f.data += b"\0" * (f.pos - len(f.data))
        f.data[f.pos : end] = data
        f.pos = end
        return len(data)

    def lseek(self, fd: int, offset: int, whence: int) -> int:
        f = self._file(fd)
        if whence == SEEK_SET:
            new = offset
        elif whence == SEEK_CUR:
            new = f.pos + offset
        elif whence == SEEK_END:
            new = len(f.data) + offset
        else:
            raise FsError(EINVAL, f"bad whence {whence}")
        if new < 0:
            raise FsError(EINVAL, "negative seek")
        f.pos = new
        return new

    def size(self, fd: int) -> int:
        return len(self._file(fd).data)

    def unlink(self, path: str) -> None:
        if path not in self.files:
            raise FsError(ENOENT, f"no such file: {path}")
        del self.files[path]

    def is_open(self, fd: int) -> bool:
        return fd in self._fds
