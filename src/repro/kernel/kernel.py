"""The simulated kernel: system-call semantics, signals, timers.

The kernel implements what a vx32 "process" can ask of its OS — memory
management (brk/mmap/munmap/mremap), file I/O, signals, threads, time —
against the paged :class:`~repro.kernel.memory.GuestMemory` and in-memory
:class:`~repro.kernel.fs.FileSystem`.

It is deliberately engine-agnostic: both the *native* runner (RefCPU) and
the Valgrind core call :meth:`Kernel.syscall` with an ``engine`` object
that supplies thread operations.  Under Valgrind, calls arrive via the
core's system-call *wrappers*, which fire the R4/R6 events around this
call — exactly the paper's division of labour.

Thread-management behaviour is signalled to the engine with the special
return values :data:`BLOCKED` (the calling thread must wait) and
:data:`NO_RESULT` (the syscall does not write r0, e.g. sigreturn).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple
from collections import deque

from .fs import FileSystem, FsError
from .memory import (
    GuestFault,
    GuestMemory,
    PAGE_SIZE,
    PROT_READ,
    PROT_RW,
    PROT_WRITE,
)

M32 = 0xFFFFFFFF

# -- syscall numbers ----------------------------------------------------------

SYS_EXIT = 1
SYS_READ = 2
SYS_WRITE = 3
SYS_OPEN = 4
SYS_CLOSE = 5
SYS_BRK = 6
SYS_MMAP = 7
SYS_MUNMAP = 8
SYS_MREMAP = 9
SYS_GETTIME = 10
SYS_SIGACTION = 11
SYS_KILL = 12
SYS_ALARM = 13
SYS_THREAD_CREATE = 14
SYS_THREAD_EXIT = 15
SYS_THREAD_JOIN = 16
SYS_YIELD = 17
SYS_GETPID = 18
SYS_SIGRETURN = 19
SYS_LSEEK = 20
SYS_FSIZE = 21
SYS_SETTIME = 22
SYS_UNLINK = 23

SYSCALL_NAMES = {
    SYS_EXIT: "exit",
    SYS_READ: "read",
    SYS_WRITE: "write",
    SYS_OPEN: "open",
    SYS_CLOSE: "close",
    SYS_BRK: "brk",
    SYS_MMAP: "mmap",
    SYS_MUNMAP: "munmap",
    SYS_MREMAP: "mremap",
    SYS_GETTIME: "gettime",
    SYS_SIGACTION: "sigaction",
    SYS_KILL: "kill",
    SYS_ALARM: "alarm",
    SYS_THREAD_CREATE: "thread_create",
    SYS_THREAD_EXIT: "thread_exit",
    SYS_THREAD_JOIN: "thread_join",
    SYS_YIELD: "yield",
    SYS_GETPID: "getpid",
    SYS_SIGRETURN: "sigreturn",
    SYS_LSEEK: "lseek",
    SYS_FSIZE: "fsize",
    SYS_SETTIME: "settime",
    SYS_UNLINK: "unlink",
}

# -- signals --------------------------------------------------------------------

SIGHUP = 1
SIGINT = 2
SIGILL = 4
SIGFPE = 8
SIGKILL = 9
SIGUSR1 = 10
SIGSEGV = 11
SIGUSR2 = 12
SIGALRM = 14
SIGTERM = 15
NSIG = 32

#: Default disposition: True if the signal kills the process.
FATAL_BY_DEFAULT = {
    SIGHUP, SIGINT, SIGILL, SIGFPE, SIGKILL, SIGSEGV, SIGALRM, SIGTERM,
    SIGUSR1, SIGUSR2,
}

SIG_DFL = 0

SIGNAL_NAMES = {
    SIGHUP: "SIGHUP",
    SIGINT: "SIGINT",
    SIGILL: "SIGILL",
    SIGFPE: "SIGFPE",
    SIGKILL: "SIGKILL",
    SIGUSR1: "SIGUSR1",
    SIGSEGV: "SIGSEGV",
    SIGUSR2: "SIGUSR2",
    SIGALRM: "SIGALRM",
    SIGTERM: "SIGTERM",
}

# errno-style failures: syscalls return -errno & M32.
EINVAL = 22
ENOMEM = 12
ESRCH = 3
EINTR = 4
EFAULT = 14


@dataclass(frozen=True)
class SigInfo:
    """What caused a synchronous signal (the siginfo_t analogue).

    Carried alongside the signal number through the pending queues and
    into the signal frame, so guest handlers and the fatal-path reporter
    can see the faulting address and access kind.
    """

    sig: int
    #: Faulting guest address (the accessed address for SIGSEGV, the
    #: faulting instruction address for SIGILL/SIGFPE; 0 if unknown).
    addr: int = 0
    #: Access kind: "read" | "write" | "exec" | "fpe" | "ill" |
    #: "synthetic" | "" (async / unknown).
    access: str = ""
    #: PC of the faulting guest instruction (0 for async signals).
    pc: int = 0

    def describe(self) -> str:
        name = SIGNAL_NAMES.get(self.sig, f"signal {self.sig}")
        if self.access in ("read", "write", "exec"):
            return (f"{name}: bad {self.access} at address {self.addr:#x} "
                    f"(pc={self.pc:#x})")
        if self.access == "fpe":
            return f"{name}: integer division by zero at pc={self.pc:#x}"
        if self.access == "ill":
            return f"{name}: illegal/undecodable instruction at pc={self.pc:#x}"
        if self.access == "synthetic":
            return f"{name}: injected fault at pc={self.pc:#x}"
        return name


#: Numeric access-kind codes stored in signal frames (siginfo word 2).
ACCESS_CODES = {
    "": 0, "read": 1, "write": 2, "exec": 3, "fpe": 4, "ill": 5,
    "synthetic": 6,
}

#: Special syscall results directing the engine.
BLOCKED = "blocked"
NO_RESULT = "no-result"

#: How many simulated instructions one "microsecond" takes.
INSNS_PER_USEC = 10


class ProcessExit(Exception):
    """The whole process exited (syscall exit)."""

    def __init__(self, status: int):
        super().__init__(f"exit({status})")
        self.status = status & 0xFF


@dataclass
class Kernel:
    """Per-process kernel state."""

    memory: GuestMemory
    fs: FileSystem = field(default_factory=FileSystem)
    #: Current program break (set by the loader).
    brk_base: int = 0
    brk_cur: int = 0
    #: mmap search region.
    mmap_base: int = 0x4000_0000
    mmap_top: int = 0xB000_0000
    #: Address ranges the engine forbids the client from mapping (the
    #: Valgrind core reserves its own region here).
    forbidden: List[Tuple[int, int]] = field(default_factory=list)
    #: Per-signal handler addresses (SIG_DFL = 0).
    handlers: Dict[int, int] = field(default_factory=dict)
    #: Per-thread pending signal queues of (sig, Optional[SigInfo]).
    pending: Dict[int, Deque[Tuple[int, Optional[SigInfo]]]] = field(
        default_factory=dict
    )
    #: Armed virtual timers: (due instruction count, tid, signal).
    timers: List[Tuple[int, int, int]] = field(default_factory=list)
    #: Virtual-clock offset applied by settime.
    time_offset_usec: int = 0
    pid: int = 4242

    # -- memory helpers ---------------------------------------------------------

    def set_brk_base(self, addr: int) -> None:
        addr = (addr + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
        self.brk_base = addr
        self.brk_cur = addr

    def _is_forbidden(self, addr: int, size: int) -> bool:
        return any(addr < end and start < addr + size for start, end in self.forbidden)

    def _find_mmap_gap(self, size: int) -> Optional[int]:
        addr = self.mmap_base
        size = (size + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
        while addr + size <= self.mmap_top:
            if not self._is_forbidden(addr, size):
                for off in range(0, size, PAGE_SIZE):
                    if self.memory.is_mapped(addr + off):
                        break
                else:
                    return addr
            addr += PAGE_SIZE
        return None

    # -- signals -------------------------------------------------------------------

    def post_signal(self, tid: int, sig: int,
                    siginfo: Optional[SigInfo] = None) -> None:
        """Queue *sig* for thread *tid* (with optional fault details)."""
        self.pending.setdefault(tid, deque()).append((sig, siginfo))

    def next_pending(self, tid: int) -> Optional[int]:
        """Pop the next pending signal number (compatibility helper)."""
        entry = self.next_pending_info(tid)
        return None if entry is None else entry[0]

    def next_pending_info(self, tid: int) -> Optional[Tuple[int, Optional[SigInfo]]]:
        """Pop the next pending (signal, siginfo) pair for *tid*."""
        q = self.pending.get(tid)
        if q:
            return q.popleft()
        return None

    def has_pending(self, tid: int) -> bool:
        return bool(self.pending.get(tid))

    def handler_for(self, sig: int) -> int:
        return self.handlers.get(sig, SIG_DFL)

    def check_timers(self, now_insns: int) -> bool:
        """Fire any due timers; return True if a signal was posted."""
        fired = False
        still = []
        for due, tid, sig in self.timers:
            if now_insns >= due:
                self.post_signal(tid, sig)
                fired = True
            else:
                still.append((due, tid, sig))
        self.timers = still
        return fired

    def next_timer_due(self) -> Optional[int]:
        return min((due for due, _, _ in self.timers), default=None)

    # -- the syscall entry point -------------------------------------------------------

    def syscall(self, engine, tid: int, num: int, a1: int, a2: int, a3: int):
        """Execute syscall *num*; return the r0 result (or BLOCKED/NO_RESULT).

        *engine* must provide: ``guest_insns()``, ``create_thread(entry,
        sp, arg) -> tid``, ``exit_thread(tid, status)``, ``join_status(tid)
        -> Optional[int]``, ``sigreturn(tid)``.
        """
        mem = self.memory
        try:
            if num == SYS_EXIT:
                raise ProcessExit(a1)
            if num == SYS_READ:
                data = self.fs.read(a1, a3)
                mem.write(a2, data)
                return len(data)
            if num == SYS_WRITE:
                data = mem.read(a2, a3)
                return self.fs.write(a1, data)
            if num == SYS_OPEN:
                path = mem.read_cstring(a1).decode(errors="replace")
                return self.fs.open(path, a2)
            if num == SYS_CLOSE:
                self.fs.close(a1)
                return 0
            if num == SYS_BRK:
                return self._sys_brk(a1)
            if num == SYS_MMAP:
                return self._sys_mmap(a1, a2, a3)
            if num == SYS_MUNMAP:
                return self._sys_munmap(a1, a2)
            if num == SYS_MREMAP:
                return self._sys_mremap(a1, a2, a3)
            if num == SYS_GETTIME:
                usec = engine.guest_insns() // INSNS_PER_USEC + self.time_offset_usec
                mem.write(a1, struct.pack("<II", usec // 1_000_000, usec % 1_000_000))
                return 0
            if num == SYS_SETTIME:
                sec, usec = struct.unpack("<II", mem.read(a1, 8))
                now = engine.guest_insns() // INSNS_PER_USEC
                self.time_offset_usec = sec * 1_000_000 + usec - now
                return 0
            if num == SYS_SIGACTION:
                if not 1 <= a1 < NSIG or a1 == SIGKILL:
                    return (-EINVAL) & M32
                old = self.handlers.get(a1, SIG_DFL)
                self.handlers[a1] = a2
                return old
            if num == SYS_KILL:
                target = a1 if a1 else tid
                self.post_signal(target, a2)
                return 0
            if num == SYS_ALARM:
                self.timers.append((engine.guest_insns() + a1, tid, SIGALRM))
                return 0
            if num == SYS_THREAD_CREATE:
                return engine.create_thread(a1, a2, a3)
            if num == SYS_THREAD_EXIT:
                engine.exit_thread(tid, a1)
                return NO_RESULT
            if num == SYS_THREAD_JOIN:
                status = engine.join_status(a1)
                if status is None:
                    return BLOCKED
                return status & M32
            if num == SYS_YIELD:
                return 0
            if num == SYS_GETPID:
                return self.pid
            if num == SYS_SIGRETURN:
                engine.sigreturn(tid)
                return NO_RESULT
            if num == SYS_LSEEK:
                off = a2 - (1 << 32) if a2 & 0x8000_0000 else a2
                return self.fs.lseek(a1, off, a3) & M32
            if num == SYS_FSIZE:
                return self.fs.size(a1)
            if num == SYS_UNLINK:
                path = mem.read_cstring(a1).decode(errors="replace")
                self.fs.unlink(path)
                return 0
        except FsError as exc:
            return (-exc.errno) & M32
        except GuestFault:
            # A bad guest pointer handed to the kernel (read buffer,
            # string, struct) fails the call, as a real kernel's
            # copy_{from,to}_user would — never the host process.
            return (-EFAULT) & M32
        return (-EINVAL) & M32  # unknown syscall

    # -- memory syscalls ------------------------------------------------------------------

    def _sys_brk(self, addr: int) -> int:
        """brk(0) queries; otherwise move the break.  Returns the new break."""
        if addr == 0:
            return self.brk_cur
        if addr < self.brk_base:
            return self.brk_cur
        new_end = (addr + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
        old_end = (self.brk_cur + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
        if addr > self.brk_cur:
            if self._is_forbidden(old_end, new_end - old_end):
                return self.brk_cur  # refuse
            if new_end > old_end:
                self.memory.map(old_end, new_end - old_end, PROT_RW)
        elif addr < self.brk_cur and new_end < old_end:
            self.memory.unmap(new_end, old_end - new_end)
        self.brk_cur = addr
        return self.brk_cur

    def _sys_mmap(self, addr: int, length: int, prot: int) -> int:
        if length == 0:
            return (-EINVAL) & M32
        size = (length + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
        if addr == 0:
            addr = self._find_mmap_gap(size) or 0
            if addr == 0:
                return (-ENOMEM) & M32
        else:
            addr &= ~(PAGE_SIZE - 1)
            if self._is_forbidden(addr, size):
                return (-ENOMEM) & M32
        self.memory.map(addr, size, prot if prot else PROT_RW)
        return addr

    def _sys_munmap(self, addr: int, length: int) -> int:
        if addr & (PAGE_SIZE - 1) or length == 0:
            return (-EINVAL) & M32
        size = (length + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
        self.memory.unmap(addr, size)
        return 0

    def _sys_mremap(self, old_addr: int, old_len: int, new_len: int) -> int:
        """Grow/shrink a mapping, moving it if necessary (and copying the
        contents — the event the copy_mem_mremap callback shadows)."""
        if old_addr & (PAGE_SIZE - 1) or old_len == 0 or new_len == 0:
            return (-EINVAL) & M32
        old_size = (old_len + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
        new_size = (new_len + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
        if not self.memory.is_mapped(old_addr, old_size):
            return (-EFAULT) & M32
        if new_size <= old_size:
            if new_size < old_size:
                self.memory.unmap(old_addr + new_size, old_size - new_size)
            return old_addr
        # Try to extend in place.
        can_extend = not self.memory.is_mapped(old_addr + old_size) and not (
            self._is_forbidden(old_addr + old_size, new_size - old_size)
        )
        if can_extend:
            self.memory.map(old_addr + old_size, new_size - old_size, PROT_RW)
            return old_addr
        # Move: the data is copied to the new location.
        new_addr = self._find_mmap_gap(new_size)
        if new_addr is None:
            return (-ENOMEM) & M32
        data = self.memory.read_raw(old_addr, old_size)
        self.memory.map(new_addr, new_size, PROT_RW)
        self.memory.write_raw(new_addr, data)
        self.memory.unmap(old_addr, old_size)
        return new_addr
