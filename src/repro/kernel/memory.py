"""Paged guest memory with permissions.

This is the simulated user-mode address space: a sparse collection of 4KB
pages, each with read/write/execute permission bits.  Accesses that touch
unmapped pages or violate permissions raise :class:`GuestFault`, which the
execution machinery turns into a guest SIGSEGV.

All multi-byte accesses are little-endian, matching the IR's LDle/STle.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..ir.types import Ty
from ..ir.values import from_bytes, to_bytes

PAGE_SIZE = 4096
PAGE_SHIFT = 12

PROT_READ = 4
PROT_WRITE = 2
PROT_EXEC = 1
PROT_NONE = 0
PROT_RW = PROT_READ | PROT_WRITE
PROT_RX = PROT_READ | PROT_EXEC
PROT_RWX = PROT_READ | PROT_WRITE | PROT_EXEC


def prot_from_str(perms: str) -> int:
    prot = 0
    if "r" in perms:
        prot |= PROT_READ
    if "w" in perms:
        prot |= PROT_WRITE
    if "x" in perms:
        prot |= PROT_EXEC
    return prot


class GuestFault(Exception):
    """A memory access fault (unmapped address or permission violation)."""

    def __init__(self, addr: int, size: int, access: str, reason: str):
        super().__init__(f"{access} of {size} byte(s) at {addr:#x}: {reason}")
        self.addr = addr
        self.size = size
        self.access = access  # "read" | "write" | "exec"
        self.reason = reason


class GuestMemory:
    """The sparse, paged guest address space."""

    def __init__(self) -> None:
        # page number -> (bytearray, prot)
        self._pages: Dict[int, Tuple[bytearray, int]] = {}
        #: Pages known to contain decoded/cached instructions.  Guest
        #: stores into these pages invoke the coherence hooks, so CPUs can
        #: flush their instruction caches (x86-style icache coherence).
        self.code_pages: set = set()
        self.code_write_hooks: List = []

    def _note_code_write(self, addr: int, size: int) -> None:
        for hook in self.code_write_hooks:
            hook(addr, size)

    # -- mapping management ----------------------------------------------------

    def map(self, addr: int, size: int, prot: int) -> None:
        """Map (and zero) pages covering [addr, addr+size)."""
        if size <= 0:
            return
        first = addr >> PAGE_SHIFT
        last = (addr + size - 1) >> PAGE_SHIFT
        for pn in range(first, last + 1):
            if pn in self._pages:
                # Remapping an existing page resets permissions but, like
                # MAP_FIXED over an existing mapping, zeroes its contents.
                self._pages[pn] = (bytearray(PAGE_SIZE), prot)
            else:
                self._pages[pn] = (bytearray(PAGE_SIZE), prot)

    def unmap(self, addr: int, size: int) -> None:
        if size <= 0:
            return
        first = addr >> PAGE_SHIFT
        last = (addr + size - 1) >> PAGE_SHIFT
        for pn in range(first, last + 1):
            self._pages.pop(pn, None)

    def protect(self, addr: int, size: int, prot: int) -> None:
        if size <= 0:
            return
        first = addr >> PAGE_SHIFT
        last = (addr + size - 1) >> PAGE_SHIFT
        for pn in range(first, last + 1):
            page = self._pages.get(pn)
            if page is None:
                raise GuestFault(pn << PAGE_SHIFT, PAGE_SIZE, "protect", "unmapped")
            self._pages[pn] = (page[0], prot)

    def is_mapped(self, addr: int, size: int = 1) -> bool:
        if size <= 0:
            return True
        first = addr >> PAGE_SHIFT
        last = (addr + size - 1) >> PAGE_SHIFT
        return all(pn in self._pages for pn in range(first, last + 1))

    def prot_at(self, addr: int) -> Optional[int]:
        page = self._pages.get(addr >> PAGE_SHIFT)
        return None if page is None else page[1]

    def mapped_ranges(self) -> Iterator[Tuple[int, int, int]]:
        """Yield (start, size, prot) for maximal mapped runs."""
        pns = sorted(self._pages)
        i = 0
        while i < len(pns):
            start = pns[i]
            prot = self._pages[start][1]
            j = i
            while (
                j + 1 < len(pns)
                and pns[j + 1] == pns[j] + 1
                and self._pages[pns[j + 1]][1] == prot
            ):
                j += 1
            yield start << PAGE_SHIFT, (j - i + 1) << PAGE_SHIFT, prot
            i = j + 1

    # -- raw access (no permission checks; used by the loader and kernel) ------

    def write_raw(self, addr: int, data: bytes) -> None:
        pos = 0
        while pos < len(data):
            pn = (addr + pos) >> PAGE_SHIFT
            off = (addr + pos) & (PAGE_SIZE - 1)
            page = self._pages.get(pn)
            if page is None:
                raise GuestFault(addr + pos, len(data) - pos, "write", "unmapped")
            n = min(PAGE_SIZE - off, len(data) - pos)
            page[0][off : off + n] = data[pos : pos + n]
            pos += n

    def read_raw(self, addr: int, size: int) -> bytes:
        out = bytearray()
        pos = 0
        while pos < size:
            pn = (addr + pos) >> PAGE_SHIFT
            off = (addr + pos) & (PAGE_SIZE - 1)
            page = self._pages.get(pn)
            if page is None:
                raise GuestFault(addr + pos, size - pos, "read", "unmapped")
            n = min(PAGE_SIZE - off, size - pos)
            out += page[0][off : off + n]
            pos += n
        return bytes(out)

    # -- checked access ----------------------------------------------------------

    def _page_for(self, addr: int, size: int, need: int, access: str):
        page = self._pages.get(addr >> PAGE_SHIFT)
        if page is None:
            raise GuestFault(addr, size, access, "unmapped")
        if (page[1] & need) != need:
            raise GuestFault(addr, size, access, "permission denied")
        return page[0]

    def read(self, addr: int, size: int) -> bytes:
        """Permission-checked read of *size* bytes."""
        addr &= 0xFFFFFFFF
        off = addr & (PAGE_SIZE - 1)
        if off + size <= PAGE_SIZE:
            page = self._page_for(addr, size, PROT_READ, "read")
            return bytes(page[off : off + size])
        # Slow path: crosses pages.
        out = bytearray()
        pos = 0
        while pos < size:
            a = addr + pos
            o = a & (PAGE_SIZE - 1)
            page = self._page_for(a, size - pos, PROT_READ, "read")
            n = min(PAGE_SIZE - o, size - pos)
            out += page[o : o + n]
            pos += n
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        """Permission-checked write."""
        addr &= 0xFFFFFFFF
        size = len(data)
        off = addr & (PAGE_SIZE - 1)
        if off + size <= PAGE_SIZE:
            page = self._page_for(addr, size, PROT_WRITE, "write")
            page[off : off + size] = data
            if self.code_pages and (addr >> PAGE_SHIFT) in self.code_pages:
                self._note_code_write(addr, size)
            return
        pos = 0
        while pos < size:
            a = addr + pos
            o = a & (PAGE_SIZE - 1)
            page = self._page_for(a, size - pos, PROT_WRITE, "write")
            n = min(PAGE_SIZE - o, size - pos)
            page[o : o + n] = data[pos : pos + n]
            if self.code_pages and (a >> PAGE_SHIFT) in self.code_pages:
                self._note_code_write(a, n)
            pos += n

    def fetch(self, addr: int, size: int) -> bytes:
        """Execute-permission-checked read (instruction fetch)."""
        addr &= 0xFFFFFFFF
        off = addr & (PAGE_SIZE - 1)
        if off + size <= PAGE_SIZE:
            page = self._page_for(addr, size, PROT_EXEC, "exec")
            return bytes(page[off : off + size])
        out = bytearray()
        pos = 0
        while pos < size:
            a = addr + pos
            o = a & (PAGE_SIZE - 1)
            page = self._page_for(a, size - pos, PROT_EXEC, "exec")
            n = min(PAGE_SIZE - o, size - pos)
            out += page[o : o + n]
            pos += n
        return bytes(out)

    # -- typed access, for the IR execution paths ---------------------------------

    def load(self, addr: int, ty: Ty) -> object:
        return from_bytes(ty, self.read(addr, ty.size))

    def store(self, addr: int, ty: Ty, value: object) -> None:
        self.write(addr, to_bytes(ty, value))

    def load32(self, addr: int) -> int:
        return int.from_bytes(self.read(addr, 4), "little")

    def store32(self, addr: int, value: int) -> None:
        self.write(addr, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def read_cstring(self, addr: int, limit: int = 1 << 16) -> bytes:
        """Read a NUL-terminated string (used by syscalls and wrappers)."""
        out = bytearray()
        while len(out) < limit:
            b = self.read(addr + len(out), 1)[0]
            if b == 0:
                return bytes(out)
            out.append(b)
        raise GuestFault(addr, limit, "read", "unterminated string")
