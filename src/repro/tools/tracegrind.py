"""Tracegrind: a memory-access tracer.

This is the paper's worked example of a *lightweight* tool: "a tool that
traces memory accesses would be about 30 lines of code in Pin, and about
100 in Valgrind" (Section 5.1) — because under D&R the tool must walk the
IR rather than ask for per-instruction callbacks.  This file is that
~100-line Valgrind version; the ~30-line Pin version is
``repro.baseline.ca_tools.CATracer``.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.tool import Tool
from ..ir.block import IRSB
from ..ir.expr import Load, c32
from ..ir.stmt import Dirty, IMark, Store, WrTmp


class Tracegrind(Tool):
    """Records (kind, address, size) for every instruction and data access."""

    name = "tracegrind"
    description = "memory access tracer"

    MAX_EVENTS = 1_000_000

    def __init__(self) -> None:
        super().__init__()
        self.events: List[Tuple[str, int, int]] = []

    def pre_clo_init(self, core) -> None:
        super().pre_clo_init(core)
        core.helpers.register_dirty("trace_insn", self._insn)
        core.helpers.register_dirty("trace_load", self._load)
        core.helpers.register_dirty("trace_store", self._store)

    def _insn(self, env, addr: int, size: int) -> int:
        if len(self.events) < self.MAX_EVENTS:
            self.events.append(("I", addr, size))
        return 0

    def _load(self, env, addr: int, size: int) -> int:
        if len(self.events) < self.MAX_EVENTS:
            self.events.append(("L", addr, size))
        return 0

    def _store(self, env, addr: int, size: int) -> int:
        if len(self.events) < self.MAX_EVENTS:
            self.events.append(("S", addr, size))
        return 0

    def instrument(self, sb: IRSB) -> IRSB:
        out = sb.copy()
        stmts = []
        for s in out.stmts:
            if isinstance(s, IMark):
                stmts.append(s)
                stmts.append(Dirty("trace_insn", (c32(s.addr), c32(s.length))))
            elif isinstance(s, WrTmp) and isinstance(s.data, Load):
                stmts.append(
                    Dirty("trace_load", (s.data.addr, c32(s.data.ty.size)))
                )
                stmts.append(s)
            elif isinstance(s, Store):
                stmts.append(
                    Dirty("trace_store", (s.addr, c32(out.type_of(s.data).size)))
                )
                stmts.append(s)
            else:
                stmts.append(s)
        out.stmts = stmts
        return out

    def fini(self, exit_code: int) -> None:
        loads = sum(1 for k, _, _ in self.events if k == "L")
        stores = sum(1 for k, _, _ in self.events if k == "S")
        insns = sum(1 for k, _, _ in self.events if k == "I")
        self.core.log(
            f"tracegrind: {insns} instructions, {loads} loads, {stores} stores"
        )
