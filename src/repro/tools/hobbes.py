"""Hobbes: run-time type checking for binaries (after Burrows, Freund &
Wiener, CC 2003 — the paper's Section 1.2 list of shadow-value tools).

Every 32-bit value is shadowed by an abstract type tag, *inferred from
the operations performed on it*:

* ``UNKNOWN`` — nothing known yet (constants, fresh memory);
* ``INT`` — produced by multiplication, division, shifts, comparisons;
* ``PTR`` — the stack pointer, ``malloc``'s result, or anything a load
  or store dereferenced.

and the tool reports operations inappropriate for the inferred types:

* adding two pointers (``PtrPlusPtr``);
* multiplying/dividing/shifting a pointer (``PtrArith``);
* dereferencing a value that arithmetic proved to be a plain integer
  (``IntDeref``).

Pointer minus pointer is *legal* and yields an INT (a ptrdiff) — the
classic case a naive rule set gets wrong.

Like Memcheck and TaintCheck this is a full shadow-value tool: shadow
registers live at ThreadState+320, shadow memory holds one tag per byte
(replicated across each word), and the tags flow through pure IR with a
handful of guarded error helpers.  It exists to demonstrate the paper's
point that the framework supports *families* of such tools, not just
Memcheck.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.tool import Tool
from ..guest.regs import GUEST_STATE_SIZE, OFFSET_PC, SHADOW_OFFSET, SP, gpr_offset
from ..ir.block import IRSB
from ..ir.expr import Binop, CCall, Const, Expr, Get, ITE, Load, RdTmp, Unop, c32, const
from ..ir.stmt import Dirty, Exit, IMark, NoOp, Put, StateFx, Store, WrTmp
from ..ir.types import Ty
from ..opt.flatten import flatten
from .memcheck.instrument import SHADOW_TY
from .memcheck.shadow import ShadowMemory

# Type tags (stored as I32 in register shadows, one byte per byte in
# shadow memory).
UNKNOWN = 0
INT = 1
PTR = 2

TAG_NAMES = {UNKNOWN: "unknown", INT: "int", PTR: "ptr"}

_LOADTAG = {1: "hb_LOADTAG8", 2: "hb_LOADTAG16", 4: "hb_LOADTAG32",
            8: "hb_LOADTAG64", 16: "hb_LOADTAG128"}
_STORETAG = {1: "hb_STORETAG8", 2: "hb_STORETAG16", 4: "hb_STORETAG32",
             8: "hb_STORETAG64", 16: "hb_STORETAG128"}

_ERRFX = (StateFx(False, gpr_offset(SP), 4), StateFx(False, OFFSET_PC, 4))


class Hobbes(Tool):
    """Value-type inference and misuse detection."""

    name = "hobbes"
    description = "run-time type checking: flags pointer/int misuse"

    def __init__(self) -> None:
        super().__init__()
        # Tag-per-byte map; everything starts UNKNOWN (= tag 0, "defined").
        self.shadow = ShadowMemory(default="defined")
        self.checks = 0

    # -- lifecycle --------------------------------------------------------------

    def pre_clo_init(self, core) -> None:
        super().pre_clo_init(core)
        for size, name in _LOADTAG.items():
            core.helpers.register_dirty(name, self._mk_load(size))
        for size, name in _STORETAG.items():
            core.helpers.register_dirty(name, self._mk_store(size))
        core.helpers.register_dirty("hb_ptr_plus_ptr", self._err_ptr_plus_ptr)
        core.helpers.register_dirty("hb_ptr_arith", self._err_ptr_arith)
        core.helpers.register_dirty("hb_int_deref", self._err_int_deref)
        core.redirector.wrap_libc("malloc", self._wrap_alloc)
        core.redirector.wrap_libc("calloc", self._wrap_alloc)
        core.redirector.wrap_libc("realloc", self._wrap_alloc)

    def post_clo_init(self) -> None:
        # The initial stack pointer is, definitionally, a pointer.
        ts = self.core.scheduler.threads[1]
        ts.put(gpr_offset(SP) + SHADOW_OFFSET, Ty.I32, PTR)

    def _wrap_alloc(self, machine, call_original) -> None:
        call_original()
        # malloc's result is a pointer: tag the register shadow.
        sched = self.core.scheduler
        ts = sched.threads[machine.tid]
        ts.put(gpr_offset(0) + SHADOW_OFFSET, Ty.I32, PTR)

    # -- helpers -----------------------------------------------------------------

    def _mk_load(self, size: int):
        def load(env, addr: int) -> int:
            # One tag per byte; a word's tag is its low byte's.
            return self.shadow.load_vbits(addr, 1) & 0xFF

        return load

    def _mk_store(self, size: int):
        def store(env, addr: int, tag: int) -> int:
            tag &= 0xFF
            self.shadow.store_vbits(addr, size,
                                    int.from_bytes(bytes([tag]) * size, "little"))
            return 0

        return store

    def _err_ptr_plus_ptr(self, env) -> int:
        self.core.record_error(
            "PtrPlusPtr", "Addition of two pointer-typed values"
        )
        return 0

    def _err_ptr_arith(self, env) -> int:
        self.core.record_error(
            "PtrArith",
            "Multiplicative/shift arithmetic on a pointer-typed value",
        )
        return 0

    def _err_int_deref(self, env) -> int:
        self.core.record_error(
            "IntDeref", "Dereference of a value typed as a plain integer"
        )
        return 0

    # -- instrumentation -------------------------------------------------------------

    def instrument(self, sb: IRSB) -> IRSB:
        ctx = _HobbesCtx(self, sb)
        ctx.run()
        return flatten(ctx.out)

    def fini(self, exit_code: int) -> None:
        self.core.log(
            f"hobbes: {self.core.error_mgr.total_errors} type violations "
            f"from {self.core.error_mgr.unique_errors} sites"
        )
        self.core.error_mgr.summarise()


def _is_ptr(e: Expr) -> Expr:
    return Binop("CmpEQ32", e, c32(PTR))


def _combine_add(ta: Expr, tb: Expr) -> Expr:
    """Tag of an addition: PTR wins; INT survives only when *both* sides
    are proven INT (an UNKNOWN side may be an address constant — e.g. a
    table base — so INT+UNKNOWN must stay UNKNOWN or every indexed load
    would be a false positive)."""
    either_ptr = Binop("Or32", Binop("And32", ta, c32(2)),
                       Binop("And32", tb, c32(2)))
    both_int = Binop("And1", Binop("CmpEQ32", ta, c32(INT)),
                     Binop("CmpEQ32", tb, c32(INT)))
    return ITE(
        Unop("CmpNEZ32", either_ptr),
        c32(PTR),
        ITE(both_int, c32(INT), c32(UNKNOWN)),
    )


class _HobbesCtx:
    """Per-block tag-propagation instrumenter."""

    def __init__(self, tool: Hobbes, sb: IRSB):
        self.tool = tool
        self.sb = sb
        self.out = IRSB(tyenv=dict(sb.tyenv), jumpkind=sb.jumpkind,
                        guest_addr=sb.guest_addr)
        self.shadow_tmp: Dict[int, int] = {}

    def s_tmp(self, tmp: int) -> int:
        s = self.shadow_tmp.get(tmp)
        if s is None:
            # Tags for non-I32 values collapse to I32 (word-typed world).
            s = self.out.new_tmp(Ty.I32)
            self.shadow_tmp[tmp] = s
        return s

    def s_atom(self, e: Expr) -> Expr:
        if isinstance(e, Const):
            return c32(UNKNOWN)
        return RdTmp(self.s_tmp(e.tmp))

    def _guarded(self, helper: str, guard_expr: Expr) -> None:
        g = self.out.assign_new(guard_expr)
        self.out.add(Dirty(helper, (), guard=g, state_fx=_ERRFX))

    def texpr(self, e: Expr) -> Expr:
        sb, out = self.sb, self.out
        if isinstance(e, (Const, RdTmp)):
            return self.s_atom(e)
        if isinstance(e, Get):
            if e.offset >= GUEST_STATE_SIZE or e.ty is not Ty.I32:
                return c32(UNKNOWN)
            return Get(e.offset + SHADOW_OFFSET, Ty.I32)
        if isinstance(e, Load):
            # Check the address' tag, then fetch the loaded value's tag.
            ta = self.s_atom(e.addr)
            self._guarded("hb_int_deref", Binop("CmpEQ32", ta, c32(INT)))
            t = out.new_tmp(Ty.I32)
            out.add(Dirty(_LOADTAG[e.ty.size], (e.addr,), tmp=t, retty=Ty.I32))
            return RdTmp(t)
        if isinstance(e, Unop):
            op = e.op
            if op.startswith(("Not", "Neg")):
                return self.s_atom(e.arg)
            if op.startswith(("CmpNEZ", "CmpEQZ", "Clz", "Ctz", "Popcnt")):
                return c32(INT)
            return c32(UNKNOWN)
        if isinstance(e, Binop):
            op = e.op
            ta = self.s_atom(e.arg1)
            tb = self.s_atom(e.arg2)
            if op.startswith("Add") and op[-1].isdigit():
                self._guarded(
                    "hb_ptr_plus_ptr",
                    Binop("And1", _is_ptr(ta), _is_ptr(tb)),
                )
                return _combine_add(ta, tb)
            if op.startswith("Sub") and op[-1].isdigit():
                # ptr - ptr is a ptrdiff (INT); ptr - int stays a ptr.
                both_ptr = Binop("And1", _is_ptr(ta), _is_ptr(tb))
                return ITE(both_ptr, c32(INT), _combine_add(ta, tb))
            if op.startswith(("Mul", "Div", "Mod", "Shl", "Shr", "Sar",
                              "Rol", "Ror", "Mull")):
                self._guarded(
                    "hb_ptr_arith",
                    Binop("Or1", _is_ptr(ta), _is_ptr(tb)),
                )
                return c32(INT)
            if op.startswith(("And", "Or", "Xor")):
                # Masking a pointer (alignment tricks) keeps it a pointer.
                return _combine_add(ta, tb)
            if op.startswith("Cmp"):
                return c32(INT)
            return c32(UNKNOWN)
        if isinstance(e, ITE):
            return ITE(e.cond, self.s_atom(e.iftrue), self.s_atom(e.iffalse))
        if isinstance(e, CCall):
            return c32(INT)  # condition-code helpers yield integers
        raise TypeError(f"hobbes cannot shadow {e!r}")

    def run(self) -> None:
        sb, out = self.sb, self.out
        for s in sb.stmts:
            if isinstance(s, (NoOp, IMark)):
                out.add(s)
            elif isinstance(s, WrTmp):
                out.add(WrTmp(self.s_tmp(s.tmp), self.texpr(s.data)))
                out.add(s)
            elif isinstance(s, Put):
                if s.offset < GUEST_STATE_SIZE and sb.type_of(s.data) is Ty.I32:
                    out.add(Put(s.offset + SHADOW_OFFSET, self.s_atom(s.data)))
                out.add(s)
            elif isinstance(s, Store):
                ta = self.s_atom(s.addr)
                self._guarded("hb_int_deref", Binop("CmpEQ32", ta, c32(INT)))
                # Storing *through* a value proves it is a pointer — but at
                # this point it is an atom; tag its shadow via memory only.
                ty = sb.type_of(s.data)
                tag = self.s_atom(s.data) if ty is Ty.I32 else c32(UNKNOWN)
                out.add(Dirty(_STORETAG[ty.size], (s.addr, tag)))
                out.add(s)
            elif isinstance(s, Exit):
                out.add(s)
            elif isinstance(s, Dirty):
                out.add(s)
                for fx in s.state_fx:
                    if fx.write and fx.offset < GUEST_STATE_SIZE:
                        out.add(Put(fx.offset + SHADOW_OFFSET, c32(UNKNOWN)))
                if s.tmp is not None:
                    out.add(WrTmp(self.s_tmp(s.tmp), c32(UNKNOWN)))
            else:
                raise TypeError(f"hobbes cannot instrument {s!r}")
        out.next = sb.next
