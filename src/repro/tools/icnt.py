"""Instruction-counting tools (Section 5.4's ICntI and ICntC).

Both count every guest instruction executed.  ``ICntI`` increments a
counter with *inline* IR; ``ICntC`` calls a C-function helper per
instruction.  The gap between them is the paper's measurement of the
advantage of inline analysis code over helper calls (geomeans 8.8x vs
13.5x) — an advantage only a D&R framework gives tools for free.

The counter lives in guest memory allocated from the *core's* arena (so
it never collides with client data), and is a 64-bit value updated with
ordinary IR loads/stores: analysis code is as expressive as client code.
"""

from __future__ import annotations

from ..core.tool import Tool
from ..ir.block import IRSB
from ..ir.expr import Binop, Const, Load, RdTmp, c32, c64
from ..ir.stmt import Dirty, IMark, Store, WrTmp
from ..ir.types import Ty


class ICntI(Tool):
    """Instruction counter using inline analysis code."""

    name = "icnt-inline"
    description = "per-instruction counter, inline IR increments"

    def __init__(self) -> None:
        super().__init__()
        self.counter_addr = 0

    def pre_clo_init(self, core) -> None:
        super().pre_clo_init(core)
        self.counter_addr = core.allocator.alloc(8)

    @property
    def count(self) -> int:
        return int.from_bytes(self.core.memory.read_raw(self.counter_addr, 8),
                              "little")

    def instrument(self, sb: IRSB) -> IRSB:
        out = sb.copy()
        stmts = []
        addr = c32(self.counter_addr)
        for s in out.stmts:
            stmts.append(s)
            if isinstance(s, IMark):
                # counter += 1, entirely inline.
                t_old = out.new_tmp(Ty.I64)
                t_new = out.new_tmp(Ty.I64)
                stmts.append(WrTmp(t_old, Load(Ty.I64, addr)))
                stmts.append(WrTmp(t_new, Binop("Add64", RdTmp(t_old), c64(1))))
                stmts.append(Store(addr, RdTmp(t_new)))
        out.stmts = stmts
        return out

    def fini(self, exit_code: int) -> None:
        self.core.log(f"icnt-inline: executed {self.count} instructions")


class ICntC(Tool):
    """Instruction counter using a helper-call per instruction."""

    name = "icnt-call"
    description = "per-instruction counter, helper call increments"

    HELPER = "icnt_increment"

    def __init__(self) -> None:
        super().__init__()
        self.count = 0

    def pre_clo_init(self, core) -> None:
        super().pre_clo_init(core)
        core.helpers.register_dirty(self.HELPER, self._increment)

    def _increment(self, env) -> int:
        self.count += 1
        return 0

    def instrument(self, sb: IRSB) -> IRSB:
        out = sb.copy()
        stmts = []
        for s in out.stmts:
            stmts.append(s)
            if isinstance(s, IMark):
                stmts.append(Dirty(self.HELPER, ()))
        out.stmts = stmts
        return out

    def fini(self, exit_code: int) -> None:
        self.core.log(f"icnt-call: executed {self.count} instructions")
