"""Nulgrind: the null tool.

Adds no analysis code; measures the framework's base overhead (the
"no-instrumentation case" of Table 2).  In Valgrind 3.2.1 this tool was
39 lines of C; the whole of it is the default `instrument` method.
"""

from __future__ import annotations

from ..core.tool import Tool


class Nulgrind(Tool):
    """The tool that does nothing."""

    name = "none"
    description = "the null tool (no instrumentation)"
