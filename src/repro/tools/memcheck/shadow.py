"""Memcheck's shadow memory: A (addressability) and V (validity) bits.

Every byte of guest memory is shadowed by one A bit (may it be accessed at
all?) and eight V bits (which of its bits hold defined values?) — the
bit-precise definedness tracking of the paper.  V-bit convention: a set
bit means *undefined*.

The table is two-level, like the real thing [19]: a page map whose
entries are either one of two *distinguished secondaries* — shared
read-only pages meaning "entirely noaccess" and "entirely addressable and
defined", by far the common cases — or a private (A-bytes, V-bytes) pair,
created copy-on-write the first time a page needs byte-level state.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
_PMASK = PAGE_SIZE - 1

# Distinguished secondary markers.
_NOACCESS = "noaccess"
_DEFINED = "defined"

#: All-undefined V byte.
VBITS_UNDEF = 0xFF
VBITS_DEF = 0x00


class ShadowMemory:
    """The A/V-bit table over the 32-bit guest address space."""

    def __init__(self, default: str = "noaccess") -> None:
        # page number -> _NOACCESS | _DEFINED | (abits, vbits) bytearrays.
        # Missing pages take the default state: "noaccess" for Memcheck,
        # "defined" for tools (like taint trackers) whose neutral state is
        # all-clean.
        if default not in ("noaccess", "defined"):
            raise ValueError(f"bad default {default!r}")
        self._default = _NOACCESS if default == "noaccess" else _DEFINED
        self._pages: Dict[int, object] = {}

    # -- page helpers -----------------------------------------------------------

    def _private(self, pn: int):
        """Get a writable (abits, vbits) pair for page *pn* (copy on write)."""
        page = self._pages.get(pn, self._default)
        if isinstance(page, tuple):
            return page
        if page is _NOACCESS:
            pair = (bytearray(PAGE_SIZE), bytearray(b"\xff" * PAGE_SIZE))
        else:  # _DEFINED
            pair = (bytearray(b"\x01" * PAGE_SIZE), bytearray(PAGE_SIZE))
        self._pages[pn] = pair
        return pair

    # -- range operations (the make_mem_* callbacks) --------------------------------

    def _set_range(self, addr: int, size: int, a: int, v: int, marker=None) -> None:
        addr &= 0xFFFFFFFF
        end = addr + size
        while addr < end:
            pn = addr >> PAGE_SHIFT
            off = addr & _PMASK
            n = min(PAGE_SIZE - off, end - addr)
            if n == PAGE_SIZE and marker is not None:
                self._pages[pn] = marker
            else:
                abits, vbits = self._private(pn)
                abits[off : off + n] = bytes([a]) * n
                vbits[off : off + n] = bytes([v]) * n
            addr += n

    def make_noaccess(self, addr: int, size: int) -> None:
        if size > 0:
            self._set_range(addr, size, 0, VBITS_UNDEF, _NOACCESS)

    def make_undefined(self, addr: int, size: int) -> None:
        if size > 0:
            # There is no full-page marker for "addressable but undefined".
            self._set_range(addr, size, 1, VBITS_UNDEF)

    def make_defined(self, addr: int, size: int) -> None:
        if size > 0:
            self._set_range(addr, size, 1, VBITS_DEF, _DEFINED)

    # -- byte-level access ------------------------------------------------------------

    def get_abit(self, addr: int) -> int:
        page = self._pages.get((addr & 0xFFFFFFFF) >> PAGE_SHIFT, self._default)
        if page is _NOACCESS:
            return 0
        if page is _DEFINED:
            return 1
        return page[0][addr & _PMASK]

    def get_vbyte(self, addr: int) -> int:
        page = self._pages.get((addr & 0xFFFFFFFF) >> PAGE_SHIFT, self._default)
        if page is _NOACCESS:
            return VBITS_UNDEF
        if page is _DEFINED:
            return VBITS_DEF
        return page[1][addr & _PMASK]

    def set_vbyte(self, addr: int, v: int) -> None:
        addr &= 0xFFFFFFFF
        abits, vbits = self._private(addr >> PAGE_SHIFT)
        vbits[addr & _PMASK] = v & 0xFF

    # -- word-level access (the LOADV/STOREV backends) -----------------------------------

    def check_addressable(self, addr: int, size: int) -> Optional[int]:
        """Return the first unaddressable address in the range, or None."""
        addr &= 0xFFFFFFFF
        end = addr + size
        a = addr
        while a < end:
            pn = a >> PAGE_SHIFT
            page = self._pages.get(pn, self._default)
            if page is _DEFINED:
                a = (pn + 1) << PAGE_SHIFT
                continue
            if page is _NOACCESS:
                return a
            abits = page[0]
            n = min(PAGE_SIZE - (a & _PMASK), end - a)
            off = a & _PMASK
            chunk = abits[off : off + n]
            if 0 in chunk:
                return a + chunk.index(0)
            a += n
        return None

    def load_vbits(self, addr: int, size: int) -> int:
        """V bits for a little-endian load of *size* bytes (unaddressable
        bytes read as undefined)."""
        addr &= 0xFFFFFFFF
        pn = addr >> PAGE_SHIFT
        off = addr & _PMASK
        page = self._pages.get(pn, self._default)
        if off + size <= PAGE_SIZE:
            if page is _DEFINED:
                return 0
            if page is _NOACCESS:
                return (1 << (8 * size)) - 1
            return int.from_bytes(page[1][off : off + size], "little")
        v = 0
        for i in range(size):
            v |= self.get_vbyte(addr + i) << (8 * i)
        return v

    def store_vbits(self, addr: int, size: int, vbits: int) -> None:
        """Write V bits for a little-endian store (A bits unchanged)."""
        addr &= 0xFFFFFFFF
        pn = addr >> PAGE_SHIFT
        off = addr & _PMASK
        if off + size <= PAGE_SIZE:
            page = self._pages.get(pn, self._default)
            if page is _DEFINED and vbits == 0:
                return
            abits, vb = self._private(pn)
            vb[off : off + size] = vbits.to_bytes(size, "little")
            return
        for i in range(size):
            self.set_vbyte(addr + i, (vbits >> (8 * i)) & 0xFF)

    def copy_range(self, src: int, dst: int, size: int) -> None:
        """Copy both A and V bits (mremap, realloc, memcpy wrappers)."""
        # Read out first in case the ranges overlap.
        a = [self.get_abit(src + i) for i in range(size)]
        v = [self.get_vbyte(src + i) for i in range(size)]
        for i in range(size):
            pn = ((dst + i) & 0xFFFFFFFF) >> PAGE_SHIFT
            abits, vbits = self._private(pn)
            abits[(dst + i) & _PMASK] = a[i]
            vbits[(dst + i) & _PMASK] = v[i]

    # -- inspection --------------------------------------------------------------------

    def first_undefined(self, addr: int, size: int) -> Optional[int]:
        """First address in the range whose V byte is not fully defined."""
        for i in range(size):
            if self.get_vbyte(addr + i) != 0:
                return addr + i
        return None

    def stats(self) -> Tuple[int, int, int]:
        """(noaccess pages, fully-defined pages, private pages) in the map."""
        na = df = pv = 0
        for page in self._pages.values():
            if page is _NOACCESS:
                na += 1
            elif page is _DEFINED:
                df += 1
            else:
                pv += 1
        return na, df, pv
