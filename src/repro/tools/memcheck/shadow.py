"""Memcheck's shadow memory: A (addressability) and V (validity) bits.

Every byte of guest memory is shadowed by one A bit (may it be accessed at
all?) and eight V bits (which of its bits hold defined values?) — the
bit-precise definedness tracking of the paper.  V-bit convention: a set
bit means *undefined*.

The table is two-level, like the real thing [19]: a primary page map
whose entries are either one of three *distinguished secondaries* —
shared read-only pages meaning "entirely noaccess", "entirely
addressable and defined" and "entirely addressable but undefined", by
far the common cases — or a private flat ``(abits, vbits)`` bytearray
pair, created copy-on-write the first time a page needs byte-level
state.  All range operations (``make_*``, ``copy_range``,
``check_addressable``, ``first_undefined``) work per-page via slice
assignment and C-level scans (``find``/``count``/``lstrip``), never
byte-at-a-time Python loops, so memcpy/memset-sized libc and syscall
paths cost O(pages).

Fast-path exposure: two page-number -> ``(abits, vbits)`` secondary
dicts are maintained for the pygen codegen tier (see ``backend.pygen``):

* ``_fast_rd`` maps every addressable-capable page to its secondary —
  private pages to their live bytearray pair, distinguished
  defined/undefined pages to a shared immutable ``bytes`` pair — so an
  inlined LOADV is one dict probe, an inline A-bit range check, and a
  V-byte slice read.
* ``_fast_wr`` maps only *private* pages (the only ones an inlined
  STOREV may mutate); distinguished pages must go through
  :meth:`store_vbits` so copy-on-write promotion still happens there.

Emitted code checks the A bits of the accessed range inline and falls
back to the helper when any byte is unaddressable (that is the
error-reporting path), so partially-addressable pages — the top of the
stack, heap pages with red zones — stay fast for their valid bytes.
The dict objects (and the bound ``fast_rd_get``/``fast_wr_get``
accessors) are stable for the life of the ShadowMemory, so generated
code can close over them once; private secondaries keep their identity
across A/V mutations, so map entries never go stale.

Optional numpy acceleration for the private-page scan in
:meth:`first_undefined` is enabled only when ``REPRO_NUMPY=1`` *and*
numpy imports — never a hard dependency; the pure-Python path uses
C-level ``bytes`` primitives and is O(pages) too.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
_PMASK = PAGE_SIZE - 1
_M32 = 0xFFFFFFFF

# Distinguished secondary markers (interned, compared by identity).
_NOACCESS = "noaccess"
_DEFINED = "defined"
_UNDEFINED = "undefined"

#: All-undefined V byte.
VBITS_UNDEF = 0xFF
VBITS_DEF = 0x00

#: Shared flat patterns backing the distinguished secondaries.  The
#: pages are immutable ``bytes`` on purpose: they appear (as shared
#: pairs) in the *read* fast map, and nothing may ever assign through
#: them.
_A_ONES = b"\x01" * PAGE_SIZE
_VB_ALL_DEF = bytes(PAGE_SIZE)
_VB_ALL_UNDEF = b"\xff" * PAGE_SIZE
#: Shared read-only secondaries for the read fast map.
_PAIR_DEF = (_A_ONES, _VB_ALL_DEF)
_PAIR_UNDEF = (_A_ONES, _VB_ALL_UNDEF)

#: numpy probe: opt-in via REPRO_NUMPY=1, silently absent otherwise.
if os.environ.get("REPRO_NUMPY") == "1":  # pragma: no cover - env probe
    try:
        import numpy as _np
    except Exception:
        _np = None
else:
    _np = None


class ShadowMemory:
    """The A/V-bit table over the 32-bit guest address space."""

    def __init__(self, default: str = "noaccess") -> None:
        # page number -> _NOACCESS | _DEFINED | _UNDEFINED marker or a
        # private (abits, vbits) bytearray pair.  Missing pages take the
        # default state: "noaccess" for Memcheck, "defined" for tools
        # (like taint trackers) whose neutral state is all-clean.
        if default not in ("noaccess", "defined"):
            raise ValueError(f"bad default {default!r}")
        self._default = _NOACCESS if default == "noaccess" else _DEFINED
        self._pages: Dict[int, object] = {}
        #: Fast-path maps (see module docstring).  Their identity is
        #: stable: generated code binds ``fast_rd_get``/``fast_wr_get``.
        self._fast_rd: Dict[int, tuple] = {}
        self._fast_wr: Dict[int, tuple] = {}
        self.fast_rd_get = self._fast_rd.get
        self.fast_wr_get = self._fast_wr.get
        #: Distinguished-secondary pages privatized on first write.
        self.cow_promotions = 0

    # -- page helpers -----------------------------------------------------------

    def _private(self, pn: int) -> Tuple[bytearray, bytearray]:
        """Get a writable (abits, vbits) pair for page *pn* (copy on write)."""
        page = self._pages.get(pn, self._default)
        if isinstance(page, tuple):
            return page
        if page is _NOACCESS:
            pair = (bytearray(PAGE_SIZE), bytearray(_VB_ALL_UNDEF))
        elif page is _UNDEFINED:
            pair = (bytearray(_A_ONES), bytearray(_VB_ALL_UNDEF))
        else:  # _DEFINED
            pair = (bytearray(_A_ONES), bytearray(_VB_ALL_DEF))
        self._pages[pn] = pair
        self.cow_promotions += 1
        # Private secondaries keep their identity for life: enter both
        # fast maps once, never refresh (A/V mutations happen in place).
        self._fast_rd[pn] = pair
        self._fast_wr[pn] = pair
        return pair

    def _set_marker(self, pn: int, marker: str) -> None:
        self._pages[pn] = marker
        if marker is _DEFINED:
            self._fast_rd[pn] = _PAIR_DEF
        elif marker is _UNDEFINED:
            self._fast_rd[pn] = _PAIR_UNDEF
        else:
            self._fast_rd.pop(pn, None)
        self._fast_wr.pop(pn, None)

    # -- range operations (the make_mem_* callbacks) --------------------------------

    def _set_range(self, addr: int, size: int, a: int, v: int, marker) -> None:
        addr &= _M32
        end = addr + size
        while addr < end:
            pn = addr >> PAGE_SHIFT
            off = addr & _PMASK
            n = min(PAGE_SIZE - off, end - addr)
            if n == PAGE_SIZE:
                self._set_marker(pn, marker)
            else:
                pair = self._private(pn)
                pair[0][off : off + n] = bytes([a]) * n
                pair[1][off : off + n] = bytes([v]) * n
            addr += n

    def make_noaccess(self, addr: int, size: int) -> None:
        if size > 0:
            self._set_range(addr, size, 0, VBITS_UNDEF, _NOACCESS)

    def make_undefined(self, addr: int, size: int) -> None:
        if size > 0:
            self._set_range(addr, size, 1, VBITS_UNDEF, _UNDEFINED)

    def make_defined(self, addr: int, size: int) -> None:
        if size > 0:
            self._set_range(addr, size, 1, VBITS_DEF, _DEFINED)

    # -- byte-level access ------------------------------------------------------------

    def get_abit(self, addr: int) -> int:
        page = self._pages.get((addr & _M32) >> PAGE_SHIFT, self._default)
        if page is _NOACCESS:
            return 0
        if page is _DEFINED or page is _UNDEFINED:
            return 1
        return page[0][addr & _PMASK]

    def get_vbyte(self, addr: int) -> int:
        page = self._pages.get((addr & _M32) >> PAGE_SHIFT, self._default)
        if page is _NOACCESS or page is _UNDEFINED:
            return VBITS_UNDEF
        if page is _DEFINED:
            return VBITS_DEF
        return page[1][addr & _PMASK]

    def set_vbyte(self, addr: int, v: int) -> None:
        addr &= _M32
        pair = self._private(addr >> PAGE_SHIFT)
        pair[1][addr & _PMASK] = v & 0xFF

    # -- word-level access (the LOADV/STOREV backends) -----------------------------------

    def check_addressable(self, addr: int, size: int) -> Optional[int]:
        """Return the first unaddressable address in the range, or None."""
        addr &= _M32
        end = addr + size
        a = addr
        while a < end:
            pn = a >> PAGE_SHIFT
            page = self._pages.get(pn, self._default)
            if page is _DEFINED or page is _UNDEFINED:
                a = (pn + 1) << PAGE_SHIFT
                continue
            if page is _NOACCESS:
                return a
            off = a & _PMASK
            n = min(PAGE_SIZE - off, end - a)
            i = page[0].find(0, off, off + n)
            if i >= 0:
                return (pn << PAGE_SHIFT) + i
            a += n
        return None

    def load_vbits(self, addr: int, size: int) -> int:
        """V bits for a little-endian load of *size* bytes (unaddressable
        bytes read as undefined)."""
        addr &= _M32
        pn = addr >> PAGE_SHIFT
        off = addr & _PMASK
        page = self._pages.get(pn, self._default)
        if off + size <= PAGE_SIZE:
            if page is _DEFINED:
                return 0
            if page is _NOACCESS or page is _UNDEFINED:
                return (1 << (8 * size)) - 1
            return int.from_bytes(page[1][off : off + size], "little")
        v = 0
        for i in range(size):
            v |= self.get_vbyte(addr + i) << (8 * i)
        return v

    def store_vbits(self, addr: int, size: int, vbits: int) -> None:
        """Write V bits for a little-endian store (A bits unchanged)."""
        addr &= _M32
        pn = addr >> PAGE_SHIFT
        off = addr & _PMASK
        if off + size <= PAGE_SIZE:
            page = self._pages.get(pn, self._default)
            if page is _DEFINED and vbits == 0:
                return
            if page is _UNDEFINED and vbits == (1 << (8 * size)) - 1:
                return
            pair = page if isinstance(page, tuple) else self._private(pn)
            pair[1][off : off + size] = vbits.to_bytes(size, "little")
            return
        for i in range(size):
            self.set_vbyte(addr + i, (vbits >> (8 * i)) & 0xFF)

    def copy_range(self, src: int, dst: int, size: int) -> None:
        """Copy both A and V bits (mremap, realloc, memcpy wrappers).

        O(pages): the source range is gathered page-by-page into two
        flat buffers with slice reads (so overlapping ranges are safe),
        then scattered with slice writes.
        """
        if size <= 0:
            return
        a = bytearray(size)
        v = bytearray(size)
        pos = 0
        addr = src & _M32
        end = addr + size
        while addr < end:
            pn = addr >> PAGE_SHIFT
            off = addr & _PMASK
            n = min(PAGE_SIZE - off, end - addr)
            page = self._pages.get(pn, self._default)
            if page is _DEFINED:
                a[pos : pos + n] = _A_ONES[:n]
            elif page is _UNDEFINED:
                a[pos : pos + n] = _A_ONES[:n]
                v[pos : pos + n] = _VB_ALL_UNDEF[:n]
            elif page is _NOACCESS:
                v[pos : pos + n] = _VB_ALL_UNDEF[:n]
            else:
                a[pos : pos + n] = page[0][off : off + n]
                v[pos : pos + n] = page[1][off : off + n]
            addr += n
            pos += n
        pos = 0
        addr = dst & _M32
        end = addr + size
        while addr < end:
            pn = addr >> PAGE_SHIFT
            off = addr & _PMASK
            n = min(PAGE_SIZE - off, end - addr)
            pair = self._private(pn)
            pair[0][off : off + n] = a[pos : pos + n]
            pair[1][off : off + n] = v[pos : pos + n]
            addr += n
            pos += n

    # -- inspection --------------------------------------------------------------------

    def first_undefined(self, addr: int, size: int) -> Optional[int]:
        """First address in the range whose V byte is not fully defined."""
        i = 0
        while i < size:
            a = (addr + i) & _M32
            pn = a >> PAGE_SHIFT
            off = a & _PMASK
            n = min(PAGE_SIZE - off, size - i)
            page = self._pages.get(pn, self._default)
            if page is _DEFINED:
                i += n
                continue
            if page is _NOACCESS or page is _UNDEFINED:
                return addr + i
            vbits = page[1]
            if vbits.count(0, off, off + n) == n:
                i += n
                continue
            if _np is not None:
                j = int(
                    (_np.frombuffer(vbits, dtype=_np.uint8,
                                    count=n, offset=off) != 0).argmax()
                )
            else:
                chunk = bytes(vbits[off : off + n])
                j = n - len(chunk.lstrip(b"\x00"))
            return addr + i + j
        return None

    def stats(self) -> Tuple[int, int, int]:
        """(noaccess pages, fully-defined pages, other pages) in the map.

        Kept for embedders/tests; distinguished all-undefined pages count
        in the third slot, matching the byte-table era where
        ``make_undefined`` always produced a private page.  The richer
        breakdown lives in :meth:`stats_dict`.
        """
        na = df = pv = 0
        for page in self._pages.values():
            if page is _NOACCESS:
                na += 1
            elif page is _DEFINED:
                df += 1
            else:
                pv += 1
        return na, df, pv

    def stats_dict(self) -> dict:
        """All-numeric page-table statistics (the ``memcheck_shadow``
        section of ``--stats=json``; fleet stats sum it leaf-wise)."""
        na = df = un = pv = 0
        for page in self._pages.values():
            if page is _NOACCESS:
                na += 1
            elif page is _DEFINED:
                df += 1
            elif page is _UNDEFINED:
                un += 1
            else:
                pv += 1
        return {
            "pages_noaccess": na,
            "pages_defined": df,
            "pages_undefined": un,
            "pages_private": pv,
            "pages_fast": len(self._fast_rd),
            "cow_promotions": self.cow_promotions,
            "numpy": 0 if _np is None else 1,
        }
