"""The Memcheck tool plug-in.

Tracks, for every bit in the system, whether it holds a defined value
(V bits), and for every byte of memory, whether it may be accessed at all
(A bits).  Reports:

* reads/writes of unaddressable memory (``InvalidRead``/``InvalidWrite``),
* dangerous *uses* of undefined values — as branch conditions, memory
  addresses, jump targets (``UninitCondition``/``UninitValue``),
* undefined or unaddressable system-call parameters (``SyscallParam``),
* invalid and double frees (``InvalidFree``),
* memory leaks at exit (``Leak``), via a reachability scan.

Heap blocks get red zones and freed blocks are quarantined, both by
replacing the allocator through the core's function-replacement
mechanism (requirement R8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...core.tool import Tool
from ...guest.regs import GUEST_STATE_SIZE, SHADOW_OFFSET
from ...ir.block import IRSB
from ...ir.types import Ty
from ...kernel.memory import GuestFault
from ...libc.hostlib import HDR_SIZE
from .instrument import LOADV, MemcheckInstrumenter, STOREV, VALUE_CHECK
from .shadow import PAGE_SHIFT, PAGE_SIZE, ShadowMemory

_PMASK = PAGE_SIZE - 1

M32 = 0xFFFFFFFF

#: Memcheck's client-request range ('MC' << 16).
MC_BASE = 0x4D43_0000
MC_MAKE_MEM_NOACCESS = MC_BASE + 0
MC_MAKE_MEM_UNDEFINED = MC_BASE + 1
MC_MAKE_MEM_DEFINED = MC_BASE + 2
MC_CHECK_MEM_IS_ADDRESSABLE = MC_BASE + 3
MC_CHECK_MEM_IS_DEFINED = MC_BASE + 4
MC_DO_LEAK_CHECK = MC_BASE + 5
MC_COUNT_ERRORS = MC_BASE + 6

#: Red-zone size around heap blocks.
REDZONE = 16
#: How many freed blocks stay quarantined (unaddressable) to catch
#: use-after-free.
FREED_QUEUE_LEN = 64


@dataclass
class HeapBlock:
    payload: int
    size: int
    alloc_stack: Tuple[int, ...]


class Memcheck(Tool):
    """A memory error detector (the paper's flagship heavyweight tool)."""

    name = "memcheck"
    description = "detects undefined-value and memory-addressability errors"

    def __init__(self) -> None:
        super().__init__()
        self.shadow = ShadowMemory()
        self.blocks: Dict[int, HeapBlock] = {}
        self.freed: List[Tuple[int, int, Tuple[int, ...]]] = []
        self.leak_check_at_exit = "summary"  # no | summary | full
        self.instrumenter = MemcheckInstrumenter()
        self.total_allocated = 0
        self.n_allocs = 0
        self.n_frees = 0
        self._leak_result: Optional[dict] = None

    # -- lifecycle --------------------------------------------------------------------

    def pre_clo_init(self, core) -> None:
        super().pre_clo_init(core)
        ev = core.events
        # Table 1's right-hand column, callback for callback.
        ev.track_pre_reg_read(self.check_reg_is_defined)
        ev.track_post_reg_write(self.make_reg_defined)
        ev.track_pre_mem_read(self.check_mem_is_defined)
        ev.track_pre_mem_read_asciiz(self.check_mem_is_defined_asciiz)
        ev.track_pre_mem_write(self.check_mem_is_addressable)
        ev.track_post_mem_write(self.make_mem_defined_w)
        ev.track_new_mem_startup(self.make_mem_defined_startup)
        ev.track_new_mem_mmap(self.make_mem_defined_startup)
        ev.track_die_mem_munmap(self.make_mem_noaccess)
        ev.track_new_mem_brk(self.make_mem_undefined_brk)
        ev.track_die_mem_brk(self.make_mem_noaccess)
        ev.track_copy_mem_mremap(self.copy_range)
        ev.track_new_mem_stack(self.make_mem_undefined)
        ev.track_die_mem_stack(self.make_mem_noaccess)

        for size, name in LOADV.items():
            core.helpers.register_dirty(name, self._mk_loadv(size))
        for size, name in STOREV.items():
            core.helpers.register_dirty(name, self._mk_storev(size))
        for size, name in VALUE_CHECK.items():
            core.helpers.register_dirty(name, self._mk_value_check(size))

        core.redirector.replace_libc("malloc", self._repl_malloc)
        core.redirector.replace_libc("free", self._repl_free)
        core.redirector.replace_libc("calloc", self._repl_calloc)
        core.redirector.replace_libc("realloc", self._repl_realloc)

    def process_cmd_line_option(self, option: str) -> bool:
        name, _, value = option[2:].partition("=")
        if name == "leak-check":
            if value not in ("no", "summary", "full"):
                return False
            self.leak_check_at_exit = value
            return True
        if name == "undef-value-errors":
            self.instrumenter.check_values = value != "no"
            return True
        return False

    def instrument(self, sb: IRSB) -> IRSB:
        return self.instrumenter.instrument(sb)

    def shadow_fastpath_maps(self):
        """Expose the shadow page maps for pygen's inlined LOADV/STOREV
        fast paths (backend.pygen).  The accessors are bound to dicts
        whose identity is stable for the run, so emitted code can close
        over them once."""
        return self.shadow.fast_rd_get, self.shadow.fast_wr_get

    def stats_dict(self):
        """The ``memcheck_shadow`` section of ``--stats=json``.

        Page-state counters depend only on the make/store sequence, so
        they are byte-identical with the fast paths on or off and across
        codegen tiers; the ``fastpath`` sub-dict counts fast/slow hits
        from the emitted code and is by nature emission-dependent
        (differential tests compare the section without it).
        """
        section = self.shadow.stats_dict()
        sched = self.core.scheduler if self.core is not None else None
        c = sched.hostcpu.shadow_counters if sched is not None \
            else [0, 0, 0, 0]
        enabled = int(bool(sched is not None
                           and sched.hostcpu.shadow_fastpath))
        section["fastpath"] = {
            "enabled": enabled,
            "fast_loads": c[0],
            "fast_stores": c[1],
            "slow_loads": c[2],
            "slow_stores": c[3],
        }
        return {"memcheck_shadow": section}

    def fini(self, exit_code: int) -> None:
        mgr = self.core.error_mgr
        if self.leak_check_at_exit != "no":
            self.leak_check(full=self.leak_check_at_exit == "full")
        self.core.log(
            f"memcheck: heap usage: {self.n_allocs} allocs, {self.n_frees} frees, "
            f"{self.total_allocated} bytes allocated"
        )
        mgr.summarise()

    # -- IR helpers ---------------------------------------------------------------------

    def _mk_loadv(self, size: int):
        # The helpers carry the same shadow-page fast path the pygen
        # tier inlines (backend.pygen): probe the read map for the
        # (abits, vbits) secondary, check the range's A bits, slice the
        # V bytes.  Any unaddressable byte or page-crossing access takes
        # the general check-and-report path below.
        shadow = self.shadow
        rd_get = shadow.fast_rd_get
        last = PAGE_SIZE - size

        def loadv(env, addr: int) -> int:
            a = addr & 0xFFFFFFFF
            o = a & _PMASK
            if o <= last:
                sp = rd_get(a >> PAGE_SHIFT)
                if sp is not None and 0 not in sp[0][o : o + size]:
                    return int.from_bytes(sp[1][o : o + size], "little")
            bad = shadow.check_addressable(addr, size)
            if bad is not None:
                self._report_access_error("InvalidRead", addr, size, bad, env)
            return shadow.load_vbits(addr, size)

        return loadv

    def _mk_storev(self, size: int):
        # Write fast path: the write map holds only private secondaries,
        # so the slice assignment can never touch a shared distinguished
        # page — marker shortcuts and copy-on-write promotion stay in
        # store_vbits, keeping page-state statistics identical.
        shadow = self.shadow
        wr_get = shadow.fast_wr_get
        last = PAGE_SIZE - size

        def storev(env, addr: int, vbits: int) -> int:
            a = addr & 0xFFFFFFFF
            o = a & _PMASK
            if o <= last:
                sp = wr_get(a >> PAGE_SHIFT)
                if sp is not None and 0 not in sp[0][o : o + size]:
                    sp[1][o : o + size] = vbits.to_bytes(size, "little")
                    return 0
            bad = shadow.check_addressable(addr, size)
            if bad is not None:
                self._report_access_error("InvalidWrite", addr, size, bad, env)
            shadow.store_vbits(addr, size, vbits)
            return 0

        return storev

    def _mk_value_check(self, size: int):
        def check_fail(env) -> int:
            if size == 0:
                msg = "Conditional jump or move depends on uninitialised value(s)"
            else:
                msg = f"Use of uninitialised value of size {size}"
            self.core.record_error("UninitValue" if size else "UninitCondition", msg)
            return 0

        return check_fail

    def _report_access_error(
        self, kind: str, addr: int, size: int, bad: int, env
    ) -> None:
        verb = "read" if kind == "InvalidRead" else "write"
        msg = f"Invalid {verb} of size {size} at address {addr:#x}"
        extra = self._describe_addr(bad)
        if extra:
            msg += f" ({extra})"
        self.core.record_error(kind, msg, addr=addr)

    def _describe_addr(self, addr: int) -> str:
        """Relate a bad address to a heap block, like real Memcheck does."""
        for payload, size, _stack in reversed(self.freed):
            if payload - REDZONE <= addr < payload + size + REDZONE:
                return f"{addr - payload} bytes inside a freed block of size {size}"
        for block in self.blocks.values():
            if block.payload - REDZONE <= addr < block.payload:
                return f"{block.payload - addr} bytes before a block of size {block.size}"
            if block.payload + block.size <= addr < block.payload + block.size + REDZONE:
                return (
                    f"{addr - (block.payload + block.size)} bytes after a block "
                    f"of size {block.size}"
                )
        return ""

    # -- event callbacks (Table 1 right-hand column) ------------------------------------------

    def _ts(self, tid: int):
        return self.core.scheduler.threads[tid]

    def check_reg_is_defined(self, tid: int, offset: int, size: int, name: str):
        ts = self._ts(tid)
        v = ts.get_bytes(offset + SHADOW_OFFSET, size)
        if any(v):
            self.core.record_error(
                "SyscallParam",
                f"Syscall param {name} contains uninitialised byte(s)",
            )

    def make_reg_defined(self, tid: int, offset: int, size: int, name: str):
        self._ts(tid).put_bytes(offset + SHADOW_OFFSET, b"\0" * size)

    def check_mem_is_defined(self, tid: int, addr: int, size: int, name: str):
        if size == 0:
            return
        bad = self.shadow.check_addressable(addr, size)
        if bad is not None:
            self.core.record_error(
                "SyscallParam",
                f"Syscall param {name} points to unaddressable byte(s)",
                addr=bad,
            )
            return
        first = self.shadow.first_undefined(addr, size)
        if first is not None:
            self.core.record_error(
                "SyscallParam",
                f"Syscall param {name} points to uninitialised byte(s)",
                addr=first,
            )

    def check_mem_is_defined_asciiz(self, tid: int, addr: int, name: str):
        a = addr
        for _ in range(1 << 16):
            if self.shadow.get_abit(a) == 0:
                self.core.record_error(
                    "SyscallParam",
                    f"Syscall param {name} points to unaddressable byte(s)",
                    addr=a,
                )
                return
            if self.shadow.get_vbyte(a) != 0:
                self.core.record_error(
                    "SyscallParam",
                    f"Syscall param {name} points to uninitialised byte(s)",
                    addr=a,
                )
                return
            try:
                if self.core.memory.read(a, 1) == b"\0":
                    return
            except GuestFault:
                return
            a += 1

    def check_mem_is_addressable(self, tid: int, addr: int, size: int, name: str):
        if size == 0:
            return
        bad = self.shadow.check_addressable(addr, size)
        if bad is not None:
            self.core.record_error(
                "SyscallParam",
                f"Syscall param {name} points to unaddressable byte(s)",
                addr=bad,
            )

    def make_mem_defined_w(self, tid: int, addr: int, size: int, name: str):
        self.shadow.make_defined(addr, size)

    def make_mem_defined_startup(self, addr: int, size: int, r, w, x):
        self.shadow.make_defined(addr, size)

    def make_mem_undefined_brk(self, addr: int, size: int, tid: int):
        self.shadow.make_undefined(addr, size)

    def make_mem_undefined(self, addr: int, size: int):
        self.shadow.make_undefined(addr, size)

    def make_mem_noaccess(self, addr: int, size: int):
        self.shadow.make_noaccess(addr, size)

    def copy_range(self, src: int, dst: int, size: int):
        self.shadow.copy_range(src, dst, size)

    # -- heap replacement (R8) -------------------------------------------------------------------

    def _alloc_stack(self) -> Tuple[int, ...]:
        return tuple(self.core.stack_trace_pcs(8))

    def _arg(self, machine, i: int) -> int:
        sp = machine.reg(4)
        return int.from_bytes(machine.mem.read(sp + 4 + 4 * i, 4), "little")

    def _new_block(self, machine, size: int, *, defined: bool) -> int:
        heap = self.core.libc.heap
        raw = heap.malloc(machine, size + 2 * REDZONE)
        if raw == 0:
            return 0
        payload = raw + REDZONE
        self.shadow.make_noaccess(raw, REDZONE)
        if defined:
            self.shadow.make_defined(payload, size)
        else:
            self.shadow.make_undefined(payload, size)
        self.shadow.make_noaccess(payload + size, REDZONE)
        self.blocks[payload] = HeapBlock(payload, size, self._alloc_stack())
        self.total_allocated += size
        self.n_allocs += 1
        return payload

    def _repl_malloc(self, machine) -> int:
        return self._new_block(machine, self._arg(machine, 0), defined=False)

    def _repl_calloc(self, machine) -> int:
        n, sz = self._arg(machine, 0), self._arg(machine, 1)
        total = n * sz
        p = self._new_block(machine, total, defined=True)
        if p:
            machine.mem.write_raw(p, b"\0" * total)
        return p

    def _free_block(self, machine, payload: int) -> bool:
        block = self.blocks.pop(payload, None)
        if block is None:
            for fp, fsize, _ in self.freed:
                if fp == payload:
                    self.core.record_error(
                        "InvalidFree",
                        f"Invalid free() at address {payload:#x} (double free)",
                        addr=payload,
                    )
                    return False
            self.core.record_error(
                "InvalidFree",
                f"Invalid free() / delete of address {payload:#x}",
                addr=payload,
            )
            return False
        self.n_frees += 1
        # Quarantine: the whole block (red zones included) stays noaccess.
        self.shadow.make_noaccess(payload - REDZONE, block.size + 2 * REDZONE)
        self.freed.append((payload, block.size, self._alloc_stack()))
        if len(self.freed) > FREED_QUEUE_LEN:
            old_payload, old_size, _ = self.freed.pop(0)
            heap = self.core.libc.heap
            heap.free(machine, old_payload - REDZONE)
        return True

    def _repl_free(self, machine) -> int:
        payload = self._arg(machine, 0)
        if payload:
            self._free_block(machine, payload)
        return 0

    def _repl_realloc(self, machine) -> int:
        payload, new_size = self._arg(machine, 0), self._arg(machine, 1)
        if payload == 0:
            return self._new_block(machine, new_size, defined=False)
        block = self.blocks.get(payload)
        if block is None:
            self.core.record_error(
                "InvalidFree", f"realloc() of invalid address {payload:#x}"
            )
            return 0
        newp = self._new_block(machine, new_size, defined=False)
        if newp:
            n = min(block.size, new_size)
            machine.mem.write_raw(newp, machine.mem.read_raw(payload, n))
            self.shadow.copy_range(payload, newp, n)
            self._free_block(machine, payload)
        return newp

    # -- leak checking ---------------------------------------------------------------------------

    def leak_check(self, *, full: bool = False) -> dict:
        """Mark-and-sweep reachability over live heap blocks."""
        mem = self.core.memory
        starts = sorted(self.blocks)

        def block_at(ptr: int) -> Optional[int]:
            import bisect

            i = bisect.bisect_right(starts, ptr) - 1
            if i < 0:
                return None
            p = starts[i]
            if p <= ptr < p + max(1, self.blocks[p].size):
                return p
            return None

        # Roots: all guest registers of all threads, plus every addressable
        # word outside the heap blocks themselves.
        reached: set = set()
        frontier: List[int] = []

        def note(ptr: int) -> None:
            p = block_at(ptr)
            if p is not None and p not in reached:
                reached.add(p)
                frontier.append(p)

        sched = self.core.scheduler
        if sched is not None:
            for ts in sched.threads.values():
                for i in range(8):
                    note(ts.reg(i))
        heap_ranges = [(p, p + self.blocks[p].size) for p in starts]

        def in_heap(addr: int) -> bool:
            import bisect

            i = bisect.bisect_right(heap_ranges, (addr, 1 << 33)) - 1
            return i >= 0 and heap_ranges[i][0] <= addr < heap_ranges[i][1]

        for start, size, _prot in mem.mapped_ranges():
            for a in range(start, start + size - 3, 4):
                if in_heap(a):
                    continue
                if self.shadow.get_abit(a) == 0:
                    continue
                note(mem.load32(a))
        # Transitively scan reached blocks.
        while frontier:
            p = frontier.pop()
            blk = self.blocks[p]
            for a in range(p, p + blk.size - 3, 4):
                note(mem.load32(a))

        lost = [p for p in starts if p not in reached]
        lost_bytes = sum(self.blocks[p].size for p in lost)
        reach_bytes = sum(self.blocks[p].size for p in reached)
        result = {
            "definitely_lost_blocks": len(lost),
            "definitely_lost_bytes": lost_bytes,
            "still_reachable_blocks": len(reached),
            "still_reachable_bytes": reach_bytes,
        }
        self._leak_result = result
        self.core.log(
            f"LEAK SUMMARY: definitely lost: {lost_bytes} bytes in "
            f"{len(lost)} blocks; still reachable: {reach_bytes} bytes in "
            f"{len(reached)} blocks"
        )
        if full:
            for p in lost:
                blk = self.blocks[p]
                frames = self.core.error_mgr.symbolise_stack(blk.alloc_stack)
                self.core.log(
                    f"  {blk.size} bytes definitely lost, allocated at:"
                )
                for fr in frames[:6]:
                    self.core.log(f"     at {fr.describe()}")
        return result

    # -- client requests ----------------------------------------------------------------------------

    def handle_client_request(self, tid: int, args) -> Optional[int]:
        code, a1, a2 = args[0], args[1], args[2]
        if code == MC_MAKE_MEM_NOACCESS:
            self.shadow.make_noaccess(a1, a2)
            return 0
        if code == MC_MAKE_MEM_UNDEFINED:
            self.shadow.make_undefined(a1, a2)
            return 0
        if code == MC_MAKE_MEM_DEFINED:
            self.shadow.make_defined(a1, a2)
            return 0
        if code == MC_CHECK_MEM_IS_ADDRESSABLE:
            bad = self.shadow.check_addressable(a1, a2)
            return 0 if bad is None else bad
        if code == MC_CHECK_MEM_IS_DEFINED:
            bad = self.shadow.check_addressable(a1, a2)
            if bad is not None:
                return bad
            first = self.shadow.first_undefined(a1, a2)
            return 0 if first is None else first
        if code == MC_DO_LEAK_CHECK:
            self.leak_check(full=bool(a1))
            return 0
        if code == MC_COUNT_ERRORS:
            return self.core.error_mgr.total_errors
        return None
