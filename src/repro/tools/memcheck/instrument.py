"""Memcheck's instrumentation pass: definedness propagation in IR.

Every value the client computes gets a *shadow* value of the same width
whose set bits mean "this bit is undefined".  The pass walks a flat-IR
block and, before each original statement, emits the corresponding shadow
computation (compare the paper's Figure 2, where 11 of 18 statements were
added by Memcheck and shadow operations precede each original operation):

* shadow registers are GET/PUT at ``offset + 320`` in the ThreadState;
* shadow arithmetic follows the classic Memcheck rules — UifU (undefined
  if either undefined, i.e. OR), the "Left" carry-smearing for add/sub,
  value-improved AND/OR, shift-by-shadow pessimism, and PCast (any
  undefined bit poisons the whole result) for comparisons, FP and calls;
* loads/stores call ``helperc_LOADV*``/``helperc_STOREV*`` dirty helpers
  ("too complex to be written inline" — they also check addressability);
* every use of a value as an address, branch guard, or jump target gets a
  *conditional* call to an error helper, guarded on the shadow bits.
"""

from __future__ import annotations

from typing import Dict, Optional

from ...guest.regs import GUEST_STATE_SIZE, OFFSET_PC, SHADOW_OFFSET, SP, gpr_offset
from ...ir.block import IRSB
from ...ir.expr import (
    Binop,
    CCall,
    Const,
    Expr,
    Get,
    ITE,
    Load,
    RdTmp,
    Unop,
    const,
)
from ...ir.stmt import Dirty, Exit, IMark, MemFx, NoOp, Put, StateFx, Store, WrTmp
from ...ir.types import Ty
from ...opt.flatten import flatten

#: Shadow type for each value type: FP shadows are integer bit-vectors.
SHADOW_TY = {
    Ty.I1: Ty.I1,
    Ty.I8: Ty.I8,
    Ty.I16: Ty.I16,
    Ty.I32: Ty.I32,
    Ty.I64: Ty.I64,
    Ty.F32: Ty.I32,
    Ty.F64: Ty.I64,
    Ty.V128: Ty.V128,
}

_WIDTH_SUFFIX = {Ty.I8: "8", Ty.I16: "16", Ty.I32: "32", Ty.I64: "64"}

#: Helper names (registered by the tool).
LOADV = {1: "helperc_LOADV8le", 2: "helperc_LOADV16le", 4: "helperc_LOADV32le",
         8: "helperc_LOADV64le", 16: "helperc_LOADV128le"}
STOREV = {1: "helperc_STOREV8le", 2: "helperc_STOREV16le", 4: "helperc_STOREV32le",
          8: "helperc_STOREV64le", 16: "helperc_STOREV128le"}
VALUE_CHECK = {0: "helperc_value_check0_fail", 1: "helperc_value_check1_fail",
               2: "helperc_value_check2_fail", 4: "helperc_value_check4_fail",
               8: "helperc_value_check8_fail"}

#: Figure 2's error-helper annotations: the helper reads the stack pointer
#: and program counter from the guest state to build its report.
_ERRFX = (StateFx(False, gpr_offset(SP), 4), StateFx(False, OFFSET_PC, 4))


def _uifu(ty: Ty, a: Expr, b: Expr) -> Expr:
    """Undefined-if-either-undefined: OR of shadows."""
    if ty is Ty.I1:
        return Binop("Or1", a, b)
    if ty is Ty.V128:
        return Binop("OrV128", a, b)
    return Binop(f"Or{_WIDTH_SUFFIX[ty]}", a, b)


def _left(ty: Ty, v: Expr) -> Expr:
    """Smear undefinedness towards the MSB: x | -x (carry propagation)."""
    w = _WIDTH_SUFFIX[ty]
    return Binop(f"Or{w}", v, Unop(f"Neg{w}", v))


def _cmpnez(ty: Ty, v: Expr) -> Expr:
    """Fold a shadow to a single I1 "any bit undefined" flag."""
    if ty is Ty.I1:
        return v
    if ty is Ty.V128:
        return Unop("CmpNEZV128", v)
    return Unop(f"CmpNEZ{_WIDTH_SUFFIX[ty]}", v)


def _pcast(src_ty: Ty, dst_ty: Ty, v: Expr) -> Expr:
    """PCast: all-defined -> all-defined, else all-undefined, retyped."""
    bit = _cmpnez(src_ty, v)
    if dst_ty is Ty.I1:
        return bit
    if dst_ty is Ty.V128:
        wide = Unop("1Sto64", bit)
        return Binop("64HLtoV128", wide, wide)
    return Unop(f"1Sto{_WIDTH_SUFFIX[dst_ty]}", bit)


class MemcheckInstrumenter:
    """Stateless per-block instrumenter (config comes from the tool)."""

    def __init__(self, *, check_loads: bool = True, check_stores: bool = True,
                 check_values: bool = True):
        self.check_loads = check_loads
        self.check_stores = check_stores
        #: Checking of condition/address definedness (the "undefined value
        #: use" errors); shadow propagation happens regardless.
        self.check_values = check_values

    # -- the entry point --------------------------------------------------------

    def instrument(self, sb: IRSB) -> IRSB:
        ctx = _BlockCtx(self, sb)
        ctx.run()
        return flatten(ctx.out)


class _BlockCtx:
    def __init__(self, cfg: MemcheckInstrumenter, sb: IRSB):
        self.cfg = cfg
        self.sb = sb
        self.out = IRSB(
            tyenv=dict(sb.tyenv), jumpkind=sb.jumpkind, guest_addr=sb.guest_addr
        )
        #: original tmp -> shadow tmp index.
        self.shadow_tmp: Dict[int, int] = {}

    # -- shadow temporaries ---------------------------------------------------------

    def shadow_of_tmp(self, tmp: int) -> int:
        s = self.shadow_tmp.get(tmp)
        if s is None:
            s = self.out.new_tmp(SHADOW_TY[self.sb.type_of_tmp(tmp)])
            self.shadow_tmp[tmp] = s
        return s

    def shadow_atom(self, e: Expr) -> Expr:
        """Shadow of an atom (flat IR operands are always atoms)."""
        if isinstance(e, Const):
            return const(SHADOW_TY[e.ty], 0)
        assert isinstance(e, RdTmp), e
        return RdTmp(self.shadow_of_tmp(e.tmp))

    # -- value-use checks -----------------------------------------------------------

    def emit_check_defined(self, atom: Expr, ty: Ty) -> None:
        """Emit a conditional error call if *atom*'s shadow is not zero."""
        if not self.cfg.check_values:
            return
        sty = SHADOW_TY[ty]
        v = self.shadow_atom(atom)
        if isinstance(v, Const) and v.value == 0:
            return
        size = 0 if sty is Ty.I1 else sty.size
        helper = VALUE_CHECK.get(size, VALUE_CHECK[8])
        guard = v if sty is Ty.I1 else self.out.assign_new(_cmpnez(sty, v))
        self.out.add(Dirty(helper, (), guard=guard, state_fx=_ERRFX))

    # -- shadow expression construction ------------------------------------------------

    def vexpr(self, e: Expr) -> Expr:
        """Shadow expression (a tree; the final flatten pass legalises it)."""
        if isinstance(e, (Const, RdTmp)):
            return self.shadow_atom(e)
        if isinstance(e, Get):
            if e.offset >= GUEST_STATE_SIZE:
                return const(SHADOW_TY[e.ty], 0)
            return Get(e.offset + SHADOW_OFFSET, SHADOW_TY[e.ty])
        if isinstance(e, Load):
            return self._vexpr_load(e)
        if isinstance(e, Unop):
            return self._vexpr_unop(e)
        if isinstance(e, Binop):
            return self._vexpr_binop(e)
        if isinstance(e, ITE):
            ty = self.sb.type_of(e)
            sty = SHADOW_TY[ty]
            picked = ITE(e.cond, self.shadow_atom(e.iftrue),
                         self.shadow_atom(e.iffalse))
            vcond = self.shadow_atom(e.cond)
            if isinstance(vcond, Const) and vcond.value == 0:
                return picked
            return _uifu(sty, picked, _pcast(Ty.I1, sty, vcond))
        if isinstance(e, CCall):
            sty = SHADOW_TY[e.ty]
            acc: Optional[Expr] = None
            for a in e.args:
                va = self.shadow_atom(a)
                if isinstance(va, Const) and va.value == 0:
                    continue
                aty = SHADOW_TY[self.sb.type_of(a)]
                piece = _pcast(aty, sty, va)
                acc = piece if acc is None else _uifu(sty, acc, piece)
            return acc if acc is not None else const(sty, 0)
        raise TypeError(f"memcheck cannot shadow {e!r}")

    def _vexpr_load(self, e: Load) -> Expr:
        """Shadow load: check the address, then call the LOADV helper.

        This is Figure 2's statements 15-17: the CmpNEZ + conditional
        value-check call, then the helperc_LOADV call.
        """
        if self.cfg.check_values:
            self.emit_check_defined(e.addr, Ty.I32)
        sty = SHADOW_TY[e.ty]
        if not self.cfg.check_loads:
            return const(sty, 0)
        t = self.out.new_tmp(sty)
        self.out.add(
            Dirty(
                LOADV[e.ty.size],
                (e.addr,),
                tmp=t,
                retty=sty,
                state_fx=_ERRFX,
            )
        )
        return RdTmp(t)

    def _vexpr_unop(self, e: Unop) -> Expr:
        op = e.op
        src_ty = self.sb.type_of(e.arg)
        dst_ty = self.sb.type_of(e)
        s_src = SHADOW_TY[src_ty]
        s_dst = SHADOW_TY[dst_ty]
        va = self.shadow_atom(e.arg)
        # NOT flips values but leaves definedness untouched.
        if op.startswith("Not"):
            return va
        # Width conversions and lane ops are bit-transparent: the same
        # operation transforms the shadow bits (signed widening correctly
        # replicates the sign bit's undefinedness).
        if (
            op.startswith("Dup")
            or op in ("64HIto32", "32HIto16", "16HIto8", "V128HIto64", "V128to64",
                      "V128to32", "32UtoV128", "64UtoV128")
            or (op[0].isdigit() and "to" in op and "F" not in op)
        ):
            return Unop(op, va)
        if op.startswith("Neg") and "F" not in op:
            return _left(s_dst, va)
        if op.startswith(("CmpNEZ", "CmpEQZ")):
            return _pcast(s_src, Ty.I1, va)
        if op.startswith("Reinterp"):
            return va if s_src is s_dst else _pcast(s_src, s_dst, va)
        # Everything else (FP conversions, Clz/Ctz/Popcnt, ...): PCast.
        return _pcast(s_src, s_dst, va)

    def _vexpr_binop(self, e: Binop) -> Expr:
        op = e.op
        ty = self.sb.type_of(e)
        sty = SHADOW_TY[ty]
        t1 = self.sb.type_of(e.arg1)
        t2 = self.sb.type_of(e.arg2)
        s1, s2 = SHADOW_TY[t1], SHADOW_TY[t2]
        va = self.shadow_atom(e.arg1)
        vb = self.shadow_atom(e.arg2)

        if op.startswith(("Add", "Sub", "Mul")) and ty in _WIDTH_SUFFIX:
            # Figure 2's "shadow addl": Left(UifU(va, vb)).
            return _left(sty, _uifu(sty, va, vb))
        if op.startswith("And") and ty is not Ty.I1 and ty in _WIDTH_SUFFIX:
            # Improved AND: a defined 0 on either side defines the output.
            u = _uifu(sty, va, vb)
            ia = _uifu(sty, e.arg1, va)   # a | va: "could the bit be 1?"
            ib = _uifu(sty, e.arg2, vb)
            return Binop(f"And{_WIDTH_SUFFIX[sty]}", Binop(
                f"And{_WIDTH_SUFFIX[sty]}", u, ia), ib)
        if op.startswith("Or") and ty is not Ty.I1 and ty in _WIDTH_SUFFIX:
            # Improved OR: a defined 1 on either side defines the output.
            w = _WIDTH_SUFFIX[sty]
            u = _uifu(sty, va, vb)
            ia = Binop(f"Or{w}", Unop(f"Not{w}", e.arg1), va)
            ib = Binop(f"Or{w}", Unop(f"Not{w}", e.arg2), vb)
            return Binop(f"And{w}", Binop(f"And{w}", u, ia), ib)
        if op.startswith("Xor") or op in ("And1", "Or1", "Xor1"):
            return _uifu(sty, va, vb)
        if op.startswith(("Shl", "Shr", "Sar", "Rol", "Ror")) and ty in _WIDTH_SUFFIX:
            shifted = Binop(op, va, e.arg2)
            if isinstance(vb, Const) and vb.value == 0:
                return shifted
            return _uifu(sty, shifted, _pcast(s2, sty, vb))
        if op == "32HLto64" or op == "16HLto32" or op == "8HLto16" or op == "64HLtoV128":
            return Binop(op, va, vb)
        if op.startswith("Cmp"):
            u: Expr
            if s1 is s2:
                u = _uifu(s1, va, vb)
                return _pcast(s1, sty, u)
            return _uifu(sty, _pcast(s1, sty, va), _pcast(s2, sty, vb))
        if ty is Ty.V128:
            if s2 is Ty.I8:  # lane shifts by an I8 amount
                shifted = Binop(op, va, e.arg2) if op.startswith(("ShlN", "ShrN")) \
                    else _pcast(s1, sty, va)
                if isinstance(vb, Const) and vb.value == 0:
                    return shifted
                return _uifu(sty, shifted, _pcast(s2, sty, vb))
            return _uifu(sty, va, vb)
        # Widening multiplies, divisions, FP arithmetic, Min/Max: PCast.
        if s1 is s2:
            return _pcast(s1, sty, _uifu(s1, va, vb))
        return _uifu(sty, _pcast(s1, sty, va), _pcast(s2, sty, vb))

    # -- statement walk -------------------------------------------------------------------

    def run(self) -> None:
        sb = self.sb
        out = self.out
        for s in sb.stmts:
            if isinstance(s, (NoOp, IMark)):
                out.add(s)
                continue
            if isinstance(s, WrTmp):
                v = self.vexpr(s.data)
                out.add(WrTmp(self.shadow_of_tmp(s.tmp), v))
                out.add(s)
                continue
            if isinstance(s, Put):
                if s.offset < GUEST_STATE_SIZE:
                    out.add(Put(s.offset + SHADOW_OFFSET, self.shadow_atom(s.data)))
                out.add(s)
                continue
            if isinstance(s, Store):
                ty = sb.type_of(s.data)
                self.emit_check_defined(s.addr, Ty.I32)
                if self.cfg.check_stores:
                    out.add(
                        Dirty(
                            STOREV[ty.size],
                            (s.addr, self.shadow_atom(s.data)),
                            state_fx=_ERRFX,
                        )
                    )
                out.add(s)
                continue
            if isinstance(s, Exit):
                # "Conditional jump depends on uninitialised value(s)".
                self.emit_check_defined(s.guard, Ty.I1)
                out.add(s)
                continue
            if isinstance(s, Dirty):
                out.add(s)
                # The helper's declared writes produce defined values.
                for fx in s.state_fx:
                    if fx.write and fx.offset < GUEST_STATE_SIZE:
                        self._define_state(fx.offset, fx.size)
                if s.tmp is not None:
                    out.add(
                        WrTmp(
                            self.shadow_of_tmp(s.tmp),
                            const(SHADOW_TY[sb.type_of_tmp(s.tmp)], 0),
                        )
                    )
                continue
            raise TypeError(f"memcheck cannot instrument {s!r}")
        if sb.next is not None and not isinstance(sb.next, Const):
            # Jump target must be defined.
            self.emit_check_defined(sb.next, Ty.I32)
        out.next = sb.next
        out.jumpkind = sb.jumpkind

    def _define_state(self, offset: int, size: int) -> None:
        """Mark a guest-state range as defined (after a dirty write)."""
        off = offset
        end = offset + size
        while off < end:
            chunk = min(4, end - off)
            ty = {1: Ty.I8, 2: Ty.I16, 4: Ty.I32}.get(chunk, Ty.I32)
            if chunk == 3:
                ty, chunk = Ty.I8, 1
            self.out.add(Put(off + SHADOW_OFFSET, const(ty, 0)))
            off += chunk


def _same_shape(op: str) -> bool:
    """True for unops whose shadow is the same op applied to the shadow."""
    return "F" not in op
