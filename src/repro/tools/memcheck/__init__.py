"""Memcheck: the definedness + addressability checker.

The most widely-used Valgrind tool, and the paper's running example of a
*heavyweight shadow value tool*: every register and memory value is
shadowed, bit for bit, by a value saying which of its bits are defined.
"""

from .instrument import MemcheckInstrumenter, SHADOW_TY
from .shadow import ShadowMemory
from .tool import (
    MC_CHECK_MEM_IS_ADDRESSABLE,
    MC_CHECK_MEM_IS_DEFINED,
    MC_COUNT_ERRORS,
    MC_DO_LEAK_CHECK,
    MC_MAKE_MEM_DEFINED,
    MC_MAKE_MEM_NOACCESS,
    MC_MAKE_MEM_UNDEFINED,
    Memcheck,
    REDZONE,
)

__all__ = [
    "Memcheck",
    "MemcheckInstrumenter",
    "ShadowMemory",
    "SHADOW_TY",
    "REDZONE",
    "MC_MAKE_MEM_NOACCESS",
    "MC_MAKE_MEM_UNDEFINED",
    "MC_MAKE_MEM_DEFINED",
    "MC_CHECK_MEM_IS_ADDRESSABLE",
    "MC_CHECK_MEM_IS_DEFINED",
    "MC_DO_LEAK_CHECK",
    "MC_COUNT_ERRORS",
]
