"""TaintCheck: dynamic taint analysis (after Newsome & Song, NDSS'05).

A second shadow-value tool, built on the same first-class shadow-register
and events machinery Memcheck uses — but tracking one *taint* bit per
byte instead of one definedness bit per bit.  Data read from files/stdin
(the ``read`` syscall) is tainted; taint propagates through every
operation; using tainted data as an indirect jump/call target or as a
system-call argument raises an error (the attack-detection sinks).

Client requests let programs taint/untaint/query ranges explicitly.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.tool import Tool
from ..guest.regs import GUEST_STATE_SIZE, SHADOW_OFFSET, gpr_offset
from ..ir.block import IRSB
from ..ir.expr import Binop, CCall, Const, Expr, Get, ITE, Load, RdTmp, Unop, const
from ..ir.stmt import Dirty, Exit, IMark, NoOp, Put, StateFx, Store, WrTmp
from ..ir.types import Ty
from ..opt.flatten import flatten
from .memcheck.instrument import SHADOW_TY, _cmpnez, _pcast, _uifu
from .memcheck.shadow import ShadowMemory

TC_BASE = 0x5443_0000  # 'TC'
TC_TAINT = TC_BASE + 0
TC_UNTAINT = TC_BASE + 1
TC_IS_TAINTED = TC_BASE + 2

_LOADT = {1: "tc_LOADT8", 2: "tc_LOADT16", 4: "tc_LOADT32", 8: "tc_LOADT64",
          16: "tc_LOADT128"}
_STORET = {1: "tc_STORET8", 2: "tc_STORET16", 4: "tc_STORET32", 8: "tc_STORET64",
           16: "tc_STORET128"}
_SINK = "tc_sink_fail"
_ADDR_SINK = "tc_addr_sink"


class TaintCheck(Tool):
    """Byte-granularity taint tracker."""

    name = "taintcheck"
    description = "taint tracking: flags tainted jump targets/syscall args"

    def __init__(self) -> None:
        super().__init__()
        # Reuse the two-level shadow table; "V bits" here mean taint bits
        # (we taint whole bytes: 0x00 clean, 0xFF tainted); everything
        # starts clean.
        self.shadow = ShadowMemory(default="defined")
        self.bytes_tainted = 0
        #: Also flag tainted values used as load/store *addresses*
        #: (--taint-addr=yes).  Off by default, as in TaintCheck: table
        #: dispatch through a clean jump table launders taint through the
        #: index, and this policy closes that hole at the cost of noise.
        self.check_addresses = False

    def pre_clo_init(self, core) -> None:
        super().pre_clo_init(core)
        for size, name in _LOADT.items():
            core.helpers.register_dirty(name, self._mk_load(size))
        for size, name in _STORET.items():
            core.helpers.register_dirty(name, self._mk_store(size))
        core.helpers.register_dirty(_SINK, self._sink_fail)
        core.helpers.register_dirty(_ADDR_SINK, self._addr_sink_fail)
        core.events.track_post_mem_write(self._post_mem_write)
        core.events.track_pre_reg_read(self._check_reg)

    # -- shadow-memory helpers ---------------------------------------------------

    def _mk_load(self, size: int):
        def load(env, addr: int) -> int:
            return self.shadow.load_vbits(addr, size)

        return load

    def _mk_store(self, size: int):
        def store(env, addr: int, t: int) -> int:
            self.shadow.store_vbits(addr, size, t)
            return 0

        return store

    def _sink_fail(self, env) -> int:
        self.core.record_error(
            "TaintedJump",
            "Control flow transfer to a tainted address",
        )
        return 0

    def _addr_sink_fail(self, env) -> int:
        self.core.record_error(
            "TaintedAddr",
            "Tainted value used as a memory address",
        )
        return 0

    def process_cmd_line_option(self, option: str) -> bool:
        name, _, value = option[2:].partition("=")
        if name == "taint-addr":
            self.check_addresses = value != "no"
            return True
        return False

    # -- sources and syscall sinks ---------------------------------------------------

    def _post_mem_write(self, tid: int, addr: int, size: int, name: str) -> None:
        if name == "read(buf)":
            # Data arriving from the outside world is tainted.
            self.shadow.make_undefined(addr, size)
            self.bytes_tainted += size
        else:
            self.shadow.make_defined(addr, size)

    def _check_reg(self, tid: int, offset: int, size: int, name: str) -> None:
        ts = self.core.scheduler.threads[tid]
        if any(ts.get_bytes(offset + SHADOW_OFFSET, size)):
            self.core.record_error(
                "TaintedSyscall", f"Syscall param {name} is tainted"
            )

    # -- instrumentation -----------------------------------------------------------------

    def instrument(self, sb: IRSB) -> IRSB:
        ctx = _TaintCtx(sb, check_addresses=self.check_addresses)
        ctx.run()
        return flatten(ctx.out)

    # -- client requests -------------------------------------------------------------------

    def handle_client_request(self, tid: int, args) -> Optional[int]:
        code, a1, a2 = args[0], args[1], args[2]
        if code == TC_TAINT:
            self.shadow.make_undefined(a1, a2)
            self.bytes_tainted += a2
            return 0
        if code == TC_UNTAINT:
            self.shadow.make_defined(a1, a2)
            return 0
        if code == TC_IS_TAINTED:
            return 0 if self.shadow.first_undefined(a1, a2) is None else 1
        return None

    def fini(self, exit_code: int) -> None:
        self.core.log(
            f"taintcheck: {self.bytes_tainted} bytes entered tainted; "
            f"{self.core.error_mgr.total_errors} sink violations"
        )


class _TaintCtx:
    """Per-block taint instrumenter: UifU everywhere, byte granularity."""

    def __init__(self, sb: IRSB, check_addresses: bool = False):
        self.sb = sb
        self.check_addresses = check_addresses
        self.out = IRSB(tyenv=dict(sb.tyenv), jumpkind=sb.jumpkind,
                        guest_addr=sb.guest_addr)
        self.shadow_tmp: Dict[int, int] = {}

    def _check_addr(self, addr_atom: Expr) -> None:
        if not self.check_addresses:
            return
        t = self.s_atom(addr_atom)
        if isinstance(t, Const):
            return
        guard = self.out.assign_new(_cmpnez(Ty.I32, t))
        self.out.add(Dirty(_ADDR_SINK, (), guard=guard,
                           state_fx=(StateFx(False, gpr_offset(4), 4),)))

    def s_tmp(self, tmp: int) -> int:
        s = self.shadow_tmp.get(tmp)
        if s is None:
            s = self.out.new_tmp(SHADOW_TY[self.sb.type_of_tmp(tmp)])
            self.shadow_tmp[tmp] = s
        return s

    def s_atom(self, e: Expr) -> Expr:
        if isinstance(e, Const):
            return const(SHADOW_TY[e.ty], 0)
        return RdTmp(self.s_tmp(e.tmp))

    def texpr(self, e: Expr) -> Expr:
        if isinstance(e, (Const, RdTmp)):
            return self.s_atom(e)
        if isinstance(e, Get):
            if e.offset >= GUEST_STATE_SIZE:
                return const(SHADOW_TY[e.ty], 0)
            return Get(e.offset + SHADOW_OFFSET, SHADOW_TY[e.ty])
        if isinstance(e, Load):
            self._check_addr(e.addr)
            sty = SHADOW_TY[e.ty]
            t = self.out.new_tmp(sty)
            self.out.add(Dirty(_LOADT[e.ty.size], (e.addr,), tmp=t, retty=sty))
            return RdTmp(t)
        if isinstance(e, Unop):
            src = SHADOW_TY[self.sb.type_of(e.arg)]
            dst = SHADOW_TY[self.sb.type_of(e)]
            va = self.s_atom(e.arg)
            op = e.op
            # Bit-transparent conversions keep per-byte precision.
            if op.startswith(("Not",)):
                return va
            if (op[0].isdigit() and "to" in op and "F" not in op) or op.startswith(
                "Dup"
            ):
                return Unop(op, va)
            return _pcast(src, dst, va)
        if isinstance(e, Binop):
            sty = SHADOW_TY[self.sb.type_of(e)]
            s1 = SHADOW_TY[self.sb.type_of(e.arg1)]
            s2 = SHADOW_TY[self.sb.type_of(e.arg2)]
            va, vb = self.s_atom(e.arg1), self.s_atom(e.arg2)
            if s1 is sty and s2 is sty:
                return _uifu(sty, va, vb)
            u1 = va if s1 is sty else _pcast(s1, sty, va)
            u2 = vb if s2 is sty else _pcast(s2, sty, vb)
            return _uifu(sty, u1, u2)
        if isinstance(e, ITE):
            sty = SHADOW_TY[self.sb.type_of(e)]
            return ITE(e.cond, self.s_atom(e.iftrue), self.s_atom(e.iffalse))
        if isinstance(e, CCall):
            sty = SHADOW_TY[e.ty]
            acc: Optional[Expr] = None
            for a in e.args:
                va = self.s_atom(a)
                if isinstance(va, Const):
                    continue
                piece = _pcast(SHADOW_TY[self.sb.type_of(a)], sty, va)
                acc = piece if acc is None else _uifu(sty, acc, piece)
            return acc if acc is not None else const(sty, 0)
        raise TypeError(f"taintcheck cannot shadow {e!r}")

    def run(self) -> None:
        sb, out = self.sb, self.out
        for s in sb.stmts:
            if isinstance(s, (NoOp, IMark)):
                out.add(s)
            elif isinstance(s, WrTmp):
                out.add(WrTmp(self.s_tmp(s.tmp), self.texpr(s.data)))
                out.add(s)
            elif isinstance(s, Put):
                if s.offset < GUEST_STATE_SIZE:
                    out.add(Put(s.offset + SHADOW_OFFSET, self.s_atom(s.data)))
                out.add(s)
            elif isinstance(s, Store):
                self._check_addr(s.addr)
                ty = sb.type_of(s.data)
                out.add(Dirty(_STORET[ty.size], (s.addr, self.s_atom(s.data))))
                out.add(s)
            elif isinstance(s, Exit):
                out.add(s)
            elif isinstance(s, Dirty):
                out.add(s)
                for fx in s.state_fx:
                    if fx.write and fx.offset < GUEST_STATE_SIZE:
                        out.add(Put(fx.offset + SHADOW_OFFSET, const(Ty.I32, 0)))
                if s.tmp is not None:
                    out.add(WrTmp(self.s_tmp(s.tmp),
                                  const(SHADOW_TY[sb.type_of_tmp(s.tmp)], 0)))
            else:
                raise TypeError(f"taintcheck cannot instrument {s!r}")
        # Sink: indirect control transfers to tainted addresses.
        if sb.next is not None and not isinstance(sb.next, Const):
            v = self.s_atom(sb.next)
            guard = out.assign_new(_cmpnez(Ty.I32, v))
            out.add(Dirty(_SINK, (), guard=guard,
                          state_fx=(StateFx(False, gpr_offset(4), 4),)))
        out.next = sb.next
