"""Cachegrind: a cache profiler (2,431 lines of C in Valgrind 3.2.1).

Simulates an I1/D1/L2 hierarchy and attributes hits/misses to guest code
locations.  Instrumentation: one helper call per instruction (I-fetch,
using the IMark's address and length — the reason IMarks exist) and one
per data access.  Per-function counts are aggregated through the core's
debug information at exit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.tool import Tool
from ..ir.block import IRSB
from ..ir.expr import Binop, CCall, Const, Expr, Get, ITE, Load, RdTmp, Unop, c32
from ..ir.stmt import Dirty, Exit, IMark, NoOp, Put, Store, WrTmp
from ..ir.types import Ty
from .cachesim import (
    AccessCounts,
    CacheConfig,
    CacheHierarchy,
    DEFAULT_D1,
    DEFAULT_I1,
    DEFAULT_L2,
    HEADER,
)


class Cachegrind(Tool):
    """Cache profiler tool plug-in."""

    name = "cachegrind"
    description = "I1/D1/L2 cache profiler"

    H_INSN = "cg_insn_fetch"
    H_READ = "cg_data_read"
    H_WRITE = "cg_data_write"

    def __init__(
        self,
        i1: CacheConfig = DEFAULT_I1,
        d1: CacheConfig = DEFAULT_D1,
        l2: CacheConfig = DEFAULT_L2,
    ):
        super().__init__()
        self.hierarchy = CacheHierarchy(i1, d1, l2)
        #: per-instruction-address counters.
        self.by_addr: Dict[int, AccessCounts] = {}
        self.totals = AccessCounts()
        #: Address of the instruction currently executing (set by the
        #: I-fetch helper, used to attribute the data accesses that follow).
        self._cur = 0

    # -- helpers -----------------------------------------------------------------

    def _counts_for(self, addr: int) -> AccessCounts:
        c = self.by_addr.get(addr)
        if c is None:
            c = AccessCounts()
            self.by_addr[addr] = c
        return c

    def _insn_fetch(self, env, addr: int, size: int) -> int:
        self._cur = addr
        self.hierarchy.insn_fetch(addr, size, self._counts_for(addr))
        return 0

    def _data_read(self, env, addr: int, size: int) -> int:
        self.hierarchy.data_read(addr, size, self._counts_for(self._cur))
        return 0

    def _data_write(self, env, addr: int, size: int) -> int:
        self.hierarchy.data_write(addr, size, self._counts_for(self._cur))
        return 0

    def pre_clo_init(self, core) -> None:
        super().pre_clo_init(core)
        core.helpers.register_dirty(self.H_INSN, self._insn_fetch)
        core.helpers.register_dirty(self.H_READ, self._data_read)
        core.helpers.register_dirty(self.H_WRITE, self._data_write)

    # -- instrumentation --------------------------------------------------------------

    def instrument(self, sb: IRSB) -> IRSB:
        out = sb.copy()
        stmts = []
        for s in out.stmts:
            if isinstance(s, IMark):
                stmts.append(s)
                stmts.append(
                    Dirty(self.H_INSN, (c32(s.addr), c32(s.length)))
                )
                continue
            if isinstance(s, WrTmp) and isinstance(s.data, Load):
                size = s.data.ty.size
                stmts.append(Dirty(self.H_READ, (s.data.addr, c32(size))))
                stmts.append(s)
                continue
            if isinstance(s, Store):
                size = out.type_of(s.data).size
                stmts.append(Dirty(self.H_WRITE, (s.addr, c32(size))))
                stmts.append(s)
                continue
            stmts.append(s)
        out.stmts = stmts
        return out

    # -- reporting --------------------------------------------------------------------

    def per_function(self) -> List[Tuple[str, AccessCounts]]:
        """Aggregate the per-address counters by symbol (debug info)."""
        agg: Dict[str, AccessCounts] = {}
        program = self.core.program
        for addr, counts in self.by_addr.items():
            name = "???"
            if program is not None:
                hit = program.symbol_at(addr)
                if hit is not None:
                    name = hit[0]
            bucket = agg.setdefault(name, AccessCounts())
            bucket.add(counts)
        return sorted(agg.items(), key=lambda kv: -kv[1].Ir)

    def annotate_lines(self, top: int = 15) -> List[Tuple[str, AccessCounts]]:
        """Aggregate the counters by source line (the ``cg_annotate`` view),
        using the debug information the loader read."""
        agg: Dict[str, AccessCounts] = {}
        program = self.core.program
        for addr, counts in self.by_addr.items():
            where = "???"
            if program is not None:
                li = program.line_at(addr)
                if li is not None:
                    where = f"{li.filename}:{li.line}"
            agg.setdefault(where, AccessCounts()).add(counts)
        ordered = sorted(agg.items(), key=lambda kv: -kv[1].Ir)
        return ordered[:top]

    def summary_lines(self) -> List[str]:
        t = AccessCounts()
        for c in self.by_addr.values():
            t.add(c)
        self.totals = t

        def rate(m, a):
            return f"{100.0 * m / a:.2f}%" if a else "-"

        lines = [
            f"I   refs:      {t.Ir}",
            f"I1  misses:    {t.I1mr}  ({rate(t.I1mr, t.Ir)})",
            f"LLi misses:    {t.ILmr}  ({rate(t.ILmr, t.Ir)})",
            f"D   refs:      {t.Dr + t.Dw}  ({t.Dr} rd + {t.Dw} wr)",
            f"D1  misses:    {t.D1mr + t.D1mw}  "
            f"({rate(t.D1mr + t.D1mw, t.Dr + t.Dw)})",
            f"LLd misses:    {t.DLmr + t.DLmw}  "
            f"({rate(t.DLmr + t.DLmw, t.Dr + t.Dw)})",
        ]
        return lines

    def fini(self, exit_code: int) -> None:
        for line in self.summary_lines():
            self.core.log(f"cachegrind: {line}")
        self.core.log("cachegrind: top functions by Ir:")
        header = "  ".join(f"{h:>8}" for h in HEADER)
        self.core.log(f"cachegrind:   {header}  function")
        for name, counts in self.per_function()[:10]:
            row = "  ".join(f"{v:>8}" for v in counts.row())
            self.core.log(f"cachegrind:   {row}  {name}")
