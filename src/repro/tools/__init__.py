"""Tool plug-ins.

"Valgrind core + tool plug-in = Valgrind tool."  Available tools:

============== ==========================================================
``none``       Nulgrind: no instrumentation (framework base overhead)
``icnt-inline`` per-instruction counter with inline IR
``icnt-call``  per-instruction counter with a helper call
``memcheck``   bit-precise definedness + addressability checking
``cachegrind`` I1/D1/L2 cache profiler
``massif``     heap profiler
``taintcheck`` byte-level taint tracker
``hobbes``     run-time type inference (flags pointer/int misuse)
``tracegrind`` memory-access tracer (the "lightweight tool" example)
============== ==========================================================
"""

from __future__ import annotations

from typing import Dict, Type

from ..core.tool import Tool


def _registry() -> Dict[str, Type[Tool]]:
    from .cachegrind import Cachegrind
    from .hobbes import Hobbes
    from .icnt import ICntC, ICntI
    from .massif import Massif
    from .memcheck import Memcheck
    from .nulgrind import Nulgrind
    from .taintcheck import TaintCheck
    from .tracegrind import Tracegrind

    return {
        cls.name: cls
        for cls in (
            Nulgrind,
            ICntI,
            ICntC,
            Memcheck,
            Hobbes,
            Cachegrind,
            Massif,
            TaintCheck,
            Tracegrind,
        )
    }


def available_tools():
    return sorted(_registry())


def create_tool(name: str) -> Tool:
    """Instantiate a tool by its --tool= name."""
    reg = _registry()
    try:
        return reg[name]()
    except KeyError:
        raise KeyError(
            f"unknown tool {name!r}; available: {', '.join(sorted(reg))}"
        ) from None
