"""A cache hierarchy simulator (Cachegrind's substrate).

Models an I1/D1 split first level and a unified L2, each set-associative
with true-LRU replacement, write-allocate and (for miss accounting)
write-back semantics — the model Cachegrind uses.  Accesses that straddle
a line boundary touch both lines (counted as one access, miss if either
line misses, as Cachegrind does).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class CacheConfig:
    """Size/associativity/line-size of one cache level."""

    size: int
    assoc: int
    line_size: int

    def __post_init__(self) -> None:
        if self.size % (self.assoc * self.line_size):
            raise ValueError("size must be a multiple of assoc * line_size")
        for v in (self.size, self.assoc, self.line_size):
            if v <= 0 or (v & (v - 1)) and v != self.assoc:
                # sizes and line sizes must be powers of two; assoc need not.
                if v in (self.size, self.line_size):
                    raise ValueError(f"{v} must be a power of two")

    @property
    def n_sets(self) -> int:
        return self.size // (self.assoc * self.line_size)

    def describe(self) -> str:
        return f"{self.size} B, {self.assoc}-way, {self.line_size} B lines"


#: Defaults in the ballpark of the paper's test machine (Core 2: 32KB L1s,
#: 4MB L2) scaled down so our scaled workloads still exercise misses.
DEFAULT_I1 = CacheConfig(size=16384, assoc=2, line_size=32)
DEFAULT_D1 = CacheConfig(size=16384, assoc=2, line_size=32)
DEFAULT_L2 = CacheConfig(size=262144, assoc=8, line_size=32)


class Cache:
    """One set-associative LRU cache level."""

    def __init__(self, config: CacheConfig, name: str = "cache"):
        self.config = config
        self.name = name
        self._sets: List[List[int]] = [[] for _ in range(config.n_sets)]
        self._line_shift = config.line_size.bit_length() - 1
        self.accesses = 0
        self.misses = 0

    def access_line(self, line_tag: int) -> bool:
        """Touch one line (already divided by line size); True on miss."""
        self.accesses += 1
        s = self._sets[line_tag % self.config.n_sets]
        try:
            s.remove(line_tag)
            s.append(line_tag)  # move to MRU
            return False
        except ValueError:
            pass
        self.misses += 1
        if len(s) >= self.config.assoc:
            s.pop(0)  # evict LRU
        s.append(line_tag)
        return True

    def lines_of(self, addr: int, size: int) -> range:
        first = addr >> self._line_shift
        last = (addr + max(size, 1) - 1) >> self._line_shift
        return range(first, last + 1)

    def flush(self) -> None:
        self._sets = [[] for _ in range(self.config.n_sets)]


@dataclass
class AccessCounts:
    """Cachegrind's nine counters."""

    Ir: int = 0    # instructions read
    I1mr: int = 0  # I1 read misses
    ILmr: int = 0  # L2 instruction read misses
    Dr: int = 0    # data reads
    D1mr: int = 0
    DLmr: int = 0
    Dw: int = 0    # data writes
    D1mw: int = 0
    DLmw: int = 0

    def add(self, other: "AccessCounts") -> None:
        for f in self.__dataclass_fields__:
            setattr(self, f, getattr(self, f) + getattr(other, f))

    def row(self) -> Tuple[int, ...]:
        return (self.Ir, self.I1mr, self.ILmr, self.Dr, self.D1mr, self.DLmr,
                self.Dw, self.D1mw, self.DLmw)


HEADER = ("Ir", "I1mr", "ILmr", "Dr", "D1mr", "DLmr", "Dw", "D1mw", "DLmw")


class CacheHierarchy:
    """I1 + D1 backed by a unified L2."""

    def __init__(
        self,
        i1: CacheConfig = DEFAULT_I1,
        d1: CacheConfig = DEFAULT_D1,
        l2: CacheConfig = DEFAULT_L2,
    ):
        if i1.line_size != l2.line_size or d1.line_size != l2.line_size:
            raise ValueError("line sizes must match across levels")
        self.i1 = Cache(i1, "I1")
        self.d1 = Cache(d1, "D1")
        self.l2 = Cache(l2, "L2")

    def insn_fetch(self, addr: int, size: int, counts: AccessCounts) -> None:
        counts.Ir += 1
        for line in self.i1.lines_of(addr, size):
            if self.i1.access_line(line):
                counts.I1mr += 1
                if self.l2.access_line(line):
                    counts.ILmr += 1

    def data_read(self, addr: int, size: int, counts: AccessCounts) -> None:
        counts.Dr += 1
        for line in self.d1.lines_of(addr, size):
            if self.d1.access_line(line):
                counts.D1mr += 1
                if self.l2.access_line(line):
                    counts.DLmr += 1

    def data_write(self, addr: int, size: int, counts: AccessCounts) -> None:
        counts.Dw += 1
        for line in self.d1.lines_of(addr, size):
            if self.d1.access_line(line):
                counts.D1mw += 1
                if self.l2.access_line(line):
                    counts.DLmw += 1
