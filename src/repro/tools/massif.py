"""Massif: a heap profiler (1,764 lines of C in Valgrind 3.2.1).

Tracks the program's live heap over time by wrapping the allocator
functions (R8), keeps per-allocation-site totals, and records snapshots —
including the peak — that can be printed as a text profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.tool import Tool


@dataclass
class Snapshot:
    time: int          # guest blocks executed when taken
    heap_bytes: int
    heap_blocks: int
    #: (symbolised allocation site, bytes) pairs, biggest first.
    detail: List[Tuple[str, int]] = field(default_factory=list)


class Massif(Tool):
    """Heap profiler tool plug-in."""

    name = "massif"
    description = "heap usage profiler"

    #: Take a snapshot every N allocator events.
    SNAPSHOT_EVERY = 64

    def __init__(self) -> None:
        super().__init__()
        self.live: Dict[int, Tuple[int, Tuple[int, ...]]] = {}  # ptr -> (size, site)
        self.by_site: Dict[Tuple[int, ...], int] = {}
        self.heap_bytes = 0
        self.peak_bytes = 0
        self.snapshots: List[Snapshot] = []
        self.peak_snapshot: Optional[Snapshot] = None
        self._events = 0

    # -- wrappers -----------------------------------------------------------------

    def pre_clo_init(self, core) -> None:
        super().pre_clo_init(core)
        core.redirector.wrap_libc("malloc", self._wrap_alloc)
        core.redirector.wrap_libc("calloc", self._wrap_calloc)
        core.redirector.wrap_libc("realloc", self._wrap_realloc)
        core.redirector.wrap_libc("free", self._wrap_free)

    def _arg(self, machine, i: int) -> int:
        sp = machine.reg(4)
        return int.from_bytes(machine.mem.read(sp + 4 + 4 * i, 4), "little")

    def _site(self) -> Tuple[int, ...]:
        return tuple(self.core.stack_trace_pcs(6))

    def _now(self) -> int:
        sched = self.core.scheduler
        return sched.dispatcher.stats.blocks_executed if sched else 0

    def _record_alloc(self, ptr: int, size: int) -> None:
        if ptr == 0:
            return
        site = self._site()
        self.live[ptr] = (size, site)
        self.by_site[site] = self.by_site.get(site, 0) + size
        self.heap_bytes += size
        self._tick()

    def _record_free(self, ptr: int) -> None:
        entry = self.live.pop(ptr, None)
        if entry is None:
            return
        size, site = entry
        self.by_site[site] -= size
        self.heap_bytes -= size
        self._tick()

    def _tick(self) -> None:
        self._events += 1
        if self.heap_bytes > self.peak_bytes:
            self.peak_bytes = self.heap_bytes
            self.peak_snapshot = self._snapshot(detailed=True)
        if self._events % self.SNAPSHOT_EVERY == 0:
            self.snapshots.append(self._snapshot())

    def _snapshot(self, detailed: bool = False) -> Snapshot:
        snap = Snapshot(self._now(), self.heap_bytes, len(self.live))
        if detailed:
            sites = sorted(self.by_site.items(), key=lambda kv: -kv[1])[:8]
            for site, size in sites:
                if size <= 0:
                    continue
                frames = self.core.error_mgr.symbolise_stack(site)
                where = " <- ".join(
                    f.symbol or f"0x{f.pc:X}" for f in frames[1:4]
                )
                snap.detail.append((where or "???", size))
        return snap

    def _wrap_alloc(self, machine, call_original) -> None:
        size = self._arg(machine, 0)
        call_original()
        self._record_alloc(machine.reg(0), size)

    def _wrap_calloc(self, machine, call_original) -> None:
        size = self._arg(machine, 0) * self._arg(machine, 1)
        call_original()
        self._record_alloc(machine.reg(0), size)

    def _wrap_realloc(self, machine, call_original) -> None:
        old = self._arg(machine, 0)
        size = self._arg(machine, 1)
        call_original()
        new = machine.reg(0)
        if old:
            self._record_free(old)
        if size:
            self._record_alloc(new, size)

    def _wrap_free(self, machine, call_original) -> None:
        ptr = self._arg(machine, 0)
        call_original()
        if ptr:
            self._record_free(ptr)

    # -- reporting -------------------------------------------------------------------

    def profile_lines(self) -> List[str]:
        lines = [f"peak heap usage: {self.peak_bytes} bytes"]
        if self.peak_snapshot:
            for where, size in self.peak_snapshot.detail:
                pct = 100.0 * size / self.peak_bytes if self.peak_bytes else 0.0
                lines.append(f"  {pct:5.1f}% ({size} B) {where}")
        lines.append(f"snapshots: {len(self.snapshots)}")
        if self.snapshots:
            top = max(s.heap_bytes for s in self.snapshots) or 1
            for s in self.snapshots[-20:]:
                bar = "#" * int(40 * s.heap_bytes / top)
                lines.append(f"  t={s.time:>8}  {s.heap_bytes:>10} B |{bar}")
        return lines

    def fini(self, exit_code: int) -> None:
        for line in self.profile_lines():
            self.core.log(f"massif: {line}")
