"""Error recording, suppression and stack traces (requirement R9).

The core provides the output-related services tools need: recording
errors with deduplication, suppressing uninteresting/unfixable errors via
suppression files, producing symbolised stack traces from the debug
information the loader read, and a final error summary.

Suppression file format (one entry per ``{...}`` block, like Valgrind's)::

    {
       name-of-suppression
       ToolName:ErrorKind
       fun:malloc
       fun:do_*
    }

``fun:`` lines are matched (with ``*``/``?`` wildcards) against the
symbolised call stack from the innermost frame outward.
"""

from __future__ import annotations

import enum
import fnmatch
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple


class ExitCode(enum.IntEnum):
    """Every non-guest exit code the launcher and core can produce.

    Guest programs own the ordinary 0..255 space; the framework reserves
    the conventional high codes (``timeout(1)``-style) for stops it
    causes itself, plus ``128 + sig`` for default-fatal guest signals.
    """

    OK = 0
    #: Command-line / environment problem (bad option, missing file, ...).
    USAGE = 2
    #: A partial (crash-bundle) replay consumed the whole log and stopped.
    REPLAY_EXHAUSTED = 96
    #: --replay execution strayed from the recorded run.
    REPLAY_DIVERGENCE = 97
    #: A max_blocks execution budget expired (guest-caused, terminal).
    BLOCK_BUDGET = 124
    #: All client threads blocked on each other (guest-caused, terminal).
    DEADLOCK = 125
    #: Base for default-fatal guest signals: the process exits 128 + sig.
    SIGNAL_BASE = 128

    @classmethod
    def for_signal(cls, sig: int) -> int:
        """The exit code for a default-fatal guest signal."""
        return int(cls.SIGNAL_BASE) + sig

    @classmethod
    def signal_of(cls, code: int) -> Optional[int]:
        """The fatal signal behind *code*, if it encodes one."""
        if int(cls.SIGNAL_BASE) < code < int(cls.SIGNAL_BASE) + 32:
            return code - int(cls.SIGNAL_BASE)
        return None

    @classmethod
    def is_guest_caused(cls, code: int) -> bool:
        """True for exits the *guest* produced (normal exits, fatal guest
        signals, budget/deadlock stops) as opposed to infrastructure
        failures.  The fleet supervisor treats these as terminal: re-running
        the same program deterministically reproduces them."""
        return (0 <= code < int(cls.REPLAY_EXHAUSTED)
                or code in (cls.BLOCK_BUDGET, cls.DEADLOCK)
                or cls.signal_of(code) is not None)


@dataclass(frozen=True)
class Frame:
    pc: int
    symbol: str
    offset: int
    location: str  # "file:line" or ""

    def describe(self) -> str:
        loc = f" ({self.location})" if self.location else ""
        if self.symbol:
            return f"0x{self.pc:X}: {self.symbol}+{self.offset}{loc}"
        return f"0x{self.pc:X}: ???{loc}"


@dataclass
class Error:
    """One recorded (unique) error."""

    kind: str
    message: str
    tid: int
    stack: Tuple[Frame, ...]
    addr: Optional[int] = None
    count: int = 1
    #: Extra tool-specific payload (e.g. Memcheck's origin info).
    extra: Optional[object] = None

    def key(self) -> tuple:
        top = tuple(f.pc for f in self.stack[:4])
        return (self.kind, self.message, top)

    def format(self) -> str:
        lines = [f"{self.kind}: {self.message}"]
        for f in self.stack:
            lines.append(f"   at {f.describe()}")
        return "\n".join(lines)


@dataclass
class Suppression:
    name: str
    tool: str
    kind: str
    callers: List[str]

    def matches(self, tool: str, err: Error) -> bool:
        if self.tool != "*" and self.tool != tool:
            return False
        if not fnmatch.fnmatch(err.kind, self.kind):
            return False
        symbols = [f.symbol or "???" for f in err.stack]
        for i, pattern in enumerate(self.callers):
            if i >= len(symbols) or not fnmatch.fnmatch(symbols[i], pattern):
                return False
        return True


def parse_suppressions(text: str) -> List[Suppression]:
    """Parse a suppression file's contents."""
    sups: List[Suppression] = []
    lines = [ln.strip() for ln in text.splitlines()]
    i = 0
    while i < len(lines):
        if lines[i] != "{":
            i += 1
            continue
        body = []
        i += 1
        while i < len(lines) and lines[i] != "}":
            if lines[i] and not lines[i].startswith("#"):
                body.append(lines[i])
            i += 1
        i += 1
        if len(body) < 2:
            continue
        name = body[0]
        tool, _, kind = body[1].partition(":")
        callers = [ln[4:] for ln in body[2:] if ln.startswith("fun:")]
        sups.append(Suppression(name, tool, kind or "*", callers))
    return sups


class ErrorManager:
    """Records, dedups, suppresses and reports errors for one run."""

    #: Stop recording after this many unique errors (like Valgrind).
    MAX_UNIQUE = 1000

    def __init__(
        self,
        tool_name: str,
        log: Callable[[str], None],
        symbolise: Callable[[int], Frame],
    ):
        self.tool_name = tool_name
        self._log = log
        self._symbolise = symbolise
        self.errors: List[Error] = []
        self._by_key: dict = {}
        self.suppressions: List[Suppression] = []
        self.suppressed_counts: dict = {}
        self.overflowed = False

    def load_suppressions(self, text: str) -> None:
        self.suppressions.extend(parse_suppressions(text))

    def symbolise_stack(self, pcs: Sequence[int]) -> Tuple[Frame, ...]:
        return tuple(self._symbolise(pc) for pc in pcs)

    def record(
        self,
        kind: str,
        message: str,
        tid: int,
        stack_pcs: Sequence[int],
        addr: Optional[int] = None,
        extra: Optional[object] = None,
    ) -> Optional[Error]:
        """Record an error; returns the Error if it is new and unsuppressed
        (in which case it has also been printed)."""
        err = Error(
            kind=kind,
            message=message,
            tid=tid,
            stack=self.symbolise_stack(stack_pcs),
            addr=addr,
            extra=extra,
        )
        for sup in self.suppressions:
            if sup.matches(self.tool_name, err):
                self.suppressed_counts[sup.name] = (
                    self.suppressed_counts.get(sup.name, 0) + 1
                )
                return None
        key = err.key()
        seen = self._by_key.get(key)
        if seen is not None:
            seen.count += 1
            return None
        if len(self.errors) >= self.MAX_UNIQUE:
            self.overflowed = True
            return None
        self._by_key[key] = err
        self.errors.append(err)
        self._log(err.format())
        self._log("")
        return err

    @property
    def total_errors(self) -> int:
        return sum(e.count for e in self.errors)

    @property
    def unique_errors(self) -> int:
        return len(self.errors)

    def summarise(self) -> None:
        self._log(
            f"ERROR SUMMARY: {self.total_errors} errors from "
            f"{self.unique_errors} contexts"
        )
        for name, n in sorted(self.suppressed_counts.items()):
            self._log(f"  suppressed by {name!r}: {n}")
        if self.overflowed:
            self._log("  (error limit reached; later errors not recorded)")
