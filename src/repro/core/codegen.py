"""Tiered host code generation (the ``--codegen`` pipeline).

Three executable tiers share one runner signature
(``fn(ts) -> (jump-kind, guest_insns)``) and one storage slot
(``Translation.compiled_fn``), so transtab eviction, SMC flushes and
chain severing work identically whichever tier a block is in:

=========  ==================================================  ============
tier       what executes                                        compiled by
=========  ==================================================  ============
closures   per-insn closure list via ``HostCPU.run``            ``compile``
perf       PR-1 generated runner (``_ir[n]`` indexing)          ``compile_fn``
pygen      specialized function: locals + batched writeback     ``compile_pygen``
interp     IR interpreter (JIT-failure quarantine)              ``translate_interp``
=========  ==================================================  ============

``--codegen=closures`` (default) keeps the historical behaviour: the
default loop runs closures, ``--perf`` runs the PR-1 runners compiled
eagerly at insert time.  ``--codegen=pygen`` compiles every block to the
pygen tier on its *first execution* (insert-time compilation is
deferred, so blocks that never run never compile).  ``--codegen=auto``
starts blocks in the closure tier and promotes them to pygen when their
execution count crosses ``--jit-threshold`` — cheap first execution,
optimized hot code, the classic tiered-translation trade.

A pygen compile failure (real or ``--inject=pygen@N``) *demotes* the
block to the closure tier and is counted; it never escapes as a host
traceback.  Per-tier execution time is sampled only under
``--stats=json`` (the wrapper would otherwise tax the hot path).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

#: Tier names, in promotion order (interp is a quarantine, not a target).
TIERS = ("closures", "perf", "pygen", "interp")

#: Valid --codegen modes.
CODEGEN_MODES = ("closures", "pygen", "auto", "traces")


def _tier_counter() -> Dict[str, float]:
    return {t: 0 for t in TIERS}


def _tier_seconds() -> Dict[str, float]:
    return {t: 0.0 for t in TIERS}


@dataclass
class CodegenStats:
    """Cumulative tier bookkeeping (reported under --stats=json)."""

    #: Blocks that entered each tier (a promoted block counts in both).
    tier_attaches: Dict[str, float] = field(default_factory=_tier_counter)
    #: auto: blocks whose exec count crossed the threshold into pygen.
    promotions: int = 0
    #: pygen compile failures demoted to the closure tier.
    demotions: int = 0
    #: Lazy modes: insert-time compilations skipped ...
    compiles_deferred: int = 0
    #: ... of which this many were eventually compiled on first execution
    #: (the difference is translations that never ran — compiles avoided).
    first_exec_compiles: int = 0
    #: Cumulative translation (compile) time per tier, seconds.
    compile_seconds: Dict[str, float] = field(default_factory=_tier_seconds)
    #: Cumulative execution time per tier, seconds (--stats=json only).
    exec_seconds: Dict[str, float] = field(default_factory=_tier_seconds)
    #: Block executions per tier (--stats=json only).
    tier_execs: Dict[str, float] = field(default_factory=_tier_counter)


class CodegenTiers:
    """Chooses, compiles and promotes a translation's execution tier."""

    def __init__(
        self,
        hostcpu,
        options,
        injector=None,
        collect_exec_times: bool = False,
        on_demote: Optional[Callable] = None,
    ):
        self.hostcpu = hostcpu
        self.mode = options.codegen
        self.threshold = max(1, options.jit_threshold)
        self.trace_threshold = max(1, options.trace_threshold)
        self.injector = injector
        self.collect = collect_exec_times
        self.on_demote = on_demote
        #: Trace manager (set by the scheduler under --codegen=traces):
        #: blocks crossing --trace-threshold request a chain recording.
        self.traces = None
        self.stats = CodegenStats()

    # -- transtab insert hook (lazy modes) ---------------------------------------

    def note_deferred(self, t) -> None:
        """Installed as the transtab 'compiler' under pygen/auto: counts
        the insert-time compilation that did NOT happen."""
        self.stats.compiles_deferred += 1

    # -- first-execution hook (both dispatch loops) ------------------------------

    def attach(self, t):
        """Give *t* a ``compiled_fn`` for its starting tier; returns it."""
        self.stats.first_exec_compiles += 1
        if self.mode == "pygen":
            if not self._try_pygen(t):
                self._attach_closures(t, counting=False)
        elif self.mode == "auto":
            self._attach_closures(t, counting=True)
        elif self.mode == "traces":
            if not self._try_pygen(t):
                self._attach_closures(t, counting=False)
            elif self.traces is not None:
                self._wrap_trace_counting(t)
        else:  # closures: the perf loop's lazy fallback
            self.attach_perf(t)
        return t.compiled_fn

    def _wrap_trace_counting(self, t) -> None:
        """Count the pygen runner's executions; at --trace-threshold ask
        the trace manager to record the chain starting at this block.

        The wrapper exists only to find the threshold crossing: once it
        fires it puts the raw runner back, so steady-state block
        execution pays no counting frame.  The trace manager re-wraps a
        severed trace's surviving head (via ``rewrap``) to let it prove
        itself hot again.
        """
        inner = t.compiled_fn
        threshold = self.trace_threshold
        mgr = self.traces

        def fn(ts, _inner=inner, _t=t):
            out = _inner(ts)
            n = _t.exec_count + 1
            _t.exec_count = n
            if n >= threshold:
                _t.compiled_fn = _inner
                # Fire once: a failed trace build is not retried.
                if not _t.trace_failed:
                    mgr.request(_t)
            return out

        t.compiled_fn = fn

    def attach_perf(self, t):
        """Compile *t* through the PR-1 content-addressed runner cache
        (used eagerly at insert time under ``--perf --codegen=closures``).
        Raises on failure — the scheduler quarantines."""
        t0 = time.perf_counter()
        fn = self.hostcpu.compile_fn(t.code)
        self.stats.compile_seconds["perf"] += time.perf_counter() - t0
        t.tier = "perf"
        self.stats.tier_attaches["perf"] += 1
        t.compiled_fn = self._timed(fn, "perf") if self.collect else fn
        return t.compiled_fn

    def note_interp(self, t) -> None:
        """Record a quarantined (IR-interpreter) translation."""
        t.tier = "interp"
        self.stats.tier_attaches["interp"] += 1

    # -- tiers -------------------------------------------------------------------

    def _try_pygen(self, t) -> bool:
        """Compile *t* to the pygen tier; on any failure (including an
        injected one) demote and return False."""
        try:
            if self.injector is not None:
                self.injector.pygen_failure(t.guest_addr)
            t0 = time.perf_counter()
            fn = self.hostcpu.compile_pygen(t.code)
            self.stats.compile_seconds["pygen"] += time.perf_counter() - t0
        except Exception as exc:
            t.pygen_failed = True
            self.stats.demotions += 1
            if self.on_demote is not None:
                self.on_demote(t, exc)
            return False
        t.tier = "pygen"
        self.stats.tier_attaches["pygen"] += 1
        t.compiled_fn = self._timed(fn, "pygen") if self.collect else fn
        return True

    def _attach_closures(self, t, counting: bool) -> None:
        t0 = time.perf_counter()
        compiled = self.hostcpu.compile(t.code)
        self.stats.compile_seconds["closures"] += time.perf_counter() - t0
        t.compiled = compiled
        run = self.hostcpu.run
        if counting:
            threshold = self.threshold
            tiers = self

            def fn(ts, _run=run, _c=compiled, _t=t):
                out = _run(_c, ts)
                n = _t.exec_count + 1
                _t.exec_count = n
                # == not >=: a block whose promotion failed is not
                # retried on every subsequent execution.
                if n == threshold and not _t.pygen_failed:
                    tiers._promote(_t)
                return out

        else:

            def fn(ts, _run=run, _c=compiled):
                return _run(_c, ts)

        t.tier = "closures"
        self.stats.tier_attaches["closures"] += 1
        t.compiled_fn = self._timed(fn, "closures") if self.collect else fn

    def _promote(self, t) -> None:
        """auto: a block crossed the threshold — move it to pygen.  The
        swap takes effect on the block's next execution."""
        if self._try_pygen(t):
            self.stats.promotions += 1

    def _timed(self, fn, tier: str):
        pc = time.perf_counter
        stats = self.stats

        def run(ts):
            t0 = pc()
            out = fn(ts)
            stats.exec_seconds[tier] += pc() - t0
            stats.tier_execs[tier] += 1
            return out

        return run

    # -- reporting ---------------------------------------------------------------

    def stats_dict(self, transtab=None) -> dict:
        # Imported here, not at module top: pygen stays unloaded for
        # closures/--perf runs that never compile a block (and never ask
        # for stats), keeping their per-process footprint unchanged.
        from ..backend.pygen import emit_cache_stats as _emit_cache_stats

        s = self.stats
        cpu = self.hostcpu
        out = {
            "mode": self.mode,
            "jit_threshold": self.threshold,
            "tier_attaches": {k: int(v) for k, v in s.tier_attaches.items()},
            "promotions": s.promotions,
            "demotions": s.demotions,
            "compiles_deferred": s.compiles_deferred,
            "first_exec_compiles": s.first_exec_compiles,
            "compiles_avoided": max(
                0, s.compiles_deferred - s.first_exec_compiles
            ),
            "compile_seconds": dict(s.compile_seconds),
            "exec_seconds": dict(s.exec_seconds),
            "tier_execs": {k: int(v) for k, v in s.tier_execs.items()},
            "pygen_cache": {
                "hits": cpu.pygen_cache_hits,
                "misses": cpu.pygen_cache_misses,
                "unique_blocks": len(cpu._pygen_cache),
            },
            "emit_cache": _emit_cache_stats(),
        }
        if transtab is not None:
            live: Dict[str, int] = {}
            for t in transtab.all_translations():
                tier = t.tier or "pending"
                live[tier] = live.get(tier, 0) + 1
            out["live_blocks"] = live
        return out
