"""The scheduler: thread serialisation, signals, and trap handling.

Sections 3.9/3.14/3.15.  The scheduler is the slow path around the
dispatcher: it makes translations, runs system calls through the
wrappers, dispatches host-libc calls (through any tool wrappers), handles
client requests, and manages threads and signals.

* **Thread serialisation** (3.14): only the thread holding the big lock
  runs; threads drop the lock before blocking system calls or after a
  timeslice of code blocks.  The kernel-style run queue chooses who runs
  next, but the scheduler dictates *when* switches occur — so shadow
  loads/stores can never interleave with their originals.

* **Signals** (3.15): the core intercepts all signal registrations and
  deliveries; asynchronous signals are delivered only *between* code
  blocks, which also guarantees they never separate a load/store from its
  shadow counterpart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..backend.hostcpu import HostCPU
from ..frontend.disasm import TranslationFault
from ..guest.encoding import decode
from ..guest.loader import SIGPAGE_ADDR, THREAD_STACK_REGION, LoadedProgram
from ..guest.refcpu import CPUError, RefCPU
from ..guest.regs import GUEST_STATE_SIZE, OFFSET_IP_AT_SYSCALL, SP
from ..ir.stmt import JumpKind
from ..ir.types import Ty
from ..kernel import kernel as K
from ..kernel.kernel import Kernel, ProcessExit, SigInfo
from ..kernel.memory import GuestFault, GuestMemory, PROT_RWX
from ..kernel.sigframe import FRAME_PUSH, pop_signal_frame, push_signal_frame
from . import clientreq as CR
from .codegen import CodegenTiers
from .dispatch import Dispatcher
from .errors import ExitCode
from .events import EventRegistry
from .faultinject import FaultInjector
from .function_wrap import FunctionRedirector
from .options import BadOption, Options
from .replay import (
    EventLog,
    Recorder,
    Replayer,
    ReplayFormatError,
    ReplayLogExhausted,
    apply_snapshot,
    EV_CHECKPOINT,
    unpack_obj,
)
from .smc import SmcPolicy
from .syscalls import SyscallWrappers
from .threadstate import ThreadState, ThreadStatus
from .translate import SP_TRACK_HELPER, Translator, make_interp_runner
from .transtab import TranslationTable

M32 = 0xFFFFFFFF


class BigLock:
    """The thread serialisation lock (Section 3.14).

    In real Valgrind this is a pipe holding a single character; here the
    process model is already serial, so the lock exists to *model* the
    discipline — exactly one holder, released only at blocking syscalls
    and timeslice expiry — and to expose its statistics.
    """

    def __init__(self) -> None:
        self.holder: Optional[int] = None
        self.acquisitions = 0
        self.handoffs = 0

    def acquire(self, tid: int) -> None:
        assert self.holder is None, "big lock already held"
        self.holder = tid
        self.acquisitions += 1

    def release(self, tid: int) -> None:
        assert self.holder == tid, "big lock released by non-holder"
        self.holder = None
        self.handoffs += 1


class _TsCtx:
    """RegContext adapter over a ThreadState, for signal frames."""

    def __init__(self, ts: ThreadState):
        self.ts = ts

    def get_reg(self, i: int) -> int:
        return self.ts.reg(i)

    def set_reg_(self, i: int, v: int) -> None:
        self.ts.set_reg(i, v)

    def get_pc(self) -> int:
        return self.ts.pc

    def set_pc(self, v: int) -> None:
        self.ts.pc = v

    def get_thunk(self):
        from ..guest import regs as R

        g = self.ts.get
        return (
            g(R.OFFSET_CC_OP, Ty.I32),
            g(R.OFFSET_CC_DEP1, Ty.I32),
            g(R.OFFSET_CC_DEP2, Ty.I32),
            g(R.OFFSET_CC_NDEP, Ty.I32),
        )

    def set_thunk(self, op, dep1, dep2, ndep) -> None:
        from ..guest import regs as R

        p = self.ts.put
        p(R.OFFSET_CC_OP, Ty.I32, op)
        p(R.OFFSET_CC_DEP1, Ty.I32, dep1)
        p(R.OFFSET_CC_DEP2, Ty.I32, dep2)
        p(R.OFFSET_CC_NDEP, Ty.I32, ndep)


class VgMachine:
    """libc Machine interface bound to the scheduler's current thread.

    Its ``syscall`` goes through the *wrapper* layer, so allocator brk
    calls made by host libc fire the same R6 events real guest syscalls
    do.
    """

    def __init__(self, sched: "Scheduler", tid: int):
        self._sched = sched
        self._tid = tid

    @property
    def mem(self) -> GuestMemory:
        return self._sched.memory

    def reg(self, i: int) -> int:
        return self._sched.threads[self._tid].reg(i)

    def set_reg(self, i: int, value: int) -> None:
        self._sched.threads[self._tid].set_reg(i, value)
        # A host-side write of a guest register produces a defined value;
        # the event lets shadow-value tools update the register's shadow.
        from ..guest.regs import gpr_offset

        self._sched.events.fire(
            "post_reg_write", self._tid, gpr_offset(i), 4, "host libc"
        )

    def syscall(self, num: int, a1: int = 0, a2: int = 0, a3: int = 0) -> int:
        r = self._sched.wrappers.do_syscall(self._tid, num, a1, a2, a3,
                                            from_host=True)
        if r is K.BLOCKED or r is K.NO_RESULT:
            raise RuntimeError("libc made a blocking syscall")
        return r

    @property
    def tid(self) -> int:
        return self._tid


class ExecEnv:
    """The environment handed to dirty helpers (tool helpers included)."""

    def __init__(self, sched: "Scheduler"):
        self._sched = sched

    @property
    def state(self) -> ThreadState:
        return self._sched.current_ts

    @property
    def mem(self) -> GuestMemory:
        return self._sched.memory

    @property
    def tid(self) -> int:
        return self._sched.current_tid

    @property
    def tool(self):
        return self._sched.tool

    @property
    def core(self):
        return self._sched.core

    def guest_insns(self) -> int:
        return self._sched.guest_insns()

    def stack_trace_pcs(self, max_depth: int = 16) -> List[int]:
        """Current stack trace, innermost first, for error reports."""
        ts = self._sched.current_ts
        pcs = [ts.pc]
        for retaddr, _callee in reversed(ts.callstack):
            pcs.append(retaddr)
            if len(pcs) >= max_depth:
                break
        return pcs


@dataclass
class RunOutcome:
    exit_code: int
    fatal_signal: Optional[int] = None
    blocks_executed: int = 0
    guest_insns: int = 0
    translations: int = 0
    #: Why the run stopped without the client exiting, if so:
    #: None (normal exit / fatal signal) | "deadlock" | "block-budget".
    stopped_reason: Optional[str] = None
    #: Fault details of the fatal signal, when it was synchronous.
    fault_info: Optional[SigInfo] = None


#: Exit codes for guest-caused abnormal stops (timeout(1) convention).
#: Kept as module-level ints for backward compatibility; the canonical
#: definitions live in :class:`repro.core.errors.ExitCode`.
EXIT_BLOCK_BUDGET = int(ExitCode.BLOCK_BUDGET)
EXIT_DEADLOCK = int(ExitCode.DEADLOCK)


class Scheduler:
    """Drives client execution for the Valgrind core."""

    def __init__(
        self,
        core,  # the Valgrind instance (back-reference for tools)
        kernel: Kernel,
        program: LoadedProgram,
        tool,
        options: Options,
        events: EventRegistry,
        helpers,
        libc,
        redirector: FunctionRedirector,
        error_mgr=None,
    ):
        self.core = core
        self.kernel = kernel
        self.memory = kernel.memory
        self.program = program
        self.tool = tool
        self.options = options
        self.events = events
        self.libc = libc
        self.redirector = redirector
        self.error_mgr = error_mgr

        self.threads: Dict[int, ThreadState] = {}
        self._zombies: Dict[int, int] = {}
        self._run_queue: List[int] = []
        self._next_tid = 1
        self.current_tid = 1
        self.big_lock = BigLock()
        self.registered_stacks = CR.RegisteredStacks()
        self._next_thread_stack = THREAD_STACK_REGION
        self._exit: Optional[ProcessExit] = None
        self.fatal_signal: Optional[int] = None
        self.stopped_reason: Optional[str] = None
        self.fault_info: Optional[SigInfo] = None
        #: Robustness counters (reported under --stats=json).
        self.quarantined_blocks = 0
        self.faults_recovered = 0
        self.pygen_demotions = 0
        #: Optional embedding hook called with guest_insns at every
        #: dispatch-quantum / checkpoint boundary: the fleet supervisor's
        #: worker heartbeat (see core/supervisor.py).  A passive observer —
        #: it must not mutate guest state.
        self.on_progress = None
        #: (event index, pc, guest_insns) where a partial crash-bundle
        #: replay ran out of log, if it did.
        self.replay_exhausted_at: Optional[Tuple[int, int, int]] = None
        #: Deterministic fault-injection plan, if --inject was given.
        #: Under --replay the live injector is disabled: recorded
        #: injection events are imposed from the log instead.
        if options.record and options.replay:
            raise BadOption("--record and --replay are mutually exclusive")
        if options.replay:
            self.rr = Replayer.load(options, options.replay)
            self.injector: Optional[FaultInjector] = None
        elif options.record:
            self.rr = Recorder(options)
            self.injector = FaultInjector(options.inject) if options.inject \
                else None
        else:
            self.rr = None
            self.injector = FaultInjector(options.inject) if options.inject \
                else None
        #: Global scheduler-step counter: incremented once per inner-loop
        #: iteration whenever record/replay is active, keying EV_INJECT
        #: events unambiguously (several steps can share (tid, insns)).
        self._step = 0
        #: Mid-slice resume after --restore: the interrupted thread's
        #: remaining timeslice, consumed by its first synthetic pick.
        self._resume_slice_left: Optional[int] = None
        #: Scratch RefCPU for precise-fault replay (created lazily; one
        #: instance is reused so memory write hooks are registered once).
        self._replay_cpu: Optional[RefCPU] = None

        # Execution machinery.
        self.env = ExecEnv(self)
        self.hostcpu = HostCPU(self.memory, helpers, self.env)
        # Memcheck-style tools expose their shadow page maps for the
        # pygen tier's inlined LOADV/STOREV fast paths (backend.pygen);
        # --memcheck-fastpath=no (or REPRO_MEMCHECK_FASTPATH=0) keeps
        # the helper-only emission for differential testing.
        shadow_maps = tool.shadow_fastpath_maps()
        if shadow_maps is not None and options.memcheck_fastpath:
            self.hostcpu.shadow_rd_get, self.hostcpu.shadow_wr_get = \
                shadow_maps
            self.hostcpu.shadow_fastpath = True
        self.transtab = TranslationTable(options.transtab_entries,
                                         policy=options.transtab_policy)
        #: Codegen tiering (closures / perf / pygen / interp); per-tier
        #: execution timing only under --stats=json (the sampling wrapper
        #: would otherwise tax the hot path).
        self.codegen = CodegenTiers(
            self.hostcpu,
            options,
            injector=self.injector,
            collect_exec_times=(options.stats_format == "json"
                                or options.stats_out is not None),
            on_demote=self._on_pygen_demoted,
        )
        if options.codegen != "closures":
            # Lazy compilation: blocks compile on first execution (pygen)
            # or on threshold crossing (auto); translations that never run
            # never compile.  The insert hook just counts the deferral.
            self.transtab.set_compiler(self.codegen.note_deferred)
        elif options.perf:
            # Perf mode: compile each translation eagerly at insert time
            # through the content-addressed compiled-code cache, instead of
            # lazily inside the dispatch loop.  A runner-compilation
            # failure quarantines the block into the IR interpreter
            # instead of killing the run.
            def _eager_compile(t):
                try:
                    self.codegen.attach_perf(t)
                except Exception as exc:
                    if not self._quarantine_existing(t, exc):
                        raise

            self.transtab.set_compiler(_eager_compile)
        self.smc = SmcPolicy(options.smc_check, self._fetch_exact)
        self.translator = Translator(
            self._fetch,
            tool,
            options,
            track_stack_events=events.tracks_stack_events,
        )
        self.translator.disasm._chase_ok = self._chase_ok
        if self.injector is not None:
            self.translator.fail_hook = self.injector.jit_failure
        #: Persistent cross-process translation cache (--cache-dir): one
        #: shared store skips the whole pipeline for byte-identical
        #: blocks across runs and fleet workers (core.codecache).
        self.codecache = None
        # --trace-translations prints per-phase IR *during* translation;
        # a cache hit skips those phases, so debug-trace runs stay
        # uncached to keep their output meaningful.
        if options.cache_dir and not options.trace_translations:
            from .codecache import CodeCache

            try:
                self.codecache = CodeCache(
                    options.cache_dir, max_mb=options.cache_max_mb
                )
            except OSError:
                self.codecache = None  # unusable directory: run uncached
        if self.codecache is not None:
            # pygen emit payloads and trace build results persist through
            # the same store (backend.pygen / core.traces find it here).
            self.hostcpu.codecache = self.codecache
            _redir = self.redirector
            self.translator.cache = self.codecache.translation_view(
                # Tool class identity + name + unclaimed options: two
                # tools instrumenting differently must never share a
                # translation context.
                tool_key=(f"{type(tool).__module__}."
                          f"{type(tool).__qualname__}:{tool.name}"),
                tool_options=tuple(options.tool_options),
                options=options,
                track_stack_events=events.tracks_stack_events,
                # Redirects steer the disassembler's chase decisions
                # (_chase_ok), and tools add them at runtime — re-read
                # the table on every lookup.
                redirects_fn=lambda: tuple(
                    sorted(_redir._guest_redirects.items())
                ),
            )
            from ..backend.pygen import set_emit_cache_budget

            # The in-process emit cache shares the disk budget knob.
            set_emit_cache_budget(options.cache_max_mb * 1024 * 1024)
        self.dispatcher = Dispatcher(
            self.transtab, self.hostcpu, options, smc_recheck=self.smc.recheck
        )
        self.dispatcher.fault_recover = self._recover_fault
        self.dispatcher.signals_pending = self._signals_pending
        self.dispatcher.attach_runner = self.codegen.attach
        #: Trace tier (--codegen=traces): the manager records hot chains
        #: and stitches them into compiled superblocks; traces live off
        #: the translation table, severed through its on_kill hook.
        if options.codegen == "traces":
            from .traces import (
                TraceManager,
                VG_TRACE_CALL,
                VG_TRACE_RET,
                vg_trace_call,
                vg_trace_ret,
            )

            self.traces = TraceManager(
                self.translator,
                self.hostcpu,
                options,
                resolve=self.redirector.resolve,
                on_fail=self._on_trace_failed,
            )
            self.codegen.traces = self.traces
            # Severed heads get their counting wrapper back so they can
            # prove themselves hot again over retranslated neighbours.
            self.traces.rewrap = self.codegen._wrap_trace_counting
            self.dispatcher.traces = self.traces
            self.transtab.on_kill = self.traces.on_translation_dead
            if VG_TRACE_CALL not in helpers:
                helpers.register_dirty(VG_TRACE_CALL, vg_trace_call)
                helpers.register_dirty(VG_TRACE_RET, vg_trace_ret)
        else:
            self.traces = None
        self.wrappers = SyscallWrappers(
            events, kernel, self, on_code_unmapped=self._on_code_unmapped,
            injector=self.injector, rr=self.rr,
        )
        if SP_TRACK_HELPER not in helpers:
            helpers.register_dirty(SP_TRACK_HELPER, _track_sp_change)

        # Main thread.
        ts = ThreadState(tid=1)
        ts.pc = program.entry
        ts.set_reg(SP, program.initial_sp)
        ts.stack_base = program.stack_base
        ts.stack_limit = program.stack_top
        self.threads[1] = ts
        self._run_queue.append(1)
        self._next_tid = 2
        tool.at_thread_create(1)

        if self.rr is not None:
            # Binding verifies the contract (replay) or stamps the meta
            # (record), and wires the transtab/translator hooks.
            self.rr.bind(self, tool.name)

    # -- helpers -----------------------------------------------------------------

    @property
    def current_ts(self) -> ThreadState:
        return self.threads[self.current_tid]

    def _fetch(self, addr: int, n: int) -> bytes:
        """Fetch up to n executable bytes (for the disassembler)."""
        out = bytearray(self.memory.fetch(addr, 1))
        for i in range(1, n):
            try:
                out += self.memory.fetch(addr + i, 1)
            except GuestFault:
                break
        return bytes(out)

    def _fetch_exact(self, addr: int, n: int) -> bytes:
        return self.memory.fetch(addr, n)

    def _chase_ok(self, addr: int) -> bool:
        return self.redirector.resolve(addr) == addr

    def _on_code_unmapped(self, addr: int, size: int) -> None:
        if self.transtab.discard_range(addr, size):
            self.dispatcher.flush_cache()

    def guest_insns(self) -> int:
        return self.dispatcher.guest_insns

    # -- precise synchronous faults -----------------------------------------------------

    def _signals_pending(self) -> bool:
        """Dispatcher poll hook: did an async signal become pending?"""
        k = self.kernel
        k.check_timers(self.guest_insns())
        return k.has_pending(self.current_tid)

    def _siginfo_for(self, exc, pc: int) -> SigInfo:
        """Classify an escaped guest exception."""
        if isinstance(exc, GuestFault):
            return SigInfo(K.SIGSEGV, addr=exc.addr, access=exc.access, pc=pc)
        if isinstance(exc, ZeroDivisionError):
            return SigInfo(K.SIGFPE, addr=pc, access="fpe", pc=pc)
        return SigInfo(K.SIGILL, addr=pc, access="ill", pc=pc)

    def _recover_fault(self, ts, snapshot: bytes, t, exc) -> Tuple[SigInfo, int]:
        """Commit *ts* exactly to the faulting instruction boundary.

        A fault escaping mid-block leaves the guest state wherever the
        optimised code's PUTs happened to be — opt2 may have sunk or
        coalesced them past instruction boundaries.  Recovery rolls the
        state back to the block-entry *snapshot* and replays the block one
        instruction at a time on the reference CPU until the fault
        reproduces; RefCPU semantics commit nothing before raising, so its
        state at that point IS the precise boundary (registers, CC thunk
        and PC of the faulting instruction).

        Replay is deterministic because the block's own stores were
        already committed once with the same inputs (re-applying them is
        idempotent).  Known limit: a location read and *later* overwritten
        within the same faulting prefix replays the overwritten value;
        none of our front-end's single-instruction expansions do this.
        Dirty/tool helpers are not replayed, so shadow state keeps the
        partial run's effects — shadow precision at fault points is not an
        architected-state property.

        Returns (SigInfo, completed guest instructions — counting the
        faulting attempt, as the native engine does).
        """
        self.faults_recovered += 1
        saved = bytes(ts.data[:GUEST_STATE_SIZE])  # partial, maybe imprecise
        cpu = self._replay_cpu
        if cpu is None:
            cpu = self._replay_cpu = RefCPU(self.memory)
        ts.data[:GUEST_STATE_SIZE] = snapshot
        ts.store_to_cpu(cpu)
        cap = max(1024, 8 * (t.stats.guest_insns or 1))
        steps = 0
        si: Optional[SigInfo] = None
        while steps <= cap and t.covers(cpu.pc):
            pc = cpu.pc
            try:
                trap = cpu.step()
            except GuestFault as f:
                si = SigInfo(K.SIGSEGV, addr=f.addr, access=f.access, pc=pc)
                break
            except ZeroDivisionError:
                si = SigInfo(K.SIGFPE, addr=pc, access="fpe", pc=pc)
                break
            except CPUError:
                si = SigInfo(K.SIGILL, addr=pc, access="ill", pc=pc)
                break
            steps += 1
            if trap is not None:
                break  # a trap is a block boundary; the fault is gone
        if si is not None:
            ts.load_from_cpu(cpu)
            return si, steps + 1
        # The fault did not reproduce (imprecise-replay corner): fall back
        # to the state the faulting execution left behind.
        ts.data[:GUEST_STATE_SIZE] = saved
        return self._siginfo_for(exc, ts.pc), steps + 1

    # -- JIT quarantine (graceful degradation) -----------------------------------------

    def _on_pygen_demoted(self, t, exc) -> None:
        """A pygen-tier compile failed (real or injected): the block runs
        in the closure tier instead.  Counted, logged, never fatal."""
        self.pygen_demotions += 1
        self.core.log(
            f"pygen compile failure for block at {t.guest_addr:#x} "
            f"({exc!r}); demoting to closure tier"
        )

    def _on_trace_failed(self, t, exc) -> None:
        """A trace build headed at *t* failed: its members keep running
        in the block tier and the head is never re-recorded."""
        self.core.log(
            f"trace build failure for chain headed at {t.guest_addr:#x} "
            f"({exc!r}); chain stays in the block tier"
        )

    def _attach_interp_runner(self, t) -> None:
        """Give *t* interpreter-backed runners for both dispatch loops."""
        runner = make_interp_runner(
            t.irsb, self.hostcpu.helpers, self.env, self.memory
        )
        t.compiled_fn = runner  # perf loop
        cpu = self.hostcpu

        def _closure():  # default loop: one hostcpu.run closure
            jk, icnt = runner(cpu.ts)
            cpu._exit_icnt = icnt
            return jk

        t.compiled = [_closure]
        self.codegen.note_interp(t)

    def _quarantine_translation(self, addr: int, exc) -> Optional[object]:
        """Build an interpreter-executed translation for *addr* after an
        internal JIT failure; None if even that is impossible."""
        self.core.log(
            f"JIT failure for block at {addr:#x} ({exc!r}); "
            "quarantining to IR interpreter"
        )
        try:
            t = self.translator.translate_interp(addr)
            self._attach_interp_runner(t)
        except Exception:
            return None
        self.quarantined_blocks += 1
        return t

    def _quarantine_existing(self, t, exc) -> bool:
        """Quarantine an already-translated block whose runner compilation
        failed (perf insert-time path); True on success."""
        q = self._quarantine_translation(t.guest_addr, exc)
        if q is None:
            return False
        t.quarantined = True
        t.irsb = q.irsb
        t.compiled_fn = q.compiled_fn
        t.compiled = q.compiled
        t.tier = "interp"
        return True

    # -- engine interface for the kernel ----------------------------------------------

    def create_thread(self, entry: int, sp: int, arg: int) -> int:
        if sp == 0:
            size = 256 * 1024
            base = self._next_thread_stack
            self._next_thread_stack += size + 0x10000
            self.memory.map(base, size, PROT_RWX)
            self.events.fire("new_mem_mmap", base, size, True, True, True)
            sp = base + size - 16
        tid = self._next_tid
        self._next_tid += 1
        ts = ThreadState(tid=tid)
        ts.pc = entry
        sp = (sp - 8) & M32
        self.memory.write(sp + 4, (arg & M32).to_bytes(4, "little"))
        self.memory.write(sp, b"\0\0\0\0")
        self.events.fire("post_mem_write", tid, sp, 8, "thread_create(args)")
        ts.set_reg(SP, sp)
        ts.stack_base = sp - 256 * 1024
        ts.stack_limit = sp + 16
        self.threads[tid] = ts
        self._run_queue.append(tid)
        self.tool.at_thread_create(tid)
        return tid

    def exit_thread(self, tid: int, status: int) -> None:
        self.threads.pop(tid, None)
        if tid in self._run_queue:
            self._run_queue.remove(tid)
        self._zombies[tid] = status & M32
        self.tool.at_thread_exit(tid)

    def join_status(self, tid: int) -> Optional[int]:
        return self._zombies.get(tid)

    def sigreturn(self, tid: int) -> None:
        pop_signal_frame(_TsCtx(self.threads[tid]), self.memory)

    # -- signals ------------------------------------------------------------------------

    def _handler_runnable(self, handler: int) -> bool:
        """A handler must point into mapped executable memory."""
        try:
            self.memory.fetch(handler, 1)
            return True
        except GuestFault:
            return False

    def _fatal(self, tid: int, sig: int, siginfo: Optional[SigInfo]) -> None:
        """Default-fatal delivery: report Valgrind-style and terminate."""
        self.fatal_signal = sig
        self.fault_info = siginfo
        self._exit = ProcessExit(128 + sig)
        pid = self.kernel.pid
        name = K.SIGNAL_NAMES.get(sig, str(sig))
        log = self.core.log
        log(f"=={pid}== ")
        log(f"=={pid}== Process terminating with default action of "
            f"signal {sig} ({name})")
        if siginfo is not None:
            log(f"=={pid}==   {siginfo.describe()}")
        for i, pc in enumerate(self.env.stack_trace_pcs()):
            frame = self.core._symbolise(pc)
            where = "at" if i == 0 else "by"
            sym = f": {frame.symbol}+{frame.offset:#x}" if frame.symbol else ""
            loc = f" ({frame.location})" if frame.location else ""
            log(f"=={pid}==    {where} {pc:#010x}{sym}{loc}")

    def _deliver_signal(self, tid: int, sig: int,
                        siginfo: Optional[SigInfo] = None) -> None:
        ts = self.threads.get(tid)
        if ts is None:
            return
        if self.rr is not None:
            # The single delivery point: every signal that reaches a live
            # thread is recorded (or verified) keyed by (tid, guest_insns).
            self.rr.signal_delivered(tid, sig, siginfo)
        if sig == K.SIGKILL:
            # SIGKILL cannot be caught: fatal even if a (stale, corrupt)
            # handler table entry exists.
            self._fatal(tid, sig, siginfo)
            return
        handler = self.kernel.handler_for(sig)
        if handler != K.SIG_DFL and not self._handler_runnable(handler):
            self.core.log(
                f"=={self.kernel.pid}== handler for signal {sig} at "
                f"{handler:#x} is not in executable memory; using default"
            )
            handler = K.SIG_DFL
        if handler == K.SIG_DFL:
            if sig in K.FATAL_BY_DEFAULT:
                self._fatal(tid, sig, siginfo)
            return
        try:
            push_signal_frame(_TsCtx(ts), self.memory, sig, handler,
                              SIGPAGE_ADDR, siginfo)
        except GuestFault:
            # Cannot even write the frame (corrupt SP): force-fatal, as a
            # real kernel does when signal delivery itself faults.
            self._fatal(tid, K.SIGSEGV, siginfo)
            return
        # The frame is kernel-written guest memory: tell the tool.
        self.events.fire(
            "post_mem_write", tid, (ts.sp) & M32, FRAME_PUSH, "signal frame"
        )

    def _check_signals(self, tid: int) -> None:
        self.kernel.check_timers(self.guest_insns())
        entry = self.kernel.next_pending_info(tid)
        if entry is not None:
            self._deliver_signal(tid, entry[0], entry[1])

    def post_fault(self, tid: int, sig: int,
                   siginfo: Optional[SigInfo] = None) -> None:
        self.kernel.post_signal(tid, sig, siginfo)

    # -- trap handlers --------------------------------------------------------------------

    def _handle_syscall(self, tid: int) -> Optional[str]:
        ts = self.threads[tid]
        r = self.wrappers.do_syscall(
            tid, ts.reg(0), ts.reg(1), ts.reg(2), ts.reg(3)
        )
        if r is K.BLOCKED:
            ts.status = ThreadStatus.WAIT_JOIN
            ts.joining = ts.reg(1)
            return "blocked"
        if r is not K.NO_RESULT:
            ts.set_reg(0, r & M32)
        return None

    def _handle_lcall(self, tid: int) -> None:
        ts = self.threads[tid]
        ip = ts.get(OFFSET_IP_AT_SYSCALL, Ty.I32)
        insn = decode(self.memory.read(ip, 6), 0, ip)
        assert insn.mnemonic == "lcall", insn
        index = insn.operands[0].value
        machine = VgMachine(self, tid)
        self.redirector.call_libc(index, machine)

    def _handle_client_request(self, tid: int) -> None:
        ts = self.threads[tid]
        args = [ts.reg(i) for i in range(4)]
        code = args[0]
        result: Optional[int] = None
        if code == CR.RUNNING_ON_VALGRIND:
            result = 1
        elif code == CR.DISCARD_TRANSLATIONS:
            self._on_code_unmapped(args[1], args[2])
            result = 0
        elif code == CR.STACK_REGISTER:
            result = self.registered_stacks.register(args[1], args[2])
        elif code == CR.STACK_DEREGISTER:
            result = int(self.registered_stacks.deregister(args[1]))
        elif code == CR.STACK_CHANGE:
            result = int(self.registered_stacks.change(args[1], args[2], args[3]))
        elif code == CR.CLIENT_PRINT:
            text = self.memory.read_cstring(args[1]).decode(errors="replace")
            self.core.log(f"[client] {text}")
            result = 0
        else:
            result = self.tool.handle_client_request(tid, args)
            if result is None:
                result = 0
        ts.set_reg(0, result & M32)

    # -- the main loop ------------------------------------------------------------------------

    def run(self, max_blocks: Optional[int] = None) -> RunOutcome:
        try:
            self._run_loop(max_blocks)
        except ReplayLogExhausted as exc:
            # A partial (crash-bundle) replay consumed its whole log:
            # stop cleanly at the exact recorded point instead of
            # treating the truncation as a divergence.  The interrupted
            # thread may still hold the big lock.
            self.stopped_reason = "replay-exhausted"
            self.replay_exhausted_at = (exc.index, exc.pc, exc.insns)
            self._exit = ProcessExit(int(ExitCode.REPLAY_EXHAUSTED))
            if self.big_lock.holder is not None:
                self.big_lock.release(self.big_lock.holder)
        exit_code = self._exit.status if self._exit else 0
        outcome = RunOutcome(
            exit_code=exit_code,
            fatal_signal=self.fatal_signal,
            blocks_executed=self.dispatcher.stats.blocks_executed,
            guest_insns=self.guest_insns(),
            translations=self.translator.translations_made,
            stopped_reason=self.stopped_reason,
            fault_info=self.fault_info,
        )
        if self.rr is not None:
            # Record the final outcome — or, on replay, verify it against
            # the recording and assert the log was consumed completely.
            self.rr.finish(outcome)
        return outcome

    def _run_loop(self, max_blocks: Optional[int]) -> None:
        # tid -> join target; rebuilt from thread statuses so a --restore
        # resumed mid-run re-learns who was blocked at the checkpoint.
        blocked: Dict[int, int] = {
            tid: ts.joining
            for tid, ts in self.threads.items()
            if ts.status is ThreadStatus.WAIT_JOIN and ts.joining is not None
        }
        total_budget = max_blocks
        while self._exit is None:
            # Wake joiners whose target has died.
            for tid, target in list(blocked.items()):
                if target in self._zombies:
                    ts = self.threads[tid]
                    ts.set_reg(0, self._zombies[target])
                    ts.status = ThreadStatus.RUNNABLE
                    del blocked[tid]
                    self._run_queue.append(tid)
            if not self._run_queue:
                if blocked:
                    # A guest-caused condition, not a host error: finish
                    # with a clean outcome the harness can inspect.
                    self.stopped_reason = "deadlock"
                    self.core.log(
                        f"=={self.kernel.pid}== process deadlocked: "
                        "all client threads blocked; terminating"
                    )
                    self._exit = ProcessExit(EXIT_DEADLOCK)
                    break
                self._exit = ProcessExit(0)
                break
            rr = self.rr
            if self._resume_slice_left is not None:
                # Synthetic first pick after --restore: the interrupted
                # thread resumes with its remaining timeslice; neither
                # side records/consumes a schedule event for it.
                tid = self._run_queue.pop(0)
                slice_left = self._resume_slice_left
                self._resume_slice_left = None
            elif rr is not None and rr.replaying:
                tid = rr.next_thread(self._run_queue, self.threads)
                slice_left = self.options.thread_timeslice
            else:
                tid = self._run_queue.pop(0)
                if tid not in self.threads:
                    continue
                if rr is not None:
                    rr.thread_scheduled(tid)
                slice_left = self.options.thread_timeslice
            self.current_tid = tid
            ts = self.threads[tid]
            self.big_lock.acquire(tid)
            reschedule = True  # requeue the thread when its slice ends
            while slice_left > 0 and self._exit is None:
                self._check_signals(tid)
                if self._exit is not None or tid not in self.threads:
                    reschedule = tid in self.threads
                    break
                if total_budget is not None:
                    if self.dispatcher.stats.blocks_executed >= total_budget:
                        self.stopped_reason = "block-budget"
                        self._exit = ProcessExit(EXIT_BLOCK_BUDGET)
                        break
                if rr is not None:
                    # One step per inner iteration, counted identically
                    # under record and replay: the unambiguous key for
                    # dispatch-level injection events.
                    self._step += 1
                    if rr.replaying:
                        name = rr.pending_inject(self._step)
                        if name is not None:
                            self._inject_dispatch_event(tid, ts, name)
                            continue
                    elif self.injector is not None:
                        event = self.injector.dispatch_event()
                        if event is not None:
                            rr.inject_fired(event, self._step, tid)
                            self._inject_dispatch_event(tid, ts, event)
                            continue
                    self.dispatcher.stop_at_insns = rr.next_stop(
                        self.dispatcher.guest_insns
                    )
                elif self.injector is not None:
                    event = self.injector.dispatch_event()
                    if event is not None:
                        self._inject_dispatch_event(tid, ts, event)
                        continue
                try:
                    reason, payload = self.dispatcher.run(ts, max_blocks=slice_left)
                except (GuestFault, ZeroDivisionError) as exc:
                    # Backstop (e.g. --precise-faults=no): classify the
                    # fault from the exception at the current state.
                    si = self._siginfo_for(exc, ts.pc)
                    self.post_fault(tid, si.sig, si)
                    continue
                if reason == "quantum":
                    slice_left -= self.options.dispatch_quantum
                    if rr is not None and hasattr(rr, "autoflush"):
                        rr.autoflush()
                    if self.on_progress is not None:
                        self.on_progress(self.dispatcher.guest_insns)
                    continue
                if reason == "signals":
                    # A pending async signal was observed mid-quantum.
                    slice_left -= max(1, payload)
                    continue
                if reason == "insns":
                    # Checkpoint boundary: snapshot (record) or verify the
                    # state hash against the log (replay), then continue.
                    slice_left -= max(1, payload)
                    if rr is not None:
                        rr.at_insns_stop(tid, slice_left)
                    if self.on_progress is not None:
                        self.on_progress(self.dispatcher.guest_insns)
                    continue
                if reason == "fault":
                    # Precise synchronous fault: the dispatcher already
                    # committed the faulting instruction boundary.
                    self.post_fault(tid, payload.sig, payload)
                    continue
                if reason == "translate":
                    if not self._make_translation(tid, payload):
                        continue  # fault was posted
                    continue
                if reason == "smc":
                    # Stale translation: discard and retranslate.
                    if rr is not None:
                        rr.smc_flush(tid, payload.guest_addr)
                    self.transtab.discard(payload.guest_addr)
                    self.dispatcher.flush_cache()
                    continue
                # reason == "jumpkind"
                jk = payload
                if jk == JumpKind.Exit.value:
                    self._exit = ProcessExit(ts.reg(0))
                    break
                if jk == JumpKind.Syscall.value:
                    try:
                        if self._handle_syscall(tid) == "blocked":
                            blocked[tid] = ts.joining
                            reschedule = False
                            break  # drop the lock before blocking
                    except ProcessExit as exc:
                        self._exit = exc
                        break
                    except GuestFault as f:
                        # A wrapper touched a bad guest pointer before the
                        # kernel could return EFAULT: treat as the fault
                        # the access was.
                        si = SigInfo(K.SIGSEGV, addr=f.addr, access=f.access,
                                     pc=ts.pc)
                        self.post_fault(tid, K.SIGSEGV, si)
                        continue
                    if tid not in self.threads:
                        reschedule = False
                        break
                    continue
                if jk == JumpKind.LCall.value:
                    try:
                        self._handle_lcall(tid)
                    except ProcessExit as exc:
                        self._exit = exc
                        break
                    except GuestFault as f:
                        self.post_fault(tid, K.SIGSEGV,
                                        SigInfo(K.SIGSEGV, addr=f.addr,
                                                access=f.access, pc=ts.pc))
                    if tid not in self.threads:
                        reschedule = False
                        break
                    continue
                if jk == JumpKind.ClientReq.value:
                    self._handle_client_request(tid)
                    continue
                if jk == JumpKind.Yield.value:
                    break  # voluntary switch
                if jk == JumpKind.SigFPE.value:
                    # The guard exit set ts.pc to the faulting instruction.
                    self.post_fault(tid, K.SIGFPE,
                                    SigInfo(K.SIGFPE, addr=ts.pc, access="fpe",
                                            pc=ts.pc))
                    continue
                if jk == JumpKind.SigSEGV.value:
                    self.post_fault(tid, K.SIGSEGV,
                                    SigInfo(K.SIGSEGV, addr=ts.pc, pc=ts.pc))
                    continue
                if jk == JumpKind.NoDecode.value:
                    self.post_fault(tid, K.SIGILL,
                                    SigInfo(K.SIGILL, addr=ts.pc, access="ill",
                                            pc=ts.pc))
                    continue
                raise RuntimeError(f"unhandled jump kind {jk}")
            self.big_lock.release(tid)
            if self._exit is None and reschedule and tid in self.threads:
                self._run_queue.append(tid)

    def _inject_dispatch_event(self, tid: int, ts, event: str) -> None:
        """Apply one scheduled --inject dispatch event."""
        if event == "segv":
            si = SigInfo(K.SIGSEGV, addr=ts.pc, access="synthetic", pc=ts.pc)
            self.post_fault(tid, K.SIGSEGV, si)
        elif event == "smc-flush":
            # Spurious self-modifying-code invalidation of the current
            # block (exercises discard + retranslate).
            t = self.transtab.lookup(ts.pc)
            if t is not None:
                self.transtab.discard(t.guest_addr)
                self.dispatcher.flush_cache()
        elif event == "evict":
            # Forced eviction round (exercises chain severing).
            self.transtab.evict_chunk()
            self.dispatcher.flush_cache()

    def _make_translation(self, tid: int, pc: int) -> bool:
        """Translate the block at *pc* (honouring redirects); False if a
        fault was posted instead."""
        target = self.redirector.resolve(pc)
        try:
            t = self.translator.translate(target)
        except TranslationFault as exc:
            addr = getattr(exc, "addr", pc)
            self.post_fault(tid, K.SIGSEGV,
                            SigInfo(K.SIGSEGV, addr=addr, access="exec", pc=pc))
            return False
        except GuestFault as exc:
            self.post_fault(tid, K.SIGSEGV,
                            SigInfo(K.SIGSEGV, addr=exc.addr, access=exc.access,
                                    pc=pc))
            return False
        except CPUError:
            self.post_fault(tid, K.SIGILL,
                            SigInfo(K.SIGILL, addr=pc, access="ill", pc=pc))
            return False
        except ProcessExit:
            raise
        except Exception as exc:
            # An internal error in the translation pipeline (isel,
            # regalloc, assembly, an injected JIT failure, ...) must not
            # kill the run: quarantine the block into the IR interpreter.
            t = self._quarantine_translation(target, exc)
            if t is None:
                self.post_fault(tid, K.SIGILL,
                                SigInfo(K.SIGILL, addr=pc, access="ill", pc=pc))
                return False
        t.guest_addr = pc  # key under the *requested* address
        ts = self.threads[tid]
        t.smc_checked = self.smc.should_check(t, ts.stack_base, ts.stack_limit)
        self.transtab.insert(t)
        return True

    # -- checkpoint restore ---------------------------------------------------------------

    def _restore_translations(self, entries) -> None:
        """Rebuild the translation table from snapshot entries in their
        original serial order, so post-restore lookup/translate points
        match the original run's warm caches."""
        saved_hook = self.translator.fail_hook
        self.translator.fail_hook = None
        if self.rr is not None:
            self.rr.suspend()
        try:
            for addr, smc_checked, quarantined, smc_hash in entries:
                target = self.redirector.resolve(addr)
                try:
                    if quarantined:
                        t = self.translator.translate_interp(target)
                        self._attach_interp_runner(t)
                        t.tier = "interp"
                    else:
                        t = self.translator.translate(target)
                except Exception:
                    # The code bytes may be gone or undecodable now: the
                    # block simply retranslates on demand, as after any
                    # discard.
                    continue
                t.guest_addr = addr
                t.smc_checked = bool(smc_checked)
                # Preserve the recorded content hash: a translation stale
                # at checkpoint time must fail its SMC recheck after
                # restore exactly as the original would have.
                t.smc_hash = smc_hash
                self.transtab.insert(t, evict_ok=False)
        finally:
            self.translator.fail_hook = saved_hook
            if self.rr is not None:
                self.rr.resume()
        self.dispatcher.flush_cache()

    def restore_from(self, path: str) -> None:
        """Resume this run from the last checkpoint in *path*'s log."""
        if self.rr is not None and self.rr.replaying:
            if path != self.options.replay:
                raise BadOption(
                    "--restore under --replay must name the --replay log"
                )
            log = self.rr.log
        else:
            log = EventLog.load(path)
        found = None
        for i, ev in enumerate(log.events):
            if ev.kind == EV_CHECKPOINT:
                found = (i, ev.args[0])
        if found is None:
            raise ReplayFormatError(
                f"log {path!r} contains no checkpoints to restore from "
                "(record with --checkpoint-every=N)"
            )
        index, ckpt_idx = found
        snap = unpack_obj(log.checkpoints[ckpt_idx])
        if self.rr is not None:
            self.rr.suspend()
        try:
            apply_snapshot(self, snap)
        finally:
            if self.rr is not None:
                self.rr.resume()
        # Tools attached before the restore saw none of this memory:
        # announce every mapped range so shadow state exists.  (Tool
        # *error* output after a restore may differ from the original
        # run; architected replay stays exact.)
        for start, size, prot in self.memory.mapped_ranges():
            self.events.fire(
                "new_mem_mmap", start, size,
                bool(prot & 4), bool(prot & 2), bool(prot & 1),
            )
        if self.rr is not None:
            if self.rr.replaying:
                # Everything before the checkpoint was consumed by the
                # restore itself; replay resumes right after it.
                self.rr.seek_to(index + 1)
            else:
                # Record-from-restore: open the new log with the starting
                # snapshot so its own replay can resume the same way.
                self.rr.bootstrap(snap)


def _track_sp_change(env: ExecEnv, old_sp: int, new_sp: int) -> int:
    """Dirty helper: classify an SP change and fire the R7 stack events.

    Follows the paper's heuristic: changes larger than --max-stackframe
    (2MB by default) are assumed to be stack switches, not allocations;
    client-registered stacks resolve the tricky cases exactly.
    """
    if new_sp == old_sp:
        return 0
    sched: Scheduler = env._sched
    events = sched.events
    threshold = sched.options.max_stackframe
    delta = (old_sp - new_sp) & M32
    # Interpret as a signed distance.
    sdelta = delta - (1 << 32) if delta & 0x8000_0000 else delta
    if abs(sdelta) > threshold or _different_registered_stack(sched, old_sp, new_sp):
        events.fire("pre_stack_switch", old_sp, new_sp)
        ts = sched.current_ts
        reg = sched.registered_stacks.containing(new_sp)
        if reg is not None:
            _sid, start, end = reg
            ts.stack_base, ts.stack_limit = start, end
        return 0
    if sdelta > 0:  # SP moved down: allocation
        events.fire("new_mem_stack", new_sp, sdelta)
    else:  # SP moved up: deallocation
        events.fire("die_mem_stack", old_sp, -sdelta)
    return 0


def _different_registered_stack(sched: Scheduler, old_sp: int, new_sp: int) -> bool:
    old = sched.registered_stacks.containing(old_sp)
    new = sched.registered_stacks.containing(new_sp)
    return old is not None and new is not None and old[0] != new[0]
