"""Self-healing fleet supervisor: a crash-isolated worker pool.

A *fleet* runs N guest jobs concurrently across a pool of forked worker
processes.  The supervisor owns the pool and guarantees that nothing a
single job does — segfault the worker, hang forever, blow its budget,
or raise an internal error — can take down the fleet:

* **Crash isolation** — each job runs inside a worker process; a worker
  that dies (any signal, any exit code) is reaped and replaced without
  disturbing the other workers.
* **Watchdog** — every running attempt has a wall-clock budget and a
  heartbeat: workers beat (via shared memory, so a wedged worker cannot
  fake liveness through a buffered pipe) at every dispatch-quantum
  boundary.  A stale heartbeat or an expired wall budget kills and
  reaps the worker.
* **Retry with seeded backoff** — infrastructure failures (worker death,
  watchdog kills) retry up to ``RetryPolicy.max_retries`` times with
  exponential backoff whose jitter is a pure function of
  ``(seed, job_id, failure#)``, so two fleet runs with the same seed
  produce the identical retry schedule.  Guest-caused exits (normal
  exits, fatal guest signals, block-budget/deadlock stops — see
  :meth:`ExitCode.is_guest_caused`) are *terminal*: re-running the same
  deterministic guest reproduces them, so retrying is pointless.
* **Tier degradation** — repeated pygen/JIT failures degrade the job to
  the closures codegen tier (``--codegen=closures``) before giving up.
* **Crash forensics** — every attempt records under ``--record`` with
  incremental flushing, so a worker killed mid-run leaves a loadable
  log prefix.  A job that exhausts its retries ships a *crash bundle*
  (manifest + event log) that any machine can replay — see
  :func:`replay_bundle` — to the exact event/pc/instruction where the
  recording stopped.

The public embedding API lives in :mod:`repro.api` (:func:`repro.api.run`
runs one guest job in the current process, :func:`repro.api.run_fleet`
wraps :class:`FleetSupervisor`, :func:`repro.api.replay` replays a
bundle).  The historical deep entry points ``run_job`` and
``replay_bundle`` on this module still resolve — via a module
``__getattr__`` that emits a :class:`DeprecationWarning` and forwards to
the byte-compatible :mod:`repro.api` implementations.
"""

from __future__ import annotations

import base64
import hashlib
import heapq
import json
import multiprocessing
import os
import random
import signal as _signal
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as _mpc
from typing import Dict, List, Optional, Tuple, Union

from ..guest.asm import AsmError, assemble
from ..guest.program import VxImage
from ..libc.stubs import build_source
from .errors import ExitCode
from .faultinject import FleetInjector, InjectedJitError, InjectedPygenError
from .options import BadOption, Options
from .replay import EventLog, ReplayFormatError

#: Every state a job can end in.  The supervisor guarantees each job
#: reaches exactly one of these.
TERMINAL_STATES = (
    "succeeded",
    "retried-then-succeeded",
    "degraded-tier-succeeded",
    "terminal-failure",
)


def load_image(path: str, *, filename: Optional[str] = None) -> VxImage:
    """Assemble a .s file (with the libc prelude) into an image.

    Recognises the ``#!interpreter`` script convention.
    """
    with open(path) as f:
        source = f.read()
    name = filename or path
    if source.startswith("#!"):
        interp = source.split("\n", 1)[0][2:].strip()
        return VxImage(name=name, interpreter=interp)
    return assemble(build_source(source), filename=name)


# -- the embedding API ---------------------------------------------------------


@dataclass
class JobResult:
    """Everything one guest job produced.  Picklable: every field is a
    plain value, so results cross the worker pipe untouched."""

    exit_code: int
    stdout: str = ""
    stderr: str = ""
    log: str = ""
    fatal_signal: Optional[int] = None
    stopped_reason: Optional[str] = None
    guest_insns: int = 0
    blocks_executed: int = 0
    translations: int = 0
    #: The --stats=json payload, when stats were requested.
    stats: Optional[dict] = None
    #: Launcher-level failure (bad option, unknown tool, unloadable
    #: program, replay divergence...) — None for any completed guest run.
    error: Optional[str] = None
    #: (event index, pc, guest_insns) where a partial replay ran out of
    #: recorded events (exit code 96); None otherwise.
    replay_exhausted_at: Optional[Tuple[int, int, int]] = None


#: Deep entry points that moved to :mod:`repro.api`.  Resolved lazily by
#: the module ``__getattr__`` below so old imports keep working (with a
#: DeprecationWarning) while the implementations live in one place.
_MOVED_TO_API = {"run_job": "run", "replay_bundle": "replay_bundle"}


def __getattr__(name: str):
    target = _MOVED_TO_API.get(name)
    if target is not None:
        import warnings

        warnings.warn(
            f"repro.core.supervisor.{name} is deprecated; "
            f"use repro.api.{target} (or repro.{name})",
            DeprecationWarning,
            stacklevel=2,
        )
        from .. import api

        return getattr(api, target)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _write_json(path: str, payload: dict) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    os.replace(tmp, path)


# -- fleet configuration -------------------------------------------------------


@dataclass
class JobSpec:
    """One job in a fleet: a program plus its launcher configuration."""

    job_id: int
    program: str
    tool: Optional[str] = None
    #: Core/tool ``--option`` flags (never ``--record``: the supervisor
    #: owns crash-bundle recording).
    flags: List[str] = field(default_factory=list)
    #: Client argv tail (after the program name).
    args: List[str] = field(default_factory=list)
    stdin: bytes = b""
    max_blocks: Optional[int] = None


@dataclass
class RetryPolicy:
    """When and how failed attempts retry.  Every delay is a pure
    function of ``(seed, job_id, failure#)`` — never of wall-clock time
    or of which worker ran the attempt — so the whole retry schedule is
    reproducible."""

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.25
    #: Pygen/JIT failures tolerated before the job is degraded to the
    #: closures codegen tier.
    jit_degrade_after: int = 2
    seed: int = 0

    def backoff(self, job_id: int, failure_no: int) -> float:
        """Delay before retry *failure_no* (1-based) of *job_id*."""
        rng = random.Random(f"backoff:{self.seed}:{job_id}:{failure_no}")
        base = self.backoff_base * (self.backoff_factor ** (failure_no - 1))
        return base * (1.0 + self.backoff_jitter * rng.random())


@dataclass
class WatchdogConfig:
    """Per-attempt liveness limits, enforced by the supervisor."""

    #: Wall-clock budget per attempt, seconds.
    wall_budget: float = 120.0
    #: Kill the worker when its heartbeat is older than this, seconds.
    heartbeat_timeout: float = 30.0
    #: Supervisor poll granularity, seconds.
    poll_interval: float = 0.02


# -- the worker side -----------------------------------------------------------


def _options_from_flags(flags: List[str]) -> Options:
    opts = Options(log_target="capture")
    for flag in flags:
        if not opts.set(flag):
            opts.tool_options.append(flag)
    return opts


def _worker_main(conn, hb_time, hb_insns) -> None:
    """Worker process main loop: receive a job, run it, send the result.

    Heartbeats go through shared memory (*hb_time*/*hb_insns*), written
    from the scheduler's progress hook — so the parent's watchdog sees
    liveness even while the result pipe is idle, and stops seeing it the
    moment the guest wedges the worker.
    """
    _signal.signal(_signal.SIGINT, _signal.SIG_IGN)
    images: Dict[str, VxImage] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if msg[0] == "stop":
            return
        _, spec, attempt, directive, bundle_path, flush_every = msg
        try:
            reply = _worker_run(
                spec, attempt, directive, bundle_path, flush_every,
                images, hb_time, hb_insns,
            )
        except (InjectedPygenError, InjectedJitError) as exc:
            reply = ("error", spec.job_id, attempt,
                     {"type": type(exc).__name__, "msg": str(exc),
                      "jit": True, "tier": _effective_tier(spec)})
        except Exception as exc:
            reply = ("error", spec.job_id, attempt,
                     {"type": type(exc).__name__, "msg": str(exc),
                      "jit": False, "tier": _effective_tier(spec)})
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return


def _effective_tier(spec: JobSpec) -> str:
    try:
        return _options_from_flags(spec.flags).codegen
    except BadOption:
        return "closures"


#: One-step tier degradation ladder applied on repeated JIT failures
#: (closures is the floor and never degrades further).
_DEGRADE_NEXT = {"traces": "pygen", "pygen": "closures", "auto": "closures"}


def _worker_run(spec, attempt, directive, bundle_path, flush_every,
                images, hb_time, hb_insns):
    try:
        opts = _options_from_flags(spec.flags)
    except BadOption as exc:
        return ("done", spec.job_id, attempt,
                JobResult(exit_code=int(ExitCode.USAGE), error=str(exc)))
    # Per-job stats files: a {job}/{attempt} template keeps concurrent
    # workers from racing on one path (satellite: --stats-out).
    if opts.stats_out and "{" in opts.stats_out:
        opts.stats_out = opts.stats_out.format(
            job=spec.job_id, attempt=attempt
        )
    # Crash-bundle recording, unless the job is itself a record/replay.
    if (bundle_path and spec.tool is not None
            and opts.record is None and opts.replay is None):
        opts.record = bundle_path
        opts.record_flush_every = flush_every

    tick = 0

    def beat(insns: int = 0) -> None:
        nonlocal tick
        tick += 1
        hb_insns.value = insns
        hb_time.value = time.monotonic()
        if directive is not None and tick == directive[1]:
            kind = directive[0]
            if kind == "kill":
                os.kill(os.getpid(), _signal.SIGKILL)
            elif kind == "hang":
                while True:  # stop beating; the watchdog reaps us
                    time.sleep(60)
            elif kind == "pygen-poison" and opts.codegen != "closures":
                raise InjectedPygenError(0)

    image = images.get(spec.program)
    if image is None and os.path.exists(spec.program):
        try:
            image = images[spec.program] = load_image(spec.program)
        except (OSError, AsmError):
            image = None
    # Lazy: the facade imports this module at its top, so importing it
    # back at ours would be circular.
    from ..api import run

    beat(0)
    result = run(
        image if image is not None else spec.program,
        spec.tool,
        opts,
        argv=[spec.program] + list(spec.args),
        stdin=spec.stdin,
        max_blocks=spec.max_blocks,
        on_progress=beat,
    )
    result.stdout = result.stdout[:65536]
    result.stderr = result.stderr[:65536]
    result.log = result.log[:65536]
    return ("done", spec.job_id, attempt, result)


# -- crash bundles -------------------------------------------------------------


def write_bundle_manifest(state: "_JobState", log_path: str,
                          classification: str, detail: str) -> str:
    """Write the crash-bundle manifest next to the event log; returns
    the manifest path.  The manifest is everything another machine needs
    to re-create the run: program, tool, flags (as last run, i.e. after
    any tier degradation), client args, stdin, budget — plus the log's
    SHA-256 so transit damage is detected before replay even starts."""
    spec = state.spec
    sha = None
    if os.path.exists(log_path):
        with open(log_path, "rb") as f:
            sha = hashlib.sha256(f.read()).hexdigest()
    manifest = {
        "bundle_version": 1,
        "job_id": spec.job_id,
        "attempt": len(state.attempts) - 1,
        "program": spec.program,
        "tool": spec.tool,
        "flags": list(spec.flags),
        "args": list(spec.args),
        "stdin_b64": base64.b64encode(spec.stdin).decode("ascii"),
        "max_blocks": spec.max_blocks,
        "classification": classification,
        "detail": detail,
        "log": os.path.basename(log_path),
        "log_sha256": sha,
    }
    path = log_path[: -len(".rrlog")] + ".bundle.json"
    _write_json(path, manifest)
    return path


def corrupt_bundle_log(log_path: str) -> bool:
    """Deterministically damage a bundle log in place (the chaos
    matrix's corrupted-in-transit fault).  Returns True if damaged."""
    try:
        with open(log_path, "rb") as f:
            raw = bytearray(f.read())
    except OSError:
        return False
    if len(raw) < 16:
        return False
    raw[len(raw) // 2] ^= 0xFF
    with open(log_path, "wb") as f:
        f.write(bytes(raw))
    return True


# -- fleet aggregation ---------------------------------------------------------


def merge_stats(into: dict, stats: dict) -> dict:
    """Accumulate one job's --stats=json payload into a fleet total:
    numeric leaves sum, nested dicts recurse, everything else (strings,
    bools, None) is dropped — the fleet total is purely additive."""
    for key, value in stats.items():
        if isinstance(value, dict):
            merge_stats(into.setdefault(key, {}), value)
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            into[key] = into.get(key, 0) + value
    return into


# -- the supervisor ------------------------------------------------------------


class _JobState:
    """Supervisor-side lifecycle of one job."""

    def __init__(self, spec: JobSpec):
        self.spec = spec
        self.attempts: List[dict] = []
        self.infra_failures = 0
        self.jit_failures = 0
        self.degraded = False
        self.terminal: Optional[str] = None
        self.result: Optional[JobResult] = None
        self.bundle: Optional[str] = None
        self.bundle_status: Optional[str] = None
        self.bundle_replay: Optional[dict] = None


class _Worker:
    """One pool slot: a forked process plus its pipe and heartbeat cells."""

    def __init__(self, ctx, wid: int):
        self.wid = wid
        self.hb_time = ctx.Value("d", 0.0, lock=False)
        self.hb_insns = ctx.Value("q", 0, lock=False)
        parent_conn, child_conn = ctx.Pipe()
        self.conn = parent_conn
        self.proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, self.hb_time, self.hb_insns),
            daemon=True,
        )
        self.proc.start()
        child_conn.close()
        #: (state, attempt#, directive, log_path, started_at) while busy.
        self.job: Optional[tuple] = None

    def kill(self) -> None:
        try:
            self.proc.kill()
        except Exception:
            pass
        self.proc.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:
            pass


class FleetSupervisor:
    """Runs a list of :class:`JobSpec` to terminal states; never crashes
    because a worker did."""

    def __init__(
        self,
        jobs: List[JobSpec],
        *,
        workers: int = 4,
        policy: Optional[RetryPolicy] = None,
        watchdog: Optional[WatchdogConfig] = None,
        inject: Union[FleetInjector, str, None] = None,
        bundle_dir: Optional[str] = None,
        record_bundles: bool = True,
        record_flush_every: int = 8,
        verify_bundles: bool = False,
        cache_dir: Optional[str] = None,
        cache_max_mb: int = 256,
        echo=None,
    ):
        self.jobs = sorted(jobs, key=lambda s: s.job_id)
        self.workers_n = max(1, workers)
        self.policy = policy or RetryPolicy()
        self.watchdog = watchdog or WatchdogConfig()
        if isinstance(inject, str):
            inject = FleetInjector(inject) if inject else None
        self.injector = inject
        self.record_bundles = record_bundles and bundle_dir is not None
        self.bundle_dir = bundle_dir
        self.record_flush_every = record_flush_every
        self.verify_bundles = verify_bundles
        self.cache_dir = cache_dir
        self.cache_max_mb = cache_max_mb
        if cache_dir is not None:
            # Pre-open the shared translation cache *before* forking any
            # worker: directory layout and version header are created
            # once here, so N workers race only on entry files (which
            # are atomic), never on cache initialisation.
            from .codecache import CodeCache

            try:
                CodeCache(cache_dir, max_mb=cache_max_mb)
            except OSError:
                self.cache_dir = None
            else:
                for spec in self.jobs:
                    if not any(f.startswith("--cache-dir")
                               for f in spec.flags):
                        spec.flags.append(f"--cache-dir={cache_dir}")
                        spec.flags.append(f"--cache-max-mb={cache_max_mb}")
        self.echo = echo or (lambda msg: None)
        self._states = {s.job_id: _JobState(s) for s in self.jobs}
        self._counters = {
            "worker_deaths": 0,
            "worker_respawns": 0,
            "watchdog_wall": 0,
            "watchdog_hang": 0,
        }

    # -- dispatch loop ---------------------------------------------------------

    def run(self) -> dict:
        started = time.monotonic()
        if self.record_bundles:
            os.makedirs(self.bundle_dir, exist_ok=True)
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        workers = [_Worker(ctx, i) for i in range(self.workers_n)]
        pending = deque(self._states[s.job_id] for s in self.jobs)
        delayed: list = []  # (ready_at, seq, state)
        self._seq = 0
        finished = 0
        total = len(self.jobs)
        try:
            while finished < total:
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    pending.append(heapq.heappop(delayed)[2])
                for i in range(len(workers)):
                    if workers[i].job is None and pending:
                        if self._assign(workers[i], pending[0], ctx, workers):
                            pending.popleft()
                busy = [w for w in workers if w.job is not None]
                if not busy:
                    if delayed:
                        time.sleep(
                            min(max(delayed[0][0] - now, 0.0), 0.05)
                        )
                        continue
                    if pending:  # all assigns failed; slots respawned
                        continue
                    break  # inconsistent bookkeeping; bail instead of spin
                ready = _mpc.wait(
                    [w.conn for w in busy],
                    timeout=self.watchdog.poll_interval,
                )
                for w in busy:
                    if w.conn in ready and w.job is not None:
                        finished += self._drain(w, ctx, workers,
                                                pending, delayed)
                now = time.monotonic()
                for w in workers:
                    if w.job is not None:
                        finished += self._check_watchdog(
                            w, ctx, workers, now, pending, delayed
                        )
        finally:
            for w in workers:
                if w.proc.is_alive():
                    try:
                        w.conn.send(("stop",))
                    except (BrokenPipeError, OSError):
                        pass
                w.kill()
        return self._report(time.monotonic() - started)

    def _assign(self, w: _Worker, state: _JobState, ctx, workers) -> bool:
        """Send *state*'s next attempt to *w*; False (job not taken) if
        the worker turned out to be dead — the slot is respawned and the
        caller retries on the fresh worker next tick."""
        spec = state.spec
        attempt = len(state.attempts)
        directive = (
            self.injector.directive(spec.job_id, attempt)
            if self.injector else None
        )
        log_path = None
        if self.record_bundles and spec.tool is not None:
            log_path = os.path.join(
                self.bundle_dir, f"job{spec.job_id:04d}-a{attempt}.rrlog"
            )
        now = time.monotonic()
        w.hb_time.value = now
        try:
            w.conn.send(("job", spec, attempt, directive, log_path,
                         self.record_flush_every))
        except (BrokenPipeError, OSError):
            self._respawn(w, ctx, workers)
            return False
        w.job = (state, attempt, directive, log_path, now)
        return True

    def _respawn(self, w: _Worker, ctx, workers: list) -> None:
        w.kill()
        w.job = None
        fresh = _Worker(ctx, w.wid)
        self._counters["worker_respawns"] += 1
        workers[workers.index(w)] = fresh

    def _drain(self, w, ctx, workers, pending, delayed) -> int:
        state, attempt, directive, log_path, started_at = w.job
        try:
            msg = w.conn.recv()
        except (EOFError, OSError):
            return self._worker_died(w, ctx, workers, pending, delayed)
        w.job = None
        if msg[0] == "done":
            return self._complete(state, msg[3], directive, log_path)
        # msg[0] == "error"
        rep = msg[3]
        jit = bool(rep.get("jit")) and rep.get("tier") != "closures"
        return self._fail(
            state, "worker-error",
            f"{rep.get('type')}: {rep.get('msg')}",
            jit, directive, log_path, pending, delayed,
        )

    def _check_watchdog(self, w, ctx, workers, now, pending, delayed) -> int:
        state, attempt, directive, log_path, started_at = w.job
        if not w.proc.is_alive():
            return self._worker_died(w, ctx, workers, pending, delayed)
        last_beat = max(w.hb_time.value, started_at)
        if now - last_beat > self.watchdog.heartbeat_timeout:
            self._counters["watchdog_hang"] += 1
            self._respawn(w, ctx, workers)
            return self._fail(
                state, "watchdog-hang",
                f"heartbeat stale for {now - last_beat:.2f}s",
                False, directive, log_path, pending, delayed,
            )
        if now - started_at > self.watchdog.wall_budget:
            self._counters["watchdog_wall"] += 1
            self._respawn(w, ctx, workers)
            return self._fail(
                state, "watchdog-wall",
                f"wall budget {self.watchdog.wall_budget:.2f}s exceeded",
                False, directive, log_path, pending, delayed,
            )
        return 0

    def _worker_died(self, w, ctx, workers, pending, delayed) -> int:
        state, attempt, directive, log_path, started_at = w.job
        code = w.proc.exitcode
        self._counters["worker_deaths"] += 1
        self._respawn(w, ctx, workers)
        return self._fail(
            state, "worker-died", f"worker exit status {code}",
            False, directive, log_path, pending, delayed,
        )

    # -- attempt bookkeeping ---------------------------------------------------

    def _complete(self, state, result: JobResult, directive, log_path) -> int:
        had_failures = bool(state.attempts)
        state.attempts.append({
            "attempt": len(state.attempts),
            "outcome": "completed",
            "class": "ok",
            "detail": None,
            "directive": list(directive) if directive else None,
            "backoff": None,
        })
        state.result = result
        if state.degraded:
            state.terminal = "degraded-tier-succeeded"
        elif had_failures:
            state.terminal = "retried-then-succeeded"
        else:
            state.terminal = "succeeded"
        self._discard_log(log_path)
        return 1

    def _fail(self, state, outcome, detail, jit, directive, log_path,
              pending, delayed) -> int:
        att = {
            "attempt": len(state.attempts),
            "outcome": outcome,
            "class": "jit" if jit else "infra",
            "detail": detail,
            "directive": list(directive) if directive else None,
            "backoff": None,
        }
        state.attempts.append(att)
        if jit:
            state.jit_failures += 1
            if state.jit_failures >= self.policy.jit_degrade_after:
                # Degrade ONE tier (traces -> pygen -> closures) rather
                # than straight to closures: a trace-compile problem is
                # usually fixed by dropping just the trace tier, keeping
                # the per-block JIT's speed.  Repeated failures walk the
                # ladder down; closures is the floor.
                tier = _effective_tier(state.spec)
                nxt = _DEGRADE_NEXT.get(tier)
                if nxt is not None:
                    state.degraded = True
                    state.jit_failures = 0
                    state.spec.flags = [
                        f for f in state.spec.flags
                        if not f.startswith("--codegen")
                    ] + [f"--codegen={nxt}"]
                    att["degraded"] = nxt
            self._discard_log(log_path)
            pending.append(state)  # immediate retry, tier now safe(r)
            return 0
        state.infra_failures += 1
        if state.infra_failures <= self.policy.max_retries:
            delay = self.policy.backoff(
                state.spec.job_id, state.infra_failures
            )
            att["backoff"] = round(delay, 6)
            self._discard_log(log_path)
            self._seq += 1
            heapq.heappush(
                delayed, (time.monotonic() + delay, self._seq, state)
            )
            return 0
        state.terminal = "terminal-failure"
        self._ship_bundle(state, outcome, detail, log_path)
        return 1

    def _discard_log(self, log_path: Optional[str]) -> None:
        if log_path:
            try:
                os.remove(log_path)
            except OSError:
                pass

    def _ship_bundle(self, state, outcome, detail, log_path) -> None:
        if not log_path:
            return
        attempt = len(state.attempts) - 1
        if (self.injector is not None
                and self.injector.corrupts(state.spec.job_id, attempt)
                and os.path.exists(log_path)):
            corrupt_bundle_log(log_path)
        if not os.path.exists(log_path):
            state.bundle_status = "missing"
            return
        state.bundle = write_bundle_manifest(state, log_path, outcome, detail)
        try:
            EventLog.load(log_path)
        except ReplayFormatError:
            state.bundle_status = "corrupt"
            return
        state.bundle_status = "ok"
        if self.verify_bundles:
            from ..api import replay_bundle  # lazy: avoids an import cycle

            try:
                state.bundle_replay = replay_bundle(state.bundle)
            except Exception as exc:  # forensics must not kill the fleet
                state.bundle_replay = {"status": "error", "error": str(exc)}

    # -- reporting -------------------------------------------------------------

    def _report(self, wall: float) -> dict:
        jobs_out = []
        summary = {name: 0 for name in TERMINAL_STATES}
        bundles = {"shipped": 0, "ok": 0, "corrupt": 0, "missing": 0}
        stats_total: dict = {}
        attempts_total = 0
        for spec in self.jobs:
            st = self._states[spec.job_id]
            attempts_total += len(st.attempts)
            if st.terminal is not None:
                summary[st.terminal] += 1
            if st.terminal == "terminal-failure" and st.bundle_status:
                bundles["shipped"] += 1
                bundles[st.bundle_status] = (
                    bundles.get(st.bundle_status, 0) + 1
                )
            res = st.result
            if res is not None and res.stats:
                merge_stats(stats_total, res.stats)
            jobs_out.append({
                "job_id": spec.job_id,
                "program": spec.program,
                "tool": spec.tool,
                "terminal": st.terminal,
                "degraded": st.degraded,
                "attempts": st.attempts,
                "exit_code": res.exit_code if res else None,
                "stopped_reason": res.stopped_reason if res else None,
                "fatal_signal": res.fatal_signal if res else None,
                "guest_insns": res.guest_insns if res else 0,
                "error": res.error if res else None,
                "bundle": (os.path.basename(st.bundle)
                           if st.bundle else None),
                "bundle_status": st.bundle_status,
                "bundle_replay": st.bundle_replay,
            })
        return {
            "fleet": {
                "jobs": len(self.jobs),
                "workers": self.workers_n,
                "seed": self.policy.seed,
                "max_retries": self.policy.max_retries,
                "jit_degrade_after": self.policy.jit_degrade_after,
                "inject": self.injector.spec if self.injector else None,
                "cache_dir": self.cache_dir,
            },
            "jobs": jobs_out,
            "summary": {
                **summary,
                "attempts": attempts_total,
                **self._counters,
                "bundles": bundles,
                "injection": (self.injector.stats()
                              if self.injector else None),
            },
            "stats": stats_total,
            "wall_time": round(wall, 3),
        }


def normalize_report(report: dict) -> dict:
    """Strip the wall-clock-dependent fields from a fleet report, leaving
    only what two same-seed runs must agree on bit-for-bit: terminal
    states, attempt/failure classifications, directives, backoff delays,
    exit codes, instruction counts, bundle statuses and replay endpoints.

    Dropped: total wall time, free-text failure details (they embed
    elapsed seconds), and the aggregated stats block (it contains
    execution-time measurements)."""
    out = json.loads(json.dumps(report, sort_keys=True))
    out.pop("wall_time", None)
    out.pop("stats", None)
    for job in out.get("jobs", ()):
        for att in job.get("attempts", ()):
            att.pop("detail", None)
        replay = job.get("bundle_replay")
        if isinstance(replay, dict):
            replay.pop("error", None)
    return out
