"""Per-thread guest + shadow register state (Section 3.4).

Valgrind provides a block of memory per client thread called the
ThreadState.  Each one contains space for all the thread's guest and
shadow registers and is used to hold them at various times, in particular
between each code block.  Shadow registers are first-class: they live in
the same block, at ``offset + SHADOW_OFFSET``, and are GET/PUT exactly
like guest registers (requirement R1).
"""

from __future__ import annotations

import enum
import sys
from typing import List, Optional

from ..guest import regs as R
from ..ir.types import Ty
from ..ir.values import from_bytes, to_bytes

#: The guest ABI is little-endian; on a little-endian host a ``cast("I")``
#: memoryview over the state block reads/writes 4-byte slots directly.
_LE = sys.byteorder == "little"
_PC_IDX = R.OFFSET_PC // 4


class ThreadStatus(enum.Enum):
    EMPTY = "empty"          # slot unused
    RUNNABLE = "runnable"
    WAIT_SYS = "wait-sys"    # blocked in a system call
    WAIT_JOIN = "wait-join"  # blocked joining another thread
    ZOMBIE = "zombie"        # exited, not yet joined


class ThreadState:
    """One thread's register file (guest and shadow halves)."""

    def __init__(self, tid: int = 1):
        self.tid = tid
        self.data = bytearray(R.TOTAL_STATE_SIZE)
        #: Cached views over ``data`` (never reassigned, never resized):
        #: ``arch`` spans the architected half (one-copy fault snapshots),
        #: ``u32`` indexes aligned 4-byte slots without slicing (None on a
        #: big-endian host, where callers fall back to the generic path).
        self.arch = memoryview(self.data)[: R.GUEST_STATE_SIZE]
        self.u32 = memoryview(self.data).cast("I") if _LE else None
        self.status = ThreadStatus.RUNNABLE
        #: Exit status once the thread is a zombie.
        self.exit_status = 0
        #: tid this thread is waiting to join, if WAIT_JOIN.
        self.joining: Optional[int] = None
        #: Stack bounds registered for this thread (for the 2MB stack-switch
        #: heuristic and stack registration client requests).
        self.stack_base = 0
        self.stack_limit = 0
        #: Shadow call stack of (return address, callee pc) pairs,
        #: maintained by the dispatcher for stack traces.
        self.callstack = []

    # -- typed access -----------------------------------------------------------

    def get(self, offset: int, ty: Ty) -> object:
        return from_bytes(ty, bytes(self.data[offset : offset + ty.size]))

    def put(self, offset: int, ty: Ty, value: object) -> None:
        self.data[offset : offset + ty.size] = to_bytes(ty, value)

    def get_bytes(self, offset: int, size: int) -> bytes:
        return bytes(self.data[offset : offset + size])

    def put_bytes(self, offset: int, data: bytes) -> None:
        self.data[offset : offset + len(data)] = data

    # -- named accessors ----------------------------------------------------------

    @property
    def pc(self) -> int:
        u = self.u32
        if u is not None:
            return u[_PC_IDX]
        return int.from_bytes(self.data[R.OFFSET_PC : R.OFFSET_PC + 4], "little")

    @pc.setter
    def pc(self, value: int) -> None:
        u = self.u32
        if u is not None:
            u[_PC_IDX] = value & 0xFFFFFFFF
            return
        self.data[R.OFFSET_PC : R.OFFSET_PC + 4] = (value & 0xFFFFFFFF).to_bytes(
            4, "little"
        )

    def reg(self, i: int) -> int:
        off = R.gpr_offset(i)
        return int.from_bytes(self.data[off : off + 4], "little")

    def set_reg(self, i: int, value: int) -> None:
        off = R.gpr_offset(i)
        self.data[off : off + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")

    @property
    def sp(self) -> int:
        return self.reg(R.SP)

    @sp.setter
    def sp(self, value: int) -> None:
        self.set_reg(R.SP, value)

    def freg(self, i: int) -> float:
        return self.get(R.freg_offset(i), Ty.F64)  # type: ignore[return-value]

    def set_freg(self, i: int, value: float) -> None:
        self.put(R.freg_offset(i), Ty.F64, value)

    def vreg(self, i: int) -> int:
        return self.get(R.vreg_offset(i), Ty.V128)  # type: ignore[return-value]

    def set_vreg(self, i: int, value: int) -> None:
        self.put(R.vreg_offset(i), Ty.V128, value)

    def flags(self) -> int:
        """Materialise the guest's condition flags from the thunk."""
        return R.calculate_flags(
            self.get(R.OFFSET_CC_OP, Ty.I32),
            self.get(R.OFFSET_CC_DEP1, Ty.I32),
            self.get(R.OFFSET_CC_DEP2, Ty.I32),
            self.get(R.OFFSET_CC_NDEP, Ty.I32),
        )

    # -- refcpu interchange ---------------------------------------------------------

    def load_from_cpu(self, cpu) -> None:
        """Copy architected state in from a :class:`~repro.guest.refcpu.RefCPU`."""
        for i in range(R.NUM_GPRS):
            self.set_reg(i, cpu.regs[i])
        for i in range(R.NUM_FREGS):
            self.set_freg(i, cpu.fregs[i])
        for i in range(R.NUM_VREGS):
            self.set_vreg(i, cpu.vregs[i])
        self.pc = cpu.pc
        self.put(R.OFFSET_CC_OP, Ty.I32, cpu.cc_op)
        self.put(R.OFFSET_CC_DEP1, Ty.I32, cpu.cc_dep1)
        self.put(R.OFFSET_CC_DEP2, Ty.I32, cpu.cc_dep2)
        self.put(R.OFFSET_CC_NDEP, Ty.I32, cpu.cc_ndep)

    def store_to_cpu(self, cpu) -> None:
        """Copy architected state out to a :class:`~repro.guest.refcpu.RefCPU`."""
        for i in range(R.NUM_GPRS):
            cpu.regs[i] = self.reg(i)
        for i in range(R.NUM_FREGS):
            cpu.fregs[i] = self.freg(i)
        for i in range(R.NUM_VREGS):
            cpu.vregs[i] = self.vreg(i)
        cpu.pc = self.pc
        cpu.cc_op = self.get(R.OFFSET_CC_OP, Ty.I32)
        cpu.cc_dep1 = self.get(R.OFFSET_CC_DEP1, Ty.I32)
        cpu.cc_dep2 = self.get(R.OFFSET_CC_DEP2, Ty.I32)
        cpu.cc_ndep = self.get(R.OFFSET_CC_NDEP, Ty.I32)

    def architected_equal(self, other: "ThreadState") -> bool:
        """Compare all architected registers (including the flags thunk)."""
        n = R.GUEST_STATE_SIZE
        return self.data[:n] == other.data[:n]

    def describe_diff(self, other: "ThreadState") -> List[str]:
        """Human-readable list of architected-state differences."""
        diffs = []
        for off, size, name in R.architected_slots():
            a = self.get_bytes(off, size)
            b = other.get_bytes(off, size)
            if a != b:
                diffs.append(f"{name}: {a.hex()} != {b.hex()}")
        for name, off in (
            ("cc_op", R.OFFSET_CC_OP),
            ("cc_dep1", R.OFFSET_CC_DEP1),
            ("cc_dep2", R.OFFSET_CC_DEP2),
            ("cc_ndep", R.OFFSET_CC_NDEP),
        ):
            a = self.get_bytes(off, 4)
            b = other.get_bytes(off, 4)
            if a != b:
                diffs.append(f"{name}: {a.hex()} != {b.hex()}")
        return diffs
