"""The top level: Valgrind core + tool plug-in = Valgrind tool.

Start-up follows Section 3.3: initialise the address-space manager and
the core's internal allocator, let the tool initialise itself
(``pre_clo_init``), process the command line, load the client executable
(or its script interpreter) with the core's own loader, set up the
client's stack and data segment, initialise the translation table and
signal machinery and scheduler, load debug information — and then the
tool is in complete control from the client's first instruction.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import List, Optional, Union

from ..frontend.helpers import register_frontend_helpers
from ..guest.loader import LoadedProgram, load_program
from ..guest.program import VxImage
from ..ir.helpers import HelperRegistry
from ..kernel.fs import FileSystem
from ..kernel.kernel import Kernel
from ..kernel.memory import GuestMemory
from ..libc.hostlib import LibC
from .allocator import CORE_REGION_BASE, CORE_REGION_END, CoreAllocator
from .errors import ErrorManager, Frame
from .events import EventRegistry
from .function_wrap import FunctionRedirector
from .options import Options
from .scheduler import RunOutcome, Scheduler
from .tool import Tool


@dataclass
class VgResult:
    """Everything a run produced."""

    exit_code: int
    stdout: str
    stderr: str
    #: The core/tool log (the R9 side channel).
    log: str
    outcome: RunOutcome
    tool: Tool
    core: "Valgrind"

    @property
    def errors(self) -> list:
        return self.core.error_mgr.errors if self.core.error_mgr else []

    def stats(self) -> dict:
        """Run statistics (the ``--stats=json`` payload)."""
        return self.core.stats_dict(self.outcome)


class Valgrind:
    """One core instance, bound to one tool."""

    def __init__(self, tool: Union[Tool, str], options: Optional[Options] = None):
        if isinstance(tool, str):
            from ..tools import create_tool

            tool = create_tool(tool)
        self.tool = tool
        self.options = options or Options()

        # Core sub-systems, in (roughly) the paper's start-up order: the
        # address space manager and the core's own allocator come first.
        self.memory = GuestMemory()
        self.kernel = Kernel(self.memory, FileSystem())
        self.kernel.forbidden.append((CORE_REGION_BASE, CORE_REGION_END))
        self.allocator = CoreAllocator(self.memory)
        self.events = EventRegistry()
        self.helpers = HelperRegistry()
        register_frontend_helpers(self.helpers)
        self.libc = LibC()
        self.redirector = FunctionRedirector(self.libc)

        self._log_lines: List[str] = []
        self._log_file = None
        self.program: Optional[LoadedProgram] = None
        self.scheduler: Optional[Scheduler] = None
        #: Optional embedding hook, forwarded to the scheduler: called
        #: with guest_insns at every dispatch-quantum boundary (the fleet
        #: worker heartbeat).  Set it before run().
        self.on_progress = None
        self.error_mgr = ErrorManager(self.tool.name, self.log, self._symbolise)

        # Tell the tool to initialise itself, then give it the unclaimed
        # command-line options.
        self.tool.pre_clo_init(self)
        for opt in self.options.tool_options:
            if not self.tool.process_cmd_line_option(opt):
                raise ValueError(f"unrecognised option {opt!r}")

    # -- services for tools ------------------------------------------------------------

    def log(self, message: str) -> None:
        """Write to the tool/core output side channel (requirement R9)."""
        self._log_lines.append(message)
        target = self.options.log_target
        if target == "capture":
            return
        if target == "stderr":
            print(message, file=sys.stderr)
        elif target == "stdout":
            print(message)
        else:
            if self._log_file is None:
                self._log_file = open(target, "w")
            self._log_file.write(message + "\n")

    @property
    def log_text(self) -> str:
        return "\n".join(self._log_lines)

    def _symbolise(self, pc: int) -> Frame:
        symbol, offset, location = "", 0, ""
        if self.program is not None:
            hit = self.program.symbol_at(pc)
            if hit is not None:
                symbol, offset = hit
            li = self.program.line_at(pc)
            if li is not None:
                location = f"{li.filename}:{li.line}"
        return Frame(pc, symbol, offset, location)

    def stack_trace_pcs(self, max_depth: int = 16) -> List[int]:
        if self.scheduler is None:
            return []
        return self.scheduler.env.stack_trace_pcs(max_depth)

    def stats_dict(self, outcome: Optional[RunOutcome] = None) -> dict:
        """Collect core statistics — dispatcher tiers, translation table,
        chain registry, compiled-code cache, SMC — as one JSON-able dict."""
        from dataclasses import asdict

        sched = self.scheduler
        if sched is None:
            return {"tool": self.tool.name, "perf": self.options.perf}
        d = sched.dispatcher
        cpu = sched.hostcpu
        out = {
            "tool": self.tool.name,
            "perf": self.options.perf,
            "dispatch": {
                **asdict(d.stats),
                "hit_rate": d.stats.hit_rate,
                "guest_insns": d.guest_insns,
            },
            "transtab": {
                **asdict(sched.transtab.stats),
                "entries": sched.transtab.capacity,
                "load": sched.transtab.load,
            },
            "chains": {
                "links_made": sched.transtab.chains.links_made,
                "links_severed": sched.transtab.chains.links_severed,
                "live_links": len(sched.transtab.chains),
            },
            "compiled_code": {
                "cache_hits": cpu.code_cache_hits,
                "cache_misses": cpu.code_cache_misses,
                "unique_blocks": len(cpu._code_cache),
                "host_insns": cpu.host_insns,
            },
            "smc": {"checks": sched.smc.checks, "misses": sched.smc.misses},
            "translations_made": sched.translator.translations_made,
            "codegen": sched.codegen.stats_dict(sched.transtab),
            "traces": (sched.traces.stats_dict()
                       if sched.traces is not None else None),
            "robustness": {
                "quarantined_blocks": sched.quarantined_blocks,
                "faults_recovered": sched.faults_recovered,
                "pygen_demotions": sched.pygen_demotions,
                "stopped_reason": sched.stopped_reason,
                "injection": sched.injector.stats() if sched.injector else None,
            },
            "replay": sched.rr.stats_dict() if sched.rr is not None else None,
            "cache": (sched.codecache.stats_dict()
                      if sched.codecache is not None else None),
        }
        tool_sections = self.tool.stats_dict()
        if tool_sections:
            out.update(tool_sections)
        if outcome is not None:
            out["exit_code"] = outcome.exit_code
            out["blocks_executed"] = outcome.blocks_executed
        return out

    def record_error(
        self,
        kind: str,
        message: str,
        addr: Optional[int] = None,
        extra: Optional[object] = None,
    ):
        """Record a tool error at the current guest location."""
        tid = self.scheduler.current_tid if self.scheduler else 0
        return self.error_mgr.record(
            kind, message, tid, self.stack_trace_pcs(), addr=addr, extra=extra
        )

    # -- running --------------------------------------------------------------------------

    def _announce_startup(self, addr: int, size: int, r: bool, w: bool, x: bool):
        self.events.fire("new_mem_startup", addr, size, r, w, x)

    def run(
        self,
        image: VxImage,
        argv: Optional[List[str]] = None,
        *,
        stdin: bytes = b"",
        max_blocks: Optional[int] = None,
        resolve_image=None,
    ) -> VgResult:
        """Load and run the client to completion under the tool."""
        self.kernel.fs.set_stdin(stdin)
        for path in self.options.suppressions:
            with open(path) as f:
                self.error_mgr.load_suppressions(f.read())

        self.program = load_program(
            image,
            self.kernel,
            argv,
            stack_size=self.options.stack_size,
            announce=self._announce_startup,
            resolve_image=resolve_image,
        )
        self.scheduler = Scheduler(
            core=self,
            kernel=self.kernel,
            program=self.program,
            tool=self.tool,
            options=self.options,
            events=self.events,
            helpers=self.helpers,
            libc=self.libc,
            redirector=self.redirector,
            error_mgr=self.error_mgr,
        )
        self.scheduler.on_progress = self.on_progress
        if self.options.restore:
            self.scheduler.restore_from(self.options.restore)
        self.tool.post_clo_init()
        outcome = self.scheduler.run(max_blocks=max_blocks)
        if self.options.record and self.scheduler.rr is not None:
            self.scheduler.rr.write(self.options.record)
        self.tool.fini(outcome.exit_code)
        if self._log_file is not None:
            self._log_file.close()
            self._log_file = None
        return VgResult(
            exit_code=outcome.exit_code,
            stdout=self.kernel.fs.stdout_text(),
            stderr=self.kernel.fs.stderr_text(),
            log=self.log_text,
            outcome=outcome,
            tool=self.tool,
            core=self,
        )


def run_tool(
    tool: Union[Tool, str],
    image: VxImage,
    argv: Optional[List[str]] = None,
    *,
    options: Optional[Options] = None,
    stdin: bytes = b"",
    max_blocks: Optional[int] = None,
) -> VgResult:
    """Convenience one-shot: build a core around *tool* and run *image*."""
    vg = Valgrind(tool, options)
    return vg.run(image, argv, stdin=stdin, max_blocks=max_blocks)
