"""Self-modifying code handling (Section 3.16).

vx32, like x86, has no explicit flush instruction, so modified code must
be *detected*: a translation records a hash of the original guest bytes
it was derived from, and — for translations the policy says to check —
the hash is recomputed before each execution; a mismatch discards the
translation and retranslates.

"This has a high run-time cost.  Therefore, by default Valgrind only uses
this mechanism for code that is on the stack" — which catches the
on-stack trampolines that are the main source of self-modifying code.
The policy here is the same: ``stack`` (default), ``all``, or ``none``.

Dynamic code generators can instead use the DISCARD_TRANSLATIONS client
request (see :mod:`repro.core.clientreq`).
"""

from __future__ import annotations

from typing import Callable, Optional

from .translate import Translation, hash_guest_ranges


class SmcPolicy:
    """Decides which translations get per-execution hash checks, and
    performs the checks."""

    def __init__(self, mode: str, fetch: Callable[[int, int], bytes]):
        if mode not in ("none", "stack", "all"):
            raise ValueError(f"bad SMC mode {mode!r}")
        self.mode = mode
        self._fetch = fetch
        #: (checks done, mismatches) — the SMC bench reads these.
        self.checks = 0
        self.misses = 0

    def should_check(self, t: Translation, stack_base: int, stack_top: int) -> bool:
        """Decide at translation time whether *t* needs per-run checks."""
        if self.mode == "none" or t.smc_hash is None:
            return False
        if self.mode == "all":
            return True
        # "stack": only translations of code that lies on the stack.
        return any(
            start < stack_top and stack_base < start + length
            for start, length in t.ranges
        )

    def recheck(self, t: Translation) -> bool:
        """Recompute the hash; True if the code is unchanged."""
        self.checks += 1
        try:
            ok = hash_guest_ranges(self._fetch, t.ranges) == t.smc_hash
        except Exception:
            ok = False  # code vanished (unmapped): definitely stale
        if not ok:
            self.misses += 1
        return ok
