"""Client requests (Section 3.11).

A trap-door mechanism letting the client program pass messages and
queries to the core or the tool: the guest executes the ``clreq``
instruction with a request code in r0 and arguments in r1–r3; the result
comes back in r0.  Outside Valgrind the instruction is a cheap no-op that
leaves 0 in r0 — so, as with the real macros, instrumented-aware programs
run unchanged natively.

Core request codes live in the 0x1000 range; tools claim their own ranges
(Memcheck uses 0x4D43xxxx, "MC").
"""

from __future__ import annotations

from typing import List

# -- core request codes ---------------------------------------------------------

RUNNING_ON_VALGRIND = 0x1001
DISCARD_TRANSLATIONS = 0x1002  # (addr, len)
STACK_REGISTER = 0x1003        # (start, end) -> stack id
STACK_DEREGISTER = 0x1004      # (id)
STACK_CHANGE = 0x1005          # (id, start, end)
CLIENT_PRINT = 0x1006          # (str addr) — print via the core's log


def clreq_asm(code: int, a1: str = "0", a2: str = "0", a3: str = "0") -> str:
    """Assembly snippet performing a client request (the "macro" clients
    embed; arguments may be symbols or literals)."""
    return (
        f"        movi r0, {code:#x}\n"
        f"        movi r1, {a1}\n"
        f"        movi r2, {a2}\n"
        f"        movi r3, {a3}\n"
        f"        clreq\n"
    )


class RegisteredStacks:
    """The core's table of client-registered stacks (Section 3.12: the
    client requests that let programs tell Valgrind about stack switches
    the 2MB heuristic cannot see)."""

    def __init__(self) -> None:
        self._stacks: dict = {}
        self._next_id = 1

    def register(self, start: int, end: int) -> int:
        sid = self._next_id
        self._next_id += 1
        self._stacks[sid] = (start, end)
        return sid

    def deregister(self, sid: int) -> bool:
        return self._stacks.pop(sid, None) is not None

    def change(self, sid: int, start: int, end: int) -> bool:
        if sid not in self._stacks:
            return False
        self._stacks[sid] = (start, end)
        return True

    def containing(self, sp: int):
        """Return (id, start, end) of the registered stack holding *sp*."""
        for sid, (start, end) in self._stacks.items():
            if start <= sp < end:
                return sid, start, end
        return None

    def __len__(self) -> int:
        return len(self._stacks)
