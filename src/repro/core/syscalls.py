"""System call wrappers (Sections 3.10 and 3.12, requirement R4/R6).

Valgrind provides a wrapper for every system call which fires the
pre/post register and memory events as needed — "because there are so
many cases, Valgrind's wrappers are almost 15,000 lines of tedious C
code", and several Memcheck false positives/negatives were traced to
wrapper bugs.  This module is our (much smaller, since our kernel is
smaller) equivalent: one wrapper per syscall, each declaring exactly
which registers and memory the call reads and writes.

Wrappers also:

* pre-check partitioned resources — a client mmap that would land on the
  core's reserved region fails *without consulting the kernel*
  (Section 3.10);
* fire the R6 allocation events around brk/mmap/munmap/mremap; and
* discard translations when code is unloaded by munmap (Section 3.8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..guest.regs import gpr_offset
from ..kernel import kernel as K
from ..kernel.kernel import Kernel, SYSCALL_NAMES
from ..kernel.memory import PAGE_SIZE, PROT_EXEC
from .allocator import CORE_REGION_BASE, CORE_REGION_END
from .events import EventRegistry
from .replay import RES_BLOCKED, RES_INJECTED, RES_NORMAL, RES_NO_RESULT

M32 = 0xFFFFFFFF
ENOMEM = 12


def _is_err(result: int) -> bool:
    """Kernel errors are -errno as unsigned (top page of the range)."""
    return isinstance(result, int) and result > 0xFFFF_F000


@dataclass
class _Spec:
    """Static description of one syscall's register/memory behaviour."""

    name: str
    nargs: int
    pre: Optional[Callable] = None
    post: Optional[Callable] = None


class SyscallWrappers:
    """The wrapper layer for one core instance."""

    def __init__(
        self,
        events: EventRegistry,
        kernel: Kernel,
        engine,
        on_code_unmapped: Optional[Callable[[int, int], None]] = None,
        injector=None,
        rr=None,
    ):
        self.events = events
        self.kernel = kernel
        self.engine = engine
        self.on_code_unmapped = on_code_unmapped or (lambda a, s: None)
        self.injector = injector
        #: Record/replay engine (a Recorder or Replayer), or None.
        self.rr = rr
        self._specs = self._build_specs()
        #: How many syscalls were wrapped (stats for tests/benches).
        self.count = 0

    # -- the entry point ------------------------------------------------------------

    def do_syscall(self, tid: int, num: int, a1: int, a2: int, a3: int,
                   *, from_host: bool = False):
        """Run one system call with full event instrumentation.

        *from_host* marks calls the core or host libc makes on the client's
        behalf: the arguments never passed through guest registers, so the
        register events do not apply (the memory and allocation events
        still do).
        """
        self.count += 1
        ev = self.events
        spec = self._specs.get(num)
        name = spec.name if spec else f"syscall{num}"
        if not from_host:
            # Every system call reads its number and arguments from registers.
            ev.fire("pre_reg_read", tid, gpr_offset(0), 4, f"{name}(num)")
            nargs = spec.nargs if spec else 3
            for i in range(nargs):
                ev.fire(
                    "pre_reg_read", tid, gpr_offset(1 + i), 4, f"{name}(arg{i + 1})"
                )

        rr = self.rr
        if rr is not None and rr.replaying and not from_host:
            # Replay: if the log's next event is an injected failure for
            # exactly this call, impose it instead of running the kernel.
            imposed = rr.syscall_injected(tid, num)
            if imposed is not None:
                if spec and spec.pre is not None:
                    spec.pre(self, tid, a1, a2, a3)
                ev.fire("post_reg_write", tid, gpr_offset(0), 4, name)
                return imposed
        elif not from_host and self.injector is not None:
            injected = self._injected_failure(num)
            if injected is not None:
                if spec and spec.pre is not None:
                    spec.pre(self, tid, a1, a2, a3)
                ev.fire("post_reg_write", tid, gpr_offset(0), 4, name)
                self._rr_finish(tid, num, from_host, RES_INJECTED, injected)
                return injected

        if spec and spec.pre is not None:
            short = spec.pre(self, tid, a1, a2, a3)
            if short is not None:
                # Pre-check failed: fail without consulting the kernel.
                if not from_host:
                    ev.fire("post_reg_write", tid, gpr_offset(0), 4, name)
                self._rr_finish(tid, num, from_host, RES_NORMAL, short)
                return short

        # SYS_EXIT raises ProcessExit out of this call: deliberately no
        # event on either side, keeping record and replay symmetric.
        result = self.kernel.syscall(self.engine, tid, num, a1, a2, a3)

        if result is K.BLOCKED:
            self._rr_finish(tid, num, from_host, RES_BLOCKED, 0)
            return result
        if result is K.NO_RESULT:
            self._rr_finish(tid, num, from_host, RES_NO_RESULT, 0)
            return result
        if spec and spec.post is not None:
            spec.post(self, tid, a1, a2, a3, result)
        # The return value is written to r0.
        if not from_host:
            ev.fire("post_reg_write", tid, gpr_offset(0), 4, name)
        self._rr_finish(tid, num, from_host, RES_NORMAL, result)
        return result

    def _rr_finish(self, tid: int, num: int, from_host: bool, rflag: int,
                   result: int) -> None:
        """Record (or verify, on replay) one completed syscall."""
        rr = self.rr
        if rr is None:
            return
        if rr.replaying:
            rr.syscall_check(tid, num, from_host, rflag, result)
        else:
            rr.syscall_done(tid, num, from_host, rflag, result)

    def _injected_failure(self, num: int) -> Optional[int]:
        """Consult the fault injector for a synthetic errno for this call."""
        if num in (K.SYS_MMAP, K.SYS_BRK, K.SYS_MREMAP):
            if self.injector.mmap_enomem():
                return (-ENOMEM) & M32
        elif num in (K.SYS_READ, K.SYS_WRITE, K.SYS_OPEN):
            if self.injector.eintr():
                return (-K.EINTR) & M32
        return None

    # -- per-syscall pre/post handlers ---------------------------------------------------

    def _build_specs(self) -> Dict[int, _Spec]:
        s: Dict[int, _Spec] = {}

        def spec(num: int, nargs: int, pre=None, post=None) -> None:
            s[num] = _Spec(SYSCALL_NAMES[num], nargs, pre, post)

        spec(K.SYS_EXIT, 1)
        spec(K.SYS_READ, 3, pre=self._pre_read, post=self._post_read)
        spec(K.SYS_WRITE, 3, pre=self._pre_write)
        spec(K.SYS_OPEN, 2, pre=self._pre_open)
        spec(K.SYS_CLOSE, 1)
        spec(K.SYS_BRK, 1, pre=self._pre_brk, post=self._post_brk)
        spec(K.SYS_MMAP, 3, pre=self._pre_mmap, post=self._post_mmap)
        spec(K.SYS_MUNMAP, 2, pre=self._pre_munmap, post=self._post_munmap)
        spec(K.SYS_MREMAP, 3, pre=self._pre_mremap, post=self._post_mremap)
        spec(K.SYS_GETTIME, 1, pre=self._pre_gettime, post=self._post_gettime)
        spec(K.SYS_SETTIME, 1, pre=self._pre_settime)
        spec(K.SYS_SIGACTION, 2)
        spec(K.SYS_KILL, 2)
        spec(K.SYS_ALARM, 1)
        spec(K.SYS_THREAD_CREATE, 3)
        spec(K.SYS_THREAD_EXIT, 1)
        spec(K.SYS_THREAD_JOIN, 1)
        spec(K.SYS_YIELD, 0)
        spec(K.SYS_GETPID, 0)
        spec(K.SYS_SIGRETURN, 0)
        spec(K.SYS_LSEEK, 3)
        spec(K.SYS_FSIZE, 1)
        spec(K.SYS_UNLINK, 1, pre=self._pre_unlink)
        return s

    # read(fd, buf, n): the kernel writes up to n bytes at buf.
    def _pre_read(self, w, tid, a1, a2, a3):
        self.events.fire("pre_mem_write", tid, a2, a3, "read(buf)")

    def _post_read(self, w, tid, a1, a2, a3, result):
        if not _is_err(result) and result > 0:
            self.events.fire("post_mem_write", tid, a2, result, "read(buf)")

    # write(fd, buf, n): the kernel reads n bytes at buf.
    def _pre_write(self, w, tid, a1, a2, a3):
        self.events.fire("pre_mem_read", tid, a2, a3, "write(buf)")

    # open(path, flags): path is a NUL-terminated string.
    def _pre_open(self, w, tid, a1, a2, a3):
        self.events.fire("pre_mem_read_asciiz", tid, a1, "open(path)")

    def _pre_unlink(self, w, tid, a1, a2, a3):
        self.events.fire("pre_mem_read_asciiz", tid, a1, "unlink(path)")

    # brk: allocation events computed from the break movement.
    def _pre_brk(self, w, tid, a1, a2, a3):
        self._brk_before = self.kernel.brk_cur

    def _post_brk(self, w, tid, a1, a2, a3, result):
        old = self._brk_before
        new = self.kernel.brk_cur
        if new > old:
            self.events.fire("new_mem_brk", old, new - old, tid)
        elif new < old:
            self.events.fire("die_mem_brk", new, old - new)

    # mmap: pre-check the core's reserved region; announce new memory.
    def _pre_mmap(self, w, tid, a1, a2, a3):
        if a1 != 0:
            size = (a2 + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
            if a1 < CORE_REGION_END and CORE_REGION_BASE < a1 + size:
                return (-ENOMEM) & M32  # fail without consulting the kernel
        return None

    def _post_mmap(self, w, tid, a1, a2, a3, result):
        if _is_err(result):
            return
        size = (a2 + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
        prot = a3 if a3 else 0x6  # kernel default: rw
        self.events.fire(
            "new_mem_mmap", result, size, bool(prot & 4), bool(prot & 2),
            bool(prot & 1)
        )

    def _pre_munmap(self, w, tid, a1, a2, a3):
        return None

    def _post_munmap(self, w, tid, a1, a2, a3, result):
        if _is_err(result):
            return
        size = (a2 + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
        self.events.fire("die_mem_munmap", a1, size)
        # Code may have been unloaded: drop its translations (Section 3.8).
        self.on_code_unmapped(a1, size)

    # mremap: "can cause memory values to be copied, in which case the
    # corresponding shadow memory values may have to be copied as well".
    def _pre_mremap(self, w, tid, a1, a2, a3):
        self._mremap_old_size = (a2 + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)

    def _post_mremap(self, w, tid, a1, a2, a3, result):
        if _is_err(result):
            return
        old_size = self._mremap_old_size
        new_size = (a3 + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
        if result != a1:
            # The mapping moved: contents (and shadows) were copied.
            self.events.fire("copy_mem_mremap", a1, result, min(old_size, new_size))
            self.events.fire("die_mem_munmap", a1, old_size)
            self.on_code_unmapped(a1, old_size)
            if new_size > old_size:
                self.events.fire(
                    "new_mem_mmap", result + old_size, new_size - old_size,
                    True, True, False,
                )
        elif new_size > old_size:
            self.events.fire(
                "new_mem_mmap", a1 + old_size, new_size - old_size, True, True, False
            )
        elif new_size < old_size:
            self.events.fire("die_mem_munmap", a1 + new_size, old_size - new_size)
            self.on_code_unmapped(a1 + new_size, old_size - new_size)

    # gettime(tv): kernel fills an 8-byte struct.
    def _pre_gettime(self, w, tid, a1, a2, a3):
        self.events.fire("pre_mem_write", tid, a1, 8, "gettime(tv)")

    def _post_gettime(self, w, tid, a1, a2, a3, result):
        if not _is_err(result):
            self.events.fire("post_mem_write", tid, a1, 8, "gettime(tv)")

    # settime(tv): kernel reads an 8-byte struct.
    def _pre_settime(self, w, tid, a1, a2, a3):
        self.events.fire("pre_mem_read", tid, a1, 8, "settime(tv)")
