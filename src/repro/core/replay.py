"""Deterministic record/replay (the fleet-scale crash-triage story).

``--record=FILE`` captures every nondeterministic decision a run makes
into a compact, versioned, content-hashed event log:

* scheduler decisions at each preemption/yield point (which thread runs);
* syscall results, including injected EINTR/ENOMEM outcomes;
* signal arrival points keyed by (tid, guest_insns);
* SMC flushes, translation-table evictions, injected JIT failures and
  dispatch-level fault-injection events (echoed from the --inject plan);
* periodic checkpoints (``--checkpoint-every=N`` guest instructions): a
  full architected snapshot of ThreadStates + kernel + fs + translation
  list, so ``--restore=FILE`` can resume a long workload from a midpoint.

``--replay=FILE`` drives the scheduler, syscall layer, dispatcher and
fault injection from the log instead of live decisions, verifying every
event as it is consumed.  Any divergence raises
:class:`ReplayDivergence` loudly — event index, expected vs actual, pc
and guest_insns — instead of silently drifting.

The log records only *architected* decisions, never codegen-tier
artifacts, so a run recorded under one tier (``closures``, ``pygen``,
``auto``, with or without ``--perf``) replays bit-exactly under every
other tier: same RunOutcome, same fault quadruple, same guest_insns.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import zlib
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..guest.regs import SPILL_AREA_BASE
from ..kernel.kernel import ACCESS_CODES, SigInfo
from .errors import ExitCode
from .faultinject import InjectedJitError
from .threadstate import ThreadState, ThreadStatus

M32 = 0xFFFFFFFF

#: Log file magic + format version.  Bump the version on any change to
#: the event encoding, the snapshot schema or the meta layout.
MAGIC = b"RRLG"
FORMAT_VERSION = 1

#: Snapshot schema version (stored inside each checkpoint blob).
#: v2: thread-state scratch (spill + call-save areas) is zero-masked at
#: capture — it is dead at block boundaries and its residue depends on
#: the codegen tier and the Memcheck fast-path setting, neither of which
#: is part of the replay contract.
SNAPSHOT_VERSION = 2

# -- event kinds ---------------------------------------------------------------

EV_SCHED = 1        # args: ()                        a thread was picked to run
EV_SYSCALL = 2      # args: (num, from_host, rflag, result)
EV_SIGNAL = 3       # args: (sig, has_si, addr, access_code, si_pc)
EV_INJECT = 4       # args: (kind_code, step)         dispatch-level injection
EV_JITFAIL = 5      # args: (addr,)                   injected isel failure
EV_SMC = 6          # args: (guest_addr,)             stale-translation flush
EV_EVICT = 7        # args: (count,)                  transtab eviction round
EV_CHECKPOINT = 8   # args: (ckpt_index,)  blob: snapshot sha256 (32 bytes)
EV_EXIT = 9         # args: (exit_code, fatal_sig, stopped_code, blocks,
                    #        translations, faults_recovered, quarantined)

EVENT_NAMES = {
    EV_SCHED: "sched",
    EV_SYSCALL: "syscall",
    EV_SIGNAL: "signal",
    EV_INJECT: "inject",
    EV_JITFAIL: "jitfail",
    EV_SMC: "smc",
    EV_EVICT: "evict",
    EV_CHECKPOINT: "checkpoint",
    EV_EXIT: "exit",
}

#: Syscall result flags (EV_SYSCALL args[2]).
RES_NORMAL = 0
RES_BLOCKED = 1
RES_NO_RESULT = 2
RES_INJECTED = 3

#: Dispatch-level injection kinds (EV_INJECT args[0]).
INJECT_CODES = {"segv": 0, "smc-flush": 1, "evict": 2}
INJECT_NAMES = {v: k for k, v in INJECT_CODES.items()}

#: RunOutcome.stopped_reason encoding (EV_EXIT args[2]).
STOP_CODES = {None: 0, "deadlock": 1, "block-budget": 2,
              "replay-exhausted": 3}
STOP_NAMES = {v: k for k, v in STOP_CODES.items()}

_ACCESS_NAMES = {v: k for k, v in ACCESS_CODES.items()}


# -- exceptions ----------------------------------------------------------------

class ReplayError(Exception):
    """Base class for all record/replay failures."""


class ReplayFormatError(ReplayError):
    """A log file is malformed, corrupt, or from an incompatible run."""


class ReplayDivergence(ReplayError):
    """Replayed execution strayed from the recorded one."""

    exit_code = ExitCode.REPLAY_DIVERGENCE

    def __init__(self, index: int, expected, actual, pc: int = 0,
                 insns: int = 0):
        self.index = index
        self.expected = expected
        self.actual = actual
        self.pc = pc
        self.insns = insns
        super().__init__(
            f"replay divergence at event #{index}: expected {expected}, "
            f"actual {actual} (pc={pc:#x}, guest_insns={insns})"
        )


class ReplayLogExhausted(ReplayError):
    """A *partial* log (a crash bundle flushed mid-run by a worker that was
    then killed) ran out of events.  Not an error in partial mode: the
    scheduler catches it and stops cleanly at the exact point the recording
    reached — (event index, pc, guest_insns) — so a crash replays to the
    same instruction on any machine."""

    exit_code = ExitCode.REPLAY_EXHAUSTED

    def __init__(self, index: int, pc: int = 0, insns: int = 0):
        self.index = index
        self.pc = pc
        self.insns = insns
        super().__init__(
            f"partial replay log exhausted after event #{index} "
            f"(pc={pc:#x}, guest_insns={insns})"
        )


# -- varint encoding -----------------------------------------------------------

def write_uvarint(out: bytearray, n: int) -> None:
    """LEB128 unsigned varint."""
    if n < 0:
        raise ValueError(f"uvarint cannot encode negative {n}")
    while True:
        b = n & 0x7F
        n >>= 7
        if n:
            out.append(b | 0x80)
        else:
            out.append(b)
            return


def read_uvarint(buf: bytes, pos: int) -> Tuple[int, int]:
    n = 0
    shift = 0
    while True:
        if pos >= len(buf):
            raise ReplayFormatError("truncated varint")
        b = buf[pos]
        pos += 1
        n |= (b & 0x7F) << shift
        if not b & 0x80:
            return n, pos
        shift += 7
        if shift > 70:
            raise ReplayFormatError("varint too long")


def _zigzag(n: int) -> int:
    return 2 * n if n >= 0 else -2 * n - 1


def _unzigzag(z: int) -> int:
    return z // 2 if z % 2 == 0 else -(z + 1) // 2


# -- canonical object serialization (for snapshot blobs) -----------------------

def pack_obj(obj) -> bytes:
    """Canonically serialize None/bool/int/float/str/bytes/list/dict.

    Byte-stable: the same value always packs to the same bytes (dicts
    keep insertion order — snapshot builders sort where order matters).
    """
    out = bytearray()
    _pack_into(out, obj)
    return bytes(out)


def _pack_into(out: bytearray, obj) -> None:
    if obj is None:
        out.append(ord("N"))
    elif obj is True:
        out.append(ord("T"))
    elif obj is False:
        out.append(ord("F"))
    elif isinstance(obj, int):
        out.append(ord("I"))
        write_uvarint(out, _zigzag(obj))
    elif isinstance(obj, float):
        out.append(ord("D"))
        out += struct.pack("<d", obj)
    elif isinstance(obj, str):
        data = obj.encode("utf-8")
        out.append(ord("S"))
        write_uvarint(out, len(data))
        out += data
    elif isinstance(obj, (bytes, bytearray, memoryview)):
        data = bytes(obj)
        out.append(ord("B"))
        write_uvarint(out, len(data))
        out += data
    elif isinstance(obj, (list, tuple)):
        out.append(ord("L"))
        write_uvarint(out, len(obj))
        for item in obj:
            _pack_into(out, item)
    elif isinstance(obj, dict):
        out.append(ord("M"))
        write_uvarint(out, len(obj))
        for k, v in obj.items():
            _pack_into(out, k)
            _pack_into(out, v)
    else:
        raise TypeError(f"pack_obj cannot serialize {type(obj).__name__}")


def unpack_obj(data: bytes):
    obj, pos = _unpack_from(data, 0)
    if pos != len(data):
        raise ReplayFormatError("trailing bytes after packed object")
    return obj


def _unpack_from(buf: bytes, pos: int):
    if pos >= len(buf):
        raise ReplayFormatError("truncated packed object")
    tag = buf[pos]
    pos += 1
    if tag == ord("N"):
        return None, pos
    if tag == ord("T"):
        return True, pos
    if tag == ord("F"):
        return False, pos
    if tag == ord("I"):
        z, pos = read_uvarint(buf, pos)
        return _unzigzag(z), pos
    if tag == ord("D"):
        if pos + 8 > len(buf):
            raise ReplayFormatError("truncated float")
        return struct.unpack_from("<d", buf, pos)[0], pos + 8
    if tag == ord("S"):
        n, pos = read_uvarint(buf, pos)
        if pos + n > len(buf):
            raise ReplayFormatError("truncated string")
        return buf[pos : pos + n].decode("utf-8"), pos + n
    if tag == ord("B"):
        n, pos = read_uvarint(buf, pos)
        if pos + n > len(buf):
            raise ReplayFormatError("truncated bytes")
        return bytes(buf[pos : pos + n]), pos + n
    if tag == ord("L"):
        n, pos = read_uvarint(buf, pos)
        items = []
        for _ in range(n):
            item, pos = _unpack_from(buf, pos)
            items.append(item)
        return items, pos
    if tag == ord("M"):
        n, pos = read_uvarint(buf, pos)
        d = {}
        for _ in range(n):
            k, pos = _unpack_from(buf, pos)
            v, pos = _unpack_from(buf, pos)
            d[k] = v
        return d, pos
    raise ReplayFormatError(f"unknown pack tag {tag:#x}")


# -- events and the log --------------------------------------------------------

@dataclass(frozen=True)
class Event:
    """One recorded nondeterministic decision."""

    kind: int
    tid: int
    insns: int
    args: Tuple[int, ...] = ()
    blob: bytes = b""

    @property
    def name(self) -> str:
        return EVENT_NAMES.get(self.kind, f"ev{self.kind}")

    def describe(self) -> str:
        base = f"{self.name}(tid={self.tid}, insns={self.insns}"
        if self.args:
            base += f", args={self.args}"
        return base + ")"


class EventLog:
    """A complete recording: meta + events + checkpoint snapshots."""

    def __init__(self, meta: Optional[dict] = None):
        self.meta: dict = meta or {}
        self.events: List[Event] = []
        #: Checkpoint snapshot blobs (pack_obj output), indexed by the
        #: ckpt_index in the matching EV_CHECKPOINT's args.
        self.checkpoints: List[bytes] = []

    def append(self, ev: Event) -> None:
        self.events.append(ev)

    # -- wire format -----------------------------------------------------------

    def to_bytes(self) -> bytes:
        body = bytearray()
        meta = json.dumps(self.meta, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        body += struct.pack("<I", len(meta))
        body += meta
        body += struct.pack("<I", len(self.events))
        for ev in self.events:
            body.append(ev.kind)
            write_uvarint(body, ev.tid)
            write_uvarint(body, ev.insns)
            body.append(len(ev.args))
            for a in ev.args:
                write_uvarint(body, a)
            write_uvarint(body, len(ev.blob))
            body += ev.blob
        body += struct.pack("<I", len(self.checkpoints))
        for blob in self.checkpoints:
            z = zlib.compress(blob, 6)
            body += struct.pack("<I", len(z))
            body += z
        digest = hashlib.sha256(body).digest()
        return MAGIC + struct.pack("<H", FORMAT_VERSION) + digest + bytes(body)

    @classmethod
    def from_bytes(cls, data: bytes) -> "EventLog":
        if len(data) < len(MAGIC) + 2 + 32:
            raise ReplayFormatError("log file too short to be a recording")
        if data[: len(MAGIC)] != MAGIC:
            raise ReplayFormatError(
                f"bad magic {data[:len(MAGIC)]!r}: not a record/replay log"
            )
        pos = len(MAGIC)
        (version,) = struct.unpack_from("<H", data, pos)
        pos += 2
        if version != FORMAT_VERSION:
            raise ReplayFormatError(
                f"log format version {version} unsupported "
                f"(this build reads version {FORMAT_VERSION})"
            )
        digest = data[pos : pos + 32]
        pos += 32
        body = data[pos:]
        actual = hashlib.sha256(body).digest()
        if actual != digest:
            raise ReplayFormatError(
                "content hash mismatch: log is corrupt or was modified "
                f"(expected {digest.hex()[:16]}…, got {actual.hex()[:16]}…)"
            )
        log = cls()
        pos = 0
        try:
            (meta_len,) = struct.unpack_from("<I", body, pos)
            pos += 4
            log.meta = json.loads(body[pos : pos + meta_len].decode("utf-8"))
            pos += meta_len
            (n_events,) = struct.unpack_from("<I", body, pos)
            pos += 4
            for _ in range(n_events):
                kind = body[pos]
                pos += 1
                tid, pos = read_uvarint(body, pos)
                insns, pos = read_uvarint(body, pos)
                nargs = body[pos]
                pos += 1
                args = []
                for _ in range(nargs):
                    a, pos = read_uvarint(body, pos)
                    args.append(a)
                blob_len, pos = read_uvarint(body, pos)
                blob = bytes(body[pos : pos + blob_len])
                if len(blob) != blob_len:
                    raise ReplayFormatError("truncated event blob")
                pos += blob_len
                log.append(Event(kind, tid, insns, tuple(args), blob))
            (n_ckpts,) = struct.unpack_from("<I", body, pos)
            pos += 4
            for _ in range(n_ckpts):
                (z_len,) = struct.unpack_from("<I", body, pos)
                pos += 4
                z = body[pos : pos + z_len]
                if len(z) != z_len:
                    raise ReplayFormatError("truncated checkpoint")
                pos += z_len
                log.checkpoints.append(zlib.decompress(z))
        except (struct.error, IndexError, UnicodeDecodeError,
                json.JSONDecodeError, zlib.error) as exc:
            raise ReplayFormatError(f"malformed log body: {exc}") from exc
        return log

    @classmethod
    def load(cls, path: str) -> "EventLog":
        try:
            with open(path, "rb") as f:
                data = f.read()
        except OSError as exc:
            raise ReplayFormatError(f"cannot read log {path!r}: {exc}") from exc
        return cls.from_bytes(data)

    def save(self, path: str) -> None:
        # Atomic: a reader (or a worker killed mid-write) only ever sees
        # the previous complete log, never a torn one.
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as f:
            f.write(self.to_bytes())
        os.replace(tmp, path)


# -- the record/replay contract ------------------------------------------------

#: Options that must match between record and replay: each one changes
#: *architected* behaviour (block boundaries, scheduling or fault
#: semantics).  Codegen tier, perf mode, chaining and cache sizes are
#: deliberately absent — replay across those is the whole point.
CONTRACT_KEYS = (
    "smc_check", "precise_faults", "dispatch_quantum", "thread_timeslice",
    "signal_poll_interval", "transtab_entries", "transtab_policy",
    "stack_size", "unroll", "opt1", "opt2", "max_stackframe",
)


def build_contract(options, tool_name: str) -> dict:
    c = {"tool": tool_name}
    for key in CONTRACT_KEYS:
        c[key] = getattr(options, key)
    return c


def check_contract(recorded: dict, current: dict) -> None:
    mismatched = sorted(
        k for k in set(recorded) | set(current)
        if recorded.get(k) != current.get(k)
    )
    if mismatched:
        detail = ", ".join(
            f"{k}: recorded={recorded.get(k)!r} current={current.get(k)!r}"
            for k in mismatched
        )
        raise ReplayFormatError(
            f"replay options incompatible with recording ({detail})"
        )


# -- snapshots (checkpoint/restore) --------------------------------------------

def capture_snapshot(sched, current_tid: int, slice_left: int) -> dict:
    """Capture the full architected state of a run at a block boundary.

    Tier-independent by construction: only guest-visible state and the
    serial-ordered translation *list* (addresses + SMC metadata, never
    compiled artifacts) are recorded.
    """
    kernel = sched.kernel
    mem = sched.memory
    fs = kernel.fs

    threads = []
    for tid in sorted(sched.threads):
        ts = sched.threads[tid]
        # The spill and call-save areas are dead at block boundaries;
        # their residue varies with the codegen tier and the Memcheck
        # fast-path setting, so they are masked out of the snapshot (and
        # hence the cross-run state hash).
        data = bytearray(ts.data)
        data[SPILL_AREA_BASE:] = bytes(len(data) - SPILL_AREA_BASE)
        threads.append({
            "tid": tid,
            "data": bytes(data),
            "status": ts.status.value,
            "exit_status": ts.exit_status,
            "joining": ts.joining,
            "stack_base": ts.stack_base,
            "stack_limit": ts.stack_limit,
            "callstack": [[ra, callee] for ra, callee in ts.callstack],
        })

    pages = []
    for pn in sorted(mem._pages):
        data, prot = mem._pages[pn]
        pages.append([pn, prot, bytes(data)])

    pending = []
    for tid in sorted(kernel.pending):
        q = kernel.pending[tid]
        if not q:
            continue
        entries = []
        for sig, si in q:
            entries.append([
                sig,
                None if si is None else [si.sig, si.addr, si.access, si.pc],
            ])
        pending.append([tid, entries])

    fds = []
    for fd in sorted(fs._fds):
        if fd <= 2:
            continue
        f = fs._fds[fd]
        alias = f.name in fs.files and fs.files[f.name] is f.data
        fds.append({
            "fd": fd,
            "name": f.name,
            "pos": f.pos,
            "flags": f.flags,
            "alias": alias,
            # Orphaned data (file was unlinked while open) must be carried
            # by value; aliased data is restored through files[name].
            "data": None if alias else bytes(f.data),
        })

    translations = [
        [t.guest_addr, bool(t.smc_checked), bool(t.quarantined), t.smc_hash]
        for t in sorted(sched.transtab.all_translations(),
                        key=lambda t: t.serial)
    ]

    injector = None
    if sched.injector is not None:
        inj = sched.injector
        version, state, gauss = inj._rng.getstate()
        injector = {
            "spec": inj.spec,
            "rules": [
                [name, r.at, r.prob, r.seen, r.fired]
                for name, r in sorted(inj.rules.items())
            ],
            "rng": [version, list(state), gauss],
        }

    run_queue = [t for t in sched._run_queue if t in sched.threads]

    return {
        "version": SNAPSHOT_VERSION,
        "insns": sched.dispatcher.guest_insns,
        "blocks": sched.dispatcher.stats.blocks_executed,
        "translations_made": sched.translator.translations_made,
        "step": sched._step,
        "current_tid": current_tid,
        "slice_left": slice_left,
        "next_tid": sched._next_tid,
        "next_thread_stack": sched._next_thread_stack,
        "run_queue": run_queue,
        "zombies": [[t, s] for t, s in sorted(sched._zombies.items())],
        "stacks": {
            "next_id": sched.registered_stacks._next_id,
            "entries": [
                [sid, start, end]
                for sid, (start, end)
                in sorted(sched.registered_stacks._stacks.items())
            ],
        },
        "counters": {
            "faults_recovered": sched.faults_recovered,
            "quarantined_blocks": sched.quarantined_blocks,
        },
        "threads": threads,
        "memory": pages,
        "code_pages": sorted(mem.code_pages),
        "kernel": {
            "brk_base": kernel.brk_base,
            "brk_cur": kernel.brk_cur,
            "time_offset_usec": kernel.time_offset_usec,
            "handlers": [[s, h] for s, h in sorted(kernel.handlers.items())],
            "pending": pending,
            "timers": [list(t) for t in kernel.timers],
        },
        "fs": {
            "files": [[name, bytes(data)]
                      for name, data in sorted(fs.files.items())],
            "stdin": bytes(fs.stdin),
            "stdout": bytes(fs.stdout),
            "stderr": bytes(fs.stderr),
            "stream_pos": [fs._fds[0].pos, fs._fds[1].pos, fs._fds[2].pos],
            "fds": fds,
        },
        "translations": translations,
        "injector": injector,
    }


def snapshot_hash(snap: dict) -> bytes:
    """Content hash of a snapshot's tier-independent, injector-independent
    portion (replay runs with injector=None, so the injector echo is
    excluded from the cross-run identity)."""
    trimmed = {k: v for k, v in snap.items() if k != "injector"}
    return hashlib.sha256(pack_obj(trimmed)).digest()


def apply_snapshot(sched, snap: dict) -> None:
    """Restore a scheduler (and its kernel/fs/memory) from a snapshot."""
    if snap.get("version") != SNAPSHOT_VERSION:
        raise ReplayFormatError(
            f"snapshot version {snap.get('version')} unsupported "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    kernel = sched.kernel
    mem = sched.memory
    fs = kernel.fs

    # Memory first (translations re-hash guest bytes at restore).
    mem._pages.clear()
    for pn, prot, data in snap["memory"]:
        mem._pages[pn] = (bytearray(data), prot)
    mem.code_pages = set(snap["code_pages"])

    # Threads: reuse existing ThreadState objects so their cached
    # arch/u32 memoryviews stay valid; create the rest.
    wanted = {}
    for entry in snap["threads"]:
        tid = entry["tid"]
        ts = sched.threads.get(tid)
        if ts is None:
            ts = ThreadState(tid=tid)
        ts.data[:] = entry["data"]
        ts.status = ThreadStatus(entry["status"])
        ts.exit_status = entry["exit_status"]
        ts.joining = entry["joining"]
        ts.stack_base = entry["stack_base"]
        ts.stack_limit = entry["stack_limit"]
        ts.callstack = [(ra, callee) for ra, callee in entry["callstack"]]
        wanted[tid] = ts
    sched.threads = wanted

    sched._zombies = {t: s for t, s in snap["zombies"]}
    sched._next_tid = snap["next_tid"]
    sched._next_thread_stack = snap["next_thread_stack"]
    sched.registered_stacks._next_id = snap["stacks"]["next_id"]
    sched.registered_stacks._stacks = {
        sid: (start, end) for sid, start, end in snap["stacks"]["entries"]
    }
    sched.faults_recovered = snap["counters"]["faults_recovered"]
    sched.quarantined_blocks = snap["counters"]["quarantined_blocks"]
    sched._step = snap["step"]
    sched.current_tid = snap["current_tid"]
    # The interrupted thread resumes first, with its remaining timeslice.
    sched._run_queue = [snap["current_tid"]] + list(snap["run_queue"])
    sched._resume_slice_left = snap["slice_left"]

    k = snap["kernel"]
    kernel.brk_base = k["brk_base"]
    kernel.brk_cur = k["brk_cur"]
    kernel.time_offset_usec = k["time_offset_usec"]
    kernel.handlers = {s: h for s, h in k["handlers"]}
    kernel.pending = {}
    for tid, entries in k["pending"]:
        q = deque()
        for sig, si in entries:
            q.append((sig, None if si is None
                      else SigInfo(si[0], addr=si[1], access=si[2], pc=si[3])))
        kernel.pending[tid] = q
    kernel.timers = [tuple(t) for t in k["timers"]]

    f = snap["fs"]
    fs.files = {name: bytearray(data) for name, data in f["files"]}
    fs.stdin[:] = f["stdin"]
    fs.stdout[:] = f["stdout"]
    fs.stderr[:] = f["stderr"]
    for i, pos in enumerate(f["stream_pos"]):
        fs._fds[i].pos = pos
    for fd in [fd for fd in fs._fds if fd > 2]:
        del fs._fds[fd]
    from ..kernel.fs import _OpenFile

    for entry in f["fds"]:
        if entry["alias"]:
            data = fs.files[entry["name"]]
        else:
            data = bytearray(entry["data"])
        fs._fds[entry["fd"]] = _OpenFile(
            entry["name"], data, pos=entry["pos"], flags=entry["flags"]
        )

    # Rebuild the translation table in original serial order, so the
    # post-restore lookup/translate sequence matches the original run's
    # warm-cache behaviour.
    sched._restore_translations(snap["translations"])

    # Counters last: retranslation above must not perturb them.
    sched.translator.translations_made = snap["translations_made"]
    sched.dispatcher.guest_insns = snap["insns"]
    sched.dispatcher.stats.blocks_executed = snap["blocks"]

    inj = snap.get("injector")
    if inj is not None and sched.injector is not None:
        rules = {name: (at, prob, seen, fired)
                 for name, at, prob, seen, fired in inj["rules"]}
        for name, rule in sched.injector.rules.items():
            if name in rules:
                rule.at, rule.prob, rule.seen, rule.fired = rules[name]
        version, state, gauss = inj["rng"]
        sched.injector._rng.setstate((version, tuple(state), gauss))


# -- the recorder --------------------------------------------------------------

class Recorder:
    """Captures a live run's nondeterministic decisions into an EventLog."""

    replaying = False

    def __init__(self, options):
        self.options = options
        self.log = EventLog()
        self.sched = None
        self._suspended = 0
        self.checkpoint_bytes = 0
        self.flushes = 0

    # -- wiring ----------------------------------------------------------------

    def bind(self, sched, tool_name: str) -> None:
        self.sched = sched
        self.log.meta = {
            "format": FORMAT_VERSION,
            "contract": build_contract(self.options, tool_name),
            "recorded": {
                "codegen": self.options.codegen,
                "perf": self.options.perf,
                "inject": self.options.inject,
                "checkpoint_every": self.options.checkpoint_every,
            },
        }
        sched.transtab.on_evict = self._on_evict
        if sched.injector is not None:
            inj = sched.injector

            def _jit_hook(addr: int) -> None:
                try:
                    inj.jit_failure(addr)
                except InjectedJitError:
                    self.emit(EV_JITFAIL, tid=sched.current_tid, args=(addr,))
                    raise

            sched.translator.fail_hook = _jit_hook

    def _now(self) -> int:
        return self.sched.dispatcher.guest_insns if self.sched else 0

    def suspend(self) -> None:
        """Stop emitting (used while rebuilding state during restore)."""
        self._suspended += 1

    def resume(self) -> None:
        self._suspended -= 1

    def emit(self, kind: int, tid: int = 0, args: Tuple[int, ...] = (),
             blob: bytes = b"") -> None:
        if self._suspended:
            return
        self.log.append(Event(kind, tid, self._now(), args, blob))
        # Incremental crash-bundle persistence: with --record-flush=N the
        # log is (atomically) rewritten every N events, so a worker killed
        # mid-run leaves a complete, loadable prefix on disk.
        every = getattr(self.options, "record_flush_every", 0)
        if every and self.options.record \
                and len(self.log.events) % every == 0:
            self.log.save(self.options.record)
            self.flushes += 1
            self._flushed_events = len(self.log.events)

    def autoflush(self) -> None:
        """Dispatch-quantum flush hook: with --record-flush active, also
        persist at quantum boundaries, so compute-heavy guests that emit
        few events still leave an up-to-date prefix when killed."""
        every = getattr(self.options, "record_flush_every", 0)
        if not every or not self.options.record or self._suspended:
            return
        if len(self.log.events) == getattr(self, "_flushed_events", -1):
            return
        self.log.save(self.options.record)
        self.flushes += 1
        self._flushed_events = len(self.log.events)

    # -- recording hooks (called by scheduler/syscalls/transtab) ---------------

    def thread_scheduled(self, tid: int) -> None:
        self.emit(EV_SCHED, tid=tid)

    def syscall_done(self, tid: int, num: int, from_host: bool, rflag: int,
                     result: int) -> None:
        self.emit(EV_SYSCALL, tid=tid,
                  args=(num, int(from_host), rflag, result & M32))

    def signal_delivered(self, tid: int, sig: int,
                         si: Optional[SigInfo]) -> None:
        if si is None:
            args = (sig, 0, 0, 0, 0)
        else:
            args = (sig, 1, si.addr & M32, ACCESS_CODES.get(si.access, 0),
                    si.pc & M32)
        self.emit(EV_SIGNAL, tid=tid, args=args)

    def inject_fired(self, name: str, step: int, tid: int) -> None:
        self.emit(EV_INJECT, tid=tid, args=(INJECT_CODES[name], step))

    def smc_flush(self, tid: int, guest_addr: int) -> None:
        self.emit(EV_SMC, tid=tid, args=(guest_addr & M32,))

    def _on_evict(self, count: int) -> None:
        self.emit(EV_EVICT, tid=self.sched.current_tid if self.sched else 0,
                  args=(count,))

    def next_stop(self, now: int) -> Optional[int]:
        """The next checkpoint boundary (guest_insns), if any."""
        every = self.options.checkpoint_every
        if not every:
            return None
        return ((now // every) + 1) * every

    def at_insns_stop(self, tid: int, slice_left: int) -> None:
        """The dispatcher paused at a checkpoint boundary: snapshot."""
        snap = capture_snapshot(self.sched, tid, slice_left)
        blob = pack_obj(snap)
        idx = len(self.log.checkpoints)
        self.log.checkpoints.append(blob)
        self.checkpoint_bytes += len(blob)
        self.emit(EV_CHECKPOINT, tid=tid, args=(idx,), blob=snapshot_hash(snap))

    def bootstrap(self, snap: dict) -> None:
        """Record-from-restore: the log opens with the starting snapshot,
        so its replay consumer skips the same synthetic first pick."""
        blob = pack_obj(snap)
        self.log.checkpoints.append(blob)
        self.checkpoint_bytes += len(blob)
        self.emit(EV_CHECKPOINT, tid=snap["current_tid"], args=(0,),
                  blob=snapshot_hash(snap))

    def finish(self, outcome) -> None:
        self.emit(
            EV_EXIT,
            tid=self.sched.current_tid if self.sched else 0,
            args=(
                outcome.exit_code & 0xFF,
                outcome.fatal_signal or 0,
                STOP_CODES.get(outcome.stopped_reason, 0),
                outcome.blocks_executed,
                outcome.translations,
                self.sched.faults_recovered if self.sched else 0,
                self.sched.quarantined_blocks if self.sched else 0,
            ),
        )

    def write(self, path: str) -> None:
        self.log.save(path)

    def stats_dict(self) -> dict:
        return {
            "mode": "record",
            "events_recorded": len(self.log.events),
            "checkpoints": len(self.log.checkpoints),
            "checkpoint_bytes": self.checkpoint_bytes,
            "flushes": self.flushes,
            "divergences": 0,
        }


# -- the replayer --------------------------------------------------------------

class Replayer:
    """Drives a run from a recorded EventLog, verifying each decision."""

    replaying = True

    def __init__(self, options, log: EventLog):
        self.options = options
        self.log = log
        self.sched = None
        self.pos = 0
        self.consumed = 0
        self.divergences = 0
        self.checkpoints_verified = 0
        self._suspended = 0
        #: A log whose final event is not EV_EXIT was flushed mid-run by a
        #: worker that then crashed (a crash bundle): replay it *partially*
        #: — run until the log is exhausted, then stop cleanly at the exact
        #: recorded point instead of diverging.
        self.partial = not (log.events and log.events[-1].kind == EV_EXIT)
        #: (event index, insns) of every EV_CHECKPOINT, for next_stop.
        self._ckpt_points = [
            (i, ev.insns) for i, ev in enumerate(log.events)
            if ev.kind == EV_CHECKPOINT
        ]
        self._ckpt_cursor = 0

    @classmethod
    def load(cls, options, path: str) -> "Replayer":
        return cls(options, EventLog.load(path))

    # -- wiring ----------------------------------------------------------------

    def bind(self, sched, tool_name: str) -> None:
        self.sched = sched
        recorded = self.log.meta.get("contract")
        if not isinstance(recorded, dict):
            raise ReplayFormatError("log has no contract metadata")
        check_contract(recorded, build_contract(self.options, tool_name))
        sched.translator.fail_hook = self.maybe_jit_fail
        sched.transtab.on_evict = self._on_evict

    def _now(self) -> int:
        return self.sched.dispatcher.guest_insns if self.sched else 0

    def _pc(self) -> int:
        if self.sched is None:
            return 0
        ts = self.sched.threads.get(self.sched.current_tid)
        return ts.pc if ts is not None else 0

    def suspend(self) -> None:
        self._suspended += 1

    def resume(self) -> None:
        self._suspended -= 1

    # -- cursor ----------------------------------------------------------------

    def peek(self) -> Optional[Event]:
        if self.pos < len(self.log.events):
            return self.log.events[self.pos]
        return None

    def take(self, expect: str) -> Event:
        ev = self.peek()
        if ev is None:
            if self.partial:
                raise ReplayLogExhausted(self.pos, pc=self._pc(),
                                         insns=self._now())
            self.diverge(f"a {expect} event", "log exhausted")
        self.pos += 1
        self.consumed += 1
        return ev

    def seek_to(self, index: int) -> None:
        """Jump the cursor past a restore point."""
        self.pos = index
        self._ckpt_cursor = 0
        while (self._ckpt_cursor < len(self._ckpt_points)
               and self._ckpt_points[self._ckpt_cursor][0] < index):
            self._ckpt_cursor += 1

    def diverge(self, expected, actual) -> None:
        self.divergences += 1
        raise ReplayDivergence(self.pos, expected, actual,
                               pc=self._pc(), insns=self._now())

    def _verify_insns(self, ev: Event) -> None:
        now = self._now()
        if ev.insns != now:
            self.diverge(f"{ev.name} at guest_insns={ev.insns}",
                         f"guest_insns={now}")

    # -- replay hooks ----------------------------------------------------------

    def next_thread(self, queue: List[int], threads: Dict) -> int:
        # Mirror the recorder's silent skipping of stale queue entries.
        while queue and queue[0] not in threads:
            queue.pop(0)
        ev = self.take("sched")
        if ev.kind != EV_SCHED:
            self.diverge(f"{ev.describe()}", "a thread-schedule point")
        self._verify_insns(ev)
        if not queue:
            self.diverge(f"sched(tid={ev.tid})", "empty run queue")
        if queue[0] != ev.tid:
            self.diverge(f"sched(tid={ev.tid})",
                         f"run-queue head tid={queue[0]}")
        return queue.pop(0)

    def pending_inject(self, step: int) -> Optional[str]:
        """Is a dispatch-level injection recorded for this scheduler step?"""
        ev = self.peek()
        if ev is None or ev.kind != EV_INJECT:
            return None
        if ev.args[1] > step:
            return None
        if ev.args[1] < step:
            self.diverge(f"inject at step {ev.args[1]}",
                         f"already past it at step {step}")
        self.take("inject")
        self._verify_insns(ev)
        return INJECT_NAMES[ev.args[0]]

    def maybe_jit_fail(self, addr: int) -> None:
        """Translator fail_hook: re-raise recorded injected JIT failures."""
        ev = self.peek()
        if (ev is not None and ev.kind == EV_JITFAIL
                and ev.args[0] == (addr & M32) and ev.insns == self._now()):
            self.take("jitfail")
            raise InjectedJitError(addr)

    def syscall_injected(self, tid: int, num: int) -> Optional[int]:
        """At syscall entry: impose a recorded injected failure, if the
        next event is one for exactly this call.  Peeks only — normal
        results are verified at completion instead (SYS_EXIT raises
        ProcessExit before completion, so record emits nothing for it)."""
        ev = self.peek()
        if (ev is not None and ev.kind == EV_SYSCALL
                and ev.args[2] == RES_INJECTED
                and ev.tid == tid and ev.args[0] == num):
            self.take("syscall")
            self._verify_insns(ev)
            return ev.args[3]
        return None

    def syscall_check(self, tid: int, num: int, from_host: bool, rflag: int,
                      result: int) -> None:
        ev = self.take("syscall")
        actual = (EVENT_NAMES[EV_SYSCALL], tid, num, int(from_host), rflag,
                  result & M32)
        expected = (ev.name, ev.tid) + ev.args if ev.kind == EV_SYSCALL \
            else (ev.describe(),)
        if (ev.kind != EV_SYSCALL or ev.tid != tid or ev.args[0] != num
                or ev.args[1] != int(from_host) or ev.args[2] != rflag
                or ev.args[3] != (result & M32)):
            self.diverge(expected, actual)
        self._verify_insns(ev)

    def signal_delivered(self, tid: int, sig: int,
                         si: Optional[SigInfo]) -> None:
        ev = self.take("signal")
        if si is None:
            args = (sig, 0, 0, 0, 0)
        else:
            args = (sig, 1, si.addr & M32, ACCESS_CODES.get(si.access, 0),
                    si.pc & M32)
        if ev.kind != EV_SIGNAL or ev.tid != tid or ev.args != args:
            self.diverge(ev.describe(),
                         f"signal(tid={tid}, args={args})")
        self._verify_insns(ev)

    def smc_flush(self, tid: int, guest_addr: int) -> None:
        ev = self.take("smc")
        if ev.kind != EV_SMC or ev.args[0] != (guest_addr & M32):
            self.diverge(ev.describe(),
                         f"smc(tid={tid}, addr={guest_addr:#x})")
        self._verify_insns(ev)

    def _on_evict(self, count: int) -> None:
        if self._suspended:
            return
        ev = self.take("evict")
        if ev.kind != EV_EVICT or ev.args[0] != count:
            self.diverge(ev.describe(), f"evict(count={count})")

    def next_stop(self, now: int) -> Optional[int]:
        """The next recorded checkpoint boundary not yet reached."""
        while self._ckpt_cursor < len(self._ckpt_points):
            idx, insns = self._ckpt_points[self._ckpt_cursor]
            if idx < self.pos or insns <= now:
                self._ckpt_cursor += 1
                continue
            return insns
        return None

    def at_insns_stop(self, tid: int, slice_left: int) -> None:
        """Verify the replayed state matches the recorded checkpoint."""
        ev = self.take("checkpoint")
        if ev.kind != EV_CHECKPOINT:
            self.diverge(ev.describe(), "a checkpoint boundary")
        self._verify_insns(ev)
        snap = capture_snapshot(self.sched, tid, slice_left)
        h = snapshot_hash(snap)
        if ev.blob and h != ev.blob:
            self.diverge(
                f"checkpoint #{ev.args[0]} state hash {ev.blob.hex()[:16]}…",
                f"state hash {h.hex()[:16]}…",
            )
        self.checkpoints_verified += 1

    def finish(self, outcome) -> None:
        if self.partial:
            # A crash bundle has no EV_EXIT.  Exhaustion (the normal end
            # of a partial replay) leaves nothing to verify; a guest that
            # exits *early*, with recorded events still unconsumed, did
            # not follow the recording.
            if self.pos < len(self.log.events):
                self.diverge(
                    "end of partial log",
                    f"guest stopped with {len(self.log.events) - self.pos} "
                    f"events left (next: "
                    f"{self.log.events[self.pos].describe()})",
                )
            return
        ev = self.take("exit")
        actual = (
            outcome.exit_code & 0xFF,
            outcome.fatal_signal or 0,
            STOP_CODES.get(outcome.stopped_reason, 0),
            outcome.blocks_executed,
            outcome.translations,
            self.sched.faults_recovered if self.sched else 0,
            self.sched.quarantined_blocks if self.sched else 0,
        )
        if ev.kind != EV_EXIT or ev.args != actual:
            self.diverge(ev.describe(), f"exit(args={actual})")
        self._verify_insns(ev)
        if self.pos < len(self.log.events):
            self.diverge("end of log",
                         f"{len(self.log.events) - self.pos} events left "
                         f"(next: {self.log.events[self.pos].describe()})")

    def stats_dict(self) -> dict:
        return {
            "mode": "replay",
            "partial": self.partial,
            "log_events": len(self.log.events),
            "events_consumed": self.consumed,
            "divergences": self.divergences,
            "checkpoints": len(self.log.checkpoints),
            "checkpoints_verified": self.checkpoints_verified,
        }
