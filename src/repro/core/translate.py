"""The eight-phase translation pipeline (Section 3.7).

========  ==========================  ===========================
Phase     What                        Module
========  ==========================  ===========================
1         disassembly (arch-specific) :mod:`repro.frontend.disasm`
2         optimisation 1              :mod:`repro.opt.opt1`
3         instrumentation (the tool)  the tool plug-in
(3b)      SP-change event calls       here (on the tool's behalf)
4         optimisation 2              :mod:`repro.opt.opt2`
5         tree building               :mod:`repro.opt.treebuild`
6         instruction selection*      :mod:`repro.backend.isel`
7         register allocation         :mod:`repro.backend.regalloc`
8         assembly*                   :mod:`repro.backend.hostisa`
========  ==========================  ===========================

All phases are performed by the core except instrumentation, which is
performed by the tool.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..frontend.disasm import Disassembler
from ..frontend.spec import vx32_spec_helper
from ..guest.regs import SP, gpr_offset
from ..ir.block import IRSB
from ..ir.expr import Expr, Get, RdTmp
from ..ir.stmt import Dirty, IMark, Put, StateFx, Stmt
from ..ir.types import Ty
from ..ir.validate import validate
from ..opt.opt1 import optimise1
from ..opt.opt2 import optimise2
from ..opt.treebuild import build_trees
from ..backend.hostisa import encode_insns
from ..backend.isel import select
from ..backend.regalloc import AllocStats, allocate
from .options import Options
from .tool import Tool

#: Dirty helper the core inserts after every SP write when the tool tracks
#: stack events (R7).  Registered by the scheduler.
SP_TRACK_HELPER = "vg_track_sp_change"


@dataclass
class TranslationStats:
    """Per-translation pipeline statistics (feeds several benches)."""

    guest_insns: int = 0
    stmts_disasm: int = 0
    stmts_opt1: int = 0
    stmts_instrumented: int = 0
    stmts_opt2: int = 0
    host_insns: int = 0
    alloc: Optional[AllocStats] = None
    phase_seconds: dict = field(default_factory=dict)


@dataclass
class Translation:
    """One finished translation, as stored in the translation table."""

    guest_addr: int
    #: Assembled host machine code (Phase 8 output).
    code: bytes
    #: Guest address ranges covered (start, len) — more than one when the
    #: disassembler chased unconditional branches.
    ranges: Tuple[Tuple[int, int], ...]
    #: CRC of the original guest bytes, for self-modifying-code checking
    #: (None when SMC checking is off for this translation).
    smc_hash: Optional[int] = None
    stats: TranslationStats = field(default_factory=TranslationStats)
    #: Host closures, compiled lazily by the dispatcher.
    compiled: Optional[list] = None
    #: Perf mode: the content-addressed block runner (shared between
    #: byte-identical translations), compiled eagerly at insert time.
    compiled_fn: Optional[object] = None
    #: Chaining: resolved next translation for a constant Boring successor.
    chain_next: Optional["Translation"] = None
    #: Perf-mode chaining: last observed successor after a Call / Ret
    #: (kept separate so call/return targets don't thrash the Boring link).
    chain_call: Optional["Translation"] = None
    chain_ret: Optional["Translation"] = None
    #: Monotonic insertion number (set by the translation table; FIFO evict).
    serial: int = 0
    #: Set when evicted/discarded, so stale chain pointers are not followed.
    dead: bool = False
    #: Last-use counter (only maintained under the LRU ablation policy).
    last_used: int = 0
    #: True if the SMC hash must be re-checked before every execution
    #: (Section 3.16: by default, only translations of on-stack code).
    smc_checked: bool = False
    #: True if the JIT back-end failed for this block and it executes
    #: through the IR interpreter instead (graceful degradation).
    quarantined: bool = False
    #: Codegen tier this block currently executes in ("closures", "perf",
    #: "pygen", "interp"); None until first attached (see core.codegen).
    tier: Optional[str] = None
    #: Executions completed in the closure tier (drives --codegen=auto
    #: promotion at --jit-threshold).
    exec_count: int = 0
    #: True if a pygen compile failed for this block (real or injected):
    #: it stays demoted in the closure tier, never retried.
    pygen_failed: bool = False
    #: True if building a trace headed at this block failed: the block
    #: stays in the pygen tier and is never re-recorded (core.traces).
    trace_failed: bool = False
    #: The live trace headed at this block, if any: the dispatcher's
    #: superblock probe is one attribute load on the block it already
    #: resolved, so the non-trace fast path pays no map lookup
    #: (core.traces maintains this on build / sever / prune).
    trace: Optional[object] = None
    #: The instrumented flat IR, kept for quarantined translations (the
    #: interpreter runner executes it directly) and under traces mode
    #: (the stitcher stitches member IR without re-translating).
    irsb: Optional[IRSB] = None

    @property
    def guest_len(self) -> int:
        return sum(length for _, length in self.ranges)

    def covers(self, addr: int, size: int = 1) -> bool:
        return any(
            start < addr + size and addr < start + length
            for start, length in self.ranges
        )


def _imark_ranges(sb: IRSB) -> Tuple[Tuple[int, int], ...]:
    """Coalesce the block's IMarks into covered guest ranges."""
    ranges: List[Tuple[int, int]] = []
    for s in sb.stmts:
        if isinstance(s, IMark):
            if ranges and ranges[-1][0] + ranges[-1][1] == s.addr:
                start, length = ranges[-1]
                ranges[-1] = (start, length + s.length)
            else:
                ranges.append((s.addr, s.length))
    return tuple(ranges)


def add_sp_tracking(sb: IRSB) -> IRSB:
    """Insert SP-change event calls after every stack-pointer PUT.

    "The core instruments the code with calls to the event callbacks on
    the tool's behalf" (Section 3.12).  The helper receives the old and
    new SP and dispatches new_mem_stack/die_mem_stack (or the stack-switch
    heuristic) at run time.
    """
    sp_off = gpr_offset(SP)
    out = sb.copy()
    stmts: List[Stmt] = []
    for s in out.stmts:
        if isinstance(s, Put) and s.offset == sp_off:
            told = out.new_tmp(Ty.I32)
            stmts.append(
                # Capture the old SP before the PUT...
                _wrtmp(told, Get(sp_off, Ty.I32))
            )
            stmts.append(s)
            # ...and report the change after it.
            stmts.append(
                Dirty(
                    SP_TRACK_HELPER,
                    (RdTmp(told), s.data),
                    state_fx=(StateFx(False, sp_off, 4),),
                )
            )
        else:
            stmts.append(s)
    out.stmts = stmts
    return out


def _wrtmp(tmp: int, data: Expr) -> Stmt:
    from ..ir.stmt import WrTmp

    return WrTmp(tmp, data)


class Translator:
    """Runs the pipeline for one core instance."""

    def __init__(
        self,
        fetch: Callable[[int, int], bytes],
        tool: Tool,
        options: Options,
        *,
        track_stack_events: bool = False,
        collect_phase_times: bool = False,
    ):
        self.disasm = Disassembler(fetch)
        self._fetch = fetch
        self.tool = tool
        self.options = options
        self.track_stack_events = track_stack_events
        self.collect_phase_times = collect_phase_times
        #: Cumulative pipeline statistics.
        self.translations_made = 0
        #: Fault-injection hook, called with the block address just before
        #: instruction selection; may raise to simulate an internal JIT
        #: failure (exercises the quarantine path).
        self.fail_hook: Optional[Callable[[int], None]] = None
        #: Persistent translation cache view (core.codecache), bound by
        #: the scheduler under --cache-dir; None runs every block through
        #: the full pipeline.
        self.cache = None

    def translate(self, addr: int) -> Translation:
        """Translate the code block at guest address *addr*."""
        opts = self.options
        if self.cache is not None:
            hit = self.cache.lookup(addr, self._fetch)
            if hit is not None:
                # The fail hook fires exactly once per translate() on the
                # cold path (just before isel), so it must fire on the hit
                # path too: --inject=isel@N plans and chaos/replay runs
                # stay deterministic warm vs cold.  A raise here follows
                # the same quarantine route as a cold pipeline failure —
                # before the entry is consumed or counted.
                if self.fail_hook is not None:
                    self.fail_hook(addr)
                self.translations_made += 1
                return self._from_cache(addr, hit, opts)
        stats = TranslationStats()
        times = stats.phase_seconds
        clock = time.perf_counter if self.collect_phase_times else None

        def tick(name: str, t0: float) -> float:
            if clock is None:
                return 0.0
            t1 = clock()
            times[name] = times.get(name, 0.0) + (t1 - t0)
            return t1

        t0 = clock() if clock else 0.0
        # Phase 1: disassembly.
        sb = self.disasm.disasm_block(addr)
        stats.guest_insns = sum(1 for s in sb.stmts if isinstance(s, IMark))
        stats.stmts_disasm = sb.num_real_stmts()
        ranges = _imark_ranges(sb)
        if opts.sanity_level >= 2:
            validate(sb)
        t0 = tick("disasm", t0)

        # Phase 2: optimisation 1 (includes flattening).
        if opts.opt1:
            sb = optimise1(sb, spec_helper=vx32_spec_helper, unroll=opts.unroll)
        else:
            from ..opt.flatten import flatten

            sb = flatten(sb)
        stats.stmts_opt1 = sb.num_real_stmts()
        if opts.sanity_level >= 1:
            validate(sb, flat=True)
        t0 = tick("opt1", t0)

        # Phase 3: instrumentation, performed by the tool.
        sb = self.tool.instrument(sb)
        if self.track_stack_events:
            sb = add_sp_tracking(sb)
        stats.stmts_instrumented = sb.num_real_stmts()
        if opts.sanity_level >= 1:
            validate(sb, flat=True)
        t0 = tick("instrument", t0)

        # Phase 4: optimisation 2.
        if opts.opt2:
            sb = optimise2(sb, spec_helper=vx32_spec_helper)
        stats.stmts_opt2 = sb.num_real_stmts()
        t0 = tick("opt2", t0)

        if opts.trace_translations:
            from ..ir.pretty import fmt_irsb

            print(f"==== translation at {addr:#x} "
                  f"({stats.guest_insns} guest insns) ====")
            print(fmt_irsb(sb))

        # Phase 5: tree building.
        tree = build_trees(sb)
        if opts.sanity_level >= 2:
            validate(tree)
        t0 = tick("treebuild", t0)

        # Phase 6: instruction selection.
        if self.fail_hook is not None:
            self.fail_hook(addr)
        vcode = select(tree)
        t0 = tick("isel", t0)

        # Phase 7: register allocation.
        hcode, alloc_stats = allocate(vcode)
        stats.alloc = alloc_stats
        stats.host_insns = len(hcode)
        t0 = tick("regalloc", t0)

        # Phase 8: assembly.
        code = encode_insns(hcode)
        tick("assemble", t0)

        smc_hash = None
        if opts.smc_check != "none" or opts.codegen == "traces":
            # Traces mode always hashes: a trace build re-verifies every
            # member against its translation-time bytes, even when SMC
            # checking itself is off.
            smc_hash = hash_guest_ranges(self._fetch, ranges)

        self.translations_made += 1
        if self.cache is not None:
            from dataclasses import replace as _dc_replace

            # Phase timings are wall-clock noise; persist the structural
            # counters only, so warm and cold entries are byte-identical.
            self.cache.store(
                addr, self._fetch, code=code, ranges=ranges, irsb=sb,
                stats=_dc_replace(stats, phase_seconds={}),
            )
        return Translation(
            guest_addr=addr,
            code=code,
            ranges=ranges,
            smc_hash=smc_hash,
            stats=stats,
            # Traces mode keeps the flat instrumented IR so the stitcher
            # reuses it instead of re-running Phases 1-4 per member.
            irsb=sb if opts.codegen == "traces" else None,
        )

    def _from_cache(self, addr: int, hit: dict, opts: Options) -> Translation:
        """Materialize a Translation from a verified cache entry.

        The entry's guest bytes were already re-fetched and digest-checked
        by the lookup, which also recomputed ``smc_crc`` from those exact
        bytes — so the SMC hash matches what a cold translation of the
        current memory image would have produced.
        """
        smc_hash = None
        if opts.smc_check != "none" or opts.codegen == "traces":
            smc_hash = hit["smc_crc"]
        stats = hit.get("stats")
        if not isinstance(stats, TranslationStats):
            stats = TranslationStats()
        return Translation(
            guest_addr=addr,
            code=hit["code"],
            ranges=hit["ranges"],
            smc_hash=smc_hash,
            stats=stats,
            irsb=hit["irsb"] if opts.codegen == "traces" else None,
        )

    def front_ir(self, addr: int) -> Tuple[IRSB, Tuple[Tuple[int, int], ...], int]:
        """Run the front half of the pipeline (Phases 1-4) for *addr*.

        Returns ``(flat instrumented IR, guest ranges, guest insns)``.
        Used by the trace stitcher (core.traces) to regenerate member
        blocks' IR; deliberately does NOT bump ``translations_made`` —
        traces live outside the translation table and must not perturb
        the record/replay translation accounting.
        """
        opts = self.options
        sb = self.disasm.disasm_block(addr)
        guest_insns = sum(1 for s in sb.stmts if isinstance(s, IMark))
        ranges = _imark_ranges(sb)
        if opts.opt1:
            sb = optimise1(sb, spec_helper=vx32_spec_helper, unroll=opts.unroll)
        else:
            from ..opt.flatten import flatten

            sb = flatten(sb)
        sb = self.tool.instrument(sb)
        if self.track_stack_events:
            sb = add_sp_tracking(sb)
        if opts.opt2:
            sb = optimise2(sb, spec_helper=vx32_spec_helper)
        if opts.sanity_level >= 1:
            validate(sb, flat=True)
        return sb, ranges, guest_insns


    def translate_interp(self, addr: int) -> Translation:
        """Build an interpreter-backed translation for the block at *addr*.

        Runs only the front half of the pipeline — disassembly, flattening
        and instrumentation — and stores the flat IR on the translation for
        direct execution by :func:`make_interp_runner`.  Used as the
        graceful-degradation path when the JIT back-end (isel / regalloc /
        runner compilation) fails for one block: the guest keeps running,
        just slower, instead of the whole process dying.
        """
        opts = self.options
        stats = TranslationStats()
        sb = self.disasm.disasm_block(addr)
        stats.guest_insns = sum(1 for s in sb.stmts if isinstance(s, IMark))
        stats.stmts_disasm = sb.num_real_stmts()
        ranges = _imark_ranges(sb)

        from ..opt.flatten import flatten

        sb = flatten(sb)
        try:
            inst = self.tool.instrument(sb)
            if self.track_stack_events:
                inst = add_sp_tracking(inst)
            validate(inst, flat=True)
            sb = inst
        except Exception:
            # The tool's instrumentation may itself be what broke; a
            # quarantined block runs uninstrumented rather than not at all.
            pass
        stats.stmts_instrumented = sb.num_real_stmts()

        smc_hash = None
        if opts.smc_check != "none":
            smc_hash = hash_guest_ranges(self._fetch, ranges)

        self.translations_made += 1
        return Translation(
            guest_addr=addr,
            code=b"",
            ranges=ranges,
            smc_hash=smc_hash,
            stats=stats,
            quarantined=True,
            irsb=sb,
        )


def make_interp_runner(sb: IRSB, helpers, env, mem):
    """Build a block runner executing *sb* through the IR interpreter.

    The result has the same signature as a perf-mode compiled runner —
    ``runner(ts) -> (jump-kind, guest_insns)`` — so quarantined
    translations plug into both dispatch loops unchanged.
    """
    from ..ir.interp import IRInterpreter
    from ..ir.stmt import Exit, NoOp, Store, WrTmp

    interp = IRInterpreter(helpers, env)
    stmts = sb.stmts
    jk_final = sb.jumpkind.value
    nxt_expr = sb.next
    M32 = 0xFFFFFFFF

    class _State:
        __slots__ = ("ts",)

        def __init__(self, ts):
            self.ts = ts

        def get(self, offset, ty):
            return self.ts.get(offset, ty)

        def put(self, offset, ty, value):
            self.ts.put(offset, ty, value)

        def load(self, addr, ty):
            return mem.load(addr & M32, ty)

        def store(self, addr, ty, value):
            mem.store(addr & M32, ty, value)

    def runner(ts):
        state = _State(ts)
        ev = interp.eval_expr
        tmps: dict = {}
        icnt = 0
        for s in stmts:
            cls = s.__class__
            if cls is WrTmp:
                tmps[s.tmp] = ev(s.data, tmps, state)
            elif cls is IMark:
                icnt += 1
            elif cls is Put:
                state.put(s.offset, sb.type_of(s.data), ev(s.data, tmps, state))
            elif cls is Store:
                a = ev(s.addr, tmps, state)
                state.store(a, sb.type_of(s.data), ev(s.data, tmps, state))
            elif cls is Exit:
                if ev(s.guard, tmps, state):
                    ts.pc = s.dst & M32
                    return (s.jumpkind.value, icnt)
            elif cls is Dirty:
                if s.guard is not None and not ev(s.guard, tmps, state):
                    continue
                h = interp.helpers.lookup(s.callee)
                args = [ev(a, tmps, state) for a in s.args]
                ret = h.fn(*args) if h.pure else h.fn(interp.env, *args)
                if s.tmp is not None:
                    tmps[s.tmp] = ret
            elif cls is NoOp:
                continue
            else:  # pragma: no cover
                raise RuntimeError(f"cannot interpret {s!r}")
        ts.pc = ev(nxt_expr, tmps, state) & M32
        return (jk_final, icnt)

    return runner


def hash_guest_ranges(
    fetch: Callable[[int, int], bytes], ranges: Tuple[Tuple[int, int], ...]
) -> int:
    """CRC of the guest code bytes a translation was derived from."""
    crc = 0
    for start, length in ranges:
        crc = zlib.crc32(fetch(start, length), crc)
    return crc
