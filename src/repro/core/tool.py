"""The tool plug-in API.

"Valgrind core + tool plug-in = Valgrind tool" (Section 3.1).  A tool's
main job is to instrument the flat IR blocks the core hands it; beyond
that it can subscribe to events, replace/wrap functions, handle client
requests, and use the core's error-recording and output services.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from ..ir.block import IRSB

if TYPE_CHECKING:  # pragma: no cover
    from .valgrind import Valgrind


class Tool:
    """Base class for tool plug-ins.

    Lifecycle (mirroring Valgrind's): the core constructs the tool, calls
    :meth:`pre_clo_init` (register needs, events, helpers), parses the
    command line (calling :meth:`process_cmd_line_option` for unrecognised
    options), then calls :meth:`post_clo_init`.  During execution the core
    calls :meth:`instrument` for every translated block.  At exit it calls
    :meth:`fini`.
    """

    #: Short name used for --tool= selection.
    name: str = "tool"
    description: str = ""

    def __init__(self) -> None:
        self.core: Optional["Valgrind"] = None

    # -- lifecycle ------------------------------------------------------------

    def pre_clo_init(self, core: "Valgrind") -> None:
        """Register events, helpers and needs.  Called before option parsing."""
        self.core = core

    def process_cmd_line_option(self, option: str) -> bool:
        """Handle a tool-specific ``--option``; return True if recognised."""
        return False

    def post_clo_init(self) -> None:
        """Called after command-line processing, before execution starts."""

    def instrument(self, sb: IRSB) -> IRSB:
        """Transform one flat-IR superblock.  The default adds nothing
        (this is, in its entirety, Nulgrind)."""
        return sb

    def fini(self, exit_code: int) -> None:
        """Called once the client has exited."""

    # -- optional hooks ----------------------------------------------------------

    def shadow_fastpath_maps(self) -> Optional[tuple]:
        """Codegen hook: return ``(rd_get, wr_get)`` page-map accessors
        for the pygen tier's inlined shadow fast paths (see
        backend.pygen), or None if the tool has no shadow memory.  The
        returned callables must stay valid for the whole run."""
        return None

    def stats_dict(self) -> Optional[dict]:
        """Extra ``--stats=json`` sections: a ``{section: payload}``
        dict merged into the core's stats, or None.  All-numeric
        payloads aggregate automatically in fleet stats."""
        return None

    def handle_client_request(self, tid: int, args: Sequence[int]) -> Optional[int]:
        """Handle a tool-range client request; return the result value or
        None if the request is not recognised."""
        return None

    def at_thread_create(self, tid: int) -> None:
        """A new client thread came into existence."""

    def at_thread_exit(self, tid: int) -> None:
        """A client thread exited."""
