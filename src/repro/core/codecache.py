"""Persistent, cross-process translation cache (``--cache-dir``).

The paper's central cost is the 8-phase translation pipeline, and the
in-process caches (``hostcpu._pygen_cache``, ``_PYGEN_EMIT_CACHE``, the
traces ``_BUILD_CACHE``) amortize it only within one process lifetime.
This module makes the amortization *persistent*: an on-disk,
content-addressed store keyed by everything a translation's output
depends on, so a warm start skips decode -> IR -> opt -> isel ->
regalloc -> emit and goes straight to ``bind_pygen`` / exec.

Three namespaces share one directory (under a format-versioned subdir,
so a format bump simply stops seeing old entries):

``t/``  whole translations: assembled host code + the flat instrumented
        IR + pipeline stats, keyed by *(context hash, guest address)*
        and **verified** on every hit by re-fetching the guest bytes
        over the stored ranges and comparing their SHA-256 — a stale
        entry (SMC, a different program at the same address) is a miss,
        never a wrong translation.
``p/``  pygen emit payloads: ``(source text, encoded env spec)`` keyed
        by the host code bytes (emission is a pure function of them).
``x/``  trace build results: assembled superblock code keyed by the
        stitched pre-opt IR signature (see core.traces).

The *context hash* folds in every version and configuration input the
pipeline output depends on: frontend spec version, opt pipeline
version, host ISA encoding format, cache format, tool identity +
unclaimed tool options, opt1/opt2/unroll, SP-tracking, and the live
guest redirect table (redirects steer the disassembler's chase
decisions, so they are re-read on every lookup).

Durability properties:

* **Crash-safe atomic writes** — entries are written to a temp file and
  ``os.replace``d into place; readers never see a partial entry.
* **Version/invalidation header** — a ``VERSION`` file records the
  format; entries live under ``v<N>/`` so a format bump orphans (and
  eventually evicts) old entries instead of misreading them.
* **Corruption tolerance** — every entry carries magic + SHA-256 over
  its payload; a damaged entry is quarantined (moved aside, counted)
  and treated as a miss.  Nothing a hostile byte can do produces a
  wrong translation: the payload digest guards decode, and the guest
  byte re-verification guards semantic staleness.
* **LRU size budget** — ``--cache-max-mb`` bounds the store; hits touch
  mtimes, eviction removes oldest-first.  Concurrent fleet writers are
  safe: identical content writes identical entries, and a racing
  reader either sees a complete entry or misses.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import zlib
from typing import Callable, Dict, Optional, Tuple

#: On-disk format version: bump whenever entry layout, the pickled
#: payload schema, or any versioned pipeline input changes shape.
CACHE_FORMAT_VERSION = 1

_MAGIC = b"RCC1"
_PICKLE_PROTO = 4

#: Budget check cadence: re-walk the store after this many bytes of
#: writes (or at open), not on every store.
_EVICT_CHECK_BYTES = 4 * 1024 * 1024


class CacheStats:
    """Cumulative counters, reported as the ``cache`` stats section.
    Every field is numeric so fleet aggregation (``merge_stats``) sums
    them across workers."""

    __slots__ = (
        "hits", "misses", "stores", "store_errors", "quarantined",
        "evictions", "evicted_bytes", "bytes_read", "bytes_written",
        "pygen_hits", "pygen_misses", "pygen_stores",
        "trace_hits", "trace_misses", "trace_stores",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class CodeCache:
    """One on-disk cache directory, shared by any number of processes."""

    def __init__(self, directory: str, *, max_mb: int = 256):
        self.root = os.path.abspath(directory)
        self.max_bytes = max(1, int(max_mb)) * 1024 * 1024
        self.stats = CacheStats()
        self.base = os.path.join(self.root, f"v{CACHE_FORMAT_VERSION}")
        self._dirs = {
            "t": os.path.join(self.base, "t"),
            "p": os.path.join(self.base, "p"),
            "x": os.path.join(self.base, "x"),
            "q": os.path.join(self.base, "quarantine"),
        }
        #: Per-context translation index: ctx-dir -> {addr: [filenames]},
        #: listed once per process and extended by our own stores.
        self._t_index: Dict[str, Dict[int, list]] = {}
        self._bytes_since_check = 0
        self._seq = 0
        for d in self._dirs.values():
            os.makedirs(d, exist_ok=True)
        self._write_header()
        self._enforce_budget()

    # -- header ----------------------------------------------------------------

    def _write_header(self) -> None:
        path = os.path.join(self.root, "VERSION")
        if os.path.exists(path):
            return
        try:
            self._atomic_write(
                path,
                (f'{{"cache": "repro-codecache", '
                 f'"format": {CACHE_FORMAT_VERSION}}}\n').encode("ascii"),
            )
        except OSError:
            pass

    # -- low-level entry I/O ----------------------------------------------------

    def _atomic_write(self, path: str, data: bytes) -> None:
        self._seq += 1
        tmp = f"{path}.tmp.{os.getpid()}.{self._seq}"
        with open(tmp, "wb") as f:
            f.write(data)
        os.replace(tmp, path)

    def _write_entry(self, path: str, obj: object) -> bool:
        """Serialize *obj* with a digest guard; False on any failure."""
        try:
            payload = pickle.dumps(obj, protocol=_PICKLE_PROTO)
        except Exception:
            self.stats.store_errors += 1
            return False
        blob = _MAGIC + hashlib.sha256(payload).digest() + payload
        try:
            self._atomic_write(path, blob)
        except OSError:
            self.stats.store_errors += 1
            return False
        self.stats.stores += 1
        self.stats.bytes_written += len(blob)
        self._bytes_since_check += len(blob)
        if self._bytes_since_check >= _EVICT_CHECK_BYTES:
            self._enforce_budget()
        return True

    def _read_entry(self, path: str) -> Optional[object]:
        """Read + verify one entry; quarantines on corruption, returns
        None on miss/corruption (never raises, never returns a payload
        whose digest does not match)."""
        try:
            with open(path, "rb") as f:
                blob = f.read()
        except OSError:
            return None  # concurrently evicted: a plain miss
        try:
            if (len(blob) < 36 or blob[:4] != _MAGIC
                    or hashlib.sha256(blob[36:]).digest() != blob[4:36]):
                raise ValueError("bad magic or digest")
            obj = pickle.loads(blob[36:])
        except Exception:
            self._quarantine(path)
            return None
        self.stats.bytes_read += len(blob)
        return obj

    def _quarantine(self, path: str) -> None:
        """Move a damaged entry aside so it is never read again."""
        self.stats.quarantined += 1
        dst = os.path.join(
            self._dirs["q"], f"{os.path.basename(path)}.{os.getpid()}.bad"
        )
        try:
            os.replace(path, dst)
        except OSError:
            try:
                os.remove(path)
            except OSError:
                pass

    def _touch(self, path: str) -> None:
        try:
            os.utime(path)
        except OSError:
            pass

    # -- translations (t/) ------------------------------------------------------

    def _t_dir(self, ctx: bytes) -> str:
        d = os.path.join(self._dirs["t"], ctx.hex()[:16])
        if d not in self._t_index:
            index: Dict[int, list] = {}
            try:
                os.makedirs(d, exist_ok=True)
                for name in os.listdir(d):
                    if not name.endswith(".tce"):
                        continue
                    try:
                        addr = int(name.split("-", 1)[0], 16)
                    except ValueError:
                        continue
                    index.setdefault(addr, []).append(name)
            except OSError:
                pass
            self._t_index[d] = index
        return d

    def lookup_translation(
        self, ctx: bytes, addr: int,
        fetch: Callable[[int, int], bytes],
    ) -> Optional[dict]:
        """Return a verified entry dict for *addr*, or None.

        Verification re-fetches the guest bytes over the entry's stored
        ranges and compares digests, then recomputes the SMC CRC from
        those same bytes — so a hit can never disagree with what a cold
        translation of the current memory image would have seen.
        """
        d = self._t_dir(ctx)
        for name in tuple(self._t_index[d].get(addr, ())):
            path = os.path.join(d, name)
            obj = self._read_entry(path)
            if obj is None:
                continue
            try:
                if obj["format"] != CACHE_FORMAT_VERSION or obj["addr"] != addr:
                    raise ValueError("entry header mismatch")
                ranges = tuple((int(s), int(n)) for s, n in obj["ranges"])
                guest_sha = obj["guest_sha"]
                code = obj["code"]
                if not isinstance(code, bytes):
                    raise ValueError("code is not bytes")
            except Exception:
                self._quarantine(path)
                continue
            try:
                raw = b"".join(fetch(start, length) for start, length in ranges)
            except Exception:
                continue  # code pages gone or unreadable: a miss
            if hashlib.sha256(raw).digest() != guest_sha:
                continue  # stale (SMC / different program): a miss
            self.stats.hits += 1
            self._touch(path)
            obj["ranges"] = ranges
            obj["smc_crc"] = zlib.crc32(raw)
            return obj
        self.stats.misses += 1
        return None

    def store_translation(
        self, ctx: bytes, addr: int,
        fetch: Callable[[int, int], bytes],
        *, code: bytes, ranges: Tuple[Tuple[int, int], ...],
        irsb: object, stats: object,
    ) -> bool:
        try:
            raw = b"".join(fetch(start, length) for start, length in ranges)
        except Exception:
            return False
        guest_sha = hashlib.sha256(raw).digest()
        obj = {
            "format": CACHE_FORMAT_VERSION,
            "addr": addr,
            "ranges": tuple(ranges),
            "guest_sha": guest_sha,
            "code": code,
            "irsb": irsb,
            "stats": stats,
        }
        d = self._t_dir(ctx)
        name = f"{addr:08x}-{guest_sha.hex()[:16]}.tce"
        if self._write_entry(os.path.join(d, name), obj):
            # The write may have run an eviction pass, which drops the
            # whole index — relist before recording our own entry.
            if d not in self._t_index:
                self._t_dir(ctx)
            names = self._t_index[d].setdefault(addr, [])
            if name not in names:
                names.append(name)
            return True
        return False

    # -- pygen emit payloads (p/) ----------------------------------------------

    def _p_path(self, code: bytes, emit_version: int, variant: int = 0) -> str:
        h = hashlib.sha256(
            b"pygen:%d:%d:" % (emit_version, variant) + code
        ).hexdigest()
        return os.path.join(self._dirs["p"], f"{h[:24]}.tcp")

    def load_pygen(
        self, code: bytes, fastpath: bool = False
    ) -> Optional[Tuple[str, tuple]]:
        """Return ``(src, spec)`` for *code*, decoded from disk.  The
        *fastpath* emission variant (inlined Memcheck shadow accesses,
        see backend.pygen) keys a distinct payload."""
        from ..backend import pygen as _pygen

        path = self._p_path(code, _pygen.PYGEN_EMIT_VERSION,
                            1 if fastpath else 0)
        obj = self._read_entry(path)
        if obj is None:
            self.stats.pygen_misses += 1
            return None
        try:
            src, enc = obj
            spec = _pygen.decode_spec(enc)
            if not isinstance(src, str):
                raise ValueError("source is not a string")
        except Exception:
            self._quarantine(path)
            self.stats.pygen_misses += 1
            return None
        self.stats.pygen_hits += 1
        self._touch(path)
        return src, spec

    def store_pygen(
        self, code: bytes, src: str, spec: tuple, fastpath: bool = False
    ) -> bool:
        from ..backend import pygen as _pygen

        try:
            enc = _pygen.encode_spec(spec)
        except _pygen.SpecCodecError:
            self.stats.store_errors += 1
            return False
        if self._write_entry(self._p_path(code, _pygen.PYGEN_EMIT_VERSION,
                                          1 if fastpath else 0),
                             (src, enc)):
            self.stats.pygen_stores += 1
            return True
        return False

    # -- trace build results (x/) ----------------------------------------------

    def _x_path(self, sig: bytes) -> str:
        h = hashlib.sha256(b"trace:%d:" % CACHE_FORMAT_VERSION + sig)
        return os.path.join(self._dirs["x"], f"{h.hexdigest()[:24]}.tcx")

    def load_trace(self, sig: bytes) -> Optional[Tuple[bytes, int, int]]:
        path = self._x_path(sig)
        obj = self._read_entry(path)
        if obj is None:
            self.stats.trace_misses += 1
            return None
        try:
            code, n_blocks, total_insns = obj
            if not (isinstance(code, bytes) and isinstance(n_blocks, int)
                    and isinstance(total_insns, int)):
                raise ValueError("bad trace entry")
        except Exception:
            self._quarantine(path)
            self.stats.trace_misses += 1
            return None
        self.stats.trace_hits += 1
        self._touch(path)
        return code, n_blocks, total_insns

    def store_trace(self, sig: bytes, code: bytes,
                    n_blocks: int, total_insns: int) -> bool:
        if self._write_entry(self._x_path(sig),
                             (code, int(n_blocks), int(total_insns))):
            self.stats.trace_stores += 1
            return True
        return False

    # -- size budget ------------------------------------------------------------

    def _enforce_budget(self) -> None:
        """Walk the store; evict oldest entries past the byte budget."""
        self._bytes_since_check = 0
        entries = []
        total = 0
        for key in ("t", "p", "x"):
            top = self._dirs[key]
            try:
                walker = os.walk(top)
            except OSError:
                continue
            for dirpath, _dirnames, filenames in walker:
                for name in filenames:
                    path = os.path.join(dirpath, name)
                    try:
                        st = os.stat(path)
                    except OSError:
                        continue
                    entries.append((st.st_mtime, st.st_size, path))
                    total += st.st_size
        if total <= self.max_bytes:
            return
        entries.sort()
        for mtime, size, path in entries:
            if total <= self.max_bytes:
                break
            try:
                os.remove(path)
            except OSError:
                continue
            total -= size
            self.stats.evictions += 1
            self.stats.evicted_bytes += size
        self._t_index.clear()  # dropped files may be indexed: relist lazily

    # -- context binding ---------------------------------------------------------

    def translation_view(
        self, *, tool_key: str, tool_options: tuple, options,
        track_stack_events: bool, redirects_fn=None,
    ) -> "TranslationCacheView":
        """Bind this cache to one run's translation context."""
        from ..frontend.spec import SPEC_VERSION
        from ..opt import OPT_PIPELINE_VERSION
        from ..backend.hostisa import HOSTISA_FORMAT_VERSION

        base = (
            CACHE_FORMAT_VERSION,
            SPEC_VERSION,
            OPT_PIPELINE_VERSION,
            HOSTISA_FORMAT_VERSION,
            tool_key,
            tuple(sorted(tool_options)),
            bool(options.opt1), bool(options.opt2), bool(options.unroll),
            bool(track_stack_events),
        )
        return TranslationCacheView(self, base, redirects_fn)

    def stats_dict(self) -> dict:
        return self.stats.as_dict()


class TranslationCacheView:
    """One run's window onto a :class:`CodeCache`: the context hash is
    precomputed from the static configuration and refreshed against the
    live redirect table (redirects change the disassembler's
    chase-through decisions, so they are part of the key)."""

    def __init__(self, cache: CodeCache, base_ctx: tuple, redirects_fn=None):
        self.cache = cache
        self._base = base_ctx
        self._redirects_fn = redirects_fn
        self._ctx_by_extra: Dict[tuple, bytes] = {}

    def _ctx(self) -> bytes:
        extra = self._redirects_fn() if self._redirects_fn is not None else ()
        ctx = self._ctx_by_extra.get(extra)
        if ctx is None:
            ctx = hashlib.sha256(
                repr((self._base, extra)).encode("utf-8")
            ).digest()
            self._ctx_by_extra[extra] = ctx
        return ctx

    def lookup(self, addr: int, fetch) -> Optional[dict]:
        return self.cache.lookup_translation(self._ctx(), addr, fetch)

    def store(self, addr: int, fetch, *, code, ranges, irsb, stats) -> bool:
        return self.cache.store_translation(
            self._ctx(), addr, fetch,
            code=code, ranges=ranges, irsb=irsb, stats=stats,
        )
