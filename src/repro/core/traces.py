"""Superblock traces: the ``--codegen=traces`` tier.

The paper's translation unit is the superblock — "a single-entry,
multiple-exit stretch of code" (Section 3.5) — but the front end only
ever builds single-block superblocks.  This module grows them: the
dispatcher watches which translations chain hot along Boring/Call/Ret
edges, records the successor sequence, and the :class:`TraceManager`
stitches the member blocks' *IR* into one multi-block superblock,
re-runs the Phase-2 optimisation passes across the merged IR (so
redundant condition-code thunks, dead PUTs and guard computations are
eliminated *across* the original block boundaries) and compiles the
result to a single specialized pygen function.

Correctness model — recorder as hint, stitcher as proof
-------------------------------------------------------

The recorded successor sequence is only a *hint*.  At build time every
seam between consecutive members A -> B is proven, falling into exactly
one of three plans:

* **fall** — A's ``next`` is the constant address of B: control always
  reaches B, no guard is needed.
* **invert** — A's ``next`` is a constant that is *not* B, but A ends in
  a conditional ``Exit`` whose target is B: the branch was observed
  taken, so the Exit is inverted (``Not1`` of its guard) into a side
  exit to the fall-through address and the trace continues into B.
* **guard** — A's ``next`` is computed (an indirect jump, a Ret): a
  ``CmpNE32(next, B)`` side exit (carrying ``dst_expr`` so the *actual*
  target is taken on the miss path) guards the seam.

Any edge that fits no plan truncates the trace at A; a recording the
stitcher cannot prove therefore yields a *shorter* trace, never a wrong
one.  Members are additionally re-verified against the guest bytes they
were translated from (the SMC hash), so a stale hint cannot stitch
stale code.

Every side exit restores the invariants the block tier maintains: the
guest PC is written before leaving, the retired-instruction count is
exact at the exit point (the fault-precision entry-snapshot contract
extends to every trace side exit unchanged), and Call/Ret seams
maintain the shadow call stack through the :func:`vg_trace_call` /
:func:`vg_trace_ret` dirty helpers, mirroring the dispatcher's own
bookkeeping byte for byte.

Traces live *off* the translation table in the manager's own maps, so
they never perturb transtab capacity, eviction order or the
``translations`` counter (record/replay logs stay tier-portable).  When
any member translation dies — SMC flush, munmap discard, FIFO eviction
— the table's ``on_kill`` hook severs every trace containing it; the
surviving head's execution count is reset so a hot head can re-record
over the retranslated code.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from ..frontend.spec import vx32_spec_helper
from ..ir.block import IRSB
from ..ir.expr import Binop, Const, RdTmp, Unop, c32
from ..ir.stmt import (
    Dirty,
    Exit,
    IMark,
    JumpKind,
    MemFx,
    NoOp,
    Put,
    Stmt,
    Store,
    TraceMark,
    WrTmp,
)
from ..ir.types import Ty
from ..ir.validate import validate
from ..opt.opt1 import (
    _rename_expr,
    cse,
    dead_code,
    forward_pass,
    redundant_put_elim,
)
from ..opt.treebuild import build_trees
from ..backend.hostisa import TRACE_REGFILE, encode_insns
from ..backend.isel import select
from ..backend.regalloc import allocate
from .translate import Translation, hash_guest_ranges

_M32 = 0xFFFFFFFF
#: Edge kinds the recorder may follow and the stitcher may sew across.
_TRACEABLE = (JumpKind.Boring, JumpKind.Call, JumpKind.Ret)
#: u16 instruction-count fields in SIDEEXIT/SIDEEXITR bound trace size.
_MAX_TRACE_INSNS = 60000
#: Shadow call-stack depth cap — must match the dispatcher's.
_CALLSTACK_MAX = 16384

#: Dirty helpers maintaining the shadow call stack across in-trace
#: Call/Ret seams (registered by the scheduler under traces mode).
VG_TRACE_CALL = "vg_trace_call"
VG_TRACE_RET = "vg_trace_ret"

#: Process-wide cache: sha1 of stitched pre-opt IR -> (host code bytes,
#: n_blocks, total_insns).  See the content-addressing note in
#: :meth:`TraceManager._build`.  LRU-bounded (entries never go stale —
#: content addressing — so eviction is purely a memory bound), and
#: round-tripped through the persistent code cache when one is bound
#: (core.codecache), so re-recorded traces skip the build across
#: processes too.
_BUILD_CACHE: "OrderedDict[bytes, Tuple[bytes, int, int]]" = OrderedDict()
_BUILD_CACHE_MAX = 4096
_BUILD_CACHE_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def _build_cache_put(sig: bytes, hit: Tuple[bytes, int, int]) -> None:
    if sig in _BUILD_CACHE:
        return
    _BUILD_CACHE[sig] = hit
    while len(_BUILD_CACHE) > _BUILD_CACHE_MAX:
        _BUILD_CACHE.popitem(last=False)
        _BUILD_CACHE_STATS["evictions"] += 1

#: Quality-probation window: once a trace has run this many times, any
#: further side exit re-checks whether runs retire on average at least
#: 1.5 member blocks, and prunes the trace if not.
_TRACE_PROBE = 64


def vg_trace_call(env, target: int) -> int:
    """Mirror the dispatcher's Call bookkeeping for an in-trace call seam.

    The member block that just ran pushed the return address at [sp] and
    committed SP before this helper runs (pygen flushes pending state
    ahead of every dirty call), so the load cannot fault.
    """
    cs = env.state.callstack
    cs.append((env.mem.load32(env.state.sp), target))
    if len(cs) > _CALLSTACK_MAX:
        del cs[: _CALLSTACK_MAX // 2]
    return 0


def vg_trace_ret(env, target: int) -> int:
    """Mirror the dispatcher's Ret bookkeeping for an in-trace return seam
    (including its depth-2..8 tail-call / longjmp tolerance)."""
    cs = env.state.callstack
    if cs:
        if cs[-1][0] == target:
            cs.pop()
        else:
            for depth in range(2, min(9, len(cs) + 1)):
                if cs[-depth][0] == target:
                    del cs[-depth:]
                    break
    return 0


def _rename_stmt(s: Stmt, delta: int) -> Stmt:
    """Shift every temporary in *s* by *delta* (flat member IR only)."""
    if isinstance(s, IMark):
        return s
    if isinstance(s, WrTmp):
        return WrTmp(s.tmp + delta, _rename_expr(s.data, delta))
    if isinstance(s, Put):
        return Put(s.offset, _rename_expr(s.data, delta))
    if isinstance(s, Store):
        return Store(_rename_expr(s.addr, delta), _rename_expr(s.data, delta))
    if isinstance(s, Exit):
        return Exit(
            _rename_expr(s.guard, delta), s.dst, s.jumpkind,
            dst_expr=(_rename_expr(s.dst_expr, delta)
                      if s.dst_expr is not None else None),
        )
    if isinstance(s, Dirty):
        return Dirty(
            s.callee,
            tuple(_rename_expr(a, delta) for a in s.args),
            guard=_rename_expr(s.guard, delta) if s.guard is not None else None,
            tmp=(s.tmp + delta) if s.tmp is not None else None,
            retty=s.retty,
            state_fx=s.state_fx,
            mem_fx=tuple(
                MemFx(m.write, _rename_expr(m.addr, delta), m.size)
                for m in s.mem_fx
            ),
        )
    raise TypeError(f"cannot stitch {s!r}")


class Trace:
    """One compiled superblock trace.

    Quacks enough like a :class:`Translation` for the scheduler's precise
    -fault recovery — ``covers``/``ranges``/``stats.guest_insns`` drive
    the RefCPU replay cap exactly as they do for a block — while living
    entirely outside the translation table.
    """

    __slots__ = (
        "head_addr", "members", "ranges", "n_blocks", "total_insns",
        "compiled_fn", "dead", "stats", "runs", "blocks",
    )

    class _Stats:
        __slots__ = ("guest_insns",)

        def __init__(self, guest_insns: int):
            self.guest_insns = guest_insns

    def __init__(
        self,
        head_addr: int,
        members: List[Translation],
        ranges: Tuple[Tuple[int, int], ...],
        n_blocks: int,
        total_insns: int,
        compiled_fn,
    ):
        self.head_addr = head_addr
        self.members = members
        self.ranges = ranges
        self.n_blocks = n_blocks
        self.total_insns = total_insns
        self.compiled_fn = compiled_fn
        self.dead = False
        self.stats = Trace._Stats(total_insns)
        # Quality probation: the dispatcher tallies these and prunes
        # traces whose runs mostly side-exit early (a mispredicted seam
        # makes a trace *slower* than the block tier it shadows).
        self.runs = 0
        self.blocks = 0

    @property
    def guest_addr(self) -> int:
        return self.head_addr

    def covers(self, addr: int, size: int = 1) -> bool:
        return any(
            start < addr + size and addr < start + length
            for start, length in self.ranges
        )


class TraceManager:
    """Records hot block chains and stitches them into compiled traces."""

    def __init__(
        self,
        translator,
        hostcpu,
        options,
        *,
        resolve: Optional[Callable[[int], int]] = None,
        on_fail: Optional[Callable] = None,
    ):
        self.translator = translator
        self.hostcpu = hostcpu
        self.options = options
        self.resolve = resolve if resolve is not None else (lambda a: a)
        self.on_fail = on_fail
        #: Re-attach the codegen layer's execution-counting wrapper to a
        #: severed trace's surviving head (set by the scheduler).
        self.rewrap: Optional[Callable] = None
        self.max_blocks = max(2, options.max_trace_blocks)
        #: Live traces by head guest address.
        self.traces: Dict[int, Trace] = {}
        #: id(member Translation) -> traces containing it (sever index).
        self._by_member: Dict[int, List[Trace]] = {}
        #: Head addresses whose next execution should start a recording.
        self._want: set = set()
        #: Recording in progress: member list and the jump kind that led
        #: *out* of the last appended member.
        self._members: List[Translation] = []
        self._last_jk: Optional[JumpKind] = None
        #: Fast gate the dispatcher checks per block: True while any
        #: recording is requested or in progress.
        self.active = False
        # Counters (reported under --stats=json as the "traces" section).
        self.traces_built = 0
        self.compile_failures = 0
        self.recordings_aborted = 0
        self.demotions = 0
        self.pruned = 0
        self.runs = 0
        self.side_exits = 0
        self.insns_retired = 0
        self.blocks_retired = 0
        self.compile_seconds = 0.0

    # -- recording ---------------------------------------------------------

    def request(self, t: Translation) -> None:
        """A block crossed --trace-threshold: record its next chain."""
        if t.trace_failed or t.guest_addr in self.traces:
            return
        self._want.add(t.guest_addr)
        self.active = True

    def _eligible(self, t: Translation) -> bool:
        # SMC-checked blocks re-verify their bytes before every run; a
        # trace cannot, so they never join one.  Quarantined blocks have
        # no JITable code; pygen_failed blocks already proved the back
        # end chokes on them.
        return not (t.dead or t.smc_checked or t.quarantined or t.pygen_failed)

    def on_block(self, t: Translation, jk: str) -> None:
        """Dispatcher hook: translation *t* just executed, leaving with
        jump kind *jk* (a JumpKind value string)."""
        if self._members:
            if (
                self._last_jk in _TRACEABLE_VALUES
                and len(self._members) < self.max_blocks
                and self._eligible(t)
            ):
                # Revisits are allowed: a recording that crosses a loop
                # back edge unrolls the loop body into the trace, so hot
                # iterations run seam-to-seam in host locals instead of
                # round-tripping guest state per block.
                self._members.append(t)
                self._last_jk = jk
                if len(self._members) == self.max_blocks:
                    self._finish()
                return
            self._finish()
        if t.guest_addr in self._want:
            self._want.discard(t.guest_addr)
            if self._eligible(t) and t.guest_addr not in self.traces:
                self._members = [t]
                self._last_jk = jk
        self._update_active()

    def flush_recording(self) -> None:
        """Finalize any in-progress recording (control is about to enter
        a trace or leave the dispatcher for an event)."""
        if self._members:
            self._finish()
            self._update_active()

    def _update_active(self) -> None:
        self.active = bool(self._members) or bool(self._want)

    def _finish(self) -> None:
        members = self._members
        self._members = []
        self._last_jk = None
        if len(members) < 2:
            self.recordings_aborted += 1
            return
        head = members[0]
        if head.dead or head.guest_addr in self.traces:
            self.recordings_aborted += 1
            return
        try:
            tr = self._build(members)
        except Exception as exc:
            self.compile_failures += 1
            head.trace_failed = True
            if self.on_fail is not None:
                self.on_fail(head, exc)
            return
        if tr is None:
            self.recordings_aborted += 1
            head.trace_failed = True
            return
        self.traces[head.guest_addr] = tr
        head.trace = tr
        for mid in {id(m) for m in tr.members}:
            self._by_member.setdefault(mid, []).append(tr)
        self.traces_built += 1

    # -- stitching ---------------------------------------------------------

    def _build(self, members: List[Translation]) -> Optional[Trace]:
        """Stitch *members* into a compiled trace (None: unstitchable)."""
        translator = self.translator
        fetch = translator._fetch
        opts = self.options

        # Phase 1: collect each member's instrumented flat IR (stashed on
        # the translation at translate time; regenerated through the front
        # end if missing) and verify it still matches the guest bytes it
        # was translated from.
        parts = []
        for m in members:
            if m.dead:
                break
            sb = m.irsb
            if sb is not None:
                ranges = m.ranges
            else:
                sb, ranges, _ginsns = translator.front_ir(
                    self.resolve(m.guest_addr))
            if (
                m.smc_hash is not None
                and hash_guest_ranges(fetch, ranges) != m.smc_hash
            ):
                break
            parts.append((m, sb, ranges))

        # Validate every seam, truncating at the first unprovable edge.
        plans: List[tuple] = []
        for j, (m, sb, _r) in enumerate(parts):
            if j + 1 == len(parts):
                plans.append(("tail",))
                break
            b = parts[j + 1][0].guest_addr
            jk = sb.jumpkind
            if jk not in _TRACEABLE or sb.next is None:
                plans.append(("tail",))
                break
            nxt = sb.next
            if isinstance(nxt, Const):
                if (nxt.value & _M32) == b:
                    plans.append(("fall", jk))
                    continue
                last = _last_real_stmt(sb.stmts)
                if (
                    isinstance(last, Exit)
                    and last.dst_expr is None
                    and (last.dst & _M32) == b
                    and last.jumpkind in _TRACEABLE
                ):
                    plans.append(("invert", last.jumpkind))
                    continue
                plans.append(("tail",))
                break
            plans.append(("guard", jk))
        parts = parts[: len(plans)]
        if len(parts) < 2:
            return None

        # Phase 2: stitch members into one IRSB, renaming temporaries.
        head = parts[0][0]
        trace = IRSB(jumpkind=JumpKind.Boring, guest_addr=head.guest_addr)
        for j, (m, sb, _r) in enumerate(parts):
            delta = (max(trace.tyenv) + 1) if trace.tyenv else 0
            for tmp, ty in sb.tyenv.items():
                trace.tyenv[tmp + delta] = ty
            stmts = [s for s in sb.stmts if not isinstance(s, NoOp)]
            plan = plans[j]
            trace.add(TraceMark(j, m.guest_addr))
            if plan[0] == "invert":
                final_exit = stmts.pop()
                for s in stmts:
                    trace.add(_rename_stmt(s, delta))
                # The branch to the next member was observed taken: invert
                # it into a side exit on the fall-through address.
                ng = trace.new_tmp(Ty.I1)
                trace.add(WrTmp(ng, Unop("Not1",
                                         _rename_expr(final_exit.guard, delta))))
                trace.add(Exit(RdTmp(ng), sb.next.value & _M32, sb.jumpkind))
                self._emit_seam_helper(trace, plan[1],
                                       parts[j + 1][0].guest_addr)
                continue
            for s in stmts:
                trace.add(_rename_stmt(s, delta))
            if plan[0] == "fall":
                self._emit_seam_helper(trace, plan[1],
                                       parts[j + 1][0].guest_addr)
            elif plan[0] == "guard":
                b = parts[j + 1][0].guest_addr
                nxt = _rename_expr(sb.next, delta)
                tg = trace.new_tmp(Ty.I1)
                trace.add(WrTmp(tg, Binop("CmpNE32", nxt, c32(b))))
                # dst_expr: a seam miss leaves for the *computed* target.
                trace.add(Exit(RdTmp(tg), 0, sb.jumpkind, dst_expr=nxt))
                self._emit_seam_helper(trace, plan[1], b)
            else:  # tail
                trace.next = _rename_expr(sb.next, delta)
                trace.jumpkind = sb.jumpkind

        # Content-addressing: the stitched pre-optimisation IR is the
        # complete input to the deterministic opt + back-end pipeline, so
        # its hash keys a process-wide cache of the assembled result —
        # the trace-tier analogue of the content-addressed block runner
        # caches (backend.hostcpu).  A fresh run of the same program
        # re-records the same chains and skips straight to the cheap
        # per-run pygen binding.
        import hashlib
        import pickle
        import time as _time

        t0 = _time.perf_counter()
        # pickle is a C-speed structural serializer and deterministic for
        # the identical construction paths a re-recorded trace takes; a
        # sharing difference can only cause a false miss (a rebuild),
        # never a false hit.
        sig = hashlib.sha1(pickle.dumps(
            (sorted(trace.tyenv.items()), trace.next, trace.jumpkind,
             trace.stmts),
        )).digest()
        disk = getattr(self.hostcpu, "codecache", None)
        hit = _BUILD_CACHE.get(sig)
        if hit is not None:
            _BUILD_CACHE.move_to_end(sig)
            _BUILD_CACHE_STATS["hits"] += 1
        else:
            _BUILD_CACHE_STATS["misses"] += 1
            if disk is not None:
                hit = disk.load_trace(sig)
                if hit is not None:
                    _build_cache_put(sig, hit)
        if hit is not None:
            code, n_blocks, total_insns = hit
        else:
            # Cross-block optimisation over the merged IR: the same
            # Phase-2 passes, now seeing PUTs, CC thunks and guard
            # computations from *all* members at once.
            trace = forward_pass(trace, vx32_spec_helper)
            trace = cse(trace)
            trace = forward_pass(trace, vx32_spec_helper)
            trace = redundant_put_elim(trace)
            trace = dead_code(trace)
            if opts.sanity_level >= 1:
                validate(trace, flat=True)

            # Exact post-optimisation accounting: constant folding may
            # have truncated the stitched block at an always-taken seam.
            total_insns = sum(1 for s in trace.stmts if isinstance(s, IMark))
            n_blocks = sum(1 for s in trace.stmts if isinstance(s, TraceMark))
            if not (1 <= n_blocks and 1 <= total_insns < _MAX_TRACE_INSNS):
                return None

            # Back end: tree building, instruction selection, allocation
            # (over the wide trace register file), assembly.
            tree = build_trees(trace)
            vcode = select(tree)
            hcode, _alloc = allocate(vcode, regfile=TRACE_REGFILE)
            code = encode_insns(hcode)
            _build_cache_put(sig, (code, n_blocks, total_insns))
            if disk is not None:
                disk.store_trace(sig, code, n_blocks, total_insns)

        ranges: List[Tuple[int, int]] = []
        for _m, _sb, r in parts[:n_blocks]:
            ranges.extend(r)
        fn = self.hostcpu.compile_pygen(code)
        self.compile_seconds += _time.perf_counter() - t0

        return Trace(
            head_addr=head.guest_addr,
            members=[p[0] for p in parts],
            ranges=tuple(ranges),
            n_blocks=n_blocks,
            total_insns=total_insns,
            compiled_fn=fn,
        )

    def _emit_seam_helper(self, trace: IRSB, jk: JumpKind, target: int) -> None:
        """Maintain the shadow call stack across a Call/Ret seam."""
        if jk is JumpKind.Call:
            trace.add(Dirty(VG_TRACE_CALL, (c32(target),)))
        elif jk is JumpKind.Ret:
            trace.add(Dirty(VG_TRACE_RET, (c32(target),)))

    # -- quality pruning ---------------------------------------------------

    def note_side_exit(self, tr: Trace) -> None:
        """Dispatcher hook: a run of *tr* left through a side exit.

        Past the probation window, a trace whose runs retire fewer than
        1.5 member blocks on average is pruned: each entry pays the full
        preinit/flush cost of the whole superblock, so a trace that
        nearly always exits at its first seam is *slower* than the block
        tier it shadows (cf. Dynamo's fragment replacement).  Partial
        runs deeper than that still win — a trace retiring k blocks
        replaces k dispatch iterations with one.
        """
        self.side_exits += 1
        if tr.runs >= _TRACE_PROBE and tr.blocks * 2 < tr.runs * 3:
            self.prune(tr)

    def prune(self, tr: Trace) -> None:
        """Demote a low-quality trace and pin its head to the block tier
        (re-recording would reproduce the same biased seams)."""
        tr.dead = True
        self.pruned += 1
        if self.traces.get(tr.head_addr) is tr:
            del self.traces[tr.head_addr]
        head = tr.members[0]
        if head.trace is tr:
            head.trace = None
        head.trace_failed = True

    # -- invalidation ------------------------------------------------------

    def on_translation_dead(self, t: Translation) -> None:
        """Transtab ``on_kill`` hook: sever every trace containing *t*
        (SMC flush, munmap discard, eviction, insert-replace)."""
        for tr in self._by_member.pop(id(t), ()):
            if tr.dead:
                continue
            tr.dead = True
            self.demotions += 1
            if self.traces.get(tr.head_addr) is tr:
                del self.traces[tr.head_addr]
            head_t = tr.members[0]
            if head_t.trace is tr:
                head_t.trace = None
            if head_t is not t and not head_t.dead:
                # Let a still-hot head re-record over retranslated code.
                head_t.exec_count = 0
                if self.rewrap is not None and not head_t.trace_failed:
                    self.rewrap(head_t)

    # -- reporting ---------------------------------------------------------

    def stats_dict(self) -> dict:
        return {
            "trace_threshold": self.options.trace_threshold,
            "max_trace_blocks": self.max_blocks,
            "traces_built": self.traces_built,
            "live_traces": len(self.traces),
            "compile_failures": self.compile_failures,
            "recordings_aborted": self.recordings_aborted,
            "demotions": self.demotions,
            "pruned": self.pruned,
            "runs": self.runs,
            "side_exits": self.side_exits,
            "blocks_retired": self.blocks_retired,
            "insns_retired": self.insns_retired,
            "compile_seconds": self.compile_seconds,
            "build_cache": {
                **_BUILD_CACHE_STATS,
                "entries": len(_BUILD_CACHE),
            },
        }


def _last_real_stmt(stmts: List[Stmt]) -> Optional[Stmt]:
    for s in reversed(stmts):
        if not isinstance(s, NoOp):
            return s
    return None


#: JumpKind *values* (strings) the dispatcher reports — the recorder
#: compares against these, the stitcher against the enum members.
_TRACEABLE_VALUES = tuple(jk.value for jk in _TRACEABLE)
