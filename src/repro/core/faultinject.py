"""Deterministic seeded fault injection (the chaos harness back-end).

The robustness claim of the paper's core — "the framework must survive
anything the guest does" — is only testable if the rare failure paths can
be driven on demand.  This module provides *fault plans*: deterministic,
seeded schedules of injected failures that the core consults at well
defined points:

* ``mmap-enomem`` — fail a client mmap/brk/mremap with ENOMEM;
* ``eintr``      — fail a client read/write/open with EINTR;
* ``smc-flush``  — force a spurious self-modifying-code flush of the
  current translation (exercises discard + retranslate);
* ``evict``      — force a translation-table eviction round (exercises
  chain severing and cache invalidation);
* ``segv``       — post a synthetic GuestFault-style SIGSEGV before a
  dispatch step (exercises the precise-fault recovery path);
* ``isel``       — raise an internal error inside the JIT pipeline
  (exercises the quarantine / IR-interp degradation path);
* ``pygen``      — fail a pygen-tier block compilation (exercises the
  codegen demotion path: pygen -> closures).

A plan is parsed from the ``--inject=`` option value::

    --inject=mmap-enomem@3,eintr:0.05,smc-flush:0.01,seed=7

``event@N`` fires on exactly the Nth opportunity (1-based);
``event:P`` fires each opportunity with probability P, drawn from a
``random.Random(seed)`` stream so the whole schedule is a pure function
of the spec string.  Identical specs produce identical runs; omitting
``--inject`` never constructs an injector, so fault-free runs are
bit-identical to builds without this module.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class InjectedJitError(Exception):
    """A deliberately injected internal JIT-pipeline failure."""

    def __init__(self, addr: int):
        super().__init__(f"injected isel failure for block at {addr:#x}")
        self.addr = addr


class InjectedPygenError(Exception):
    """A deliberately injected pygen-tier compilation failure."""

    def __init__(self, addr: int):
        super().__init__(f"injected pygen compile failure for block at {addr:#x}")
        self.addr = addr


class BadInjectSpec(Exception):
    pass


#: Event names a plan may schedule.
EVENTS = ("mmap-enomem", "eintr", "smc-flush", "evict", "segv", "isel",
          "pygen")


@dataclass
class _Rule:
    """One scheduled event kind: fire at a fixed count and/or by chance."""

    at: Optional[int] = None      # fire on exactly the Nth opportunity
    prob: float = 0.0             # else fire with this probability
    seen: int = 0                 # opportunities observed so far
    fired: int = 0                # injections actually performed


class FaultInjector:
    """One parsed fault plan; consulted by the core at injection points.

    Every query advances deterministic state (counters and one seeded RNG
    stream), so a plan replays identically for identical specs.
    """

    def __init__(self, spec: str):
        self.spec = spec
        self.seed = 0
        self.rules: Dict[str, _Rule] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if part.startswith("seed="):
                try:
                    self.seed = int(part[5:], 0)
                except ValueError:
                    raise BadInjectSpec(f"bad seed in --inject: {part!r}")
                continue
            name, n, p = part, None, 0.0
            if "@" in part:
                name, _, num = part.partition("@")
                try:
                    n = int(num, 0)
                except ValueError:
                    raise BadInjectSpec(f"bad count in --inject: {part!r}")
                if n < 1:
                    raise BadInjectSpec(f"--inject counts are 1-based: {part!r}")
            elif ":" in part:
                name, _, prob = part.partition(":")
                try:
                    p = float(prob)
                except ValueError:
                    raise BadInjectSpec(f"bad probability in --inject: {part!r}")
                if not 0.0 <= p <= 1.0:
                    raise BadInjectSpec(f"probability out of range: {part!r}")
            if name not in EVENTS:
                raise BadInjectSpec(
                    f"unknown --inject event {name!r} (known: {', '.join(EVENTS)})"
                )
            rule = self.rules.setdefault(name, _Rule())
            if n is not None:
                rule.at = n
            else:
                rule.prob = p
        self._rng = random.Random(self.seed)

    # -- the generic decision -------------------------------------------------

    def _fires(self, name: str) -> bool:
        rule = self.rules.get(name)
        if rule is None:
            return False
        rule.seen += 1
        hit = False
        if rule.at is not None and rule.seen == rule.at:
            hit = True
        elif rule.prob > 0.0 and self._rng.random() < rule.prob:
            hit = True
        if hit:
            rule.fired += 1
        return hit

    # -- injection points the core consults -----------------------------------

    def mmap_enomem(self) -> bool:
        """Should this client mmap/brk/mremap fail with ENOMEM?"""
        return self._fires("mmap-enomem")

    def eintr(self) -> bool:
        """Should this client read/write/open fail with EINTR?"""
        return self._fires("eintr")

    def dispatch_event(self) -> Optional[str]:
        """Consulted once per scheduler dispatch step.

        Returns "segv", "smc-flush", "evict", or None.  At most one event
        fires per step (priority: segv, then smc-flush, then evict), so a
        single step never performs conflicting invalidations.
        """
        if self._fires("segv"):
            return "segv"
        if self._fires("smc-flush"):
            return "smc-flush"
        if self._fires("evict"):
            return "evict"
        return None

    def jit_failure(self, addr: int) -> None:
        """Consulted inside the translation pipeline, before isel; raises
        :class:`InjectedJitError` when the plan schedules a JIT failure."""
        if self._fires("isel"):
            raise InjectedJitError(addr)

    def pygen_failure(self, addr: int) -> None:
        """Consulted before each pygen-tier block compilation; raises
        :class:`InjectedPygenError` when the plan schedules one (the
        codegen layer catches it and demotes the block to closures)."""
        if self._fires("pygen"):
            raise InjectedPygenError(addr)

    # -- reporting -------------------------------------------------------------

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-event {seen, fired} counts (for ``--stats=json``)."""
        return {
            name: {"seen": r.seen, "fired": r.fired}
            for name, r in sorted(self.rules.items())
        }


#: Worker-level fault kinds the fleet supervisor's chaos matrix schedules.
FLEET_EVENTS = ("kill", "hang", "pygen-poison", "corrupt")


class FleetInjector:
    """A worker-level fault plan for the fleet supervisor's chaos matrix.

    Same spec grammar as :class:`FaultInjector`, different event names::

        --fleet-inject=kill:0.1,hang@4,pygen-poison:0.05,corrupt:0.2,seed=7

    * ``kill``         — the worker SIGKILLs itself mid-run (crash isolation);
    * ``hang``         — the worker stops heartbeating and sleeps forever
      (exercises the watchdog's heartbeat reaper);
    * ``pygen-poison`` — the worker raises InjectedPygenError from inside
      the run (exercises retry + tier degradation to closures);
    * ``corrupt``      — the job's shipped crash bundle is damaged in
      transit (the supervisor must classify it, not crash).

    Unlike FaultInjector's single sequential RNG stream, every decision
    here is a pure function of ``(seed, job_id, attempt)``: ``kind@N``
    fires on job N's *first* attempt, ``kind:P`` is an independent draw
    per (job, attempt) seeded from those values.  Fault schedules are
    therefore identical across fleet runs no matter how the OS schedules
    workers or which order jobs complete in.
    """

    #: Worker directives fire at this heartbeat tick (1 = job start) so a
    #: fault lands mid-run, after some events have been recorded.
    _MAX_TICK = 4

    def __init__(self, spec: str):
        self.spec = spec
        self.seed = 0
        self.rules: Dict[str, _Rule] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if part.startswith("seed="):
                try:
                    self.seed = int(part[5:], 0)
                except ValueError:
                    raise BadInjectSpec(f"bad seed in --fleet-inject: {part!r}")
                continue
            name, n, p = part, None, 0.0
            if "@" in part:
                name, _, num = part.partition("@")
                try:
                    n = int(num, 0)
                except ValueError:
                    raise BadInjectSpec(f"bad count in --fleet-inject: {part!r}")
                if n < 1:
                    raise BadInjectSpec(
                        f"--fleet-inject counts are 1-based job ids: {part!r}"
                    )
            elif ":" in part:
                name, _, prob = part.partition(":")
                try:
                    p = float(prob)
                except ValueError:
                    raise BadInjectSpec(
                        f"bad probability in --fleet-inject: {part!r}"
                    )
                if not 0.0 <= p <= 1.0:
                    raise BadInjectSpec(f"probability out of range: {part!r}")
            if name not in FLEET_EVENTS:
                raise BadInjectSpec(
                    f"unknown --fleet-inject event {name!r} "
                    f"(known: {', '.join(FLEET_EVENTS)})"
                )
            rule = self.rules.setdefault(name, _Rule())
            if n is not None:
                rule.at = n
            else:
                rule.prob = p

    def _draw(self, name: str, job_id: int, attempt: int) -> bool:
        """One deterministic decision for (event, job, attempt)."""
        rule = self.rules.get(name)
        if rule is None:
            return False
        rule.seen += 1
        hit = False
        if rule.at is not None and rule.at == job_id + 1 and attempt == 0:
            hit = True
        elif rule.prob > 0.0:
            rng = self._rng(name, job_id, attempt)
            hit = rng.random() < rule.prob
        if hit:
            rule.fired += 1
        return hit

    def _rng(self, name: str, job_id: int, attempt: int) -> random.Random:
        # String seeds hash via SHA-512 in random.seed(), so this is
        # stable across processes and interpreter runs (unlike hash()).
        return random.Random(f"fleet:{self.seed}:{name}:{job_id}:{attempt}")

    def directive(self, job_id: int, attempt: int):
        """The worker-side fault directive for this (job, attempt), if any:
        ``(kind, tick)`` where *tick* is the 1-based heartbeat tick at
        which the fault fires inside the worker.  At most one directive
        per attempt (priority: kill, hang, pygen-poison)."""
        for name in ("kill", "hang", "pygen-poison"):
            if self._draw(name, job_id, attempt):
                tick = self._rng(name + ".tick", job_id, attempt).randint(
                    1, self._MAX_TICK
                )
                return (name, tick)
        return None

    def corrupts(self, job_id: int, attempt: int) -> bool:
        """Should this job's shipped crash bundle be damaged in transit?"""
        return self._draw("corrupt", job_id, attempt)

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-event {seen, fired} counts (for the fleet report)."""
        return {
            name: {"seen": r.seen, "fired": r.fired}
            for name, r in sorted(self.rules.items())
        }
