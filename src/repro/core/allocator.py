"""The core's own internal memory allocator (Section 3.3).

One of the first subsystems initialised at start-up.  The core must never
use the client's allocator (that would perturb the client and deadlock
tools that wrap malloc), so it manages its own arena inside the reserved
core address region at 0x38000000 — the same region the core executable
notionally loads at.  Tools use it for guest-visible scratch storage.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..kernel.memory import GuestMemory, PAGE_SIZE, PROT_RW

#: The core's reserved region (the non-standard load address of Section
#: 3.3; client mmap/brk are pre-checked against it).
CORE_REGION_BASE = 0x3800_0000
CORE_REGION_SIZE = 0x0100_0000
CORE_REGION_END = CORE_REGION_BASE + CORE_REGION_SIZE

_ALIGN = 16


class CoreArenaError(Exception):
    pass


class CoreAllocator:
    """A simple segregated free-list arena over the reserved core region."""

    def __init__(self, memory: GuestMemory, base: int = CORE_REGION_BASE + 0x10000,
                 limit: int = CORE_REGION_END):
        self._mem = memory
        self._base = base
        self._limit = limit
        self._mapped_to = base
        self._cursor = base
        self._free: Dict[int, List[int]] = {}
        self._sizes: Dict[int, int] = {}
        self.bytes_allocated = 0

    def _ensure_mapped(self, upto: int) -> None:
        if upto <= self._mapped_to:
            return
        new_top = (upto + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
        if new_top > self._limit:
            raise CoreArenaError("core arena exhausted")
        self._mem.map(self._mapped_to, new_top - self._mapped_to, PROT_RW)
        self._mapped_to = new_top

    def alloc(self, size: int) -> int:
        """Allocate *size* bytes of zeroed guest memory; returns the address."""
        if size <= 0:
            raise CoreArenaError(f"bad allocation size {size}")
        rs = (size + _ALIGN - 1) & ~(_ALIGN - 1)
        bucket = self._free.get(rs)
        if bucket:
            addr = bucket.pop()
        else:
            addr = self._cursor
            self._ensure_mapped(addr + rs)
            self._cursor += rs
        self._sizes[addr] = rs
        self.bytes_allocated += rs
        self._mem.write_raw(addr, b"\0" * rs)
        return addr

    def free(self, addr: int) -> None:
        rs = self._sizes.pop(addr, None)
        if rs is None:
            raise CoreArenaError(f"core free of unallocated address {addr:#x}")
        self.bytes_allocated -= rs
        self._free.setdefault(rs, []).append(addr)

    def alloc_bytes(self, data: bytes) -> int:
        """Allocate and initialise a buffer; handy for strings."""
        addr = self.alloc(max(1, len(data)))
        self._mem.write_raw(addr, data)
        return addr
