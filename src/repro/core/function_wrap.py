"""Function replacement and wrapping (Section 3.13, requirement R8).

Two mechanisms, mirroring Valgrind's redirection machinery:

* **Guest-address redirection**: translation requests for address A are
  satisfied by translating the code at address B instead.  This lets a
  tool replace any *guest* function with another guest function.

* **Host-call interception**: the libc functions reached through `lcall`
  stubs (malloc and friends) can be replaced or wrapped with host
  callables.  A wrapper receives the machine interface and a zero-argument
  callable that invokes the function it displaced — so "a replacement
  function can also call the function it has replaced", which is what
  makes argument/return-value inspection (wrapping) work.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..libc.hostlib import LibC, Machine
from ..libc.stubs import LIBC_INDEX

#: wrapper(machine, call_original) -> None.  r0 carries the return value.
Wrapper = Callable[[Machine, Callable[[], None]], None]


class FunctionRedirector:
    """Holds both redirection tables for one core instance."""

    def __init__(self, libc: LibC):
        self._libc = libc
        self._guest_redirects: Dict[int, int] = {}
        self._libc_wrappers: Dict[int, List[Wrapper]] = {}

    # -- guest-address redirection ------------------------------------------------

    def redirect_guest(self, from_addr: int, to_addr: int) -> None:
        """Make calls/jumps to *from_addr* execute the code at *to_addr*."""
        self._guest_redirects[from_addr] = to_addr

    def unredirect_guest(self, from_addr: int) -> None:
        self._guest_redirects.pop(from_addr, None)

    def resolve(self, addr: int) -> int:
        """Translation-time hook: where should code for *addr* come from?"""
        return self._guest_redirects.get(addr, addr)

    @property
    def has_guest_redirects(self) -> bool:
        return bool(self._guest_redirects)

    # -- libc (lcall) wrapping -------------------------------------------------------

    def wrap_libc(self, name: str, wrapper: Wrapper) -> None:
        """Wrap the host libc function *name*.  Wrappers stack: the most
        recently added runs first and its ``call_original`` reaches the
        previous one (ending at the real function)."""
        idx = LIBC_INDEX[name]
        self._libc_wrappers.setdefault(idx, []).append(wrapper)

    def replace_libc(self, name: str, fn: Callable[[Machine], Optional[int]]) -> None:
        """Outright replacement: *fn* runs instead of the original (which
        it can still reach through the LibC handle if it wants)."""

        def as_wrapper(machine: Machine, call_original: Callable[[], None]) -> None:
            ret = fn(machine)
            if ret is not None:
                machine.set_reg(0, ret & 0xFFFFFFFF)

        self.wrap_libc(name, as_wrapper)

    def call_libc(self, index: int, machine: Machine) -> None:
        """Dispatch an lcall through any registered wrappers."""
        chain = self._libc_wrappers.get(index)
        if not chain:
            self._libc.call(index, machine)
            return

        def invoke(depth: int) -> None:
            if depth < 0:
                self._libc.call(index, machine)
            else:
                chain[depth](machine, lambda: invoke(depth - 1))

        invoke(len(chain) - 1)
