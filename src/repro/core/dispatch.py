"""The dispatcher (Section 3.9).

Control flows from one translation to the next via the *dispatcher*
(fast) or the *scheduler* (slow).  The dispatcher looks translations up in
a small direct-mapped cache of recently-used translations (the paper
reports a ~98% hit rate and a fourteen-instruction fast path); on a miss
it falls back to the full translation table, and if the translation does
not exist at all, control returns to the scheduler to make one.

The dispatcher also causes control to fall back to the scheduler every
few thousand translation executions so the scheduler can check for thread
switches and pending signals.

Optional *chaining* (linking) patches a translation to jump straight to
its constant successor, avoiding the dispatcher entirely; the real
Valgrind 3.2.1 did not do this (its old JIT did), so it is off by default
and exists here for the ablation bench.

**Perf mode** (``--perf``) promotes the hot path to first class:

* translations execute through content-addressed compiled runners
  (:meth:`repro.backend.hostcpu.HostCPU.compile_fn`), compiled eagerly at
  insert time;
* chaining follows Boring *and* Call/Ret successors, multiple links per
  dispatch step, with every link recorded in the translation table's
  :class:`~repro.core.transtab.ChainRegistry` so eviction / munmap / SMC
  invalidation severs stale links eagerly;
* a larger 2-way set-associative *megacache* sits behind the
  direct-mapped fast cache, catching translations the small cache
  conflict-evicts before a full table probe is needed.

The default mode's behaviour is byte-identical to the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..guest.regs import GUEST_STATE_SIZE, OFFSET_PC
from ..ir.stmt import JumpKind
from ..kernel.memory import GuestFault
from .options import Options
from .transtab import TranslationTable
from .translate import Translation

_BORING = JumpKind.Boring.value
_CALL = JumpKind.Call.value
_RET = JumpKind.Ret.value
#: Shadow call-stack depth cap (pathological recursion protection).
_CALLSTACK_MAX = 16384
#: Aligned-slot index of the guest PC in a ThreadState's u32 view.
_PC_IDX = OFFSET_PC // 4


@dataclass
class DispatchStats:
    fast_hits: int = 0
    slow_hits: int = 0
    chained: int = 0
    misses: int = 0
    blocks_executed: int = 0
    quantum_expiries: int = 0
    smc_flushes: int = 0
    #: Perf mode: hits in the 2-way megacache tier behind the fast cache.
    mega_hits: int = 0
    #: Perf mode: live megacache entries displaced by a fill (demotions
    #: from way 0 that pushed a resident way-1 entry out).
    mega_evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = (self.fast_hits + self.slow_hits + self.chained
                 + self.mega_hits + self.misses)
        hits = self.fast_hits + self.chained + self.mega_hits
        return hits / total if total else 0.0


class Dispatcher:
    """Runs translations back-to-back for one thread until something
    needs the scheduler's attention."""

    def __init__(
        self,
        transtab: TranslationTable,
        hostcpu,
        options: Options,
        smc_recheck: Optional[Callable[[Translation], bool]] = None,
    ):
        self.transtab = transtab
        self.hostcpu = hostcpu
        self.options = options
        self.smc_recheck = smc_recheck
        #: Codegen tiering (set by the scheduler): called with a
        #: translation whose compiled_fn is None on its first execution,
        #: compiles it for its starting tier and returns the runner.
        self.attach_runner: Optional[Callable] = None
        #: Trace tier (set by the scheduler under --codegen=traces):
        #: a TraceManager whose ``on_block`` hook records hot successor
        #: chains.  Compiled traces hang off their head Translation's
        #: ``trace`` attribute, so the per-block probe is free for
        #: untraced blocks.
        self.traces = None
        self._tiered = options.codegen != "closures"
        size = options.dispatch_cache_size
        self._mask = size - 1
        self._cache: list = [None] * size
        #: Megacache (perf mode): flat 2-way set-associative array, set i
        #: occupying slots 2i (MRU way) and 2i+1 (LRU way).
        self._perf = options.perf
        mega_sets = (options.megacache_size // 2) if options.perf else 0
        self._megamask = mega_sets - 1
        self._mega: list = [None] * (2 * mega_sets)
        #: Precise synchronous faults: snapshot the architected state
        #: before each block so an escaping GuestFault/ZeroDivisionError
        #: can be rolled to the exact faulting instruction boundary.
        self._precise = options.precise_faults
        #: Recovery hook (set by the scheduler): called with
        #: (ts, entry-snapshot, translation, exception), commits the
        #: precise state and returns (SigInfo, completed guest insns).
        self.fault_recover: Optional[Callable] = None
        #: Async-signal latency: polled every ``signal_poll_interval``
        #: blocks so a chained run cannot outrun a pending signal by more
        #: than that many blocks (set by the scheduler).
        self.signals_pending: Optional[Callable[[], bool]] = None
        self._poll = max(1, options.signal_poll_interval)
        #: Record/replay checkpointing: when set, the loop returns
        #: ("insns", n) at the first block boundary where the cumulative
        #: guest instruction count reaches this value (set per dispatch
        #: call by the scheduler; None disables the check entirely).
        self.stop_at_insns: Optional[int] = None
        self.stats = DispatchStats()
        #: Guest instructions executed — exact: each block execution
        #: reports its completed IMark count, side exits included.
        self.guest_insns = 0

    def flush_cache(self) -> None:
        """Invalidate both look-up tiers (after any translation discard)."""
        self._cache = [None] * len(self._cache)
        self._mega = [None] * len(self._mega)

    def run(self, ts, max_blocks: Optional[int] = None) -> Tuple[str, object]:
        """Execute translations for thread state *ts* until an event.

        Returns one of:
          ("translate", pc)   — no translation exists for pc; make one
          ("jumpkind", jk)    — a non-Boring jump kind needs handling
          ("smc", t)          — an SMC hash check failed on translation t
          ("quantum", None)   — the dispatch quantum expired
          ("fault", si)       — a synchronous guest fault; state is
                                committed to the faulting boundary and
                                *si* is the SigInfo describing it
          ("signals", n)      — a pending signal was observed mid-quantum
                                after *n* blocks; deliver it
          ("insns", n)        — the guest-instruction stop point
                                (``stop_at_insns``) was reached after *n*
                                blocks (record/replay checkpointing)
        """
        if self._perf:
            return self._run_perf(ts, max_blocks)
        stats = self.stats
        cache = self._cache
        mask = self._mask
        hostcpu = self.hostcpu
        chaining = self.options.chaining
        smc_recheck = self.smc_recheck
        attach = self.attach_runner if self._tiered else None
        quantum = self.options.dispatch_quantum
        if max_blocks is not None:
            quantum = min(quantum, max_blocks)
        precise = self._precise and self.fault_recover is not None
        sig_poll = self.signals_pending
        next_poll = self._poll
        stop = self.stop_at_insns
        tm = self.traces
        # Per-block counters accumulate in locals and are flushed to the
        # instance before every exit and signal poll (timer delivery reads
        # ``guest_insns`` from inside the poll callback).
        n = 0
        gi = 0
        flushed = 0
        u32 = ts.u32
        arch = ts.arch
        prev: Optional[Translation] = None
        t: Optional[Translation] = None
        while n < quantum:
            if stop is not None and self.guest_insns + gi >= stop:
                stats.blocks_executed += n - flushed
                self.guest_insns += gi
                return ("insns", n)
            if sig_poll is not None and n >= next_poll:
                next_poll = n + self._poll
                stats.blocks_executed += n - flushed
                flushed = n
                self.guest_insns += gi
                gi = 0
                if sig_poll():
                    return ("signals", n)
            pc = u32[_PC_IDX] if u32 is not None else ts.pc
            # Chained fast path: the previous translation already knows
            # its successor.
            if t is None:
                if chaining and prev is not None:
                    cand = prev.chain_next
                    if cand is not None and not cand.dead and cand.guest_addr == pc:
                        t = cand
                        stats.chained += 1
                if t is None:
                    idx = (pc >> 1) & mask
                    cand = cache[idx]
                    if cand is not None and cand.guest_addr == pc and not cand.dead:
                        t = cand
                        stats.fast_hits += 1
                    else:
                        # Fast look-up failed: search the full table (this
                        # is the "scheduler" slow path of Section 3.9).
                        t = self.transtab.lookup(pc)
                        if t is None:
                            stats.misses += 1
                            stats.blocks_executed += n - flushed
                            self.guest_insns += gi
                            return ("translate", pc)
                        cache[idx] = t
                        stats.slow_hits += 1
            # Trace tier: a compiled superblock headed at this block runs
            # whole member chains in one call; the probe is one attribute
            # check on the translation already in hand.  Entry is
            # conservative — near a quantum, poll or insn-stop boundary
            # the block tier runs instead, so trace runs never cross an
            # accounting boundary the block tier would have observed.
            if t.trace is not None:
                tr = t.trace
                if (
                    not tr.dead
                    and n + tr.n_blocks <= quantum
                    and (sig_poll is None or n + tr.n_blocks <= next_poll)
                    and (stop is None
                         or self.guest_insns + gi + tr.total_insns <= stop)
                ):
                    if tm.active:
                        tm.flush_recording()
                    fn = tr.compiled_fn
                    hostcpu.trace_blocks = 0
                    if precise:
                        snap = bytes(arch)
                        try:
                            jk, icnt = fn(ts)
                        except (GuestFault, ZeroDivisionError) as exc:
                            stats.blocks_executed += (
                                n + hostcpu.trace_blocks + 1 - flushed)
                            self.guest_insns += gi
                            si, ricnt = self.fault_recover(ts, snap, tr, exc)
                            self.guest_insns += ricnt
                            return ("fault", si)
                    else:
                        jk, icnt = fn(ts)
                    nb = hostcpu.trace_blocks + 1
                    n += nb
                    gi += icnt
                    tm.runs += 1
                    tm.blocks_retired += nb
                    tm.insns_retired += icnt
                    tr.runs += 1
                    tr.blocks += nb
                    if icnt != tr.total_insns:
                        tm.note_side_exit(tr)
                    if jk != _BORING:
                        if jk == _CALL:
                            cs = ts.callstack
                            cs.append((hostcpu.mem.load32(ts.sp), ts.pc))
                            if len(cs) > _CALLSTACK_MAX:
                                del cs[: _CALLSTACK_MAX // 2]
                        elif jk == _RET:
                            cs = ts.callstack
                            target = u32[_PC_IDX] if u32 is not None else ts.pc
                            if cs:
                                if cs[-1][0] == target:
                                    cs.pop()
                                else:
                                    for depth in range(2, min(9, len(cs) + 1)):
                                        if cs[-depth][0] == target:
                                            del cs[-depth:]
                                            break
                        else:
                            stats.blocks_executed += n - flushed
                            self.guest_insns += gi
                            return ("jumpkind", jk)
                    prev = None
                    t = None
                    continue
            if t.smc_checked and smc_recheck is not None and not smc_recheck(t):
                stats.smc_flushes += 1
                stats.blocks_executed += n - flushed
                self.guest_insns += gi
                return ("smc", t)
            fn = t.compiled_fn
            if fn is None:
                if attach is not None:
                    fn = attach(t)
                elif t.compiled is None:
                    t.compiled = hostcpu.compile(t.code)
            if precise:
                snap = bytes(arch)
                try:
                    if fn is not None:
                        jk, icnt = fn(ts)
                    else:
                        jk, icnt = hostcpu.run(t.compiled, ts)
                except (GuestFault, ZeroDivisionError) as exc:
                    stats.blocks_executed += n + 1 - flushed
                    self.guest_insns += gi
                    si, ricnt = self.fault_recover(ts, snap, t, exc)
                    self.guest_insns += ricnt
                    return ("fault", si)
            elif fn is not None:
                jk, icnt = fn(ts)
            else:
                jk, icnt = hostcpu.run(t.compiled, ts)
            n += 1
            gi += icnt
            if tm is not None and tm.active:
                tm.on_block(t, jk)
            if jk != _BORING:
                if jk == _CALL:
                    # Maintain the shadow call stack used for stack traces:
                    # the return address was just pushed at [sp].
                    cs = ts.callstack
                    cs.append((hostcpu.mem.load32(ts.sp), ts.pc))
                    if len(cs) > _CALLSTACK_MAX:
                        del cs[: _CALLSTACK_MAX // 2]
                elif jk == _RET:
                    cs = ts.callstack
                    target = u32[_PC_IDX] if u32 is not None else ts.pc
                    if cs:
                        if cs[-1][0] == target:
                            cs.pop()
                        else:
                            # Tolerate tail calls / longjmp-ish control flow.
                            for depth in range(2, min(9, len(cs) + 1)):
                                if cs[-depth][0] == target:
                                    del cs[-depth:]
                                    break
                else:
                    stats.blocks_executed += n - flushed
                    self.guest_insns += gi
                    return ("jumpkind", jk)
            if chaining and prev is not None and prev.chain_next is None:
                # Lazily record the observed constant successor.
                prev.chain_next = t
            prev = t
            # Next iteration: resolve the new pc.
            nxt = None
            if chaining:
                cand = t.chain_next
                if cand is not None and not cand.dead:
                    npc = u32[_PC_IDX] if u32 is not None else ts.pc
                    if cand.guest_addr == npc:
                        nxt = cand
                        stats.chained += 1
            t = nxt
        stats.quantum_expiries += 1
        stats.blocks_executed += n - flushed
        self.guest_insns += gi
        return ("quantum", None)
    # NOTE on chaining fidelity (default mode): we only chain
    # Boring->Boring constant successors, and only one link deep per step,
    # mirroring patched direct branches.

    # -- perf mode -------------------------------------------------------------

    def _run_perf(self, ts, max_blocks: Optional[int] = None):
        """The ``--perf`` dispatch loop.

        Differences from the default loop: translations execute through
        their eagerly-compiled ``compiled_fn`` runner; successors are
        chained across Boring *and* Call/Ret jumps via the registry (so
        links are severed, not just flagged, when a translation dies); and
        fast-cache misses probe the 2-way megacache before falling back to
        the full translation table.
        """
        stats = self.stats
        cache = self._cache
        mask = self._mask
        mega = self._mega
        megamask = self._megamask
        transtab = self.transtab
        hostcpu = self.hostcpu
        smc_recheck = self.smc_recheck
        quantum = self.options.dispatch_quantum
        if max_blocks is not None:
            quantum = min(quantum, max_blocks)
        precise = self._precise and self.fault_recover is not None
        sig_poll = self.signals_pending
        next_poll = self._poll
        stop = self.stop_at_insns
        tm = self.traces
        # Per-block counters accumulate in locals and are flushed to the
        # instance before every exit and signal poll (timer delivery reads
        # ``guest_insns`` from inside the poll callback).
        n = 0
        gi = 0
        flushed = 0
        u32 = ts.u32
        arch = ts.arch
        # Pending chain source: (translation, slot) to link once the next
        # translation is resolved through a cache/table look-up.
        pend: Optional[Tuple[Translation, str]] = None
        t: Optional[Translation] = None
        while n < quantum:
            if stop is not None and self.guest_insns + gi >= stop:
                stats.blocks_executed += n - flushed
                self.guest_insns += gi
                return ("insns", n)
            # A chained run can execute an entire quantum without touching
            # the scheduler; poll so an async signal (timer, kill) is
            # observed within ``signal_poll_interval`` blocks.
            if sig_poll is not None and n >= next_poll:
                next_poll = n + self._poll
                stats.blocks_executed += n - flushed
                flushed = n
                self.guest_insns += gi
                gi = 0
                if sig_poll():
                    return ("signals", n)
            pc = u32[_PC_IDX] if u32 is not None else ts.pc
            if t is None:
                idx = (pc >> 1) & mask
                cand = cache[idx]
                if cand is not None and cand.guest_addr == pc and not cand.dead:
                    t = cand
                    stats.fast_hits += 1
                else:
                    mi = ((pc >> 1) & megamask) << 1
                    m = mega[mi]
                    if m is not None and m.guest_addr == pc and not m.dead:
                        t = m
                        stats.mega_hits += 1
                    else:
                        m = mega[mi + 1]
                        if m is not None and m.guest_addr == pc and not m.dead:
                            # Promote the LRU way to MRU.
                            t = m
                            mega[mi + 1] = mega[mi]
                            mega[mi] = t
                            stats.mega_hits += 1
                        else:
                            t = transtab.lookup(pc)
                            if t is None:
                                stats.misses += 1
                                stats.blocks_executed += n - flushed
                                self.guest_insns += gi
                                return ("translate", pc)
                            stats.slow_hits += 1
                            # Fill: demote the MRU way; a displaced live
                            # way-1 entry is an eviction.
                            old = mega[mi + 1]
                            if old is not None and not old.dead:
                                stats.mega_evictions += 1
                            mega[mi + 1] = mega[mi]
                            mega[mi] = t
                    cache[idx] = t
                if pend is not None:
                    src, slot = pend
                    # Chain-once: an occupied slot is left alone, so a
                    # polymorphic successor (a Ret with many callers)
                    # does not thrash the registry on every dispatch.
                    if not src.dead and getattr(src, slot) is None:
                        transtab.chain(src, slot, t)
                pend = None
            # Trace tier (see the perf loop): one attribute probe on the
            # resolved block; superblocks shadow their head translation.
            if t.trace is not None:
                tr = t.trace
                if (
                    not tr.dead
                    and n + tr.n_blocks <= quantum
                    and (sig_poll is None or n + tr.n_blocks <= next_poll)
                    and (stop is None
                         or self.guest_insns + gi + tr.total_insns <= stop)
                ):
                    if tm.active:
                        tm.flush_recording()
                    fn = tr.compiled_fn
                    hostcpu.trace_blocks = 0
                    if precise:
                        snap = bytes(arch)
                        try:
                            jk, icnt = fn(ts)
                        except (GuestFault, ZeroDivisionError) as exc:
                            stats.blocks_executed += (
                                n + hostcpu.trace_blocks + 1 - flushed)
                            self.guest_insns += gi
                            si, ricnt = self.fault_recover(ts, snap, tr, exc)
                            self.guest_insns += ricnt
                            return ("fault", si)
                    else:
                        jk, icnt = fn(ts)
                    nb = hostcpu.trace_blocks + 1
                    n += nb
                    gi += icnt
                    tm.runs += 1
                    tm.blocks_retired += nb
                    tm.insns_retired += icnt
                    tr.runs += 1
                    tr.blocks += nb
                    if icnt != tr.total_insns:
                        tm.note_side_exit(tr)
                    if jk != _BORING:
                        if jk == _CALL:
                            cs = ts.callstack
                            cs.append((hostcpu.mem.load32(ts.sp), ts.pc))
                            if len(cs) > _CALLSTACK_MAX:
                                del cs[: _CALLSTACK_MAX // 2]
                        elif jk == _RET:
                            cs = ts.callstack
                            target = u32[_PC_IDX] if u32 is not None else ts.pc
                            if cs:
                                if cs[-1][0] == target:
                                    cs.pop()
                                else:
                                    for depth in range(2, min(9, len(cs) + 1)):
                                        if cs[-depth][0] == target:
                                            del cs[-depth:]
                                            break
                        else:
                            stats.blocks_executed += n - flushed
                            self.guest_insns += gi
                            return ("jumpkind", jk)
                    t = None
                    continue
            if t.smc_checked and smc_recheck is not None and not smc_recheck(t):
                stats.smc_flushes += 1
                stats.blocks_executed += n - flushed
                self.guest_insns += gi
                return ("smc", t)
            fn = t.compiled_fn
            if fn is None:
                # First execution under a lazy codegen mode — or, with
                # eager insert-time compilation, a translation inserted
                # before perf wiring.
                attach = self.attach_runner
                if attach is not None:
                    fn = attach(t)
                else:
                    fn = t.compiled_fn = hostcpu.compile_fn(t.code)
            if precise:
                snap = bytes(arch)
                try:
                    jk, icnt = fn(ts)
                except (GuestFault, ZeroDivisionError) as exc:
                    stats.blocks_executed += n + 1 - flushed
                    self.guest_insns += gi
                    si, ricnt = self.fault_recover(ts, snap, t, exc)
                    self.guest_insns += ricnt
                    return ("fault", si)
            else:
                jk, icnt = fn(ts)
            n += 1
            gi += icnt
            if tm is not None and tm.active:
                tm.on_block(t, jk)
            slot = "chain_next"
            if jk != _BORING:
                if jk == _CALL:
                    cs = ts.callstack
                    cs.append((hostcpu.mem.load32(ts.sp), ts.pc))
                    if len(cs) > _CALLSTACK_MAX:
                        del cs[: _CALLSTACK_MAX // 2]
                    slot = "chain_call"
                elif jk == _RET:
                    cs = ts.callstack
                    target = u32[_PC_IDX] if u32 is not None else ts.pc
                    if cs:
                        if cs[-1][0] == target:
                            cs.pop()
                        else:
                            for depth in range(2, min(9, len(cs) + 1)):
                                if cs[-depth][0] == target:
                                    del cs[-depth:]
                                    break
                    slot = "chain_ret"
                else:
                    stats.blocks_executed += n - flushed
                    self.guest_insns += gi
                    return ("jumpkind", jk)
            # Follow the chain: multi-link — each hop bypasses both
            # look-up tiers entirely.
            nxt = getattr(t, slot)
            if nxt is not None and not nxt.dead and nxt.guest_addr == (
                u32[_PC_IDX] if u32 is not None else ts.pc
            ):
                stats.chained += 1
                pend = None
                t = nxt
            else:
                pend = (t, slot) if nxt is None else None
                t = None
        stats.quantum_expiries += 1
        stats.blocks_executed += n - flushed
        self.guest_insns += gi
        return ("quantum", None)
