"""The dispatcher (Section 3.9).

Control flows from one translation to the next via the *dispatcher*
(fast) or the *scheduler* (slow).  The dispatcher looks translations up in
a small direct-mapped cache of recently-used translations (the paper
reports a ~98% hit rate and a fourteen-instruction fast path); on a miss
it falls back to the full translation table, and if the translation does
not exist at all, control returns to the scheduler to make one.

The dispatcher also causes control to fall back to the scheduler every
few thousand translation executions so the scheduler can check for thread
switches and pending signals.

Optional *chaining* (linking) patches a translation to jump straight to
its constant successor, avoiding the dispatcher entirely; the real
Valgrind 3.2.1 did not do this (its old JIT did), so it is off by default
and exists here for the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..ir.stmt import JumpKind
from .options import Options
from .transtab import TranslationTable
from .translate import Translation

_BORING = JumpKind.Boring.value
_CALL = JumpKind.Call.value
_RET = JumpKind.Ret.value
#: Shadow call-stack depth cap (pathological recursion protection).
_CALLSTACK_MAX = 16384


@dataclass
class DispatchStats:
    fast_hits: int = 0
    slow_hits: int = 0
    chained: int = 0
    misses: int = 0
    blocks_executed: int = 0
    quantum_expiries: int = 0
    smc_flushes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.fast_hits + self.slow_hits + self.chained + self.misses
        return (self.fast_hits + self.chained) / total if total else 0.0


class Dispatcher:
    """Runs translations back-to-back for one thread until something
    needs the scheduler's attention."""

    def __init__(
        self,
        transtab: TranslationTable,
        hostcpu,
        options: Options,
        smc_recheck: Optional[Callable[[Translation], bool]] = None,
    ):
        self.transtab = transtab
        self.hostcpu = hostcpu
        self.options = options
        self.smc_recheck = smc_recheck
        size = options.dispatch_cache_size
        self._mask = size - 1
        self._cache: list = [None] * size
        self.stats = DispatchStats()
        #: Approximate guest instructions executed (sums each executed
        #: block's IMark count; side exits overcount slightly).
        self.guest_insns = 0

    def flush_cache(self) -> None:
        """Invalidate the fast cache (after any translation discard)."""
        self._cache = [None] * len(self._cache)

    def run(self, ts, max_blocks: Optional[int] = None) -> Tuple[str, object]:
        """Execute translations for thread state *ts* until an event.

        Returns one of:
          ("translate", pc)   — no translation exists for pc; make one
          ("jumpkind", jk)    — a non-Boring jump kind needs handling
          ("smc", t)          — an SMC hash check failed on translation t
          ("quantum", None)   — the dispatch quantum expired
        """
        stats = self.stats
        cache = self._cache
        mask = self._mask
        hostcpu = self.hostcpu
        chaining = self.options.chaining
        smc_recheck = self.smc_recheck
        quantum = self.options.dispatch_quantum
        if max_blocks is not None:
            quantum = min(quantum, max_blocks)
        n = 0
        prev: Optional[Translation] = None
        t: Optional[Translation] = None
        while n < quantum:
            pc = ts.pc
            # Chained fast path: the previous translation already knows
            # its successor.
            if t is None:
                if chaining and prev is not None:
                    cand = prev.chain_next
                    if cand is not None and not cand.dead and cand.guest_addr == pc:
                        t = cand
                        stats.chained += 1
                if t is None:
                    idx = (pc >> 1) & mask
                    cand = cache[idx]
                    if cand is not None and cand.guest_addr == pc and not cand.dead:
                        t = cand
                        stats.fast_hits += 1
                    else:
                        # Fast look-up failed: search the full table (this
                        # is the "scheduler" slow path of Section 3.9).
                        t = self.transtab.lookup(pc)
                        if t is None:
                            stats.misses += 1
                            return ("translate", pc)
                        cache[idx] = t
                        stats.slow_hits += 1
            if t.smc_checked and smc_recheck is not None and not smc_recheck(t):
                stats.smc_flushes += 1
                return ("smc", t)
            if t.compiled is None:
                t.compiled = hostcpu.compile(t.code)
            jk = hostcpu.run(t.compiled, ts)
            n += 1
            stats.blocks_executed += 1
            self.guest_insns += t.stats.guest_insns
            if jk != _BORING:
                if jk == _CALL:
                    # Maintain the shadow call stack used for stack traces:
                    # the return address was just pushed at [sp].
                    cs = ts.callstack
                    cs.append((hostcpu.mem.load32(ts.sp), ts.pc))
                    if len(cs) > _CALLSTACK_MAX:
                        del cs[: _CALLSTACK_MAX // 2]
                elif jk == _RET:
                    cs = ts.callstack
                    target = ts.pc
                    if cs:
                        if cs[-1][0] == target:
                            cs.pop()
                        else:
                            # Tolerate tail calls / longjmp-ish control flow.
                            for depth in range(2, min(9, len(cs) + 1)):
                                if cs[-depth][0] == target:
                                    del cs[-depth:]
                                    break
                else:
                    return ("jumpkind", jk)
            if chaining and prev is not None and prev.chain_next is None:
                # Lazily record the observed constant successor.
                prev.chain_next = t
            prev = t
            # Next iteration: resolve the new pc.
            nxt = None
            if chaining:
                cand = t.chain_next
                if cand is not None and not cand.dead and cand.guest_addr == ts.pc:
                    nxt = cand
                    stats.chained += 1
            t = nxt
        stats.quantum_expiries += 1
        return ("quantum", None)
    # NOTE on chaining fidelity: we only chain Boring->Boring constant
    # successors, and only one link deep per step, mirroring patched
    # direct branches.
