"""Translation storage (Section 3.8) and the chaining registry.

Translations are stored in the translation table, a fixed-size,
linear-probe hash table.  If the table gets more than 80% full,
translations are evicted in chunks, 1/8th of the table at a time, using a
FIFO policy — chosen over LRU "because it is simpler and it still does a
fairly good job".  Translations are also evicted when code is unloaded
(munmap) or invalidated by self-modifying code.

Perf-mode chaining records every translation-to-translation link in a
:class:`ChainRegistry`, so that when a translation dies — FIFO eviction,
munmap discard, or SMC invalidation — every link *into* it is severed
eagerly, and no stale ``chain_next``/``chain_call``/``chain_ret`` pointer
(nor the dead translation's compiled code) can ever be reached again.
The paper's own chaining removal (§3.9) cites exactly this invalidation
complexity as a reason chaining was dropped; the registry is what makes
re-adding it safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .translate import Translation

#: Eviction threshold (fraction full).
FULL_FRACTION = 0.8
#: Fraction of entries discarded per eviction round.
EVICT_FRACTION = 1 / 8

#: The chainable successor slots on a Translation.
CHAIN_SLOTS = ("chain_next", "chain_call", "chain_ret")


@dataclass
class TransTabStats:
    inserts: int = 0
    evict_rounds: int = 0
    evicted: int = 0
    discarded: int = 0
    lookups: int = 0
    misses: int = 0


class ChainRegistry:
    """Tracks every chain link so dying translations sever them eagerly.

    The dispatcher's per-hop ``dead`` check is a backstop; the registry is
    the primary mechanism: ``sever(t)`` clears every predecessor slot that
    points at *t* (incoming links) and every slot *t* itself holds
    (outgoing links), so a dead translation is unreachable via chains the
    moment it leaves the table.
    """

    def __init__(self) -> None:
        #: id(successor) -> [(predecessor, slot name), ...]
        self._preds: Dict[int, List[Tuple[Translation, str]]] = {}
        self.links_made = 0
        self.links_severed = 0

    def __len__(self) -> int:
        return sum(len(v) for v in self._preds.values())

    def link(self, pred: Translation, slot: str, succ: Translation) -> None:
        """Record ``pred.<slot> = succ`` (unlinking any previous target)."""
        old = getattr(pred, slot)
        if old is succ:
            return
        if old is not None:
            self._drop(pred, slot, old)
        setattr(pred, slot, succ)
        self._preds.setdefault(id(succ), []).append((pred, slot))
        self.links_made += 1

    def _drop(self, pred: Translation, slot: str, succ: Translation) -> None:
        entries = self._preds.get(id(succ))
        if entries is not None:
            for j, (p, s) in enumerate(entries):
                if p is pred and s == slot:  # identity, not dataclass eq
                    del entries[j]
                    break
            if not entries:
                del self._preds[id(succ)]

    def sever(self, t: Translation) -> None:
        """Cut every link into and out of *t* (called when *t* dies)."""
        for pred, slot in self._preds.pop(id(t), ()):
            if getattr(pred, slot) is t:
                setattr(pred, slot, None)
                self.links_severed += 1
        for slot in CHAIN_SLOTS:
            succ = getattr(t, slot)
            if succ is not None:
                self._drop(t, slot, succ)
                setattr(t, slot, None)
                self.links_severed += 1


class TranslationTable:
    """Fixed-size linear-probe hash table of Translations, keyed by guest
    address, with FIFO chunk eviction."""

    def __init__(self, entries: int = 32768, policy: str = "fifo"):
        if entries <= 0:
            raise ValueError("table must have at least one entry")
        if policy not in ("fifo", "lru"):
            raise ValueError(f"bad eviction policy {policy!r}")
        self.capacity = entries
        #: Eviction policy: the paper chose FIFO over "the more obvious
        #: LRU... because it is simpler and it still does a fairly good
        #: job"; "lru" exists for the ablation bench.
        self.policy = policy
        self._slots: List[Optional[Translation]] = [None] * entries
        self._used = 0
        self._next_serial = 0
        self.stats = TransTabStats()
        #: Chain links into/out of stored translations; severed on death.
        self.chains = ChainRegistry()
        #: Perf mode: eager compiler run at insert time (set by the
        #: scheduler; compiles the block before its first execution).
        self._compiler: Optional[Callable[[Translation], None]] = None
        #: Record/replay: called with the number of entries killed at the
        #: end of every eviction round (capacity-pressure or forced).
        self.on_evict: Optional[Callable[[int], None]] = None
        #: Called with every translation as it dies (eviction, discard,
        #: insert-replace) — the trace tier severs superblocks containing
        #: the dead member (core.traces).
        self.on_kill: Optional[Callable[[Translation], None]] = None

    def set_compiler(self, compiler: Optional[Callable[[Translation], None]]):
        """Install an eager insert-time compiler (perf mode)."""
        self._compiler = compiler

    def chain(self, pred: Translation, slot: str, succ: Translation) -> None:
        """Link *pred*'s *slot* to *succ* through the chain registry."""
        self.chains.link(pred, slot, succ)

    def _kill(self, t: Translation) -> None:
        """Mark *t* dead and sever every chain link touching it."""
        t.dead = True
        self.chains.sever(t)
        if self.on_kill is not None:
            self.on_kill(t)

    def __len__(self) -> int:
        return self._used

    @property
    def load(self) -> float:
        return self._used / self.capacity

    def _probe(self, addr: int) -> Iterator[int]:
        i = (addr * 2654435761) % self.capacity  # Knuth multiplicative hash
        for _ in range(self.capacity):
            yield i
            i = (i + 1) % self.capacity

    def lookup(self, addr: int) -> Optional[Translation]:
        self.stats.lookups += 1
        for i in self._probe(addr):
            t = self._slots[i]
            if t is None:
                break
            if t.guest_addr == addr:
                if self.policy == "lru":
                    t.last_used = self._next_serial
                    self._next_serial += 1
                return t
        self.stats.misses += 1
        return None

    def insert(self, t: Translation, evict_ok: bool = True) -> None:
        if evict_ok and self._used / self.capacity >= FULL_FRACTION:
            self._evict_chunk()
        t.serial = self._next_serial
        self._next_serial += 1
        if self._compiler is not None and t.compiled_fn is None:
            self._compiler(t)
        for i in self._probe(t.guest_addr):
            slot = self._slots[i]
            if slot is None:
                self._slots[i] = t
                self._used += 1
                self.stats.inserts += 1
                return
            if slot.guest_addr == t.guest_addr:
                self._kill(slot)  # replaced: no chain may reach it again
                self._slots[i] = t
                self.stats.inserts += 1
                return
        raise RuntimeError("translation table unexpectedly full")

    def evict_chunk(self) -> None:
        """Force one eviction round (fault injection / stress testing)."""
        if self._used:
            self._evict_chunk()

    def _evict_chunk(self) -> None:
        """Drop the oldest 1/8th of stored translations (FIFO by insertion
        order, or LRU by last use when the ablation policy is selected)."""
        self.stats.evict_rounds += 1
        n_goal = max(1, int(self.capacity * EVICT_FRACTION))
        if self.policy == "lru":
            live = sorted(
                (t.last_used, i)
                for i, t in enumerate(self._slots)
                if t is not None
            )
        else:
            live = sorted(
                (t.serial, i) for i, t in enumerate(self._slots) if t is not None
            )
        count = len(live[:n_goal])
        for _, i in live[:n_goal]:
            self._kill(self._slots[i])
            self._slots[i] = None
            self._used -= 1
            self.stats.evicted += 1
        self._rehash()
        if self.on_evict is not None:
            self.on_evict(count)

    def _rehash(self) -> None:
        """Rebuild probe sequences after deletions (linear probing needs it)."""
        entries = [t for t in self._slots if t is not None]
        self._slots = [None] * self.capacity
        self._used = 0
        for t in entries:
            for i in self._probe(t.guest_addr):
                if self._slots[i] is None:
                    self._slots[i] = t
                    self._used += 1
                    break

    def discard(self, addr: int) -> bool:
        """Remove the translation starting at *addr*, if present."""
        removed = False
        for i in self._probe(addr):
            t = self._slots[i]
            if t is None:
                break
            if t.guest_addr == addr:
                self._kill(t)
                self._slots[i] = None
                self._used -= 1
                self.stats.discarded += 1
                removed = True
                break
        if removed:
            self._rehash()
        return removed

    def discard_range(self, addr: int, size: int) -> int:
        """Discard every translation covering [addr, addr+size) — used on
        munmap and for self-modifying code invalidation."""
        victims = [
            i
            for i, t in enumerate(self._slots)
            if t is not None and t.covers(addr, size)
        ]
        for i in victims:
            self._kill(self._slots[i])
            self._slots[i] = None
            self._used -= 1
            self.stats.discarded += 1
        if victims:
            self._rehash()
        return len(victims)

    def all_translations(self) -> List[Translation]:
        return [t for t in self._slots if t is not None]
