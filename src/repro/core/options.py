"""Core command-line options.

The ``valgrind``-style launcher accepts ``--option=value`` arguments
before the client program name; unrecognised options are offered to the
tool, and anything after the program name belongs to the client.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class BadOption(Exception):
    pass


def _default_codegen() -> str:
    """Default --codegen tier, overridable via REPRO_CODEGEN so CI can
    force the whole test suite through a non-default tier."""
    v = os.environ.get("REPRO_CODEGEN", "closures")
    return v if v in ("closures", "pygen", "auto", "traces") else "closures"


def _default_cache_dir():
    """Default --cache-dir, overridable via REPRO_CACHE_DIR so CI can run
    the whole test suite against one shared persistent code cache."""
    return os.environ.get("REPRO_CACHE_DIR") or None


def _default_memcheck_fastpath() -> bool:
    """Default --memcheck-fastpath, overridable via
    REPRO_MEMCHECK_FASTPATH=0|1 so CI can force the whole suite through
    either emission variant."""
    return os.environ.get("REPRO_MEMCHECK_FASTPATH", "1") not in ("0", "no")


@dataclass
class Options:
    """Core configuration (defaults mirror the paper where it gives one)."""

    #: Self-modifying-code checking: none | stack | all (Section 3.16; the
    #: default is to check only code on the stack).
    smc_check: str = "stack"
    #: Stack-switch heuristic threshold: SP changes larger than this are
    #: treated as a switch to a different stack (Section 3.12; 2MB default).
    max_stackframe: int = 2 * 1024 * 1024
    #: Translation-table size in entries (the real thing uses ~400k;
    #: scaled down with our scaled workloads).
    transtab_entries: int = 32768
    #: Translation-table eviction policy: fifo (the paper's) or lru.
    transtab_policy: str = "fifo"
    #: Direct-mapped dispatcher cache size (power of two).
    dispatch_cache_size: int = 8192
    #: Drop back to the scheduler after this many block executions, to check
    #: for thread switches and pending signals (Section 3.9).
    dispatch_quantum: int = 5000
    #: Thread timeslice, in code blocks (Section 3.14: 100,000 blocks;
    #: scaled down by default to match our scaled workloads).
    thread_timeslice: int = 10000
    #: Enable translation chaining (off, as in the paper's Valgrind 3.2.1;
    #: the dispatcher-ablation bench switches it on).
    chaining: bool = False
    #: Perf execution mode: content-addressed compiled-code memoization
    #: with eager insert-time compilation, first-class multi-link chaining
    #: (Boring + Call/Ret) with registry-severed invalidation, and the
    #: two-tier dispatcher cache.  Off by default: the default mode is
    #: byte-identical to the paper's behaviour.
    perf: bool = False
    #: Codegen tier selection (see repro.core.codegen): "closures" keeps
    #: the historical engines; "pygen" compiles every block to one
    #: specialized CPython function on first execution; "auto" starts in
    #: closures and promotes blocks crossing --jit-threshold to pygen;
    #: "traces" runs blocks in the pygen tier and additionally records
    #: hot chained successor sequences into superblock traces
    #: (see repro.core.traces).
    codegen: str = field(default_factory=_default_codegen)
    #: auto tier promotion threshold: closure-tier executions before a
    #: block is recompiled into the pygen tier.
    jit_threshold: int = 10
    #: traces tier recording threshold: executions of a block before the
    #: dispatcher records the successor chain starting there as a trace.
    trace_threshold: int = 50
    #: Maximum member blocks stitched into one trace.
    max_trace_blocks: int = 8
    #: Megacache entries (perf mode): a 2-way set-associative second cache
    #: tier behind the direct-mapped one (power of two).
    megacache_size: int = 32768
    #: Run-statistics report format: "none" or "json" (--stats=json).
    stats_format: str = "none"
    #: Write the stats JSON to this file instead of racing on stderr —
    #: the per-job output channel for concurrent fleet workers
    #: (--stats=json alone keeps printing to stderr).
    stats_out: Optional[str] = None
    #: Precise synchronous faults: roll guest state to the exact faulting
    #: instruction boundary before delivering SIGSEGV/SIGFPE/SIGILL.
    precise_faults: bool = True
    #: How many blocks a dispatch/chained run may execute between checks
    #: for pending asynchronous signals (timer latency bound).
    signal_poll_interval: int = 100
    #: Fault-injection plan (``--inject=mmap-enomem@3,eintr:0.05,seed=7``);
    #: None disables injection entirely.
    inject: Optional[str] = None
    #: Record every nondeterministic decision into this log file.
    record: Optional[str] = None
    #: While recording, atomically rewrite the log every N events (0 =
    #: only at run end).  Crash-bundle support: a worker killed mid-run
    #: leaves a loadable prefix that replays partially to the exact
    #: point the last flush captured.
    record_flush_every: int = 0
    #: Replay a run from this log file, verifying each decision.
    replay: Optional[str] = None
    #: While recording, snapshot full architected state every N guest
    #: instructions (0 disables checkpointing).
    checkpoint_every: int = 0
    #: Resume execution from the last checkpoint in this log file.
    restore: Optional[str] = None
    #: Run the IR sanity checker between translation phases.
    sanity_level: int = 1
    #: Enable intra-block self-loop unrolling in opt1.
    unroll: bool = True
    #: Disable opt1 / opt2 (for the optimisation-ablation bench).
    opt1: bool = True
    opt2: bool = True
    #: Where tool/core output goes: "stderr", "stdout" or a file path.
    log_target: str = "stderr"
    #: Suppression file paths.
    suppressions: List[str] = field(default_factory=list)
    #: Print each translation's IR as it is made (debugging aid).
    trace_translations: bool = False
    #: Guest stack size in bytes.
    stack_size: int = 1024 * 1024
    #: Persistent cross-process translation cache directory
    #: (core.codecache); None disables persistence.
    cache_dir: Optional[str] = field(default_factory=_default_cache_dir)
    #: Size budget for the persistent cache, in MB (LRU eviction past
    #: it); also bounds the in-process pygen emit cache.
    cache_max_mb: int = 256
    #: Inline Memcheck's LOADV/STOREV shadow fast paths in the pygen
    #: tier (backend.pygen).  Tool output is byte-identical either way;
    #: the flag exists for differential testing and is deliberately NOT
    #: part of the replay contract (recordings stay tier-portable).
    memcheck_fastpath: bool = field(
        default_factory=_default_memcheck_fastpath
    )
    #: Tool-specific options that the core did not recognise.
    tool_options: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        """Keyword-constructor validation: embedders building Options
        directly get the same BadOption errors the flag parser raises."""
        if self.smc_check not in ("none", "stack", "all"):
            raise BadOption(
                f"smc_check must be none|stack|all, got {self.smc_check!r}"
            )
        if self.transtab_policy not in ("fifo", "lru"):
            raise BadOption(
                f"transtab_policy must be fifo|lru, got {self.transtab_policy!r}"
            )
        if self.codegen not in ("closures", "pygen", "auto", "traces"):
            raise BadOption(
                "codegen must be closures|pygen|auto|traces, "
                f"got {self.codegen!r}"
            )
        if self.stats_format not in ("none", "json"):
            raise BadOption(
                f"stats_format must be none|json, got {self.stats_format!r}"
            )
        if self.jit_threshold < 1:
            raise BadOption("jit_threshold must be >= 1")
        if self.trace_threshold < 1:
            raise BadOption("trace_threshold must be >= 1")
        if self.max_trace_blocks < 2:
            raise BadOption("max_trace_blocks must be >= 2")
        if self.cache_max_mb < 1:
            raise BadOption("cache_max_mb must be >= 1")

    @classmethod
    def from_cli_args(cls, args: List[str]) -> "Options":
        """Build Options from a list of ``--name=value`` strings — the
        stable embedding entry point, so embedders stop reimplementing
        the flag grammar.  Unrecognised ``--`` options are collected
        into ``tool_options``; anything else raises BadOption.
        """
        opts = cls()
        for arg in args:
            if not str(arg).startswith("--"):
                raise BadOption(f"not an option: {arg!r}")
            if not opts.set(str(arg)):
                opts.tool_options.append(str(arg))
        return opts

    _FLAG_NAMES = {
        "chaining": "chaining",
        "perf": "perf",
        "unroll": "unroll",
        "opt1": "opt1",
        "opt2": "opt2",
        "trace-translations": "trace_translations",
        "precise-faults": "precise_faults",
        "memcheck-fastpath": "memcheck_fastpath",
    }

    def set(self, option: str) -> bool:
        """Apply one ``--name=value`` option; False if unrecognised."""
        if not option.startswith("--"):
            raise BadOption(f"not an option: {option!r}")
        body = option[2:]
        name, _, value = body.partition("=")
        if name == "smc-check":
            if value not in ("none", "stack", "all"):
                raise BadOption(f"--smc-check must be none|stack|all, got {value!r}")
            self.smc_check = value
        elif name == "max-stackframe":
            self.max_stackframe = int(value, 0)
        elif name == "transtab-entries":
            self.transtab_entries = int(value, 0)
        elif name == "transtab-policy":
            if value not in ("fifo", "lru"):
                raise BadOption("--transtab-policy must be fifo|lru")
            self.transtab_policy = value
        elif name == "dispatch-cache":
            n = int(value, 0)
            if n & (n - 1):
                raise BadOption("--dispatch-cache must be a power of two")
            self.dispatch_cache_size = n
        elif name == "megacache":
            n = int(value, 0)
            if n < 2 or n & (n - 1):
                raise BadOption("--megacache must be a power of two >= 2")
            self.megacache_size = n
        elif name == "stats":
            if value not in ("none", "json"):
                raise BadOption(f"--stats must be none|json, got {value!r}")
            self.stats_format = value
        elif name == "stats-out":
            if not value:
                raise BadOption("--stats-out needs a file path")
            self.stats_out = value
        elif name == "codegen":
            if value not in ("closures", "pygen", "auto", "traces"):
                raise BadOption(
                    f"--codegen must be closures|pygen|auto|traces, got {value!r}"
                )
            self.codegen = value
        elif name == "jit-threshold":
            n = int(value, 0)
            if n < 1:
                raise BadOption("--jit-threshold must be >= 1")
            self.jit_threshold = n
        elif name == "trace-threshold":
            n = int(value, 0)
            if n < 1:
                raise BadOption("--trace-threshold must be >= 1")
            self.trace_threshold = n
        elif name == "max-trace-blocks":
            n = int(value, 0)
            if n < 2:
                raise BadOption("--max-trace-blocks must be >= 2")
            self.max_trace_blocks = n
        elif name == "dispatch-quantum":
            self.dispatch_quantum = int(value, 0)
        elif name == "thread-timeslice":
            self.thread_timeslice = int(value, 0)
        elif name == "sanity-level":
            self.sanity_level = int(value, 0)
        elif name == "log-file":
            self.log_target = value
        elif name == "log-fd":
            self.log_target = {"1": "stdout", "2": "stderr"}.get(value, value)
        elif name == "suppressions":
            self.suppressions.append(value)
        elif name == "stack-size":
            self.stack_size = int(value, 0)
        elif name == "cache-dir":
            if not value:
                raise BadOption("--cache-dir needs a directory path")
            self.cache_dir = value
        elif name == "cache-max-mb":
            n = int(value, 0)
            if n < 1:
                raise BadOption("--cache-max-mb must be >= 1")
            self.cache_max_mb = n
        elif name == "signal-poll":
            n = int(value, 0)
            if n < 1:
                raise BadOption("--signal-poll must be >= 1")
            self.signal_poll_interval = n
        elif name == "inject":
            from .faultinject import BadInjectSpec, FaultInjector

            try:
                FaultInjector(value)  # validate the spec eagerly
            except BadInjectSpec as exc:
                raise BadOption(str(exc))
            self.inject = value
        elif name in ("record", "replay", "restore"):
            if not value:
                raise BadOption(f"--{name} needs a file path")
            setattr(self, name, value)
        elif name == "checkpoint-every":
            n = int(value, 0)
            if n < 1:
                raise BadOption("--checkpoint-every must be >= 1")
            self.checkpoint_every = n
        elif name == "record-flush":
            n = int(value, 0)
            if n < 1:
                raise BadOption("--record-flush must be >= 1")
            self.record_flush_every = n
        elif name in self._FLAG_NAMES:
            if value not in ("yes", "no", ""):
                raise BadOption(f"--{name} must be yes|no")
            setattr(self, self._FLAG_NAMES[name], value != "no")
        else:
            return False
        return True


def parse_argv(argv: List[str]) -> Tuple[Optional[str], Options, List[str]]:
    """Parse a valgrind-style command line.

    Returns (tool name or None, core options, remaining argv where
    remaining[0] is the client program).  Unrecognised ``--`` options are
    collected into ``options.tool_options`` for the tool to inspect.
    """
    opts = Options()
    tool: Optional[str] = None
    i = 0
    while i < len(argv):
        arg = argv[i]
        if not arg.startswith("--"):
            break
        if arg.startswith("--tool="):
            tool = arg.split("=", 1)[1]
        elif not opts.set(arg):
            opts.tool_options.append(arg)
        i += 1
    return tool, opts, argv[i:]
