"""The events system (Section 3.12, Table 1).

The IR describes what client *code* does, but not what system calls do to
registers and memory, nor which memory is allocated when.  The events
system fills that gap: tools register callbacks per event, and the core's
system-call wrappers, loader, and stack-pointer instrumentation invoke
them.

Requirement mapping (Table 1):

=====  ==========================================  ==========================
Req.   Events                                      Called from
=====  ==========================================  ==========================
R4     pre_reg_read, post_reg_write                every system call wrapper
R4     pre_mem_read{,_asciiz}, pre_mem_write,      many system call wrappers
       post_mem_write
R5     new_mem_startup                             the core's code loader
R6     new_mem_mmap, die_mem_munmap                mmap/munmap wrappers
R6     new_mem_brk, die_mem_brk                    brk wrapper
R6     copy_mem_mremap                             mremap wrapper
R7     new_mem_stack, die_mem_stack                instrumentation of SP changes
=====  ==========================================  ==========================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

#: event name -> (requirement, trigger description, callback signature)
EVENT_SPECS: Dict[str, Tuple[str, str, str]] = {
    "pre_reg_read": ("R4", "every system call wrapper", "(tid, offset, size, name)"),
    "post_reg_write": ("R4", "every system call wrapper", "(tid, offset, size, name)"),
    "pre_mem_read": ("R4", "many system call wrappers", "(tid, addr, size, name)"),
    "pre_mem_read_asciiz": ("R4", "many system call wrappers", "(tid, addr, name)"),
    "pre_mem_write": ("R4", "many system call wrappers", "(tid, addr, size, name)"),
    "post_mem_write": ("R4", "many system call wrappers", "(tid, addr, size, name)"),
    "new_mem_startup": ("R5", "the core's code loader", "(addr, size, r, w, x)"),
    "new_mem_mmap": ("R6", "mmap wrapper", "(addr, size, r, w, x)"),
    "die_mem_munmap": ("R6", "munmap wrapper", "(addr, size)"),
    "new_mem_brk": ("R6", "brk wrapper", "(addr, size, tid)"),
    "die_mem_brk": ("R6", "brk wrapper", "(addr, size)"),
    "copy_mem_mremap": ("R6", "mremap wrapper", "(src, dst, size)"),
    "new_mem_stack": ("R7", "instrumentation of SP changes", "(addr, size)"),
    "die_mem_stack": ("R7", "instrumentation of SP changes", "(addr, size)"),
    # Not in Table 1 but provided by real Valgrind and used by our tools:
    "pre_stack_switch": ("R7", "SP-change heuristic / client requests", "(old_sp, new_sp)"),
}


class EventRegistry:
    """Holds the per-tool event callbacks.

    Tools subscribe with ``events.track_<event>(fn)`` (mirroring Valgrind's
    ``VG_(track_...)``); the core fires them with ``events.fire_<event>``
    or, on hot paths, by reading the callback attribute directly.
    """

    def __init__(self) -> None:
        self._callbacks: Dict[str, Optional[Callable]] = {
            name: None for name in EVENT_SPECS
        }

    def track(self, name: str, fn: Callable) -> None:
        if name not in self._callbacks:
            raise KeyError(f"unknown event {name!r}")
        self._callbacks[name] = fn

    def callback(self, name: str) -> Optional[Callable]:
        return self._callbacks[name]

    def is_tracked(self, name: str) -> bool:
        return self._callbacks[name] is not None

    def fire(self, name: str, *args) -> None:
        cb = self._callbacks[name]
        if cb is not None:
            cb(*args)

    @property
    def tracks_stack_events(self) -> bool:
        """True if the tool wants SP-change instrumentation (R7)."""
        return (
            self._callbacks["new_mem_stack"] is not None
            or self._callbacks["die_mem_stack"] is not None
        )

    def tracked_events(self) -> List[str]:
        return [n for n, cb in self._callbacks.items() if cb is not None]

    def table1(self) -> List[Tuple[str, str, str, str]]:
        """Regenerate Table 1: (req, event, trigger, tool callback name)."""
        rows = []
        for name, (req, trigger, _sig) in EVENT_SPECS.items():
            cb = self._callbacks[name]
            cbname = getattr(cb, "__qualname__", repr(cb)) if cb else "-"
            rows.append((req, name, trigger, cbname))
        return rows


def __getattr__(name: str):  # pragma: no cover - convenience only
    raise AttributeError(name)


# Give EventRegistry the track_*/fire_* convenience methods.
def _add_convenience(cls) -> None:
    for event in EVENT_SPECS:
        def tracker(self, fn, _event=event):
            self.track(_event, fn)

        def firer(self, *args, _event=event):
            self.fire(_event, *args)

        tracker.__name__ = f"track_{event}"
        tracker.__doc__ = (
            f"Register a callback for {event}{EVENT_SPECS[event][2]} "
            f"({EVENT_SPECS[event][0]}; fired from {EVENT_SPECS[event][1]})."
        )
        firer.__name__ = f"fire_{event}"
        setattr(cls, f"track_{event}", tracker)
        setattr(cls, f"fire_{event}", firer)


_add_convenience(EventRegistry)
