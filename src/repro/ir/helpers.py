"""Registry of helper functions callable from IR.

Two kinds of helper exist, mirroring Valgrind:

* *clean* (pure) helpers, called via ``CCall`` expressions — condition-code
  computation is the canonical example;
* *dirty* helpers, called via ``Dirty`` statements — they may read and write
  guest state and memory (instruction emulations like ``cpuid``, and tool
  helpers like Memcheck's ``helperc_LOADV32le``).

Dirty helpers receive the execution environment as their first argument so
they can reach the ThreadState, guest memory and the running tool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional


@dataclass(frozen=True)
class Helper:
    """A registered helper function."""

    name: str
    fn: Callable[..., object]
    pure: bool
    #: Synthetic "address" for pretty-printing, like the paper's
    #: ``helperc_LOADV32le{0x38006504}``.
    address: int


class HelperRegistry:
    """Name -> helper mapping for one framework instance."""

    #: Base of the synthetic helper address space (inside the core's own
    #: load address region, as in real Valgrind).
    ADDRESS_BASE = 0x38003000

    def __init__(self) -> None:
        self._helpers: Dict[str, Helper] = {}
        self._next_addr = self.ADDRESS_BASE

    def register(self, name: str, fn: Callable[..., object], *, pure: bool) -> Helper:
        """Register *fn* under *name*; re-registering a name is an error."""
        if name in self._helpers:
            raise ValueError(f"helper {name!r} already registered")
        h = Helper(name, fn, pure, self._next_addr)
        self._next_addr += 0x10
        self._helpers[name] = h
        return h

    def register_pure(self, name: str, fn: Callable[..., object]) -> Helper:
        return self.register(name, fn, pure=True)

    def register_dirty(self, name: str, fn: Callable[..., object]) -> Helper:
        return self.register(name, fn, pure=False)

    def lookup(self, name: str) -> Helper:
        try:
            return self._helpers[name]
        except KeyError:
            raise KeyError(f"helper {name!r} not registered") from None

    def __contains__(self, name: str) -> bool:
        return name in self._helpers

    def names(self):
        return self._helpers.keys()
