"""Conversions between typed IR values and their little-endian byte form.

Used everywhere a typed value meets raw storage: the ThreadState, guest
memory, and the host CPU's spill slots.
"""

from __future__ import annotations

import struct

from .types import Ty, mask


def to_bytes(ty: Ty, value: object) -> bytes:
    """Encode *value* of type *ty* as little-endian bytes."""
    if ty is Ty.F64:
        return struct.pack("<d", value)
    if ty is Ty.F32:
        return struct.pack("<f", value)
    if ty is Ty.I1:
        return bytes([value & 1])
    assert isinstance(value, int)
    return mask(ty.bits, value).to_bytes(ty.size, "little")


def from_bytes(ty: Ty, data: bytes) -> object:
    """Decode little-endian bytes into a value of type *ty*."""
    if len(data) != ty.size:
        raise ValueError(f"{ty} needs {ty.size} bytes, got {len(data)}")
    if ty is Ty.F64:
        return struct.unpack("<d", data)[0]
    if ty is Ty.F32:
        return struct.unpack("<f", data)[0]
    v = int.from_bytes(data, "little")
    if ty is Ty.I1:
        return v & 1
    return v


def zero(ty: Ty) -> object:
    """The zero value of type *ty*."""
    return 0.0 if ty.is_float else 0
