"""The architecture-neutral, SSA-style intermediate representation.

This is the centrepiece of the D&R (disassemble-and-resynthesise) design:
guest machine code is lifted into this IR, tools instrument the IR, and the
JIT back-end resynthesises host code from it.  See the package modules:

* :mod:`repro.ir.types` — value types (I1..I64, F32/F64, V128)
* :mod:`repro.ir.ops` — the >200 primitive operations, with semantics
* :mod:`repro.ir.expr` / :mod:`repro.ir.stmt` — expression/statement nodes
* :mod:`repro.ir.block` — superblocks (IRSBs)
* :mod:`repro.ir.pretty` — the Figure-1/2-style pretty printer
* :mod:`repro.ir.validate` — type/SSA/flatness checking
* :mod:`repro.ir.interp` — executable semantics (the testing oracle)
* :mod:`repro.ir.helpers` — clean/dirty helper registry
"""

from .block import IRSB, IRTypeError
from .expr import (
    Binop,
    CCall,
    Const,
    Expr,
    Get,
    ITE,
    Load,
    RdTmp,
    Unop,
    c1,
    c8,
    c32,
    c64,
    const,
)
from .helpers import Helper, HelperRegistry
from .interp import ByteState, IRInterpreter
from .ops import OPS, IROp, get_op
from .pretty import fmt_expr, fmt_irsb, fmt_stmt
from .stmt import (
    Dirty,
    Exit,
    IMark,
    JumpKind,
    MemFx,
    NoOp,
    Put,
    StateFx,
    Stmt,
    Store,
    WrTmp,
)
from .types import Ty
from .validate import IRFlatnessError, check_flat, typecheck, validate

__all__ = [
    "IRSB",
    "IRTypeError",
    "IRFlatnessError",
    "Binop",
    "CCall",
    "Const",
    "Expr",
    "Get",
    "ITE",
    "Load",
    "RdTmp",
    "Unop",
    "c1",
    "c8",
    "c32",
    "c64",
    "const",
    "Helper",
    "HelperRegistry",
    "ByteState",
    "IRInterpreter",
    "OPS",
    "IROp",
    "get_op",
    "fmt_expr",
    "fmt_irsb",
    "fmt_stmt",
    "Dirty",
    "Exit",
    "IMark",
    "JumpKind",
    "MemFx",
    "NoOp",
    "Put",
    "StateFx",
    "Stmt",
    "Store",
    "WrTmp",
    "Ty",
    "check_flat",
    "typecheck",
    "validate",
]
