"""An IR interpreter.

This is the executable semantics of the IR.  The rest of the system — the
disassembler, the optimisation passes, and the whole JIT back-end — is
tested against it: any transformation must leave a block's observable
behaviour (guest state, memory, helper calls, successor address) unchanged
under this interpreter.

It is also used directly by the copy-free "IR-interpreting" execution mode,
which is handy for differential testing of the compiled path.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol, Tuple

from .block import IRSB
from .expr import Binop, CCall, Const, Expr, Get, ITE, Load, RdTmp, Unop
from .helpers import HelperRegistry
from .ops import get_op
from .stmt import Dirty, Exit, IMark, JumpKind, NoOp, Put, Store, WrTmp
from .types import Ty
from .values import from_bytes, to_bytes


class GuestStateAccess(Protocol):
    """What the interpreter needs from its environment."""

    def get(self, offset: int, ty: Ty) -> object: ...

    def put(self, offset: int, ty: Ty, value: object) -> None: ...

    def load(self, addr: int, ty: Ty) -> object: ...

    def store(self, addr: int, ty: Ty, value: object) -> None: ...


class ByteState:
    """A simple byte-array-backed guest state + flat memory, for testing."""

    def __init__(self, state_size: int = 1024, mem_size: int = 1 << 16) -> None:
        self.state = bytearray(state_size)
        self.mem = bytearray(mem_size)

    def get(self, offset: int, ty: Ty) -> object:
        return from_bytes(ty, bytes(self.state[offset : offset + ty.size]))

    def put(self, offset: int, ty: Ty, value: object) -> None:
        self.state[offset : offset + ty.size] = to_bytes(ty, value)

    def load(self, addr: int, ty: Ty) -> object:
        addr %= len(self.mem)
        return from_bytes(ty, bytes(self.mem[addr : addr + ty.size]))

    def store(self, addr: int, ty: Ty, value: object) -> None:
        addr %= len(self.mem)
        self.mem[addr : addr + ty.size] = to_bytes(ty, value)


class BlockResult(Tuple[int, JumpKind]):
    """(next guest address, jump kind) of a completed block."""


class IRInterpreter:
    """Executes IR superblocks against a guest-state/memory environment."""

    def __init__(self, helpers: Optional[HelperRegistry] = None, env: object = None):
        self.helpers = helpers or HelperRegistry()
        #: Opaque environment handed to dirty helpers as first argument.
        self.env = env if env is not None else self

    # -- expression evaluation ----------------------------------------------

    def eval_expr(self, e: Expr, tmps: Dict[int, object], state: GuestStateAccess) -> object:
        if isinstance(e, Const):
            return e.value
        if isinstance(e, RdTmp):
            try:
                return tmps[e.tmp]
            except KeyError:
                raise RuntimeError(f"t{e.tmp} used before definition") from None
        if isinstance(e, Get):
            return state.get(e.offset, e.ty)
        if isinstance(e, Load):
            addr = self.eval_expr(e.addr, tmps, state)
            return state.load(addr, e.ty)
        if isinstance(e, Unop):
            return get_op(e.op).apply(self.eval_expr(e.arg, tmps, state))
        if isinstance(e, Binop):
            return get_op(e.op).apply(
                self.eval_expr(e.arg1, tmps, state),
                self.eval_expr(e.arg2, tmps, state),
            )
        if isinstance(e, ITE):
            cond = self.eval_expr(e.cond, tmps, state)
            branch = e.iftrue if cond else e.iffalse
            return self.eval_expr(branch, tmps, state)
        if isinstance(e, CCall):
            h = self.helpers.lookup(e.callee)
            if not h.pure:
                raise RuntimeError(f"CCall to non-pure helper {e.callee}")
            args = [self.eval_expr(a, tmps, state) for a in e.args]
            return h.fn(*args)
        raise RuntimeError(f"cannot evaluate {e!r}")

    # -- block execution -----------------------------------------------------

    def run_block(self, sb: IRSB, state: GuestStateAccess) -> Tuple[int, JumpKind]:
        """Execute *sb*; return (next guest address, jump kind)."""
        tmps: Dict[int, object] = {}
        for s in sb.stmts:
            if isinstance(s, (NoOp, IMark)):
                continue
            if isinstance(s, WrTmp):
                tmps[s.tmp] = self.eval_expr(s.data, tmps, state)
            elif isinstance(s, Put):
                ty = sb.type_of(s.data)
                state.put(s.offset, ty, self.eval_expr(s.data, tmps, state))
            elif isinstance(s, Store):
                addr = self.eval_expr(s.addr, tmps, state)
                ty = sb.type_of(s.data)
                state.store(addr, ty, self.eval_expr(s.data, tmps, state))
            elif isinstance(s, Exit):
                if self.eval_expr(s.guard, tmps, state):
                    return s.dst, s.jumpkind
            elif isinstance(s, Dirty):
                if s.guard is not None and not self.eval_expr(s.guard, tmps, state):
                    continue
                h = self.helpers.lookup(s.callee)
                args = [self.eval_expr(a, tmps, state) for a in s.args]
                ret = h.fn(*args) if h.pure else h.fn(self.env, *args)
                if s.tmp is not None:
                    tmps[s.tmp] = ret
            else:
                raise RuntimeError(f"cannot execute {s!r}")
        nxt = self.eval_expr(sb.next, tmps, state)
        return nxt, sb.jumpkind
