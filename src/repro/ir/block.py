"""IR superblocks (IRSBs).

An IRSB is a single-entry, multiple-exit stretch of code: a type
environment for its temporaries, a statement list, and a final "next"
expression plus jump kind describing where control flows on fall-through.
Side exits in the middle are `Exit` statements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from .expr import (
    Binop,
    CCall,
    Const,
    Expr,
    Get,
    ITE,
    Load,
    RdTmp,
    Unop,
)
from .ops import get_op
from .stmt import Dirty, Exit, IMark, NoOp, Put, Stmt, Store, WrTmp
from .types import Ty


class IRTypeError(Exception):
    """Raised when an IR block fails type checking."""


@dataclass
class IRSB:
    """A superblock of IR."""

    stmts: List[Stmt] = field(default_factory=list)
    tyenv: Dict[int, Ty] = field(default_factory=dict)
    next: Optional[Expr] = None
    jumpkind: "JumpKind" = None  # type: ignore[assignment]
    #: Guest address this block was translated from (for diagnostics).
    guest_addr: int = 0

    def __post_init__(self) -> None:
        if self.jumpkind is None:
            from .stmt import JumpKind

            self.jumpkind = JumpKind.Boring

    # -- temporary management ------------------------------------------------

    def new_tmp(self, ty: Ty) -> int:
        """Allocate a fresh temporary of type *ty* and return its index."""
        t = len(self.tyenv)
        while t in self.tyenv:  # be robust to sparse tyenvs after copying
            t += 1
        self.tyenv[t] = ty
        return t

    def type_of_tmp(self, tmp: int) -> Ty:
        try:
            return self.tyenv[tmp]
        except KeyError:
            raise IRTypeError(f"t{tmp} not in type environment") from None

    def type_of(self, e: Expr) -> Ty:
        """Compute the type of an expression in this block's environment."""
        if isinstance(e, Const):
            return e.ty
        if isinstance(e, RdTmp):
            return self.type_of_tmp(e.tmp)
        if isinstance(e, Get):
            return e.ty
        if isinstance(e, Load):
            return e.ty
        if isinstance(e, Unop):
            return get_op(e.op).ret
        if isinstance(e, Binop):
            return get_op(e.op).ret
        if isinstance(e, ITE):
            return self.type_of(e.iftrue)
        if isinstance(e, CCall):
            return e.ty
        raise IRTypeError(f"cannot type {e!r}")

    # -- convenience emitters ------------------------------------------------

    def add(self, stmt: Stmt) -> None:
        self.stmts.append(stmt)

    def assign_new(self, e: Expr) -> RdTmp:
        """Emit ``tN = e`` for a fresh tN and return ``RdTmp(tN)``."""
        t = self.new_tmp(self.type_of(e))
        self.add(WrTmp(t, e))
        return RdTmp(t)

    # -- inspection ----------------------------------------------------------

    def iter_exprs(self) -> Iterator[Expr]:
        """Yield every top-level expression appearing in the block."""
        for s in self.stmts:
            if isinstance(s, Put):
                yield s.data
            elif isinstance(s, WrTmp):
                yield s.data
            elif isinstance(s, Store):
                yield s.addr
                yield s.data
            elif isinstance(s, Exit):
                yield s.guard
                if s.dst_expr is not None:
                    yield s.dst_expr
            elif isinstance(s, Dirty):
                if s.guard is not None:
                    yield s.guard
                yield from s.args
                for fx in s.mem_fx:
                    yield fx.addr
        if self.next is not None:
            yield self.next

    def num_real_stmts(self) -> int:
        """Statements excluding NoOps (the paper counts statements this way)."""
        return sum(1 for s in self.stmts if not isinstance(s, NoOp))

    def copy(self) -> "IRSB":
        """Shallow-ish copy: fresh lists/dicts, shared immutable nodes."""
        sb = IRSB(
            stmts=list(self.stmts),
            tyenv=dict(self.tyenv),
            next=self.next,
            jumpkind=self.jumpkind,
            guest_addr=self.guest_addr,
        )
        return sb
