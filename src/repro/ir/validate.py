"""IR sanity checking: type checking and flatness checking.

Running the validator after every pipeline phase is cheap insurance; the
paper notes that D&R is "more verifiable" because IR errors cause visibly
wrong behaviour — a validator catches most of them before they run.
"""

from __future__ import annotations

from typing import Optional, Set

from .block import IRSB, IRTypeError
from .expr import Binop, CCall, Const, Expr, Get, ITE, Load, RdTmp, Unop
from .ops import get_op
from .stmt import Dirty, Exit, IMark, NoOp, Put, Stmt, Store, TraceMark, WrTmp
from .types import Ty, fits


class IRFlatnessError(Exception):
    """Raised when supposedly-flat IR contains nested expressions."""


def typecheck_expr(sb: IRSB, e: Expr) -> Ty:
    """Type check an expression, returning its type."""
    if isinstance(e, Const):
        if not fits(e.ty, e.value):
            raise IRTypeError(f"bad constant {e.value!r}:{e.ty}")
        return e.ty
    if isinstance(e, RdTmp):
        return sb.type_of_tmp(e.tmp)
    if isinstance(e, Get):
        if e.offset < 0:
            raise IRTypeError(f"negative GET offset {e.offset}")
        return e.ty
    if isinstance(e, Load):
        addr_ty = typecheck_expr(sb, e.addr)
        if addr_ty is not Ty.I32:
            raise IRTypeError(f"load address has type {addr_ty}, expected I32")
        return e.ty
    if isinstance(e, Unop):
        op = get_op(e.op)
        got = typecheck_expr(sb, e.arg)
        if got is not op.args[0]:
            raise IRTypeError(f"{e.op}: arg has type {got}, expected {op.args[0]}")
        return op.ret
    if isinstance(e, Binop):
        op = get_op(e.op)
        got1 = typecheck_expr(sb, e.arg1)
        got2 = typecheck_expr(sb, e.arg2)
        if (got1, got2) != op.args:
            raise IRTypeError(
                f"{e.op}: args have types ({got1},{got2}), expected {op.args}"
            )
        return op.ret
    if isinstance(e, ITE):
        if typecheck_expr(sb, e.cond) is not Ty.I1:
            raise IRTypeError("ITE condition must be I1")
        t1 = typecheck_expr(sb, e.iftrue)
        t2 = typecheck_expr(sb, e.iffalse)
        if t1 is not t2:
            raise IRTypeError(f"ITE branches disagree: {t1} vs {t2}")
        return t1
    if isinstance(e, CCall):
        for a in e.args:
            typecheck_expr(sb, a)
        return e.ty
    raise IRTypeError(f"unknown expression node {e!r}")


def typecheck(sb: IRSB) -> None:
    """Type check a whole superblock.

    Also enforces SSA form: each temporary is written at most once and is
    written before any read (in statement order).
    """
    written: Set[int] = set()

    def check_reads(e: Expr) -> None:
        if isinstance(e, RdTmp) and e.tmp not in written:
            raise IRTypeError(f"t{e.tmp} read before write")
        for c in e.children():
            check_reads(c)

    for s in sb.stmts:
        if isinstance(s, (NoOp, IMark, TraceMark)):
            continue
        if isinstance(s, WrTmp):
            check_reads(s.data)
            got = typecheck_expr(sb, s.data)
            want = sb.type_of_tmp(s.tmp)
            if got is not want:
                raise IRTypeError(f"t{s.tmp}: assigned {got}, declared {want}")
            if s.tmp in written:
                raise IRTypeError(f"t{s.tmp} written more than once (SSA violation)")
            written.add(s.tmp)
        elif isinstance(s, Put):
            check_reads(s.data)
            typecheck_expr(sb, s.data)
        elif isinstance(s, Store):
            check_reads(s.addr)
            check_reads(s.data)
            if typecheck_expr(sb, s.addr) is not Ty.I32:
                raise IRTypeError("store address must be I32")
            typecheck_expr(sb, s.data)
        elif isinstance(s, Exit):
            check_reads(s.guard)
            if typecheck_expr(sb, s.guard) is not Ty.I1:
                raise IRTypeError("exit guard must be I1")
            if s.dst_expr is not None:
                check_reads(s.dst_expr)
                if typecheck_expr(sb, s.dst_expr) is not Ty.I32:
                    raise IRTypeError("exit target expression must be I32")
        elif isinstance(s, Dirty):
            if s.guard is not None:
                check_reads(s.guard)
                if typecheck_expr(sb, s.guard) is not Ty.I1:
                    raise IRTypeError("dirty guard must be I1")
            for a in s.args:
                check_reads(a)
                typecheck_expr(sb, a)
            for fx in s.mem_fx:
                check_reads(fx.addr)
                typecheck_expr(sb, fx.addr)
            if (s.tmp is None) != (s.retty is None):
                raise IRTypeError("dirty tmp and retty must be set together")
            if s.tmp is not None:
                if sb.type_of_tmp(s.tmp) is not s.retty:
                    raise IRTypeError("dirty return type mismatch")
                if s.tmp in written:
                    raise IRTypeError(f"t{s.tmp} written more than once")
                written.add(s.tmp)
        else:
            raise IRTypeError(f"unknown statement {s!r}")
    if sb.next is None:
        raise IRTypeError("block has no next expression")
    check_reads(sb.next)
    if typecheck_expr(sb, sb.next) is not Ty.I32:
        raise IRTypeError("next expression must be I32 (a guest address)")


def _flat_operand(e: Expr) -> bool:
    return e.is_atom()


def check_flat_expr(e: Expr) -> None:
    """A flat expression has only atoms (Const/RdTmp) as operands."""
    for c in e.children():
        if not _flat_operand(c):
            raise IRFlatnessError(f"nested expression operand: {c!r} inside {e!r}")


def check_flat(sb: IRSB) -> None:
    """Check that a block is in flat form.

    Flat form: every statement's expressions have atom operands, and the
    statement-level expressions themselves are at most one operation deep.
    PUT/Store data and addresses must be atoms (this is what makes
    instrumentation easy — every intermediate value is nameable).
    """
    for s in sb.stmts:
        if isinstance(s, WrTmp):
            check_flat_expr(s.data)
        elif isinstance(s, Put):
            if not s.data.is_atom():
                raise IRFlatnessError(f"PUT data not an atom: {s!r}")
        elif isinstance(s, Store):
            if not s.addr.is_atom() or not s.data.is_atom():
                raise IRFlatnessError(f"store operands not atoms: {s!r}")
        elif isinstance(s, Exit):
            if not s.guard.is_atom():
                raise IRFlatnessError(f"exit guard not an atom: {s!r}")
            if s.dst_expr is not None and not s.dst_expr.is_atom():
                raise IRFlatnessError(f"exit target not an atom: {s!r}")
        elif isinstance(s, Dirty):
            for a in s.args:
                if not a.is_atom():
                    raise IRFlatnessError(f"dirty arg not an atom: {s!r}")
            if s.guard is not None and not s.guard.is_atom():
                raise IRFlatnessError(f"dirty guard not an atom: {s!r}")
            for fx in s.mem_fx:
                if not fx.addr.is_atom():
                    raise IRFlatnessError(f"dirty mem-fx addr not an atom: {s!r}")
    if sb.next is not None and not sb.next.is_atom():
        raise IRFlatnessError(f"next not an atom: {sb.next!r}")


def validate(sb: IRSB, *, flat: bool = False) -> None:
    """Full validation: typecheck, SSA check, and optionally flatness."""
    typecheck(sb)
    if flat:
        check_flat(sb)
