"""The primitive operations of the IR.

Valgrind's IR supports "more than 200 primitive arithmetic/logical
operations" covering the standard integer, FP and SIMD operations at
different sizes.  This module defines our equivalent table.  Every op has

* a name (``Add32``, ``CmpLT32S``, ``Shl64``, ``Add8x16``, ...),
* a result type and argument types, and
* an executable semantic function, used by the IR interpreter (the oracle
  the rest of the system is tested against) and by the constant folder.

Integer values are unsigned Python ints masked to their width; signedness
lives in the op, not the value.  V128 values are 128-bit unsigned ints
carved into lanes by the SIMD ops.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from .types import Ty, mask, sign_extend


@dataclass(frozen=True)
class IROp:
    """A primitive IR operation."""

    name: str
    ret: Ty
    args: Tuple[Ty, ...]
    fn: Callable[..., object]

    @property
    def arity(self) -> int:
        return len(self.args)

    def apply(self, *vals: object) -> object:
        """Evaluate the op on concrete values (used by interp/constfold)."""
        if len(vals) != self.arity:
            raise TypeError(f"{self.name} expects {self.arity} args, got {len(vals)}")
        return self.fn(*vals)

    def __repr__(self) -> str:
        return f"<IROp {self.name}>"


#: Registry of all primitive ops, keyed by name.
OPS: Dict[str, IROp] = {}


def _register(name: str, ret: Ty, args: Tuple[Ty, ...], fn: Callable[..., object]) -> None:
    if name in OPS:
        raise ValueError(f"duplicate op {name}")
    OPS[name] = IROp(name, ret, args, fn)


def get_op(name: str) -> IROp:
    """Look up an op by name, raising KeyError with a helpful message."""
    try:
        return OPS[name]
    except KeyError:
        raise KeyError(f"unknown IR op: {name!r}") from None


# ---------------------------------------------------------------------------
# Integer ALU ops, one per width.
# ---------------------------------------------------------------------------

_INT_WIDTHS = (8, 16, 32, 64)
_ITY = {1: Ty.I1, 8: Ty.I8, 16: Ty.I16, 32: Ty.I32, 64: Ty.I64}


def _mk_binop(name: str, w: int, fn: Callable[[int, int], int]) -> None:
    t = _ITY[w]
    _register(f"{name}{w}", t, (t, t), lambda a, b, w=w, fn=fn: mask(w, fn(a, b)))


def _mk_shift(name: str, w: int, fn: Callable[[int, int, int], int]) -> None:
    # Shift amounts are I8, as in Valgrind.  Amounts >= width give 0 for
    # logical shifts and the sign-fill for arithmetic shifts (the semantics
    # are fully defined, unlike real x86).
    t = _ITY[w]
    _register(f"{name}{w}", t, (t, Ty.I8), lambda a, s, w=w, fn=fn: mask(w, fn(a, s, w)))


def _shl(a: int, s: int, w: int) -> int:
    return a << s if s < w else 0


def _shr(a: int, s: int, w: int) -> int:
    return a >> s if s < w else 0


def _sar(a: int, s: int, w: int) -> int:
    sa = sign_extend(w, a)
    return sa >> min(s, w - 1)


for _w in _INT_WIDTHS:
    _mk_binop("Add", _w, lambda a, b: a + b)
    _mk_binop("Sub", _w, lambda a, b: a - b)
    _mk_binop("Mul", _w, lambda a, b: a * b)
    _mk_binop("And", _w, lambda a, b: a & b)
    _mk_binop("Or", _w, lambda a, b: a | b)
    _mk_binop("Xor", _w, lambda a, b: a ^ b)
    _mk_shift("Shl", _w, _shl)
    _mk_shift("Shr", _w, _shr)
    _mk_shift("Sar", _w, _sar)

# And1/Or1/Xor1 on flags.
_register("And1", Ty.I1, (Ty.I1, Ty.I1), lambda a, b: a & b)
_register("Or1", Ty.I1, (Ty.I1, Ty.I1), lambda a, b: a | b)
_register("Xor1", Ty.I1, (Ty.I1, Ty.I1), lambda a, b: a ^ b)
_register("Not1", Ty.I1, (Ty.I1,), lambda a: a ^ 1)


def _mk_unop(name: str, w: int, fn: Callable[[int], int]) -> None:
    t = _ITY[w]
    _register(f"{name}{w}", t, (t,), lambda a, w=w, fn=fn: mask(w, fn(a)))


for _w in _INT_WIDTHS:
    _mk_unop("Not", _w, lambda a: ~a)
    _mk_unop("Neg", _w, lambda a: -a)

# Count-leading/trailing-zeros and popcount (defined at 0: Clz(0) == width).
for _w in (32, 64):
    _mk_unop("Clz", _w, lambda a, w=_w: w - a.bit_length())
    _mk_unop("Ctz", _w, lambda a, w=_w: (a & -a).bit_length() - 1 if a else w)
    _mk_unop("Popcnt", _w, lambda a: bin(a).count("1"))


# ---------------------------------------------------------------------------
# Integer comparisons (result I1).
# ---------------------------------------------------------------------------


def _mk_cmp(name: str, w: int, fn: Callable[[int, int], bool]) -> None:
    t = _ITY[w]
    _register(f"{name}{w}", Ty.I1, (t, t), lambda a, b, fn=fn: int(fn(a, b)))


def _mk_scmp(name: str, w: int, fn: Callable[[int, int], bool]) -> None:
    t = _ITY[w]
    _register(
        f"{name}{w}S",
        Ty.I1,
        (t, t),
        lambda a, b, w=w, fn=fn: int(fn(sign_extend(w, a), sign_extend(w, b))),
    )


for _w in _INT_WIDTHS:
    _mk_cmp("CmpEQ", _w, lambda a, b: a == b)
    _mk_cmp("CmpNE", _w, lambda a, b: a != b)
    t = _ITY[_w]
    _register(f"CmpLT{_w}U", Ty.I1, (t, t), lambda a, b: int(a < b))
    _register(f"CmpLE{_w}U", Ty.I1, (t, t), lambda a, b: int(a <= b))
    _mk_scmp("CmpLT", _w, lambda a, b: a < b)
    _mk_scmp("CmpLE", _w, lambda a, b: a <= b)
    _register(f"CmpNEZ{_w}", Ty.I1, (t,), lambda a: int(a != 0))
    _register(f"CmpEQZ{_w}", Ty.I1, (t,), lambda a: int(a == 0))


# ---------------------------------------------------------------------------
# Widening, narrowing and half-combining conversions.
# ---------------------------------------------------------------------------

_register("1Uto8", Ty.I8, (Ty.I1,), lambda a: a)
_register("1Uto32", Ty.I32, (Ty.I1,), lambda a: a)
_register("1Uto64", Ty.I64, (Ty.I1,), lambda a: a)
_register("1Sto8", Ty.I8, (Ty.I1,), lambda a: 0xFF if a else 0)
_register("1Sto16", Ty.I16, (Ty.I1,), lambda a: 0xFFFF if a else 0)
_register("1Sto32", Ty.I32, (Ty.I1,), lambda a: 0xFFFFFFFF if a else 0)
_register("1Sto64", Ty.I64, (Ty.I1,), lambda a: 0xFFFFFFFFFFFFFFFF if a else 0)

for _src in (8, 16, 32):
    for _dst in (16, 32, 64):
        if _dst <= _src:
            continue
        st, dt = _ITY[_src], _ITY[_dst]
        _register(f"{_src}Uto{_dst}", dt, (st,), lambda a: a)
        _register(
            f"{_src}Sto{_dst}",
            dt,
            (st,),
            lambda a, s=_src, d=_dst: mask(d, sign_extend(s, a)),
        )

for _src in (16, 32, 64):
    for _dst in (1, 8, 16, 32):
        if _dst >= _src:
            continue
        st, dt = _ITY[_src], _ITY[_dst]
        _register(f"{_src}to{_dst}", dt, (st,), lambda a, d=_dst: mask(d, a))

_register("64HIto32", Ty.I32, (Ty.I64,), lambda a: (a >> 32) & 0xFFFFFFFF)
_register("32HIto16", Ty.I16, (Ty.I32,), lambda a: (a >> 16) & 0xFFFF)
_register("16HIto8", Ty.I8, (Ty.I16,), lambda a: (a >> 8) & 0xFF)
_register("32HLto64", Ty.I64, (Ty.I32, Ty.I32), lambda hi, lo: (hi << 32) | lo)
_register("16HLto32", Ty.I32, (Ty.I16, Ty.I16), lambda hi, lo: (hi << 16) | lo)
_register("8HLto16", Ty.I16, (Ty.I8, Ty.I8), lambda hi, lo: (hi << 8) | lo)


# ---------------------------------------------------------------------------
# Widening multiplies, division and modulus.
# ---------------------------------------------------------------------------


def _sdiv(a: int, b: int) -> int:
    # Round towards zero, as virtually all hardware does.
    if b == 0:
        raise ZeroDivisionError("IR signed division by zero")
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _smod(a: int, b: int) -> int:
    return a - _sdiv(a, b) * b


for _w in (8, 16, 32):
    _dw = _w * 2
    st, dt = _ITY[_w], _ITY[_dw]
    _register(f"MullU{_w}", dt, (st, st), lambda a, b: a * b)
    _register(
        f"MullS{_w}",
        dt,
        (st, st),
        lambda a, b, w=_w, d=_dw: mask(d, sign_extend(w, a) * sign_extend(w, b)),
    )

for _w in (32, 64):
    t = _ITY[_w]
    _register(f"DivU{_w}", t, (t, t), lambda a, b: a // b if b else _div0())
    _register(
        f"DivS{_w}",
        t,
        (t, t),
        lambda a, b, w=_w: mask(w, _sdiv(sign_extend(w, a), sign_extend(w, b))),
    )
    _register(f"ModU{_w}", t, (t, t), lambda a, b: a % b if b else _div0())
    _register(
        f"ModS{_w}",
        t,
        (t, t),
        lambda a, b, w=_w: mask(w, _smod(sign_extend(w, a), sign_extend(w, b))),
    )


def _div0() -> int:
    raise ZeroDivisionError("IR division by zero")


# ---------------------------------------------------------------------------
# Floating point.  F32/F64 values are Python floats; reinterpret ops move
# their IEEE-754 bit patterns into the integer domain.
# ---------------------------------------------------------------------------

import struct


def _f64_bits(v: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", v))[0]


def _bits_f64(b: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", b & 0xFFFFFFFFFFFFFFFF))[0]


def _f32_bits(v: float) -> int:
    return struct.unpack("<I", struct.pack("<f", v))[0]


def _bits_f32(b: int) -> float:
    return struct.unpack("<f", struct.pack("<I", b & 0xFFFFFFFF))[0]


def _round_f32(v: float) -> float:
    """Round a Python float to F32 precision."""
    try:
        return _bits_f32(_f32_bits(v))
    except OverflowError:
        return math.inf if v > 0 else -math.inf


def _fp_add(a: float, b: float) -> float:
    return a + b


def _fp_sub(a: float, b: float) -> float:
    return a - b


def _fp_mul(a: float, b: float) -> float:
    return a * b


def _fp_div(a: float, b: float) -> float:
    if b == 0.0:
        if a == 0.0 or math.isnan(a):
            return math.nan
        return math.inf if (a > 0) == (math.copysign(1.0, b) > 0) else -math.inf
    return a / b


for _name, _fn in (("Add", _fp_add), ("Sub", _fp_sub), ("Mul", _fp_mul), ("Div", _fp_div)):
    _register(f"{_name}F64", Ty.F64, (Ty.F64, Ty.F64), _fn)
    _register(
        f"{_name}F32", Ty.F32, (Ty.F32, Ty.F32), lambda a, b, fn=_fn: _round_f32(fn(a, b))
    )

_register("NegF64", Ty.F64, (Ty.F64,), lambda a: -a)
_register("NegF32", Ty.F32, (Ty.F32,), lambda a: -a)
_register("AbsF64", Ty.F64, (Ty.F64,), abs)
_register("AbsF32", Ty.F32, (Ty.F32,), abs)
_register("SqrtF64", Ty.F64, (Ty.F64,), lambda a: math.sqrt(a) if a >= 0 else math.nan)
_register(
    "SqrtF32", Ty.F32, (Ty.F32,), lambda a: _round_f32(math.sqrt(a)) if a >= 0 else math.nan
)

# CmpF64 uses Valgrind's IRCmpF64Result encoding: LT=0x01, GT=0x00 is *not*
# the real encoding; Valgrind uses LT=0x01, GT=0x00... we follow the real
# one: 0x00 -> LT, 0x01 -> GT is wrong either way round, so be explicit:
# UN=0x45, EQ=0x40, LT=0x01, GT=0x00.
F64CMP_LT = 0x01
F64CMP_GT = 0x00
F64CMP_EQ = 0x40
F64CMP_UN = 0x45


def _cmp_f64(a: float, b: float) -> int:
    if math.isnan(a) or math.isnan(b):
        return F64CMP_UN
    if a < b:
        return F64CMP_LT
    if a > b:
        return F64CMP_GT
    return F64CMP_EQ


_register("CmpF64", Ty.I32, (Ty.F64, Ty.F64), _cmp_f64)
_register("CmpF32", Ty.I32, (Ty.F32, Ty.F32), _cmp_f64)


def _f_to_i(v: float, w: int, signed: bool) -> int:
    """Convert float to integer with truncation and x86-style saturation."""
    if math.isnan(v):
        return mask(w, 1 << (w - 1)) if signed else 0
    if math.isinf(v):
        if signed:
            return mask(w, (1 << (w - 1)) - 1 if v > 0 else 1 << (w - 1))
        return mask(w, (1 << w) - 1 if v > 0 else 0)
    v = math.trunc(v)
    if signed:
        lo, hi = -(1 << (w - 1)), (1 << (w - 1)) - 1
    else:
        lo, hi = 0, (1 << w) - 1
    v = max(lo, min(hi, v))
    return mask(w, int(v))


_register("I32StoF64", Ty.F64, (Ty.I32,), lambda a: float(sign_extend(32, a)))
_register("I32UtoF64", Ty.F64, (Ty.I32,), float)
_register("I64StoF64", Ty.F64, (Ty.I64,), lambda a: float(sign_extend(64, a)))
_register("I32StoF32", Ty.F32, (Ty.I32,), lambda a: _round_f32(float(sign_extend(32, a))))
_register("F64toI32S", Ty.I32, (Ty.F64,), lambda a: _f_to_i(a, 32, True))
_register("F64toI32U", Ty.I32, (Ty.F64,), lambda a: _f_to_i(a, 32, False))
_register("F64toI64S", Ty.I64, (Ty.F64,), lambda a: _f_to_i(a, 64, True))
_register("F32toI32S", Ty.I32, (Ty.F32,), lambda a: _f_to_i(a, 32, True))
_register("F32toF64", Ty.F64, (Ty.F32,), lambda a: a)
_register("F64toF32", Ty.F32, (Ty.F64,), _round_f32)
_register("ReinterpF64asI64", Ty.I64, (Ty.F64,), _f64_bits)
_register("ReinterpI64asF64", Ty.F64, (Ty.I64,), _bits_f64)
_register("ReinterpF32asI32", Ty.I32, (Ty.F32,), _f32_bits)
_register("ReinterpI32asF32", Ty.F32, (Ty.I32,), _bits_f32)
_register("MinF64", Ty.F64, (Ty.F64, Ty.F64), min)
_register("MaxF64", Ty.F64, (Ty.F64, Ty.F64), max)


# ---------------------------------------------------------------------------
# 128-bit SIMD.  V128 values are 128-bit unsigned ints; xNxM ops treat them
# as M lanes of N bits each.
# ---------------------------------------------------------------------------


def _lanes(v: int, lane_bits: int) -> list:
    n = 128 // lane_bits
    m = (1 << lane_bits) - 1
    return [(v >> (i * lane_bits)) & m for i in range(n)]


def _from_lanes(lanes: list, lane_bits: int) -> int:
    v = 0
    for i, lane in enumerate(lanes):
        v |= (lane & ((1 << lane_bits) - 1)) << (i * lane_bits)
    return v


def _mk_simd_binop(name: str, lane_bits: int, fn: Callable[[int, int], int]) -> None:
    n = 128 // lane_bits
    _register(
        f"{name}{lane_bits}x{n}",
        Ty.V128,
        (Ty.V128, Ty.V128),
        lambda a, b, lb=lane_bits, fn=fn: _from_lanes(
            [mask(lb, fn(x, y)) for x, y in zip(_lanes(a, lb), _lanes(b, lb))], lb
        ),
    )


def _sat_u(lb: int, v: int) -> int:
    return max(0, min((1 << lb) - 1, v))


def _sat_s(lb: int, v: int) -> int:
    return mask(lb, max(-(1 << (lb - 1)), min((1 << (lb - 1)) - 1, v)))


for _lb in (8, 16, 32, 64):
    _mk_simd_binop("Add", _lb, lambda a, b: a + b)
    _mk_simd_binop("Sub", _lb, lambda a, b: a - b)
    _mk_simd_binop("CmpEQ", _lb, lambda a, b, lb=_lb: (1 << lb) - 1 if a == b else 0)
    n = 128 // _lb
    _register(
        f"CmpGT{_lb}Sx{n}",
        Ty.V128,
        (Ty.V128, Ty.V128),
        lambda a, b, lb=_lb: _from_lanes(
            [
                ((1 << lb) - 1) if sign_extend(lb, x) > sign_extend(lb, y) else 0
                for x, y in zip(_lanes(a, lb), _lanes(b, lb))
            ],
            lb,
        ),
    )

for _lb in (8, 16):
    n = 128 // _lb
    _register(
        f"QAddU{_lb}x{n}",
        Ty.V128,
        (Ty.V128, Ty.V128),
        lambda a, b, lb=_lb: _from_lanes(
            [_sat_u(lb, x + y) for x, y in zip(_lanes(a, lb), _lanes(b, lb))], lb
        ),
    )
    _register(
        f"QSubU{_lb}x{n}",
        Ty.V128,
        (Ty.V128, Ty.V128),
        lambda a, b, lb=_lb: _from_lanes(
            [_sat_u(lb, x - y) for x, y in zip(_lanes(a, lb), _lanes(b, lb))], lb
        ),
    )
    _register(
        f"QAddS{_lb}x{n}",
        Ty.V128,
        (Ty.V128, Ty.V128),
        lambda a, b, lb=_lb: _from_lanes(
            [
                _sat_s(lb, sign_extend(lb, x) + sign_extend(lb, y))
                for x, y in zip(_lanes(a, lb), _lanes(b, lb))
            ],
            lb,
        ),
    )

_mk_simd_binop("Mul", 16, lambda a, b: a * b)
_mk_simd_binop("Mul", 32, lambda a, b: a * b)
_mk_simd_binop("MinU", 8, min)
_mk_simd_binop("MaxU", 8, max)
_mk_simd_binop("Avg", 8, lambda a, b: (a + b + 1) >> 1)

_V128_MASK = (1 << 128) - 1
_register("AndV128", Ty.V128, (Ty.V128, Ty.V128), lambda a, b: a & b)
_register("OrV128", Ty.V128, (Ty.V128, Ty.V128), lambda a, b: a | b)
_register("XorV128", Ty.V128, (Ty.V128, Ty.V128), lambda a, b: a ^ b)
_register("NotV128", Ty.V128, (Ty.V128,), lambda a: (~a) & _V128_MASK)
_register("CmpNEZV128", Ty.I1, (Ty.V128,), lambda a: int(a != 0))

for _lb in (16, 32, 64):
    n = 128 // _lb
    _register(
        f"ShlN{_lb}x{n}",
        Ty.V128,
        (Ty.V128, Ty.I8),
        lambda a, s, lb=_lb: _from_lanes(
            [_shl(x, s, lb) for x in _lanes(a, lb)], lb
        ),
    )
    _register(
        f"ShrN{_lb}x{n}",
        Ty.V128,
        (Ty.V128, Ty.I8),
        lambda a, s, lb=_lb: _from_lanes(
            [_shr(x, s, lb) for x in _lanes(a, lb)], lb
        ),
    )

# Lane broadcast (splat) ops: replicate a scalar into every lane.
_register("Dup8x16", Ty.V128, (Ty.I8,), lambda a: _from_lanes([a] * 16, 8))
_register("Dup16x8", Ty.V128, (Ty.I16,), lambda a: _from_lanes([a] * 8, 16))
_register("Dup32x4", Ty.V128, (Ty.I32,), lambda a: _from_lanes([a] * 4, 32))

_register("64HLtoV128", Ty.V128, (Ty.I64, Ty.I64), lambda hi, lo: (hi << 64) | lo)
_register("V128HIto64", Ty.I64, (Ty.V128,), lambda a: (a >> 64) & 0xFFFFFFFFFFFFFFFF)
_register("V128to64", Ty.I64, (Ty.V128,), lambda a: a & 0xFFFFFFFFFFFFFFFF)
_register("32UtoV128", Ty.V128, (Ty.I32,), lambda a: a)
_register("64UtoV128", Ty.V128, (Ty.I64,), lambda a: a)
_register("V128to32", Ty.I32, (Ty.V128,), lambda a: a & 0xFFFFFFFF)
_register(
    "InterleaveLO8x16",
    Ty.V128,
    (Ty.V128, Ty.V128),
    lambda a, b: _from_lanes(
        [x for pair in zip(_lanes(b, 8)[:8], _lanes(a, 8)[:8]) for x in pair], 8
    ),
)
_register(
    "InterleaveHI8x16",
    Ty.V128,
    (Ty.V128, Ty.V128),
    lambda a, b: _from_lanes(
        [x for pair in zip(_lanes(b, 8)[8:], _lanes(a, 8)[8:]) for x in pair], 8
    ),
)

# Rotates, occasionally useful for crypto-ish workloads.
for _w in (32, 64):
    t = _ITY[_w]
    _register(
        f"Rol{_w}",
        t,
        (t, Ty.I8),
        lambda a, s, w=_w: mask(w, (a << (s % w)) | (a >> (w - s % w))) if s % w else a,
    )
    _register(
        f"Ror{_w}",
        t,
        (t, Ty.I8),
        lambda a, s, w=_w: mask(w, (a >> (s % w)) | (a << (w - s % w))) if s % w else a,
    )


def op_exists(name: str) -> bool:
    return name in OPS


#: Number of primitive ops — the paper notes "more than 200" are needed.
NUM_OPS = len(OPS)
