"""Pretty printer for the IR, in the style of the paper's Figures 1 and 2.

Example output::

    1:  ------ IMark(0x24F275, 7) ------
    2:  t0 = Add32(Add32(GET:I32(12),Shl32(GET:I32(0),0x2:I8)),0xFFFFC0CC:I32)
    3:  PUT(0) = LDle:I32(t0)
    ...
    goto {Boring} t4
"""

from __future__ import annotations

from typing import List

from .block import IRSB
from .expr import Binop, CCall, Const, Expr, Get, ITE, Load, RdTmp, Unop
from .stmt import Dirty, Exit, IMark, NoOp, Put, Stmt, Store, WrTmp
from .types import Ty


def fmt_const(c: Const) -> str:
    if c.ty.is_float:
        return f"{c.value!r}:{c.ty.value}"
    if c.ty is Ty.I1:
        return f"{c.value}:I1"
    return f"0x{c.value:X}:{c.ty.value}"


def fmt_expr(e: Expr) -> str:
    """Render an expression (tree or flat) as a single line."""
    if isinstance(e, Const):
        return fmt_const(e)
    if isinstance(e, RdTmp):
        return f"t{e.tmp}"
    if isinstance(e, Get):
        return f"GET:{e.ty.value}({e.offset})"
    if isinstance(e, Load):
        return f"LDle:{e.ty.value}({fmt_expr(e.addr)})"
    if isinstance(e, Unop):
        return f"{e.op}({fmt_expr(e.arg)})"
    if isinstance(e, Binop):
        return f"{e.op}({fmt_expr(e.arg1)},{fmt_expr(e.arg2)})"
    if isinstance(e, ITE):
        return f"ITE({fmt_expr(e.cond)},{fmt_expr(e.iftrue)},{fmt_expr(e.iffalse)})"
    if isinstance(e, CCall):
        args = ",".join(fmt_expr(a) for a in e.args)
        return f"{e.callee}:{e.ty.value}({args})"
    return repr(e)


def fmt_stmt(s: Stmt) -> str:
    """Render a statement as a single line."""
    if isinstance(s, NoOp):
        return "IR-NoOp"
    if isinstance(s, IMark):
        return f"------ IMark(0x{s.addr:X}, {s.length}) ------"
    if isinstance(s, Put):
        return f"PUT({s.offset}) = {fmt_expr(s.data)}"
    if isinstance(s, WrTmp):
        return f"t{s.tmp} = {fmt_expr(s.data)}"
    if isinstance(s, Store):
        return f"STle({fmt_expr(s.addr)}) = {fmt_expr(s.data)}"
    if isinstance(s, Exit):
        return f"if ({fmt_expr(s.guard)}) goto {{{s.jumpkind.value}}} 0x{s.dst:X}"
    if isinstance(s, Dirty):
        parts: List[str] = ["DIRTY"]
        parts.append(fmt_expr(s.guard) if s.guard is not None else "1:I1")
        for fx in s.state_fx:
            kind = "WrFX" if fx.write else "RdFX"
            parts.append(f"{kind}-gst({fx.offset},{fx.size})")
        for fx in s.mem_fx:
            kind = "WrFX" if fx.write else "RdFX"
            parts.append(f"{kind}-mem({fmt_expr(fx.addr)},{fx.size})")
        args = ",".join(fmt_expr(a) for a in s.args)
        call = f"{s.callee}({args})"
        if s.tmp is not None:
            return f"t{s.tmp} = " + " ".join(parts) + f" ::: {call}"
        return " ".join(parts) + f" ::: {call}"
    return repr(s)


def fmt_irsb(sb: IRSB, *, number: bool = True, skip_noops: bool = True) -> str:
    """Render a whole superblock, numbered like the paper's figures."""
    lines: List[str] = []
    n = 0
    for s in sb.stmts:
        if skip_noops and isinstance(s, NoOp):
            continue
        n += 1
        prefix = f"{n:>3}:  " if number else "  "
        lines.append(prefix + fmt_stmt(s))
    nxt = fmt_expr(sb.next) if sb.next is not None else "<none>"
    lines.append(f"     goto {{{sb.jumpkind.value}}} {nxt}")
    return "\n".join(lines)
