"""IR expressions.

Expressions are pure (side-effect free) value computations: constants,
temporary reads, guest-state reads (GET), memory loads, applications of
primitive ops, if-then-else, and calls to pure C helper functions.

In *tree IR* expressions may be arbitrarily nested trees; in *flat IR*
every operand of a non-trivial expression must be an atom (a constant or a
temporary read).  The same classes serve both forms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from .ops import IROp, get_op
from .types import Ty, fits


class Expr:
    """Base class for IR expressions."""

    __slots__ = ()

    def is_atom(self) -> bool:
        """An atom is a constant or a temporary read (flat-IR operand)."""
        return isinstance(self, (Const, RdTmp))

    def children(self) -> Tuple["Expr", ...]:
        return ()


@dataclass(frozen=True)
class Const(Expr):
    """A typed literal constant."""

    ty: Ty
    value: object

    def __post_init__(self) -> None:
        if not fits(self.ty, self.value):
            raise ValueError(f"constant {self.value!r} does not fit {self.ty}")


@dataclass(frozen=True)
class RdTmp(Expr):
    """Read of an SSA temporary."""

    tmp: int


@dataclass(frozen=True)
class Get(Expr):
    """Read of the guest state (ThreadState) at a byte offset."""

    offset: int
    ty: Ty


@dataclass(frozen=True)
class Load(Expr):
    """Little-endian load of *ty* from guest memory at address *addr*."""

    ty: Ty
    addr: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.addr,)


@dataclass(frozen=True)
class Unop(Expr):
    """Application of a 1-ary primitive op."""

    op: str
    arg: Expr

    def __post_init__(self) -> None:
        if get_op(self.op).arity != 1:
            raise ValueError(f"{self.op} is not a unop")

    @property
    def irop(self) -> IROp:
        return get_op(self.op)

    def children(self) -> Tuple[Expr, ...]:
        return (self.arg,)


@dataclass(frozen=True)
class Binop(Expr):
    """Application of a 2-ary primitive op."""

    op: str
    arg1: Expr
    arg2: Expr

    def __post_init__(self) -> None:
        if get_op(self.op).arity != 2:
            raise ValueError(f"{self.op} is not a binop")

    @property
    def irop(self) -> IROp:
        return get_op(self.op)

    def children(self) -> Tuple[Expr, ...]:
        return (self.arg1, self.arg2)


@dataclass(frozen=True)
class ITE(Expr):
    """If-then-else: ``cond ? iftrue : iffalse`` with an I1 condition."""

    cond: Expr
    iftrue: Expr
    iffalse: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.cond, self.iftrue, self.iffalse)


@dataclass(frozen=True)
class CCall(Expr):
    """Call to a *pure* helper function returning a value of type *ty*.

    The callee is identified by name and looked up in the helper registry at
    execution time; ``regparms_read`` lists (offset, size) pairs of guest
    state the helper reads, so instrumenters can see through the call (this
    is how platform-specific condition-code helpers stay analysable).
    """

    ty: Ty
    callee: str
    args: Tuple[Expr, ...]
    regparms_read: Tuple[Tuple[int, int], ...] = ()

    def children(self) -> Tuple[Expr, ...]:
        return self.args


def const(ty: Ty, value: object) -> Const:
    """Convenience constructor masking integer constants to width."""
    if ty.is_int and isinstance(value, int):
        value &= ty.mask
    return Const(ty, value)


def c32(value: int) -> Const:
    return const(Ty.I32, value)


def c8(value: int) -> Const:
    return const(Ty.I8, value)


def c1(value: int) -> Const:
    return const(Ty.I1, value)


def c64(value: int) -> Const:
    return const(Ty.I64, value)


def walk(e: Expr, visit: Callable[[Expr], None]) -> None:
    """Pre-order traversal of an expression tree."""
    visit(e)
    for child in e.children():
        walk(child, visit)


def expr_size(e: Expr) -> int:
    """Number of nodes in the expression tree."""
    n = 1
    for child in e.children():
        n += expr_size(child)
    return n
