"""IR statements and superblocks' jump kinds.

Statements are operations with side effects: guest-state writes (PUT),
memory stores, assignments to temporaries, dirty helper calls, conditional
side exits, and the no-op IMark markers that record original-instruction
boundaries for profiling tools.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from .expr import Expr
from .types import Ty


class JumpKind(enum.Enum):
    """Why control leaves a superblock."""

    Boring = "Boring"            # ordinary jump
    Call = "Call"                # function call
    Ret = "Ret"                  # function return
    Syscall = "Sys_syscall"      # system call trap
    LCall = "LCall"              # host library call trap (vx32 `lcall`)
    ClientReq = "ClientReq"      # client request trap-door
    Yield = "Yield"              # hint that a thread switch is acceptable
    NoDecode = "NoDecode"        # undecodable instruction reached
    SigSEGV = "SigSEGV"          # deliberate fault
    SigFPE = "SigFPE"            # arithmetic fault (division by zero)
    EmWarn = "EmWarn"            # emulation warning
    Exit = "Exit"                # guest program exit (vx32 `halt`)

    def __repr__(self) -> str:
        return f"JumpKind.{self.name}"


class Stmt:
    """Base class for IR statements."""

    __slots__ = ()


@dataclass(frozen=True)
class NoOp(Stmt):
    """A no-op placeholder (optimisers replace dead statements with these)."""


@dataclass(frozen=True)
class IMark(Stmt):
    """Marks the start of a guest instruction: its address and byte length.

    IMarks let profiling tools see instruction boundaries even though the
    original instructions themselves are discarded (D&R).
    """

    addr: int
    length: int


@dataclass(frozen=True)
class TraceMark(Stmt):
    """Marks the start of member block *index* inside a stitched trace.

    Compiles to a TRACEMARK host instruction that records progress for
    exact block accounting when a trace faults or side-exits; a no-op for
    guest semantics.  Only trace-stitched IR (core/traces.py) contains
    these.
    """

    index: int
    addr: int = 0


@dataclass(frozen=True)
class Put(Stmt):
    """Write to the guest state (ThreadState) at a byte offset."""

    offset: int
    data: Expr


@dataclass(frozen=True)
class WrTmp(Stmt):
    """Assign an expression's value to an SSA temporary (exactly once)."""

    tmp: int
    data: Expr


@dataclass(frozen=True)
class Store(Stmt):
    """Little-endian store of *data* to guest memory at *addr*."""

    addr: Expr
    data: Expr


@dataclass(frozen=True)
class StateFx:
    """An annotation that a dirty helper reads/writes guest state.

    Pretty-printed ``RdFX-gst(offset,size)`` / ``WrFX-gst(offset,size)`` as
    in the paper's Figure 2.
    """

    write: bool
    offset: int
    size: int


@dataclass(frozen=True)
class MemFx:
    """An annotation that a dirty helper reads/writes guest memory."""

    write: bool
    addr: Expr
    size: int


@dataclass(frozen=True)
class Dirty(Stmt):
    """Call to an impure helper function.

    ``guard`` is an I1 expression; the call only happens when it is true
    (this is how Memcheck emits conditional error-reporting calls).  ``tmp``
    receives the return value, if any.  The state/memory effect annotations
    tell the framework which guest registers must be up-to-date in the
    ThreadState across the call, and let tools see the helper's footprint.
    """

    callee: str
    args: Tuple[Expr, ...]
    guard: Optional[Expr] = None
    tmp: Optional[int] = None
    retty: Optional[Ty] = None
    state_fx: Tuple[StateFx, ...] = ()
    mem_fx: Tuple[MemFx, ...] = ()


@dataclass(frozen=True)
class Exit(Stmt):
    """Conditional side exit: if *guard* holds, jump to constant *dst*.

    Trace-stitched superblocks (core/traces.py) additionally use
    *dst_expr*: when set, the exit target is the expression's run-time
    value rather than the constant ``dst`` — this is how a computed seam
    (Ret / indirect Call) bails out of a trace when the actual target
    differs from the recorded successor.  Single-block front-end IR never
    sets it.
    """

    guard: Expr
    dst: int
    jumpkind: JumpKind = JumpKind.Boring
    dst_expr: Optional[Expr] = None
