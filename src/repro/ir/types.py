"""IR value types.

The IR is typed: every temporary, expression and operation has a type drawn
from a small fixed set, mirroring Valgrind's ``IRType``.  Integer values are
represented as non-negative Python ints masked to their width, floats as
Python floats, and V128 values as 128-bit non-negative Python ints.
"""

from __future__ import annotations

import enum


class Ty(enum.Enum):
    """An IR value type."""

    I1 = "I1"
    I8 = "I8"
    I16 = "I16"
    I32 = "I32"
    I64 = "I64"
    F32 = "F32"
    F64 = "F64"
    V128 = "V128"

    def __repr__(self) -> str:
        return f"Ty.{self.name}"

    @property
    def bits(self) -> int:
        """Width of the type in bits."""
        return _BITS[self]

    @property
    def size(self) -> int:
        """Size of the type in bytes (I1 occupies one byte when stored)."""
        return max(1, self.bits // 8)

    @property
    def is_int(self) -> bool:
        return self in _INT_TYPES

    @property
    def is_float(self) -> bool:
        return self in (Ty.F32, Ty.F64)

    @property
    def mask(self) -> int:
        """All-ones bitmask for integer/vector types."""
        if self.is_float:
            raise ValueError(f"{self} has no integer mask")
        return (1 << self.bits) - 1


_BITS = {
    Ty.I1: 1,
    Ty.I8: 8,
    Ty.I16: 16,
    Ty.I32: 32,
    Ty.I64: 64,
    Ty.F32: 32,
    Ty.F64: 64,
    Ty.V128: 128,
}

_INT_TYPES = frozenset({Ty.I1, Ty.I8, Ty.I16, Ty.I32, Ty.I64, Ty.V128})

#: Integer types ordered by width, handy for tests and generators.
INT_TYPES = (Ty.I1, Ty.I8, Ty.I16, Ty.I32, Ty.I64)

#: All IR types.
ALL_TYPES = tuple(Ty)


def mask(bits: int, value: int) -> int:
    """Truncate *value* to an unsigned *bits*-wide integer."""
    return value & ((1 << bits) - 1)


def sign_extend(bits: int, value: int) -> int:
    """Interpret the low *bits* of *value* as a signed two's-complement int."""
    value = mask(bits, value)
    if value & (1 << (bits - 1)):
        return value - (1 << bits)
    return value


def fits(ty: Ty, value: object) -> bool:
    """Return True if *value* is a well-formed constant of type *ty*."""
    if ty.is_float:
        return isinstance(value, float)
    if not isinstance(value, int) or isinstance(value, bool):
        return False
    return 0 <= value <= ty.mask
