"""The workload suite: 25 SPEC CPU2000-shaped programs.

Stands in for the paper's Table 2 benchmark set (galgel, which the
authors could not build either, is the one missing from their 26 too).
``build(name, scale)`` assembles a program; ``run_reference`` runs it
natively and returns its checksum output, which tool runs are compared
against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..guest.asm import assemble
from ..guest.program import VxImage
from ..libc.stubs import build_source
from . import progs_fp, progs_int

#: Table 2's program order: integer programs, then floating-point.
INT_WORKLOADS = (
    "bzip2", "crafty", "eon", "gap", "gcc", "gzip", "mcf", "parser",
    "perlbmk", "twolf", "vortex", "vpr",
)
FP_WORKLOADS = (
    "ammp", "applu", "apsi", "art", "equake", "facerec", "fma3d", "lucas",
    "mesa", "mgrid", "sixtrack", "swim", "wupwise",
)
ALL_WORKLOADS = INT_WORKLOADS + FP_WORKLOADS

_GENERATORS: Dict[str, Callable[[float], str]] = {}
for _name in INT_WORKLOADS:
    _GENERATORS[_name] = getattr(progs_int, _name)
for _name in FP_WORKLOADS:
    _GENERATORS[_name] = getattr(progs_fp, _name)


@dataclass
class BuiltWorkload:
    name: str
    kind: str  # "int" | "fp"
    image: VxImage
    source: str


def source_for(name: str, scale: float = 1.0) -> str:
    """The full assembly source (program + libc) of a workload."""
    try:
        gen = _GENERATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(ALL_WORKLOADS)}"
        ) from None
    return build_source(gen(scale))


def build(name: str, scale: float = 1.0) -> BuiltWorkload:
    """Assemble workload *name* at the given *scale*."""
    src = source_for(name, scale)
    image = assemble(src, filename=name)
    kind = "int" if name in INT_WORKLOADS else "fp"
    return BuiltWorkload(name=name, kind=kind, image=image, source=src)


def build_all(scale: float = 1.0) -> List[BuiltWorkload]:
    return [build(name, scale) for name in ALL_WORKLOADS]


def run_reference(name: str, scale: float = 1.0,
                  max_insns: Optional[int] = 50_000_000):
    """Natively run a workload; returns its NativeResult (checksum in
    stdout).  Used both as the performance baseline and as the oracle all
    instrumented runs must match."""
    from ..native import run_native

    wl = build(name, scale)
    return run_native(wl.image, max_insns=max_insns)
