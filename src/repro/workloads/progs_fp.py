"""The thirteen floating-point workloads (SPEC CPU2000 CFP-shaped kernels).

Stencils, reductions, transforms and particle pushes, each shaped after
its namesake.  All use the F64 register file heavily (several also use
SIMD), so they exercise exactly the code the paper says other frameworks'
shadow-value tools could not handle.  Each prints an integer checksum
derived from its FP result.
"""

from __future__ import annotations


def _checksum_epilogue() -> str:
    """f0 holds the result: print trunc(f0 * 1000) and return 0."""
    return """
        fldi f1, 1000
        fmul f0, f1
        fcvti r0, f0
        push r0
        call putint
        addi sp, 4
        movi r0, 0
        ret
"""


def ammp(scale: float) -> str:
    atoms = max(24, int(96 * scale))
    return f"""
        .equ ATOMS, {atoms}
        .text
; Molecular dynamics: O(n^2) pairwise force accumulation.
main:   movi r1, 0
.init:  ficvt f0, r1
        fldi f1, 7
        fdiv f0, f1
        fst  [xs+r1*8], f0
        inc  r1
        cmpi r1, ATOMS
        jl   .init
        fldi f0, 0              ; energy
        movi r1, 0
.outer: movi r2, 0
.inner: cmp  r2, r1
        je   .skip
        fld  f2, [xs+r1*8]
        fld  f3, [xs+r2*8]
        fsub f2, f3             ; dx
        fmul f2, f2             ; dx^2
        fldi f3, 1
        fadd f2, f3             ; soften
        fldi f4, 1
        fdiv f4, f2             ; 1/r^2
        fadd f0, f4
.skip:  inc  r2
        cmpi r2, ATOMS
        jl   .inner
        inc  r1
        cmpi r1, ATOMS
        jl   .outer
{_checksum_epilogue()}
        .data
xs:     .space {atoms * 8 + 8}
"""


def applu(scale: float) -> str:
    n = max(64, int(512 * scale))
    sweeps = max(6, int(30 * scale))
    return f"""
        .equ N, {n}
        .equ SWEEPS, {sweeps}
        .text
; LU solver: forward/backward substitution sweeps over a band.
main:   movi r1, 0
.init:  ficvt f0, r1
        fldi f1, 3
        fdiv f0, f1
        fst  [v+r1*8], f0
        inc  r1
        cmpi r1, N
        jl   .init
        movi r7, 0
.sweep: movi r1, 1              ; forward: v[i] += 0.5*v[i-1]
.fwd:   fld  f0, [v+r1*8]
        fld  f1, [v+r1*8-8]
        fldi f2, 2
        fdiv f1, f2
        fadd f0, f1
        fst  [v+r1*8], f0
        inc  r1
        cmpi r1, N
        jl   .fwd
        movi r1, N-2            ; backward: v[i] -= 0.25*v[i+1]
.bwd:   fld  f0, [v+r1*8]
        fld  f1, [v+r1*8+8]
        fldi f2, 4
        fdiv f1, f2
        fsub f0, f1
        fst  [v+r1*8], f0
        dec  r1
        jnl  .bwd
        inc  r7
        cmpi r7, SWEEPS
        jl   .sweep
        fld  f0, [v+8]
        fld  f1, [v+{8 * (n // 2)}]
        fadd f0, f1
{_checksum_epilogue()}
        .data
v:      .space {n * 8 + 16}
"""


def apsi(scale: float) -> str:
    iters = max(400, int(6000 * scale))
    return f"""
        .equ ITERS, {iters}
        .text
; Meteorology: pointwise transcendental-ish updates (polynomial approx
; of exp) over a column of air.
main:   fldi f0, 0              ; accumulator
        movi r1, 0
.loop:  ficvt f1, r1
        fldi f2, ITERS
        fdiv f1, f2             ; x in [0,1)
        ; exp(x) ~ 1 + x + x^2/2 + x^3/6
        fmov f3, f1
        fmul f3, f1             ; x^2
        fmov f4, f3
        fmul f4, f1             ; x^3
        fldi f5, 2
        fdiv f3, f5
        fldi f5, 6
        fdiv f4, f5
        fldi f5, 1
        fadd f5, f1
        fadd f5, f3
        fadd f5, f4
        fadd f0, f5
        inc  r1
        cmpi r1, ITERS
        jl   .loop
        fldi f1, ITERS
        fdiv f0, f1
{_checksum_epilogue()}
"""


def art(scale: float) -> str:
    f1s = max(20, int(80 * scale))
    f2s = max(10, int(30 * scale))
    return f"""
        .equ NF1, {f1s}
        .equ NF2, {f2s}
        .text
; Neural net recognition: weighted sums + winner-take-all.
main:   movi r1, 0
.wi:    ficvt f0, r1
        fldi f1, 13
        fdiv f0, f1
        fst  [w+r1*8], f0
        inc  r1
        cmpi r1, {f1s * 2}
        jl   .wi
        fldi f0, 0              ; best
        movi r2, 0              ; neuron
.neur:  fldi f2, 0              ; sum
        movi r1, 0
.dot:   fld  f3, [w+r1*8]
        mov  r3, r1
        add  r3, r2
        andi r3, {f1s - 1 if (f1s & (f1s - 1)) == 0 else 15}
        fld  f4, [w+r3*8]
        fmul f3, f4
        fadd f2, f3
        inc  r1
        cmpi r1, NF1
        jl   .dot
        fcmp f2, f0
        jbe  .notbest
        fmov f0, f2
.notbest:
        inc  r2
        cmpi r2, NF2
        jl   .neur
{_checksum_epilogue()}
        .data
w:      .space {f1s * 2 * 8 + 16}
"""


def equake(scale: float) -> str:
    rows = max(128, int(1024 * scale))
    iters = max(8, int(30 * scale))
    return f"""
        .equ ROWS, {rows}
        .equ ITERS, {iters}
        .text
; Seismic simulation: sparse matrix-vector product (3-band).
main:   movi r1, 0
.init:  ficvt f0, r1
        fldi f1, 1000
        fdiv f0, f1
        fst  [x+r1*8], f0
        inc  r1
        cmpi r1, ROWS
        jl   .init
        movi r7, 0
.iter:  movi r1, 1
.row:   fld  f0, [x+r1*8-8]
        fldi f1, 4
        fdiv f0, f1
        fld  f2, [x+r1*8]
        fldi f3, 2
        fdiv f2, f3
        fadd f0, f2
        cmpi r1, ROWS-2
        jge  .noright
        fld  f2, [x+r1*8+8]
        fldi f3, 4
        fdiv f2, f3
        fadd f0, f2
.noright:
        fst  [y+r1*8], f0
        inc  r1
        cmpi r1, ROWS-1
        jl   .row
        ; x <- y
        movi r1, 1
.copy:  fld  f0, [y+r1*8]
        fst  [x+r1*8], f0
        inc  r1
        cmpi r1, ROWS-1
        jl   .copy
        inc  r7
        cmpi r7, ITERS
        jl   .iter
        fld  f0, [x+{8 * (rows // 2)}]
        fldi f1, 1000000
        fmul f0, f1
{_checksum_epilogue()}
        .data
x:      .space {rows * 8 + 16}
y:      .space {rows * 8 + 16}
"""


def facerec(scale: float) -> str:
    dim = max(16, int(48 * scale))
    return f"""
        .equ DIM, {dim}
        .text
; Face recognition: 2D correlation of an image window with a template.
main:   movi r1, 0
.init:  mov  r2, r1
        muli r2, 2654435761
        shr  r2, 20
        andi r2, 255
        ficvt f0, r2
        fst  [img+r1*8], f0
        inc  r1
        cmpi r1, {dim * dim}
        jl   .init
        fldi f0, 0
        movi r1, 0              ; window y
.wy:    movi r2, 0              ; window x
.wx:    ; correlate 4x4 at (r1, r2)
        fldi f2, 0
        movi r3, 0
.ty:    movi fp, 0
.tx:    mov  r6, r1
        add  r6, r3
        muli r6, DIM
        add  r6, r2
        add  r6, fp
        fld  f3, [img+r6*8]
        fld  f4, [tmpl+fp*8]
        fmul f3, f4
        fadd f2, f3
        inc  fp
        cmpi fp, 4
        jl   .tx
        inc  r3
        cmpi r3, 4
        jl   .ty
        fcmp f2, f0
        jbe  .nomax
        fmov f0, f2
.nomax: inc  r2
        cmpi r2, DIM-4
        jl   .wx
        inc  r1
        cmpi r1, DIM-4
        jl   .wy
        fldi f1, 1000
        fdiv f0, f1
{_checksum_epilogue()}
        .data
tmpl:   .double 1.0, 2.0, 1.0, 0.5
img:    .space {dim * dim * 8 + 16}
"""


def fma3d(scale: float) -> str:
    n = max(128, int(1536 * scale))
    iters = max(6, int(24 * scale))
    return f"""
        .equ N, {n}
        .equ ITERS, {iters}
        .text
; Crash simulation: elementwise fused multiply-add sweeps (v = a*x + v).
main:   movi r1, 0
.init:  ficvt f0, r1
        fldi f1, 97
        fdiv f0, f1
        fst  [xv+r1*8], f0
        fldi f0, 0
        fst  [vv+r1*8], f0
        inc  r1
        cmpi r1, N
        jl   .init
        movi r7, 0
.iter:  movi r1, 0
        fldi f4, 3
        fldi f5, 100
        fdiv f4, f5             ; a = 0.03
.elem:  fld  f0, [xv+r1*8]
        fmul f0, f4
        fld  f1, [vv+r1*8]
        fadd f1, f0
        fst  [vv+r1*8], f1
        fld  f0, [xv+r1*8]
        fadd f0, f1
        fst  [xv+r1*8], f0
        inc  r1
        cmpi r1, N
        jl   .elem
        inc  r7
        cmpi r7, ITERS
        jl   .iter
        fld  f0, [xv+16]
        fabs f0, f0
        fldi f1, 1
        fadd f1, f0
        fmov f0, f1
        fsqrt f0, f0
{_checksum_epilogue()}
        .data
xv:     .space {n * 8 + 16}
vv:     .space {n * 8 + 16}
"""


def lucas(scale: float) -> str:
    n = max(64, int(256 * scale))
    iters = max(12, int(60 * scale))
    return f"""
        .equ N, {n}
        .equ ITERS, {iters}
        .text
; Primality testing via FFT-ish butterfly passes on an FP signal.
main:   movi r1, 0
.init:  ficvt f0, r1
        fldi f1, 16
        fdiv f0, f1
        fst  [sig+r1*8], f0
        inc  r1
        cmpi r1, N
        jl   .init
        movi r7, 0
.pass:  movi r1, 0
.bfly:  fld  f0, [sig+r1*8]     ; a
        fld  f1, [sig+r1*8+8]   ; b
        fmov f2, f0
        fadd f2, f1             ; a+b
        fsub f0, f1             ; a-b
        fldi f3, 2
        fdiv f2, f3
        fdiv f0, f3
        fst  [sig+r1*8], f2
        fst  [sig+r1*8+8], f0
        addi r1, 2
        cmpi r1, N
        jl   .bfly
        inc  r7
        cmpi r7, ITERS
        jl   .pass
        fldi f0, 0
        movi r1, 0
.sum:   fld  f1, [sig+r1*8]
        fabs f1, f1
        fadd f0, f1
        inc  r1
        cmpi r1, N
        jl   .sum
{_checksum_epilogue()}
        .data
sig:    .space {n * 8 + 16}
"""


def mesa(scale: float) -> str:
    verts = max(200, int(2600 * scale))
    return f"""
        .equ VERTS, {verts}
        .text
; 3D graphics: 4x4 matrix * vec4 vertex transforms.
main:   movi r6, 0              ; vertex index
        fldi f0, 0              ; running checksum
.vert:  ; synthesise vertex (x, y, z, 1)
        ficvt f1, r6            ; x
        mov  r1, r6
        xori r1, 0x55
        ficvt f2, r1            ; y
        mov  r1, r6
        andi r1, 31
        ficvt f3, r1            ; z
        fldi f4, 100
        fdiv f1, f4
        fdiv f2, f4
        fdiv f3, f4
        ; rows of the matrix are in mat[]; out_i = m0*x + m1*y + m2*z + m3
        movi r2, 0              ; row
.row:   mov  r3, r2
        muli r3, 4
        fld  f5, [mat+r3*8]
        fmul f5, f1
        fld  f6, [mat+r3*8+8]
        fmul f6, f2
        fadd f5, f6
        fld  f6, [mat+r3*8+16]
        fmul f6, f3
        fadd f5, f6
        fld  f6, [mat+r3*8+24]
        fadd f5, f6
        fadd f0, f5
        inc  r2
        cmpi r2, 4
        jl   .row
        inc  r6
        cmpi r6, VERTS
        jl   .vert
        fldi f1, VERTS
        fdiv f0, f1
{_checksum_epilogue()}
        .data
mat:    .double 0.5, 0.1, 0.0, 1.0
        .double 0.0, 0.7, 0.2, 2.0
        .double 0.3, 0.0, 0.9, 3.0
        .double 0.0, 0.0, 0.0, 1.0
"""


def mgrid(scale: float) -> str:
    dim = max(16, int(40 * scale))
    iters = max(4, int(16 * scale))
    return f"""
        .equ DIM, {dim}
        .equ ITERS, {iters}
        .text
; Multigrid: 5-point Jacobi smoothing on a 2D grid.
main:   movi r1, 0
.init:  mov  r2, r1
        muli r2, 31
        andi r2, 255
        ficvt f0, r2
        fst  [grid+r1*8], f0
        inc  r1
        cmpi r1, {dim * dim}
        jl   .init
        movi r7, 0
.iter:  movi r1, 1              ; y
.gy:    movi r2, 1              ; x
.gx:    mov  r3, r1
        muli r3, DIM
        add  r3, r2             ; index
        fld  f0, [grid+r3*8-8]
        fld  f1, [grid+r3*8+8]
        fadd f0, f1
        mov  r6, r3
        subi r6, DIM
        fld  f1, [grid+r6*8]
        fadd f0, f1
        mov  r6, r3
        addi r6, DIM
        fld  f1, [grid+r6*8]
        fadd f0, f1
        fldi f1, 4
        fdiv f0, f1
        fst  [out+r3*8], f0
        inc  r2
        cmpi r2, DIM-1
        jl   .gx
        inc  r1
        cmpi r1, DIM-1
        jl   .gy
        ; copy back interior
        movi r1, DIM
.copy:  fld  f0, [out+r1*8]
        fst  [grid+r1*8], f0
        inc  r1
        cmpi r1, {dim * (dim - 1)}
        jl   .copy
        inc  r7
        cmpi r7, ITERS
        jl   .iter
        fld  f0, [grid+{8 * (dim * dim // 2 + dim // 2)}]
{_checksum_epilogue()}
        .data
grid:   .space {dim * dim * 8 + 16}
out:    .space {dim * dim * 8 + 16}
"""


def sixtrack(scale: float) -> str:
    particles = max(32, int(128 * scale))
    turns = max(20, int(100 * scale))
    return f"""
        .equ PARTICLES, {particles}
        .equ TURNS, {turns}
        .text
; Accelerator physics: rotate particle (x, y) phase-space coordinates.
main:   movi r1, 0
.init:  ficvt f0, r1
        fldi f1, 37
        fdiv f0, f1
        fst  [px+r1*8], f0
        fldi f0, 0
        fst  [py+r1*8], f0
        inc  r1
        cmpi r1, PARTICLES
        jl   .init
        fld  f6, [cosv]
        fld  f7, [sinv]
        movi r7, 0
.turn:  movi r1, 0
.part:  fld  f0, [px+r1*8]
        fld  f1, [py+r1*8]
        fmov f2, f0
        fmul f2, f6             ; x*cos
        fmov f3, f1
        fmul f3, f7             ; y*sin
        fsub f2, f3             ; x'
        fmov f3, f0
        fmul f3, f7             ; x*sin
        fmov f4, f1
        fmul f4, f6             ; y*cos
        fadd f3, f4             ; y'
        fst  [px+r1*8], f2
        fst  [py+r1*8], f3
        inc  r1
        cmpi r1, PARTICLES
        jl   .part
        inc  r7
        cmpi r7, TURNS
        jl   .turn
        fld  f0, [px]
        fabs f0, f0
        fld  f1, [py+8]
        fabs f1, f1
        fadd f0, f1
{_checksum_epilogue()}
        .data
cosv:   .double 0.9950041652780258
sinv:   .double 0.09983341664682815
px:     .space {particles * 8 + 16}
py:     .space {particles * 8 + 16}
"""


def swim(scale: float) -> str:
    dim = max(16, int(44 * scale))
    iters = max(4, int(18 * scale))
    return f"""
        .equ DIM, {dim}
        .equ ITERS, {iters}
        .text
; Shallow water: two coupled 2D stencils (u, h fields) plus SIMD byte
; field updates for the boundary masks.
main:   movi r1, 0
.init:  mov  r2, r1
        muli r2, 97
        andi r2, 127
        ficvt f0, r2
        fst  [u+r1*8], f0
        fldi f0, 10
        fst  [h+r1*8], f0
        inc  r1
        cmpi r1, {dim * dim}
        jl   .init
        vsplatb v1, r1          ; SIMD mask update state
        movi r7, 0
.iter:  movi r1, 1
.sy:    movi r2, 1
.sx:    mov  r3, r1
        muli r3, DIM
        add  r3, r2
        fld  f0, [h+r3*8+8]
        fld  f1, [h+r3*8-8]
        fsub f0, f1
        fldi f2, 2
        fdiv f0, f2
        fld  f1, [u+r3*8]
        fsub f1, f0
        fst  [u+r3*8], f1
        inc  r2
        cmpi r2, DIM-1
        jl   .sx
        inc  r1
        cmpi r1, DIM-1
        jl   .sy
        ; SIMD boundary-mask churn
        vld  v0, [mask]
        vaddb v0, v1
        vxor v1, v0
        vst  [mask], v0
        inc  r7
        cmpi r7, ITERS
        jl   .iter
        fld  f0, [u+{8 * (dim + 1)}]
        fabs f0, f0
{_checksum_epilogue()}
        .data
        .align 16
mask:   .space 16
u:      .space {dim * dim * 8 + 16}
h:      .space {dim * dim * 8 + 16}
"""


def wupwise(scale: float) -> str:
    n = max(48, int(192 * scale))
    iters = max(8, int(40 * scale))
    return f"""
        .equ N, {n}
        .equ ITERS, {iters}
        .text
; Lattice QCD: complex a*b+c over arrays (pairs of doubles).
main:   movi r1, 0
.init:  ficvt f0, r1
        fldi f1, 11
        fdiv f0, f1
        fst  [za+r1*8], f0
        fldi f1, 1
        fadd f0, f1
        fst  [zb+r1*8], f0
        inc  r1
        cmpi r1, {n * 2}
        jl   .init
        movi r7, 0
.iter:  movi r1, 0
.cplx:  mov  r2, r1
        shl  r2, 1              ; re index
        fld  f0, [za+r2*8]      ; a.re
        fld  f1, [za+r2*8+8]    ; a.im
        fld  f2, [zb+r2*8]      ; b.re
        fld  f3, [zb+r2*8+8]    ; b.im
        fmov f4, f0
        fmul f4, f2             ; re*re
        fmov f5, f1
        fmul f5, f3             ; im*im
        fsub f4, f5             ; new re
        fmul f0, f3             ; re*im
        fmul f1, f2             ; im*re
        fadd f0, f1             ; new im
        fldi f5, 2
        fdiv f4, f5
        fdiv f0, f5
        fst  [za+r2*8], f4
        fst  [za+r2*8+8], f0
        inc  r1
        cmpi r1, N
        jl   .cplx
        inc  r7
        cmpi r7, ITERS
        jl   .iter
        fld  f0, [za]
        fabs f0, f0
        fld  f1, [za+8]
        fabs f1, f1
        fadd f0, f1
{_checksum_epilogue()}
        .data
za:     .space {n * 16 + 16}
zb:     .space {n * 16 + 16}
"""
