"""The twelve integer workloads (SPEC CPU2000 CINT-shaped kernels).

Each function returns vx32 assembly whose *instruction mix* resembles its
namesake: compression (bzip2/gzip), bitboards (crafty), pointer chasing
(mcf), table/graph manipulation (gcc/vortex), string processing
(parser/perlbmk), annealing (twolf), placement (vpr), group arithmetic
(gap) and mixed int/FP rendering (eon).  ``scale`` multiplies the inner
iteration counts; every program ends by printing a checksum with
``putint`` so runs can be compared across execution engines.
"""

from __future__ import annotations


def bzip2(scale: float) -> str:
    n = max(256, int(4096 * scale))
    reps = max(1, int(4 * scale))
    return f"""
        .equ N, {n}
        .equ REPS, {reps}
        .text
; Run-length encode buf into out, then decode and checksum: the
; byte-twiddling inner loops of a compressor.
main:   movi r6, 0              ; checksum
        movi r7, 0              ; rep counter
.fill:  movi r1, 0              ; fill buf with compressible data
.floop: mov  r2, r1
        shr  r2, 4
        andi r2, 15
        stb  [buf+r1], r2
        inc  r1
        cmpi r1, N
        jl   .floop
.rep:   ; ---- encode ----
        movi r1, 0              ; src index
        movi r2, 0              ; dst index
.enc:   cmpi r1, N
        jge  .encdone
        ldb  r3, [buf+r1]       ; current byte
        movi r0, 1              ; run length
.run:   mov  fp, r1
        add  fp, r0
        cmpi fp, N
        jge  .emit
        ldb  fp, [buf+r1+r0]    ; hmm - can't index twice; recompute
        cmp  fp, r3
        jne  .emit
        inc  r0
        cmpi r0, 255
        jl   .run
.emit:  stb  [out+r2], r0
        inc  r2
        stb  [out+r2], r3
        inc  r2
        add  r1, r0
        jmp  .enc
.encdone:
        ; ---- decode + checksum ----
        movi r1, 0              ; enc index
        movi r3, 0              ; decoded count
.dec:   cmp  r1, r2
        jge  .decdone
        ldb  r0, [out+r1]       ; run length
        inc  r1
        ldb  fp, [out+r1]       ; byte
        inc  r1
.dloop: add  r6, fp
        rol  r6, 1
        inc  r3
        dec  r0
        jnz  .dloop
        jmp  .dec
.decdone:
        add  r6, r3
        inc  r7
        cmpi r7, REPS
        jl   .rep
        push r6
        call putint
        addi sp, 4
        movi r0, 0
        ret
        .data
buf:    .space {n}
out:    .space {2 * n + 16}
"""


def crafty(scale: float) -> str:
    iters = max(500, int(12000 * scale))
    return f"""
        .equ ITERS, {iters}
        .text
; Bitboard manipulation: shifts, masks, popcounts — a chess engine's
; move-generation inner loop.
main:   movi r6, 0x12345678     ; "bitboard"
        movi r7, 0              ; checksum
        movi r1, 0
.loop:  mov  r2, r6
        shl  r2, 1
        andi r2, 0xFEFEFEFE     ; shift file, mask wrap
        mov  r3, r6
        shr  r3, 1
        andi r3, 0x7F7F7F7F
        or   r2, r3             ; attacks
        xor  r6, r2
        rol  r6, 7
        ; popcount of r2
        movi r0, 0
.pop:   test r2, r2
        jz   .popdone
        mov  r3, r2
        dec  r3
        and  r2, r3             ; clear lowest set bit
        inc  r0
        jmp  .pop
.popdone:
        add  r7, r0
        add  r6, r1
        inc  r1
        cmpi r1, ITERS
        jl   .loop
        push r7
        call putint
        addi sp, 4
        movi r0, 0
        ret
"""


def eon(scale: float) -> str:
    iters = max(300, int(4000 * scale))
    return f"""
        .equ ITERS, {iters}
        .text
; Mixed int/FP: ray-sphere intersection tests (eon is a renderer).
main:   movi r7, 0              ; hit counter
        movi r1, 0
        fldi f7, 100            ; sphere radius^2
.loop:  mov  r2, r1
        muli r2, 1103515245
        addi r2, 12345
        andi r2, 0x7FFF
        subi r2, 16384
        ficvt f0, r2            ; ox
        mov  r3, r1
        muli r3, 69069
        addi r3, 1
        andi r3, 0x7FFF
        subi r3, 16384
        ficvt f1, r3            ; oy
        fldi f2, 1000
        fdiv f0, f2
        fdiv f1, f2
        fmov f3, f0
        fmul f3, f0             ; ox^2
        fmov f4, f1
        fmul f4, f1             ; oy^2
        fadd f3, f4             ; |o|^2
        fcmp f3, f7
        jnb  .miss              ; outside
        inc  r7
.miss:  inc  r1
        cmpi r1, ITERS
        jl   .loop
        push r7
        call putint
        addi sp, 4
        movi r0, 0
        ret
"""


def gap(scale: float) -> str:
    iters = max(400, int(6000 * scale))
    return f"""
        .equ ITERS, {iters}
        .equ P, 97
        .text
; Computational group theory: permutation composition + modular powers.
main:   ; initialise perm[i] = (i*7+3) mod 31
        movi r1, 0
.init:  mov  r2, r1
        muli r2, 7
        addi r2, 3
        movi r3, 31
        mov  r0, r2
        modu r0, r3
        stb  [perm+r1], r0
        inc  r1
        cmpi r1, 31
        jl   .init
        movi r6, 0              ; checksum
        movi r7, 0
.loop:  ; compose perm with itself: q[i] = perm[perm[i]]
        movi r1, 0
.comp:  ldb  r2, [perm+r1]
        ldb  r3, [perm+r2]
        stb  [q+r1], r3
        inc  r1
        cmpi r1, 31
        jl   .comp
        ; copy q back, accumulating a modular power
        movi r1, 0
        movi r0, 1
.back:  ldb  r2, [q+r1]
        stb  [perm+r1], r2
        mul  r0, r2
        movi r3, P
        modu r0, r3
        inc  r1
        cmpi r1, 31
        jl   .back
        add  r6, r0
        inc  r7
        cmpi r7, ITERS
        jl   .loop
        push r6
        call putint
        addi sp, 4
        movi r0, 0
        ret
        .data
perm:   .space 32
q:      .space 32
"""


def gcc(scale: float) -> str:
    n = max(64, int(512 * scale))
    passes = max(4, int(24 * scale))
    return f"""
        .equ N, {n}
        .equ PASSES, {passes}
        .text
; Compiler-ish: build a hash table of "symbols" on the heap, then walk a
; linked worklist (chains of pointers) doing constant folding.
main:   pushi {n * 8}
        call malloc             ; node array: (value, next) pairs
        addi sp, 4
        mov  r6, r0             ; base
        ; link node i -> (i*17+11) mod N, value = i^0x5a
        movi r1, 0
.build: mov  r2, r1
        xori r2, 0x5a
        mov  r3, r1
        shl  r3, 3
        add  r3, r6
        st   [r3], r2           ; value
        mov  r2, r1
        muli r2, 17
        addi r2, 11
        movi r0, N
        modu r2, r0
        shl  r2, 3
        add  r2, r6             ; ptr to successor
        st   [r3+4], r2
        inc  r1
        cmpi r1, N
        jl   .build
        ; walk the chain PASSES*N steps, folding values
        movi r7, 0              ; checksum
        mov  r1, r6             ; cursor
        movi r2, 0
        movi r3, PASSES
        mul  r3, r2             ; dummy
        movi r2, 0
.walk:  ld   r3, [r1]           ; value
        add  r7, r3
        rol  r7, 3
        ld   r1, [r1+4]         ; next
        inc  r2
        movi r0, PASSES
        muli r0, N
        cmp  r2, r0
        jl   .walk
        push r6
        call free
        addi sp, 4
        push r7
        call putint
        addi sp, 4
        movi r0, 0
        ret
"""


def gzip(scale: float) -> str:
    n = max(512, int(6144 * scale))
    return f"""
        .equ N, {n}
        .text
; LZ-ish: hash-chain match finding over a text buffer.
main:   ; synthesise input: repeating-ish text
        movi r1, 0
.fill:  mov  r2, r1
        muli r2, 2654435761
        shr  r2, 24
        andi r2, 63
        addi r2, 32
        stb  [buf+r1], r2
        inc  r1
        cmpi r1, N
        jl   .fill
        ; clear hash heads
        movi r1, 0
.clr:   sti  [heads+r1*4], 0xFFFFFFFF
        inc  r1
        cmpi r1, 256
        jl   .clr
        movi r6, 0              ; total match length (checksum)
        movi r1, 0              ; position
.scan:  ldb  r2, [buf+r1]
        ldb  r3, [buf+r1+1]
        shl  r3, 4
        xor  r2, r3
        andi r2, 255            ; hash
        ld   r3, [heads+r2*4]   ; previous position with this hash
        st   [heads+r2*4], r1
        cmpi r3, 0xFFFFFFFF
        je   .next
        ; measure match length between r1 and r3 (max 8)
        movi r0, 0
.match: cmpi r0, 8
        jge  .mdone
        ldb  r7, [buf+r3+r0]
        ldb  fp, [buf+r1+r0]
        cmp  r7, fp
        jne  .mdone
        inc  r0
        jmp  .match
.mdone: add  r6, r0
.next:  inc  r1
        cmpi r1, N-9
        jl   .scan
        push r6
        call putint
        addi sp, 4
        movi r0, 0
        ret
        .data
heads:  .space 1024
buf:    .space {n + 16}
"""


def mcf(scale: float) -> str:
    nodes = max(256, int(2048 * scale))
    steps = max(2000, int(40000 * scale))
    return f"""
        .equ NODES, {nodes}
        .equ STEPS, {steps}
        .text
; Network flow: cache-hostile pointer chasing with potential updates.
main:   pushi {nodes * 12}
        call malloc             ; nodes: (next, potential, flow)
        addi sp, 4
        mov  r6, r0
        movi r1, 0
.build: mov  r2, r1
        muli r2, 40503
        addi r2, 1299721
        movi r3, NODES
        modu r2, r3
        muli r2, 12
        add  r2, r6             ; successor address
        mov  r3, r1
        muli r3, 12
        add  r3, r6
        st   [r3], r2
        mov  r0, r1
        xori r0, 0x33
        st   [r3+4], r0         ; potential
        sti  [r3+8], 0
        inc  r1
        cmpi r1, NODES
        jl   .build
        mov  r1, r6             ; cursor
        movi r7, 0              ; checksum
        movi r2, 0
.chase: ld   r3, [r1+4]         ; potential
        add  r7, r3
        ld   r0, [r1+8]
        inc  r0
        st   [r1+8], r0         ; flow update
        ld   r1, [r1]           ; follow arc
        inc  r2
        cmpi r2, STEPS
        jl   .chase
        push r6
        call free
        addi sp, 4
        push r7
        call putint
        addi sp, 4
        movi r0, 0
        ret
"""


def parser(scale: float) -> str:
    reps = max(20, int(260 * scale))
    return f"""
        .equ REPS, {reps}
        .text
; Natural-language-ish: tokenise a sentence buffer, classify words with
; strcmp against a small dictionary, build counts.  The cursor lives in
; fp (callee-saved) because strcmp/strlen clobber r0-r3/r6/r7.
main:   sti  [score], 0
        sti  [rep], 0
.rep:   movi fp, text
.tok:   ldb  r2, [fp]
        test r2, r2
        jz   .repdone
        cmpi r2, 32             ; skip spaces
        jne  .word
        inc  fp
        jmp  .tok
.word:  mov  r2, fp             ; word start
.find:  ldb  r3, [fp]
        test r3, r3
        jz   .clas
        cmpi r3, 32
        je   .clas
        inc  fp
        jmp  .find
.clas:  ; copy word to wbuf (NUL-terminate)
        mov  r3, r2
        movi r0, 0
.copy:  cmp  r3, fp
        jge  .copied
        ldb  r6, [r3]
        stb  [wbuf+r0], r6
        inc  r3
        inc  r0
        jmp  .copy
.copied:
        movi r3, 0
        stb  [wbuf+r0], r3
        pushi dict0
        pushi wbuf
        call strcmp
        addi sp, 8
        test r0, r0
        jnz  .try1
        ld   r1, [score]
        inc  r1
        st   [score], r1
        jmp  .tok
.try1:  pushi dict1
        pushi wbuf
        call strcmp
        addi sp, 8
        test r0, r0
        jnz  .try2
        ld   r1, [score]
        addi r1, 100
        st   [score], r1
        jmp  .tok
.try2:  pushi wbuf
        call strlen
        addi sp, 4
        ld   r1, [score]
        add  r1, r0
        st   [score], r1
        jmp  .tok
.repdone:
        ld   r1, [rep]
        inc  r1
        st   [rep], r1
        cmpi r1, REPS
        jl   .rep
        ld   r1, [score]
        push r1
        call putint
        addi sp, 4
        movi r0, 0
        ret
        .data
score:  .word 0
rep:    .word 0
text:   .asciz "the cat sat on the mat and the dog ran to the cat with a hat"
dict0:  .asciz "the"
dict1:  .asciz "cat"
wbuf:   .space 32
"""


def perlbmk(scale: float) -> str:
    reps = max(30, int(400 * scale))
    return f"""
        .equ REPS, {reps}
        .text
; Scripting-ish: naive pattern matching (the regex engine's hot loop).
main:   movi r7, 0
        movi r6, 0
.rep:   movi r1, 0              ; text index
.outer: ldb  r2, [text+r1]
        test r2, r2
        jz   .repdone
        movi r3, 0              ; pattern index
.inner: ldb  r0, [pat+r3]
        test r0, r0
        jz   .found
        ldb  fp, [text+r1+r3]
        cmp  fp, r0
        jne  .advance
        inc  r3
        jmp  .inner
.found: inc  r7
.advance:
        inc  r1
        jmp  .outer
.repdone:
        inc  r6
        cmpi r6, REPS
        jl   .rep
        push r7
        call putint
        addi sp, 4
        movi r0, 0
        ret
        .data
text:   .asciz "abcabcababcabcabababcababababcabcababababababcabcabc"
pat:    .asciz "abab"
"""


def twolf(scale: float) -> str:
    iters = max(800, int(16000 * scale))
    return f"""
        .equ ITERS, {iters}
        .equ CELLS, 64
        .text
; Place-and-route annealing: random cell swaps with cost recomputation.
main:   movi r1, 0
.init:  mov  r2, r1
        muli r2, 13
        andi r2, 0xFF
        st   [pos+r1*4], r2
        inc  r1
        cmpi r1, CELLS
        jl   .init
        movi r6, 12345          ; LCG state
        movi r7, 0              ; accepted swaps (checksum)
        movi fp, 0              ; iteration
.loop:  muli r6, 1103515245
        addi r6, 12345
        mov  r1, r6
        shr  r1, 16
        andi r1, 63             ; cell a
        muli r6, 69069
        addi r6, 1
        mov  r2, r6
        shr  r2, 16
        andi r2, 63             ; cell b
        ld   r3, [pos+r1*4]
        ld   r0, [pos+r2*4]
        ; delta = |a - b| heuristic: accept if (a ^ b) & 1
        mov  r6, r3
        xor  r6, r0
        test r6, r6
        mov  r6, r3             ; recover LCG state clobber: redo seed mix
        xor  r6, r0
        andi r6, 1
        jz   .reject
        st   [pos+r1*4], r0     ; swap
        st   [pos+r2*4], r3
        inc  r7
.reject:
        mov  r6, r3
        muli r6, 2654435761
        xor  r6, r0
        addi r6, 97
        inc  fp
        cmpi fp, ITERS
        jl   .loop
        push r7
        call putint
        addi sp, 4
        movi r0, 0
        ret
        .data
pos:    .space 256
"""


def vortex(scale: float) -> str:
    ops = max(200, int(2600 * scale))
    return f"""
        .equ OPS, {ops}
        .equ BUCKETS, 64
        .text
; Object database: hashed insert/lookup of heap records.
main:   movi r1, 0
.clr:   sti  [table+r1*4], 0
        inc  r1
        cmpi r1, BUCKETS
        jl   .clr
        movi r6, 0              ; op counter
        movi r7, 0              ; checksum
.loop:  mov  r1, r6
        muli r1, 2654435761
        shr  r1, 8
        andi r1, 63             ; bucket
        mov  r2, r6
        andi r2, 3
        cmpi r2, 3
        je   .lookup
        ; insert: node = malloc(12): (key, value, next)
        pushi 12
        call malloc
        addi sp, 4
        st   [r0], r6           ; key
        mov  r2, r6
        xori r2, 0xABCD
        st   [r0+4], r2         ; value
        ld   r3, [table+r1*4]
        st   [r0+8], r3         ; next = head
        st   [table+r1*4], r0   ; head = node
        jmp  .next
.lookup:
        ld   r2, [table+r1*4]
.chain: test r2, r2
        jz   .next
        ld   r3, [r2]
        cmp  r3, r6
        je   .hit
        ld   r2, [r2+8]
        jmp  .chain
.hit:   ld   r3, [r2+4]
        add  r7, r3
.next:  inc  r6
        cmpi r6, OPS
        jl   .loop
        ; free all chains
        movi r1, 0
.fall:  ld   r2, [table+r1*4]
.fchain:
        test r2, r2
        jz   .fnext
        ld   r3, [r2+8]
        push r3
        push r2
        call free
        addi sp, 4
        pop  r2
        jmp  .fchain
.fnext: inc  r1
        cmpi r1, BUCKETS
        jl   .fall
        push r7
        call putint
        addi sp, 4
        movi r0, 0
        ret
        .data
table:  .space 256
"""


def vpr(scale: float) -> str:
    iters = max(600, int(10000 * scale))
    return f"""
        .equ ITERS, {iters}
        .text
; FPGA placement: wirelength cost over net bounding boxes.
main:   movi r7, 0
        movi r6, 0
.loop:  mov  r1, r6
        muli r1, 75
        andi r1, 31             ; x1
        mov  r2, r6
        muli r2, 31
        andi r2, 31             ; x2
        mov  r3, r1
        sub  r3, r2
        jnl  .absok             ; if x1-x2 >= 0
        neg  r3
.absok: mov  r0, r6
        muli r0, 29
        andi r0, 31
        mov  fp, r6
        muli fp, 17
        andi fp, 31
        sub  r0, fp
        jnl  .absok2
        neg  r0
.absok2:
        add  r3, r0             ; manhattan distance
        add  r7, r3
        inc  r6
        cmpi r6, ITERS
        jl   .loop
        push r7
        call putint
        addi sp, 4
        movi r0, 0
        ret
"""
