"""The stable embedding facade (the ``repro.api`` surface).

Everything an embedder needs lives here, under compatibility guarantees:

* :func:`run` — one guest job in this process, classified into a
  :class:`JobResult`; never raises for anything the guest does.
* :func:`run_fleet` — a list of jobs across a crash-isolated worker
  pool, returning a :class:`FleetReport`.
* :func:`replay` — re-execute a crash bundle (manifest or bare event
  log) to the exact point its recording stopped.
* :func:`open_cache` — open (creating if needed) a persistent
  cross-process translation cache directory.

The CLI (:mod:`repro.cli`) and the fleet workers are thin callers of
this module.  The historical deep entry points
(``repro.core.supervisor.run_job`` / ``replay_bundle``) keep working via
deprecation shims that forward here byte-compatibly.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from .core.codecache import CodeCache
from .core.errors import ExitCode
from .core.options import BadOption, Options, parse_argv
from .core.replay import (
    EventLog,
    ReplayDivergence,
    ReplayError,
    ReplayFormatError,
)
from .core.supervisor import (
    FleetSupervisor,
    JobResult,
    JobSpec,
    RetryPolicy,
    WatchdogConfig,
    _options_from_flags,
    _write_json,
    load_image,
)
from .guest.asm import AsmError
from .guest.program import VxImage

__all__ = [
    "run",
    "run_job",
    "run_fleet",
    "replay",
    "replay_bundle",
    "open_cache",
    "FleetReport",
    "JobResult",
    "JobSpec",
    "RetryPolicy",
    "WatchdogConfig",
    "FleetSupervisor",
    "CodeCache",
    "Options",
    "BadOption",
    "parse_argv",
    "load_image",
]


# -- single jobs ---------------------------------------------------------------


def run(
    program: Union[str, VxImage],
    tool: Optional[str] = None,
    options: Optional[Options] = None,
    *,
    argv: Optional[List[str]] = None,
    stdin: bytes = b"",
    max_blocks: Optional[int] = None,
    on_progress=None,
) -> JobResult:
    """Run one guest job to a classified :class:`JobResult`.

    This is the reusable embedding API behind both the CLI and the fleet
    workers: *program* is a ``.s`` path or a pre-assembled image, *tool*
    is a tool name (None = native baseline run), *on_progress* is called
    with the guest instruction count at every dispatch-quantum boundary
    (the fleet heartbeat).  Guest behaviour and launcher-level errors
    both come back as a JobResult — only genuine internal bugs raise.
    """
    opts = options or Options()
    if isinstance(program, VxImage):
        image, path = program, program.name
    else:
        path = str(program)
        try:
            image = load_image(path)
        except (OSError, AsmError) as exc:
            return JobResult(exit_code=int(ExitCode.USAGE), error=str(exc))
    client_argv = argv if argv is not None else [path]

    want_stats = opts.stats_format == "json" or opts.stats_out is not None

    if tool is None:
        from .native import run_native

        res = run_native(image, client_argv, stdin=stdin)
        stats = None
        if want_stats:
            stats = {
                "tool": None,
                "native": True,
                "exit_code": res.exit_code,
                "guest_insns": res.guest_insns,
            }
            if opts.stats_out:
                _write_json(opts.stats_out, stats)
        return JobResult(
            exit_code=res.exit_code,
            stdout=res.stdout,
            stderr=res.stderr,
            fatal_signal=res.fatal_signal,
            guest_insns=res.guest_insns,
            stats=stats,
        )

    from .core.valgrind import Valgrind

    try:
        vg = Valgrind(tool, opts)
    except (KeyError, ValueError) as exc:
        return JobResult(exit_code=int(ExitCode.USAGE), error=str(exc))
    vg.on_progress = on_progress
    try:
        result = vg.run(
            image,
            client_argv,
            stdin=stdin,
            max_blocks=max_blocks,
            resolve_image=load_image,
        )
    except ReplayDivergence as exc:
        return JobResult(exit_code=int(exc.exit_code), error=str(exc))
    except (ReplayError, BadOption) as exc:
        return JobResult(exit_code=int(ExitCode.USAGE), error=str(exc))
    stats = result.stats() if want_stats else None
    if stats is not None and opts.stats_out:
        _write_json(opts.stats_out, stats)
    return JobResult(
        exit_code=result.exit_code,
        stdout=result.stdout,
        stderr=result.stderr,
        log=result.log,
        fatal_signal=result.outcome.fatal_signal,
        stopped_reason=result.outcome.stopped_reason,
        guest_insns=result.outcome.guest_insns,
        blocks_executed=result.outcome.blocks_executed,
        translations=result.outcome.translations,
        stats=stats,
        replay_exhausted_at=vg.scheduler.replay_exhausted_at,
    )


#: Historical name, kept as a first-class alias (no deprecation: the
#: *name* run_job is fine, only the deep import path is deprecated).
run_job = run


# -- fleets --------------------------------------------------------------------


@dataclass
class FleetReport:
    """A fleet run's report: the raw report dict plus typed accessors.

    Dict-style access (``report["summary"]``, ``"jobs" in report``) is
    supported so code written against the raw :class:`FleetSupervisor`
    report keeps working unchanged.
    """

    raw: dict

    def __getitem__(self, key):
        return self.raw[key]

    def __contains__(self, key) -> bool:
        return key in self.raw

    def __iter__(self):
        return iter(self.raw)

    def get(self, key, default=None):
        return self.raw.get(key, default)

    def keys(self):
        return self.raw.keys()

    @property
    def summary(self) -> dict:
        return self.raw["summary"]

    @property
    def jobs(self) -> list:
        return self.raw["jobs"]

    @property
    def stats(self) -> dict:
        return self.raw["stats"]

    @property
    def wall_time(self) -> float:
        return self.raw["wall_time"]

    @property
    def ok(self) -> bool:
        """True when no job ended in terminal failure."""
        return self.summary["terminal-failure"] == 0

    @property
    def cache(self) -> Optional[dict]:
        """The fleet-aggregated persistent-cache stats section, if any
        job reported one (requires ``--stats=json`` job flags)."""
        cache = self.stats.get("cache")
        return cache if cache else None


def run_fleet(
    jobs: Sequence[Union[JobSpec, str]],
    *,
    workers: int = 4,
    policy: Optional[RetryPolicy] = None,
    watchdog: Optional[WatchdogConfig] = None,
    inject=None,
    bundle_dir: Optional[str] = None,
    record_bundles: bool = True,
    record_flush_every: int = 8,
    verify_bundles: bool = False,
    cache_dir: Optional[str] = None,
    cache_max_mb: int = 256,
    tool: Optional[str] = None,
    flags: Optional[List[str]] = None,
    echo=None,
) -> FleetReport:
    """Run *jobs* across a crash-isolated worker pool.

    Each element is a :class:`JobSpec`, or a bare ``.s`` path which is
    promoted to a spec with *tool* and *flags* (job ids are assigned in
    order).  With *cache_dir*, the supervisor pre-opens the persistent
    translation cache before forking and every worker shares it — N
    workers translate each block once, fleet-wide.
    """
    specs: List[JobSpec] = []
    for job in jobs:
        if isinstance(job, JobSpec):
            specs.append(job)
        else:
            specs.append(JobSpec(
                job_id=len(specs),
                program=str(job),
                tool=tool,
                flags=list(flags or []),
            ))
    supervisor = FleetSupervisor(
        specs,
        workers=workers,
        policy=policy,
        watchdog=watchdog,
        inject=inject,
        bundle_dir=bundle_dir,
        record_bundles=record_bundles,
        record_flush_every=record_flush_every,
        verify_bundles=verify_bundles,
        cache_dir=cache_dir,
        cache_max_mb=cache_max_mb,
        echo=echo,
    )
    return FleetReport(raw=supervisor.run())


# -- crash-bundle replay -------------------------------------------------------


def replay_bundle(manifest_path: str) -> dict:
    """Replay a crash bundle in this process, to the exact point the
    recording stopped.

    Returns ``{"status", "exit_code", "stopped_reason", "endpoint"}``
    where *endpoint* is ``{"event_index", "pc", "guest_insns"}`` — the
    precise event index, guest pc and instruction count where the log
    ran out (or where a complete log's run exited).  ``status`` is
    ``"replayed"``, or ``"corrupt"`` / ``"error"`` with a message.
    """
    try:
        with open(manifest_path) as f:
            manifest = json.load(f)
    except (OSError, ValueError) as exc:
        return {"status": "error", "error": f"unreadable manifest: {exc}"}
    bundle_dir = os.path.dirname(os.path.abspath(manifest_path))
    log_path = os.path.join(bundle_dir, manifest["log"])
    try:
        with open(log_path, "rb") as f:
            raw = f.read()
    except OSError as exc:
        return {"status": "error", "error": f"unreadable log: {exc}"}
    want = manifest.get("log_sha256")
    if want and hashlib.sha256(raw).hexdigest() != want:
        return {"status": "corrupt", "error": "log digest != manifest digest"}
    try:
        log = EventLog.from_bytes(raw)
    except ReplayFormatError as exc:
        return {"status": "corrupt", "error": str(exc)}

    try:
        opts = _options_from_flags(manifest.get("flags", []))
    except BadOption as exc:
        return {"status": "error", "error": str(exc)}
    opts.record = None
    opts.record_flush_every = 0
    opts.stats_out = None
    opts.stats_format = "json"
    opts.replay = log_path
    result = run(
        manifest["program"],
        manifest["tool"],
        opts,
        argv=[manifest["program"]] + list(manifest.get("args", [])),
        stdin=base64.b64decode(manifest.get("stdin_b64", "")),
        max_blocks=manifest.get("max_blocks"),
    )
    if result.error is not None:
        return {"status": "error", "error": result.error,
                "exit_code": result.exit_code}
    if result.replay_exhausted_at is not None:
        index, pc, insns = result.replay_exhausted_at
    else:  # complete log: the replay ran to the recorded exit
        index, pc, insns = len(log.events), None, result.guest_insns
    return {
        "status": "replayed",
        "exit_code": result.exit_code,
        "stopped_reason": result.stopped_reason,
        "endpoint": {"event_index": index, "pc": pc, "guest_insns": insns},
    }


def replay(bundle_or_log: str) -> dict:
    """Replay a crash bundle given either its manifest (``.bundle.json``)
    or its bare event log (``.rrlog``, resolved to the sibling manifest
    the supervisor wrote next to it)."""
    path = str(bundle_or_log)
    if path.endswith(".rrlog"):
        manifest = path[: -len(".rrlog")] + ".bundle.json"
        if not os.path.exists(manifest):
            return {
                "status": "error",
                "error": f"no bundle manifest next to {path!r} "
                         f"(expected {os.path.basename(manifest)})",
            }
        path = manifest
    return replay_bundle(path)


# -- the persistent translation cache ------------------------------------------


def open_cache(directory: str, *, max_mb: int = 256) -> CodeCache:
    """Open (creating if needed) the persistent cross-process translation
    cache rooted at *directory*.  The same directory can be shared by any
    number of concurrent processes; see :class:`repro.core.codecache.CodeCache`.
    """
    return CodeCache(directory, max_mb=max_mb)
