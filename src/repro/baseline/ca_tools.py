"""Tools for the C&A baseline framework.

The lightweight ones are tiny — that is the paper's point (Section 5.1:
"a tool that traces memory accesses would be about 30 lines of code in
Pin").  The heavyweight one (:class:`CATaint`) shows the other side: with
copy-and-annotate the tool must re-implement instruction semantics in its
callbacks, mnemonic by mnemonic, and — like the real TaintTrace and LIFT —
it does not handle FP or SIMD code at all.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..guest.isa import Imm, Mem, Reg
from ..guest.refcpu import RefCPU
from ..tools.memcheck.shadow import ShadowMemory
from .framework import CATool, InsInfo, TraceControl


class CANull(CATool):
    """No instrumentation: the framework's base overhead."""

    name = "ca-null"


class CABBCount(CATool):
    """Basic-block counter (the lightweight tool of the Pin comparison)."""

    name = "ca-bbcount"

    def __init__(self) -> None:
        self.count = 0

    def instrument_trace(self, inss, ctl) -> None:
        def bump(cpu) -> None:
            self.count += 1

        ctl.insert_at_entry(bump)


class CAICount(CATool):
    """Instruction counter: one callback per instruction."""

    name = "ca-icount"

    def __init__(self) -> None:
        self.count = 0

    def instrument_trace(self, inss, ctl) -> None:
        def bump(cpu) -> None:
            self.count += 1

        for i in range(len(inss)):
            ctl.insert_before(i, bump)


class CATracer(CATool):
    """Memory-access tracer — the paper's "about 30 lines" Pin tool."""

    name = "ca-tracer"
    MAX_EVENTS = 1_000_000

    def __init__(self) -> None:
        self.events: List[Tuple[str, int, int]] = []

    def instrument_trace(self, inss, ctl) -> None:
        for i, ins in enumerate(inss):
            addr, size = ins.addr, ins.size
            refs = ins.mem_refs
            ev = self.events

            def trace(cpu, addr=addr, size=size, refs=refs) -> None:
                if len(ev) >= self.MAX_EVENTS:
                    return
                ev.append(("I", addr, size))
                for ref in refs:
                    ev.append(("S" if ref.is_write else "L",
                               ref.ea(cpu.regs), ref.size))

            ctl.insert_before(i, trace)


class CATaint(CATool):
    """A shadow-value (taint) tool on copy-and-annotate — the hard way.

    Everything the D&R instrumenter gets for free has to be hand-built
    here: shadow registers are a plain array the tool multiplexes itself,
    every mnemonic needs an explicit per-callback transfer function, and
    effective addresses are recomputed in the callback (the annotation
    only tells us *how* to compute them).  Faithfully to its real-world
    counterparts (TaintTrace, LIFT), it handles neither FP nor SIMD
    instructions — their results simply become untainted, and we count
    how often that (unsoundly) happens.
    """

    name = "ca-taint"

    def __init__(self) -> None:
        self.shadow_mem = ShadowMemory(default="defined")
        self.shadow_regs = [0] * 8  # taint mask per GPR
        self.tainted_jumps = 0
        self.unhandled_fp_simd = 0
        self.bytes_tainted = 0

    # -- taint sources -----------------------------------------------------------

    def taint_range(self, addr: int, size: int) -> None:
        self.shadow_mem.make_undefined(addr, size)
        self.bytes_tainted += size

    # -- per-mnemonic transfer callbacks ----------------------------------------------

    def instrument_trace(self, inss: Sequence[InsInfo], ctl: TraceControl) -> None:
        for i, ins in enumerate(inss):
            cb = self._transfer_for(ins)
            if cb is not None:
                ctl.insert_before(i, cb)

    def _transfer_for(self, ins: InsInfo):
        m = ins.mnemonic
        ops = ins.insn.operands
        sregs = self.shadow_regs
        smem = self.shadow_mem

        if ins.is_fp_or_simd:
            # TaintTrace/LIFT-style: FP/SIMD instructions are simply not
            # modelled; any integer destination is assumed clean.  This is
            # where the C&A tool (unsoundly) loses taint that the D&R tool
            # tracks (Section 5.4's robustness comparison).
            writes = ins.regs_written

            def unhandled(cpu) -> None:
                self.unhandled_fp_simd += 1
                for r in writes:
                    sregs[r] = 0

            return unhandled

        if m in ("ld", "ldb", "ldbs", "ldw", "ldws"):
            rd = ops[0].index
            ea = ins.mem_refs[0].ea
            size = ins.mem_refs[0].size

            def load(cpu) -> None:
                sregs[rd] = smem.load_vbits(ea(cpu.regs), size)

            return load
        if m in ("st", "stb", "stw"):
            rs = ops[1].index
            ea = ins.mem_refs[0].ea
            size = ins.mem_refs[0].size

            def store(cpu) -> None:
                smem.store_vbits(ea(cpu.regs), size, sregs[rs])

            return store
        if m == "sti":
            ea = ins.mem_refs[0].ea

            def store_imm(cpu) -> None:
                smem.store_vbits(ea(cpu.regs), 4, 0)

            return store_imm
        if m in ("mov",):
            rd, rs = ops[0].index, ops[1].index

            def mov(cpu) -> None:
                sregs[rd] = sregs[rs]

            return mov
        if m in ("movi", "lea", "setcc", "machid", "cycles"):
            writes = ins.regs_written

            def clear(cpu) -> None:
                for r in writes:
                    sregs[r] = 0

            return clear
        if m in ("add", "sub", "and", "or", "xor", "mul", "divu", "divs",
                 "modu", "mods", "mulhu", "mulhs", "shl", "shr", "sar",
                 "xchg"):
            rd, rs = ops[0].index, ops[1].index

            def alu_rr(cpu) -> None:
                t = sregs[rd] | sregs[rs]
                sregs[rd] = 0xFFFFFFFF if t else 0

            return alu_rr
        if m in ("addi", "subi", "andi", "ori", "xori", "muli", "shli",
                 "shri", "sari", "roli", "rori", "inc", "dec", "neg", "not",
                 "sxb", "sxw"):
            rd = ops[0].index

            def alu_ri(cpu) -> None:
                sregs[rd] = 0xFFFFFFFF if sregs[rd] else 0

            return alu_ri
        if m.endswith("m_"):  # ALU reg, [mem]
            rd = ops[0].index
            ea = ins.mem_refs[0].ea

            def alu_rm(cpu) -> None:
                t = sregs[rd] | smem.load_vbits(ea(cpu.regs), 4)
                sregs[rd] = 0xFFFFFFFF if t else 0

            return alu_rm
        if m in ("addm", "subm"):
            rs = ops[1].index
            ea = ins.mem_refs[0].ea

            def alu_mr(cpu) -> None:
                a = ea(cpu.regs)
                t = sregs[rs] | smem.load_vbits(a, 4)
                smem.store_vbits(a, 4, 0xFFFFFFFF if t else 0)

            return alu_mr
        if m in ("push", "call"):
            src = ops[0].index if m == "push" and isinstance(ops[0], Reg) else None

            def push(cpu) -> None:
                sp = (cpu.regs[4] - 4) & 0xFFFFFFFF
                smem.store_vbits(sp, 4, sregs[src] if src is not None else 0)

            return push
        if m == "pushi":
            def pushi(cpu) -> None:
                sp = (cpu.regs[4] - 4) & 0xFFFFFFFF
                smem.store_vbits(sp, 4, 0)

            return pushi
        if m == "pop":
            rd = ops[0].index

            def pop(cpu) -> None:
                sregs[rd] = smem.load_vbits(cpu.regs[4], 4)

            return pop
        if m in ("jmpr", "callr"):
            rs = ops[0].index

            def check_target(cpu) -> None:
                if sregs[rs]:
                    self.tainted_jumps += 1

            return check_target
        if m == "ret":
            def check_ret(cpu) -> None:
                if smem.load_vbits(cpu.regs[4], 4):
                    self.tainted_jumps += 1

            return check_ret
        # cmp/test/jcc/nop/syscall/...: no taint transfer.
        return None

    def fini(self, runner) -> None:
        pass
