"""A copy-and-annotate (C&A) DBI framework — the Pin/DynamoRIO stand-in.

Where the Valgrind core *disassembles and resynthesises* (D&R), this
framework *copies instructions through verbatim* (here: executes the
decoded instructions directly) and exposes an **instruction-querying
API** — annotations describing each instruction's register and memory
effects — that tools use to insert analysis callbacks before
instructions (Section 3.5's description of Pin's model).

The consequences the paper describes fall out naturally:

* there is no IR and no recompilation, so the base overhead is far lower
  than the D&R core's (Section 5.4: "Valgrind is 4.0x slower than Pin...
  in the no-instrumentation case");
* analysis code is ordinary host (here: Python) functions — cheap to
  bolt on for lightweight tools, but *less expressive than client code*:
  a shadow-value tool must reimplement every instruction's semantics in
  its callbacks, one mnemonic at a time (see
  :class:`repro.baseline.ca_tools.CATaint`, which — like TaintTrace and
  LIFT — simply does not handle FP or SIMD instructions);
* there are no first-class shadow registers, no events system, and no
  serialisation guarantees for shadow memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..guest.isa import Cond, FReg, Imm, Insn, Mem, Reg, VReg
from ..guest.refcpu import RefCPU, TrapKind, _ea
from ..guest.program import VxImage
from ..native import NativeRunner, NativeResult

# Mnemonic classes used to build annotations.
_LOADS = {"ld": 4, "ldb": 1, "ldbs": 1, "ldw": 2, "ldws": 2, "fld": 8,
          "flds": 4, "vld": 16}
_STORES = {"st": 4, "stb": 1, "stw": 2, "sti": 4, "fst": 8, "fsts": 4, "vst": 16}
_RMW = {"addm": 4, "subm": 4}
_FP_SIMD_PREFIXES = ("f", "v")


@dataclass(frozen=True)
class MemRef:
    """An annotated memory reference: effective-address fn + size."""

    ea: Callable[[List[int]], int]
    size: int
    is_write: bool


class InsInfo:
    """The instruction-querying API handed to C&A tools.

    Mirrors Pin's INS_* queries: what does this instruction read/write?
    """

    def __init__(self, insn: Insn):
        self.insn = insn
        self.addr = insn.addr
        self.size = insn.length
        self.mnemonic = insn.mnemonic
        self.mem_refs: Tuple[MemRef, ...] = self._mem_refs()
        self.regs_read, self.regs_written = self._reg_effects()

    @property
    def is_fp_or_simd(self) -> bool:
        return self.mnemonic.startswith(_FP_SIMD_PREFIXES) and self.mnemonic not in (
            "free",
        )

    @property
    def is_branch(self) -> bool:
        return self.insn.idef.is_branch

    def _mem_refs(self) -> Tuple[MemRef, ...]:
        m = self.mnemonic
        refs: List[MemRef] = []
        ops = self.insn.operands
        if m in _LOADS:
            refs.append(MemRef(_ea(ops[1]), _LOADS[m], False))
        elif m in _STORES:
            refs.append(MemRef(_ea(ops[0]), _STORES[m], True))
        elif m in _RMW:
            ea = _ea(ops[0])
            refs.append(MemRef(ea, 4, False))
            refs.append(MemRef(ea, 4, True))
        elif m.endswith("m_"):  # ALU reg, [mem]
            refs.append(MemRef(_ea(ops[1]), 4, False))
        elif m in ("push", "pushi", "call", "callr"):
            refs.append(MemRef(lambda r: (r[4] - 4) & 0xFFFFFFFF, 4, True))
        elif m in ("pop", "ret"):
            refs.append(MemRef(lambda r: r[4], 4, False))
        return tuple(refs)

    def _reg_effects(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        reads: List[int] = []
        writes: List[int] = []
        d = self.insn.idef
        ops = self.insn.operands
        m = self.mnemonic
        for kind_i, op in enumerate(ops):
            if isinstance(op, Reg):
                # First GPR operand is usually the destination for moves/ALU.
                if kind_i == 0 and m not in ("st", "stb", "stw", "push", "cmp",
                                             "cmpi", "test", "testi", "jmpr",
                                             "callr"):
                    writes.append(op.index)
                    if m not in ("movi", "mov", "ld", "ldb", "ldbs", "ldw",
                                 "ldws", "lea", "pop", "setcc"):
                        reads.append(op.index)
                else:
                    reads.append(op.index)
            elif isinstance(op, Mem):
                if op.base is not None:
                    reads.append(op.base)
                if op.index is not None:
                    reads.append(op.index)
        if m in ("push", "pushi", "pop", "call", "callr", "ret"):
            reads.append(4)
            writes.append(4)
        if m == "machid":
            writes.extend((0, 1, 2, 3))
        if m == "cycles":
            writes.append(0)
        return tuple(dict.fromkeys(reads)), tuple(dict.fromkeys(writes))


#: An analysis callback: receives the live CPU (registers, memory...).
Callback = Callable[[RefCPU], None]


class TraceControl:
    """Lets a tool insert calls around the instructions of one trace."""

    def __init__(self, n: int):
        self._before: List[List[Callback]] = [[] for _ in range(n)]
        self._block_entry: List[Callback] = []

    def insert_before(self, index: int, fn: Callback) -> None:
        self._before[index].append(fn)

    def insert_at_entry(self, fn: Callback) -> None:
        self._block_entry.append(fn)


class CATool:
    """Base class for C&A tools."""

    name = "ca-tool"

    def instrument_trace(self, inss: Sequence[InsInfo], ctl: TraceControl) -> None:
        """Called once per newly-seen code block."""

    def fini(self, runner: "CARunner") -> None:
        """Called at client exit."""


class CARunner(NativeRunner):
    """Runs a client under a C&A tool.

    Uses the same kernel/libc substrate as native execution; code blocks
    are decoded once, the tool instruments them (inserting callbacks),
    and the cached (callbacks, closure) steps are executed thereafter —
    i.e. original instructions are "copied through verbatim".
    """

    def __init__(self, image: VxImage, tool: CATool, argv=None, **kw):
        super().__init__(image, argv, **kw)
        self.tool = tool
        #: block start addr -> list of (callbacks tuple or None, closure).
        self._blocks: Dict[int, list] = {}
        self.blocks_executed = 0

    # -- block building -------------------------------------------------------------

    def _build_block(self, cpu: RefCPU, addr: int) -> list:
        from ..guest.encoding import decode

        insns: List[Insn] = []
        a = addr
        for _ in range(64):
            raw = cpu.mem.fetch(a, 1) + cpu._fetch_rest(a + 1, 11)
            insn = decode(raw, 0, a)
            insns.append(insn)
            a += insn.length
            if insn.idef.is_branch or insn.mnemonic == "jcc":
                break
        infos = [InsInfo(i) for i in insns]
        ctl = TraceControl(len(infos))
        self.tool.instrument_trace(infos, ctl)
        steps = []
        entry_cbs = tuple(ctl._block_entry)
        for i, insn in enumerate(insns):
            entry = cpu._icache.get(insn.addr)
            if entry is None:
                entry = cpu._compile(insn.addr)
                cpu._icache[insn.addr] = entry
            cbs = tuple(ctl._before[i])
            if i == 0 and entry_cbs:
                cbs = entry_cbs + cbs
            steps.append((cbs or None, entry[0]))
        return steps

    # -- the instrumented execution loop ------------------------------------------------

    def _run_slice(self, cpu: RefCPU, max_insns: int) -> Optional[TrapKind]:
        executed = 0
        blocks = self._blocks
        while executed < max_insns:
            steps = blocks.get(cpu.pc)
            if steps is None:
                steps = self._build_block(cpu, cpu.pc)
                blocks[cpu.pc] = steps
            self.blocks_executed += 1
            trap = None
            for cbs, fn in steps:
                if cbs is not None:
                    for cb in cbs:
                        cb(cpu)
                executed += 1
                trap = fn(cpu)
                if trap is not None:
                    cpu.insn_count += executed
                    return trap
        cpu.insn_count += executed
        return TrapKind.BUDGET

    def run(self, max_insns: Optional[int] = None) -> NativeResult:
        # NativeRunner.run calls cpu.run(n); route it to our loop instead.
        originals = {}
        for tid, cpu in self.cpus.items():
            originals[tid] = cpu.run
        result = self._run_with_hook(max_insns)
        self.tool.fini(self)
        return result

    def _run_with_hook(self, max_insns):
        runner = self

        class _HookedCPU:
            pass

        # Monkey-patch-free approach: temporarily bind each RefCPU's run.
        import types

        def hooked_run(cpu_self, n=None):
            return runner._run_slice(cpu_self, n if n is not None else 1 << 62)

        patched = []

        def patch(cpu):
            cpu.run = types.MethodType(hooked_run, cpu)
            patched.append(cpu)

        for cpu in self.cpus.values():
            patch(cpu)
        orig_new_thread = self._new_thread

        def new_thread(entry, sp):
            tid = orig_new_thread(entry, sp)
            patch(self.cpus[tid])
            return tid

        self._new_thread = new_thread  # type: ignore[assignment]
        try:
            return NativeRunner.run(self, max_insns=max_insns)
        finally:
            self._new_thread = orig_new_thread  # type: ignore[assignment]


def run_ca(image: VxImage, tool: CATool, argv=None, *, stdin: bytes = b"",
           max_insns=None) -> NativeResult:
    """Run *image* under C&A *tool*."""
    return CARunner(image, tool, argv, stdin=stdin).run(max_insns=max_insns)
