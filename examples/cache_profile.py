#!/usr/bin/env python3
"""Cachegrind demo: see a cache-locality bug as numbers.

The classic experiment: summing a 2D matrix row-major (sequential,
cache-friendly) versus column-major (strided, thrashes the data cache).
Cachegrind attributes the D1 misses to the offending function.

Run:  python examples/cache_profile.py
"""

from repro import Options, assemble, build_source, run_tool

# 64x64 matrix of 4-byte words = 16 KiB; D1 is 16 KiB, lines of 32 bytes.
PROGRAM = """
        .equ DIM, 64
        .text
main:   call  sum_rows
        call  sum_cols
        movi  r0, 0
        ret

sum_rows:                     ; for y: for x: acc += m[y][x]
        movi  r0, 0
        movi  r1, 0           ; y
sr_y:   movi  r2, 0           ; x
sr_x:   mov   r3, r1
        muli  r3, DIM
        add   r3, r2
        ld    r6, [matrix+r3*4]
        add   r0, r6
        inc   r2
        cmpi  r2, DIM
        jl    sr_x
        inc   r1
        cmpi  r1, DIM
        jl    sr_y
        ret

sum_cols:                     ; for x: for y: acc += m[y][x]  (strided!)
        movi  r0, 0
        movi  r2, 0           ; x
sc_x:   movi  r1, 0           ; y
sc_y:   mov   r3, r1
        muli  r3, DIM
        add   r3, r2
        ld    r6, [matrix+r3*4]
        add   r0, r6
        inc   r1
        cmpi  r1, DIM
        jl    sc_y
        inc   r2
        cmpi  r2, DIM
        jl    sc_x
        ret

        .data
matrix: .space 16384
"""


def main() -> None:
    image = assemble(build_source(PROGRAM), filename="matrix.s")
    res = run_tool("cachegrind", image, options=Options(log_target="capture"))
    tool = res.tool

    print("=== overall cache behaviour")
    for line in tool.summary_lines():
        print(" ", line)

    print("\n=== per-function attribution (who causes the D1 misses?)")
    print(f"  {'function':12s} {'Dr':>8} {'D1mr':>8}  miss rate")
    rows, cols = None, None
    for name, c in tool.per_function():
        if name.startswith(("sum_", "sr_", "sc_")):
            rate = c.D1mr / c.Dr if c.Dr else 0.0
            print(f"  {name:12s} {c.Dr:>8} {c.D1mr:>8}  {rate:8.1%}")

    agg = dict(tool.per_function())
    # Both functions do the same 4096 loads; compare their miss counts.
    def misses(prefix):
        return sum(c.D1mr for n, c in agg.items() if n.startswith(prefix))

    row_misses = misses("sum_rows") + misses("sr_")
    col_misses = misses("sum_cols") + misses("sc_")
    print(f"\n  row-major D1 misses:    {row_misses}")
    print(f"  column-major D1 misses: {col_misses}")
    print(f"  => the strided traversal misses "
          f"{col_misses / max(row_misses, 1):.0f}x more often")


if __name__ == "__main__":
    main()
