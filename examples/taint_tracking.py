#!/usr/bin/env python3
"""Taint tracking: detect a control-flow hijack from untrusted input.

A toy "server" reads a request from its input, parses a length field and
an opcode, and dispatches through a jump table.  A malicious request
drives the dispatch *index* directly from input bytes without validation
— the exact pattern TaintCheck (NDSS'05) was built to catch: data from an
untrusted source reaching a control-flow transfer.

Run:  python examples/taint_tracking.py
"""

from repro import Options, assemble, build_source, run_tool

SERVER = """
        .text
; Request format: [0] = opcode byte, [1..4] = payload.
main:   movi  r0, 2           ; read(0, req, 8)
        movi  r1, 0
        movi  r2, req
        movi  r3, 8
        syscall
        ldb   r1, [req]       ; opcode — straight from the wire, unchecked
        shl   r1, 2
        ld    r1, [table+r1]  ; handler address indexed by tainted opcode
        call  r1              ; *** tainted control transfer ***
        movi  r0, 0
        ret

op_echo:
        pushi msg_echo
        call  puts
        addi  sp, 4
        ret
op_stat:
        pushi msg_stat
        call  puts
        addi  sp, 4
        ret

        .data
table:  .word op_echo, op_stat, op_echo, op_stat
req:    .space 16
msg_echo: .asciz "handled: echo"
msg_stat: .asciz "handled: stat"
"""


def run(request: bytes) -> None:
    image = assemble(build_source(SERVER), filename="server.s")
    # --taint-addr closes the jump-table laundering hole: dispatching
    # through a *clean* table with a *tainted* index would otherwise hide
    # the flow from the jump-target sink.
    opts = Options(log_target="capture", tool_options=["--taint-addr=yes"])
    res = run_tool("taintcheck", image, options=opts, stdin=request)
    print(f"request {request!r}")
    print(f"  server output : {res.stdout.strip()!r}")
    print(f"  taint sources : {res.tool.bytes_tainted} bytes from read()")
    if res.errors:
        for e in res.errors:
            print("  ALERT:", e.format().splitlines()[0])
            for line in e.format().splitlines()[1:3]:
                print("        ", line.strip())
    else:
        print("  no taint violations")
    print()


def main() -> None:
    print("=== the server dispatches through a table indexed by a raw")
    print("=== input byte; taintcheck's address sink flags the table load")
    print("=== and the jump-target sink flags any directly-tainted target:")
    run(b"\x01AAAA\x00\x00\x00")
    run(b"\x03BBBB\x00\x00\x00")


if __name__ == "__main__":
    main()
