#!/usr/bin/env python3
"""Writing your own tool plug-in: a branch profiler in ~60 lines.

"Valgrind core + tool plug-in = Valgrind tool."  A tool subclasses
:class:`repro.Tool` and rewrites flat IR in ``instrument``.  This one
counts, for every conditional branch, how often it was taken versus
fallen through — the data a compiler wants for branch hints — by
inserting one helper call before each ``Exit`` statement, passing the
branch's guard value as an argument.

Run:  python examples/custom_tool.py
"""

from repro import Options, Tool, Valgrind, assemble, build_source
from repro.ir import Dirty, Exit, IMark, IRSB, RdTmp, Ty, Unop, WrTmp, c32


class BranchProfiler(Tool):
    """Counts taken/not-taken per static conditional branch."""

    name = "branchprof"
    description = "taken/not-taken counts per conditional branch"

    def __init__(self) -> None:
        super().__init__()
        self.taken = {}
        self.not_taken = {}

    def pre_clo_init(self, core) -> None:
        super().pre_clo_init(core)
        core.helpers.register_dirty("bp_note", self._note)

    def _note(self, env, site: int, guard: int) -> int:
        bucket = self.taken if guard else self.not_taken
        bucket[site] = bucket.get(site, 0) + 1
        return 0

    def instrument(self, sb: IRSB) -> IRSB:
        out = sb.copy()
        stmts = []
        site = sb.guest_addr
        for s in out.stmts:
            if isinstance(s, IMark):
                site = s.addr  # track the current instruction's address
            if isinstance(s, Exit):
                # The guard is an I1 atom in flat IR; widen it for the call.
                t = out.new_tmp(Ty.I32)
                stmts.append(WrTmp(t, Unop("1Uto32", s.guard)))
                stmts.append(Dirty("bp_note", (c32(site), RdTmp(t))))
            stmts.append(s)
        out.stmts = stmts
        return out

    def fini(self, exit_code: int) -> None:
        self.core.log("branch profile (site: taken / not-taken, bias):")
        sites = sorted(set(self.taken) | set(self.not_taken))
        for site in sites:
            t = self.taken.get(site, 0)
            n = self.not_taken.get(site, 0)
            sym = self.core.program.symbol_at(site)
            where = f"{sym[0]}+{sym[1]}" if sym else hex(site)
            bias = t / (t + n) if t + n else 0.0
            self.core.log(f"  {where:16s} {t:>7} / {n:<7} {bias:6.1%} taken")


CLIENT = """
        .text
main:   movi  r0, 0
        movi  r1, 0
loop:   mov   r2, r1
        andi  r2, 7
        cmpi  r2, 0           ; true 1 time in 8
        jne   skip
        inc   r0
skip:   inc   r1
        cmpi  r1, 4000        ; loop back-edge: almost always taken
        jl    loop
        movi  r0, 0
        ret
"""


def main() -> None:
    image = assemble(build_source(CLIENT), filename="client.s")
    tool = BranchProfiler()
    res = Valgrind(tool, Options(log_target="capture")).run(image)
    print(res.log)
    # Sanity: the `jne skip` branch is taken ~7/8 of the time.
    jne_site = [s for s in tool.taken if tool.taken[s] > 3000]
    assert jne_site, "expected a heavily-taken branch"


if __name__ == "__main__":
    main()
